#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <limits>
#include <thread>

#include "util/check.h"

namespace nodedp {

namespace {

std::atomic<bool> g_metrics_enabled{true};

// Shard index for the calling thread: a hashed thread id, computed once
// per thread. Threads with colliding indices still work — they just
// share a cache line.
std::size_t ThisThreadShard() {
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kMetricShards - 1);
  return shard;
}

// std::atomic<double> has no fetch_add until C++20; CAS-loop instead.
// Relaxed ordering is enough — readers only need an eventually-complete
// sum, not ordering against neighbouring writes.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double observed = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(observed, observed + delta,
                                        std::memory_order_relaxed)) {
  }
}

// Appends printf-formatted text (exposition is built with snprintf, not
// iostreams, to keep float formatting deterministic across locales).
void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  NODEDP_CHECK(n >= 0 && static_cast<std::size_t>(n) < sizeof(buf));
  out->append(buf, static_cast<std::size_t>(n));
}

// Prometheus sample-value formatting: exact integers render without an
// exponent or fraction (so CI can grep `refusals_total 1` literally);
// everything else gets round-trippable %.17g; infinities use the
// spelling the text format specifies.
void AppendValue(std::string* out, double value) {
  if (std::isinf(value)) {
    out->append(value > 0 ? "+Inf" : "-Inf");
    return;
  }
  if (std::isnan(value)) {
    out->append("NaN");
    return;
  }
  // 2^53: beyond it doubles skip integers, so "integral" stops meaning
  // exact and we fall through to %.17g.
  if (value == std::floor(value) && std::fabs(value) < 9007199254740992.0) {
    Appendf(out, "%lld", static_cast<long long>(value));
    return;
  }
  Appendf(out, "%.17g", value);
}

// Label values may contain anything; the exposition format escapes
// backslash, double-quote, and newline inside quoted values.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool IsValidNameChar(char c, bool first, bool label) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') return true;
  if (!label && c == ':') return true;
  if (!first && c >= '0' && c <= '9') return true;
  return false;
}

bool IsValidName(const std::string& name, bool label) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (!IsValidNameChar(name[i], i == 0, label)) return false;
  }
  return true;
}

// Serializes a label set to its exposition spelling, keys sorted — the
// registry's series key. Empty labels serialize to "" (not "{}").
std::string SerializeLabels(MetricsRegistry::Labels labels) {
  if (labels.empty()) return "";
  std::sort(labels.begin(), labels.end());
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    NODEDP_CHECK_MSG(IsValidName(labels[i].first, /*label=*/true),
                     "bad label name: " << labels[i].first);
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

// Splices one extra label (used for histogram `le`) into a serialized
// label set: "{a=\"b\"}" + (le, 0.5) -> "{a=\"b\",le=\"0.5\"}".
std::string WithExtraLabel(const std::string& serialized, const char* key,
                           const std::string& value) {
  std::string extra = std::string(key) + "=\"" + EscapeLabelValue(value) + "\"";
  if (serialized.empty()) return "{" + extra + "}";
  std::string out = serialized;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

std::string FormatBound(double bound) {
  std::string out;
  AppendValue(&out, bound);
  return out;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void Counter::Add(double delta) {
  if (!MetricsEnabled()) return;
  if (!(delta > 0)) return;  // drops negatives and NaN; 0 is a no-op anyway
  AtomicAdd(&shards_[ThisThreadShard()].value, delta);
}

double Counter::Value() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  NODEDP_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    NODEDP_CHECK_MSG(std::isfinite(bounds_[i]),
                     "histogram bounds must be finite (+Inf is implicit)");
    if (i > 0) NODEDP_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
  for (Shard& shard : shards_) {
    shard.buckets = std::vector<std::atomic<long long>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  // First bucket with value <= bound; everything past the last bound
  // (and NaN, which compares false) lands in the +Inf overflow bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[ThisThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&shard.sum, value);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < snapshot.counts.size(); ++i) {
      snapshot.counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (long long c : snapshot.counts) snapshot.count += c;
  return snapshot;
}

double Histogram::Percentile(double q) const {
  return PercentileOf(TakeSnapshot(), bounds_, q);
}

double Histogram::PercentileOf(const Snapshot& snapshot,
                               const std::vector<double>& bounds, double q) {
  NODEDP_CHECK(q >= 0.0 && q <= 1.0);
  if (snapshot.count == 0) return 0.0;
  // Rank of the target observation, 1-based: ceil(q * N), clamped into
  // [1, N] so p0 asks for the first observation rather than the zeroth.
  long long rank = static_cast<long long>(
      std::ceil(q * static_cast<double>(snapshot.count)));
  rank = std::max<long long>(1, std::min(rank, snapshot.count));
  long long cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += snapshot.counts[i];
    if (cumulative >= rank) return bounds[i];
  }
  return std::numeric_limits<double>::infinity();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

const std::vector<double>& MetricsRegistry::LatencyBucketsNs() {
  static const std::vector<double>* buckets = [] {
    auto* b = new std::vector<double>();
    // 1-2-5 ladder, 1µs .. 10s, then a 30s bound before +Inf.
    for (double decade = 1e3; decade <= 1e10; decade *= 10.0) {
      b->push_back(decade);
      if (decade <= 1e9) {
        b->push_back(2 * decade);
        b->push_back(5 * decade);
      }
    }
    b->push_back(3e10);
    return b;
  }();
  return *buckets;
}

MetricsRegistry::Family& MetricsRegistry::FindOrCreateFamilyLocked(
    const std::string& name, FamilyType type, const std::string& help) {
  NODEDP_CHECK_MSG(IsValidName(name, /*label=*/false),
                   "bad metric name: " << name);
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.type = type;
    family.help = help;
  } else {
    NODEDP_CHECK_MSG(family.type == type,
                     "metric re-registered with different type: " << name);
  }
  return family;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FindOrCreateFamilyLocked(name, FamilyType::kCounter, help);
  auto& slot = family.counters[SerializeLabels(labels)];
  if (!slot) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FindOrCreateFamilyLocked(name, FamilyType::kGauge, help);
  auto& slot = family.gauges[SerializeLabels(labels)];
  if (!slot) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FindOrCreateFamilyLocked(name, FamilyType::kHistogram, help);
  if (family.histograms.empty()) {
    family.bounds = bounds;
  } else {
    NODEDP_CHECK_MSG(family.bounds == bounds,
                     "histogram re-registered with different bounds: " << name);
  }
  auto& slot = family.histograms[SerializeLabels(labels)];
  if (!slot) slot.reset(new Histogram(std::move(bounds)));
  return slot.get();
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    const char* type_name = family.type == FamilyType::kCounter ? "counter"
                            : family.type == FamilyType::kGauge ? "gauge"
                                                                : "histogram";
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " " + type_name + "\n";
    switch (family.type) {
      case FamilyType::kCounter:
        for (const auto& [key, counter] : family.counters) {
          out += name + key + " ";
          AppendValue(&out, counter->Value());
          out += "\n";
        }
        break;
      case FamilyType::kGauge:
        for (const auto& [key, gauge] : family.gauges) {
          out += name + key + " ";
          AppendValue(&out, gauge->Value());
          out += "\n";
        }
        break;
      case FamilyType::kHistogram:
        for (const auto& [key, histogram] : family.histograms) {
          const Histogram::Snapshot snapshot = histogram->TakeSnapshot();
          long long cumulative = 0;
          for (std::size_t i = 0; i < histogram->bounds().size(); ++i) {
            cumulative += snapshot.counts[i];
            out += name + "_bucket" +
                   WithExtraLabel(key, "le",
                                  FormatBound(histogram->bounds()[i])) +
                   " ";
            AppendValue(&out, static_cast<double>(cumulative));
            out += "\n";
          }
          out += name + "_bucket" + WithExtraLabel(key, "le", "+Inf") + " ";
          AppendValue(&out, static_cast<double>(snapshot.count));
          out += "\n";
          out += name + "_sum" + key + " ";
          AppendValue(&out, snapshot.sum);
          out += "\n";
          out += name + "_count" + key + " ";
          AppendValue(&out, static_cast<double>(snapshot.count));
          out += "\n";
        }
        break;
    }
  }
  return out;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> samples;
  for (const auto& [name, family] : families_) {
    switch (family.type) {
      case FamilyType::kCounter:
        for (const auto& [key, counter] : family.counters) {
          samples.push_back({name + key, counter->Value()});
        }
        break;
      case FamilyType::kGauge:
        for (const auto& [key, gauge] : family.gauges) {
          samples.push_back({name + key, gauge->Value()});
        }
        break;
      case FamilyType::kHistogram:
        for (const auto& [key, histogram] : family.histograms) {
          const Histogram::Snapshot snapshot = histogram->TakeSnapshot();
          samples.push_back(
              {name + "_count" + key, static_cast<double>(snapshot.count)});
          samples.push_back({name + "_sum" + key, snapshot.sum});
          samples.push_back(
              {name + "_p50" + key,
               Histogram::PercentileOf(snapshot, histogram->bounds(), 0.50)});
          samples.push_back(
              {name + "_p99" + key,
               Histogram::PercentileOf(snapshot, histogram->bounds(), 0.99)});
          samples.push_back(
              {name + "_p999" + key,
               Histogram::PercentileOf(snapshot, histogram->bounds(), 0.999)});
        }
        break;
    }
  }
  return samples;
}

}  // namespace nodedp

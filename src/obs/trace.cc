#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nodedp {

namespace {

thread_local QueryTrace* t_current_trace = nullptr;

std::atomic<SlowQueryLogSink> g_slow_query_sink{nullptr};

long long ReadThresholdFromEnv() {
  const char* env = std::getenv("NODEDP_SLOW_QUERY_NS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return parsed;
}

std::atomic<long long>& ThresholdStorage() {
  static std::atomic<long long> threshold{ReadThresholdFromEnv()};
  return threshold;
}

void EmitSlowQueryLine(const std::string& line) {
  const SlowQueryLogSink sink =
      g_slow_query_sink.load(std::memory_order_acquire);
  if (sink != nullptr) {
    sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

long long NsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

long long SlowQueryThresholdNs() {
  return ThresholdStorage().load(std::memory_order_relaxed);
}

void SetSlowQueryThresholdNs(long long threshold_ns) {
  ThresholdStorage().store(threshold_ns, std::memory_order_relaxed);
}

void SetSlowQueryLogSink(SlowQueryLogSink sink) {
  g_slow_query_sink.store(sink, std::memory_order_release);
}

QueryTrace::QueryTrace(const char* verb)
    : verb_(verb),
      start_(std::chrono::steady_clock::now()),
      previous_(t_current_trace) {
  t_current_trace = this;
}

QueryTrace::~QueryTrace() {
  t_current_trace = previous_;
  const long long threshold = SlowQueryThresholdNs();
  if (threshold > 0 && TotalNs() >= threshold) {
    EmitSlowQueryLine(Describe());
  }
}

QueryTrace* QueryTrace::Current() { return t_current_trace; }

void QueryTrace::AddSpan(const char* stage, long long ns) {
  // Stage names are literals, so pointer equality catches the common
  // case before the strcmp; the linear scan is over <= 16 entries.
  for (std::size_t i = 0; i < num_stages_; ++i) {
    if (stages_[i].name == stage || std::strcmp(stages_[i].name, stage) == 0) {
      stages_[i].ns += ns;
      return;
    }
  }
  if (num_stages_ < kMaxStages) {
    stages_[num_stages_].name = stage;
    stages_[num_stages_].ns = ns;
    ++num_stages_;
  } else {
    overflow_ns_ += ns;
  }
}

long long QueryTrace::TotalNs() const { return NsSince(start_); }

std::string QueryTrace::Describe() const {
  std::string out = "slow_query verb=";
  out += verb_;
  if (!target_.empty()) {
    out += " target=";
    out += target_;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), " total_ns=%lld", TotalNs());
  out += buf;
  out += " spans=";
  for (std::size_t i = 0; i < num_stages_; ++i) {
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf), "%s:%lld", stages_[i].name, stages_[i].ns);
    out += buf;
  }
  if (overflow_ns_ > 0) {
    std::snprintf(buf, sizeof(buf), "%sother:%lld", num_stages_ > 0 ? "," : "",
                  overflow_ns_);
    out += buf;
  }
  if (num_stages_ == 0 && overflow_ns_ == 0) out += "none";
  return out;
}

ScopedSpan::ScopedSpan(const char* stage)
    : trace_(QueryTrace::Current()), stage_(stage) {
  if (trace_ != nullptr) start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (trace_ != nullptr) trace_->AddSpan(stage_, NsSince(start_));
}

}  // namespace nodedp

// Always-on serving observability: a lock-cheap metrics registry.
//
// The serve layer answers "is it up?" with the `stats` verb; this layer
// answers "what is p99 release_cc latency and how often do we refuse?" —
// continuously, from the running process, in a format scrapers already
// speak. Three metric kinds, the Prometheus trio:
//
//   * Counter   — monotonically non-decreasing double (request counts,
//                 refusals, ε spent);
//   * Gauge     — last-write-wins double (resident bytes, cache entries);
//   * Histogram — fixed-bucket latency distribution with exact
//                 p50/p99/p999 extraction from the bucket counts.
//
// Hot-path cost model (the <2% overhead contract, measured by
// bench/bench_traffic.cc):
//
//   * Handles are resolved once — GetCounter/GetHistogram take the
//     registry mutex, so instrumented code caches the returned pointer in
//     a function-local static. Handles are never invalidated: the
//     registry only ever adds metrics, and an existing (name, labels)
//     pair is returned, not replaced.
//   * Increment/Observe are zero-allocation: one relaxed enabled-check,
//     one shard pick (a cached thread-local hash), and one atomic add on
//     a cache-line-padded shard. No locks, no memory allocation, ever.
//   * Reads (Value, snapshot, exposition) sum the shards; they are
//     tolerant of concurrent writers and never block them.
//
// Exactness: percentile extraction is exact *at bucket resolution* — the
// returned quantile is the smallest bucket upper bound b such that at
// least ceil(q * count) observations were <= b. Observations recorded
// exactly at a bucket boundary therefore report that boundary exactly
// (tests/obs_test.cc pins this); between boundaries the histogram answers
// with the conservative upper bound, never an interpolated guess.
//
// SetMetricsEnabled(false) turns every Increment/Observe into an early
// return — the switch benches use to measure instrumentation overhead.
// It is a measurement tool, not an operator feature: counters stop while
// disabled, so the exposition under-reports whatever ran in the gap.

#ifndef NODEDP_OBS_METRICS_H_
#define NODEDP_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nodedp {

// Global instrumentation switch (default on). Relaxed-atomic read on
// every Increment/Observe; see the header comment for what "disabled"
// means.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

// Write shards per metric. Power of two; 8 lines * 64B keeps a counter
// within one page while letting 8 hot threads increment without
// bouncing a shared cache line.
inline constexpr std::size_t kMetricShards = 8;

// A monotonically non-decreasing sum. Negative deltas are dropped (a
// counter must never go down; the caller bug would otherwise corrupt
// every rate computed from it).
class Counter {
 public:
  void Increment() { Add(1.0); }
  void Add(double delta);

  // Sum over shards. Concurrent-writer tolerant.
  double Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;

  struct alignas(64) Shard {
    std::atomic<double> value{0.0};
  };
  Shard shards_[kMetricShards];
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. Bucket upper bounds are set at registration
// and never change; an implicit +Inf bucket catches overflow. An
// observation v lands in the first bucket with v <= bound (Prometheus
// `le` semantics).
class Histogram {
 public:
  void Observe(double value);

  // A coherent-enough view for exposition and percentile math: per-bucket
  // (non-cumulative) counts, total count, and the sum of observations.
  // Taken without locking writers; counts observed mid-Observe can be off
  // by the in-flight observations, never torn.
  struct Snapshot {
    std::vector<long long> counts;  // one per bound, plus the +Inf bucket
    long long count = 0;
    double sum = 0.0;
  };
  Snapshot TakeSnapshot() const;

  // The smallest bucket upper bound covering quantile q in [0, 1]: with N
  // recorded observations, the bound b of the first bucket whose
  // cumulative count reaches ceil(q * N) (at least 1). Returns 0 when
  // empty and +infinity when the quantile lands in the overflow bucket.
  double Percentile(double q) const;
  static double PercentileOf(const Snapshot& snapshot,
                             const std::vector<double>& bounds, double q);

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  // Each shard owns its own bucket array so two threads observing
  // concurrently touch disjoint cache lines.
  struct alignas(64) Shard {
    std::vector<std::atomic<long long>> buckets;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;  // strictly increasing, finite
  Shard shards_[kMetricShards];
};

// Name-keyed registry of metric families. A family is one metric name
// with one type and help string; its series are the distinct label sets.
// Registration is idempotent: the same (name, labels) returns the same
// handle forever. Re-registering a name with a different type, or a
// histogram with different bounds, is a programmer error (CHECK).
//
// Metric and label names must match Prometheus rules
// ([a-zA-Z_:][a-zA-Z0-9_:]*; labels without the colon); label values are
// escaped on exposition.
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  // The process-wide registry every instrumented layer reports into, and
  // the one the `metrics` wire verb exposes.
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels,
                      const std::string& help);
  Counter* GetCounter(const std::string& name, const std::string& help) {
    return GetCounter(name, {}, help);
  }

  Gauge* GetGauge(const std::string& name, const Labels& labels,
                  const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help) {
    return GetGauge(name, {}, help);
  }

  Histogram* GetHistogram(const std::string& name, const Labels& labels,
                          const std::string& help,
                          std::vector<double> bounds);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds) {
    return GetHistogram(name, {}, help, std::move(bounds));
  }

  // The default bucket layout for wall-time histograms, in nanoseconds:
  // a 1-2-5 ladder from 1µs to 10s plus a 30s bound, 23 buckets. Wide
  // enough that a single layout serves socket dispatch and 10M-vertex
  // family warms alike, so snapshots of different histograms can be
  // summed bucket-by-bucket.
  static const std::vector<double>& LatencyBucketsNs();

  // Prometheus text exposition format, version 0.0.4: families sorted by
  // name, `# HELP` / `# TYPE` once per family, series sorted by label
  // key; histograms expose cumulative `_bucket{le=...}` plus `_sum` and
  // `_count`. Ends with a trailing newline.
  std::string PrometheusText() const;

  // Flat numeric view for eval/json_report.h: one sample per counter and
  // gauge series ("name{labels}"), and per histogram series its _count,
  // _sum, _p50, _p99, and _p999. Benches dump these into BENCH_*.json so
  // the CI artifact carries the same numbers the `metrics` verb serves.
  struct Sample {
    std::string name;
    double value = 0.0;
  };
  std::vector<Sample> Samples() const;

 private:
  enum class FamilyType { kCounter, kGauge, kHistogram };

  struct Family {
    FamilyType type = FamilyType::kCounter;
    std::string help;
    std::vector<double> bounds;  // histogram families only
    // Keyed by the serialized label set ('{k="v",...}', keys sorted), so
    // exposition order is deterministic.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Family& FindOrCreateFamilyLocked(const std::string& name, FamilyType type,
                                   const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace nodedp

#endif  // NODEDP_OBS_METRICS_H_

// Per-query trace spans and the structured slow-query log.
//
// A QueryTrace is one request's worth of context: the protocol layer
// constructs it at dispatch (one per request line), deeper layers attach
// ScopedSpans to it without any plumbing — the active trace rides a
// thread_local, which is correct here because a request is handled
// start-to-finish on one thread (stdin loop or per-connection socket
// thread), and ExtensionFamily's internal worker pool does not need
// per-cell spans (cell totals are histogrammed directly).
//
// On destruction, if the query's wall time crossed the slow-query
// threshold (env NODEDP_SLOW_QUERY_NS, or SetSlowQueryThresholdNs), the
// trace emits one structured line with its span breakdown:
//
//   slow_query verb=release_cc target=g1 total_ns=52000123
//       spans=admit:1200,family:48000000,mechanism:3900000
//
// (one line on the wire; wrapped here for readability)
//
// Span accounting is by stage *name*: two ScopedSpans with the same name
// accumulate into one entry, so per-cell repetitions fold naturally.
// Stage names must be string literals (the trace stores the pointer).
//
// Cost model matches src/obs/metrics.h: when no trace is active (e.g.
// ExtensionFamily used as a library, or benches that bypass the
// protocol), ScopedSpan is two branch instructions — no clock call, no
// allocation. QueryTrace itself lives on the dispatcher's stack.

#ifndef NODEDP_OBS_TRACE_H_
#define NODEDP_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <string>

namespace nodedp {

// Queries whose total wall-ns meet or exceed the threshold log one
// slow_query line at trace destruction. <= 0 disables (the default when
// NODEDP_SLOW_QUERY_NS is unset). The env variable is read once, at
// first use; SetSlowQueryThresholdNs overrides it afterwards.
long long SlowQueryThresholdNs();
void SetSlowQueryThresholdNs(long long threshold_ns);

// Where slow_query lines go: stderr by default; tests capture them by
// installing a sink (nullptr restores stderr). The sink must be
// callable from any request thread.
using SlowQueryLogSink = void (*)(const std::string& line);
void SetSlowQueryLogSink(SlowQueryLogSink sink);

class QueryTrace {
 public:
  // `verb` must outlive the trace (protocol dispatch passes literals).
  explicit QueryTrace(const char* verb);
  ~QueryTrace();

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  // The trace attached to the calling thread, if any.
  static QueryTrace* Current();

  // Names the object the query touched (graph name). Stored by value;
  // safe to pass a transient string_view's contents.
  void set_target(const std::string& target) { target_ = target; }

  // Adds `ns` to the stage's accumulated time. Same-name spans merge;
  // beyond kMaxStages distinct names, further stages are counted in an
  // "other" overflow entry rather than dropped silently.
  void AddSpan(const char* stage, long long ns);

  // Wall-ns since construction.
  long long TotalNs() const;

  // The slow_query line (without trailing newline); exposed for tests.
  std::string Describe() const;

 private:
  static constexpr std::size_t kMaxStages = 16;

  struct Stage {
    const char* name = nullptr;
    long long ns = 0;
  };

  const char* verb_;
  std::string target_;
  std::chrono::steady_clock::time_point start_;
  Stage stages_[kMaxStages];
  std::size_t num_stages_ = 0;
  long long overflow_ns_ = 0;
  QueryTrace* previous_;  // restored on destruction (traces may nest)
};

// Times a named stage of the current thread's QueryTrace. Inactive (and
// clock-free) when no trace is installed.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* stage);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  QueryTrace* trace_;  // nullptr when inactive
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nodedp

#endif  // NODEDP_OBS_TRACE_H_

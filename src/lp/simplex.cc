#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace nodedp {

const char* LpStatusName(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

namespace {

// Dense tableau with an explicit objective row, supporting both phases.
class Tableau {
 public:
  Tableau(const LpProblem& problem, double tolerance)
      : tol_(tolerance),
        num_vars_(problem.num_vars()),
        num_rows_(problem.num_constraints()) {
    // Column layout: [structural | slack/surplus | artificial | rhs].
    slack_begin_ = num_vars_;
    artificial_begin_ = slack_begin_ + num_rows_;
    // Count artificials: one per negative-rhs row.
    num_artificials_ = 0;
    for (int i = 0; i < num_rows_; ++i) {
      if (problem.rhs(i) < 0.0) ++num_artificials_;
    }
    num_cols_ = artificial_begin_ + num_artificials_;  // excluding rhs
    rows_.assign(num_rows_, std::vector<double>(num_cols_ + 1, 0.0));
    obj_.assign(num_cols_ + 1, 0.0);
    basis_.resize(num_rows_);
    active_.assign(num_rows_, true);
    row_negated_.assign(num_rows_, false);

    int next_artificial = artificial_begin_;
    for (int i = 0; i < num_rows_; ++i) {
      const bool negate = problem.rhs(i) < 0.0;
      row_negated_[i] = negate;
      const double sign = negate ? -1.0 : 1.0;
      for (const auto& [var, coeff] : problem.row(i)) {
        rows_[i][var] += sign * coeff;  // duplicates sum
      }
      rows_[i][slack_begin_ + i] = sign;  // slack (+1) or surplus (-1)
      rows_[i][num_cols_] = sign * problem.rhs(i);
      if (negate) {
        rows_[i][next_artificial] = 1.0;
        basis_[i] = next_artificial;
        ++next_artificial;
      } else {
        basis_[i] = slack_begin_ + i;
      }
    }
  }

  int num_artificials() const { return num_artificials_; }

  // Phase-I objective: maximize -sum(artificials). Returns priced-out row.
  void LoadPhaseOneObjective() {
    std::fill(obj_.begin(), obj_.end(), 0.0);
    // Row entries are (z_j - c_j); artificial cost is -1 so c_j = -1 there.
    for (int j = artificial_begin_; j < num_cols_; ++j) obj_[j] = 1.0;
    PriceOutBasis();
  }

  void LoadPhaseTwoObjective(const std::vector<double>& c) {
    std::fill(obj_.begin(), obj_.end(), 0.0);
    for (int j = 0; j < num_vars_; ++j) obj_[j] = -c[j];
    PriceOutBasis();
  }

  // Runs simplex pivots until optimality, unboundedness, or the iteration
  // budget is exhausted. `allow_artificial_entering` is false in Phase II.
  LpStatus Pivot(long long max_iterations, int stall_threshold,
                 bool allow_artificial_entering, long long* iterations) {
    int stall = 0;
    double last_objective = Objective();
    while (*iterations < max_iterations) {
      const bool bland = stall >= stall_threshold;
      const int entering = ChooseEntering(allow_artificial_entering, bland);
      if (entering < 0) return LpStatus::kOptimal;
      const int leaving_row = ChooseLeavingRow(entering, bland);
      if (leaving_row < 0) return LpStatus::kUnbounded;
      DoPivot(leaving_row, entering);
      ++*iterations;
      const double objective = Objective();
      if (objective > last_objective + tol_) {
        stall = 0;
        last_objective = objective;
      } else {
        ++stall;
      }
    }
    return LpStatus::kIterationLimit;
  }

  // Current objective value (for the loaded objective row).
  double Objective() const { return obj_[num_cols_]; }

  // Pivots artificial variables out of the basis where possible; rows where
  // no structural/slack pivot exists are redundant and get deactivated.
  void DriveOutArtificials(long long* iterations) {
    for (int i = 0; i < num_rows_; ++i) {
      if (!active_[i] || basis_[i] < artificial_begin_) continue;
      int pivot_col = -1;
      for (int j = 0; j < artificial_begin_; ++j) {
        if (std::fabs(rows_[i][j]) > tol_) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) {
        DoPivot(i, pivot_col);
        ++*iterations;
      } else {
        active_[i] = false;  // redundant row (all-zero constraints)
      }
    }
  }

  void ExtractSolution(LpSolution* solution) const {
    solution->x.assign(num_vars_, 0.0);
    for (int i = 0; i < num_rows_; ++i) {
      if (active_[i] && basis_[i] < num_vars_) {
        solution->x[basis_[i]] = rows_[i][num_cols_];
      }
    }
    solution->duals.assign(num_rows_, 0.0);
    for (int i = 0; i < num_rows_; ++i) {
      const double reduced = obj_[slack_begin_ + i];
      solution->duals[i] = row_negated_[i] ? -reduced : reduced;
    }
  }

 private:
  void PriceOutBasis() {
    for (int i = 0; i < num_rows_; ++i) {
      if (!active_[i]) continue;
      const double factor = obj_[basis_[i]];
      if (factor == 0.0) continue;
      for (int j = 0; j <= num_cols_; ++j) obj_[j] -= factor * rows_[i][j];
    }
  }

  int ChooseEntering(bool allow_artificial, bool bland) const {
    const int limit = allow_artificial ? num_cols_ : artificial_begin_;
    int best = -1;
    double best_value = -tol_;
    for (int j = 0; j < limit; ++j) {
      if (obj_[j] < best_value) {
        best = j;
        best_value = obj_[j];
        if (bland) break;  // first (lowest-index) negative column
      }
    }
    return best;
  }

  int ChooseLeavingRow(int entering, bool bland) const {
    int best = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < num_rows_; ++i) {
      if (!active_[i]) continue;
      const double a = rows_[i][entering];
      if (a <= tol_) continue;
      const double ratio = rows_[i][num_cols_] / a;
      const bool better =
          ratio < best_ratio - tol_ ||
          (ratio < best_ratio + tol_ && best >= 0 &&
           (bland ? basis_[i] < basis_[best] : false));
      if (best < 0 ? ratio < best_ratio : better) {
        best = i;
        best_ratio = ratio;
      }
    }
    return best;
  }

  void DoPivot(int pivot_row, int pivot_col) {
    std::vector<double>& prow = rows_[pivot_row];
    const double pivot = prow[pivot_col];
    NODEDP_DCHECK(std::fabs(pivot) > tol_);
    const double inv = 1.0 / pivot;
    for (double& value : prow) value *= inv;
    prow[pivot_col] = 1.0;  // cancel rounding
    for (int i = 0; i < num_rows_; ++i) {
      if (i == pivot_row || !active_[i]) continue;
      const double factor = rows_[i][pivot_col];
      if (factor == 0.0) continue;
      for (int j = 0; j <= num_cols_; ++j) rows_[i][j] -= factor * prow[j];
      rows_[i][pivot_col] = 0.0;
    }
    const double ofactor = obj_[pivot_col];
    if (ofactor != 0.0) {
      for (int j = 0; j <= num_cols_; ++j) obj_[j] -= ofactor * prow[j];
      obj_[pivot_col] = 0.0;
    }
    basis_[pivot_row] = pivot_col;
  }

  double tol_;
  int num_vars_;
  int num_rows_;
  int num_cols_;
  int slack_begin_;
  int artificial_begin_;
  int num_artificials_;
  std::vector<std::vector<double>> rows_;
  std::vector<double> obj_;
  std::vector<int> basis_;
  std::vector<bool> active_;
  std::vector<bool> row_negated_;
};

}  // namespace

LpSolution SolveLp(const LpProblem& problem, const SimplexOptions& options) {
  LpSolution solution;
  Tableau tableau(problem, options.tolerance);

  const long long max_iterations =
      options.max_iterations > 0
          ? options.max_iterations
          : 50LL * (problem.num_constraints() + problem.num_vars() + 1) +
                5000;

  if (tableau.num_artificials() > 0) {
    tableau.LoadPhaseOneObjective();
    const LpStatus phase1 =
        tableau.Pivot(max_iterations, options.stall_threshold,
                      /*allow_artificial_entering=*/true,
                      &solution.iterations);
    if (phase1 == LpStatus::kIterationLimit) {
      solution.status = LpStatus::kIterationLimit;
      return solution;
    }
    // Phase-I optimum is -sum(artificials); feasible iff it reaches ~0.
    if (tableau.Objective() < -1e-7) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    tableau.DriveOutArtificials(&solution.iterations);
  }

  tableau.LoadPhaseTwoObjective(problem.objective());
  const LpStatus phase2 =
      tableau.Pivot(max_iterations, options.stall_threshold,
                    /*allow_artificial_entering=*/false,
                    &solution.iterations);
  solution.status = phase2;
  if (phase2 != LpStatus::kOptimal) return solution;
  solution.objective = tableau.Objective();
  tableau.ExtractSolution(&solution);
  return solution;
}

}  // namespace nodedp

// Linear-program model: maximize c·x subject to Ax <= b, x >= 0.
//
// Constraints are stored sparsely (the forest-polytope LP of Definition 3.1
// touches only |S| or deg(v) variables per row). The solver densifies
// internally.

#ifndef NODEDP_LP_LP_PROBLEM_H_
#define NODEDP_LP_LP_PROBLEM_H_

#include <utility>
#include <vector>

#include "util/check.h"

namespace nodedp {

class LpProblem {
 public:
  // Creates a problem over `num_vars` nonnegative variables with zero
  // objective; set coefficients via SetObjective.
  explicit LpProblem(int num_vars)
      : num_vars_(num_vars), objective_(num_vars, 0.0) {
    NODEDP_CHECK_GE(num_vars, 0);
  }

  int num_vars() const { return num_vars_; }
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  void SetObjective(int var, double coefficient) {
    NODEDP_CHECK_GE(var, 0);
    NODEDP_CHECK_LT(var, num_vars_);
    objective_[var] = coefficient;
  }
  const std::vector<double>& objective() const { return objective_; }

  // Adds the row sum_j coeff_j * x_j <= rhs. Returns the row index.
  // Duplicate variable entries within a row are summed by the solver.
  int AddConstraint(std::vector<std::pair<int, double>> coefficients,
                    double rhs) {
    for (const auto& [var, coeff] : coefficients) {
      (void)coeff;
      NODEDP_CHECK_GE(var, 0);
      NODEDP_CHECK_LT(var, num_vars_);
    }
    rows_.push_back(std::move(coefficients));
    rhs_.push_back(rhs);
    return static_cast<int>(rows_.size()) - 1;
  }

  const std::vector<std::pair<int, double>>& row(int i) const {
    return rows_[i];
  }
  double rhs(int i) const { return rhs_[i]; }

 private:
  int num_vars_;
  std::vector<double> objective_;
  std::vector<std::vector<std::pair<int, double>>> rows_;
  std::vector<double> rhs_;
};

}  // namespace nodedp

#endif  // NODEDP_LP_LP_PROBLEM_H_

// Dense two-phase primal simplex.
//
// Solves max c·x s.t. Ax <= b, x >= 0 (b of arbitrary sign; Phase I with
// artificial variables establishes feasibility when some b_i < 0).
//
// This is the practical stand-in for the ellipsoid method the paper invokes
// for polynomial-time solvability of the forest-polytope LP; the
// cutting-plane driver in core/forest_polytope.h calls it repeatedly as the
// separation oracle adds subtour constraints.
//
// Pivoting: Dantzig rule (most negative reduced cost) with an automatic
// switch to Bland's rule after a stall, which guarantees termination on
// degenerate instances. All comparisons use the tolerance in
// SimplexOptions.

#ifndef NODEDP_LP_SIMPLEX_H_
#define NODEDP_LP_SIMPLEX_H_

#include <vector>

#include "lp/lp_problem.h"

namespace nodedp {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* LpStatusName(LpStatus status);

struct SimplexOptions {
  double tolerance = 1e-9;
  // Hard cap on total pivots (both phases). 0 means automatic:
  // 50 * (rows + cols) + 5000.
  long long max_iterations = 0;
  // Pivots without objective improvement before switching to Bland's rule.
  int stall_threshold = 64;
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;      // primal values, size num_vars (when optimal)
  std::vector<double> duals;  // dual value per constraint (when optimal)
  long long iterations = 0;
};

// Solves `problem`. Deterministic: same input, same pivots, same output.
LpSolution SolveLp(const LpProblem& problem,
                   const SimplexOptions& options = {});

}  // namespace nodedp

#endif  // NODEDP_LP_SIMPLEX_H_

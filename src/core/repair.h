// Constructive proof of Lemma 1.8: a graph with no induced Δ-star has a
// spanning Δ-forest, built by a sequence of "local repairs" (Algorithm 3).
//
// Vertices are inserted in BFS order (each new vertex is a leaf of the
// spanning forest restricted to the already-inserted vertices, hence not a
// cut vertex of the growing induced subgraph, exactly as the induction in
// the paper requires). After attaching a new vertex, at most one vertex can
// exceed degree Δ; a local repair at that vertex v replaces a forest edge
// (v, b) by a graph edge (a, b) between two of v's forest neighbors, which
// exists whenever G has no induced Δ-star. By Claim 4.1 the repair sites
// form a path, so the loop terminates.
//
// Besides proving the lemma, the procedure doubles as a fast *exactness
// certificate* for the Lipschitz extension: if it succeeds, the indicator
// vector of the produced forest lies in P_Δ(G) and f_Δ(G) = f_sf(G)
// (Lemma 3.3, Item 1), so the LP can be skipped entirely.

#ifndef NODEDP_CORE_REPAIR_H_
#define NODEDP_CORE_REPAIR_H_

#include <optional>

#include "graph/forest.h"
#include "graph/graph.h"

namespace nodedp {

struct RepairStats {
  int local_repairs = 0;  // total executions of Algorithm 3 step 6
};

// Attempts to build a spanning forest of g with maximum degree <= delta.
//
// Guaranteed to succeed when s(G) < delta (Lemma 1.8); may also succeed on
// graphs with larger induced stars. Returns nullopt when a repair step finds
// Δ pairwise-non-adjacent forest neighbors (certifying an induced Δ-star,
// at which point the caller falls back to the LP). Requires delta >= 1.
std::optional<Forest> RepairSpanningForest(const Graph& g, int delta,
                                           RepairStats* stats = nullptr);

}  // namespace nodedp

#endif  // NODEDP_CORE_REPAIR_H_

#include "core/baselines.h"

#include <algorithm>

#include "dp/laplace.h"
#include "graph/connectivity.h"
#include "util/check.h"

namespace nodedp {

double EdgeDpConnectedComponents(const Graph& g, double epsilon, Rng& rng) {
  return LaplaceMechanism(CountConnectedComponents(g), /*sensitivity=*/1.0,
                          epsilon, rng);
}

double NaiveNodeDpConnectedComponents(const Graph& g, double epsilon,
                                      Rng& rng) {
  const double sensitivity = std::max(1, g.NumVertices() - 1);
  return LaplaceMechanism(CountConnectedComponents(g), sensitivity, epsilon,
                          rng);
}

Result<double> FixedDeltaNodeDpConnectedComponents(
    const Graph& g, int delta, double epsilon, Rng& rng,
    const ExtensionOptions& options) {
  NODEDP_CHECK_GE(delta, 1);
  NODEDP_CHECK_GT(epsilon, 0.0);
  Result<ExtensionValue> value = EvalLipschitzExtension(g, delta, options);
  if (!value.ok()) return value.status();
  const double count_epsilon = epsilon / 2.0;
  const double forest_epsilon = epsilon / 2.0;
  const double count = LaplaceMechanism(g.NumVertices(), /*sensitivity=*/1.0,
                                        count_epsilon, rng);
  const double forest = LaplaceMechanism(value->value, delta, forest_epsilon,
                                         rng);
  return count - forest;
}

}  // namespace nodedp

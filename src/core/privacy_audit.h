// Empirical sensitivity auditing.
//
// The privacy of Algorithm 1 rests on two Lipschitz facts that are proved
// on paper but easy to break in code (an off-by-one in the LP constraints,
// a wrong scale in GEM): (i) the extension f_Δ changes by at most Δ between
// node-neighbors, and (ii) the GEM scores s_i change by at most 1. This
// module measures both over sampled node-neighbor pairs (vertex insertions
// with random edge sets, and vertex deletions), reporting the worst
// observed ratio. A ratio above 1 + tolerance is a privacy bug, full stop;
// the audit is wired into the test suite and usable as a release gate.
//
// Auditing is a measurement of the implementation, not a proof; it samples
// neighbors rather than enumerating them.

#ifndef NODEDP_CORE_PRIVACY_AUDIT_H_
#define NODEDP_CORE_PRIVACY_AUDIT_H_

#include <vector>

#include "core/lipschitz_extension.h"
#include "graph/graph.h"
#include "util/random.h"

namespace nodedp {

struct AuditOptions {
  // Node-neighbor pairs sampled per (graph, delta) combination: half vertex
  // insertions with i.i.d. Bernoulli(edge_p) edges, half deletions of a
  // random vertex (skipped when the graph is empty).
  int neighbor_samples = 20;
  double edge_p = 0.5;
  ExtensionOptions extension;
};

struct AuditReport {
  // max over sampled pairs of |f_Δ(G) - f_Δ(G')| / Δ; must be <= 1.
  double worst_extension_ratio = 0.0;
  // max over sampled pairs and i of |s_i(G) - s_i(G')|; must be <= 1.
  double worst_score_sensitivity = 0.0;
  // max observed f_Δ(G') - f_Δ(G) < 0 case, i.e. violation of monotonicity
  // under insertion (should stay ~0; monotone extensions only improve).
  double worst_monotonicity_violation = 0.0;
  int pairs_audited = 0;
};

// Audits the extension Lipschitz constants on `g` over the given deltas.
AuditReport AuditExtensionLipschitz(const Graph& g,
                                    const std::vector<double>& deltas,
                                    Rng& rng,
                                    const AuditOptions& options = {});

// Audits the sensitivity of the GEM score vector (Algorithm 4 steps 5-6)
// produced by the Algorithm 1 pipeline at privacy budget `epsilon` and
// failure probability `beta`.
AuditReport AuditGemScoreSensitivity(const Graph& g, double epsilon,
                                     double beta, Rng& rng,
                                     const AuditOptions& options = {});

}  // namespace nodedp

#endif  // NODEDP_CORE_PRIVACY_AUDIT_H_

#include "core/repair.h"

#include <queue>
#include <vector>

#include "util/check.h"

namespace nodedp {

namespace {

// One pass of Algorithm 3: repeatedly repair while some vertex has forest
// degree delta + 1. `previous` is v_{i-1}, the vertex repaired in the prior
// iteration (excluded from the neighbor set N in step 4).
bool RunLocalRepairs(const Graph& g, int delta, Forest& forest, int previous,
                     int overloaded, RepairStats* stats) {
  while (overloaded >= 0) {
    NODEDP_DCHECK(forest.Degree(overloaded) == delta + 1);
    // Step 4: N = delta forest-neighbors of v_i, excluding v_{i-1}.
    std::vector<int> candidates;
    candidates.reserve(delta);
    for (int nbr : forest.Neighbors(overloaded)) {
      if (nbr != previous) candidates.push_back(nbr);
    }
    NODEDP_DCHECK(static_cast<int>(candidates.size()) == delta ||
                  previous < 0);
    if (static_cast<int>(candidates.size()) > delta) {
      candidates.resize(delta);
    }
    // Step 5: find a, b in N adjacent in G. Failure certifies an induced
    // delta-star centered at v_i.
    int a = -1;
    int b = -1;
    for (size_t i = 0; i < candidates.size() && a < 0; ++i) {
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        if (g.HasEdge(candidates[i], candidates[j])) {
          a = candidates[i];
          b = candidates[j];
          break;
        }
      }
    }
    if (a < 0) return false;
    // Step 6: F <- (F \ {(v_i, b)}) ∪ {(a, b)}.
    forest.RemoveEdge(overloaded, b);
    forest.AddEdge(a, b);
    if (stats != nullptr) ++stats->local_repairs;
    // Per Claim 4.1(c), the only possibly-overloaded vertex is now a.
    previous = overloaded;
    overloaded = (forest.Degree(a) > delta) ? a : -1;
  }
  return true;
}

}  // namespace

std::optional<Forest> RepairSpanningForest(const Graph& g, int delta,
                                           RepairStats* stats) {
  NODEDP_CHECK_GE(delta, 1);
  const int n = g.NumVertices();
  Forest forest(n);

  // BFS insertion order: parents precede children, so each inserted vertex
  // attaches as a leaf (the non-cut-vertex v_0 of the paper's induction).
  std::vector<int> parent(n, -1);
  std::vector<bool> visited(n, false);
  std::queue<int> queue;
  std::vector<int> order;
  order.reserve(n);
  for (int root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    queue.push(root);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      order.push_back(u);
      for (int v : g.Neighbors(u)) {
        if (visited[v]) continue;
        visited[v] = true;
        parent[v] = u;
        queue.push(v);
      }
    }
  }

  for (int v0 : order) {
    const int v1 = parent[v0];
    if (v1 < 0) continue;  // component root: inserted with no edge
    forest.AddEdge(v0, v1);
    if (forest.Degree(v1) > delta) {
      if (!RunLocalRepairs(g, delta, forest, /*previous=*/v0,
                           /*overloaded=*/v1, stats)) {
        return std::nullopt;
      }
    }
  }
  NODEDP_DCHECK(forest.MaxDegree() <= delta);
  NODEDP_DCHECK(forest.IsSpanningForestOf(g));
  return forest;
}

}  // namespace nodedp

#include "core/down_sensitivity.h"

#include <cmath>
#include <vector>

#include "graph/subgraph.h"
#include "util/check.h"

namespace nodedp {

StarNumberResult DownSensitivitySpanningForest(
    const Graph& g, const StarNumberOptions& options) {
  return InducedStarNumber(g, options);
}

double DownSensitivityBruteForce(
    const Graph& g, const std::function<double(const Graph&)>& statistic) {
  const int n = g.NumVertices();
  NODEDP_CHECK_LE(n, 20);
  // Evaluate the statistic once per induced subgraph (indexed by mask).
  const uint64_t num_masks = 1ULL << n;
  std::vector<double> value(num_masks);
  for (uint64_t mask = 0; mask < num_masks; ++mask) {
    value[mask] = statistic(InduceByMask(g, mask).graph);
  }
  double best = 0.0;
  for (uint64_t mask = 1; mask < num_masks; ++mask) {
    for (int v = 0; v < n; ++v) {
      if (!((mask >> v) & 1ULL)) continue;
      const uint64_t smaller = mask & ~(1ULL << v);
      best = std::max(best, std::fabs(value[mask] - value[smaller]));
    }
  }
  return best;
}

}  // namespace nodedp

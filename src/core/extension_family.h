// ExtensionFamily: amortized evaluation of the whole family {f_Δ} on one
// fixed graph — the access pattern of Algorithm 1 (the GEM grid sweeps
// Δ ∈ {1, 2, 4, ..., Δmax}) and of every experiment that runs many noise
// trials on the same input.
//
// Amortizations, all exact (never change any returned value):
//   * per-component decomposition, done once;
//   * value cache keyed by Δ;
//   * monotone exactness watermark: f_Δ0 = f_sf (for a component) implies
//     f_Δ = f_sf for all Δ >= Δ0 by monotonicity + underestimation
//     (Lemma 3.3), so at most one Δ per component ever pays for the
//     certificate;
//   * subtour-cut pool shared across Δ: constraints (5) do not mention Δ,
//     so cuts separated at one Δ pre-tighten the LP at every other Δ;
//   * fast-path certificate via Algorithm 3 repair + Fürer–Raghavachari-
//     style local search (core/degree_improve.h), skipping the LP wherever
//     a spanning Δ-forest is found.
//
// Construction is sharded: one O(n + m) ComponentLabels pass partitions the
// vertices, each component's spanning-forest size is |C| − 1 by the
// connectivity invariant (no per-component union-find pass), and the
// per-component subgraph inductions run concurrently on the current thread
// pool. Induction is also *lazy*: the deferred constructor records only the
// partition, and each component is induced at most once — by the first cell
// evaluation that needs it (std::call_once) — so a Warm() over the Δ grid
// pipelines induction, fast-path probes, and LP solves instead of running
// them as serial phases. The host-graph copy kept for lazy induction is
// released as soon as every component has been induced.
//
// Scheduling is cost-aware (docs/ARCHITECTURE.md "Scheduling"). Every
// component carries the weight |C| + m_C (free: both terms fall out of the
// partition pass). Eager inductions dispatch largest-first, and a batch's
// unsettled cells dispatch by estimated LP cost — component weight times
// the component's unsolved cells in the batch — so on power-law-skewed
// inputs the giant component starts immediately instead of serializing the
// tail behind a pool-width's worth of luck. On top of that, warming is
// *demand-first*: a Values() caller that finds its cell claimed by a
// concurrent batch bumps that cell to the front of the owner's claim
// queue, and each cell's value is published (and its in-flight claim
// released) the moment the cell settles — so queries racing a warm
// unblock as early as possible rather than at the end of the owner's
// whole batch. None of this changes any result: cells still write
// index-addressed slots, values/watermarks are order-independent, and the
// order-sensitive cut-pool merge still happens in fixed cell order.

#ifndef NODEDP_CORE_EXTENSION_FAMILY_H_
#define NODEDP_CORE_EXTENSION_FAMILY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/forest_polytope.h"
#include "core/lipschitz_extension.h"
#include "graph/graph.h"
#include "util/status.h"

namespace nodedp {

// Thread safety: Value(), Values(), Warm(), stats(), and MemoryBytes() may
// be called concurrently from multiple threads (e.g. parallel noise trials
// sharing one warmed family, or queries arriving while a load-time warm is
// still running). Cache/watermark/cut-pool/stats mutations happen under an
// internal mutex; the expensive cell evaluations run outside it against
// immutable snapshots. Unsettled (component, Δ) cells are claimed through
// an in-flight registry, so concurrent callers never duplicate an LP solve:
// a caller that needs a cell another caller is already evaluating blocks on
// exactly that cell — not on the whole batch. Returned values are identical
// regardless of interleaving (the LP optimum does not depend on which valid
// cuts seed it). stats() returns a snapshot copy taken under the same
// mutex, so it is safe to call while queries are in flight (the serving
// layer does).
class ExtensionFamily {
 public:
  // Tag selecting the deferred constructor: record the component partition
  // (one O(n + m) labels pass) but induce nothing. Induction then happens
  // lazily, per component, on first use — Warm()/WarmAsync() exploit this
  // to overlap induction with grid-cell evaluation.
  struct DeferInduction {};

  // Copies the components of interest out of `g`, so the family owns its
  // inputs and cannot dangle. Inductions run concurrently on the current
  // thread pool; the resulting family is identical at any width.
  explicit ExtensionFamily(const Graph& g,
                           const ExtensionOptions& options = {});

  // Deferred variant: partitions but does not induce. Keeps a copy of `g`
  // until every component has been induced (MemoryBytes() reports it).
  ExtensionFamily(const Graph& g, const ExtensionOptions& options,
                  DeferInduction);

  // Incremental (streaming-update) constructor: builds the family for
  // `graph`, which MUST be `base`'s graph with exactly `inserts` applied —
  // normalized u < v edges that are actually new, i.e. the `added` list of
  // Graph::ApplyEdgeDelta. Components the batch does not touch adopt
  // base's state wholesale (induced subgraph, value cache, monotone
  // watermark, cut pool): an insert-only delta never changes an untouched
  // component's vertex or edge set, so the adopted cells stay exact.
  // Components the batch merges or edits are rebuilt cold, with lazy
  // induction from `graph` — a following Warm(grid) therefore re-solves
  // exactly the invalidated (component, Δ) cells and hits cache on every
  // adopted one, and queries arriving mid-re-warm block only on
  // invalidated cells through the usual in-flight registry. `base` may be
  // serving queries or warming concurrently: its mutable state is copied
  // under its lock; cells still in flight there are simply not adopted and
  // re-solve here to the same values. Values()/Warm() results are
  // bit-identical to a cold rebuild on `graph`.
  ExtensionFamily(const Graph& graph, const ExtensionFamily& base,
                  const std::vector<Edge>& inserts);

  // Joins an in-flight WarmAsync() thread, if any.
  ~ExtensionFamily();

  ExtensionFamily(const ExtensionFamily&) = delete;
  ExtensionFamily& operator=(const ExtensionFamily&) = delete;

  // f_Δ(G). Cached; requires delta >= 1. Fails only on LP resource
  // exhaustion. Equivalent to Values({delta}) — a one-Δ batch — so it
  // shares cells with concurrent batches instead of re-solving them.
  Result<double> Value(double delta);

  // Evaluates the whole grid at once — the Algorithm 4 access pattern — and
  // returns f_Δ(G) for each delta, in input order. Unsettled
  // (component, Δ) cells are solved concurrently on the current thread
  // pool; each cell works against a snapshot of the family taken before the
  // batch (cut pool, watermark, fast-path floor), and the cells' updates
  // are merged back in a fixed order afterwards. Both the returned values
  // and the post-call family state are therefore bit-identical at any
  // thread count. Cells already being evaluated by a concurrent caller are
  // not re-solved: this call blocks until those cells settle and reads the
  // merged results. Requires every delta >= 1; fails only on LP resource
  // exhaustion.
  //
  // Relative to sequential Value() calls the batch trades a little
  // amortization for parallelism: cells do not see cuts or watermarks
  // discovered by other cells of the same batch (they are still shared with
  // every later call). Values are unaffected — the LP optimum does not
  // depend on which valid cuts seed it.
  Result<std::vector<double>> Values(const std::vector<double>& deltas);

  // Evaluates every Δ in `grid` (the load-time warm). On a deferred family
  // this pipelines the stages: a cell's evaluation induces its component on
  // first touch, so early components' fast-path probes and LP solves run
  // while later components are still being induced. Equivalent to Values()
  // in every observable way (same cells, same merge order, same resulting
  // state); only the Status is returned.
  Status Warm(const std::vector<double>& grid);

  // Starts Warm(grid) on a background thread and returns immediately.
  // Queries issued meanwhile are safe and block only on the cells they
  // need (see Values). At most one async warm may be in flight; the
  // destructor joins it. Collect the outcome with WaitWarm().
  void WarmAsync(std::vector<double> grid);

  // Blocks until the WarmAsync() warm finishes and returns its Status.
  // OK if WarmAsync was never called.
  Status WaitWarm();

  // f_sf(G) (the non-private true value; used to build GEM scores).
  double SpanningForestSizeValue() const { return f_sf_total_; }

  int num_vertices() const { return num_vertices_; }
  const ExtensionOptions& options() const { return options_; }

  // Non-singleton components in the partition (fixed at construction).
  int num_components() const { return static_cast<int>(components_.size()); }

  // Incremental-constructor telemetry: components adopted from the base
  // family vs rebuilt because the delta touched them. Both zero for
  // cold-built families.
  int components_adopted() const { return components_adopted_; }
  int components_invalidated() const { return components_invalidated_; }

  // Heap footprint: component graphs (plus the host-graph copy while lazy
  // induction still needs it), partition vertex lists, cut pools, and the
  // per-Δ value caches. Safe to call while queries are in flight; feeds
  // the serving layer's cache-eviction policy.
  std::size_t MemoryBytes() const;

  // Cumulative work statistics across all Value() calls.
  struct Stats {
    int lp_evaluations = 0;    // component evaluations that ran the LP
    int fast_certificates = 0; // component evaluations settled by a forest
    int watermark_hits = 0;    // settled by the monotone watermark
    int cache_hits = 0;
    int cut_rounds = 0;
    int cuts_added = 0;
    long long simplex_iterations = 0;
  };
  // Snapshot copy, taken under the internal mutex (all mutations happen
  // under it too), so concurrent callers see a consistent view.
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  struct ComponentState {
    // Host-graph ids of this component, sorted ascending. The lazy
    // induction input; retained afterwards so MemoryBytes() never races an
    // in-flight induction. Empty for the whole-graph pseudo-component of
    // decompose_components = false.
    std::vector<int> vertices;
    // |C| - 1, by the connectivity invariant — no spanning-forest pass.
    double f_sf = 0.0;
    // |C| + m_C — the LPT cost estimate driving induction and cell
    // dispatch order. Both terms fall out of the partition pass (m_C from
    // the degree sum), so it costs no extra traversal. Fixed after
    // construction.
    double weight = 0.0;
    // The induced subgraph. Written once, inside `induce_once`; readable
    // once `induced` is true (acquire/release pairing).
    Graph graph;
    std::once_flag induce_once;
    std::atomic<bool> induced{false};
    // Smallest Δ known to satisfy f_Δ = f_sf (monotone watermark).
    double exact_from = std::numeric_limits<double>::infinity();
    // Largest integer cap where the fast-path forest search already failed
    // (skip re-running the heuristic below it; purely an optimization).
    int fast_path_failed_at = 0;
    std::vector<std::vector<int>> cut_pool;
    std::map<double, double> cached;
    // Δs of this component currently being evaluated by some Values()
    // batch, sorted ascending (guarded by mu_). A concurrent caller that
    // needs one waits on cells_cv_ instead of duplicating the solve. Kept
    // per component — a handful of grid Δs at most — so claim/release is
    // allocation-free on the warm path.
    std::vector<double> inflight_deltas;
  };

  // The shared front half of both constructors: one ComponentLabels pass
  // partitions the vertices, sets every component's f_sf to |C| - 1 and
  // weight to |C| + m_C, and derives f_sf_total_ = n - #components — the
  // constructor's only whole-graph traversal. `retain_host` copies g into
  // host_graph_ for lazy induction (the deferred constructor); the eager
  // constructor induces straight from its argument instead.
  void InitComponents(const Graph& g, bool retain_host);

  // Sets every component's weight to |C| + m_C from `host`'s degrees —
  // the incremental constructor's weight pass (InitComponents computes
  // weights inline; the incremental path assembles components_ itself).
  void AssignComponentWeights(const Graph& host);

  // Claim order for the eager constructor's induction loop and for batch
  // cells: indices sorted by descending cost, ties broken ascending so the
  // order is deterministic. Identity when options_.dispatch_order is
  // kIndexOrdered.
  std::vector<std::int64_t> CostOrder(
      const std::vector<double>& costs) const;

  // Induces `component` from `host`, exactly once across all threads
  // (later callers return immediately, or wait for the one in-flight
  // induction). Debug builds CHECK the |C| - 1 invariant. The eager
  // constructor passes its argument directly (no host copy is ever made);
  // lazy callers pass the retained host_graph_.
  void EnsureInduced(ComponentState& component, const Graph& host);

  // Drops the host-graph copy once every component has been induced.
  // Requires mu_; safe against concurrent inductions because the atomic
  // countdown in EnsureInduced orders every host-graph read before the
  // zero observed here.
  void MaybeReleaseHostGraphLocked();

  // One unsettled (component, Δ) cell of a Values() batch, planned under
  // the lock with snapshots of the mutable component state it reads.
  struct CellTask {
    int component;
    double delta;
    int fast_path_failed_at;               // snapshot
    std::vector<std::vector<int>> pool;    // snapshot of the cut pool
  };

  // The cell's result. Mutations are returned for the deterministic merge
  // instead of applied in place.
  struct CellOutcome {
    bool ok = true;
    std::string error;
    bool fast_certificate = false;  // value == f_sf, certified by a forest
    double value = 0.0;
    int fast_path_failed_at = 0;
    int cut_rounds = 0;
    int cuts_added = 0;
    long long simplex_iterations = 0;
    std::vector<std::vector<int>> new_cuts;
  };

  // Runs outside the lock: touches only the task's snapshots and the
  // component fields that are immutable after induction (graph, f_sf).
  CellOutcome EvaluateCell(const ComponentState& component,
                           CellTask& task) const;

  // Per-batch dynamic claim queue (defined in the .cc): LPT order with a
  // demand-first fast lane that concurrent callers awaiting a cell push
  // into. Shared between the owning batch's workers and the registry below.
  struct BatchQueue;

  // Publishes one settled cell under mu_ — value cache, watermark,
  // fast-path floor — and releases its in-flight claim so awaiting callers
  // unblock per cell, not per batch. Order-independent by construction:
  // cache insert of a uniquely-owned key, min over the watermark, max over
  // the floor. The order-sensitive cut-pool append stays in the batch's
  // fixed-order merge.
  void PublishCellLocked(const CellTask& cell, const CellOutcome& outcome);

  int num_vertices_ = 0;
  double f_sf_total_ = 0.0;
  ExtensionOptions options_;
  int components_adopted_ = 0;
  int components_invalidated_ = 0;

  // Lazy-induction support: the host graph retained until every component
  // has been induced, and the countdown that tells us when that is.
  Graph host_graph_;
  std::atomic<int> remaining_inductions_{0};

  mutable std::mutex mu_;
  bool host_released_ = true;  // guarded by mu_
  // unique_ptr elements because ComponentState holds a std::once_flag.
  std::vector<std::unique_ptr<ComponentState>> components_;
  // Signaled whenever a batch releases its in-flight cells (see
  // ComponentState::inflight_deltas).
  std::condition_variable cells_cv_;
  // Callers currently parked on cells_cv_, guarded by mu_. Per-cell
  // publication only broadcasts when this is non-zero, so the uncontended
  // warm never pays a notify per cell.
  int cell_waiters_ = 0;
  // Live batch queues, guarded by mu_ — one entry per Values() batch with
  // unclaimed cells, registered at planning, deregistered at that batch's
  // merge. An awaiting caller asks each live batch for its cell (an
  // immutable per-batch sorted index, so registration is one bulk build
  // instead of a map node per cell) and bumps it to the front of the
  // owner's queue (demand-first warming). Lock order: mu_ then the queue's
  // own mutex, never the reverse.
  std::vector<std::shared_ptr<BatchQueue>> inflight_batches_;
  Stats stats_;

  // WarmAsync state.
  std::mutex warm_mu_;
  std::condition_variable warm_cv_;
  bool warm_done_ = true;      // guarded by warm_mu_
  Status warm_status_;         // guarded by warm_mu_
  std::thread warm_thread_;
};

}  // namespace nodedp

#endif  // NODEDP_CORE_EXTENSION_FAMILY_H_

// ExtensionFamily: amortized evaluation of the whole family {f_Δ} on one
// fixed graph — the access pattern of Algorithm 1 (the GEM grid sweeps
// Δ ∈ {1, 2, 4, ..., Δmax}) and of every experiment that runs many noise
// trials on the same input.
//
// Amortizations, all exact (never change any returned value):
//   * per-component decomposition, done once;
//   * value cache keyed by Δ;
//   * monotone exactness watermark: f_Δ0 = f_sf (for a component) implies
//     f_Δ = f_sf for all Δ >= Δ0 by monotonicity + underestimation
//     (Lemma 3.3), so at most one Δ per component ever pays for the
//     certificate;
//   * subtour-cut pool shared across Δ: constraints (5) do not mention Δ,
//     so cuts separated at one Δ pre-tighten the LP at every other Δ;
//   * fast-path certificate via Algorithm 3 repair + Fürer–Raghavachari-
//     style local search (core/degree_improve.h), skipping the LP wherever
//     a spanning Δ-forest is found.

#ifndef NODEDP_CORE_EXTENSION_FAMILY_H_
#define NODEDP_CORE_EXTENSION_FAMILY_H_

#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "core/forest_polytope.h"
#include "core/lipschitz_extension.h"
#include "graph/graph.h"
#include "util/status.h"

namespace nodedp {

// Thread safety: Value() and Values() may be called concurrently from
// multiple threads (e.g. parallel noise trials sharing one warmed family).
// Cache/watermark/cut-pool/stats mutations happen under an internal mutex;
// the expensive cell evaluations run outside it against immutable
// snapshots. Returned values are identical regardless of interleaving (the
// LP optimum does not depend on which valid cuts seed it), but concurrent
// cold callers may duplicate cell work, so warm the family first (one
// Values() call over the grid) when sharing it across threads. stats()
// returns a snapshot copy taken under the same mutex, so it is safe to call
// while queries are in flight (the serving layer does).
class ExtensionFamily {
 public:
  // Copies `g` (components of interest, that is) so the family owns its
  // inputs and cannot dangle.
  explicit ExtensionFamily(const Graph& g,
                           const ExtensionOptions& options = {});

  // f_Δ(G). Cached; requires delta >= 1. Fails only on LP resource
  // exhaustion.
  Result<double> Value(double delta);

  // Evaluates the whole grid at once — the Algorithm 4 access pattern — and
  // returns f_Δ(G) for each delta, in input order. Unsettled
  // (component, Δ) cells are solved concurrently on the current thread
  // pool; each cell works against a snapshot of the family taken before the
  // batch (cut pool, watermark, fast-path floor), and the cells' updates
  // are merged back in a fixed order afterwards. Both the returned values
  // and the post-call family state are therefore bit-identical at any
  // thread count. Requires every delta >= 1; fails only on LP resource
  // exhaustion.
  //
  // Relative to sequential Value() calls the batch trades a little
  // amortization for parallelism: cells do not see cuts or watermarks
  // discovered by other cells of the same batch (they are still shared with
  // every later call). Values are unaffected — the LP optimum does not
  // depend on which valid cuts seed it.
  Result<std::vector<double>> Values(const std::vector<double>& deltas);

  // f_sf(G) (the non-private true value; used to build GEM scores).
  double SpanningForestSizeValue() const { return f_sf_total_; }

  int num_vertices() const { return num_vertices_; }
  const ExtensionOptions& options() const { return options_; }

  // Cumulative work statistics across all Value() calls.
  struct Stats {
    int lp_evaluations = 0;    // component evaluations that ran the LP
    int fast_certificates = 0; // component evaluations settled by a forest
    int watermark_hits = 0;    // settled by the monotone watermark
    int cache_hits = 0;
    int cut_rounds = 0;
    int cuts_added = 0;
    long long simplex_iterations = 0;
  };
  // Snapshot copy, taken under the internal mutex (all mutations happen
  // under it too), so concurrent callers see a consistent view.
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  struct ComponentState {
    Graph graph;
    double f_sf = 0.0;
    // Smallest Δ known to satisfy f_Δ = f_sf (monotone watermark).
    double exact_from = std::numeric_limits<double>::infinity();
    // Largest integer cap where the fast-path forest search already failed
    // (skip re-running the heuristic below it; purely an optimization).
    int fast_path_failed_at = 0;
    std::vector<std::vector<int>> cut_pool;
    std::map<double, double> cached;
  };

  // Requires mu_ to be held.
  Result<double> ComponentValue(ComponentState& component, double delta);

  // One unsettled (component, Δ) cell of a Values() batch, planned under
  // the lock with snapshots of the mutable component state it reads.
  struct CellTask {
    int component;
    double delta;
    int fast_path_failed_at;               // snapshot
    std::vector<std::vector<int>> pool;    // snapshot of the cut pool
  };

  // The cell's result. Mutations are returned for the deterministic merge
  // instead of applied in place.
  struct CellOutcome {
    bool ok = true;
    std::string error;
    bool fast_certificate = false;  // value == f_sf, certified by a forest
    double value = 0.0;
    int fast_path_failed_at = 0;
    int cut_rounds = 0;
    int cuts_added = 0;
    long long simplex_iterations = 0;
    std::vector<std::vector<int>> new_cuts;
  };

  // Runs outside the lock: touches only the task's snapshots and the
  // component fields that are immutable after construction (graph, f_sf).
  CellOutcome EvaluateCell(const ComponentState& component,
                           CellTask& task) const;

  int num_vertices_ = 0;
  double f_sf_total_ = 0.0;
  ExtensionOptions options_;
  mutable std::mutex mu_;
  std::vector<ComponentState> components_;
  Stats stats_;
};

}  // namespace nodedp

#endif  // NODEDP_CORE_EXTENSION_FAMILY_H_

// The Δ-bounded forest polytope P_Δ(G) of Definition 3.1 and the linear
// program defining the Lipschitz extension:
//
//     f_Δ(G) = max x(E)   subject to
//       (4) x(e) >= 0                    for every edge e,
//       (5) x(E[S]) <= |S| - 1           for every S ⊆ V, |S| >= 2,
//       (6) x(δ(v)) <= Δ                 for every vertex v.
//
// Constraint family (5) is exponential; following Padberg–Wolsey we separate
// it in polynomial time. For a candidate x, a violated set exists iff
//
//     max_{∅ ≠ S ⊆ V} ( x(E[S]) - |S| ) > -1 ,
//
// and for a fixed root r the inner maximum over S ∋ r is a project-selection
// (maximum-closure) problem solved by one s-t min cut: source → edge-node e
// with capacity x(e); edge-node → both endpoints with capacity ∞; vertex →
// sink with capacity 1; plus source → r with capacity ∞ to force r ∈ S. Then
// max_{S∋r}(x(E[S]) - |S|) = x(E) - mincut, and S is the source side.
//
// The driver seeds the LP with the degree constraints (6) plus the pair
// constraints x(e) <= 1 (the |S| = 2 instances of (5)), solves, separates,
// adds violated cuts, and repeats until the oracle certifies feasibility.

#ifndef NODEDP_CORE_FOREST_POLYTOPE_H_
#define NODEDP_CORE_FOREST_POLYTOPE_H_

#include <vector>

#include "graph/graph.h"
#include "lp/simplex.h"

namespace nodedp {

struct ForestPolytopeOptions {
  // Violation threshold for separation and feasibility certification.
  double tolerance = 1e-7;
  // Cutting-plane rounds before giving up with kIterationLimit.
  int max_cut_rounds = 400;
  // Max violated sets added per round (most violated first); <= 0 means all
  // distinct violated sets found (one per root).
  int max_cuts_per_round = 64;
  // Before invoking the exact (max-flow) oracle each round, try the cheap
  // heuristic: test the connected components of the LP support graph for
  // violation. On forest LPs this finds most cuts at a fraction of the cost.
  bool use_support_heuristic = true;
  // Seed the LP with structural instances of (5) that are almost always
  // binding: one row per connected component of G (x(E[comp]) <= |comp|-1,
  // which upper-bounds the objective by f_sf) and one row per fundamental
  // cycle of a BFS forest. Pure optimization; the oracle guarantees
  // exactness either way.
  bool seed_structural_cuts = true;
  // Optional in/out pool of subtour sets used to seed the LP and extended
  // with every newly separated set. Subtour constraints are independent of
  // Δ, so a pool amortizes separation work across the whole GEM grid (see
  // core/extension_family.h). Borrowed; may be nullptr.
  std::vector<std::vector<int>>* cut_pool = nullptr;
  SimplexOptions simplex;
};

struct SubtourViolation {
  std::vector<int> vertices;  // the set S, sorted
  double violation = 0.0;     // x(E[S]) - (|S| - 1) > 0
};

struct ForestPolytopeResult {
  LpStatus status = LpStatus::kIterationLimit;
  double value = 0.0;          // f_Δ(G) when status == kOptimal
  std::vector<double> x;       // optimal edge weights (by edge id)
  int cut_rounds = 0;
  int cuts_added = 0;
  long long simplex_iterations = 0;
};

// Exact separation oracle for constraints (5): returns violated sets, most
// violated first, at most `max_sets` (<= 0 for all found), each violated by
// more than `tolerance`. The per-root min-cut subproblems are independent
// and run concurrently on the current thread pool (util/parallel.h); the
// result is bit-identical at any thread count.
std::vector<SubtourViolation> FindViolatedSubtourSets(
    const Graph& g, const std::vector<double>& x, double tolerance,
    int max_sets);

// Heuristic separation: checks only the connected components of the support
// graph {e : x_e > tolerance}. Sound (returned sets are violated) but not
// complete; the cutting-plane driver uses it as a cheap first pass.
std::vector<SubtourViolation> FindViolatedSupportComponents(
    const Graph& g, const std::vector<double>& x, double tolerance);

// Greedy maximal forest with per-vertex degree cap floor(delta), taking
// edges in decreasing `weights` order. The returned edge ids form a forest
// whose indicator vector lies in P_Δ(G); the cutting-plane driver uses its
// size as a primal lower bound for early termination. Requires delta >= 1.
std::vector<int> GreedyDegreeBoundedForest(const Graph& g, double delta,
                                           const std::vector<double>& weights);

// Computes f_Δ(G) by cutting planes. Requires delta > 0. Operates on the
// graph as given (no component decomposition; see lipschitz_extension.h for
// the full evaluator).
ForestPolytopeResult MaximizeOverForestPolytope(
    const Graph& g, double delta, const ForestPolytopeOptions& options = {});

// Reference evaluator that instantiates every subset constraint explicitly
// (2^n rows). CHECKs n <= 18. Used to validate the cutting-plane driver.
ForestPolytopeResult MaximizeOverForestPolytopeExhaustive(
    const Graph& g, double delta, const SimplexOptions& options = {});

}  // namespace nodedp

#endif  // NODEDP_CORE_FOREST_POLYTOPE_H_

#include "core/extension_family.h"

#include <cmath>
#include <optional>
#include <set>
#include <utility>

#include "core/degree_improve.h"
#include "graph/connectivity.h"
#include "graph/subgraph.h"
#include "util/check.h"
#include "util/parallel.h"

namespace nodedp {

ExtensionFamily::ExtensionFamily(const Graph& g,
                                 const ExtensionOptions& options)
    : num_vertices_(g.NumVertices()), options_(options) {
  f_sf_total_ = SpanningForestSize(g);
  if (!options_.decompose_components) {
    if (g.NumEdges() > 0) {
      ComponentState state;
      state.graph = g;
      state.f_sf = f_sf_total_;
      components_.push_back(std::move(state));
    }
    return;
  }
  for (const std::vector<int>& component : ComponentVertexSets(g)) {
    if (component.size() < 2) continue;
    ComponentState state;
    state.graph = Induce(g, component).graph;
    state.f_sf = SpanningForestSize(state.graph);
    components_.push_back(std::move(state));
  }
}

Result<double> ExtensionFamily::Value(double delta) {
  if (delta < 1.0) {
    return Status::InvalidArgument("delta must be >= 1 (Algorithm 1 grid)");
  }
  // The whole sweep runs under the lock, LP solves included: Value() is the
  // sequential entry point. Concurrent callers should prefer Values(),
  // which only locks around planning and merging.
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (ComponentState& component : components_) {
    Result<double> value = ComponentValue(component, delta);
    if (!value.ok()) return value.status();
    total += *value;
  }
  return total;
}

Result<std::vector<double>> ExtensionFamily::Values(
    const std::vector<double>& deltas) {
  for (double delta : deltas) {
    if (delta < 1.0) {
      return Status::InvalidArgument("delta must be >= 1 (Algorithm 1 grid)");
    }
  }

  // Plan under the lock: every (component, Δ) pair not already settled by
  // the watermark or the cache becomes a cell carrying snapshots of the
  // mutable component state it will read (cut pool, fast-path floor).
  // Settled pairs are counted here so the stats match a sequential sweep.
  std::vector<CellTask> cells;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::set<double>> queued(components_.size());
    for (double delta : deltas) {
      for (std::size_t c = 0; c < components_.size(); ++c) {
        ComponentState& component = components_[c];
        if (delta >= component.exact_from) {
          ++stats_.watermark_hits;
          continue;
        }
        if (component.cached.count(delta) > 0 ||
            !queued[c].insert(delta).second) {
          ++stats_.cache_hits;
          continue;
        }
        cells.push_back(CellTask{static_cast<int>(c), delta,
                                 component.fast_path_failed_at,
                                 component.cut_pool});
      }
    }
  }

  // Evaluate the cells concurrently, outside the lock. Each cell reads only
  // its own snapshots plus component fields that never change after
  // construction, so the outcomes are independent of the schedule — and of
  // any merges other Values() callers complete meanwhile.
  const std::vector<CellOutcome> outcomes = ParallelMap(
      static_cast<std::int64_t>(cells.size()), [&](std::int64_t i) {
        CellTask& cell = cells[static_cast<std::size_t>(i)];
        return EvaluateCell(components_[cell.component], cell);
      });

  // Merge in cell order — the one place batch state mutates — back under
  // the lock. The dedup set over a component's cut pool is built at most
  // once per component, on first use.
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::optional<std::set<std::vector<int>>>> pooled_by_component(
      components_.size());
  Status first_error = Status::OK();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellTask& cell = cells[i];
    const CellOutcome& outcome = outcomes[i];
    ComponentState& component = components_[cell.component];
    stats_.cut_rounds += outcome.cut_rounds;
    stats_.cuts_added += outcome.cuts_added;
    stats_.simplex_iterations += outcome.simplex_iterations;
    component.fast_path_failed_at =
        std::max(component.fast_path_failed_at, outcome.fast_path_failed_at);
    if (!outcome.ok) {
      if (first_error.ok()) {
        first_error = Status::ResourceExhausted(outcome.error);
      }
      continue;
    }
    if (outcome.fast_certificate) {
      ++stats_.fast_certificates;
      component.exact_from =
          std::min(component.exact_from, std::floor(cell.delta));
      continue;
    }
    ++stats_.lp_evaluations;
    component.cached.emplace(cell.delta, outcome.value);
    if (std::fabs(outcome.value - component.f_sf) < 1e-9) {
      component.exact_from = std::min(component.exact_from, cell.delta);
    }
    if (!outcome.new_cuts.empty()) {
      std::optional<std::set<std::vector<int>>>& pooled =
          pooled_by_component[cell.component];
      if (!pooled.has_value()) {
        pooled.emplace(component.cut_pool.begin(), component.cut_pool.end());
      }
      for (const std::vector<int>& cut : outcome.new_cuts) {
        if (pooled->insert(cut).second) component.cut_pool.push_back(cut);
      }
    }
  }
  if (!first_error.ok()) return first_error;

  // Assemble the per-Δ totals; after the merge every pair is settled.
  std::vector<double> totals;
  totals.reserve(deltas.size());
  for (double delta : deltas) {
    double total = 0.0;
    for (ComponentState& component : components_) {
      const auto cached = component.cached.find(delta);
      if (cached != component.cached.end()) {
        total += cached->second;
      } else {
        NODEDP_CHECK_GE(delta, component.exact_from);
        total += component.f_sf;
      }
    }
    totals.push_back(total);
  }
  return totals;
}

ExtensionFamily::CellOutcome ExtensionFamily::EvaluateCell(
    const ComponentState& component, CellTask& task) const {
  const double delta = task.delta;
  CellOutcome outcome;
  if (options_.use_repair_fast_path) {
    const int degree_cap = static_cast<int>(std::floor(delta));
    if (degree_cap >= 1 && degree_cap > task.fast_path_failed_at) {
      if (FindSpanningForestOfDegree(component.graph, degree_cap)
              .has_value()) {
        outcome.fast_certificate = true;
        outcome.value = component.f_sf;
        return outcome;
      }
      outcome.fast_path_failed_at = degree_cap;
    }
  }
  // Work on the task's private snapshot of the cut pool; cuts this cell
  // separates are appended to it and handed back for the merge.
  std::vector<std::vector<int>>& pool = task.pool;
  const std::size_t pool_snapshot_size = pool.size();
  ForestPolytopeOptions polytope = options_.polytope;
  polytope.cut_pool = &pool;
  const ForestPolytopeResult lp =
      MaximizeOverForestPolytope(component.graph, delta, polytope);
  outcome.cut_rounds = lp.cut_rounds;
  outcome.cuts_added = lp.cuts_added;
  outcome.simplex_iterations = lp.simplex_iterations;
  if (lp.status != LpStatus::kOptimal) {
    outcome.ok = false;
    outcome.error = std::string("forest-polytope LP did not converge: ") +
                    LpStatusName(lp.status);
    return outcome;
  }
  outcome.value = lp.value;
  outcome.new_cuts.assign(pool.begin() + pool_snapshot_size, pool.end());
  return outcome;
}

Result<double> ExtensionFamily::ComponentValue(ComponentState& component,
                                               double delta) {
  if (delta >= component.exact_from) {
    ++stats_.watermark_hits;
    return component.f_sf;
  }
  const auto cached = component.cached.find(delta);
  if (cached != component.cached.end()) {
    ++stats_.cache_hits;
    return cached->second;
  }

  if (options_.use_repair_fast_path) {
    const int degree_cap = static_cast<int>(std::floor(delta));
    if (degree_cap >= 1 && degree_cap > component.fast_path_failed_at) {
      if (FindSpanningForestOfDegree(component.graph, degree_cap)
              .has_value()) {
        ++stats_.fast_certificates;
        // A spanning cap-forest certifies exactness for every Δ >= cap.
        component.exact_from =
            std::min(component.exact_from, static_cast<double>(degree_cap));
        return component.f_sf;
      }
      component.fast_path_failed_at =
          std::max(component.fast_path_failed_at, degree_cap);
    }
  }

  ForestPolytopeOptions polytope = options_.polytope;
  polytope.cut_pool = &component.cut_pool;
  const ForestPolytopeResult lp =
      MaximizeOverForestPolytope(component.graph, delta, polytope);
  stats_.cut_rounds += lp.cut_rounds;
  stats_.cuts_added += lp.cuts_added;
  stats_.simplex_iterations += lp.simplex_iterations;
  if (lp.status != LpStatus::kOptimal) {
    return Status::ResourceExhausted(
        std::string("forest-polytope LP did not converge: ") +
        LpStatusName(lp.status));
  }
  ++stats_.lp_evaluations;
  component.cached.emplace(delta, lp.value);
  if (std::fabs(lp.value - component.f_sf) < 1e-9) {
    component.exact_from = std::min(component.exact_from, delta);
  }
  return lp.value;
}

}  // namespace nodedp

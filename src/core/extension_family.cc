#include "core/extension_family.h"

#include <cmath>
#include <utility>

#include "core/degree_improve.h"
#include "graph/connectivity.h"
#include "graph/subgraph.h"
#include "util/check.h"

namespace nodedp {

ExtensionFamily::ExtensionFamily(const Graph& g,
                                 const ExtensionOptions& options)
    : num_vertices_(g.NumVertices()), options_(options) {
  f_sf_total_ = SpanningForestSize(g);
  if (!options_.decompose_components) {
    if (g.NumEdges() > 0) {
      ComponentState state;
      state.graph = g;
      state.f_sf = f_sf_total_;
      components_.push_back(std::move(state));
    }
    return;
  }
  for (const std::vector<int>& component : ComponentVertexSets(g)) {
    if (component.size() < 2) continue;
    ComponentState state;
    state.graph = Induce(g, component).graph;
    state.f_sf = SpanningForestSize(state.graph);
    components_.push_back(std::move(state));
  }
}

Result<double> ExtensionFamily::Value(double delta) {
  if (delta < 1.0) {
    return Status::InvalidArgument("delta must be >= 1 (Algorithm 1 grid)");
  }
  double total = 0.0;
  for (ComponentState& component : components_) {
    Result<double> value = ComponentValue(component, delta);
    if (!value.ok()) return value.status();
    total += *value;
  }
  return total;
}

Result<double> ExtensionFamily::ComponentValue(ComponentState& component,
                                               double delta) {
  if (delta >= component.exact_from) {
    ++stats_.watermark_hits;
    return component.f_sf;
  }
  const auto cached = component.cached.find(delta);
  if (cached != component.cached.end()) {
    ++stats_.cache_hits;
    return cached->second;
  }

  if (options_.use_repair_fast_path) {
    const int degree_cap = static_cast<int>(std::floor(delta));
    if (degree_cap >= 1 && degree_cap > component.fast_path_failed_at) {
      if (FindSpanningForestOfDegree(component.graph, degree_cap)
              .has_value()) {
        ++stats_.fast_certificates;
        // A spanning cap-forest certifies exactness for every Δ >= cap.
        component.exact_from =
            std::min(component.exact_from, static_cast<double>(degree_cap));
        return component.f_sf;
      }
      component.fast_path_failed_at =
          std::max(component.fast_path_failed_at, degree_cap);
    }
  }

  ForestPolytopeOptions polytope = options_.polytope;
  polytope.cut_pool = &component.cut_pool;
  const ForestPolytopeResult lp =
      MaximizeOverForestPolytope(component.graph, delta, polytope);
  stats_.cut_rounds += lp.cut_rounds;
  stats_.cuts_added += lp.cuts_added;
  stats_.simplex_iterations += lp.simplex_iterations;
  if (lp.status != LpStatus::kOptimal) {
    return Status::ResourceExhausted(
        std::string("forest-polytope LP did not converge: ") +
        LpStatusName(lp.status));
  }
  ++stats_.lp_evaluations;
  component.cached.emplace(delta, lp.value);
  if (std::fabs(lp.value - component.f_sf) < 1e-9) {
    component.exact_from = std::min(component.exact_from, delta);
  }
  return lp.value;
}

}  // namespace nodedp

#include "core/extension_family.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <numeric>
#include <optional>
#include <set>
#include <utility>

#include "core/degree_improve.h"
#include "graph/connectivity.h"
#include "graph/subgraph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"

namespace nodedp {

namespace {

// Per-cell timing histograms (docs/OBSERVABILITY.md): the two costs that
// dominate a warm — inducing a component's subgraph and solving its
// forest-polytope LP. Handles resolved once; Observe is lock-free.
Histogram* InductionNsHistogram() {
  static Histogram* h = MetricsRegistry::Default().GetHistogram(
      "nodedp_family_induction_ns",
      "Wall-ns per component induction inside ExtensionFamily",
      MetricsRegistry::LatencyBucketsNs());
  return h;
}

Histogram* LpSolveNsHistogram() {
  static Histogram* h = MetricsRegistry::Default().GetHistogram(
      "nodedp_family_lp_solve_ns",
      "Wall-ns per forest-polytope LP solve (one grid cell)",
      MetricsRegistry::LatencyBucketsNs());
  return h;
}

// The straggler tail of a multi-component batch: wall-ns between the
// second-to-last and the last component settling its final cell. Near zero
// when LPT dispatch keeps the pool balanced; a wide gap means one component
// serialized the end of the warm (docs/OBSERVABILITY.md).
Histogram* WarmStragglerNsHistogram() {
  static Histogram* h = MetricsRegistry::Default().GetHistogram(
      "nodedp_family_warm_straggler_ns",
      "Wall-ns between the second-to-last and last component finishing a "
      "Values()/Warm() batch",
      MetricsRegistry::LatencyBucketsNs());
  return h;
}

long long ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Sorted-small-vector helpers for ComponentState::inflight_deltas (a
// handful of grid Δs at most, so linear shifts beat node containers).
bool SortedContains(const std::vector<double>& v, double x) {
  return std::binary_search(v.begin(), v.end(), x);
}

void SortedInsert(std::vector<double>& v, double x) {
  v.insert(std::lower_bound(v.begin(), v.end(), x), x);
}

void SortedErase(std::vector<double>& v, double x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) v.erase(it);
}

}  // namespace

// One Values() batch's dynamic claim queue. The owner's workers claim
// through Next(); concurrent callers blocked on one of the batch's cells
// find it via Find() (against the family's inflight_batches_ registry) and
// push it into the demand lane through Demand(), so demanded cells are
// solved next regardless of where LPT put them. The queue only reorders
// *claims*: each cell is returned exactly once and its outcome lands in
// its own index-addressed slot, so results never depend on demand timing.
struct ExtensionFamily::BatchQueue {
  std::mutex mu;
  // Cell indices in claim order (LPT, or the legacy index order); head is
  // the next unclaimed position.
  std::vector<std::int64_t> order;
  std::size_t head = 0;
  // Demanded cells jump the queue, FIFO among themselves.
  std::deque<std::int64_t> demanded;
  std::vector<char> claimed;  // by cell index
  // (component, delta) -> cell index, sorted; immutable after the batch
  // registers (one bulk build + sort — deliberately not a node-based map:
  // a warm touches tens of thousands of cells and per-cell node churn is
  // measurable). Read without the queue mutex.
  std::vector<std::pair<std::pair<int, double>, std::int64_t>> cells_by_id;

  explicit BatchQueue(std::vector<std::int64_t> claim_order)
      : order(std::move(claim_order)), claimed(order.size(), 0) {}

  // The cell's index within this batch, or -1 if the batch doesn't own it.
  std::int64_t Find(int component, double delta) const {
    const std::pair<std::pair<int, double>, std::int64_t> probe(
        {component, delta}, 0);
    const auto it = std::lower_bound(
        cells_by_id.begin(), cells_by_id.end(), probe,
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == cells_by_id.end() || it->first != probe.first) return -1;
    return it->second;
  }

  // The next unclaimed cell: demand lane first, then the planned order.
  // The batch issues exactly order.size() claims, so every cell is
  // returned exactly once.
  std::int64_t Next() {
    std::lock_guard<std::mutex> lock(mu);
    while (!demanded.empty()) {
      const std::int64_t cell = demanded.front();
      demanded.pop_front();
      if (!claimed[static_cast<std::size_t>(cell)]) {
        claimed[static_cast<std::size_t>(cell)] = 1;
        return cell;
      }
    }
    while (head < order.size()) {
      const std::int64_t cell = order[head++];
      if (!claimed[static_cast<std::size_t>(cell)]) {
        claimed[static_cast<std::size_t>(cell)] = 1;
        return cell;
      }
    }
    NODEDP_CHECK_MSG(false, "BatchQueue: more claims than cells");
    return -1;
  }

  void Demand(std::int64_t cell) {
    std::lock_guard<std::mutex> lock(mu);
    if (!claimed[static_cast<std::size_t>(cell)]) demanded.push_back(cell);
  }
};

ExtensionFamily::ExtensionFamily(const Graph& g,
                                 const ExtensionOptions& options)
    : num_vertices_(g.NumVertices()), options_(options) {
  // Eager path: partition, then induce every component now, sharded across
  // the pool, straight from the caller's graph (no host copy). Each item
  // touches only its own component, so the resulting family is identical
  // at any width. Inductions are claimed largest-first (|C| + m_C): a
  // giant component dispatched last would serialize the constructor's tail
  // behind one worker.
  InitComponents(g, /*retain_host=*/false);
  std::vector<double> costs;
  costs.reserve(components_.size());
  for (const auto& component : components_) costs.push_back(component->weight);
  ParallelFor(
      static_cast<std::int64_t>(components_.size()),
      [this, &g](std::int64_t i) {
        EnsureInduced(*components_[static_cast<std::size_t>(i)], g);
      },
      CostOrder(costs));
}

ExtensionFamily::ExtensionFamily(const Graph& g,
                                 const ExtensionOptions& options,
                                 DeferInduction)
    : num_vertices_(g.NumVertices()), options_(options) {
  InitComponents(g, /*retain_host=*/true);
}

ExtensionFamily::ExtensionFamily(const Graph& graph,
                                 const ExtensionFamily& base,
                                 const std::vector<Edge>& inserts)
    : num_vertices_(graph.NumVertices()), options_(base.options_) {
  NODEDP_CHECK_EQ(num_vertices_, base.num_vertices_);
  if (!options_.decompose_components) {
    // The whole-graph pseudo-component has no per-component state to
    // carve up; any insert invalidates it. Build cold.
    InitComponents(graph, /*retain_host=*/false);
    components_invalidated_ = static_cast<int>(components_.size());
    return;
  }

  // Reconstruct a dense labeling of the OLD partition from base's vertex
  // lists: kept component i keeps label i, every remaining vertex is its
  // own singleton label. No graph traversal — the partition is the data.
  const int num_kept = static_cast<int>(base.components_.size());
  std::vector<int> labels(static_cast<std::size_t>(num_vertices_), -1);
  for (int c = 0; c < num_kept; ++c) {
    for (int v : base.components_[static_cast<std::size_t>(c)]->vertices) {
      labels[static_cast<std::size_t>(v)] = c;
    }
  }
  std::vector<int> singleton_vertex;  // label - num_kept -> vertex id
  for (int v = 0; v < num_vertices_; ++v) {
    if (labels[static_cast<std::size_t>(v)] < 0) {
      labels[static_cast<std::size_t>(v)] =
          num_kept + static_cast<int>(singleton_vertex.size());
      singleton_vertex.push_back(v);
    }
  }
  const int num_old =
      num_kept + static_cast<int>(singleton_vertex.size());

  const ComponentDeltaAnalysis delta =
      AnalyzeEdgeDelta(labels, num_old, inserts);
  std::vector<bool> touched(static_cast<std::size_t>(num_old), false);
  for (int label : delta.touched) {
    touched[static_cast<std::size_t>(label)] = true;
  }

  // New partition = adopted old components + one rebuilt component per
  // fused group, ordered (like ComponentLabels) by smallest vertex so the
  // per-Δ totals sum in the same order as a cold rebuild — bit-identical
  // floating-point results, not merely equal sets.
  struct Pending {
    int min_vertex;
    std::unique_ptr<ComponentState> state;
  };
  std::vector<Pending> pending;
  pending.reserve(base.components_.size() + delta.groups.size());
  int to_induce = 0;
  {
    // Base may be serving queries or warming concurrently: its cache,
    // watermark, fast-path floor, and cut pool mutate only under its
    // mutex, so one lock makes the whole adoption (and the merged groups'
    // pool seeding below) a consistent snapshot.
    std::lock_guard<std::mutex> base_lock(base.mu_);
    for (int c = 0; c < num_kept; ++c) {
      if (touched[static_cast<std::size_t>(c)]) continue;
      const ComponentState& from =
          *base.components_[static_cast<std::size_t>(c)];
      auto state = std::make_unique<ComponentState>();
      state->vertices = from.vertices;
      state->f_sf = from.f_sf;
      state->exact_from = from.exact_from;
      state->fast_path_failed_at = from.fast_path_failed_at;
      state->cut_pool = from.cut_pool;
      state->cached = from.cached;
      if (from.induced.load(std::memory_order_acquire)) {
        // The untouched component's induced subgraph is identical in the
        // new host (same vertex set, same edges, same relabeling).
        state->graph = from.graph;
        state->induced.store(true, std::memory_order_release);
      } else {
        // Base had not induced it yet (mid-warm adoption): leave it lazy;
        // inducing from the new host yields the identical graph.
        ++to_induce;
      }
      ++components_adopted_;
      pending.push_back(Pending{state->vertices[0], std::move(state)});
    }
    for (const std::vector<int>& group : delta.groups) {
      // One rebuilt component per fused group: merge the members' sorted
      // vertex lists (kept components + absorbed singletons). Connected by
      // construction — each member was connected and the batch's edges are
      // what fused them — so f_sf = |C| - 1 holds, and EnsureInduced
      // re-derives it in Debug builds.
      auto state = std::make_unique<ComponentState>();
      std::size_t size = 0;
      for (int label : group) {
        size += label < num_kept
                    ? base.components_[static_cast<std::size_t>(label)]
                          ->vertices.size()
                    : 1;
      }
      state->vertices.reserve(size);
      for (int label : group) {
        if (label < num_kept) {
          const std::vector<int>& members =
              base.components_[static_cast<std::size_t>(label)]->vertices;
          state->vertices.insert(state->vertices.end(), members.begin(),
                                 members.end());
        } else {
          state->vertices.push_back(
              singleton_vertex[static_cast<std::size_t>(label - num_kept)]);
        }
      }
      std::sort(state->vertices.begin(), state->vertices.end());
      state->f_sf = static_cast<double>(state->vertices.size()) - 1.0;
      // Seed the merged component's cut pool from its members' pools. A
      // subtour constraint is valid for ANY vertex subset, so a member's
      // pooled cuts stay valid (and typically still binding) after the
      // merge — the re-solve starts from the cuts that mattered last time
      // instead of rediscovering them round by round. Remap member-local
      // id -> host id -> merged-local id; each map is strictly increasing,
      // so sorted cuts stay sorted, and members are vertex-disjoint, so no
      // cross-member duplicates can arise.
      for (int label : group) {
        if (label >= num_kept) continue;  // singletons carry no pool
        const ComponentState& member =
            *base.components_[static_cast<std::size_t>(label)];
        for (const std::vector<int>& cut : member.cut_pool) {
          std::vector<int> remapped;
          remapped.reserve(cut.size());
          for (int local : cut) {
            const int host =
                member.vertices[static_cast<std::size_t>(local)];
            remapped.push_back(static_cast<int>(
                std::lower_bound(state->vertices.begin(),
                                 state->vertices.end(), host) -
                state->vertices.begin()));
          }
          state->cut_pool.push_back(std::move(remapped));
        }
      }
      ++components_invalidated_;
      ++to_induce;
      pending.push_back(Pending{state->vertices[0], std::move(state)});
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              return a.min_vertex < b.min_vertex;
            });
  components_.reserve(pending.size());
  f_sf_total_ = 0.0;
  for (Pending& p : pending) {
    f_sf_total_ += p.state->f_sf;
    components_.push_back(std::move(p.state));
  }
  NODEDP_DCHECK(static_cast<int>(f_sf_total_) == SpanningForestSize(graph));
  AssignComponentWeights(graph);

  remaining_inductions_.store(to_induce, std::memory_order_relaxed);
  if (to_induce > 0) {
    host_graph_ = graph;
    host_released_ = false;
  }
}

ExtensionFamily::~ExtensionFamily() {
  if (warm_thread_.joinable()) warm_thread_.join();
}

void ExtensionFamily::InitComponents(const Graph& g, bool retain_host) {
  // The constructor's single whole-graph pass. Labels are assigned in order
  // of each component's smallest vertex, so components_ keeps the same
  // deterministic order the old ComponentVertexSets loop produced.
  const std::vector<int> labels = ComponentLabels(g);
  int num_components = 0;
  for (int label : labels) num_components = std::max(num_components, label + 1);
  // f_sf(G) = n - f_cc(G) (Eq. (1)) straight from the partition — the old
  // separate SpanningForestSize union-find pass is gone.
  f_sf_total_ = g.NumVertices() - num_components;

  if (!options_.decompose_components) {
    if (g.NumEdges() > 0) {
      auto state = std::make_unique<ComponentState>();
      state->graph = g;
      state->f_sf = f_sf_total_;
      state->weight = g.NumVertices() + g.NumEdges();
      state->induced.store(true, std::memory_order_release);
      components_.push_back(std::move(state));
    }
    return;
  }

  std::vector<int> sizes(num_components, 0);
  for (int label : labels) ++sizes[label];
  // Singleton components contribute nothing to any f_Δ; only label ->
  // kept-component-index survivors get a state.
  std::vector<int> kept(num_components, -1);
  for (int label = 0; label < num_components; ++label) {
    if (sizes[label] < 2) continue;
    kept[label] = static_cast<int>(components_.size());
    auto state = std::make_unique<ComponentState>();
    state->vertices.reserve(static_cast<std::size_t>(sizes[label]));
    state->f_sf = sizes[label] - 1;  // connected, by construction
    components_.push_back(std::move(state));
  }
  for (int v = 0; v < g.NumVertices(); ++v) {
    const int index = kept[labels[v]];
    if (index < 0) continue;
    ComponentState& state = *components_[static_cast<std::size_t>(index)];
    state.vertices.push_back(v);
    // Accumulate the degree sum; finalized to |C| + m_C below. This rides
    // the existing vertex pass — the weight costs no extra traversal.
    state.weight += g.Degree(v);
  }
  for (const auto& component : components_) {
    component->weight =
        static_cast<double>(component->vertices.size()) +
        component->weight / 2.0;
  }
  remaining_inductions_.store(static_cast<int>(components_.size()),
                              std::memory_order_relaxed);
  if (!components_.empty() && retain_host) {
    host_graph_ = g;
    host_released_ = false;
  }
}

void ExtensionFamily::AssignComponentWeights(const Graph& host) {
  // |C| + m_C per component, m_C from the degree sum over the component's
  // vertex list. O(sum |C|) = O(n): the same order as assembling the
  // partition itself.
  for (const auto& component : components_) {
    double degree_sum = 0.0;
    for (int v : component->vertices) degree_sum += host.Degree(v);
    component->weight =
        static_cast<double>(component->vertices.size()) + degree_sum / 2.0;
  }
}

std::vector<std::int64_t> ExtensionFamily::CostOrder(
    const std::vector<double>& costs) const {
  std::vector<std::int64_t> order(costs.size());
  std::iota(order.begin(), order.end(), std::int64_t{0});
  if (options_.dispatch_order ==
      ExtensionOptions::DispatchOrder::kIndexOrdered) {
    return order;  // legacy claim order, for A/B measurement
  }
  // Longest-processing-time-first; ties resolve to the lower index so the
  // claim order is a pure function of the costs.
  std::sort(order.begin(), order.end(),
            [&costs](std::int64_t a, std::int64_t b) {
              const double ca = costs[static_cast<std::size_t>(a)];
              const double cb = costs[static_cast<std::size_t>(b)];
              if (ca != cb) return ca > cb;
              return a < b;
            });
  return order;
}

void ExtensionFamily::EnsureInduced(ComponentState& component,
                                    const Graph& host) {
  if (component.induced.load(std::memory_order_acquire)) return;
  std::call_once(component.induce_once, [this, &component, &host] {
    const auto started = std::chrono::steady_clock::now();
    component.graph = InduceSortedGraph(host, component.vertices);
    // The invariant that replaced the per-component spanning-forest pass:
    // a connected component's spanning forest has exactly |C| - 1 edges.
    NODEDP_DCHECK(SpanningForestSize(component.graph) ==
                  static_cast<int>(component.f_sf));
    InductionNsHistogram()->Observe(
        static_cast<double>(ElapsedNs(started)));
    component.induced.store(true, std::memory_order_release);
    remaining_inductions_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void ExtensionFamily::MaybeReleaseHostGraphLocked() {
  // Safe to free: a zero countdown (acquire) means every induction's
  // host-graph read happened-before this load, and call_once guarantees no
  // new induction body will ever run.
  if (!host_released_ &&
      remaining_inductions_.load(std::memory_order_acquire) == 0) {
    host_graph_ = Graph();
    host_released_ = true;
  }
}

std::size_t ExtensionFamily::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  if (!host_released_) total += host_graph_.MemoryBytes();
  total += components_.capacity() * sizeof(components_[0]);
  for (const auto& component : components_) {
    total += sizeof(ComponentState);
    total += component->vertices.capacity() * sizeof(int);
    if (component->induced.load(std::memory_order_acquire)) {
      total += component->graph.MemoryBytes();
    }
    total += component->cut_pool.capacity() * sizeof(std::vector<int>);
    for (const std::vector<int>& cut : component->cut_pool) {
      total += cut.capacity() * sizeof(int);
    }
    total += component->inflight_deltas.capacity() * sizeof(double);
    // Rough std::map node cost: payload + left/right/parent pointers and
    // color, as allocators typically lay it out.
    total += component->cached.size() *
             (sizeof(std::pair<const double, double>) + 4 * sizeof(void*));
  }
  return total;
}

Status ExtensionFamily::Warm(const std::vector<double>& grid) {
  if (grid.empty()) return Status::OK();
  return Values(grid).status();
}

void ExtensionFamily::WarmAsync(std::vector<double> grid) {
  {
    std::lock_guard<std::mutex> lock(warm_mu_);
    NODEDP_CHECK_MSG(warm_done_, "WarmAsync: a warm is already in flight");
    warm_done_ = false;
  }
  if (warm_thread_.joinable()) warm_thread_.join();  // previous, finished
  warm_thread_ = std::thread([this, grid = std::move(grid)] {
    const Status status = Warm(grid);
    {
      std::lock_guard<std::mutex> lock(warm_mu_);
      warm_status_ = status;
      warm_done_ = true;
    }
    warm_cv_.notify_all();
  });
}

Status ExtensionFamily::WaitWarm() {
  std::unique_lock<std::mutex> lock(warm_mu_);
  warm_cv_.wait(lock, [this] { return warm_done_; });
  return warm_status_;
}

Result<double> ExtensionFamily::Value(double delta) {
  // A one-Δ batch: same planning, claiming, and merge as any grid sweep,
  // so a Value() racing a warm or another batch shares cells instead of
  // re-solving them.
  Result<std::vector<double>> values = Values({delta});
  if (!values.ok()) return values.status();
  return (*values)[0];
}

Result<std::vector<double>> ExtensionFamily::Values(
    const std::vector<double>& deltas) {
  for (double delta : deltas) {
    if (delta < 1.0) {
      return Status::InvalidArgument("delta must be >= 1 (Algorithm 1 grid)");
    }
  }

  // Settled pairs are counted once, on the first planning pass, so the
  // stats match a sequential sweep; retry passes (only reached when a
  // concurrent caller's cell failed) must not recount them.
  bool count_settled_stats = true;
  for (;;) {
    // Plan under the lock: every (component, Δ) pair not already settled by
    // the watermark or the cache becomes a cell carrying snapshots of the
    // mutable component state it will read (cut pool, fast-path floor) —
    // unless a concurrent batch is already evaluating the identical cell,
    // in which case we wait for that cell instead of re-solving it.
    std::vector<CellTask> cells;
    std::vector<std::pair<int, double>> awaited;
    std::shared_ptr<BatchQueue> queue;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::vector<std::set<double>> queued(components_.size());
      for (double delta : deltas) {
        for (std::size_t c = 0; c < components_.size(); ++c) {
          ComponentState& component = *components_[c];
          if (delta >= component.exact_from) {
            if (count_settled_stats) ++stats_.watermark_hits;
            continue;
          }
          if (component.cached.count(delta) > 0 ||
              !queued[c].insert(delta).second) {
            if (count_settled_stats) ++stats_.cache_hits;
            continue;
          }
          if (SortedContains(component.inflight_deltas, delta)) {
            awaited.emplace_back(static_cast<int>(c), delta);
            // Demand-first warming: bump the cell to the front of its
            // owner's claim queue, so we unblock as soon as the owner's
            // pool can reach it instead of at the owner's schedule luck.
            // Live batches are few (one per concurrent Values() caller),
            // so the scan is short.
            for (const std::shared_ptr<BatchQueue>& batch :
                 inflight_batches_) {
              const std::int64_t cell = batch->Find(static_cast<int>(c),
                                                    delta);
              if (cell >= 0) {
                batch->Demand(cell);
                break;
              }
            }
            continue;
          }
          SortedInsert(component.inflight_deltas, delta);
          cells.push_back(CellTask{static_cast<int>(c), delta,
                                   component.fast_path_failed_at,
                                   component.cut_pool});
        }
      }
      if (!cells.empty()) {
        // Estimated LP cost per cell: component weight (|C| + m_C) times
        // the component's unsolved cells in this batch — a component with
        // several cold grid cells is the batch's long pole even when each
        // single solve is moderate. Claims go out in LPT order of that
        // estimate (or planning order under kIndexOrdered).
        std::vector<double> unsolved(components_.size(), 0.0);
        for (const CellTask& cell : cells) {
          unsolved[static_cast<std::size_t>(cell.component)] += 1.0;
        }
        std::vector<double> costs;
        costs.reserve(cells.size());
        for (const CellTask& cell : cells) {
          costs.push_back(
              components_[static_cast<std::size_t>(cell.component)]->weight *
              unsolved[static_cast<std::size_t>(cell.component)]);
        }
        queue = std::make_shared<BatchQueue>(CostOrder(costs));
        queue->cells_by_id.reserve(cells.size());
        for (std::size_t i = 0; i < cells.size(); ++i) {
          queue->cells_by_id.emplace_back(
              std::make_pair(cells[i].component, cells[i].delta),
              static_cast<std::int64_t>(i));
        }
        std::sort(queue->cells_by_id.begin(), queue->cells_by_id.end());
        inflight_batches_.push_back(queue);
      }
    }
    count_settled_stats = false;

    // Evaluate our claimed cells concurrently, outside the lock. Each loop
    // item claims one cell from the batch queue — demand lane first, then
    // cost order — and a cell's first act is inducing its component (no-op
    // once done), which is what pipelines induction with fast-path probes
    // and LP solves during a warm. Each cell otherwise reads only its own
    // snapshots plus component fields immutable after induction, and
    // writes its own outcome slot, so the outcomes are independent of the
    // claim schedule — and of any merges other Values() callers complete
    // meanwhile. As each cell settles it is published and its claim
    // released immediately, so callers racing this batch unblock per cell,
    // not at the end of the batch; the publication also records when each
    // component finishes its last cell, feeding the straggler histogram.
    std::vector<CellOutcome> outcomes(cells.size());
    std::vector<int> cells_left(components_.size(), 0);
    for (const CellTask& cell : cells) {
      ++cells_left[static_cast<std::size_t>(cell.component)];
    }
    int components_finished = 0;
    std::chrono::steady_clock::time_point prev_finish;
    std::chrono::steady_clock::time_point last_finish;
    ParallelFor(static_cast<std::int64_t>(cells.size()), [&](std::int64_t) {
      const std::int64_t i = queue->Next();
      CellTask& cell = cells[static_cast<std::size_t>(i)];
      ComponentState& component =
          *components_[static_cast<std::size_t>(cell.component)];
      EnsureInduced(component, host_graph_);
      outcomes[static_cast<std::size_t>(i)] = EvaluateCell(component, cell);
      std::lock_guard<std::mutex> publish_lock(mu_);
      PublishCellLocked(cell, outcomes[static_cast<std::size_t>(i)]);
      if (--cells_left[static_cast<std::size_t>(cell.component)] == 0) {
        // Publications are serialized under mu_, so each finish observed
        // here is the latest so far. The clock read lives in this branch
        // (once per component, not per cell) — a warm on a many-tiny-
        // components graph has orders of magnitude more cells than
        // stragglers worth timing.
        prev_finish = last_finish;
        last_finish = std::chrono::steady_clock::now();
        ++components_finished;
      }
    });
    if (components_finished >= 2) {
      const long long straggler_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(last_finish -
                                                               prev_finish)
              .count();
      WarmStragglerNsHistogram()->Observe(static_cast<double>(straggler_ns));
      if (QueryTrace* trace = QueryTrace::Current()) {
        trace->AddSpan("warm_straggler", straggler_ns);
      }
    }

    // Merge the order-sensitive remainder in fixed cell order — cut-pool
    // appends and cumulative stats — back under the lock. Cell values,
    // watermarks, and claim releases already happened per cell in
    // PublishCellLocked; nothing a waiter blocks on is left here, but the
    // cut pool must still grow in planning order so the post-call family
    // state is bit-identical at any width and dispatch order. The dedup
    // set over a component's cut pool is built at most once per component,
    // on first use.
    std::unique_lock<std::mutex> lock(mu_);
    if (queue != nullptr) {
      // Every cell is settled and its claim released; the batch no longer
      // owns anything a waiter could demand.
      inflight_batches_.erase(std::remove(inflight_batches_.begin(),
                                          inflight_batches_.end(), queue),
                              inflight_batches_.end());
    }
    std::vector<std::optional<std::set<std::vector<int>>>> pooled_by_component(
        components_.size());
    Status first_error = Status::OK();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellTask& cell = cells[i];
      const CellOutcome& outcome = outcomes[i];
      ComponentState& component =
          *components_[static_cast<std::size_t>(cell.component)];
      stats_.cut_rounds += outcome.cut_rounds;
      stats_.cuts_added += outcome.cuts_added;
      stats_.simplex_iterations += outcome.simplex_iterations;
      if (!outcome.ok) {
        if (first_error.ok()) {
          first_error = Status::ResourceExhausted(outcome.error);
        }
        continue;
      }
      if (outcome.fast_certificate) {
        ++stats_.fast_certificates;
        continue;
      }
      ++stats_.lp_evaluations;
      if (!outcome.new_cuts.empty()) {
        std::optional<std::set<std::vector<int>>>& pooled =
            pooled_by_component[static_cast<std::size_t>(cell.component)];
        if (!pooled.has_value()) {
          pooled.emplace(component.cut_pool.begin(), component.cut_pool.end());
        }
        for (const std::vector<int>& cut : outcome.new_cuts) {
          if (pooled->insert(cut).second) component.cut_pool.push_back(cut);
        }
      }
    }
    MaybeReleaseHostGraphLocked();
    if (!first_error.ok()) return first_error;

    if (!awaited.empty()) {
      // Block only on the cells we need: wait for the concurrent owners of
      // the awaited cells to publish them (or fail), never for their whole
      // batches.
      ++cell_waiters_;
      cells_cv_.wait(lock, [&] {
        for (const std::pair<int, double>& id : awaited) {
          if (SortedContains(
                  components_[static_cast<std::size_t>(id.first)]
                      ->inflight_deltas,
                  id.second)) {
            return false;
          }
        }
        return true;
      });
      --cell_waiters_;

      // If an awaited owner failed, its cells are still unsettled: loop
      // back and claim them ourselves. With no awaited cells every pair
      // was settled by our own merge, so this scan is skipped entirely on
      // the uncontended path.
      bool all_settled = true;
      for (double delta : deltas) {
        for (const auto& component : components_) {
          if (delta >= component->exact_from) continue;
          if (component->cached.count(delta) > 0) continue;
          all_settled = false;
          break;
        }
        if (!all_settled) break;
      }
      if (!all_settled) continue;
    }

    // Assemble the per-Δ totals; every pair is settled.
    std::vector<double> totals;
    totals.reserve(deltas.size());
    for (double delta : deltas) {
      double total = 0.0;
      for (const auto& component : components_) {
        const auto cached = component->cached.find(delta);
        if (cached != component->cached.end()) {
          total += cached->second;
        } else {
          NODEDP_CHECK_GE(delta, component->exact_from);
          total += component->f_sf;
        }
      }
      totals.push_back(total);
    }
    return totals;
  }
}

void ExtensionFamily::PublishCellLocked(const CellTask& cell,
                                        const CellOutcome& outcome) {
  ComponentState& component =
      *components_[static_cast<std::size_t>(cell.component)];
  component.fast_path_failed_at =
      std::max(component.fast_path_failed_at, outcome.fast_path_failed_at);
  if (outcome.ok) {
    if (outcome.fast_certificate) {
      component.exact_from =
          std::min(component.exact_from, std::floor(cell.delta));
    } else {
      component.cached.emplace(cell.delta, outcome.value);
      if (std::fabs(outcome.value - component.f_sf) < 1e-9) {
        component.exact_from = std::min(component.exact_from, cell.delta);
      }
    }
  }
  // Release the claim either way: a failed cell simply becomes claimable
  // again, and the awaiting caller re-plans and solves it itself. Only
  // broadcast when someone is actually parked — the uncontended warm
  // publishes tens of thousands of cells and pays nothing here.
  SortedErase(component.inflight_deltas, cell.delta);
  if (cell_waiters_ > 0) cells_cv_.notify_all();
}

ExtensionFamily::CellOutcome ExtensionFamily::EvaluateCell(
    const ComponentState& component, CellTask& task) const {
  const double delta = task.delta;
  CellOutcome outcome;
  if (options_.use_repair_fast_path) {
    const int degree_cap = static_cast<int>(std::floor(delta));
    if (degree_cap >= 1 && degree_cap > task.fast_path_failed_at) {
      if (FindSpanningForestOfDegree(component.graph, degree_cap)
              .has_value()) {
        outcome.fast_certificate = true;
        outcome.value = component.f_sf;
        return outcome;
      }
      outcome.fast_path_failed_at = degree_cap;
    }
  }
  // Work on the task's private snapshot of the cut pool; cuts this cell
  // separates are appended to it and handed back for the merge.
  std::vector<std::vector<int>>& pool = task.pool;
  const std::size_t pool_snapshot_size = pool.size();
  ForestPolytopeOptions polytope = options_.polytope;
  polytope.cut_pool = &pool;
  const auto lp_started = std::chrono::steady_clock::now();
  const ForestPolytopeResult lp =
      MaximizeOverForestPolytope(component.graph, delta, polytope);
  LpSolveNsHistogram()->Observe(static_cast<double>(ElapsedNs(lp_started)));
  outcome.cut_rounds = lp.cut_rounds;
  outcome.cuts_added = lp.cuts_added;
  outcome.simplex_iterations = lp.simplex_iterations;
  if (lp.status != LpStatus::kOptimal) {
    outcome.ok = false;
    outcome.error = std::string("forest-polytope LP did not converge: ") +
                    LpStatusName(lp.status);
    return outcome;
  }
  outcome.value = lp.value;
  outcome.new_cuts.assign(pool.begin() + pool_snapshot_size, pool.end());
  return outcome;
}

}  // namespace nodedp

#include "core/lipschitz_extension.h"

#include <cmath>
#include <utility>
#include <vector>

#include "core/degree_improve.h"
#include "graph/connectivity.h"
#include "graph/subgraph.h"
#include "util/check.h"

namespace nodedp {

namespace {

// Evaluates one connected piece (or the whole graph when decomposition is
// off), accumulating stats into `result`.
Status EvalPiece(const Graph& piece, double delta,
                 const ExtensionOptions& options, ExtensionValue* result) {
  if (piece.NumEdges() == 0) return Status::OK();
  if (options.use_repair_fast_path) {
    // A spanning forest of degree <= floor(delta) certifies
    // f_Δ = f_sf exactly (Lemma 3.3, Item 1). Try Algorithm 3 repair, then
    // local-search degree reduction (core/degree_improve.h).
    const int degree_cap = static_cast<int>(std::floor(delta));
    if (degree_cap >= 1 &&
        FindSpanningForestOfDegree(piece, degree_cap).has_value()) {
      result->value += SpanningForestSize(piece);
      ++result->components_fast;
      return Status::OK();
    }
  }
  ForestPolytopeResult lp =
      MaximizeOverForestPolytope(piece, delta, options.polytope);
  result->cut_rounds += lp.cut_rounds;
  result->cuts_added += lp.cuts_added;
  result->simplex_iterations += lp.simplex_iterations;
  if (lp.status != LpStatus::kOptimal) {
    return Status::ResourceExhausted(
        std::string("forest-polytope LP did not converge: ") +
        LpStatusName(lp.status));
  }
  result->value += lp.value;
  ++result->components_lp;
  return Status::OK();
}

}  // namespace

Result<ExtensionValue> EvalLipschitzExtension(const Graph& g, double delta,
                                              const ExtensionOptions& options) {
  if (delta < 1.0) {
    return Status::InvalidArgument("delta must be >= 1 (Algorithm 1 grid)");
  }
  ExtensionValue result;
  if (g.NumEdges() == 0) return result;

  if (!options.decompose_components) {
    Status status = EvalPiece(g, delta, options, &result);
    if (!status.ok()) return status;
    return result;
  }

  for (const std::vector<int>& component : ComponentVertexSets(g)) {
    if (component.size() < 2) continue;
    InducedSubgraph piece = Induce(g, component);
    Status status = EvalPiece(piece.graph, delta, options, &result);
    if (!status.ok()) return status;
  }
  return result;
}

double LipschitzExtensionValue(const Graph& g, double delta,
                               const ExtensionOptions& options) {
  Result<ExtensionValue> result = EvalLipschitzExtension(g, delta, options);
  NODEDP_CHECK_MSG(result.ok(), result.status().ToString());
  return result->value;
}

}  // namespace nodedp

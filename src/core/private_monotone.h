// Theorem A.2 (after Raskhodnikova–Smith): a node-private release of ANY
// monotone nondecreasing graph statistic, with error bounded by its
// down-sensitivity, via the Lemma A.1 extension family + GEM.
//
// This is the generic counterpart to Algorithm 1: where the main algorithm
// uses the polynomial-time forest-polytope extensions specific to f_sf,
// this mechanism plugs the brute-force down-sensitivity extension
// (core/ds_extension.h) into the same GEM + Laplace pipeline. Evaluating
// the extension enumerates all induced subgraphs, so the mechanism is a
// *reference implementation* restricted to small graphs (NumVertices() <=
// 14) — exactly the role Appendix A plays in the paper (existence, not
// efficiency).
//
// Deviation note (see docs/DESIGN_NOTES.md §2): the literal Lemma A.1
// extension is not
// always an underestimate below the anchor threshold; the GEM scores are
// computed from the literal definition q_Δ = |f̂_Δ(G) − f(G)| + Δ/ε either
// way, which keeps the selection meaningful.

#ifndef NODEDP_CORE_PRIVATE_MONOTONE_H_
#define NODEDP_CORE_PRIVATE_MONOTONE_H_

#include <functional>
#include <vector>

#include "dp/gem.h"
#include "graph/graph.h"
#include "util/random.h"

namespace nodedp {

struct MonotoneReleaseOptions {
  // GEM failure probability; <= 0 selects DefaultBeta-style 0.1.
  double beta = 0.0;
  // Upper end of the Δ grid; <= 0 means NumVertices() (DS never exceeds n).
  int delta_max = 0;
};

struct MonotoneRelease {
  double estimate = 0.0;
  int selected_delta = 0;
  double extension_value = 0.0;   // f̂_Δ̂(G), pre-noise (NOT private)
  std::vector<GemCandidate> candidates;  // diagnostics (NOT private)
};

// ε-node-private release of `statistic`, which must be monotone
// nondecreasing under node insertion (e.g. f_sf, edge count, max-clique
// size). CHECKs NumVertices() <= 14.
MonotoneRelease PrivateMonotoneStatistic(
    const Graph& g, const std::function<double(const Graph&)>& statistic,
    double epsilon, Rng& rng, const MonotoneReleaseOptions& options = {});

}  // namespace nodedp

#endif  // NODEDP_CORE_PRIVATE_MONOTONE_H_

// The down-sensitivity-based Lipschitz extension of Lemma A.1:
//
//   f̂_Δ(G) = min over induced subgraphs H ⪯ G with DS_f(H) <= Δ of
//            f(H) + Δ · d(H, G).
//
// This is the extension whose anchor set S*_Δ = {G : DS_f(G) <= Δ} is the
// largest possible monotone anchor set (Lemma A.3). Evaluating it takes
// exponential time in general; this reference implementation enumerates all
// induced subgraphs and is restricted to small graphs. It exists to validate
// Lemma 1.9 (S*_{Δ-1} ⊆ S_Δ) and Theorem A.2 empirically against the
// polynomial-time extension of Definition 3.1.

#ifndef NODEDP_CORE_DS_EXTENSION_H_
#define NODEDP_CORE_DS_EXTENSION_H_

#include <functional>

#include "graph/graph.h"

namespace nodedp {

// Evaluates f̂_Δ(G) for the monotone nondecreasing statistic `statistic`
// (f_sf in the paper). CHECKs NumVertices() <= 14 (the evaluation touches
// every pair (subgraph, its subgraph)).
double DownSensitivityExtension(
    const Graph& g, double delta,
    const std::function<double(const Graph&)>& statistic);

}  // namespace nodedp

#endif  // NODEDP_CORE_DS_EXTENSION_H_

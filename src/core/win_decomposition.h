// Win's decomposition (Lemma 5.1, after [Win89]): if a graph has no
// spanning Δ-forest (Δ >= 2), there exist an induced subgraph S ⪯ G and a
// vertex set X ⊂ V(S) with
//   (1) S has a spanning Δ-tree (S is connected),
//   (2) G has no edges between G \ V(S) and S \ X,
//   (3) f_cc(S \ X) >= |X|·(Δ-2) + 2.
//
// The decomposition is the combinatorial engine behind the ℓ∞-optimality
// proof (Lemma 5.2 / Theorem 1.11). This module finds such a pair by
// exhaustive search on small graphs, which lets the test suite and E8
// verify the lemma itself — not just its downstream consequences — on every
// small instance without a spanning Δ-forest.

#ifndef NODEDP_CORE_WIN_DECOMPOSITION_H_
#define NODEDP_CORE_WIN_DECOMPOSITION_H_

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace nodedp {

struct WinDecomposition {
  std::vector<int> s_vertices;  // V(S), sorted
  std::vector<int> x_vertices;  // X ⊂ V(S), sorted
};

// Checks conditions (1)-(3) for a candidate pair. Exposed for tests.
bool IsWinDecomposition(const Graph& g, int delta,
                        const std::vector<int>& s_vertices,
                        const std::vector<int>& x_vertices);

// Exhaustive search over (S, X). Requires delta >= 2 and NumVertices() <= 14
// (the search enumerates all subset pairs, 3^n candidates). Returns nullopt
// iff no decomposition exists — which, by Lemma 5.1, can only happen when G
// has a spanning Δ-forest.
std::optional<WinDecomposition> FindWinDecomposition(const Graph& g,
                                                     int delta);

}  // namespace nodedp

#endif  // NODEDP_CORE_WIN_DECOMPOSITION_H_

#include "core/private_monotone.h"

#include <algorithm>
#include <cmath>

#include "core/ds_extension.h"
#include "dp/composition.h"
#include "dp/laplace.h"
#include "util/check.h"

namespace nodedp {

MonotoneRelease PrivateMonotoneStatistic(
    const Graph& g, const std::function<double(const Graph&)>& statistic,
    double epsilon, Rng& rng, const MonotoneReleaseOptions& options) {
  NODEDP_CHECK_GT(epsilon, 0.0);
  NODEDP_CHECK_LE(g.NumVertices(), 14);
  PrivacyAccountant accountant(epsilon);
  const double gem_epsilon = accountant.Spend(epsilon / 2.0, "gem");
  const double laplace_epsilon =
      accountant.Spend(epsilon / 2.0, "laplace-release");
  const double beta = options.beta > 0.0 ? options.beta : 0.1;

  const int delta_max = options.delta_max > 0
                            ? options.delta_max
                            : std::max(1, g.NumVertices());
  const std::vector<int> grid = PowersOfTwoGrid(delta_max);

  const double truth = statistic(g);
  MonotoneRelease release;
  std::vector<double> values;
  for (int delta : grid) {
    const double value = DownSensitivityExtension(g, delta, statistic);
    values.push_back(value);
    release.candidates.push_back(GemCandidate{
        static_cast<double>(delta),
        std::fabs(value - truth) + delta / gem_epsilon});
  }

  const GemResult gem =
      GemSelect(release.candidates, gem_epsilon, beta, rng);
  release.selected_delta = grid[gem.selected_index];
  release.extension_value = values[gem.selected_index];
  release.estimate =
      LaplaceMechanism(release.extension_value, release.selected_delta,
                       laplace_epsilon, rng);
  return release;
}

}  // namespace nodedp

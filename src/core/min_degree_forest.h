// Δ*: the smallest possible maximum degree of a spanning forest of G — the
// quantity parameterizing the accuracy guarantee of Theorem 1.3.
//
// Deciding whether a graph has a spanning tree of maximum degree <= Δ is
// NP-hard (Δ = 2 is the Hamiltonian-path problem), so no polynomial exact
// algorithm is expected. The paper itself never computes Δ*; it uses the
// bound Δ* <= DS_fsf(G) + 1 = s(G) + 1 (Lemma 1.6 + Lemma 1.7). We provide:
//
//   * an exact branch-and-bound for small graphs (used by tests and to
//     validate Lemma 1.6 exhaustively),
//   * the constructive upper bound: the smallest Δ for which the Algorithm 3
//     repair succeeds (always <= s(G) + 1), and
//   * the interval [lower, upper] combining both with the trivial bounds.

#ifndef NODEDP_CORE_MIN_DEGREE_FOREST_H_
#define NODEDP_CORE_MIN_DEGREE_FOREST_H_

#include <optional>

#include "graph/graph.h"

namespace nodedp {

struct MinDegreeForestOptions {
  // Branch-and-bound node budget for the exact decision procedure.
  long long work_limit = 20'000'000;
};

// True/false if decidable within the work limit, nullopt otherwise:
// does G have a spanning forest with maximum degree <= delta?
std::optional<bool> HasSpanningForestOfDegree(
    const Graph& g, int delta, const MinDegreeForestOptions& options = {});

// Exact Δ* (0 for edgeless graphs). Returns nullopt if the work limit was
// hit before the answer was certain.
std::optional<int> MinMaxDegreeSpanningForestExact(
    const Graph& g, const MinDegreeForestOptions& options = {});

// Smallest delta in [1, s(G)+1] for which RepairSpanningForest succeeds.
// Always a valid upper bound on Δ*; equals s(G)+1 in the worst case
// (Lemma 1.6). Returns 0 for edgeless graphs.
int MinDegreeForestUpperBound(const Graph& g);

}  // namespace nodedp

#endif  // NODEDP_CORE_MIN_DEGREE_FOREST_H_

#include "core/private_cc.h"

#include <algorithm>
#include <cmath>

#include "dp/composition.h"
#include "dp/laplace.h"
#include "graph/connectivity.h"
#include "util/check.h"
#include "util/parallel.h"

namespace nodedp {

double DefaultBeta(int num_vertices) {
  const double n = std::max(3, num_vertices);
  const double beta = 1.0 / std::log(std::log(n) + 1.0);
  return std::clamp(beta, 0.01, 0.25);
}

std::vector<double> AlgorithmOneDeltaGrid(int num_vertices,
                                          const PrivateCcOptions& options) {
  const int delta_max =
      options.delta_max > 0 ? options.delta_max : std::max(1, num_vertices);
  const std::vector<int> grid = PowersOfTwoGrid(delta_max);
  return std::vector<double>(grid.begin(), grid.end());
}

Result<SpanningForestRelease> PrivateSpanningForestSize(
    const Graph& g, double epsilon, Rng& rng,
    const PrivateCcOptions& options) {
  ExtensionFamily family(g, options.extension);
  return PrivateSpanningForestSize(family, epsilon, rng, options);
}

Result<SpanningForestRelease> PrivateSpanningForestSize(
    ExtensionFamily& family, double epsilon, Rng& rng,
    const PrivateCcOptions& options) {
  NODEDP_CHECK_GT(epsilon, 0.0);
  PrivacyAccountant accountant(epsilon);
  const double gem_epsilon = accountant.Spend(epsilon / 2.0, "gem");
  const double laplace_epsilon =
      accountant.Spend(epsilon / 2.0, "laplace-release");

  SpanningForestRelease release;
  release.beta = options.beta > 0.0 ? options.beta
                                    : DefaultBeta(family.num_vertices());

  const int delta_max = options.delta_max > 0
                            ? options.delta_max
                            : std::max(1, family.num_vertices());
  release.grid = PowersOfTwoGrid(delta_max);

  // Step 1 of Algorithm 4: evaluate the extension family and the scores
  // q_Δ = |f_Δ − f_sf| + Δ/ε_gem. The extensions underestimate (Lemma 3.3),
  // so the absolute value is f_sf − f_Δ. The grid is evaluated as one batch
  // so independent Δ cells run concurrently (see ExtensionFamily::Values).
  const double f_sf = family.SpanningForestSizeValue();
  const std::vector<double> grid_deltas(release.grid.begin(),
                                        release.grid.end());
  Result<std::vector<double>> values = family.Values(grid_deltas);
  if (!values.ok()) return values.status();
  const std::vector<double>& extension_values = *values;
  std::vector<GemCandidate> candidates;
  candidates.reserve(release.grid.size());
  for (std::size_t i = 0; i < release.grid.size(); ++i) {
    GemCandidate candidate;
    candidate.lipschitz = release.grid[i];
    candidate.q = (f_sf - extension_values[i]) + release.grid[i] / gem_epsilon;
    candidates.push_back(candidate);
  }
  release.candidates = candidates;

  // Step 1 of Algorithm 1: GEM at ε/2.
  const GemResult gem = GemSelect(candidates, gem_epsilon, release.beta, rng);
  release.selected_delta = release.grid[gem.selected_index];

  // Steps 2-3: release f_Δ̂ via the Laplace mechanism at ε/2; f_Δ̂ is
  // Δ̂-Lipschitz (Lemma 3.3), so the scale is Δ̂/(ε/2) = 2Δ̂/ε.
  release.extension_value = extension_values[gem.selected_index];
  release.laplace_scale = release.selected_delta / laplace_epsilon;
  release.estimate = LaplaceMechanism(release.extension_value,
                                      release.selected_delta,
                                      laplace_epsilon, rng);
  return release;
}

Result<ConnectedComponentsRelease> PrivateConnectedComponents(
    const Graph& g, double epsilon, Rng& rng,
    const PrivateCcOptions& options) {
  ExtensionFamily family(g, options.extension);
  return PrivateConnectedComponents(family, epsilon, rng, options);
}

Result<ConnectedComponentsRelease> PrivateConnectedComponents(
    ExtensionFamily& family, double epsilon, Rng& rng,
    const PrivateCcOptions& options) {
  NODEDP_CHECK_GT(epsilon, 0.0);
  NODEDP_CHECK_GT(options.node_count_budget_fraction, 0.0);
  NODEDP_CHECK_LT(options.node_count_budget_fraction, 1.0);
  PrivacyAccountant accountant(epsilon);
  const double count_epsilon = accountant.Spend(
      epsilon * options.node_count_budget_fraction, "node-count");
  const double forest_epsilon =
      accountant.Spend(epsilon - count_epsilon, "spanning-forest");

  ConnectedComponentsRelease release;
  // |V| has node-sensitivity exactly 1.
  release.node_count_estimate = LaplaceMechanism(
      family.num_vertices(), /*sensitivity=*/1.0, count_epsilon, rng);

  Result<SpanningForestRelease> forest =
      PrivateSpanningForestSize(family, forest_epsilon, rng, options);
  if (!forest.ok()) return forest.status();
  release.forest = std::move(forest).value();

  // Eq. (1): f_cc = |V| - f_sf.
  release.estimate = release.node_count_estimate - release.forest.estimate;
  return release;
}

namespace {

// Shared shape of both batch entry points: validate, then answer each query
// with its own deterministic child stream. `answer` is the per-query release
// function; it must not touch state shared across queries.
template <typename ReleaseType, typename AnswerFn>
std::vector<Result<ReleaseType>> AnswerBatch(
    const std::vector<ReleaseQuery>& queries, Rng& rng,
    const AnswerFn& answer) {
  return ParallelMapSeeded(
      rng, static_cast<std::int64_t>(queries.size()),
      [&](std::int64_t i, Rng& child) -> Result<ReleaseType> {
        const ReleaseQuery& query = queries[static_cast<std::size_t>(i)];
        if (query.graph == nullptr) {
          return Status::InvalidArgument("query graph is null");
        }
        if (!(query.epsilon > 0.0)) {
          return Status::InvalidArgument("query epsilon must be > 0");
        }
        return answer(query, child);
      });
}

}  // namespace

std::vector<Result<SpanningForestRelease>> ReleaseSpanningForestBatch(
    const std::vector<ReleaseQuery>& queries, Rng& rng,
    const PrivateCcOptions& options) {
  return AnswerBatch<SpanningForestRelease>(
      queries, rng, [&options](const ReleaseQuery& query, Rng& child) {
        return PrivateSpanningForestSize(*query.graph, query.epsilon, child,
                                         options);
      });
}

std::vector<Result<ConnectedComponentsRelease>> ReleaseBatch(
    const std::vector<ReleaseQuery>& queries, Rng& rng,
    const PrivateCcOptions& options) {
  return AnswerBatch<ConnectedComponentsRelease>(
      queries, rng, [&options](const ReleaseQuery& query, Rng& child) {
        return PrivateConnectedComponents(*query.graph, query.epsilon, child,
                                          options);
      });
}

namespace {

// Shared shape of both sweep entry points: warm the family's Δ grid once
// (the ε-independent work), then answer every ε on the pool. A warm-up
// failure (LP resource exhaustion) is reported in every slot — the per-ε
// releases could not have succeeded either.
template <typename ReleaseType, typename ReleaseFn>
std::vector<Result<ReleaseType>> AnswerSweep(
    ExtensionFamily& family, const std::vector<double>& epsilons, Rng& rng,
    const PrivateCcOptions& options, const ReleaseFn& release) {
  const Result<std::vector<double>> warm =
      family.Values(AlgorithmOneDeltaGrid(family.num_vertices(), options));
  if (!warm.ok()) {
    return std::vector<Result<ReleaseType>>(epsilons.size(), warm.status());
  }
  return ParallelMapSeeded(
      rng, static_cast<std::int64_t>(epsilons.size()),
      [&](std::int64_t i, Rng& child) -> Result<ReleaseType> {
        const double epsilon = epsilons[static_cast<std::size_t>(i)];
        if (!(epsilon > 0.0)) {
          return Status::InvalidArgument("sweep epsilon must be > 0");
        }
        return release(epsilon, child);
      });
}

}  // namespace

std::vector<Result<SpanningForestRelease>> SweepSpanningForest(
    ExtensionFamily& family, const std::vector<double>& epsilons, Rng& rng,
    const PrivateCcOptions& options) {
  return AnswerSweep<SpanningForestRelease>(
      family, epsilons, rng, options, [&](double epsilon, Rng& child) {
        return PrivateSpanningForestSize(family, epsilon, child, options);
      });
}

std::vector<Result<ConnectedComponentsRelease>> SweepConnectedComponents(
    ExtensionFamily& family, const std::vector<double>& epsilons, Rng& rng,
    const PrivateCcOptions& options) {
  return AnswerSweep<ConnectedComponentsRelease>(
      family, epsilons, rng, options, [&](double epsilon, Rng& child) {
        return PrivateConnectedComponents(family, epsilon, child, options);
      });
}

}  // namespace nodedp

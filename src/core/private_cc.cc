#include "core/private_cc.h"

#include <algorithm>
#include <cmath>

#include "dp/composition.h"
#include "dp/laplace.h"
#include "graph/connectivity.h"
#include "util/check.h"

namespace nodedp {

double DefaultBeta(int num_vertices) {
  const double n = std::max(3, num_vertices);
  const double beta = 1.0 / std::log(std::log(n) + 1.0);
  return std::clamp(beta, 0.01, 0.25);
}

Result<SpanningForestRelease> PrivateSpanningForestSize(
    const Graph& g, double epsilon, Rng& rng,
    const PrivateCcOptions& options) {
  ExtensionFamily family(g, options.extension);
  return PrivateSpanningForestSize(family, epsilon, rng, options);
}

Result<SpanningForestRelease> PrivateSpanningForestSize(
    ExtensionFamily& family, double epsilon, Rng& rng,
    const PrivateCcOptions& options) {
  NODEDP_CHECK_GT(epsilon, 0.0);
  PrivacyAccountant accountant(epsilon);
  const double gem_epsilon = accountant.Spend(epsilon / 2.0, "gem");
  const double laplace_epsilon =
      accountant.Spend(epsilon / 2.0, "laplace-release");

  SpanningForestRelease release;
  release.beta = options.beta > 0.0 ? options.beta
                                    : DefaultBeta(family.num_vertices());

  const int delta_max = options.delta_max > 0
                            ? options.delta_max
                            : std::max(1, family.num_vertices());
  release.grid = PowersOfTwoGrid(delta_max);

  // Step 1 of Algorithm 4: evaluate the extension family and the scores
  // q_Δ = |f_Δ − f_sf| + Δ/ε_gem. The extensions underestimate (Lemma 3.3),
  // so the absolute value is f_sf − f_Δ.
  const double f_sf = family.SpanningForestSizeValue();
  std::vector<GemCandidate> candidates;
  candidates.reserve(release.grid.size());
  std::vector<double> extension_values;
  extension_values.reserve(release.grid.size());
  for (int delta : release.grid) {
    Result<double> value = family.Value(delta);
    if (!value.ok()) return value.status();
    GemCandidate candidate;
    candidate.lipschitz = delta;
    candidate.q = (f_sf - *value) + delta / gem_epsilon;
    candidates.push_back(candidate);
    extension_values.push_back(*value);
  }
  release.candidates = candidates;

  // Step 1 of Algorithm 1: GEM at ε/2.
  const GemResult gem = GemSelect(candidates, gem_epsilon, release.beta, rng);
  release.selected_delta = release.grid[gem.selected_index];

  // Steps 2-3: release f_Δ̂ via the Laplace mechanism at ε/2; f_Δ̂ is
  // Δ̂-Lipschitz (Lemma 3.3), so the scale is Δ̂/(ε/2) = 2Δ̂/ε.
  release.extension_value = extension_values[gem.selected_index];
  release.laplace_scale = release.selected_delta / laplace_epsilon;
  release.estimate = LaplaceMechanism(release.extension_value,
                                      release.selected_delta,
                                      laplace_epsilon, rng);
  return release;
}

Result<ConnectedComponentsRelease> PrivateConnectedComponents(
    const Graph& g, double epsilon, Rng& rng,
    const PrivateCcOptions& options) {
  ExtensionFamily family(g, options.extension);
  return PrivateConnectedComponents(family, epsilon, rng, options);
}

Result<ConnectedComponentsRelease> PrivateConnectedComponents(
    ExtensionFamily& family, double epsilon, Rng& rng,
    const PrivateCcOptions& options) {
  NODEDP_CHECK_GT(epsilon, 0.0);
  NODEDP_CHECK_GT(options.node_count_budget_fraction, 0.0);
  NODEDP_CHECK_LT(options.node_count_budget_fraction, 1.0);
  PrivacyAccountant accountant(epsilon);
  const double count_epsilon = accountant.Spend(
      epsilon * options.node_count_budget_fraction, "node-count");
  const double forest_epsilon =
      accountant.Spend(epsilon - count_epsilon, "spanning-forest");

  ConnectedComponentsRelease release;
  // |V| has node-sensitivity exactly 1.
  release.node_count_estimate = LaplaceMechanism(
      family.num_vertices(), /*sensitivity=*/1.0, count_epsilon, rng);

  Result<SpanningForestRelease> forest =
      PrivateSpanningForestSize(family, forest_epsilon, rng, options);
  if (!forest.ok()) return forest.status();
  release.forest = std::move(forest).value();

  // Eq. (1): f_cc = |V| - f_sf.
  release.estimate = release.node_count_estimate - release.forest.estimate;
  return release;
}

}  // namespace nodedp

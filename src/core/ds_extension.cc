#include "core/ds_extension.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "graph/subgraph.h"
#include "util/check.h"

namespace nodedp {

double DownSensitivityExtension(
    const Graph& g, double delta,
    const std::function<double(const Graph&)>& statistic) {
  const int n = g.NumVertices();
  NODEDP_CHECK_LE(n, 14);
  NODEDP_CHECK_GE(delta, 0.0);
  const uint64_t num_masks = 1ULL << n;

  std::vector<double> value(num_masks);
  for (uint64_t mask = 0; mask < num_masks; ++mask) {
    value[mask] = statistic(InduceByMask(g, mask).graph);
  }

  // ds[mask] = DS_f of the subgraph induced by mask. DS is monotone under
  // taking induced subgraphs, so it satisfies the recursion
  //   ds[mask] = max over v in mask of
  //              max(|value[mask] - value[mask \ v]|, ds[mask \ v]).
  std::vector<double> ds(num_masks, 0.0);
  for (uint64_t mask = 1; mask < num_masks; ++mask) {
    double best = 0.0;
    for (int v = 0; v < n; ++v) {
      if (!((mask >> v) & 1ULL)) continue;
      const uint64_t smaller = mask & ~(1ULL << v);
      best = std::max(best, std::fabs(value[mask] - value[smaller]));
      best = std::max(best, ds[smaller]);
    }
    ds[mask] = best;
  }

  // f̂_Δ(G) = min over anchored subgraphs of value + Δ * (vertices removed).
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t mask = 0; mask < num_masks; ++mask) {
    if (ds[mask] > delta) continue;
    const int removed = n - __builtin_popcountll(mask);
    best = std::min(best, value[mask] + delta * removed);
  }
  return best;
}

}  // namespace nodedp

// Algorithm 1: the node-private release of the spanning-forest size, and the
// derived release of the number of connected components via Eq. (1).
//
// PrivateSpanningForestSize(G, ε):
//   1. Evaluate the extension family {f_Δ} on the powers-of-two grid
//      Δ ∈ {1, 2, 4, ..., Δmax} (Algorithm 4, step 1) and form
//      q_Δ = |f_Δ(G) − f_sf(G)| + Δ/(ε/2)  (Eq. (7), at GEM budget ε/2).
//   2. Select Δ̂ with GEM at budget ε/2 and failure probability β.
//   3. Release f_Δ̂(G) + Lap(2Δ̂/ε)  (budget ε/2; f_Δ̂ is Δ̂-Lipschitz).
//   Total privacy: ε by sequential composition (Lemma 2.4).
//
// PrivateConnectedComponents(G, ε):
//   splits ε between a Laplace release of |V(G)| (sensitivity 1) and the
//   spanning-forest release, returning n̂ − f̂sf  (Eq. (1)).
//
// Accuracy (Theorems 1.3 / 1.5): with probability 1 − O(β) the error is
// Δ* · O(ln(ln(Δmax)/β) · ln(1/β)) / ε, and Δ* <= DS_fsf(G) + 1 = s(G) + 1.

#ifndef NODEDP_CORE_PRIVATE_CC_H_
#define NODEDP_CORE_PRIVATE_CC_H_

#include <vector>

#include "core/extension_family.h"
#include "core/lipschitz_extension.h"
#include "dp/gem.h"
#include "util/random.h"
#include "util/status.h"

namespace nodedp {

struct PrivateCcOptions {
  // GEM failure probability β. <= 0 selects the paper's 1/ln(ln n) (clamped
  // to [0.01, 0.25] so small n behaves sensibly).
  double beta = 0.0;
  // Upper end of the Δ grid; <= 0 means n (the paper's choice). Lowering it
  // is an optimization that is valid whenever it is a data-independent
  // constant (e.g. a public degree cap).
  int delta_max = 0;
  // Fraction of the f_cc budget spent on the |V| release (rest goes to the
  // spanning-forest release). Only used by PrivateConnectedComponents.
  double node_count_budget_fraction = 0.5;
  ExtensionOptions extension;
};

struct SpanningForestRelease {
  double estimate = 0.0;         // the private release of f_sf(G)
  int selected_delta = 0;        // Δ̂ chosen by GEM
  double extension_value = 0.0;  // f_Δ̂(G) (pre-noise; NOT private)
  double laplace_scale = 0.0;    // 2Δ̂/ε
  double beta = 0.0;             // β actually used
  // Diagnostics (NOT private; for experiments/tests only):
  std::vector<GemCandidate> candidates;
  std::vector<int> grid;
};

struct ConnectedComponentsRelease {
  double estimate = 0.0;            // private release of f_cc(G)
  double node_count_estimate = 0.0; // private release of |V(G)|
  SpanningForestRelease forest;
};

// Algorithm 1. Requires epsilon > 0. Fails only if an extension evaluation
// exhausts its LP resource caps.
Result<SpanningForestRelease> PrivateSpanningForestSize(
    const Graph& g, double epsilon, Rng& rng,
    const PrivateCcOptions& options = {});

// Same, evaluating extensions through a caller-owned ExtensionFamily. The
// LP values f_Δ(G) are deterministic, so experiments running many noise
// trials on one graph should construct the family once: later trials reuse
// its caches and pay only for noise sampling.
Result<SpanningForestRelease> PrivateSpanningForestSize(
    ExtensionFamily& family, double epsilon, Rng& rng,
    const PrivateCcOptions& options = {});

// ε-node-private estimate of the number of connected components (Eq. (1)).
Result<ConnectedComponentsRelease> PrivateConnectedComponents(
    const Graph& g, double epsilon, Rng& rng,
    const PrivateCcOptions& options = {});

// Family-reusing variant of the above.
Result<ConnectedComponentsRelease> PrivateConnectedComponents(
    ExtensionFamily& family, double epsilon, Rng& rng,
    const PrivateCcOptions& options = {});

// The β the paper uses, 1/ln(ln n), clamped for small n.
double DefaultBeta(int num_vertices);

// The Δ grid Algorithm 1 evaluates — PowersOfTwoGrid over options.delta_max
// (the paper's default of n when <= 0) — as doubles ready for
// ExtensionFamily::Values. The single source of the grid for warm-up
// paths: the sweep entry points below and the serving layer's load-time
// warm both use it, so a warmed family always has exactly the cells a
// later sweep will touch.
std::vector<double> AlgorithmOneDeltaGrid(int num_vertices,
                                          const PrivateCcOptions& options);

// ---------------------------------------------------------------------------
// Batched serving
//
// The serving shape: many independent (graph, ε) queries — e.g. one per
// user-held graph — answered concurrently on the current thread pool
// (util/parallel.h). Each query draws from its own child Rng, split from
// `rng` in query order before dispatch, so a batch returns bit-identical
// releases at any thread count. Privacy composition is per query: queries
// are assumed to touch disjoint databases (different users' graphs); batch
// execution adds no coupling between them.
//
// Per-query failures (null graph, ε <= 0, LP resource exhaustion) are
// reported in that query's slot and do not affect the other queries.
// ---------------------------------------------------------------------------

struct ReleaseQuery {
  const Graph* graph = nullptr;  // borrowed; must outlive the call
  double epsilon = 1.0;
};

// Releases f_sf(G) for every query (Algorithm 1).
std::vector<Result<SpanningForestRelease>> ReleaseSpanningForestBatch(
    const std::vector<ReleaseQuery>& queries, Rng& rng,
    const PrivateCcOptions& options = {});

// Releases f_cc(G) for every query (Eq. (1)).
std::vector<Result<ConnectedComponentsRelease>> ReleaseBatch(
    const std::vector<ReleaseQuery>& queries, Rng& rng,
    const PrivateCcOptions& options = {});

// ---------------------------------------------------------------------------
// Epsilon sweeps on one warmed family
//
// The release-server shape: many releases at different ε against the SAME
// graph. The expensive part of Algorithm 1 — evaluating {f_Δ} over the grid
// — does not depend on ε, so the sweep warms the family's grid once and then
// answers every ε concurrently against the cached values; each release pays
// only for GEM scoring and noise sampling. Child Rngs are split in epsilon
// order before dispatch, so results are bit-identical at any thread count.
//
// Privacy: all releases read the same database, so publishing the sweep
// costs Σ ε_i by sequential composition (Lemma 2.4) — the caller (e.g.
// serve/ReleaseServer's budget ledger) is responsible for accounting the
// sum, exactly as with repeated single releases.
// ---------------------------------------------------------------------------

std::vector<Result<SpanningForestRelease>> SweepSpanningForest(
    ExtensionFamily& family, const std::vector<double>& epsilons, Rng& rng,
    const PrivateCcOptions& options = {});

std::vector<Result<ConnectedComponentsRelease>> SweepConnectedComponents(
    ExtensionFamily& family, const std::vector<double>& epsilons, Rng& rng,
    const PrivateCcOptions& options = {});

}  // namespace nodedp

#endif  // NODEDP_CORE_PRIVATE_CC_H_

#include "core/privacy_audit.h"

#include <algorithm>
#include <cmath>

#include "core/extension_family.h"
#include "dp/gem.h"
#include "graph/connectivity.h"
#include "graph/subgraph.h"
#include "util/check.h"

namespace nodedp {

namespace {

// A sampled node-neighbor of g: insertion of a fresh vertex with
// Bernoulli(edge_p) edges, or deletion of a uniformly random vertex.
Graph SampleNeighbor(const Graph& g, double edge_p, bool insert, Rng& rng) {
  if (insert || g.NumVertices() == 0) {
    std::vector<int> neighbors;
    for (int v = 0; v < g.NumVertices(); ++v) {
      if (rng.NextBernoulli(edge_p)) neighbors.push_back(v);
    }
    return AddVertex(g, neighbors);
  }
  return RemoveVertex(g, static_cast<int>(rng.NextUint64(g.NumVertices())));
}

// The deterministic GEM score vector that Algorithm 1 feeds to the
// exponential mechanism on input `g` (Algorithm 4 steps 1-6).
std::vector<double> GemScoresOf(const Graph& g, double epsilon, double beta,
                                int delta_max,
                                const ExtensionOptions& options) {
  const double gem_epsilon = epsilon / 2.0;
  ExtensionFamily family(g, options);
  const double f_sf = family.SpanningForestSizeValue();
  std::vector<GemCandidate> candidates;
  for (int delta : PowersOfTwoGrid(delta_max)) {
    const double value = family.Value(delta).value();
    candidates.push_back(GemCandidate{
        static_cast<double>(delta), (f_sf - value) + delta / gem_epsilon});
  }
  // Selection randomness is irrelevant; only the scores are audited.
  Rng throwaway(0);
  return GemSelect(candidates, gem_epsilon, beta, throwaway).scores;
}

}  // namespace

AuditReport AuditExtensionLipschitz(const Graph& g,
                                    const std::vector<double>& deltas,
                                    Rng& rng, const AuditOptions& options) {
  AuditReport report;
  ExtensionFamily base_family(g, options.extension);
  for (int sample = 0; sample < options.neighbor_samples; ++sample) {
    const bool insert = (sample % 2 == 0);
    if (!insert && g.NumVertices() == 0) continue;
    const Graph neighbor = SampleNeighbor(g, options.edge_p, insert, rng);
    ExtensionFamily neighbor_family(neighbor, options.extension);
    for (double delta : deltas) {
      const double base = base_family.Value(delta).value();
      const double other = neighbor_family.Value(delta).value();
      report.worst_extension_ratio = std::max(
          report.worst_extension_ratio, std::fabs(other - base) / delta);
      if (insert) {
        // Monotone under insertion: f_Δ(G') >= f_Δ(G).
        report.worst_monotonicity_violation =
            std::max(report.worst_monotonicity_violation, base - other);
      }
    }
    ++report.pairs_audited;
  }
  return report;
}

AuditReport AuditGemScoreSensitivity(const Graph& g, double epsilon,
                                     double beta, Rng& rng,
                                     const AuditOptions& options) {
  NODEDP_CHECK_GT(epsilon, 0.0);
  AuditReport report;
  // Δmax must be data-independent for the comparison to make sense: use the
  // larger of the two vertex counts (insertion neighbors have n + 1).
  const int delta_max = std::max(1, g.NumVertices() + 1);
  const std::vector<double> base =
      GemScoresOf(g, epsilon, beta, delta_max, options.extension);
  for (int sample = 0; sample < options.neighbor_samples; ++sample) {
    const bool insert = (sample % 2 == 0);
    if (!insert && g.NumVertices() == 0) continue;
    const Graph neighbor = SampleNeighbor(g, options.edge_p, insert, rng);
    const std::vector<double> other =
        GemScoresOf(neighbor, epsilon, beta, delta_max, options.extension);
    NODEDP_CHECK_EQ(base.size(), other.size());
    for (size_t i = 0; i < base.size(); ++i) {
      report.worst_score_sensitivity = std::max(
          report.worst_score_sensitivity, std::fabs(base[i] - other[i]));
    }
    ++report.pairs_audited;
  }
  return report;
}

}  // namespace nodedp

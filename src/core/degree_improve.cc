#include "core/degree_improve.h"

#include <queue>
#include <vector>

#include "core/repair.h"
#include "util/check.h"

namespace nodedp {

namespace {

// Vertices on c's side of the forest after edge (v, c) was removed.
std::vector<bool> SideOf(const Forest& forest, int c) {
  std::vector<bool> in_side(forest.NumVertices(), false);
  std::queue<int> queue;
  in_side[c] = true;
  queue.push(c);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (int w : forest.Neighbors(u)) {
      if (!in_side[w]) {
        in_side[w] = true;
        queue.push(w);
      }
    }
  }
  return in_side;
}

// One Fürer–Raghavachari-style swap at overloaded vertex v (degree D):
// remove a tree edge (v, c), reconnect the two pieces with a graph edge
// (a, b) whose endpoints have degree <= D - 2. Returns true on success.
bool TrySwapAt(const Graph& g, Forest& forest, int v, int degree_cap) {
  const std::vector<int> tree_neighbors(forest.Neighbors(v).begin(),
                                        forest.Neighbors(v).end());
  for (int c : tree_neighbors) {
    forest.RemoveEdge(v, c);
    const std::vector<bool> c_side = SideOf(forest, c);
    // Any graph edge crossing the split reconnects the forest; require both
    // endpoints to stay strictly below the current max after the swap.
    for (const Edge& e : g.Edges()) {
      const bool u_in = c_side[e.u];
      const bool w_in = c_side[e.v];
      if (u_in == w_in) continue;
      const int a = u_in ? e.u : e.v;  // c-side endpoint
      const int b = u_in ? e.v : e.u;  // v-side endpoint
      if (b == v) continue;  // would not reduce v's degree
      if (forest.Degree(a) > degree_cap || forest.Degree(b) > degree_cap) {
        continue;
      }
      forest.AddEdge(a, b);
      return true;
    }
    forest.AddEdge(v, c);  // restore and try the next tree edge
  }
  return false;
}

}  // namespace

bool ImproveForestDegree(const Graph& g, int delta, Forest& forest,
                         const DegreeImproveOptions& options) {
  NODEDP_CHECK_GE(delta, 1);
  NODEDP_DCHECK(forest.IsSpanningForestOf(g));
  int swaps = 0;
  for (;;) {
    const int max_degree = forest.MaxDegree();
    if (max_degree <= delta) return true;
    bool improved = false;
    for (int v = 0; v < forest.NumVertices() && !improved; ++v) {
      if (forest.Degree(v) < max_degree) continue;
      if (swaps >= options.max_swaps) {
        return forest.MaxDegree() <= delta;
      }
      // Endpoints may rise to max_degree - 1 at most (FR improvement step).
      if (TrySwapAt(g, forest, v, max_degree - 2)) {
        ++swaps;
        improved = true;
      }
    }
    if (!improved) return forest.MaxDegree() <= delta;
  }
}

std::optional<Forest> FindSpanningForestOfDegree(
    const Graph& g, int delta, const DegreeImproveOptions& options) {
  NODEDP_CHECK_GE(delta, 1);
  // Guaranteed constructive route when s(G) < delta (Lemma 1.8).
  std::optional<Forest> repaired = RepairSpanningForest(g, delta);
  if (repaired.has_value()) return repaired;
  // Heuristic route: BFS forest + local-search degree reduction.
  Forest forest = BfsSpanningForest(g);
  if (ImproveForestDegree(g, delta, forest, options)) {
    NODEDP_DCHECK(forest.IsSpanningForestOf(g));
    return forest;
  }
  return std::nullopt;
}

}  // namespace nodedp

#include "core/forest_polytope.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <utility>

#include "flow/dinic.h"
#include "graph/connectivity.h"
#include "graph/union_find.h"
#include "util/check.h"
#include "util/parallel.h"

namespace nodedp {

namespace {

// x(E[S]) for a sorted vertex set S.
double SubsetEdgeWeight(const Graph& g, const std::vector<double>& x,
                        const std::vector<int>& s) {
  std::vector<bool> in_s(g.NumVertices(), false);
  for (int v : s) in_s[v] = true;
  double total = 0.0;
  for (int v : s) {
    for (int edge_id : g.IncidentEdgeIds(v)) {
      const Edge& e = g.EdgeAt(edge_id);
      const int other = (e.u == v) ? e.v : e.u;
      if (in_s[other] && other > v) total += x[edge_id];
    }
  }
  return total;
}

// Builds the LP seeded with constraints (6) and the |S| = 2 instances of
// (5) (x_e <= 1). Degree rows are emitted only where they can bind
// (deg(v) > delta), since otherwise x(δ(v)) <= deg(v) <= delta already.
LpProblem BuildSeedLp(const Graph& g, double delta) {
  LpProblem lp(g.NumEdges());
  for (int e = 0; e < g.NumEdges(); ++e) {
    lp.SetObjective(e, 1.0);
    lp.AddConstraint({{e, 1.0}}, 1.0);
  }
  for (int v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) <= delta) continue;
    std::vector<std::pair<int, double>> row;
    row.reserve(g.Degree(v));
    for (int edge_id : g.IncidentEdgeIds(v)) row.emplace_back(edge_id, 1.0);
    lp.AddConstraint(std::move(row), delta);
  }
  return lp;
}

// Valid structural instances of constraint family (5): the vertex set of
// each connected component, and the vertex set of each fundamental cycle of
// a BFS spanning forest. These are the cuts the oracle would spend its
// first rounds discovering; installing them up front shortens convergence
// dramatically on near-anchored instances.
std::vector<std::vector<int>> StructuralSubtourSets(const Graph& g) {
  std::vector<std::vector<int>> sets;
  for (const std::vector<int>& component : ComponentVertexSets(g)) {
    if (component.size() >= 2) sets.push_back(component);
  }
  // BFS forest with parent/depth for fundamental cycles.
  const int n = g.NumVertices();
  std::vector<int> parent(n, -1);
  std::vector<int> depth(n, 0);
  std::vector<bool> visited(n, false);
  std::vector<int> queue;
  for (int root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    queue.clear();
    queue.push_back(root);
    for (size_t head = 0; head < queue.size(); ++head) {
      const int u = queue[head];
      for (int v : g.Neighbors(u)) {
        if (visited[v]) continue;
        visited[v] = true;
        parent[v] = u;
        depth[v] = depth[u] + 1;
        queue.push_back(v);
      }
    }
  }
  for (const Edge& e : g.Edges()) {
    if (parent[e.u] == e.v || parent[e.v] == e.u) continue;  // tree edge
    // Collect the cycle vertices: walk both endpoints up to their LCA.
    int a = e.u;
    int b = e.v;
    std::vector<int> cycle;
    while (depth[a] > depth[b]) {
      cycle.push_back(a);
      a = parent[a];
    }
    while (depth[b] > depth[a]) {
      cycle.push_back(b);
      b = parent[b];
    }
    while (a != b) {
      cycle.push_back(a);
      cycle.push_back(b);
      a = parent[a];
      b = parent[b];
    }
    cycle.push_back(a);
    std::sort(cycle.begin(), cycle.end());
    sets.push_back(std::move(cycle));
  }
  return sets;
}

}  // namespace

std::vector<SubtourViolation> FindViolatedSubtourSets(
    const Graph& g, const std::vector<double>& x, double tolerance,
    int max_sets) {
  NODEDP_CHECK_EQ(static_cast<int>(x.size()), g.NumEdges());
  const int n = g.NumVertices();
  const int m = g.NumEdges();
  std::vector<SubtourViolation> violations;
  if (n == 0 || m == 0) return violations;

  double total_weight = 0.0;
  for (double w : x) total_weight += w;

  // One independent max-flow per root — the hottest loop of the cutting
  // plane. Roots are solved concurrently; results land in per-root slots
  // and are deduplicated afterwards in root order, so the outcome is
  // bit-identical at any thread count.
  std::vector<std::optional<SubtourViolation>> by_root = ParallelMap(
      n, [&](std::int64_t root_index) -> std::optional<SubtourViolation> {
        const int root = static_cast<int>(root_index);
        // Only roots carrying weight can participate in a violated set: if
        // x(δ(r)) = 0 then S \ {r} is at least as violated as S.
        double incident = 0.0;
        for (int edge_id : g.IncidentEdgeIds(root)) incident += x[edge_id];
        if (incident <= tolerance) return std::nullopt;

        // Node layout: 0 = source, 1 = sink, 2..2+m-1 = edge nodes,
        // 2+m..2+m+n-1 = vertex nodes.
        Dinic dinic(2 + m + n);
        dinic.ReserveArcs(3 * m + n + 1);
        const int source = 0;
        const int sink = 1;
        auto edge_node = [&](int e) { return 2 + e; };
        auto vertex_node = [&](int v) { return 2 + m + v; };
        for (int e = 0; e < m; ++e) {
          if (x[e] <= 0.0) continue;
          dinic.AddArc(source, edge_node(e), x[e]);
          dinic.AddArc(edge_node(e), vertex_node(g.EdgeAt(e).u),
                       Dinic::kInfinity);
          dinic.AddArc(edge_node(e), vertex_node(g.EdgeAt(e).v),
                       Dinic::kInfinity);
        }
        for (int v = 0; v < n; ++v) dinic.AddArc(vertex_node(v), sink, 1.0);
        dinic.AddArc(source, vertex_node(root), Dinic::kInfinity);

        const double cut = dinic.Solve(source, sink);
        // max_{S∋root} (x(E[S]) - |S|) = total_weight - cut.
        const double closure_value = total_weight - cut;
        if (closure_value <= -1.0 + tolerance) return std::nullopt;

        SubtourViolation violation;
        for (int v = 0; v < n; ++v) {
          if (dinic.OnSourceSide(vertex_node(v))) {
            violation.vertices.push_back(v);
          }
        }
        if (violation.vertices.size() < 2) return std::nullopt;
        // Recompute the violation from the set itself (exact, independent
        // of flow arithmetic): x(E[S]) - (|S| - 1).
        violation.violation =
            SubsetEdgeWeight(g, x, violation.vertices) -
            (static_cast<double>(violation.vertices.size()) - 1.0);
        if (violation.violation <= tolerance) return std::nullopt;
        return violation;
      });

  std::set<std::vector<int>> seen;
  for (std::optional<SubtourViolation>& violation : by_root) {
    if (!violation.has_value()) continue;
    if (!seen.insert(violation->vertices).second) continue;
    violations.push_back(std::move(*violation));
  }

  std::sort(violations.begin(), violations.end(),
            [](const SubtourViolation& a, const SubtourViolation& b) {
              return a.violation > b.violation;
            });
  if (max_sets > 0 && static_cast<int>(violations.size()) > max_sets) {
    violations.resize(max_sets);
  }
  return violations;
}

std::vector<int> GreedyDegreeBoundedForest(
    const Graph& g, double delta, const std::vector<double>& weights) {
  NODEDP_CHECK_GE(delta, 1.0);
  NODEDP_CHECK_EQ(static_cast<int>(weights.size()), g.NumEdges());
  const int degree_cap = static_cast<int>(std::floor(delta));
  std::vector<int> order(g.NumEdges());
  for (int e = 0; e < g.NumEdges(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(), [&weights](int a, int b) {
    return weights[a] > weights[b];
  });
  UnionFind uf(g.NumVertices());
  std::vector<int> degree(g.NumVertices(), 0);
  std::vector<int> chosen;
  for (int e : order) {
    const Edge& edge = g.EdgeAt(e);
    if (degree[edge.u] >= degree_cap || degree[edge.v] >= degree_cap) {
      continue;
    }
    if (!uf.Union(edge.u, edge.v)) continue;
    ++degree[edge.u];
    ++degree[edge.v];
    chosen.push_back(e);
  }
  return chosen;
}

std::vector<SubtourViolation> FindViolatedSupportComponents(
    const Graph& g, const std::vector<double>& x, double tolerance) {
  // Heuristic separation: the connected components of the support graph
  // {e : x_e > tol} are natural candidates for violated subtour sets.
  UnionFind uf(g.NumVertices());
  for (int e = 0; e < g.NumEdges(); ++e) {
    if (x[e] > tolerance) uf.Union(g.EdgeAt(e).u, g.EdgeAt(e).v);
  }
  // x(E[S]) per component: count every edge with BOTH endpoints in S (also
  // sub-tolerance ones — they belong to E[S] and only sharpen the check).
  std::vector<double> weight_by_root(g.NumVertices(), 0.0);
  for (int e = 0; e < g.NumEdges(); ++e) {
    const int root = uf.Find(g.EdgeAt(e).u);
    if (root == uf.Find(g.EdgeAt(e).v)) weight_by_root[root] += x[e];
  }
  std::vector<SubtourViolation> violations;
  std::vector<std::vector<int>> members(g.NumVertices());
  for (int v = 0; v < g.NumVertices(); ++v) members[uf.Find(v)].push_back(v);
  for (int root = 0; root < g.NumVertices(); ++root) {
    if (members[root].size() < 2) continue;
    const double violation = weight_by_root[root] -
                             (static_cast<double>(members[root].size()) -
                              1.0);
    if (violation > tolerance) {
      violations.push_back(SubtourViolation{members[root], violation});
    }
  }
  return violations;
}

namespace {

void AddSubtourConstraint(const Graph& g, const std::vector<int>& vertices,
                          LpProblem* lp) {
  std::vector<bool> in_s(g.NumVertices(), false);
  for (int v : vertices) in_s[v] = true;
  std::vector<std::pair<int, double>> row;
  for (int e = 0; e < g.NumEdges(); ++e) {
    if (in_s[g.EdgeAt(e).u] && in_s[g.EdgeAt(e).v]) row.emplace_back(e, 1.0);
  }
  lp->AddConstraint(std::move(row),
                    static_cast<double>(vertices.size()) - 1.0);
}

}  // namespace

ForestPolytopeResult MaximizeOverForestPolytope(
    const Graph& g, double delta, const ForestPolytopeOptions& options) {
  NODEDP_CHECK_GT(delta, 0.0);
  ForestPolytopeResult result;
  if (g.NumEdges() == 0) {
    result.status = LpStatus::kOptimal;
    result.value = 0.0;
    result.x.assign(g.NumEdges(), 0.0);
    return result;
  }

  LpProblem lp = BuildSeedLp(g, delta);
  // Rows already in the LP, so neither the pool nor a numerically marginal
  // re-separation can insert the same set twice.
  std::set<std::vector<int>> installed;
  if (options.seed_structural_cuts) {
    for (std::vector<int>& structural : StructuralSubtourSets(g)) {
      if (installed.insert(structural).second) {
        AddSubtourConstraint(g, structural, &lp);
      }
    }
  }
  if (options.cut_pool != nullptr) {
    for (const std::vector<int>& pooled : *options.cut_pool) {
      if (installed.insert(pooled).second) {
        AddSubtourConstraint(g, pooled, &lp);
      }
    }
  }
  for (int round = 0; round < options.max_cut_rounds; ++round) {
    result.cut_rounds = round + 1;
    const LpSolution solution = SolveLp(lp, options.simplex);
    result.simplex_iterations += solution.iterations;
    if (solution.status != LpStatus::kOptimal) {
      result.status = solution.status;
      return result;
    }
    // Primal early exit: if greedy rounding matches the relaxation bound,
    // the relaxation value is the true optimum and the rounded forest is an
    // optimal (feasible) point.
    if (delta >= 1.0) {
      const std::vector<int> forest_edges =
          GreedyDegreeBoundedForest(g, delta, solution.x);
      if (static_cast<double>(forest_edges.size()) >=
          solution.objective - options.tolerance) {
        result.status = LpStatus::kOptimal;
        result.value = solution.objective;
        result.x.assign(g.NumEdges(), 0.0);
        for (int e : forest_edges) result.x[e] = 1.0;
        return result;
      }
    }
    // Cheap heuristic first; fall back to the exact oracle when the
    // heuristic certifies nothing new (the exact oracle decides
    // optimality).
    std::vector<SubtourViolation> violations;
    if (options.use_support_heuristic) {
      violations = FindViolatedSupportComponents(g, solution.x,
                                                 options.tolerance);
    }
    int fresh = 0;
    for (const SubtourViolation& violation : violations) {
      if (installed.count(violation.vertices) == 0) ++fresh;
    }
    if (fresh == 0) {
      violations = FindViolatedSubtourSets(g, solution.x, options.tolerance,
                                           options.max_cuts_per_round);
    }
    bool added_any = false;
    for (const SubtourViolation& violation : violations) {
      if (!installed.insert(violation.vertices).second) continue;
      AddSubtourConstraint(g, violation.vertices, &lp);
      if (options.cut_pool != nullptr) {
        options.cut_pool->push_back(violation.vertices);
      }
      ++result.cuts_added;
      added_any = true;
    }
    if (!added_any) {
      result.status = LpStatus::kOptimal;
      result.value = solution.objective;
      result.x = solution.x;
      return result;
    }
  }
  result.status = LpStatus::kIterationLimit;
  return result;
}

ForestPolytopeResult MaximizeOverForestPolytopeExhaustive(
    const Graph& g, double delta, const SimplexOptions& options) {
  NODEDP_CHECK_GT(delta, 0.0);
  NODEDP_CHECK_LE(g.NumVertices(), 18);
  ForestPolytopeResult result;
  const int n = g.NumVertices();
  LpProblem lp(g.NumEdges());
  for (int e = 0; e < g.NumEdges(); ++e) lp.SetObjective(e, 1.0);
  // Constraints (6).
  for (int v = 0; v < n; ++v) {
    if (g.Degree(v) == 0) continue;
    std::vector<std::pair<int, double>> row;
    for (int edge_id : g.IncidentEdgeIds(v)) row.emplace_back(edge_id, 1.0);
    lp.AddConstraint(std::move(row), delta);
  }
  // Constraints (5), every subset with at least 2 vertices and an edge.
  for (uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    const int size = __builtin_popcountll(mask);
    if (size < 2) continue;
    std::vector<std::pair<int, double>> row;
    for (int e = 0; e < g.NumEdges(); ++e) {
      const Edge& edge = g.EdgeAt(e);
      if (((mask >> edge.u) & 1ULL) && ((mask >> edge.v) & 1ULL)) {
        row.emplace_back(e, 1.0);
      }
    }
    if (row.empty()) continue;
    lp.AddConstraint(std::move(row), size - 1.0);
  }
  const LpSolution solution = SolveLp(lp, options);
  result.status = solution.status;
  result.simplex_iterations = solution.iterations;
  if (solution.status == LpStatus::kOptimal) {
    result.value = solution.objective;
    result.x = solution.x;
  }
  return result;
}

}  // namespace nodedp

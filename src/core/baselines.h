// Comparison baselines for the experiments.
//
// The paper has no node-private predecessor for f_cc; the meaningful
// comparisons it discusses are:
//   * edge-DP Laplace (Section 1.2): f_cc changes by at most 1 per edge
//     insertion/removal, so Lap(1/ε) suffices — but under the much weaker
//     edge-privacy notion;
//   * the naive node-private release: the global node-sensitivity of f_cc
//     is n-1 in the worst case, so Lap((n-1)/ε) — useless noise, which is
//     precisely the obstacle motivating the paper;
//   * fixed-Δ ablation: release f_Δ + Lap(Δ/ε) for a public constant Δ,
//     i.e., Algorithm 1 without the GEM selection step.

#ifndef NODEDP_CORE_BASELINES_H_
#define NODEDP_CORE_BASELINES_H_

#include "core/lipschitz_extension.h"
#include "graph/graph.h"
#include "util/random.h"
#include "util/status.h"

namespace nodedp {

// ε-EDGE-private f_cc: f_cc(G) + Lap(1/ε). (Weaker privacy model.)
double EdgeDpConnectedComponents(const Graph& g, double epsilon, Rng& rng);

// ε-node-private f_cc via the worst-case sensitivity bound n-1:
// f_cc(G) + Lap((n-1)/ε). Valid but unusably noisy — the lower-bound
// obstacle discussed in the introduction.
double NaiveNodeDpConnectedComponents(const Graph& g, double epsilon,
                                      Rng& rng);

// Fixed-Δ node-private release of f_cc: combines a Lap(1/ε_count) node count
// with f_Δ + Lap(Δ/ε_sf) under an even budget split. Δ must be chosen
// data-independently for the privacy guarantee to hold.
Result<double> FixedDeltaNodeDpConnectedComponents(
    const Graph& g, int delta, double epsilon, Rng& rng,
    const ExtensionOptions& options = {});

}  // namespace nodedp

#endif  // NODEDP_CORE_BASELINES_H_

#include "core/min_degree_forest.h"

#include <vector>

#include "core/repair.h"
#include "graph/connectivity.h"
#include "graph/subgraph.h"
#include "graph/star.h"
#include "graph/union_find.h"
#include "util/check.h"

namespace nodedp {

namespace {

// Backtracking decision: does the (connected) graph `g` have a spanning tree
// of maximum degree <= delta? Branches include/exclude per edge in index
// order with two prunes: degree/cycle feasibility for inclusion, and a
// connectivity prune (included edges + still-usable undecided edges must
// connect the graph).
class SpanningTreeSearch {
 public:
  SpanningTreeSearch(const Graph& g, int delta, long long work_limit)
      : g_(g), delta_(delta), work_(work_limit), degree_(g.NumVertices(), 0) {}

  // nullopt = work limit exhausted.
  std::optional<bool> Decide() {
    UnionFind uf(g_.NumVertices());
    const std::optional<bool> result =
        Search(0, uf, g_.NumVertices() - CountConnectedComponents(g_));
    return result;
  }

 private:
  std::optional<bool> Search(int index, UnionFind uf, int needed) {
    if (work_-- <= 0) return std::nullopt;
    if (needed == 0) return true;
    if (index >= g_.NumEdges()) return false;
    if (!CanStillConnect(index, uf)) return false;

    const Edge& e = g_.EdgeAt(index);
    // Branch 1: include the edge.
    if (degree_[e.u] < delta_ && degree_[e.v] < delta_ &&
        !uf.Connected(e.u, e.v)) {
      UnionFind next = uf;
      next.Union(e.u, e.v);
      ++degree_[e.u];
      ++degree_[e.v];
      const std::optional<bool> included = Search(index + 1, next, needed - 1);
      --degree_[e.u];
      --degree_[e.v];
      if (!included.has_value() || *included) return included;
    }
    // Branch 2: exclude the edge.
    return Search(index + 1, uf, needed);
  }

  // Included edges plus undecided edges that could still be added (both
  // endpoint degrees below delta) must connect each component of g.
  bool CanStillConnect(int index, UnionFind uf) {
    for (int e = index; e < g_.NumEdges(); ++e) {
      const Edge& edge = g_.EdgeAt(e);
      if (degree_[edge.u] >= delta_ || degree_[edge.v] >= delta_) continue;
      uf.Union(edge.u, edge.v);
    }
    return uf.NumSets() == CountConnectedComponents(g_);
  }

  const Graph& g_;
  int delta_;
  long long work_;
  std::vector<int> degree_;
};

}  // namespace

std::optional<bool> HasSpanningForestOfDegree(
    const Graph& g, int delta, const MinDegreeForestOptions& options) {
  NODEDP_CHECK_GE(delta, 0);
  if (g.NumEdges() == 0) return true;
  if (delta == 0) return false;
  // Cheap certificate first.
  if (RepairSpanningForest(g, delta).has_value()) return true;
  long long budget = options.work_limit;
  for (const std::vector<int>& component : ComponentVertexSets(g)) {
    if (component.size() < 2) continue;
    InducedSubgraph piece = Induce(g, component);
    SpanningTreeSearch search(piece.graph, delta, budget);
    const std::optional<bool> decided = search.Decide();
    if (!decided.has_value()) return std::nullopt;
    if (!*decided) return false;
  }
  return true;
}

std::optional<int> MinMaxDegreeSpanningForestExact(
    const Graph& g, const MinDegreeForestOptions& options) {
  if (g.NumEdges() == 0) return 0;
  for (int delta = 1; delta <= g.NumVertices(); ++delta) {
    const std::optional<bool> has = HasSpanningForestOfDegree(g, delta,
                                                              options);
    if (!has.has_value()) return std::nullopt;
    if (*has) return delta;
  }
  NODEDP_CHECK_MSG(false, "BFS forest always bounds degree by n-1");
  return std::nullopt;
}

int MinDegreeForestUpperBound(const Graph& g) {
  if (g.NumEdges() == 0) return 0;
  for (int delta = 1; delta <= g.NumVertices(); ++delta) {
    if (RepairSpanningForest(g, delta).has_value()) return delta;
  }
  NODEDP_CHECK_MSG(false,
                   "repair must succeed at delta = s(G)+1 <= n (Lemma 1.8)");
  return g.NumVertices();
}

}  // namespace nodedp

// Sublinear (non-private) estimation of the number of connected components
// by vertex sampling with truncated BFS — the classical baseline family the
// paper's introduction cites ([CRT05], [BKM14], [KW20]).
//
// The estimator uses the identity f_cc(G) = Σ_v 1/|C(v)| (each component
// contributes 1). Sample s vertices uniformly; for each, run BFS truncated
// at `cutoff` visited vertices and contribute 1/|C(v)| if the component was
// exhausted, 0 otherwise. The estimate is n times the sample mean.
// Truncation biases the estimate DOWN by at most n/cutoff (components
// larger than the cutoff contribute less than 1 each... at most
// n/cutoff · cutoff · (1/cutoff) = n/cutoff in total), and sampling adds
// O(n/sqrt(s)) noise — the standard additive-error trade-off of the
// sublinear literature.
//
// Role in this repo: a NON-private comparator for the experiments. It shows
// what error one already tolerates for *efficiency* reasons without any
// privacy, putting the node-DP error of Algorithm 1 in context.

#ifndef NODEDP_CORE_SUBLINEAR_CC_H_
#define NODEDP_CORE_SUBLINEAR_CC_H_

#include "graph/graph.h"
#include "util/random.h"

namespace nodedp {

struct SublinearCcOptions {
  int num_samples = 256;
  int bfs_cutoff = 64;  // component-size truncation threshold
};

struct SublinearCcEstimate {
  double estimate = 0.0;
  int vertices_visited = 0;  // total BFS work actually performed
};

// Estimates f_cc(G). Not differentially private. Requires num_samples >= 1
// and bfs_cutoff >= 1; returns 0 for the empty graph.
SublinearCcEstimate SublinearConnectedComponents(
    const Graph& g, Rng& rng, const SublinearCcOptions& options = {});

}  // namespace nodedp

#endif  // NODEDP_CORE_SUBLINEAR_CC_H_

// Sublinear (non-private) estimation of the number of connected components
// by vertex sampling with truncated BFS — the classical baseline family the
// paper's introduction cites ([CRT05], [BKM14], [KW20]).
//
// The estimator uses the identity f_cc(G) = Σ_v 1/|C(v)| (each component
// contributes 1). Sample s vertices uniformly; for each, run BFS truncated
// at `cutoff` visited vertices and contribute 1/|C(v)| if the component was
// exhausted, 0 otherwise. The estimate is n times the sample mean.
// Truncation biases the estimate DOWN by at most n/cutoff (components
// larger than the cutoff contribute less than 1 each... at most
// n/cutoff · cutoff · (1/cutoff) = n/cutoff in total), and sampling adds
// O(n/sqrt(s)) noise — the standard additive-error trade-off of the
// sublinear literature.
//
// Role in this repo: a NON-private comparator for the experiments
// (SublinearConnectedComponents), plus the private approx serving tier
// built on it (PrivateSublinearCc) — a node-DP release of the truncated
// component-count surrogate F_T whose Laplace noise is calibrated to the
// estimator's own truncation bias.
//
// Privacy analysis of PrivateSublinearCc (derivation in
// docs/ARCHITECTURE.md). Let T = bfs_cutoff, D = delta_max (public degree
// promise; D = n when unconditional), and let q_G(v) = 1{|C(v)| <= T} /
// |C(v)|, so Sum_v q_G(v) = F_T(G), the number of components of size at
// most T. The estimator samples s DISTINCT vertices (without replacement;
// crucial — with replacement all samples can land on one affected vertex
// and the sensitivity degrades to Theta(n)) and releases (n/s) times the
// sample sum. Removing a vertex v* of degree at most D changes q on
// C(v*) only, with Sum_v |Delta q(v)| <= D + 1; coupling the sample sets
// of neighboring graphs (swap v* for a fresh vertex) gives worst-case
// estimator sensitivity
//
//   Delta_approx = 1 + (n/s) * (D + 2).
//
// Auto-calibration picks s = T * (D + 2), making the noise scale
// Delta/eps match the truncation bias bound n/T — noise and bias shrink
// together as the caller spends more cutoff. When s >= n/2 the sampling
// detour is pointless: the release computes F_T exactly (one O(n + m)
// pass, zero sampling error) under the same sensitivity bound at s = n.

#ifndef NODEDP_CORE_SUBLINEAR_CC_H_
#define NODEDP_CORE_SUBLINEAR_CC_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/random.h"
#include "util/status.h"

namespace nodedp {

struct SublinearCcOptions {
  int num_samples = 256;
  int bfs_cutoff = 64;  // component-size truncation threshold
};

struct SublinearCcEstimate {
  double estimate = 0.0;
  int vertices_visited = 0;  // total BFS work actually performed
};

// Estimates f_cc(G). Not differentially private. Requires num_samples >= 1
// and bfs_cutoff >= 1; returns 0 for the empty graph.
SublinearCcEstimate SublinearConnectedComponents(
    const Graph& g, Rng& rng, const SublinearCcOptions& options = {});

struct PrivateSublinearCcOptions {
  // Distinct vertices to sample; 0 means auto = bfs_cutoff * (delta_max+2)
  // (clamped to [1, n]), which balances Laplace noise against truncation
  // bias. Values >= n/2 switch to the exact F_T pass.
  int num_samples = 0;
  int bfs_cutoff = 64;
  // Public degree promise D (as in the exact tier's delta_max). <= 0 means
  // no promise: D = n, unconditionally private but very noisy.
  int delta_max = 0;
};

// Everything an approx-tier release reports. `estimate` is the private
// output; every other field is a function of public parameters (n, s, T,
// D, epsilon) and costs no privacy budget — EXCEPT raw_estimate, which is
// the pre-noise value, kept for benchmarks/diagnostics and never put on
// the wire.
struct SublinearCcRelease {
  double estimate = 0.0;       // private: raw + Lap(sensitivity/epsilon)
  double raw_estimate = 0.0;   // NOT private; diagnostics only
  int num_samples = 0;         // s actually used (n on the exact-F_T path)
  int bfs_cutoff = 0;          // T
  int delta_max = 0;           // effective D (n when unconditional)
  bool exact_ft = false;       // true when F_T was computed exactly
  double sensitivity = 0.0;    // Delta_approx = 1 + (n/s)(D+2)
  double laplace_scale = 0.0;  // sensitivity / epsilon
  // Deterministic one-sided bias of F_T vs f_cc: components larger than T
  // are not counted, undershooting by at most n/T.
  double truncation_bias_bound = 0.0;
  // Sampling deviation |raw - F_T| is O(n/sqrt(s)); 0 on the exact path.
  double sampling_error_bound = 0.0;
  std::int64_t vertices_visited = 0;  // total BFS work performed
};

// Epsilon-node-DP release of the truncated component count F_T (a
// surrogate for f_cc with public error bounds, above). Requires
// epsilon > 0, bfs_cutoff >= 1, num_samples >= 0. Empty graph releases
// 0 + Lap(1/epsilon).
Result<SublinearCcRelease> PrivateSublinearCc(
    const Graph& g, double epsilon, Rng& rng,
    const PrivateSublinearCcOptions& options = {});

}  // namespace nodedp

#endif  // NODEDP_CORE_SUBLINEAR_CC_H_

// Down-sensitivity (Definition 1.4) of graph statistics.
//
//   DS_f(G) = max |f(H') - f(H)| over node-neighboring induced subgraphs
//             H ⪯ H' ⪯ G.
//
// For f = f_sf the paper proves DS_fsf(G) = s(G), the induced star number
// (Lemma 1.7), giving a polynomially-computable-in-practice handle (s(G) is
// a per-neighborhood max independent set; see graph/star.h). The generic
// brute-force evaluator below enumerates all induced subgraph pairs and is
// used to validate the lemma on small graphs, as well as to evaluate DS for
// arbitrary statistics.

#ifndef NODEDP_CORE_DOWN_SENSITIVITY_H_
#define NODEDP_CORE_DOWN_SENSITIVITY_H_

#include <functional>

#include "graph/graph.h"
#include "graph/star.h"

namespace nodedp {

// DS_fsf(G) via Lemma 1.7: returns s(G). Result may be marked inexact under
// the star-search work limit (then it is a lower bound on DS).
StarNumberResult DownSensitivitySpanningForest(
    const Graph& g, const StarNumberOptions& options = {});

// DS_fcc differs from DS_fsf by at most 1 (they sum to |V|, which changes by
// exactly 1 between node-neighbors); this evaluates it exactly by brute
// force on small graphs, or bounds it as s(G) ± 1 otherwise.

// Exhaustive DS per Definition 1.4 for an arbitrary statistic. Enumerates
// every induced subgraph H' of G (2^n masks) and every vertex removal.
// CHECKs NumVertices() <= 20.
double DownSensitivityBruteForce(
    const Graph& g, const std::function<double(const Graph&)>& statistic);

}  // namespace nodedp

#endif  // NODEDP_CORE_DOWN_SENSITIVITY_H_

#include "core/win_decomposition.h"

#include <algorithm>

#include "core/min_degree_forest.h"
#include "graph/connectivity.h"
#include "graph/subgraph.h"
#include "util/check.h"

namespace nodedp {

namespace {

uint64_t MaskOf(const std::vector<int>& vertices) {
  uint64_t mask = 0;
  for (int v : vertices) mask |= (1ULL << v);
  return mask;
}

std::vector<int> VerticesOf(uint64_t mask, int n) {
  std::vector<int> vertices;
  for (int v = 0; v < n; ++v) {
    if ((mask >> v) & 1ULL) vertices.push_back(v);
  }
  return vertices;
}

// Condition (1): the subgraph induced by s_mask is connected and has a
// spanning tree of maximum degree <= delta.
bool HasSpanningDeltaTree(const Graph& g, uint64_t s_mask, int delta) {
  const InducedSubgraph s = InduceByMask(g, s_mask);
  if (s.graph.NumVertices() == 0) return false;
  if (CountConnectedComponents(s.graph) != 1) return false;
  const std::optional<bool> decision =
      HasSpanningForestOfDegree(s.graph, delta);
  return decision.has_value() && *decision;
}

}  // namespace

bool IsWinDecomposition(const Graph& g, int delta,
                        const std::vector<int>& s_vertices,
                        const std::vector<int>& x_vertices) {
  NODEDP_CHECK_GE(delta, 2);
  NODEDP_CHECK_LE(g.NumVertices(), 14);
  const uint64_t s_mask = MaskOf(s_vertices);
  const uint64_t x_mask = MaskOf(x_vertices);
  if ((x_mask & ~s_mask) != 0) return false;  // X must lie inside S
  if (x_mask == s_mask) return false;         // X ⊂ V(S) strictly
  // (1)
  if (!HasSpanningDeltaTree(g, s_mask, delta)) return false;
  // (2): no edges between G \ V(S) and S \ X.
  const uint64_t core_mask = s_mask & ~x_mask;  // S \ X
  for (const Edge& e : g.Edges()) {
    const bool u_out = !((s_mask >> e.u) & 1ULL);
    const bool v_out = !((s_mask >> e.v) & 1ULL);
    const bool u_core = (core_mask >> e.u) & 1ULL;
    const bool v_core = (core_mask >> e.v) & 1ULL;
    if ((u_out && v_core) || (v_out && u_core)) return false;
  }
  // (3): f_cc(S \ X) >= |X|(Δ-2) + 2.
  const InducedSubgraph core = InduceByMask(g, core_mask);
  const int x_size = __builtin_popcountll(x_mask);
  return CountConnectedComponents(core.graph) >= x_size * (delta - 2) + 2;
}

std::optional<WinDecomposition> FindWinDecomposition(const Graph& g,
                                                     int delta) {
  NODEDP_CHECK_GE(delta, 2);
  const int n = g.NumVertices();
  NODEDP_CHECK_LE(n, 12);
  const uint64_t num_masks = 1ULL << n;

  // Precompute condition (1) per candidate S.
  std::vector<bool> has_tree(num_masks, false);
  for (uint64_t s = 1; s < num_masks; ++s) {
    has_tree[s] = HasSpanningDeltaTree(g, s, delta);
  }
  // Precompute f_cc per subset for condition (3).
  std::vector<int> cc(num_masks, 0);
  for (uint64_t mask = 1; mask < num_masks; ++mask) {
    cc[mask] = CountConnectedComponents(InduceByMask(g, mask).graph);
  }

  for (uint64_t s = 1; s < num_masks; ++s) {
    if (!has_tree[s]) continue;
    // Enumerate proper submasks X of S (x != s), including the empty set.
    uint64_t x = s;
    do {
      x = (x - 1) & s;
      const uint64_t core = s & ~x;
      const int x_size = __builtin_popcountll(x);
      if (cc[core] < x_size * (delta - 2) + 2) continue;
      bool separated = true;
      for (const Edge& e : g.Edges()) {
        const bool u_out = !((s >> e.u) & 1ULL);
        const bool v_out = !((s >> e.v) & 1ULL);
        const bool u_core = (core >> e.u) & 1ULL;
        const bool v_core = (core >> e.v) & 1ULL;
        if ((u_out && v_core) || (v_out && u_core)) {
          separated = false;
          break;
        }
      }
      if (!separated) continue;
      WinDecomposition result;
      result.s_vertices = VerticesOf(s, n);
      result.x_vertices = VerticesOf(x, n);
      return result;
    } while (x != 0);
  }
  return std::nullopt;
}

}  // namespace nodedp

// Degree-bounded spanning forests by local search, in the spirit of
// Fürer–Raghavachari local improvement.
//
// The Algorithm 3 repair certificate (core/repair.h) is guaranteed only when
// s(G) < Δ; many graphs have spanning Δ-forests well below that. This module
// supplies a stronger — still sound, merely heuristic-complete — certificate
// used by the Lipschitz-extension fast path: start from a BFS spanning
// forest and repeatedly apply degree-reducing edge swaps. A swap removes a
// tree edge (v, c) at an overloaded vertex v and reconnects the two resulting
// subtrees with a graph edge (a, b) whose endpoints both have degree < limit;
// the forest stays spanning and acyclic by construction, v's degree drops by
// one, and no vertex exceeds the limit.
//
// Soundness: whenever the search reaches max degree <= delta, the resulting
// forest witnesses f_Δ(G) = f_sf(G) (Lemma 3.3, Item 1). Failure to reach
// delta proves nothing (the decision problem is NP-hard), and the caller
// falls back to the LP.

#ifndef NODEDP_CORE_DEGREE_IMPROVE_H_
#define NODEDP_CORE_DEGREE_IMPROVE_H_

#include <optional>

#include "graph/forest.h"
#include "graph/graph.h"

namespace nodedp {

struct DegreeImproveOptions {
  // Cap on total swap attempts across the whole search.
  int max_swaps = 100000;
};

// Reduces the maximum degree of `forest` (a spanning forest of g) towards
// `delta` by local swaps. Returns true if max degree <= delta was reached.
// The forest remains a spanning forest of g either way.
bool ImproveForestDegree(const Graph& g, int delta, Forest& forest,
                         const DegreeImproveOptions& options = {});

// Best-effort search for a spanning Δ-forest: Algorithm 3 repair first
// (guaranteed when s(G) < delta), then BFS + local-search improvement.
// Requires delta >= 1.
std::optional<Forest> FindSpanningForestOfDegree(
    const Graph& g, int delta, const DegreeImproveOptions& options = {});

}  // namespace nodedp

#endif  // NODEDP_CORE_DEGREE_IMPROVE_H_

// EvalLipschitzExtension (Algorithm 2): computes f_Δ(G), the value of the
// paper's Lipschitz extension of the spanning-forest size.
//
// On top of the raw cutting-plane LP (core/forest_polytope.h) this evaluator
// adds two exact optimizations:
//
//  * Component decomposition. P_Δ(G) is a product polytope across connected
//    components (no constraint couples edges of different components), so
//    f_Δ is additive: each component is evaluated independently.
//
//  * Repair certificate. If Algorithm 3 builds a spanning Δ-forest of a
//    component, its indicator vector is feasible and meets the
//    underestimation bound, so f_Δ(component) = f_sf(component) exactly
//    (Lemma 3.3, Item 1) and the LP is skipped. Since the repair procedure
//    is guaranteed to succeed when s(G) < Δ (Lemma 1.8), the LP only ever
//    runs for Δ <= s(G) — the small-Δ tail of the GEM grid.

#ifndef NODEDP_CORE_LIPSCHITZ_EXTENSION_H_
#define NODEDP_CORE_LIPSCHITZ_EXTENSION_H_

#include "core/forest_polytope.h"
#include "graph/graph.h"
#include "util/status.h"

namespace nodedp {

struct ExtensionOptions {
  // Try the Algorithm 3 certificate before the LP. Always sound.
  bool use_repair_fast_path = true;
  // Evaluate per connected component. Always sound.
  bool decompose_components = true;
  // Order in which ExtensionFamily dispatches component inductions and
  // grid-cell solves across the thread pool. kCostOrdered (the default) is
  // longest-processing-time-first by estimated cost, which shrinks the
  // straggler tail on skewed component distributions; kIndexOrdered is the
  // legacy claim order, kept for A/B measurement (bench_serve's warm_skew
  // record). Returned values and post-call family state are bit-identical
  // either way — dispatch order changes wall-clock, never outcomes.
  enum class DispatchOrder { kCostOrdered, kIndexOrdered };
  DispatchOrder dispatch_order = DispatchOrder::kCostOrdered;
  ForestPolytopeOptions polytope;
};

struct ExtensionValue {
  double value = 0.0;        // f_Δ(G)
  int components_fast = 0;   // components certified by repair
  int components_lp = 0;     // components that required the LP
  int cut_rounds = 0;        // total cutting-plane rounds
  int cuts_added = 0;
  long long simplex_iterations = 0;
};

// Computes f_Δ(G). Requires delta >= 1 (the Algorithm 1 grid is [1, n]).
// Fails with ResourceExhausted if the LP hits its round/iteration caps.
Result<ExtensionValue> EvalLipschitzExtension(
    const Graph& g, double delta, const ExtensionOptions& options = {});

// Convenience: value-only accessor that CHECK-fails on LP resource
// exhaustion. Suitable for tests and experiments with sane caps.
double LipschitzExtensionValue(const Graph& g, double delta,
                               const ExtensionOptions& options = {});

}  // namespace nodedp

#endif  // NODEDP_CORE_LIPSCHITZ_EXTENSION_H_

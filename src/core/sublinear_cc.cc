#include "core/sublinear_cc.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "dp/laplace.h"
#include "util/check.h"

namespace nodedp {

namespace {

// Size of v's component, or -1 if it exceeds `cutoff` vertices. Also adds
// the number of visited vertices to *work.
int TruncatedComponentSize(const Graph& g, int v, int cutoff, int* work) {
  // The visited bitmap is grown once per thread and then kept all-false
  // between calls by clearing only the entries a sample touched: per-sample
  // cost stays O(cutoff) no matter how large the graph is, which is the
  // whole point of the sublinear estimator.
  static thread_local std::vector<bool> visited;
  if (static_cast<int>(visited.size()) < g.NumVertices()) {
    visited.resize(g.NumVertices(), false);
  }
  std::vector<int> touched = {v};
  visited[v] = true;
  std::queue<int> queue;
  queue.push(v);
  int count = 1;
  bool truncated = false;
  while (!queue.empty() && !truncated) {
    const int u = queue.front();
    queue.pop();
    ++*work;
    for (int w : g.Neighbors(u)) {
      if (visited[w]) continue;
      visited[w] = true;
      touched.push_back(w);
      if (++count > cutoff) {
        truncated = true;
        break;
      }
      queue.push(w);
    }
  }
  for (int w : touched) visited[w] = false;
  return truncated ? -1 : count;
}

}  // namespace

SublinearCcEstimate SublinearConnectedComponents(
    const Graph& g, Rng& rng, const SublinearCcOptions& options) {
  NODEDP_CHECK_GE(options.num_samples, 1);
  NODEDP_CHECK_GE(options.bfs_cutoff, 1);
  SublinearCcEstimate result;
  const int n = g.NumVertices();
  if (n == 0) return result;
  double total = 0.0;
  for (int s = 0; s < options.num_samples; ++s) {
    const int v = static_cast<int>(rng.NextUint64(n));
    const int size = TruncatedComponentSize(g, v, options.bfs_cutoff,
                                            &result.vertices_visited);
    if (size > 0) total += 1.0 / size;
  }
  result.estimate = total * n / options.num_samples;
  return result;
}

namespace {

// Exact F_T: the number of connected components of size at most `cutoff`,
// by one untruncated BFS sweep — O(n + m), no sampling error.
double ExactTruncatedComponentCount(const Graph& g, int cutoff,
                                    std::int64_t* work) {
  const int n = g.NumVertices();
  std::vector<bool> visited(n, false);
  std::vector<int> queue;
  double count = 0.0;
  for (int root = 0; root < n; ++root) {
    if (visited[root]) continue;
    queue.clear();
    queue.push_back(root);
    visited[root] = true;
    std::size_t head = 0;
    while (head < queue.size()) {
      const int u = queue[head++];
      ++*work;
      for (int w : g.Neighbors(u)) {
        if (visited[w]) continue;
        visited[w] = true;
        queue.push_back(w);
      }
    }
    if (static_cast<int>(queue.size()) <= cutoff) count += 1.0;
  }
  return count;
}

// Draws `count` distinct vertices of [0, n) uniformly. Only called with
// count < n/2, so rejection sampling terminates quickly (expected < 2
// draws per sample).
std::vector<int> SampleDistinctVertices(int n, int count, Rng& rng) {
  std::unordered_set<int> chosen;
  chosen.reserve(count * 2);
  std::vector<int> samples;
  samples.reserve(count);
  while (static_cast<int>(samples.size()) < count) {
    const int v = static_cast<int>(rng.NextUint64(n));
    if (chosen.insert(v).second) samples.push_back(v);
  }
  return samples;
}

}  // namespace

Result<SublinearCcRelease> PrivateSublinearCc(
    const Graph& g, double epsilon, Rng& rng,
    const PrivateSublinearCcOptions& options) {
  if (!(epsilon > 0)) {
    return Status::InvalidArgument("PrivateSublinearCc: epsilon must be > 0");
  }
  if (options.bfs_cutoff < 1) {
    return Status::InvalidArgument(
        "PrivateSublinearCc: bfs_cutoff must be >= 1");
  }
  if (options.num_samples < 0) {
    return Status::InvalidArgument(
        "PrivateSublinearCc: num_samples must be >= 0 (0 = auto)");
  }
  SublinearCcRelease release;
  release.bfs_cutoff = options.bfs_cutoff;
  const int n = g.NumVertices();
  if (n == 0) {
    release.delta_max = 0;
    release.num_samples = 0;
    release.exact_ft = true;
    release.sensitivity = 1.0;
    release.laplace_scale = 1.0 / epsilon;
    release.estimate = LaplaceMechanism(0.0, 1.0, epsilon, rng);
    return release;
  }
  // Effective public degree promise; no promise means D = n (any degree is
  // possible), which keeps the release unconditionally private at the cost
  // of much larger noise — same semantics as the exact tier's delta_max.
  const int degree_cap =
      options.delta_max > 0 ? std::min(options.delta_max, n) : n;
  release.delta_max = degree_cap;

  // Auto sample count: s = T * (D + 2) equates the Laplace scale
  // (1 + (n/s)(D+2)) / eps with the truncation bias bound n/T (up to the
  // +1), so neither error source dominates pointlessly.
  std::int64_t samples = options.num_samples > 0
                             ? options.num_samples
                             : static_cast<std::int64_t>(options.bfs_cutoff) *
                                   (static_cast<std::int64_t>(degree_cap) + 2);
  samples = std::max<std::int64_t>(1, std::min<std::int64_t>(samples, n));

  // Past half the vertex set, sampling without replacement saves nothing:
  // compute F_T exactly (s = n in the sensitivity bound, zero sampling
  // error).
  const bool exact = samples >= (n + 1) / 2;
  if (exact) samples = n;
  release.num_samples = static_cast<int>(samples);
  release.exact_ft = exact;

  if (exact) {
    release.raw_estimate = ExactTruncatedComponentCount(
        g, options.bfs_cutoff, &release.vertices_visited);
    release.sampling_error_bound = 0.0;
  } else {
    const std::vector<int> sampled =
        SampleDistinctVertices(n, static_cast<int>(samples), rng);
    double total = 0.0;
    for (int v : sampled) {
      int work = 0;
      const int size =
          TruncatedComponentSize(g, v, options.bfs_cutoff, &work);
      release.vertices_visited += work;
      if (size > 0) total += 1.0 / size;
    }
    release.raw_estimate = total * n / static_cast<double>(samples);
    release.sampling_error_bound =
        static_cast<double>(n) / std::sqrt(static_cast<double>(samples));
  }

  release.sensitivity =
      1.0 + static_cast<double>(n) / static_cast<double>(samples) *
                (static_cast<double>(degree_cap) + 2.0);
  release.laplace_scale = release.sensitivity / epsilon;
  release.truncation_bias_bound =
      static_cast<double>(n) / static_cast<double>(options.bfs_cutoff);
  release.estimate =
      LaplaceMechanism(release.raw_estimate, release.sensitivity, epsilon, rng);
  return release;
}

}  // namespace nodedp

#include "core/sublinear_cc.h"

#include <queue>
#include <vector>

#include "util/check.h"

namespace nodedp {

namespace {

// Size of v's component, or -1 if it exceeds `cutoff` vertices. Also adds
// the number of visited vertices to *work.
int TruncatedComponentSize(const Graph& g, int v, int cutoff, int* work) {
  std::vector<int> visited_list = {v};
  // Local visited set; a bitmap over n would defeat the sublinear point,
  // but clearing only touched entries keeps per-sample cost O(cutoff).
  static thread_local std::vector<bool> visited;
  visited.assign(g.NumVertices(), false);  // simple & safe; see note above
  visited[v] = true;
  std::queue<int> queue;
  queue.push(v);
  int count = 1;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    ++*work;
    for (int w : g.Neighbors(u)) {
      if (visited[w]) continue;
      visited[w] = true;
      if (++count > cutoff) return -1;
      queue.push(w);
    }
  }
  return count;
}

}  // namespace

SublinearCcEstimate SublinearConnectedComponents(
    const Graph& g, Rng& rng, const SublinearCcOptions& options) {
  NODEDP_CHECK_GE(options.num_samples, 1);
  NODEDP_CHECK_GE(options.bfs_cutoff, 1);
  SublinearCcEstimate result;
  const int n = g.NumVertices();
  if (n == 0) return result;
  double total = 0.0;
  for (int s = 0; s < options.num_samples; ++s) {
    const int v = static_cast<int>(rng.NextUint64(n));
    const int size = TruncatedComponentSize(g, v, options.bfs_cutoff,
                                            &result.vertices_visited);
    if (size > 0) total += 1.0 / size;
  }
  result.estimate = total * n / options.num_samples;
  return result;
}

}  // namespace nodedp

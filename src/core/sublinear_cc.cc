#include "core/sublinear_cc.h"

#include <queue>
#include <vector>

#include "util/check.h"

namespace nodedp {

namespace {

// Size of v's component, or -1 if it exceeds `cutoff` vertices. Also adds
// the number of visited vertices to *work.
int TruncatedComponentSize(const Graph& g, int v, int cutoff, int* work) {
  // The visited bitmap is grown once per thread and then kept all-false
  // between calls by clearing only the entries a sample touched: per-sample
  // cost stays O(cutoff) no matter how large the graph is, which is the
  // whole point of the sublinear estimator.
  static thread_local std::vector<bool> visited;
  if (static_cast<int>(visited.size()) < g.NumVertices()) {
    visited.resize(g.NumVertices(), false);
  }
  std::vector<int> touched = {v};
  visited[v] = true;
  std::queue<int> queue;
  queue.push(v);
  int count = 1;
  bool truncated = false;
  while (!queue.empty() && !truncated) {
    const int u = queue.front();
    queue.pop();
    ++*work;
    for (int w : g.Neighbors(u)) {
      if (visited[w]) continue;
      visited[w] = true;
      touched.push_back(w);
      if (++count > cutoff) {
        truncated = true;
        break;
      }
      queue.push(w);
    }
  }
  for (int w : touched) visited[w] = false;
  return truncated ? -1 : count;
}

}  // namespace

SublinearCcEstimate SublinearConnectedComponents(
    const Graph& g, Rng& rng, const SublinearCcOptions& options) {
  NODEDP_CHECK_GE(options.num_samples, 1);
  NODEDP_CHECK_GE(options.bfs_cutoff, 1);
  SublinearCcEstimate result;
  const int n = g.NumVertices();
  if (n == 0) return result;
  double total = 0.0;
  for (int s = 0; s < options.num_samples; ++s) {
    const int v = static_cast<int>(rng.NextUint64(n));
    const int size = TruncatedComponentSize(g, v, options.bfs_cutoff,
                                            &result.vertices_visited);
    if (size > 0) total += 1.0 / size;
  }
  result.estimate = total * n / options.num_samples;
  return result;
}

}  // namespace nodedp

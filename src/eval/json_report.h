// Machine-readable perf telemetry: a tiny JSON document builder for
// BENCH_*.json files, the format CI uploads as an artifact on every push so
// the perf trajectory of the hot paths is continuously measured.
//
// Schema (one document per bench suite):
//
//   {
//     "schema": "nodedp-bench-v1",
//     "suite": "perf_substrates",
//     "git_rev": "<NODEDP_GIT_REV | GITHUB_SHA | unknown>",
//     "threads": 4,
//     "context": { "<key>": "<value>", ... },
//     "benchmarks": [
//       { "name": "BM_CuttingPlaneSolve/128",
//         "real_ns": 12345.6, "cpu_ns": 12001.2, "iterations": 100,
//         "counters": { "<key>": 1.0, ... } },
//       ...
//     ]
//   }
//
// The writer is deliberately minimal — flat records, string keys, double
// values — because the consumers are a CI artifact and a comparison script,
// not a general JSON pipeline. Non-finite doubles serialize as null.

#ifndef NODEDP_EVAL_JSON_REPORT_H_
#define NODEDP_EVAL_JSON_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace nodedp {

// One benchmark measurement. `counters` carries bench-specific extras
// (speedup ratios, problem sizes, cut counts, ...).
struct BenchRecord {
  std::string name;
  double real_ns = 0.0;
  double cpu_ns = 0.0;
  long long iterations = 0;
  std::vector<std::pair<std::string, double>> counters;
};

class JsonReport {
 public:
  // `suite` names the producing bench binary, e.g. "perf_substrates";
  // threads and git_rev are captured at construction (current pool width
  // and GitRevisionFromEnv()).
  explicit JsonReport(std::string suite);

  // Free-form context shown under "context" (compiler, build type, ...).
  void SetContext(const std::string& key, const std::string& value);

  void Add(BenchRecord record);

  int num_records() const { return static_cast<int>(records_.size()); }

  // Serializes the whole document (deterministic field order).
  std::string ToJson() const;

  // Writes ToJson() to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  std::string suite_;
  std::string git_rev_;
  int threads_ = 1;
  std::vector<std::pair<std::string, std::string>> context_;
  std::vector<BenchRecord> records_;
};

// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

// The revision stamped into reports: $NODEDP_GIT_REV, else $GITHUB_SHA,
// else "unknown". Environment-sourced so the library never shells out.
std::string GitRevisionFromEnv();

// Where a suite's report goes: $NODEDP_BENCH_JSON if set, else
// "BENCH_<suite>.json" in the working directory.
std::string BenchJsonPath(const std::string& suite);

// Process memory telemetry from /proc/self/status, for the scale benches'
// resident-set counters. Both return 0 when the proc file is unavailable
// (non-Linux) — callers emit the counter only when nonzero.
//
// PeakRssBytes (VmHWM) is the high-water mark and NEVER decreases within a
// process: measuring several workloads' peaks in one process reports the
// max of everything so far, not each workload's own. Benches that compare
// peaks (mmap vs heap load) must fork one child process per measurement.
std::size_t PeakRssBytes();
// Current resident set (VmRSS).
std::size_t CurrentRssBytes();

}  // namespace nodedp

#endif  // NODEDP_EVAL_JSON_REPORT_H_

// Fixed-width console tables for the experiment binaries: the experiment
// benches and examples print their paper-style series (one row per sweep
// point) through this printer, so that output is uniformly formatted and
// machine-greppable. (The one exception is bench_perf_substrates, which
// reports through Google Benchmark instead.)

#ifndef NODEDP_EVAL_TABLE_H_
#define NODEDP_EVAL_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace nodedp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Cell helpers; AddRow finalizes the current row.
  Table& Cell(const std::string& value);
  Table& Cell(long long value);
  Table& Cell(int value);
  Table& Cell(double value, int digits = 3);
  void EndRow();

  void Print(std::ostream& out) const;

  // Writes the table as CSV (headers + rows).
  void PrintCsv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> current_;
};

}  // namespace nodedp

#endif  // NODEDP_EVAL_TABLE_H_

// Error statistics over repeated trials for the experiment harness.

#ifndef NODEDP_EVAL_STATS_H_
#define NODEDP_EVAL_STATS_H_

#include <vector>

namespace nodedp {

struct ErrorSummary {
  int count = 0;
  double mean_abs = 0.0;
  double median_abs = 0.0;
  double p90_abs = 0.0;
  double max_abs = 0.0;
  double mean = 0.0;    // signed mean (bias)
  double stddev = 0.0;  // of signed errors
};

// Summarizes signed errors (estimate - truth).
ErrorSummary SummarizeErrors(std::vector<double> errors);

// Empirical quantile (q in [0,1]) of a sample by nearest-rank.
double Quantile(std::vector<double> values, double q);

}  // namespace nodedp

#endif  // NODEDP_EVAL_STATS_H_

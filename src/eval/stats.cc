#include "eval/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nodedp {

double Quantile(std::vector<double> values, double q) {
  NODEDP_CHECK(!values.empty());
  NODEDP_CHECK_GE(q, 0.0);
  NODEDP_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double raw_rank = std::ceil(q * static_cast<double>(values.size()));
  const auto rank = static_cast<size_t>(std::clamp<double>(
      raw_rank - 1.0, 0.0, static_cast<double>(values.size() - 1)));
  return values[rank];
}

ErrorSummary SummarizeErrors(std::vector<double> errors) {
  ErrorSummary summary;
  summary.count = static_cast<int>(errors.size());
  if (errors.empty()) return summary;
  double sum = 0.0;
  double sum_sq = 0.0;
  std::vector<double> abs_errors;
  abs_errors.reserve(errors.size());
  for (double e : errors) {
    sum += e;
    sum_sq += e * e;
    abs_errors.push_back(std::fabs(e));
  }
  summary.mean = sum / summary.count;
  const double variance =
      std::max(0.0, sum_sq / summary.count - summary.mean * summary.mean);
  summary.stddev = std::sqrt(variance);
  double abs_sum = 0.0;
  for (double a : abs_errors) abs_sum += a;
  summary.mean_abs = abs_sum / summary.count;
  summary.median_abs = Quantile(abs_errors, 0.5);
  summary.p90_abs = Quantile(abs_errors, 0.9);
  summary.max_abs = *std::max_element(abs_errors.begin(), abs_errors.end());
  return summary;
}

}  // namespace nodedp

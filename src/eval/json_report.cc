#include "eval/json_report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/parallel.h"

namespace nodedp {

namespace {

// %.17g round-trips doubles exactly; non-finite values have no JSON
// representation and become null.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string GitRevisionFromEnv() {
  for (const char* var : {"NODEDP_GIT_REV", "GITHUB_SHA"}) {
    if (const char* value = std::getenv(var)) {
      if (value[0] != '\0') return value;
    }
  }
  return "unknown";
}

std::string BenchJsonPath(const std::string& suite) {
  if (const char* path = std::getenv("NODEDP_BENCH_JSON")) {
    if (path[0] != '\0') return path;
  }
  return "BENCH_" + suite + ".json";
}

namespace {

// Reads a "Vm...: <kB> kB" line from /proc/self/status; 0 if absent.
std::size_t ProcStatusBytes(const char* field) {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::string line;
  const std::string prefix = std::string(field) + ":";
  while (std::getline(status, line)) {
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    long long kb = 0;
    if (std::sscanf(line.c_str() + prefix.size(), "%lld", &kb) == 1 &&
        kb >= 0) {
      return static_cast<std::size_t>(kb) * 1024;
    }
    return 0;
  }
  return 0;
}

}  // namespace

std::size_t PeakRssBytes() { return ProcStatusBytes("VmHWM"); }

std::size_t CurrentRssBytes() { return ProcStatusBytes("VmRSS"); }

JsonReport::JsonReport(std::string suite)
    : suite_(std::move(suite)),
      git_rev_(GitRevisionFromEnv()),
      threads_(ParallelThreadCount()) {}

void JsonReport::SetContext(const std::string& key, const std::string& value) {
  for (auto& entry : context_) {
    if (entry.first == key) {
      entry.second = value;
      return;
    }
  }
  context_.emplace_back(key, value);
}

void JsonReport::Add(BenchRecord record) {
  records_.push_back(std::move(record));
}

std::string JsonReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"nodedp-bench-v1\",\n";
  out << "  \"suite\": \"" << JsonEscape(suite_) << "\",\n";
  out << "  \"git_rev\": \"" << JsonEscape(git_rev_) << "\",\n";
  out << "  \"threads\": " << threads_ << ",\n";
  out << "  \"context\": {";
  for (std::size_t i = 0; i < context_.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << JsonEscape(context_[i].first) << "\": \""
        << JsonEscape(context_[i].second) << "\"";
  }
  out << (context_.empty() ? "" : "\n  ") << "},\n";
  out << "  \"benchmarks\": [";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& record = records_[i];
    if (i > 0) out << ",";
    out << "\n    { \"name\": \"" << JsonEscape(record.name) << "\","
        << " \"real_ns\": " << JsonNumber(record.real_ns) << ","
        << " \"cpu_ns\": " << JsonNumber(record.cpu_ns) << ","
        << " \"iterations\": " << record.iterations;
    if (!record.counters.empty()) {
      out << ", \"counters\": {";
      for (std::size_t k = 0; k < record.counters.size(); ++k) {
        if (k > 0) out << ", ";
        out << "\"" << JsonEscape(record.counters[k].first)
            << "\": " << JsonNumber(record.counters[k].second);
      }
      out << "}";
    }
    out << " }";
  }
  out << (records_.empty() ? "" : "\n  ") << "]\n";
  out << "}\n";
  return out.str();
}

Status JsonReport::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file << ToJson();
  file.flush();
  if (!file) return Status::IoError("short write to " + path);
  return Status::OK();
}

}  // namespace nodedp

#include "eval/table.h"

#include <algorithm>
#include <ostream>

#include "util/check.h"
#include "util/stringutil.h"

namespace nodedp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NODEDP_CHECK(!headers_.empty());
}

Table& Table::Cell(const std::string& value) {
  NODEDP_CHECK_LT(current_.size(), headers_.size());
  current_.push_back(value);
  return *this;
}

Table& Table::Cell(long long value) { return Cell(std::to_string(value)); }
Table& Table::Cell(int value) { return Cell(std::to_string(value)); }

Table& Table::Cell(double value, int digits) {
  return Cell(FormatDouble(value, digits));
}

void Table::EndRow() {
  NODEDP_CHECK_EQ(current_.size(), headers_.size());
  rows_.push_back(std::move(current_));
  current_.clear();
}

void Table::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out.width(static_cast<std::streamsize>(widths[c]));
      out << row[c];
    }
    out << '\n';
  };
  out.setf(std::ios::right);
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& out) const {
  auto csv_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << row[c];
    }
    out << '\n';
  };
  csv_row(headers_);
  for (const auto& row : rows_) csv_row(row);
}

}  // namespace nodedp

#include "util/parallel.h"

#include <cstdlib>
#include <limits>

namespace nodedp {

namespace {

// Set while this thread is executing loop items (worker or participating
// caller). Nested parallel constructs on such a thread run inline.
thread_local bool tls_running_items = false;

// Innermost ScopedThreadPool override on this thread.
thread_local ThreadPool* tls_pool_override = nullptr;

}  // namespace

// One indexed loop in flight. Items are claimed by `next`; `completed`
// counts items that finished executing (every item runs exactly once, even
// after another item threw — exceptions are rare abort paths here, and never
// cancelling keeps completion tracking trivial).
struct ThreadPool::Job {
  std::int64_t n = 0;
  const std::function<void(std::int64_t)>* fn = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> completed{0};
  // Workers currently inside RunItems for this job; guarded by the pool's
  // mu_. The caller retires the job only once this drops to zero, so a
  // worker can never touch a Job that has left the caller's stack.
  int runners = 0;
  std::mutex error_mu;
  std::int64_t first_error_index = std::numeric_limits<std::int64_t>::max();
  std::exception_ptr error;
};

int ThreadCountFromEnv() {
  if (const char* env = std::getenv("NODEDP_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0 && parsed <= 4096) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  // Leaked deliberately: workers must outlive every static object that might
  // run a parallel loop during program teardown. The pointer stays reachable
  // from static storage, so leak checkers do not flag it.
  static ThreadPool* const global = new ThreadPool(ThreadCountFromEnv());
  return *global;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Sleep until shutdown or a job with unclaimed items; re-checking
    // `next < n` here (not just job_ != nullptr) keeps drained workers from
    // spinning on a job whose last items are still executing elsewhere.
    wake_.wait(lock, [this] {
      return stopping_ ||
             (job_ != nullptr && job_->next.load(std::memory_order_relaxed) <
                                     job_->n);
    });
    if (stopping_) return;
    Job& job = *job_;
    ++job.runners;
    lock.unlock();
    RunItems(job);
    lock.lock();
    --job.runners;
    if (job.runners == 0) wake_.notify_all();
  }
}

void ThreadPool::RunItems(Job& job) {
  const bool was_running = tls_running_items;
  tls_running_items = true;
  for (;;) {
    const std::int64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (i < job.first_error_index) {
        job.first_error_index = i;
        job.error = std::current_exception();
      }
    }
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      // Last item: wake the caller blocked in For(). Locking mu_ orders the
      // notification after the caller's predicate check.
      std::lock_guard<std::mutex> lock(mu_);
      wake_.notify_all();
    }
  }
  tls_running_items = was_running;
}

namespace {

// Sequential execution with the nested-call guard set, so fn's own parallel
// loops also stay inline. Matches the pool path's exception contract: every
// item runs even after one throws, and the lowest-index exception is
// rethrown at the end — so side effects are identical at any width.
void RunInline(std::int64_t n, const std::function<void(std::int64_t)>& fn) {
  const bool was_running = tls_running_items;
  tls_running_items = true;
  std::exception_ptr error;
  for (std::int64_t i = 0; i < n; ++i) {
    try {
      fn(i);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  tls_running_items = was_running;
  if (error) std::rethrow_exception(error);
}

}  // namespace

void ThreadPool::For(std::int64_t n,
                     const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  if (num_threads_ == 1 || n == 1 || tls_running_items) {
    // Width-1 pool, trivial loop, or nested call from inside an item.
    RunInline(n, fn);
    return;
  }

  Job job;
  job.n = n;
  job.fn = &fn;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (job_ != nullptr) {
      // Another thread is already driving this pool. Run inline rather than
      // queueing: every loop in this library is correct at any width, and a
      // second caller is rare enough that simplicity wins over sharing.
      lock.unlock();
      RunInline(n, fn);
      return;
    }
    job_ = &job;
  }
  wake_.notify_all();
  RunItems(job);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(mu_);
    wake_.wait(lock, [&job] {
      return job.completed.load(std::memory_order_acquire) == job.n &&
             job.runners == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

ScopedThreadPool::ScopedThreadPool(ThreadPool* pool)
    : previous_(tls_pool_override) {
  tls_pool_override = pool;
}

ScopedThreadPool::~ScopedThreadPool() { tls_pool_override = previous_; }

ThreadPool& CurrentThreadPool() {
  return tls_pool_override != nullptr ? *tls_pool_override
                                      : ThreadPool::Global();
}

int ParallelThreadCount() { return CurrentThreadPool().num_threads(); }

}  // namespace nodedp

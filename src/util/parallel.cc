#include "util/parallel.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/metrics.h"
#include "util/check.h"

namespace nodedp {

namespace {

// Set while this thread is executing loop items (worker or participating
// caller). Nested parallel constructs on such a thread run inline.
thread_local bool tls_running_items = false;

// Innermost ScopedThreadPool override on this thread.
thread_local ThreadPool* tls_pool_override = nullptr;

// Wall-ns between a loop being posted and each participating thread's first
// claim (docs/OBSERVABILITY.md). One observation per thread per loop — the
// caller contributes the ~0 floor, workers contribute their wake-up
// latency — so the hot claim loop itself stays clock-free.
Histogram* QueueWaitNsHistogram() {
  static Histogram* h = MetricsRegistry::Default().GetHistogram(
      "nodedp_pool_queue_wait_ns",
      "Wall-ns from loop post to each participating thread's first claim",
      MetricsRegistry::LatencyBucketsNs());
  return h;
}

}  // namespace

// One indexed loop in flight. Items are claimed by `next`; `completed`
// counts items that finished executing (every item runs exactly once, even
// after another item threw — exceptions are rare abort paths here, and never
// cancelling keeps completion tracking trivial).
struct ThreadPool::Job {
  std::int64_t n = 0;
  const std::function<void(std::int64_t)>* fn = nullptr;
  // Optional claim permutation: position k in the claim sequence runs item
  // (*order)[k]. Null means identity (claim order == item order).
  const std::vector<std::int64_t>* order = nullptr;
  // When the loop was posted; each thread's first claim observes the gap
  // into nodedp_pool_queue_wait_ns.
  std::chrono::steady_clock::time_point posted;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> completed{0};
  // Workers currently inside RunItems for this job; guarded by the pool's
  // mu_. The caller retires the job only once this drops to zero, so a
  // worker can never touch a Job that has left the caller's stack.
  int runners = 0;
  std::mutex error_mu;
  std::int64_t first_error_index = std::numeric_limits<std::int64_t>::max();
  std::exception_ptr error;
};

int ThreadCountFromEnv(const char* value, std::string* warning) {
  if (warning != nullptr) warning->clear();
  const unsigned hardware = std::thread::hardware_concurrency();
  const int fallback = hardware > 0 ? static_cast<int>(hardware) : 1;
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end != value && *end == '\0' && parsed > 0 && parsed <= 4096) {
    return static_cast<int>(parsed);
  }
  if (warning != nullptr) {
    *warning = std::string("nodedp: ignoring invalid NODEDP_THREADS=\"") +
               value + "\" (want an integer in [1, 4096]); using " +
               std::to_string(fallback) + " thread(s)";
  }
  return fallback;
}

int ThreadCountFromEnv() {
  std::string warning;
  const int count =
      ThreadCountFromEnv(std::getenv("NODEDP_THREADS"), &warning);
  if (!warning.empty()) {
    // Once per process, not per pool: the global pool reads this lazily,
    // but tests and benches may probe it repeatedly.
    static std::once_flag warned;
    std::call_once(warned, [&warning] {
      std::fprintf(stderr, "%s\n", warning.c_str());
    });
  }
  return count;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  // Leaked deliberately: workers must outlive every static object that might
  // run a parallel loop during program teardown. The pointer stays reachable
  // from static storage, so leak checkers do not flag it.
  static ThreadPool* const global = new ThreadPool(ThreadCountFromEnv());
  return *global;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Sleep until shutdown or a job with unclaimed items; re-checking
    // `next < n` here (not just job_ != nullptr) keeps drained workers from
    // spinning on a job whose last items are still executing elsewhere.
    wake_.wait(lock, [this] {
      return stopping_ ||
             (job_ != nullptr && job_->next.load(std::memory_order_relaxed) <
                                     job_->n);
    });
    if (stopping_) return;
    Job& job = *job_;
    ++job.runners;
    lock.unlock();
    RunItems(job);
    lock.lock();
    --job.runners;
    if (job.runners == 0) wake_.notify_all();
  }
}

void ThreadPool::RunItems(Job& job) {
  const bool was_running = tls_running_items;
  tls_running_items = true;
  bool observed_wait = false;
  for (;;) {
    const std::int64_t claim =
        job.next.fetch_add(1, std::memory_order_relaxed);
    if (claim >= job.n) break;
    if (!observed_wait) {
      // First claim on this thread: how long the posted loop waited for us.
      observed_wait = true;
      if (MetricsEnabled()) {
        QueueWaitNsHistogram()->Observe(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - job.posted)
                .count()));
      }
    }
    const std::int64_t i =
        job.order != nullptr ? (*job.order)[static_cast<std::size_t>(claim)]
                             : claim;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (i < job.first_error_index) {
        job.first_error_index = i;
        job.error = std::current_exception();
      }
    }
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      // Last item: wake the caller blocked in For(). Locking mu_ orders the
      // notification after the caller's predicate check.
      std::lock_guard<std::mutex> lock(mu_);
      wake_.notify_all();
    }
  }
  tls_running_items = was_running;
}

namespace {

// Sequential execution with the nested-call guard set, so fn's own parallel
// loops also stay inline. Matches the pool path's exception contract: every
// item runs even after one throws, and the lowest-*index* exception is
// rethrown at the end (not the first one encountered — under a claim
// permutation those differ) — so side effects are identical at any width
// and any dispatch order.
void RunInline(std::int64_t n, const std::function<void(std::int64_t)>& fn,
               const std::vector<std::int64_t>* order) {
  const bool was_running = tls_running_items;
  tls_running_items = true;
  std::exception_ptr error;
  std::int64_t error_index = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t claim = 0; claim < n; ++claim) {
    const std::int64_t i =
        order != nullptr ? (*order)[static_cast<std::size_t>(claim)] : claim;
    try {
      fn(i);
    } catch (...) {
      if (i < error_index) {
        error_index = i;
        error = std::current_exception();
      }
    }
  }
  tls_running_items = was_running;
  if (error) std::rethrow_exception(error);
}

}  // namespace

void ThreadPool::For(std::int64_t n,
                     const std::function<void(std::int64_t)>& fn) {
  ForImpl(n, fn, nullptr);
}

void ThreadPool::For(std::int64_t n,
                     const std::function<void(std::int64_t)>& fn,
                     const std::vector<std::int64_t>& order) {
  NODEDP_CHECK_EQ(static_cast<std::int64_t>(order.size()), n);
#ifndef NDEBUG
  // The permutation contract: every index exactly once. O(n), debug only.
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (std::int64_t i : order) {
    NODEDP_CHECK(i >= 0 && i < n && !seen[static_cast<std::size_t>(i)]);
    seen[static_cast<std::size_t>(i)] = 1;
  }
#endif
  ForImpl(n, fn, &order);
}

void ThreadPool::ForImpl(std::int64_t n,
                         const std::function<void(std::int64_t)>& fn,
                         const std::vector<std::int64_t>* order) {
  if (n <= 0) return;
  if (num_threads_ == 1 || n == 1 || tls_running_items) {
    // Width-1 pool, trivial loop, or nested call from inside an item.
    RunInline(n, fn, order);
    return;
  }

  Job job;
  job.n = n;
  job.fn = &fn;
  job.order = order;
  job.posted = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (job_ != nullptr) {
      // Another thread is already driving this pool. Run inline rather than
      // queueing: every loop in this library is correct at any width, and a
      // second caller is rare enough that simplicity wins over sharing.
      lock.unlock();
      RunInline(n, fn, order);
      return;
    }
    job_ = &job;
  }
  wake_.notify_all();
  RunItems(job);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(mu_);
    wake_.wait(lock, [&job] {
      return job.completed.load(std::memory_order_acquire) == job.n &&
             job.runners == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

ScopedThreadPool::ScopedThreadPool(ThreadPool* pool)
    : previous_(tls_pool_override) {
  tls_pool_override = pool;
}

ScopedThreadPool::~ScopedThreadPool() { tls_pool_override = previous_; }

ThreadPool& CurrentThreadPool() {
  return tls_pool_override != nullptr ? *tls_pool_override
                                      : ThreadPool::Global();
}

int ParallelThreadCount() { return CurrentThreadPool().num_threads(); }

}  // namespace nodedp

// Small string helpers shared by graph I/O and the experiment harness.

#ifndef NODEDP_UTIL_STRINGUTIL_H_
#define NODEDP_UTIL_STRINGUTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace nodedp {

// Splits `text` on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           std::string_view delims);

// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace nodedp

#endif  // NODEDP_UTIL_STRINGUTIL_H_

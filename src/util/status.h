// Status / Result<T>: recoverable-error handling in the RocksDB/Arrow idiom.
// Functions that can fail for reasons outside the programmer's control
// (I/O, parsing, resource limits) return Status or Result<T> instead of
// throwing. Pure computations use CHECK for precondition violations.

#ifndef NODEDP_UTIL_STATUS_H_
#define NODEDP_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace nodedp {

// Error categories. Kept deliberately small; the message carries detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kResourceExhausted,  // iteration / work limits hit
  kInternal,
};

// A cheap value type describing success or a categorized error.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "UNKNOWN";
    switch (code_) {
      case StatusCode::kOk:
        name = "OK";
        break;
      case StatusCode::kInvalidArgument:
        name = "InvalidArgument";
        break;
      case StatusCode::kNotFound:
        name = "NotFound";
        break;
      case StatusCode::kIoError:
        name = "IoError";
        break;
      case StatusCode::kResourceExhausted:
        name = "ResourceExhausted";
        break;
      case StatusCode::kInternal:
        name = "Internal";
        break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

// Result<T>: either a T or a non-OK Status. Access to the value CHECKs that
// the result is OK, so misuse fails loudly rather than reading garbage.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    NODEDP_CHECK_MSG(!std::get<Status>(payload_).ok(),
                     "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const T& value() const& {
    NODEDP_CHECK_MSG(ok(), status().ToString());
    return std::get<T>(payload_);
  }
  T& value() & {
    NODEDP_CHECK_MSG(ok(), status().ToString());
    return std::get<T>(payload_);
  }
  T&& value() && {
    NODEDP_CHECK_MSG(ok(), status().ToString());
    return std::get<T>(std::move(payload_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace nodedp

#endif  // NODEDP_UTIL_STATUS_H_

// RAII read-only memory mapping — the zero-copy backing behind
// Graph::FromMmap (NDPG v2 files are laid out as the CSR arrays, so a
// mapped file *is* the graph and the kernel pages in only what queries
// touch).
//
// A region owns its mapping: munmap on destruction, move-only so the
// mapping can be handed into a shared_ptr and outlive the opener. The
// madvise methods are access-pattern hints, best-effort by design (a
// kernel that ignores them changes performance, never correctness).

#ifndef NODEDP_UTIL_MMAP_FILE_H_
#define NODEDP_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace nodedp {

class MmapRegion {
 public:
  // Maps `path` read-only in one mmap call: O(1) in the file size — no
  // page is touched until something reads through data(). Fails with
  // IoError on open/stat/map failure. A zero-length file maps to an empty
  // region (data() == nullptr, size() == 0).
  static Result<MmapRegion> OpenReadOnly(const std::string& path);

  MmapRegion() = default;
  ~MmapRegion();

  MmapRegion(MmapRegion&& other) noexcept;
  MmapRegion& operator=(MmapRegion&& other) noexcept;
  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;

  const unsigned char* data() const {
    return static_cast<const unsigned char*>(data_);
  }
  std::size_t size() const { return size_; }

  // Access-pattern hints (madvise). Random is the serving default: point
  // queries walk scattered CSR slices, so read-ahead would drag in pages
  // nothing needs. Sequential suits one-pass verification/conversion;
  // WillNeed asks the kernel to start paging the whole region in.
  void AdviseRandom() const;
  void AdviseSequential() const;
  void AdviseWillNeed() const;

 private:
  MmapRegion(void* data, std::size_t size) : data_(data), size_(size) {}

  void Reset();

  void* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace nodedp

#endif  // NODEDP_UTIL_MMAP_FILE_H_

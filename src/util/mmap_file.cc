#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace nodedp {

namespace {

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " failed for " + path + ": " +
         std::strerror(errno);
}

}  // namespace

Result<MmapRegion> MmapRegion::OpenReadOnly(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IoError(ErrnoMessage("fstat", path));
    ::close(fd);
    return status;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // mmap rejects zero-length mappings; an empty file is a valid (empty)
    // region and the format validation downstream rejects it as truncated.
    ::close(fd);
    return MmapRegion(nullptr, 0);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is not
  // needed afterwards either way.
  ::close(fd);
  if (data == MAP_FAILED) {
    return Status::IoError(ErrnoMessage("mmap", path));
  }
  return MmapRegion(data, size);
}

MmapRegion::~MmapRegion() { Reset(); }

MmapRegion::MmapRegion(MmapRegion&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapRegion& MmapRegion::operator=(MmapRegion&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MmapRegion::Reset() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

void MmapRegion::AdviseRandom() const {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_RANDOM);
}

void MmapRegion::AdviseSequential() const {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_SEQUENTIAL);
}

void MmapRegion::AdviseWillNeed() const {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_WILLNEED);
}

}  // namespace nodedp

// Deterministic, splittable random number generation.
//
// All randomized components in this library (graph generators, DP mechanisms,
// experiment harnesses) take an explicit Rng&. There is no global RNG: every
// experiment fixes and reports its seeds, which makes runs reproducible and
// lets tests pin distributions.
//
// The generator is xoshiro256++ seeded via SplitMix64, the standard pairing
// recommended by the xoshiro authors. `Split()` derives an independently
// seeded child stream, used to give each trial / mechanism its own stream.

#ifndef NODEDP_UTIL_RANDOM_H_
#define NODEDP_UTIL_RANDOM_H_

#include <cstdint>

namespace nodedp {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  // Re-seeds the stream deterministically from `seed` via SplitMix64.
  void Seed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform in [0, bound). Uses rejection sampling to avoid modulo bias.
  // Requires bound > 0.
  uint64_t NextUint64(uint64_t bound);

  // Uniform in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform in (0, 1); never returns exactly 0, suitable for log transforms.
  double NextDoubleOpen();

  // Bernoulli with success probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Laplace(0, b): density exp(-|z|/b) / (2b). Requires b > 0.
  double NextLaplace(double b);

  // Exponential with rate lambda (mean 1/lambda). Requires lambda > 0.
  double NextExponential(double lambda);

  // Standard Gumbel (location 0, scale 1): -log(-log(U)).
  double NextGumbel();

  // Standard normal via Box-Muller (no caching; stateless across calls).
  double NextGaussian();

  // Derives an independently seeded child generator. Deterministic: the
  // sequence of children from a given parent state is reproducible.
  Rng Split();

 private:
  uint64_t state_[4];
};

}  // namespace nodedp

#endif  // NODEDP_UTIL_RANDOM_H_

// Lightweight CHECK/DCHECK macros in the style used by RocksDB/Arrow-like
// database codebases. CHECK failures indicate programmer errors (violated
// preconditions or internal invariants) and abort the process with a message;
// they are not a substitute for recoverable error handling (see status.h).

#ifndef NODEDP_UTIL_CHECK_H_
#define NODEDP_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace nodedp {
namespace internal_check {

// Marks the failure path noinline/cold (where the compiler supports it) so
// CHECK call sites stay cheap: the hot path is a single predicted branch.
#if defined(__GNUC__) || defined(__clang__)
#define NODEDP_INTERNAL_NOINLINE_COLD __attribute__((noinline, cold))
#else
#define NODEDP_INTERNAL_NOINLINE_COLD
#endif

// Aborts the process after printing `file:line: condition` and an optional
// user-supplied message.
[[noreturn]] NODEDP_INTERNAL_NOINLINE_COLD inline void CheckFail(
    const char* file, int line, const char* condition,
    const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Stream-style message collector backing NODEDP_CHECK_MSG: the macro's
// trailing arguments are chained through operator<<, so call sites write
// `NODEDP_CHECK_MSG(x, "context " << value)`. (There is deliberately no
// glog-style `CHECK(x) << ...` form; the message is an argument, not a
// stream continuation.)
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace nodedp

#define NODEDP_CHECK(condition)                                          \
  do {                                                                   \
    if (!(condition)) {                                                  \
      ::nodedp::internal_check::CheckFail(__FILE__, __LINE__,            \
                                          #condition, std::string());    \
    }                                                                    \
  } while (0)

#define NODEDP_CHECK_MSG(condition, ...)                                 \
  do {                                                                   \
    if (!(condition)) {                                                  \
      ::nodedp::internal_check::MessageBuilder nodedp_mb;                \
      nodedp_mb << __VA_ARGS__;                                          \
      ::nodedp::internal_check::CheckFail(__FILE__, __LINE__,            \
                                          #condition, nodedp_mb.str());  \
    }                                                                    \
  } while (0)

#define NODEDP_CHECK_EQ(a, b) NODEDP_CHECK_MSG((a) == (b), #a " vs " #b)
#define NODEDP_CHECK_NE(a, b) NODEDP_CHECK_MSG((a) != (b), #a " vs " #b)
#define NODEDP_CHECK_LT(a, b) NODEDP_CHECK_MSG((a) < (b), #a " vs " #b)
#define NODEDP_CHECK_LE(a, b) NODEDP_CHECK_MSG((a) <= (b), #a " vs " #b)
#define NODEDP_CHECK_GT(a, b) NODEDP_CHECK_MSG((a) > (b), #a " vs " #b)
#define NODEDP_CHECK_GE(a, b) NODEDP_CHECK_MSG((a) >= (b), #a " vs " #b)

#ifdef NDEBUG
#define NODEDP_DCHECK(condition) \
  do {                           \
  } while (0)
#else
#define NODEDP_DCHECK(condition) NODEDP_CHECK(condition)
#endif

#endif  // NODEDP_UTIL_CHECK_H_

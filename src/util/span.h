// A minimal contiguous-view type (C++17 stand-in for std::span).
//
// Span<const T> is the accessor currency of the CSR graph core: Neighbors()
// and IncidentEdgeIds() hand out views into one flat array instead of
// references into per-vertex vectors, so consumers iterate contiguous memory
// and the graph never materializes per-vertex containers. A Span does not
// own its elements; it is valid only as long as the underlying storage.
//
// Deliberately tiny: pointer + length, range-for support, element access,
// and subspan. No mutation helpers, no static extents.

#ifndef NODEDP_UTIL_SPAN_H_
#define NODEDP_UTIL_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace nodedp {

template <typename T>
class Span {
 public:
  using value_type = std::remove_cv_t<T>;
  using iterator = T*;
  using const_iterator = T*;

  constexpr Span() = default;
  constexpr Span(T* data, std::size_t size) : data_(data), size_(size) {}

  // Views over a vector (enabled only for const element types, so a Span
  // never becomes a mutable back door into a container). Temporaries are
  // rejected: a view into one would dangle at the end of the expression.
  template <typename U = T,
            typename = std::enable_if_t<std::is_const_v<U>>>
  Span(const std::vector<value_type>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}
  Span(const std::vector<value_type>&&) = delete;

  constexpr T* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  T& operator[](std::size_t i) const {
    NODEDP_DCHECK(i < size_);
    return data_[i];
  }
  T& front() const {
    NODEDP_DCHECK(size_ > 0);
    return data_[0];
  }
  T& back() const {
    NODEDP_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }

  Span subspan(std::size_t offset, std::size_t count) const {
    NODEDP_DCHECK(offset + count <= size_);
    return Span(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

template <typename T>
bool operator==(Span<T> a, Span<T> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

template <typename T>
bool operator!=(Span<T> a, Span<T> b) {
  return !(a == b);
}

}  // namespace nodedp

#endif  // NODEDP_UTIL_SPAN_H_

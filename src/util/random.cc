#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace nodedp {

namespace {

inline uint64_t SplitMix64Next(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64Next(sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256++
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  NODEDP_CHECK_GT(bound, 0u);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` representable in 64 bits.
  const uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  // (r >> 11) is in [0, 2^53); adding 0.5 keeps the value strictly positive
  // and strictly below 2^53, so the result is in (0, 1).
  return (static_cast<double>(NextUint64() >> 11) + 0.5) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextLaplace(double b) {
  NODEDP_CHECK_GT(b, 0.0);
  // Inverse CDF on a symmetric open uniform: u in (-1/2, 1/2).
  const double u = NextDoubleOpen() - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return -b * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double Rng::NextExponential(double lambda) {
  NODEDP_CHECK_GT(lambda, 0.0);
  return -std::log(NextDoubleOpen()) / lambda;
}

double Rng::NextGumbel() { return -std::log(-std::log(NextDoubleOpen())); }

double Rng::NextGaussian() {
  const double u1 = NextDoubleOpen();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace nodedp

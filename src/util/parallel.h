// Parallel execution substrate: a lazily-started global thread pool and the
// ParallelFor / ParallelMap primitives the rest of the library builds on.
//
// Determinism contract. Every parallel construct in this library is
// *schedule-independent*: for a fixed seed and fixed inputs, results are
// bit-identical at 1 thread and at N threads. The primitives enforce the
// three rules that make that possible:
//
//   1. Work items communicate only through their own index-addressed slot
//      (ParallelMap writes results[i]; items never touch shared state).
//   2. Randomized items draw from a child Rng split from the parent
//      *sequentially, before dispatch* (ParallelForSeeded), so the stream a
//      work item sees depends only on its index, never on the schedule.
//   3. Any cross-item reduction happens after the join, in index order.
//
// Thread count. The global pool starts lazily on first use with
// NODEDP_THREADS workers (env var; unset or invalid means the hardware
// concurrency — an invalid value additionally warns once on stderr).
// NODEDP_THREADS=1 disables the pool entirely: every primitive degrades to a
// plain sequential loop on the calling thread. Tests and benchmarks that
// need a specific width construct their own ThreadPool and install it with
// ScopedThreadPool.
//
// Scheduling. Dispatch is dynamic — an atomic claim counter, not static
// partitioning — so item-cost imbalance is absorbed at any width. Callers
// whose item costs are known (even roughly) can pass a claim permutation
// (longest-processing-time-first) to For/ParallelFor: items are *claimed*
// in permutation order but still write only their own index-addressed
// slots, so the determinism contract above is untouched — only wall-clock
// changes. See docs/ARCHITECTURE.md "Scheduling".
//
// Nesting. A ParallelFor issued from inside a pool worker runs inline on
// that worker (no new tasks are enqueued), so nested parallel code cannot
// deadlock the pool and outer-level parallelism wins — the right choice for
// this library, where the outer loops (grid cells, batch queries) are the
// wide ones.
//
// Exceptions thrown by work items are captured and the one with the lowest
// index is rethrown on the calling thread after all items settle (again
// schedule-independent). CHECK failures abort as usual.

#ifndef NODEDP_UTIL_PARALLEL_H_
#define NODEDP_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/random.h"

namespace nodedp {

// A fixed-width pool of worker threads executing indexed loops. Work is
// distributed by an atomic claim counter, so load imbalance between items
// (e.g. LP solves of very different sizes) is absorbed without any static
// partitioning choices that could differ between widths.
class ThreadPool {
 public:
  // Starts `num_threads - 1` workers (the calling thread participates in
  // every loop, so a pool of width 1 has no workers at all and runs inline).
  // Clamps to >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(i) for every i in [0, n). Blocks until all items settle; if any
  // item threw, rethrows the exception from the lowest-index failing item.
  void For(std::int64_t n, const std::function<void(std::int64_t)>& fn);

  // Dispatch-order overload: fn(i) still runs for every i in [0, n) exactly
  // once, but items are claimed in `order`'s sequence — pass expensive items
  // first (longest-processing-time-first) to shrink the straggler tail on
  // skewed workloads. `order` must be a permutation of [0, n) (CHECKed in
  // debug builds) and outlive the call. Results, side effects, and the
  // lowest-index exception choice are identical to the unordered overload
  // at any width: the permutation changes wall-clock, never outcomes.
  void For(std::int64_t n, const std::function<void(std::int64_t)>& fn,
           const std::vector<std::int64_t>& order);

  // The process-wide pool, started lazily with ThreadCountFromEnv() workers.
  static ThreadPool& Global();

 private:
  struct Job;

  void ForImpl(std::int64_t n, const std::function<void(std::int64_t)>& fn,
               const std::vector<std::int64_t>* order);
  void WorkerLoop();
  // Claims and runs items of `job` until the claim counter is exhausted.
  void RunItems(Job& job);

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable wake_;
  Job* job_ = nullptr;  // guarded by mu_; non-null while a loop is active
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Width the global pool starts with: NODEDP_THREADS if set to a positive
// integer <= 4096, else std::thread::hardware_concurrency() (min 1). A set
// but invalid NODEDP_THREADS warns once on stderr, naming the rejected
// value, before falling back — a silent fallback turned width typos into
// mystery perf regressions.
int ThreadCountFromEnv();

// The parsing core of ThreadCountFromEnv, exposed for tests: interprets
// `value` as NODEDP_THREADS would be (nullptr = unset). When the value is
// rejected, `*warning` (if non-null) receives the exact one-line message
// the env path prints to stderr; otherwise it is cleared.
int ThreadCountFromEnv(const char* value, std::string* warning);

// Installs `pool` as the pool used by ParallelFor/ParallelMap/... on this
// thread for the scope's lifetime (nullptr restores the global pool).
class ScopedThreadPool {
 public:
  explicit ScopedThreadPool(ThreadPool* pool);
  ~ScopedThreadPool();

  ScopedThreadPool(const ScopedThreadPool&) = delete;
  ScopedThreadPool& operator=(const ScopedThreadPool&) = delete;

 private:
  ThreadPool* previous_;
};

// The pool the free-function primitives below dispatch to: the innermost
// ScopedThreadPool override on this thread, else the global pool.
ThreadPool& CurrentThreadPool();

// Number of threads the free-function primitives would use right now.
int ParallelThreadCount();

// fn(i) for every i in [0, n), on the current pool.
inline void ParallelFor(std::int64_t n,
                        const std::function<void(std::int64_t)>& fn) {
  CurrentThreadPool().For(n, fn);
}

// Dispatch-order variant (see ThreadPool::For): items claimed in `order`'s
// sequence, outcomes identical to the unordered form at any width.
inline void ParallelFor(std::int64_t n,
                        const std::function<void(std::int64_t)>& fn,
                        const std::vector<std::int64_t>& order) {
  CurrentThreadPool().For(n, fn, order);
}

// Maps fn over [0, n), returning the results in index order. T needs only a
// move constructor.
template <typename Fn>
auto ParallelMap(std::int64_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::int64_t{0}))> {
  using T = decltype(fn(std::int64_t{0}));
  std::vector<std::optional<T>> slots(static_cast<std::size_t>(n));
  ParallelFor(n, [&](std::int64_t i) {
    slots[static_cast<std::size_t>(i)].emplace(fn(i));
  });
  std::vector<T> results;
  results.reserve(static_cast<std::size_t>(n));
  for (std::optional<T>& slot : slots) results.push_back(std::move(*slot));
  return results;
}

// fn(i, child_rng) for every i in [0, n). The n child streams are split from
// `parent` sequentially before dispatch, so the stream item i sees depends
// only on i and the parent state — never on the schedule — and `parent`
// advances exactly n splits regardless of thread count.
template <typename Fn>
void ParallelForSeeded(Rng& parent, std::int64_t n, Fn&& fn) {
  std::vector<Rng> children;
  children.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) children.push_back(parent.Split());
  ParallelFor(n, [&](std::int64_t i) {
    fn(i, children[static_cast<std::size_t>(i)]);
  });
}

// Seeded map: fn(i, child_rng) -> T, results in index order.
template <typename Fn>
auto ParallelMapSeeded(Rng& parent, std::int64_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::int64_t{0}, std::declval<Rng&>()))> {
  using T = decltype(fn(std::int64_t{0}, std::declval<Rng&>()));
  std::vector<Rng> children;
  children.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) children.push_back(parent.Split());
  std::vector<std::optional<T>> slots(static_cast<std::size_t>(n));
  ParallelFor(n, [&](std::int64_t i) {
    slots[static_cast<std::size_t>(i)].emplace(
        fn(i, children[static_cast<std::size_t>(i)]));
  });
  std::vector<T> results;
  results.reserve(static_cast<std::size_t>(n));
  for (std::optional<T>& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace nodedp

#endif  // NODEDP_UTIL_PARALLEL_H_

#include "util/stringutil.h"

#include <cstdio>

namespace nodedp {

std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           std::string_view delims) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find_first_of(delims, start);
    const size_t stop = (end == std::string_view::npos) ? text.size() : end;
    if (stop > start) pieces.push_back(text.substr(start, stop - start));
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  const char* ws = " \t\r\n";
  const size_t begin = text.find_first_not_of(ws);
  if (begin == std::string_view::npos) return std::string_view();
  const size_t end = text.find_last_not_of(ws);
  return text.substr(begin, end - begin + 1);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

}  // namespace nodedp

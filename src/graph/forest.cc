#include "graph/forest.h"

#include <algorithm>
#include <queue>

#include "graph/connectivity.h"
#include "graph/union_find.h"
#include "util/check.h"

namespace nodedp {

Forest::Forest(int num_vertices) : adjacency_(num_vertices) {
  NODEDP_CHECK_GE(num_vertices, 0);
}

void Forest::AddEdge(int u, int v) {
  NODEDP_CHECK_NE(u, v);
  NODEDP_CHECK_MSG(!HasEdge(u, v), "edge already in forest");
  adjacency_[u].insert(v);
  adjacency_[v].insert(u);
  ++num_edges_;
}

void Forest::RemoveEdge(int u, int v) {
  NODEDP_CHECK_MSG(HasEdge(u, v), "edge not in forest");
  adjacency_[u].erase(v);
  adjacency_[v].erase(u);
  --num_edges_;
}

bool Forest::HasEdge(int u, int v) const {
  NODEDP_DCHECK(u >= 0 && u < NumVertices());
  NODEDP_DCHECK(v >= 0 && v < NumVertices());
  return adjacency_[u].count(v) > 0;
}

int Forest::MaxDegree() const {
  int best = 0;
  for (const auto& nbrs : adjacency_) {
    best = std::max(best, static_cast<int>(nbrs.size()));
  }
  return best;
}

int Forest::FindVertexWithDegreeAtLeast(int threshold) const {
  for (int v = 0; v < NumVertices(); ++v) {
    if (Degree(v) >= threshold) return v;
  }
  return -1;
}

std::vector<Edge> Forest::EdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (int u = 0; u < NumVertices(); ++u) {
    for (int v : adjacency_[u]) {
      if (u < v) edges.push_back(Edge{u, v});
    }
  }
  return edges;
}

bool Forest::IsForest() const {
  UnionFind uf(NumVertices());
  for (const Edge& e : EdgeList()) {
    if (!uf.Union(e.u, e.v)) return false;
  }
  return true;
}

bool Forest::Connected(int u, int v) const {
  UnionFind uf(NumVertices());
  for (const Edge& e : EdgeList()) uf.Union(e.u, e.v);
  return uf.Connected(u, v);
}

bool Forest::IsSpanningForestOf(const Graph& g) const {
  if (NumVertices() != g.NumVertices()) return false;
  if (!IsForest()) return false;
  for (const Edge& e : EdgeList()) {
    if (!g.HasEdge(e.u, e.v)) return false;
  }
  return NumEdges() == SpanningForestSize(g);
}

Forest BfsSpanningForest(const Graph& g) {
  Forest forest(g.NumVertices());
  std::vector<bool> visited(g.NumVertices(), false);
  std::queue<int> queue;
  for (int root = 0; root < g.NumVertices(); ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    queue.push(root);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (int v : g.Neighbors(u)) {
        if (visited[v]) continue;
        visited[v] = true;
        forest.AddEdge(u, v);
        queue.push(v);
      }
    }
  }
  return forest;
}

}  // namespace nodedp

#include "graph/connectivity.h"

#include <algorithm>

#include "graph/union_find.h"
#include "util/check.h"

namespace nodedp {

int CountConnectedComponents(const Graph& g) {
  // Rides the same iterative-DFS pass as ComponentLabels: every edge is
  // touched exactly twice through the flat CSR arrays, with none of the
  // union-find indirection the original implementation paid.
  const std::vector<int> labels = ComponentLabels(g);
  int num = 0;
  for (int label : labels) num = std::max(num, label + 1);
  return num;
}

int SpanningForestSize(const Graph& g) {
  return g.NumVertices() - CountConnectedComponents(g);
}

std::vector<int> ComponentLabels(const Graph& g) {
  // Iterative DFS over the flat CSR neighbor array: every edge is touched
  // exactly twice, contiguously, with no union-find indirection. Scanning
  // roots in ascending order assigns labels in order of each component's
  // smallest vertex, as documented.
  const int n = g.NumVertices();
  std::vector<int> labels(n, -1);
  std::vector<int> stack;
  int next = 0;
  for (int root = 0; root < n; ++root) {
    if (labels[root] >= 0) continue;
    const int label = next++;
    labels[root] = label;
    stack.push_back(root);
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int v : g.Neighbors(u)) {
        if (labels[v] < 0) {
          labels[v] = label;
          stack.push_back(v);
        }
      }
    }
  }
  return labels;
}

std::vector<std::vector<int>> ComponentVertexSets(const Graph& g) {
  const std::vector<int> labels = ComponentLabels(g);
  int num = 0;
  for (int l : labels) num = std::max(num, l + 1);
  // Size each set exactly before filling so million-vertex decompositions
  // do not regrow per-component vectors.
  std::vector<int> sizes(num, 0);
  for (int l : labels) ++sizes[l];
  std::vector<std::vector<int>> sets(num);
  for (int c = 0; c < num; ++c) sets[c].reserve(sizes[c]);
  for (int v = 0; v < g.NumVertices(); ++v) sets[labels[v]].push_back(v);
  return sets;
}

bool SameComponent(const Graph& g, int u, int v) {
  NODEDP_CHECK_LT(u, g.NumVertices());
  NODEDP_CHECK_LT(v, g.NumVertices());
  UnionFind uf(g.NumVertices());
  for (const Edge& e : g.Edges()) uf.Union(e.u, e.v);
  return uf.Connected(u, v);
}

ComponentDeltaAnalysis AnalyzeEdgeDelta(const std::vector<int>& old_labels,
                                        int num_old_components,
                                        const std::vector<Edge>& inserts) {
  ComponentDeltaAnalysis analysis;
  analysis.num_old_components = num_old_components;
  UnionFind uf(num_old_components);
  std::vector<bool> dirty(num_old_components, false);
  int merges = 0;
  for (const Edge& e : inserts) {
    NODEDP_DCHECK(e.u >= 0 && e.u < static_cast<int>(old_labels.size()));
    NODEDP_DCHECK(e.v >= 0 && e.v < static_cast<int>(old_labels.size()));
    const int lu = old_labels[e.u];
    const int lv = old_labels[e.v];
    dirty[lu] = true;
    dirty[lv] = true;
    if (uf.Union(lu, lv)) ++merges;
  }
  analysis.num_new_components = num_old_components - merges;

  // Bucket the touched labels by their fused root. Scanning labels in
  // ascending order makes both the touched list and each group sorted, and
  // ordering groups by first appearance orders them by smallest member.
  std::vector<int> group_of(num_old_components, -1);
  for (int label = 0; label < num_old_components; ++label) {
    if (!dirty[label]) continue;
    analysis.touched.push_back(label);
    const int root = uf.Find(label);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<int>(analysis.groups.size());
      analysis.groups.emplace_back();
    }
    analysis.groups[static_cast<std::size_t>(group_of[root])].push_back(label);
  }
  return analysis;
}

bool IsCutVertex(const Graph& g, int v) {
  NODEDP_CHECK_GE(v, 0);
  NODEDP_CHECK_LT(v, g.NumVertices());
  if (g.Degree(v) <= 1) return false;
  // Count components among V \ {v} restricted to the neighbors' side: v is a
  // cut vertex iff its neighbors fall into more than one component of G - v.
  UnionFind uf(g.NumVertices());
  for (const Edge& e : g.Edges()) {
    if (e.u == v || e.v == v) continue;
    uf.Union(e.u, e.v);
  }
  const int root = uf.Find(g.Neighbors(v)[0]);
  for (int nbr : g.Neighbors(v)) {
    if (uf.Find(nbr) != root) return true;
  }
  return false;
}

}  // namespace nodedp

#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace nodedp {
namespace gen {

Graph Empty(int n) { return Graph(n, {}); }

Graph Complete(int n) {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph(n, std::move(edges));
}

Graph Path(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph(n, std::move(edges));
}

Graph Cycle(int n) {
  NODEDP_CHECK_GE(n, 3);
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  edges.emplace_back(n - 1, 0);
  return Graph(n, std::move(edges));
}

Graph Star(int leaves) {
  NODEDP_CHECK_GE(leaves, 0);
  std::vector<std::pair<int, int>> edges;
  for (int leaf = 1; leaf <= leaves; ++leaf) edges.emplace_back(0, leaf);
  return Graph(leaves + 1, std::move(edges));
}

Graph Grid(int rows, int cols) {
  NODEDP_CHECK_GE(rows, 0);
  NODEDP_CHECK_GE(cols, 0);
  auto id = [cols](int r, int c) { return r * cols + c; };
  std::vector<std::pair<int, int>> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph(rows * cols, std::move(edges));
}

Graph Caterpillar(int spine, int legs) {
  NODEDP_CHECK_GE(spine, 1);
  NODEDP_CHECK_GE(legs, 0);
  std::vector<std::pair<int, int>> edges;
  for (int s = 0; s + 1 < spine; ++s) edges.emplace_back(s, s + 1);
  int next = spine;
  for (int s = 0; s < spine; ++s) {
    for (int l = 0; l < legs; ++l) edges.emplace_back(s, next++);
  }
  return Graph(next, std::move(edges));
}

Graph ErdosRenyi(int n, double p, Rng& rng) {
  NODEDP_CHECK_GE(n, 0);
  std::vector<std::pair<int, int>> edges;
  if (p >= 1.0) return Complete(n);
  if (p <= 0.0) return Empty(n);
  // Geometric skipping over pairs: O(n + m) expected instead of O(n^2).
  const double log_q = std::log(1.0 - p);
  const int64_t total_pairs = static_cast<int64_t>(n) * (n - 1) / 2;
  int64_t index = -1;
  // Running row cursor for the linear-index -> (u, v) row-major mapping.
  // Sampled indices are strictly increasing, so the cursor only ever moves
  // forward: O(n + m) for the whole sweep instead of O(n) per edge.
  int64_t row = 0;
  int64_t row_start = 0;
  int64_t row_len = n - 1;
  for (;;) {
    const double u = rng.NextDoubleOpen();
    const double skip = std::floor(std::log(u) / log_q);
    if (skip > static_cast<double>(total_pairs)) break;
    index += 1 + static_cast<int64_t>(skip);
    if (index >= total_pairs) break;
    while (index - row_start >= row_len) {
      row_start += row_len;
      --row_len;
      ++row;
    }
    edges.emplace_back(static_cast<int>(row),
                       static_cast<int>(row + 1 + (index - row_start)));
  }
  return Graph(n, std::move(edges));
}

Graph RandomGeometricWithPositions(
    int n, double radius, Rng& rng,
    std::vector<std::pair<double, double>>* positions) {
  NODEDP_CHECK_GE(n, 0);
  NODEDP_CHECK_GT(radius, 0.0);
  std::vector<std::pair<double, double>> points(n);
  for (auto& [x, y] : points) {
    x = rng.NextDouble();
    y = rng.NextDouble();
  }
  // Uniform grid bucketing with cell size = radius: each point only checks
  // the 3x3 neighborhood of cells.
  const int cells = std::max(1, static_cast<int>(1.0 / radius));
  const double cell_size = 1.0 / cells;
  std::vector<std::vector<int>> buckets(
      static_cast<size_t>(cells) * cells);
  auto bucket_of = [&](double x, double y) {
    int cx = std::min(cells - 1, static_cast<int>(x / cell_size));
    int cy = std::min(cells - 1, static_cast<int>(y / cell_size));
    return cy * cells + cx;
  };
  for (int i = 0; i < n; ++i) {
    buckets[bucket_of(points[i].first, points[i].second)].push_back(i);
  }
  const double r2 = radius * radius;
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) {
    const int cx = std::min(cells - 1,
                            static_cast<int>(points[i].first / cell_size));
    const int cy = std::min(cells - 1,
                            static_cast<int>(points[i].second / cell_size));
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = cx + dx;
        const int ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (int j : buckets[ny * cells + nx]) {
          if (j <= i) continue;
          const double ddx = points[i].first - points[j].first;
          const double ddy = points[i].second - points[j].second;
          if (ddx * ddx + ddy * ddy <= r2) edges.emplace_back(i, j);
        }
      }
    }
  }
  if (positions != nullptr) *positions = std::move(points);
  return Graph(n, std::move(edges));
}

Graph RandomGeometric(int n, double radius, Rng& rng) {
  return RandomGeometricWithPositions(n, radius, rng, nullptr);
}

Graph BarabasiAlbert(int n, int edges_per_step, Rng& rng) {
  NODEDP_CHECK_GE(edges_per_step, 1);
  NODEDP_CHECK_GE(n, edges_per_step);
  GraphBuilder builder(n);
  // The hint can exceed int for large (n, edges_per_step); compute wide and
  // clamp — beyond INT_MAX the edge list could not be represented anyway.
  const int64_t edge_hint =
      static_cast<int64_t>(edges_per_step) * (edges_per_step - 1) / 2 +
      static_cast<int64_t>(n - edges_per_step) * edges_per_step;
  builder.ReserveEdges(static_cast<int>(
      std::min<int64_t>(edge_hint, std::numeric_limits<int>::max())));
  // Seed: clique on the first edges_per_step vertices.
  for (int u = 0; u < edges_per_step; ++u) {
    for (int v = u + 1; v < edges_per_step; ++v) builder.AddEdge(u, v);
  }
  // `targets` lists every edge endpoint so far, so uniform sampling from it
  // is degree-proportional sampling.
  std::vector<int> targets;
  for (int u = 0; u < edges_per_step; ++u) {
    for (int v = u + 1; v < edges_per_step; ++v) {
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  if (targets.empty()) targets.push_back(0);  // edges_per_step == 1 seed
  for (int v = edges_per_step; v < n; ++v) {
    int added = 0;
    int attempts = 0;
    std::vector<int> chosen;
    while (added < edges_per_step && attempts < 64 * edges_per_step) {
      ++attempts;
      const int t = targets[rng.NextUint64(targets.size())];
      if (t != v && builder.AddEdge(v, t)) {
        chosen.push_back(t);
        ++added;
      }
    }
    for (int t : chosen) {
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return std::move(builder).Build();
}

Graph CliqueUnion(const std::vector<int>& sizes) {
  std::vector<std::pair<int, int>> edges;
  int offset = 0;
  for (int size : sizes) {
    NODEDP_CHECK_GE(size, 1);
    for (int u = 0; u < size; ++u) {
      for (int v = u + 1; v < size; ++v) {
        edges.emplace_back(offset + u, offset + v);
      }
    }
    offset += size;
  }
  return Graph(offset, std::move(edges));
}

Graph RandomEntityGraph(int num_entities, int max_records, Rng& rng) {
  NODEDP_CHECK_GE(num_entities, 0);
  NODEDP_CHECK_GE(max_records, 1);
  std::vector<int> sizes(num_entities);
  for (int& s : sizes) {
    s = 1 + static_cast<int>(rng.NextUint64(max_records));
  }
  return CliqueUnion(sizes);
}

Graph RandomTreeLike(int n, int max_degree, double extra_edge_p, Rng& rng) {
  NODEDP_CHECK_GE(n, 1);
  NODEDP_CHECK_GE(max_degree, 1);
  GraphBuilder builder(n);
  builder.ReserveEdges(
      n - 1 + static_cast<int>(static_cast<double>(n) * extra_edge_p));
  std::vector<int> tree_degree(n, 0);
  // Vertices whose tree degree is still below max_degree.
  std::vector<int> open = {0};
  for (int v = 1; v < n; ++v) {
    NODEDP_CHECK_MSG(!open.empty(),
                     "max_degree too small to attach all vertices");
    const size_t idx = rng.NextUint64(open.size());
    const int parent = open[idx];
    builder.AddEdge(v, parent);
    if (++tree_degree[parent] >= max_degree) {
      open[idx] = open.back();
      open.pop_back();
    }
    if (++tree_degree[v] < max_degree) open.push_back(v);
    if (v >= 2 && rng.NextBernoulli(extra_edge_p)) {
      builder.AddEdge(v, static_cast<int>(rng.NextUint64(v)));
    }
  }
  return std::move(builder).Build();
}

Graph DisjointUnion(const std::vector<Graph>& parts) {
  int total = 0;
  for (const Graph& part : parts) total += part.NumVertices();
  std::vector<std::pair<int, int>> edges;
  int offset = 0;
  for (const Graph& part : parts) {
    for (const Edge& e : part.Edges()) {
      edges.emplace_back(offset + e.u, offset + e.v);
    }
    offset += part.NumVertices();
  }
  return Graph(total, std::move(edges));
}

}  // namespace gen
}  // namespace nodedp

// Mutable forest on a fixed vertex set [0, n).
//
// Supports the edge swaps of the paper's local-repair procedure
// (Algorithm 3): add an edge, remove an edge, query degrees, and check
// acyclicity / spanning-forest-ness against a host graph. The structure is a
// plain adjacency-set forest; connectivity queries rebuild a union-find,
// which is O(n + edges) and entirely sufficient for the O(n)-step repair
// loop.

#ifndef NODEDP_GRAPH_FOREST_H_
#define NODEDP_GRAPH_FOREST_H_

#include <set>
#include <vector>

#include "graph/graph.h"

namespace nodedp {

class Forest {
 public:
  explicit Forest(int num_vertices);

  int NumVertices() const { return static_cast<int>(adjacency_.size()); }
  int NumEdges() const { return num_edges_; }

  // Adds edge {u, v}. CHECKs that the edge is not already present. Does NOT
  // check acyclicity (the repair procedure transiently relies on swaps that
  // are proven acyclic); call IsForest() to validate.
  void AddEdge(int u, int v);

  // Removes edge {u, v}; CHECKs that it is present.
  void RemoveEdge(int u, int v);

  bool HasEdge(int u, int v) const;

  int Degree(int v) const { return static_cast<int>(adjacency_[v].size()); }
  int MaxDegree() const;

  // Some vertex with degree >= threshold, or -1 if none.
  int FindVertexWithDegreeAtLeast(int threshold) const;

  const std::set<int>& Neighbors(int v) const { return adjacency_[v]; }

  // Edge list (u < v), sorted.
  std::vector<Edge> EdgeList() const;

  // True iff the current edge set is acyclic.
  bool IsForest() const;

  // True iff u and v are connected within the forest.
  bool Connected(int u, int v) const;

  // True iff this is a spanning forest of `g`: every edge of the forest is
  // an edge of g, the edge set is acyclic, and the forest has exactly
  // f_sf(g) edges (equivalently: same connected components as g).
  bool IsSpanningForestOf(const Graph& g) const;

 private:
  std::vector<std::set<int>> adjacency_;
  int num_edges_ = 0;
};

// Builds a BFS spanning forest of g (no degree guarantees).
Forest BfsSpanningForest(const Graph& g);

}  // namespace nodedp

#endif  // NODEDP_GRAPH_FOREST_H_

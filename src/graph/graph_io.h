// Graph serialization: a plain-text edge list (human-editable) and a binary
// format with a streaming reader (the server ingestion path).
//
// Text format:
//   # comment lines start with '#'
//   <num_vertices> <num_edges>
//   <u> <v>          (one line per edge)
//
// Reading tolerates duplicate edges (collapsed) but rejects self-loops and
// out-of-range endpoints with a non-OK Status.
//
// Binary format v1 ("NDPG", version 1, little-endian; full spec in
// docs/SERVING.md):
//   bytes 0..3    magic "NDPG"
//   bytes 4..7    format version (u32) — 1
//   bytes 8..15   num_vertices (i64)
//   bytes 16..23  num_edges (i64)
//   then          num_edges records of (u, v) as two u32, with u < v,
//                 strictly ascending in (u, v) order, duplicate-free
//
// The v1 reader streams edge records in fixed-size chunks directly into the
// final sorted edge array (no intermediate pair list, no sort, no dedup
// set) and finishes with Graph::FromSortedEdges — one validation pass and
// one CSR build, so million-vertex graphs load in a single pass. Sortedness,
// endpoint ranges, self-loops, duplicates, truncation, magic/version
// mismatches, and counts that would overflow int32 are all rejected with a
// non-OK Status.
//
// Binary format v2 (same magic, version 2; layout in graph/ndpg_v2.h and
// docs/SERVING.md) lays the file out as the CSR arrays themselves —
// header, then 64-byte-aligned edges/offsets/neighbors/incident_edge_ids
// sections, each with a checksum — so a v2 file can also be served
// zero-copy via Graph::FromMmap. The heap reader here verifies every
// section checksum and cross-validates the CSR sections against the edge
// list; all structural errors (bad magic, wrong version, misaligned or
// non-canonical sections, truncation, checksum mismatch) fail closed.

#ifndef NODEDP_GRAPH_GRAPH_IO_H_
#define NODEDP_GRAPH_GRAPH_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace nodedp {

// Writes g to `out` in edge-list format.
void WriteEdgeList(const Graph& g, std::ostream& out);

// Parses a graph from `in`.
Result<Graph> ReadEdgeList(std::istream& in);

// File convenience wrappers.
Status WriteEdgeListFile(const Graph& g, const std::string& path);
Result<Graph> ReadEdgeListFile(const std::string& path);

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

// The edge-stream format version (WriteGraphBinary / ReadGraphBinary).
inline constexpr std::uint32_t kGraphBinaryVersion = 1;
// The CSR-layout format version (WriteGraphV2 / ReadGraphV2 /
// Graph::FromMmap).
inline constexpr std::uint32_t kGraphBinaryVersionV2 = 2;

// Writes g in binary v1 format. Streams are expected to be opened in
// binary mode (std::ios::binary) when backed by files.
Status WriteGraphBinary(const Graph& g, std::ostream& out);

// Streaming binary v1 reader: validates the header, then ingests edges in
// chunks straight into CSR construction.
Result<Graph> ReadGraphBinary(std::istream& in);

// File convenience wrappers (open in binary mode).
Status WriteGraphBinaryFile(const Graph& g, const std::string& path);
Result<Graph> ReadGraphBinaryFile(const std::string& path);

// Writes g in binary v2 (mmap-servable CSR) format. The stream must be
// seekable (the header's section checksums are patched in after the
// sections stream out); the file wrapper always is.
Status WriteGraphV2(const Graph& g, std::ostream& out);
Status WriteGraphV2File(const Graph& g, const std::string& path);

// Heap reader for v2 files: full fail-closed validation — header and
// per-section checksums, canonical section layout, truncation, edge-list
// invariants — plus a cross-check that the stored CSR sections are exactly
// the CSR of the stored edge list (so a file that would serve differently
// via mmap than via heap load is rejected here, not discovered later).
Result<Graph> ReadGraphV2(std::istream& in);
Result<Graph> ReadGraphV2File(const std::string& path);

// Reads any supported graph file (text, v1, v2) and writes it back out in
// v2 — the ops path for preparing mmap-servable files. Reading `in_path`
// re-validates it in full.
Status ConvertGraphFileToV2(const std::string& in_path,
                            const std::string& out_path);

// Sniffs the magic bytes and format version and dispatches to the right
// reader (binary v1, binary v2, or text) — the loader behind
// `serve_cli load`, so one command accepts any format.
Result<Graph> ReadGraphAnyFile(const std::string& path);

}  // namespace nodedp

#endif  // NODEDP_GRAPH_GRAPH_IO_H_

// Plain-text edge-list serialization.
//
// Format:
//   # comment lines start with '#'
//   <num_vertices> <num_edges>
//   <u> <v>          (one line per edge)
//
// Reading tolerates duplicate edges (collapsed) but rejects self-loops and
// out-of-range endpoints with a non-OK Status.

#ifndef NODEDP_GRAPH_GRAPH_IO_H_
#define NODEDP_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace nodedp {

// Writes g to `out` in edge-list format.
void WriteEdgeList(const Graph& g, std::ostream& out);

// Parses a graph from `in`.
Result<Graph> ReadEdgeList(std::istream& in);

// File convenience wrappers.
Status WriteEdgeListFile(const Graph& g, const std::string& path);
Result<Graph> ReadEdgeListFile(const std::string& path);

}  // namespace nodedp

#endif  // NODEDP_GRAPH_GRAPH_IO_H_

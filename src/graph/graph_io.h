// Graph serialization: a plain-text edge list (human-editable) and a binary
// format with a streaming reader (the server ingestion path).
//
// Text format:
//   # comment lines start with '#'
//   <num_vertices> <num_edges>
//   <u> <v>          (one line per edge)
//
// Reading tolerates duplicate edges (collapsed) but rejects self-loops and
// out-of-range endpoints with a non-OK Status.
//
// Binary format ("NDPG", version 1, little-endian; full spec in
// docs/SERVING.md):
//   bytes 0..3    magic "NDPG"
//   bytes 4..7    format version (u32) — currently 1
//   bytes 8..15   num_vertices (i64)
//   bytes 16..23  num_edges (i64)
//   then          num_edges records of (u, v) as two u32, with u < v,
//                 strictly ascending in (u, v) order, duplicate-free
//
// The reader streams edge records in fixed-size chunks directly into the
// final sorted edge array (no intermediate pair list, no sort, no dedup
// set) and finishes with Graph::FromSortedEdges — one validation pass and
// one CSR build, so million-vertex graphs load in a single pass. Sortedness,
// endpoint ranges, self-loops, duplicates, truncation, magic/version
// mismatches, and counts that would overflow int32 are all rejected with a
// non-OK Status.

#ifndef NODEDP_GRAPH_GRAPH_IO_H_
#define NODEDP_GRAPH_GRAPH_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace nodedp {

// Writes g to `out` in edge-list format.
void WriteEdgeList(const Graph& g, std::ostream& out);

// Parses a graph from `in`.
Result<Graph> ReadEdgeList(std::istream& in);

// File convenience wrappers.
Status WriteEdgeListFile(const Graph& g, const std::string& path);
Result<Graph> ReadEdgeListFile(const std::string& path);

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

// The version this build writes and the only one it accepts.
inline constexpr std::uint32_t kGraphBinaryVersion = 1;

// Writes g in binary format. Streams are expected to be opened in binary
// mode (std::ios::binary) when backed by files.
Status WriteGraphBinary(const Graph& g, std::ostream& out);

// Streaming binary reader: validates the header, then ingests edges in
// chunks straight into CSR construction.
Result<Graph> ReadGraphBinary(std::istream& in);

// File convenience wrappers (open in binary mode).
Status WriteGraphBinaryFile(const Graph& g, const std::string& path);
Result<Graph> ReadGraphBinaryFile(const std::string& path);

// Sniffs the magic bytes and dispatches to the binary or text reader — the
// loader behind `serve_cli load`, so one command accepts either format.
Result<Graph> ReadGraphAnyFile(const std::string& path);

}  // namespace nodedp

#endif  // NODEDP_GRAPH_GRAPH_IO_H_

// Core immutable undirected graph type, stored in CSR (compressed sparse
// row) form.
//
// Graphs in this library are simple (no self-loops, no parallel edges),
// undirected, and unweighted, matching the database model of the paper
// (Section 1.1): vertices are individuals, edges are relationships.
//
// A Graph is immutable after construction. Use GraphBuilder for incremental
// construction, or the factory functions in graph/generators.h. Vertices are
// dense integers [0, NumVertices()). Edges are normalized with u < v and
// stored as a sorted edge list (the LP variables of Definition 3.1 are
// indexed by this list) plus three flat CSR arrays:
//
//   offsets_        n+1 prefix sums of vertex degrees
//   csr_neighbors_  2m neighbor ids, the slice [offsets_[v], offsets_[v+1])
//                   being the sorted neighbor list of v
//   csr_incident_   2m edge ids, parallel to csr_neighbors_ (the id of the
//                   edge connecting v to its k-th neighbor)
//
// Accessors hand out Span views into these arrays; there are no per-vertex
// containers and no hash map. EdgeId(u, v) is a binary search over the
// sorted neighbor slice of the lower-degree endpoint.

#ifndef NODEDP_GRAPH_GRAPH_H_
#define NODEDP_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/span.h"
#include "util/status.h"

namespace nodedp {

// A normalized undirected edge with endpoints u < v.
struct Edge {
  int u = 0;
  int v = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return (a.u != b.u) ? a.u < b.u : a.v < b.v;
  }
};

class Graph {
 public:
  // Vertex and edge counts are int-indexed throughout the library (CSR
  // offsets, LP variable ids). These are the hard caps the ingestion paths
  // (graph_io readers, TryFromSortedEdges) enforce with a non-OK Status
  // instead of overflowing.
  static constexpr std::int64_t kMaxVertices = 2147483647;  // INT32_MAX
  static constexpr std::int64_t kMaxEdges = 2147483647;     // INT32_MAX

  // Empty graph with zero vertices.
  Graph() = default;

  // Builds a graph on `num_vertices` vertices from an edge list. Endpoints
  // are normalized (u < v); duplicate edges are collapsed; self-loops are
  // rejected with a CHECK. Endpoints must be in [0, num_vertices).
  Graph(int num_vertices, std::vector<std::pair<int, int>> edge_pairs);

  // Fast path for callers that already hold a normalized (u < v), sorted,
  // duplicate-free edge list over valid endpoints — subgraph induction,
  // generators that emit edges in order. Skips validation (DCHECKed in
  // debug builds), sorting, and deduplication: construction is one counting
  // pass plus one fill pass over `edges`.
  static Graph FromSortedEdges(int num_vertices, std::vector<Edge> edges);

  // Checked variant for ingestion paths that carry counts wider than int
  // (file headers, streaming readers): rejects vertex or edge counts beyond
  // kMaxVertices/kMaxEdges with InvalidArgument instead of truncating,
  // then delegates to FromSortedEdges.
  static Result<Graph> TryFromSortedEdges(std::int64_t num_vertices,
                                          std::vector<Edge> edges);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  int NumVertices() const { return num_vertices_; }
  int NumEdges() const { return static_cast<int>(edges_.size()); }

  // Edge list in sorted normalized order. Index into this list is the
  // canonical edge id used by the forest-polytope LP.
  const std::vector<Edge>& Edges() const { return edges_; }
  const Edge& EdgeAt(int edge_id) const { return edges_[edge_id]; }

  // Sorted neighbor list of `v`, as a view into the flat CSR array. Valid
  // as long as this Graph is alive.
  Span<const int> Neighbors(int v) const {
    return Span<const int>(csr_neighbors_.data() + offsets_[v],
                           static_cast<std::size_t>(SliceLength(v)));
  }

  int Degree(int v) const { return SliceLength(v); }

  // Largest vertex degree; 0 for edgeless graphs.
  int MaxDegree() const;

  bool HasEdge(int u, int v) const { return EdgeId(u, v) >= 0; }

  // Id of edge {u, v} in Edges(), or -1 if absent. O(log deg): binary
  // search over the sorted neighbor slice of the lower-degree endpoint.
  int EdgeId(int u, int v) const;

  // Ids of the edges incident to `v` (the set δ(v) of Definition 3.1),
  // parallel to Neighbors(v).
  Span<const int> IncidentEdgeIds(int v) const {
    return Span<const int>(csr_incident_.data() + offsets_[v],
                           static_cast<std::size_t>(SliceLength(v)));
  }

  // Result of ApplyEdgeDelta: the patched graph plus the normalized,
  // sorted list of edges that were actually new. Defined after the class
  // (it holds a Graph by value).
  struct EdgeDelta;

  // Streaming update path: returns a new graph with the insert batch
  // merged in (this graph is unchanged — readers keep serving it).
  // Endpoints are normalized; in-batch repeats and edges already present
  // are counted in `duplicates` and otherwise ignored. Self-loops and
  // out-of-range endpoints reject the whole batch with InvalidArgument —
  // this is a data-plane entry point (serve/add_edges), so bad input must
  // refuse, not CHECK. The merge is one pass over the two sorted edge
  // lists plus the usual CSR build: O(n + m + |batch| log |batch|).
  Result<EdgeDelta> ApplyEdgeDelta(
      const std::vector<std::pair<int, int>>& inserts) const;

  // Heap footprint of this graph in bytes (edge list + CSR arrays,
  // capacity-based). Telemetry for the scale benches; not an allocator
  // measurement.
  std::size_t MemoryBytes() const;

 private:
  struct SortedUniqueTag {};
  Graph(int num_vertices, std::vector<Edge> edges, SortedUniqueTag);

  // Builds the CSR arrays from edges_ (sorted, unique, normalized).
  void BuildCsr();

  int SliceLength(int v) const { return offsets_[v + 1] - offsets_[v]; }

  int num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<int> offsets_ = {0};
  std::vector<int> csr_neighbors_;
  std::vector<int> csr_incident_;
};

// `added` is what the incremental ExtensionFamily maintenance consumes —
// duplicates of resident edges are filtered out so downstream delta
// analysis never dirties a component over an edge that changed nothing.
struct Graph::EdgeDelta {
  Graph graph;
  std::vector<Edge> added;
  int duplicates = 0;  // inserts already present (or repeated in-batch)
};

// Incremental construction helper. Ignores duplicate edges.
class GraphBuilder {
 public:
  explicit GraphBuilder(int num_vertices) : num_vertices_(num_vertices) {}

  // Pre-sizes the internal edge list and dedup set for `expected_edges`
  // insertions, so building million-edge graphs does not rehash/regrow
  // repeatedly. A hint, not a cap.
  void ReserveEdges(int expected_edges);

  // Adds an undirected edge; returns false if it was already present or is a
  // self-loop (self-loops are rejected, not CHECKed, so randomized
  // generators can call this unconditionally). Out-of-range endpoints, by
  // contrast, are programmer errors and CHECK-fail.
  //
  // If ReserveEdges was not called, the first insertion reserves capacity
  // for num_vertices() edges — the right order of magnitude for the sparse
  // graphs this library serves.
  bool AddEdge(int u, int v);

  // Appends a fresh isolated vertex and returns its id.
  int AddVertex();

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  Graph Build() &&;

 private:
  static uint64_t Key(int u, int v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(v);
  }

  int num_vertices_ = 0;
  bool reserved_ = false;
  std::vector<std::pair<int, int>> edges_;
  std::unordered_set<uint64_t> seen_;
};

}  // namespace nodedp

#endif  // NODEDP_GRAPH_GRAPH_H_

// Core immutable undirected graph type, stored in CSR (compressed sparse
// row) form.
//
// Graphs in this library are simple (no self-loops, no parallel edges),
// undirected, and unweighted, matching the database model of the paper
// (Section 1.1): vertices are individuals, edges are relationships.
//
// A Graph is immutable after construction. Use GraphBuilder for incremental
// construction, or the factory functions in graph/generators.h. Vertices are
// dense integers [0, NumVertices()). Edges are normalized with u < v and
// stored as a sorted edge list (the LP variables of Definition 3.1 are
// indexed by this list) plus three flat CSR arrays:
//
//   offsets        n+1 prefix sums of vertex degrees
//   csr_neighbors  2m neighbor ids, the slice [offsets[v], offsets[v+1])
//                  being the sorted neighbor list of v
//   csr_incident   2m edge ids, parallel to csr_neighbors (the id of the
//                  edge connecting v to its k-th neighbor)
//
// Accessors hand out Span views into these arrays; there are no per-vertex
// containers and no hash map. EdgeId(u, v) is a binary search over the
// sorted neighbor slice of the lower-degree endpoint.
//
// Storage backing: the flat arrays live in a shared, immutable backing —
// either heap vectors (every constructor) or a read-only mmap of an NDPG v2
// file (Graph::FromMmap), whose sections are laid out as exactly these
// arrays. Accessors are identical on both backings; copies of a Graph share
// the backing (O(1), safe because a Graph never mutates). MemoryBytes()
// reports resident heap bytes, MappedBytes() the mapped file bytes — a
// mapped graph costs no heap and only the pages queries touch.

#ifndef NODEDP_GRAPH_GRAPH_H_
#define NODEDP_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/span.h"
#include "util/status.h"

namespace nodedp {

// A normalized undirected edge with endpoints u < v. The layout (two
// 32-bit ints, u first) is also the NDPG edge record, so the edges section
// of a mapped file is viewed directly as an Edge array.
struct Edge {
  int u = 0;
  int v = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return (a.u != b.u) ? a.u < b.u : a.v < b.v;
  }
};

static_assert(sizeof(Edge) == 8, "Edge must match the 8-byte NDPG record");

class Graph {
 public:
  // Vertex and edge counts are int-indexed throughout the library (CSR
  // offsets, LP variable ids). These are the hard caps the ingestion paths
  // (graph_io readers, TryFromSortedEdges) enforce with a non-OK Status
  // instead of overflowing.
  static constexpr std::int64_t kMaxVertices = 2147483647;  // INT32_MAX
  static constexpr std::int64_t kMaxEdges = 2147483647;     // INT32_MAX

  // Empty graph with zero vertices.
  Graph();

  // Builds a graph on `num_vertices` vertices from an edge list. Endpoints
  // are normalized (u < v); duplicate edges are collapsed; self-loops are
  // rejected with a CHECK. Endpoints must be in [0, num_vertices).
  Graph(int num_vertices, std::vector<std::pair<int, int>> edge_pairs);

  // Fast path for callers that already hold a normalized (u < v), sorted,
  // duplicate-free edge list over valid endpoints — subgraph induction,
  // generators that emit edges in order. Skips validation (DCHECKed in
  // debug builds), sorting, and deduplication: construction is one counting
  // pass plus one fill pass over `edges`.
  static Graph FromSortedEdges(int num_vertices, std::vector<Edge> edges);

  // Checked variant for ingestion paths that carry counts wider than int
  // (file headers, streaming readers): rejects vertex or edge counts beyond
  // kMaxVertices/kMaxEdges with InvalidArgument instead of truncating,
  // then delegates to FromSortedEdges.
  static Result<Graph> TryFromSortedEdges(std::int64_t num_vertices,
                                          std::vector<Edge> edges);

  // Zero-copy open of an NDPG v2 file: maps the file read-only and serves
  // the edge list and CSR arrays straight out of the mapping — O(1) in the
  // graph size; the kernel pages in only what queries touch (madvise
  // MADV_RANDOM, the serving access pattern). Validation is fail-closed on
  // everything O(1): magic, version, counts, section alignment/layout,
  // file bounds, the header checksum, and the CSR boundary invariants.
  // With `verify_checksums` the full per-section checksums are verified
  // too — one sequential pass over the file, for ingestion-time audits
  // (the heap reader in graph_io always verifies them).
  //
  // The mapping lives inside the returned Graph (shared by copies) and is
  // unmapped when the last copy is destroyed. The file must stay intact
  // for that lifetime: truncating or rewriting it in place invalidates
  // live readers (replace files atomically via rename instead).
  // Little-endian hosts only (refused with Internal elsewhere).
  static Result<Graph> FromMmap(const std::string& path,
                                bool verify_checksums = false);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  int NumVertices() const { return num_vertices_; }
  int NumEdges() const { return static_cast<int>(edges_.size()); }

  // Edge list in sorted normalized order. Index into this list is the
  // canonical edge id used by the forest-polytope LP. A view into the
  // shared backing, valid as long as any copy of this Graph is alive.
  Span<const Edge> Edges() const { return edges_; }
  const Edge& EdgeAt(int edge_id) const { return edges_[edge_id]; }

  // Sorted neighbor list of `v`, as a view into the flat CSR array. Valid
  // as long as this Graph is alive.
  Span<const int> Neighbors(int v) const {
    return csr_neighbors_.subspan(
        static_cast<std::size_t>(offsets_[v]),
        static_cast<std::size_t>(SliceLength(v)));
  }

  int Degree(int v) const { return SliceLength(v); }

  // Largest vertex degree; 0 for edgeless graphs.
  int MaxDegree() const;

  bool HasEdge(int u, int v) const { return EdgeId(u, v) >= 0; }

  // Id of edge {u, v} in Edges(), or -1 if absent. O(log deg): binary
  // search over the sorted neighbor slice of the lower-degree endpoint.
  int EdgeId(int u, int v) const;

  // Ids of the edges incident to `v` (the set δ(v) of Definition 3.1),
  // parallel to Neighbors(v).
  Span<const int> IncidentEdgeIds(int v) const {
    return csr_incident_.subspan(
        static_cast<std::size_t>(offsets_[v]),
        static_cast<std::size_t>(SliceLength(v)));
  }

  // Raw CSR views (serialization, equivalence tests): the n+1 prefix sums
  // and the two flat 2m arrays documented at the top of this file.
  Span<const int> CsrOffsets() const { return offsets_; }
  Span<const int> CsrNeighbors() const { return csr_neighbors_; }
  Span<const int> CsrIncidentEdgeIds() const { return csr_incident_; }

  // Result of ApplyEdgeDelta: the patched graph plus the normalized,
  // sorted list of edges that were actually new. Defined after the class
  // (it holds a Graph by value).
  struct EdgeDelta;

  // Streaming update path: returns a new graph with the insert batch
  // merged in (this graph is unchanged — readers keep serving it).
  // Endpoints are normalized; in-batch repeats and edges already present
  // are counted in `duplicates` and otherwise ignored. Self-loops and
  // out-of-range endpoints reject the whole batch with InvalidArgument —
  // this is a data-plane entry point (serve/add_edges), so bad input must
  // refuse, not CHECK. The merge is one pass over the two sorted edge
  // lists plus the usual CSR build: O(n + m + |batch| log |batch|). The
  // patched graph is always heap-backed, whatever this graph's backing.
  Result<EdgeDelta> ApplyEdgeDelta(
      const std::vector<std::pair<int, int>>& inserts) const;

  // Resident heap footprint of this graph in bytes (edge list + CSR
  // arrays, capacity-based; 0 bytes of array storage for a mapped graph).
  // Telemetry for the scale benches; not an allocator measurement.
  std::size_t MemoryBytes() const;

  // Bytes of the mapped NDPG v2 file backing this graph; 0 when
  // heap-backed. Mapped bytes are shared, demand-paged, and evictable —
  // the resident cost of a mapped graph is whatever subset of these pages
  // queries have touched, not this total.
  std::size_t MappedBytes() const { return mapped_bytes_; }

  bool IsMapped() const { return mapped_bytes_ != 0; }

 private:
  struct SortedUniqueTag {};
  struct HeapStorage;

  Graph(int num_vertices, std::vector<Edge> edges, SortedUniqueTag);

  // Points the view spans at a freshly built heap backing.
  void AdoptHeapStorage(std::shared_ptr<const HeapStorage> storage);

  int SliceLength(int v) const { return offsets_[v + 1] - offsets_[v]; }

  // The shared immutable backing (HeapStorage or MmapRegion). Never null;
  // all the spans below point into it, so copies of a Graph share one
  // backing and a view stays valid while any copy lives.
  std::shared_ptr<const void> storage_;
  std::size_t heap_bytes_ = 0;
  std::size_t mapped_bytes_ = 0;
  int num_vertices_ = 0;
  Span<const Edge> edges_;
  Span<const int> offsets_;
  Span<const int> csr_neighbors_;
  Span<const int> csr_incident_;
};

// `added` is what the incremental ExtensionFamily maintenance consumes —
// duplicates of resident edges are filtered out so downstream delta
// analysis never dirties a component over an edge that changed nothing.
struct Graph::EdgeDelta {
  Graph graph;
  std::vector<Edge> added;
  int duplicates = 0;  // inserts already present (or repeated in-batch)
};

// Incremental construction helper. Ignores duplicate edges.
class GraphBuilder {
 public:
  explicit GraphBuilder(int num_vertices) : num_vertices_(num_vertices) {}

  // Pre-sizes the internal edge list and dedup set for `expected_edges`
  // insertions, so building million-edge graphs does not rehash/regrow
  // repeatedly. A hint, not a cap.
  void ReserveEdges(int expected_edges);

  // Adds an undirected edge; returns false if it was already present or is a
  // self-loop (self-loops are rejected, not CHECKed, so randomized
  // generators can call this unconditionally). Out-of-range endpoints, by
  // contrast, are programmer errors and CHECK-fail.
  //
  // If ReserveEdges was not called, the first insertion reserves capacity
  // for num_vertices() edges — the right order of magnitude for the sparse
  // graphs this library serves.
  bool AddEdge(int u, int v);

  // Appends a fresh isolated vertex and returns its id.
  int AddVertex();

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  Graph Build() &&;

 private:
  static uint64_t Key(int u, int v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(v);
  }

  int num_vertices_ = 0;
  bool reserved_ = false;
  std::vector<std::pair<int, int>> edges_;
  std::unordered_set<uint64_t> seen_;
};

}  // namespace nodedp

#endif  // NODEDP_GRAPH_GRAPH_H_

// Core immutable undirected graph type.
//
// Graphs in this library are simple (no self-loops, no parallel edges),
// undirected, and unweighted, matching the database model of the paper
// (Section 1.1): vertices are individuals, edges are relationships.
//
// A Graph is immutable after construction. Use GraphBuilder for incremental
// construction, or the factory functions in graph/generators.h. Vertices are
// dense integers [0, NumVertices()). Edges are normalized with u < v and
// stored both as an edge list (the LP variables of Definition 3.1 are indexed
// by this list) and as sorted adjacency lists.

#ifndef NODEDP_GRAPH_GRAPH_H_
#define NODEDP_GRAPH_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace nodedp {

// A normalized undirected edge with endpoints u < v.
struct Edge {
  int u = 0;
  int v = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return (a.u != b.u) ? a.u < b.u : a.v < b.v;
  }
};

class Graph {
 public:
  // Empty graph with zero vertices.
  Graph() = default;

  // Builds a graph on `num_vertices` vertices from an edge list. Endpoints
  // are normalized (u < v); duplicate edges are collapsed; self-loops are
  // rejected with a CHECK. Endpoints must be in [0, num_vertices).
  Graph(int num_vertices, std::vector<std::pair<int, int>> edge_pairs);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  int NumVertices() const { return num_vertices_; }
  int NumEdges() const { return static_cast<int>(edges_.size()); }

  // Edge list in sorted normalized order. Index into this list is the
  // canonical edge id used by the forest-polytope LP.
  const std::vector<Edge>& Edges() const { return edges_; }
  const Edge& EdgeAt(int edge_id) const { return edges_[edge_id]; }

  // Sorted neighbor list of `v`.
  const std::vector<int>& Neighbors(int v) const { return adjacency_[v]; }
  int Degree(int v) const { return static_cast<int>(adjacency_[v].size()); }

  // Largest vertex degree; 0 for edgeless graphs.
  int MaxDegree() const;

  bool HasEdge(int u, int v) const;

  // Id of edge {u, v} in Edges(), or -1 if absent.
  int EdgeId(int u, int v) const;

  // Ids of the edges incident to `v` (the set δ(v) of Definition 3.1).
  const std::vector<int>& IncidentEdgeIds(int v) const {
    return incident_edge_ids_[v];
  }

 private:
  static uint64_t EdgeKey(int u, int v) {
    return (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(v);
  }

  int num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<std::vector<int>> incident_edge_ids_;
  std::unordered_map<uint64_t, int> edge_id_by_key_;
};

// Incremental construction helper. Ignores duplicate edges.
class GraphBuilder {
 public:
  explicit GraphBuilder(int num_vertices) : num_vertices_(num_vertices) {}

  // Adds an undirected edge; returns false if it was already present or is a
  // self-loop (self-loops are rejected, not CHECKed, so randomized
  // generators can call this unconditionally). Out-of-range endpoints, by
  // contrast, are programmer errors and CHECK-fail.
  bool AddEdge(int u, int v);

  // Appends a fresh isolated vertex and returns its id.
  int AddVertex();

  int num_vertices() const { return num_vertices_; }

  Graph Build() &&;

 private:
  static uint64_t Key(int u, int v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(v);
  }

  int num_vertices_ = 0;
  std::vector<std::pair<int, int>> edges_;
  std::unordered_map<uint64_t, bool> seen_;
};

}  // namespace nodedp

#endif  // NODEDP_GRAPH_GRAPH_H_

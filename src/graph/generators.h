// Graph generators for tests, examples, and experiment workloads.
//
// The random families are the ones the paper analyzes (Section 1.1.4):
// Erdős–Rényi G(n, p) and random geometric graphs; plus families from the
// motivating applications (entity-resolution clique unions, scale-free
// social networks) and structured families with known Δ* used to validate
// Theorem 1.3.

#ifndef NODEDP_GRAPH_GENERATORS_H_
#define NODEDP_GRAPH_GENERATORS_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace nodedp {
namespace gen {

// n isolated vertices.
Graph Empty(int n);

// Complete graph K_n.
Graph Complete(int n);

// Path on n vertices (n - 1 edges); n = 0 allowed.
Graph Path(int n);

// Cycle on n >= 3 vertices.
Graph Cycle(int n);

// Star with `leaves` leaves: vertex 0 is the center; leaves+1 vertices.
Graph Star(int leaves);

// rows x cols grid graph.
Graph Grid(int rows, int cols);

// Caterpillar: a spine path of `spine` vertices, each with `legs` pendant
// leaves. Has a spanning tree of max degree legs + 2.
Graph Caterpillar(int spine, int legs);

// Erdős–Rényi G(n, p): each pair independently an edge with probability p.
Graph ErdosRenyi(int n, double p, Rng& rng);

// Random geometric graph: n uniform points in the unit square, edge iff
// Euclidean distance <= radius. By the paper's Section 1.1.4 such graphs
// contain no induced 6-star, so s(G) <= 5 and Δ* <= 6.
Graph RandomGeometric(int n, double radius, Rng& rng);

// Same, also returning the sampled positions (for example applications).
Graph RandomGeometricWithPositions(int n, double radius, Rng& rng,
                                   std::vector<std::pair<double, double>>*
                                       positions);

// Barabási–Albert preferential attachment: starts from a clique on
// `edges_per_step` vertices, each new vertex attaches to `edges_per_step`
// existing vertices sampled proportionally to degree.
Graph BarabasiAlbert(int n, int edges_per_step, Rng& rng);

// Disjoint union of cliques with the given sizes. The number of connected
// components equals sizes.size(): the entity-resolution workload from the
// paper's introduction (each entity = one clique of duplicate records).
Graph CliqueUnion(const std::vector<int>& sizes);

// Entity-resolution workload: `num_entities` entities, each with
// Uniform{1..max_records} duplicate records forming a clique.
Graph RandomEntityGraph(int num_entities, int max_records, Rng& rng);

// Random spanning-forest-shaped graph with max degree <= max_degree:
// vertices are attached one by one to a uniformly random earlier vertex
// whose degree is still below max_degree; with probability `extra_edge_p`
// per vertex, one extra non-tree edge is added (still respecting nothing —
// extra edges may exceed max_degree in G, but the generating tree itself
// witnesses Δ* <= max_degree). Produces connected graphs with small Δ*.
Graph RandomTreeLike(int n, int max_degree, double extra_edge_p, Rng& rng);

// Disjoint union of arbitrary graphs, relabeling vertices consecutively.
Graph DisjointUnion(const std::vector<Graph>& parts);

}  // namespace gen
}  // namespace nodedp

#endif  // NODEDP_GRAPH_GENERATORS_H_

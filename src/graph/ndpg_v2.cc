#include "graph/ndpg_v2.h"

#include <cstring>
#include <string>

#include "graph/graph.h"

namespace nodedp {
namespace ndpgv2 {

namespace {

constexpr char kMagic[4] = {'N', 'D', 'P', 'G'};

// 64-bit finalizer (murmur3-style): every input bit diffuses into every
// output bit, so single-byte corruption anywhere in a section flips the
// checksum with overwhelming probability.
std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

const char* SectionName(int section) {
  switch (section) {
    case kEdges:
      return "edges";
    case kOffsets:
      return "offsets";
    case kNeighbors:
      return "neighbors";
    case kIncident:
      return "incident_edge_ids";
    default:
      return "unknown";
  }
}

void StreamingHash::Update(const unsigned char* data, std::size_t size) {
  total_ += size;
  // Drain a partial word left by a previous chunk boundary first, so the
  // digest depends only on the byte stream, never on the chunking.
  if (num_pending_ > 0) {
    while (size > 0 && num_pending_ < 8) {
      pending_[num_pending_++] = *data++;
      --size;
    }
    if (num_pending_ < 8) return;
    state_ = Mix(state_ ^ GetU64(pending_));
    num_pending_ = 0;
  }
  while (size >= 8) {
    state_ = Mix(state_ ^ GetU64(data));
    data += 8;
    size -= 8;
  }
  while (size > 0 && num_pending_ < 8) {
    pending_[num_pending_++] = *data++;
    --size;
  }
}

std::uint64_t StreamingHash::Finish() const {
  std::uint64_t h = state_;
  if (num_pending_ > 0) {
    std::uint64_t tail = 0;
    for (std::size_t i = 0; i < num_pending_; ++i) {
      tail |= static_cast<std::uint64_t>(pending_[i]) << (8 * i);
    }
    h = Mix(h ^ tail);
  }
  return Mix(h ^ total_);
}

std::uint64_t HashBytes(const void* data, std::size_t size) {
  StreamingHash hash;
  hash.Update(static_cast<const unsigned char*>(data), size);
  return hash.Finish();
}

std::uint64_t ExpectedSectionLength(std::int64_t num_vertices,
                                    std::int64_t num_edges, int section) {
  const std::uint64_t n = static_cast<std::uint64_t>(num_vertices);
  const std::uint64_t m = static_cast<std::uint64_t>(num_edges);
  switch (section) {
    case kEdges:
      return m * 8;
    case kOffsets:
      return (n + 1) * 4;
    case kNeighbors:
    case kIncident:
      return 2 * m * 4;
    default:
      return 0;
  }
}

Header CanonicalHeader(std::int64_t num_vertices, std::int64_t num_edges) {
  Header header;
  header.num_vertices = num_vertices;
  header.num_edges = num_edges;
  std::uint64_t cursor = kHeaderBytes;
  for (int s = 0; s < kNumSections; ++s) {
    header.sections[s].offset = cursor;
    header.sections[s].length =
        ExpectedSectionLength(num_vertices, num_edges, s);
    cursor = AlignUp(cursor + header.sections[s].length);
  }
  return header;
}

std::uint64_t FileSizeBytes(const Header& header) {
  const SectionDesc& last = header.sections[kNumSections - 1];
  return last.offset + last.length;
}

void EncodeHeader(const Header& header, unsigned char* out) {
  std::memset(out, 0, kHeaderBytes);
  std::memcpy(out, kMagic, 4);
  PutU32(out + 4, kVersion);
  PutU64(out + 8, static_cast<std::uint64_t>(header.num_vertices));
  PutU64(out + 16, static_cast<std::uint64_t>(header.num_edges));
  for (int s = 0; s < kNumSections; ++s) {
    unsigned char* p = out + 24 + 24 * s;
    PutU64(p, header.sections[s].offset);
    PutU64(p + 8, header.sections[s].length);
    PutU64(p + 16, header.sections[s].checksum);
  }
  PutU64(out + kHeaderBytes - 8, HashBytes(out, kHeaderBytes - 8));
}

Result<Header> ParseHeader(const unsigned char* data, std::size_t available,
                           std::uint64_t file_size) {
  if (available < kHeaderBytes) {
    return Status::IoError("ndpg v2: truncated header (" +
                           std::to_string(available) + " of " +
                           std::to_string(kHeaderBytes) + " bytes)");
  }
  if (std::memcmp(data, kMagic, 4) != 0) {
    return Status::IoError("ndpg v2: bad magic (not an NDPG file)");
  }
  const std::uint32_t version = GetU32(data + 4);
  if (version != kVersion) {
    return Status::IoError("ndpg v2: unsupported format version " +
                           std::to_string(version) + " (this reader expects " +
                           std::to_string(kVersion) + ")");
  }
  // The header checksum comes before any interpretation of the counts or
  // the section table: a corrupted header must not steer the bounds checks
  // that are supposed to contain it.
  const std::uint64_t stored = GetU64(data + kHeaderBytes - 8);
  const std::uint64_t computed = HashBytes(data, kHeaderBytes - 8);
  if (stored != computed) {
    return Status::IoError("ndpg v2: header checksum mismatch");
  }
  Header header;
  header.num_vertices = static_cast<std::int64_t>(GetU64(data + 8));
  header.num_edges = static_cast<std::int64_t>(GetU64(data + 16));
  if (header.num_vertices < 0 || header.num_vertices > Graph::kMaxVertices) {
    return Status::IoError("ndpg v2: vertex count out of int range: " +
                           std::to_string(header.num_vertices));
  }
  if (header.num_edges < 0 || header.num_edges > Graph::kMaxEdges) {
    return Status::IoError("ndpg v2: edge count out of int range: " +
                           std::to_string(header.num_edges));
  }
  const Header canonical =
      CanonicalHeader(header.num_vertices, header.num_edges);
  for (int s = 0; s < kNumSections; ++s) {
    const unsigned char* p = data + 24 + 24 * s;
    header.sections[s].offset = GetU64(p);
    header.sections[s].length = GetU64(p + 8);
    header.sections[s].checksum = GetU64(p + 16);
    const SectionDesc& got = header.sections[s];
    const SectionDesc& want = canonical.sections[s];
    if (got.offset % kSectionAlign != 0) {
      return Status::IoError(std::string("ndpg v2: section '") +
                             SectionName(s) + "' offset " +
                             std::to_string(got.offset) +
                             " is not 64-byte aligned");
    }
    if (got.offset != want.offset || got.length != want.length) {
      return Status::IoError(
          std::string("ndpg v2: section '") + SectionName(s) +
          "' has non-canonical layout (offset " + std::to_string(got.offset) +
          " length " + std::to_string(got.length) + ", expected offset " +
          std::to_string(want.offset) + " length " +
          std::to_string(want.length) + ")");
    }
    if (file_size != 0 && got.offset + got.length > file_size) {
      return Status::IoError(std::string("ndpg v2: section '") +
                             SectionName(s) + "' overruns the file (needs " +
                             std::to_string(got.offset + got.length) +
                             " bytes, file has " + std::to_string(file_size) +
                             ")");
    }
  }
  return header;
}

}  // namespace ndpgv2
}  // namespace nodedp

// Induced subgraphs, vertex insertion/removal, and node distance.
//
// Node-neighboring graphs (Definition 1.1) differ by the removal/insertion
// of one vertex with all its incident edges; node distance d(G, G') is the
// minimum number of such modifications. For an induced subgraph H ⪯ G on a
// known vertex subset, d(G, H) = |V(G)| - |V(H)|, which is what every proof
// in the paper uses.

#ifndef NODEDP_GRAPH_SUBGRAPH_H_
#define NODEDP_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace nodedp {

// Induced subgraph together with the vertex mapping back to the host graph.
struct InducedSubgraph {
  Graph graph;
  // original_vertex[i] = host-graph id of subgraph vertex i (ascending).
  std::vector<int> original_vertex;
};

// Subgraph of g induced by `vertices` (host-graph ids; duplicates are
// CHECKed). Vertices are relabeled 0..k-1 in ascending host order.
InducedSubgraph Induce(const Graph& g, std::vector<int> vertices);

// Fast path for callers that already hold `vertices` sorted ascending and
// duplicate-free (DCHECKed) and do not need the mapping back: skips the
// sort, the duplicate scan, and the vertex-list copy. This is what the
// sharded ExtensionFamily construction uses to induce each component
// straight off its ComponentLabels bucket.
Graph InduceSortedGraph(const Graph& g, const std::vector<int>& vertices);

// G \ {v}: the subgraph induced by all vertices other than v (a
// node-neighbor of g). Vertices above v shift down by one.
Graph RemoveVertex(const Graph& g, int v);

// G' obtained from g by inserting one new vertex (id = NumVertices())
// adjacent to `neighbors` (a node-neighbor of g).
Graph AddVertex(const Graph& g, const std::vector<int>& neighbors);

// Subgraph induced by the bitmask `mask` over vertices 0..n-1 (n <= 63).
// Used by small-n exhaustive procedures (down-sensitivity brute force,
// Lemma 5.2 witnesses).
InducedSubgraph InduceByMask(const Graph& g, uint64_t mask);

}  // namespace nodedp

#endif  // NODEDP_GRAPH_SUBGRAPH_H_

#include "graph/graph.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>
#include <utility>

#include "graph/ndpg_v2.h"
#include "util/check.h"
#include "util/mmap_file.h"

namespace nodedp {

namespace {

// The mmap backing serves file bytes as the in-memory arrays directly,
// which is only the identity transform on little-endian hosts.
bool HostIsLittleEndian() {
  const std::uint32_t probe = 1;
  return *reinterpret_cast<const unsigned char*>(&probe) == 1;
}

// Builds the CSR arrays from `edges` (sorted, unique, normalized).
void BuildCsr(int num_vertices, const std::vector<Edge>& edges,
              std::vector<int>* offsets, std::vector<int>* neighbors,
              std::vector<int>* incident) {
  // Counting pass: (*offsets)[v + 1] accumulates deg(v), then a prefix sum
  // turns counts into slice starts.
  offsets->assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    ++(*offsets)[e.u + 1];
    ++(*offsets)[e.v + 1];
  }
  for (int v = 0; v < num_vertices; ++v) (*offsets)[v + 1] += (*offsets)[v];

  // Fill pass. Edges are sorted by (u, v), so vertex w receives first its
  // lower neighbors (from edges (u, w), u ascending) and then its higher
  // neighbors (from edges (w, v), v ascending): every slice comes out
  // sorted without a per-vertex sort.
  neighbors->resize(2 * edges.size());
  incident->resize(2 * edges.size());
  std::vector<int> cursor(offsets->begin(), offsets->end() - 1);
  for (int id = 0; id < static_cast<int>(edges.size()); ++id) {
    const Edge& e = edges[id];
    (*neighbors)[cursor[e.u]] = e.v;
    (*incident)[cursor[e.u]++] = id;
    (*neighbors)[cursor[e.v]] = e.u;
    (*incident)[cursor[e.v]++] = id;
  }
}

}  // namespace

// Heap backing: the owned arrays every constructor builds into. Shared
// (via shared_ptr) between copies of a Graph.
struct Graph::HeapStorage {
  std::vector<Edge> edges;
  std::vector<int> offsets = {0};
  std::vector<int> neighbors;
  std::vector<int> incident;

  std::size_t CapacityBytes() const {
    return edges.capacity() * sizeof(Edge) +
           offsets.capacity() * sizeof(int) +
           neighbors.capacity() * sizeof(int) +
           incident.capacity() * sizeof(int);
  }
};

void Graph::AdoptHeapStorage(std::shared_ptr<const HeapStorage> storage) {
  heap_bytes_ = storage->CapacityBytes();
  mapped_bytes_ = 0;
  edges_ = Span<const Edge>(storage->edges.data(), storage->edges.size());
  offsets_ = Span<const int>(storage->offsets.data(), storage->offsets.size());
  csr_neighbors_ =
      Span<const int>(storage->neighbors.data(), storage->neighbors.size());
  csr_incident_ =
      Span<const int>(storage->incident.data(), storage->incident.size());
  storage_ = std::move(storage);
}

Graph::Graph() { AdoptHeapStorage(std::make_shared<HeapStorage>()); }

Graph::Graph(int num_vertices, std::vector<std::pair<int, int>> edge_pairs) {
  NODEDP_CHECK_GE(num_vertices, 0);
  std::vector<Edge> edges;
  edges.reserve(edge_pairs.size());
  for (auto& [a, b] : edge_pairs) {
    NODEDP_CHECK_MSG(a != b, "self-loop at vertex " << a);
    NODEDP_CHECK_GE(a, 0);
    NODEDP_CHECK_GE(b, 0);
    NODEDP_CHECK_LT(a, num_vertices);
    NODEDP_CHECK_LT(b, num_vertices);
    if (a > b) std::swap(a, b);
    edges.push_back(Edge{a, b});
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  *this = Graph(num_vertices, std::move(edges), SortedUniqueTag{});
}

Graph::Graph(int num_vertices, std::vector<Edge> edges, SortedUniqueTag)
    : num_vertices_(num_vertices) {
  NODEDP_CHECK_GE(num_vertices, 0);
#ifndef NDEBUG
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    NODEDP_DCHECK(0 <= e.u && e.u < e.v && e.v < num_vertices_);
    NODEDP_DCHECK(i == 0 || edges[i - 1] < e);
  }
#endif
  auto storage = std::make_shared<HeapStorage>();
  storage->edges = std::move(edges);
  BuildCsr(num_vertices_, storage->edges, &storage->offsets,
           &storage->neighbors, &storage->incident);
  AdoptHeapStorage(std::move(storage));
}

Graph Graph::FromSortedEdges(int num_vertices, std::vector<Edge> edges) {
  return Graph(num_vertices, std::move(edges), SortedUniqueTag{});
}

Result<Graph> Graph::TryFromSortedEdges(std::int64_t num_vertices,
                                        std::vector<Edge> edges) {
  if (num_vertices < 0 || num_vertices > kMaxVertices) {
    return Status::InvalidArgument(
        "vertex count out of int range: " + std::to_string(num_vertices));
  }
  if (static_cast<std::int64_t>(edges.size()) > kMaxEdges) {
    return Status::InvalidArgument(
        "edge count out of int range: " + std::to_string(edges.size()));
  }
  return FromSortedEdges(static_cast<int>(num_vertices), std::move(edges));
}

Result<Graph> Graph::FromMmap(const std::string& path, bool verify_checksums) {
  if (!HostIsLittleEndian()) {
    return Status::Internal(
        "mmap-backed graphs require a little-endian host (use the heap "
        "reader in graph_io instead)");
  }
  Result<MmapRegion> opened = MmapRegion::OpenReadOnly(path);
  if (!opened.ok()) return opened.status();
  auto region = std::make_shared<MmapRegion>(std::move(*opened));
  const unsigned char* base = region->data();
  const std::size_t file_size = region->size();
  const Result<ndpgv2::Header> header =
      ndpgv2::ParseHeader(base, file_size, file_size);
  if (!header.ok()) return header.status();
  if (verify_checksums) {
    // One sequential pass; tell the kernel so read-ahead works for it.
    region->AdviseSequential();
    for (int s = 0; s < ndpgv2::kNumSections; ++s) {
      const ndpgv2::SectionDesc& section = header->sections[s];
      const std::uint64_t computed = ndpgv2::HashBytes(
          base + section.offset, static_cast<std::size_t>(section.length));
      if (computed != section.checksum) {
        return Status::IoError(std::string("ndpg v2: section '") +
                               ndpgv2::SectionName(s) +
                               "' checksum mismatch");
      }
    }
  }

  const int n = static_cast<int>(header->num_vertices);
  const std::size_t m = static_cast<std::size_t>(header->num_edges);
  Graph g;
  g.num_vertices_ = n;
  g.edges_ = Span<const Edge>(
      reinterpret_cast<const Edge*>(base +
                                    header->sections[ndpgv2::kEdges].offset),
      m);
  g.offsets_ = Span<const int>(
      reinterpret_cast<const int*>(base +
                                   header->sections[ndpgv2::kOffsets].offset),
      static_cast<std::size_t>(n) + 1);
  g.csr_neighbors_ = Span<const int>(
      reinterpret_cast<const int*>(
          base + header->sections[ndpgv2::kNeighbors].offset),
      2 * m);
  g.csr_incident_ = Span<const int>(
      reinterpret_cast<const int*>(
          base + header->sections[ndpgv2::kIncident].offset),
      2 * m);
  // O(1) CSR boundary invariants — the cheap fail-closed slice of the full
  // validation the heap reader performs (which also cross-checks every CSR
  // entry against the edge list).
  if (g.offsets_[0] != 0 ||
      g.offsets_[static_cast<std::size_t>(n)] != static_cast<int>(2 * m)) {
    return Status::IoError(
        "ndpg v2: CSR offsets boundary invariant violated (offsets[0] = " +
        std::to_string(g.offsets_[0]) + ", offsets[n] = " +
        std::to_string(g.offsets_[static_cast<std::size_t>(n)]) +
        ", expected 0 and " + std::to_string(2 * m) + ")");
  }
  region->AdviseRandom();
  g.heap_bytes_ = 0;
  g.mapped_bytes_ = file_size;
  g.storage_ = std::move(region);
  return g;
}

int Graph::MaxDegree() const {
  int best = 0;
  for (int v = 0; v < num_vertices_; ++v) {
    best = std::max(best, SliceLength(v));
  }
  return best;
}

int Graph::EdgeId(int u, int v) const {
  if (u == v) return -1;
  if (u < 0 || v < 0 || u >= num_vertices_ || v >= num_vertices_) return -1;
  // Search the shorter of the two sorted slices.
  const int base = Degree(u) <= Degree(v) ? u : v;
  const int target = base == u ? v : u;
  const int* first = csr_neighbors_.data() + offsets_[base];
  const int* last = csr_neighbors_.data() + offsets_[base + 1];
  const int* it = std::lower_bound(first, last, target);
  if (it == last || *it != target) return -1;
  return csr_incident_[it - csr_neighbors_.data()];
}

Result<Graph::EdgeDelta> Graph::ApplyEdgeDelta(
    const std::vector<std::pair<int, int>>& inserts) const {
  // Validate the whole batch before touching anything: a data-plane update
  // either applies completely or refuses completely.
  std::vector<Edge> batch;
  batch.reserve(inserts.size());
  for (const auto& [a, b] : inserts) {
    if (a == b) {
      return Status::InvalidArgument("edge delta contains a self-loop at " +
                                     std::to_string(a));
    }
    if (a < 0 || b < 0 || a >= num_vertices_ || b >= num_vertices_) {
      return Status::InvalidArgument(
          "edge delta endpoint out of range: (" + std::to_string(a) + ", " +
          std::to_string(b) + ") on " + std::to_string(num_vertices_) +
          " vertices");
    }
    batch.push_back(a < b ? Edge{a, b} : Edge{b, a});
  }
  std::sort(batch.begin(), batch.end());
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());

  EdgeDelta delta;
  delta.duplicates = static_cast<int>(inserts.size());
  delta.added.reserve(batch.size());
  for (const Edge& e : batch) {
    if (!HasEdge(e.u, e.v)) delta.added.push_back(e);
  }
  delta.duplicates -= static_cast<int>(delta.added.size());
  if (static_cast<std::int64_t>(edges_.size()) +
          static_cast<std::int64_t>(delta.added.size()) >
      kMaxEdges) {
    return Status::InvalidArgument("edge delta would exceed the edge cap");
  }
  if (delta.added.empty()) {
    // Pure-duplicate batch: the graph is unchanged; hand back a copy so
    // callers can treat the result uniformly.
    delta.graph = *this;
    return delta;
  }

  std::vector<Edge> merged;
  merged.reserve(edges_.size() + delta.added.size());
  std::merge(edges_.begin(), edges_.end(), delta.added.begin(),
             delta.added.end(), std::back_inserter(merged));
  delta.graph = FromSortedEdges(num_vertices_, std::move(merged));
  return delta;
}

std::size_t Graph::MemoryBytes() const { return heap_bytes_; }

void GraphBuilder::ReserveEdges(int expected_edges) {
  NODEDP_CHECK_GE(expected_edges, 0);
  reserved_ = true;
  edges_.reserve(static_cast<std::size_t>(expected_edges));
  seen_.reserve(static_cast<std::size_t>(expected_edges));
}

bool GraphBuilder::AddEdge(int u, int v) {
  NODEDP_CHECK_GE(u, 0);
  NODEDP_CHECK_GE(v, 0);
  NODEDP_CHECK_LT(u, num_vertices_);
  NODEDP_CHECK_LT(v, num_vertices_);
  if (u == v) return false;
  // Loud backstop against int overflow of edge ids; the Status-returning
  // guards live in the ingestion paths (graph_io header checks,
  // Graph::TryFromSortedEdges), which reject oversized inputs before any
  // AddEdge loop could get here.
  NODEDP_CHECK_LT(static_cast<std::int64_t>(edges_.size()), Graph::kMaxEdges);
  if (!reserved_) ReserveEdges(num_vertices_);
  if (!seen_.insert(Key(u, v)).second) return false;
  edges_.emplace_back(u, v);
  return true;
}

int GraphBuilder::AddVertex() { return num_vertices_++; }

Graph GraphBuilder::Build() && {
  return Graph(num_vertices_, std::move(edges_));
}

}  // namespace nodedp

#include "graph/graph.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>

#include "util/check.h"

namespace nodedp {

Graph::Graph(int num_vertices, std::vector<std::pair<int, int>> edge_pairs)
    : num_vertices_(num_vertices) {
  NODEDP_CHECK_GE(num_vertices, 0);
  edges_.reserve(edge_pairs.size());
  for (auto& [a, b] : edge_pairs) {
    NODEDP_CHECK_MSG(a != b, "self-loop at vertex " << a);
    NODEDP_CHECK_GE(a, 0);
    NODEDP_CHECK_GE(b, 0);
    NODEDP_CHECK_LT(a, num_vertices);
    NODEDP_CHECK_LT(b, num_vertices);
    if (a > b) std::swap(a, b);
    edges_.push_back(Edge{a, b});
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  BuildCsr();
}

Graph::Graph(int num_vertices, std::vector<Edge> edges, SortedUniqueTag)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  NODEDP_CHECK_GE(num_vertices, 0);
#ifndef NDEBUG
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    NODEDP_DCHECK(0 <= e.u && e.u < e.v && e.v < num_vertices_);
    NODEDP_DCHECK(i == 0 || edges_[i - 1] < e);
  }
#endif
  BuildCsr();
}

Graph Graph::FromSortedEdges(int num_vertices, std::vector<Edge> edges) {
  return Graph(num_vertices, std::move(edges), SortedUniqueTag{});
}

Result<Graph> Graph::TryFromSortedEdges(std::int64_t num_vertices,
                                        std::vector<Edge> edges) {
  if (num_vertices < 0 || num_vertices > kMaxVertices) {
    return Status::InvalidArgument(
        "vertex count out of int range: " + std::to_string(num_vertices));
  }
  if (static_cast<std::int64_t>(edges.size()) > kMaxEdges) {
    return Status::InvalidArgument(
        "edge count out of int range: " + std::to_string(edges.size()));
  }
  return FromSortedEdges(static_cast<int>(num_vertices), std::move(edges));
}

void Graph::BuildCsr() {
  // Counting pass: offsets_[v + 1] accumulates deg(v), then a prefix sum
  // turns counts into slice starts.
  offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (int v = 0; v < num_vertices_; ++v) offsets_[v + 1] += offsets_[v];

  // Fill pass. Edges are sorted by (u, v), so vertex w receives first its
  // lower neighbors (from edges (u, w), u ascending) and then its higher
  // neighbors (from edges (w, v), v ascending): every slice comes out
  // sorted without a per-vertex sort.
  csr_neighbors_.resize(2 * edges_.size());
  csr_incident_.resize(2 * edges_.size());
  std::vector<int> cursor(offsets_.begin(), offsets_.end() - 1);
  for (int id = 0; id < static_cast<int>(edges_.size()); ++id) {
    const Edge& e = edges_[id];
    csr_neighbors_[cursor[e.u]] = e.v;
    csr_incident_[cursor[e.u]++] = id;
    csr_neighbors_[cursor[e.v]] = e.u;
    csr_incident_[cursor[e.v]++] = id;
  }
}

int Graph::MaxDegree() const {
  int best = 0;
  for (int v = 0; v < num_vertices_; ++v) {
    best = std::max(best, SliceLength(v));
  }
  return best;
}

int Graph::EdgeId(int u, int v) const {
  if (u == v) return -1;
  if (u < 0 || v < 0 || u >= num_vertices_ || v >= num_vertices_) return -1;
  // Search the shorter of the two sorted slices.
  const int base = Degree(u) <= Degree(v) ? u : v;
  const int target = base == u ? v : u;
  const int* first = csr_neighbors_.data() + offsets_[base];
  const int* last = csr_neighbors_.data() + offsets_[base + 1];
  const int* it = std::lower_bound(first, last, target);
  if (it == last || *it != target) return -1;
  return csr_incident_[it - csr_neighbors_.data()];
}

Result<Graph::EdgeDelta> Graph::ApplyEdgeDelta(
    const std::vector<std::pair<int, int>>& inserts) const {
  // Validate the whole batch before touching anything: a data-plane update
  // either applies completely or refuses completely.
  std::vector<Edge> batch;
  batch.reserve(inserts.size());
  for (const auto& [a, b] : inserts) {
    if (a == b) {
      return Status::InvalidArgument("edge delta contains a self-loop at " +
                                     std::to_string(a));
    }
    if (a < 0 || b < 0 || a >= num_vertices_ || b >= num_vertices_) {
      return Status::InvalidArgument(
          "edge delta endpoint out of range: (" + std::to_string(a) + ", " +
          std::to_string(b) + ") on " + std::to_string(num_vertices_) +
          " vertices");
    }
    batch.push_back(a < b ? Edge{a, b} : Edge{b, a});
  }
  std::sort(batch.begin(), batch.end());
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());

  EdgeDelta delta;
  delta.duplicates = static_cast<int>(inserts.size());
  delta.added.reserve(batch.size());
  for (const Edge& e : batch) {
    if (!HasEdge(e.u, e.v)) delta.added.push_back(e);
  }
  delta.duplicates -= static_cast<int>(delta.added.size());
  if (static_cast<std::int64_t>(edges_.size()) +
          static_cast<std::int64_t>(delta.added.size()) >
      kMaxEdges) {
    return Status::InvalidArgument("edge delta would exceed the edge cap");
  }
  if (delta.added.empty()) {
    // Pure-duplicate batch: the graph is unchanged; hand back a copy so
    // callers can treat the result uniformly.
    delta.graph = *this;
    return delta;
  }

  std::vector<Edge> merged;
  merged.reserve(edges_.size() + delta.added.size());
  std::merge(edges_.begin(), edges_.end(), delta.added.begin(),
             delta.added.end(), std::back_inserter(merged));
  delta.graph = FromSortedEdges(num_vertices_, std::move(merged));
  return delta;
}

std::size_t Graph::MemoryBytes() const {
  return edges_.capacity() * sizeof(Edge) +
         offsets_.capacity() * sizeof(int) +
         csr_neighbors_.capacity() * sizeof(int) +
         csr_incident_.capacity() * sizeof(int);
}

void GraphBuilder::ReserveEdges(int expected_edges) {
  NODEDP_CHECK_GE(expected_edges, 0);
  reserved_ = true;
  edges_.reserve(static_cast<std::size_t>(expected_edges));
  seen_.reserve(static_cast<std::size_t>(expected_edges));
}

bool GraphBuilder::AddEdge(int u, int v) {
  NODEDP_CHECK_GE(u, 0);
  NODEDP_CHECK_GE(v, 0);
  NODEDP_CHECK_LT(u, num_vertices_);
  NODEDP_CHECK_LT(v, num_vertices_);
  if (u == v) return false;
  // Loud backstop against int overflow of edge ids; the Status-returning
  // guards live in the ingestion paths (graph_io header checks,
  // Graph::TryFromSortedEdges), which reject oversized inputs before any
  // AddEdge loop could get here.
  NODEDP_CHECK_LT(static_cast<std::int64_t>(edges_.size()), Graph::kMaxEdges);
  if (!reserved_) ReserveEdges(num_vertices_);
  if (!seen_.insert(Key(u, v)).second) return false;
  edges_.emplace_back(u, v);
  return true;
}

int GraphBuilder::AddVertex() { return num_vertices_++; }

Graph GraphBuilder::Build() && {
  return Graph(num_vertices_, std::move(edges_));
}

}  // namespace nodedp

#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace nodedp {

Graph::Graph(int num_vertices, std::vector<std::pair<int, int>> edge_pairs)
    : num_vertices_(num_vertices) {
  NODEDP_CHECK_GE(num_vertices, 0);
  edges_.reserve(edge_pairs.size());
  for (auto& [a, b] : edge_pairs) {
    NODEDP_CHECK_MSG(a != b, "self-loop at vertex " << a);
    NODEDP_CHECK_GE(a, 0);
    NODEDP_CHECK_GE(b, 0);
    NODEDP_CHECK_LT(a, num_vertices);
    NODEDP_CHECK_LT(b, num_vertices);
    if (a > b) std::swap(a, b);
    edges_.push_back(Edge{a, b});
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  adjacency_.assign(num_vertices_, {});
  incident_edge_ids_.assign(num_vertices_, {});
  edge_id_by_key_.reserve(edges_.size() * 2);
  for (int id = 0; id < static_cast<int>(edges_.size()); ++id) {
    const Edge& e = edges_[id];
    adjacency_[e.u].push_back(e.v);
    adjacency_[e.v].push_back(e.u);
    incident_edge_ids_[e.u].push_back(id);
    incident_edge_ids_[e.v].push_back(id);
    edge_id_by_key_.emplace(EdgeKey(e.u, e.v), id);
  }
  for (auto& nbrs : adjacency_) std::sort(nbrs.begin(), nbrs.end());
}

int Graph::MaxDegree() const {
  int best = 0;
  for (const auto& nbrs : adjacency_) {
    best = std::max(best, static_cast<int>(nbrs.size()));
  }
  return best;
}

bool Graph::HasEdge(int u, int v) const { return EdgeId(u, v) >= 0; }

int Graph::EdgeId(int u, int v) const {
  if (u == v) return -1;
  if (u > v) std::swap(u, v);
  if (u < 0 || v >= num_vertices_) return -1;
  const auto it = edge_id_by_key_.find(EdgeKey(u, v));
  return (it == edge_id_by_key_.end()) ? -1 : it->second;
}

bool GraphBuilder::AddEdge(int u, int v) {
  NODEDP_CHECK_GE(u, 0);
  NODEDP_CHECK_GE(v, 0);
  NODEDP_CHECK_LT(u, num_vertices_);
  NODEDP_CHECK_LT(v, num_vertices_);
  if (u == v) return false;
  auto [it, inserted] = seen_.emplace(Key(u, v), true);
  (void)it;
  if (!inserted) return false;
  edges_.emplace_back(u, v);
  return true;
}

int GraphBuilder::AddVertex() { return num_vertices_++; }

Graph GraphBuilder::Build() && {
  return Graph(num_vertices_, std::move(edges_));
}

}  // namespace nodedp

// Induced star number s(G): the largest k such that G contains an induced
// k-star (a center adjacent to k pairwise-non-adjacent leaves).
//
// By Lemma 1.7, s(G) equals the down-sensitivity DS_fsf(G) of the
// spanning-forest size, and by Lemma 1.6 it bounds the minimum max-degree
// spanning forest: Δ* <= s(G) + 1. Computing s(G) reduces, per center v, to
// a maximum independent set in the subgraph induced by N(v); we solve that
// with a bitset branch-and-bound with a popcount bound, plus a greedy lower
// bound fallback under a work limit (MIS is NP-hard; neighborhoods of
// real-world-scale hubs can be large).

#ifndef NODEDP_GRAPH_STAR_H_
#define NODEDP_GRAPH_STAR_H_

#include <cstdint>

#include "graph/graph.h"

namespace nodedp {

struct StarNumberOptions {
  // Budget on branch-and-bound node expansions, across all centers. When
  // exhausted the search keeps the best bound found so far and marks the
  // result inexact (it is still a valid lower bound on s(G)).
  int64_t work_limit = 50'000'000;
};

struct StarNumberResult {
  int value = 0;   // s(G), or a lower bound when !exact
  bool exact = true;
  int center = -1;  // a center achieving `value`; -1 for edgeless graphs
};

// s(G) over all centers. Edgeless graphs have s(G) = 0.
StarNumberResult InducedStarNumber(const Graph& g,
                                   const StarNumberOptions& options = {});

// Largest induced star centered at `v` (maximum independent set in G[N(v)]).
StarNumberResult InducedStarNumberAt(const Graph& g, int v,
                                     const StarNumberOptions& options = {});

// Greedy (min-degree) independent-set lower bound for the star at center v.
int GreedyInducedStarAt(const Graph& g, int v);

}  // namespace nodedp

#endif  // NODEDP_GRAPH_STAR_H_

#include "graph/subgraph.h"

#include <algorithm>

#include "util/check.h"

namespace nodedp {

namespace {

// Host-id -> subgraph-id scratch map, kept with the invariant that every
// entry is -1 between Induce calls. Growing it is O(n) once per thread;
// each call then touches only the k entries of its vertex subset, so
// inducing all components of a graph is O(n + m) total instead of
// O(n * #components). Thread-local because component decomposition runs
// under the parallel substrate.
thread_local std::vector<int> tls_new_id;

// Shared core of Induce / InduceSortedGraph. Requires `vertices` sorted
// ascending, duplicate-free, and in range (callers CHECK/DCHECK).
Graph InduceCore(const Graph& g, const std::vector<int>& vertices) {
  const int k = static_cast<int>(vertices.size());
  std::vector<int>& new_id = tls_new_id;
  if (static_cast<int>(new_id.size()) < g.NumVertices()) {
    new_id.resize(g.NumVertices(), -1);
  }
  for (int i = 0; i < k; ++i) new_id[vertices[i]] = i;

  // Relabeling is monotone (vertices are ascending), so sweeping kept
  // vertices in order and their sorted neighbor slices upward yields the
  // induced edge list already normalized, sorted, and duplicate-free —
  // ready for the CSR fast path with no intermediate pair list. The first
  // sweep only counts, so the edge array is allocated exactly once.
  std::size_t num_edges = 0;
  for (int i = 0; i < k; ++i) {
    const int v = vertices[i];
    for (int nbr : g.Neighbors(v)) {
      if (nbr > v && new_id[nbr] >= 0) ++num_edges;
    }
  }
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (int i = 0; i < k; ++i) {
    const int v = vertices[i];
    for (int nbr : g.Neighbors(v)) {
      if (nbr > v && new_id[nbr] >= 0) {
        edges.push_back(Edge{i, new_id[nbr]});
      }
    }
  }

  for (int v : vertices) new_id[v] = -1;  // restore the scratch invariant

  return Graph::FromSortedEdges(k, std::move(edges));
}

}  // namespace

InducedSubgraph Induce(const Graph& g, std::vector<int> vertices) {
  std::sort(vertices.begin(), vertices.end());
  NODEDP_CHECK_MSG(
      std::adjacent_find(vertices.begin(), vertices.end()) == vertices.end(),
      "duplicate vertex in induced subgraph");
  for (int v : vertices) {
    NODEDP_CHECK_GE(v, 0);
    NODEDP_CHECK_LT(v, g.NumVertices());
  }

  InducedSubgraph result;
  result.graph = InduceCore(g, vertices);
  result.original_vertex = std::move(vertices);
  return result;
}

Graph InduceSortedGraph(const Graph& g, const std::vector<int>& vertices) {
  NODEDP_DCHECK(std::is_sorted(vertices.begin(), vertices.end()));
  NODEDP_DCHECK(std::adjacent_find(vertices.begin(), vertices.end()) ==
                vertices.end());
  NODEDP_DCHECK(vertices.empty() ||
                (vertices.front() >= 0 && vertices.back() < g.NumVertices()));
  return InduceCore(g, vertices);
}

Graph RemoveVertex(const Graph& g, int v) {
  NODEDP_CHECK_GE(v, 0);
  NODEDP_CHECK_LT(v, g.NumVertices());
  std::vector<int> keep;
  keep.reserve(g.NumVertices() - 1);
  for (int u = 0; u < g.NumVertices(); ++u) {
    if (u != v) keep.push_back(u);
  }
  return Induce(g, std::move(keep)).graph;
}

Graph AddVertex(const Graph& g, const std::vector<int>& neighbors) {
  const int new_vertex = g.NumVertices();
  std::vector<std::pair<int, int>> edges;
  edges.reserve(g.NumEdges() + neighbors.size());
  for (const Edge& e : g.Edges()) edges.emplace_back(e.u, e.v);
  for (int nbr : neighbors) {
    NODEDP_CHECK_GE(nbr, 0);
    NODEDP_CHECK_LT(nbr, new_vertex);
    edges.emplace_back(nbr, new_vertex);
  }
  return Graph(new_vertex + 1, std::move(edges));
}

InducedSubgraph InduceByMask(const Graph& g, uint64_t mask) {
  NODEDP_CHECK_LE(g.NumVertices(), 63);
  std::vector<int> vertices;
  for (int v = 0; v < g.NumVertices(); ++v) {
    if ((mask >> v) & 1ULL) vertices.push_back(v);
  }
  return Induce(g, std::move(vertices));
}

}  // namespace nodedp

#include "graph/subgraph.h"

#include <algorithm>

#include "util/check.h"

namespace nodedp {

InducedSubgraph Induce(const Graph& g, std::vector<int> vertices) {
  std::sort(vertices.begin(), vertices.end());
  NODEDP_CHECK_MSG(
      std::adjacent_find(vertices.begin(), vertices.end()) == vertices.end(),
      "duplicate vertex in induced subgraph");
  std::vector<int> new_id(g.NumVertices(), -1);
  for (int i = 0; i < static_cast<int>(vertices.size()); ++i) {
    const int v = vertices[i];
    NODEDP_CHECK_GE(v, 0);
    NODEDP_CHECK_LT(v, g.NumVertices());
    new_id[v] = i;
  }
  std::vector<std::pair<int, int>> edges;
  for (const Edge& e : g.Edges()) {
    if (new_id[e.u] >= 0 && new_id[e.v] >= 0) {
      edges.emplace_back(new_id[e.u], new_id[e.v]);
    }
  }
  InducedSubgraph result;
  result.graph = Graph(static_cast<int>(vertices.size()), std::move(edges));
  result.original_vertex = std::move(vertices);
  return result;
}

Graph RemoveVertex(const Graph& g, int v) {
  NODEDP_CHECK_GE(v, 0);
  NODEDP_CHECK_LT(v, g.NumVertices());
  std::vector<int> keep;
  keep.reserve(g.NumVertices() - 1);
  for (int u = 0; u < g.NumVertices(); ++u) {
    if (u != v) keep.push_back(u);
  }
  return Induce(g, std::move(keep)).graph;
}

Graph AddVertex(const Graph& g, const std::vector<int>& neighbors) {
  const int new_vertex = g.NumVertices();
  std::vector<std::pair<int, int>> edges;
  edges.reserve(g.NumEdges() + neighbors.size());
  for (const Edge& e : g.Edges()) edges.emplace_back(e.u, e.v);
  for (int nbr : neighbors) {
    NODEDP_CHECK_GE(nbr, 0);
    NODEDP_CHECK_LT(nbr, new_vertex);
    edges.emplace_back(nbr, new_vertex);
  }
  return Graph(new_vertex + 1, std::move(edges));
}

InducedSubgraph InduceByMask(const Graph& g, uint64_t mask) {
  NODEDP_CHECK_LE(g.NumVertices(), 63);
  std::vector<int> vertices;
  for (int v = 0; v < g.NumVertices(); ++v) {
    if ((mask >> v) & 1ULL) vertices.push_back(v);
  }
  return Induce(g, std::move(vertices));
}

}  // namespace nodedp

// NDPG v2 on-disk layout, shared by the graph_io writer/reader and
// Graph::FromMmap. Full spec in docs/SERVING.md; the short version:
//
//   bytes 0..3     magic "NDPG"           (same as v1)
//   bytes 4..7     format version (u32)   — 2
//   bytes 8..15    num_vertices (i64)
//   bytes 16..23   num_edges (i64)
//   bytes 24..119  4 section descriptors x 24 bytes, canonical order
//                  edges / offsets / neighbors / incident, each
//                  { offset u64, length u64, checksum u64 }
//   bytes 120..127 header checksum (u64 over bytes 0..119)
//   byte 128..     the sections, each starting at a 64-byte-aligned
//                  offset in exactly the canonical order, zero-padded
//                  between sections
//
// Section payloads are little-endian:
//   edges      num_edges records of (u, v) as two u32, u < v, strictly
//              ascending — byte-identical to the v1 edge section
//   offsets    (num_vertices + 1) u32 CSR prefix sums
//   neighbors  2 * num_edges u32 neighbor ids
//   incident   2 * num_edges u32 incident edge ids
//
// The point of the layout: on a little-endian host the sections *are* the
// in-memory CSR arrays, so an mmap of the file serves queries zero-copy.
// Everything here is fail-closed — ParseHeader rejects bad magic, wrong
// version, out-of-range counts, non-canonical or misaligned section
// offsets, sections that overrun the file, and header-checksum mismatches.

#ifndef NODEDP_GRAPH_NDPG_V2_H_
#define NODEDP_GRAPH_NDPG_V2_H_

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace nodedp {
namespace ndpgv2 {

inline constexpr std::uint32_t kVersion = 2;
inline constexpr std::size_t kHeaderBytes = 128;
inline constexpr std::size_t kSectionAlign = 64;
inline constexpr int kNumSections = 4;

// Canonical section order; indexes into Header::sections.
enum SectionId : int {
  kEdges = 0,
  kOffsets = 1,
  kNeighbors = 2,
  kIncident = 3,
};

// Names for error messages, indexed by SectionId.
const char* SectionName(int section);

struct SectionDesc {
  std::uint64_t offset = 0;    // absolute byte offset, 64-byte aligned
  std::uint64_t length = 0;    // payload bytes (excludes padding)
  std::uint64_t checksum = 0;  // HashBytes over the payload
};

struct Header {
  std::int64_t num_vertices = 0;
  std::int64_t num_edges = 0;
  SectionDesc sections[kNumSections];
};

// ---------------------------------------------------------------------------
// Little-endian encode/decode, independent of host byte order.
// ---------------------------------------------------------------------------

inline void PutU32(unsigned char* p, std::uint32_t x) {
  p[0] = static_cast<unsigned char>(x);
  p[1] = static_cast<unsigned char>(x >> 8);
  p[2] = static_cast<unsigned char>(x >> 16);
  p[3] = static_cast<unsigned char>(x >> 24);
}

inline void PutU64(unsigned char* p, std::uint64_t x) {
  PutU32(p, static_cast<std::uint32_t>(x));
  PutU32(p + 4, static_cast<std::uint32_t>(x >> 32));
}

inline std::uint32_t GetU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t GetU64(const unsigned char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

// ---------------------------------------------------------------------------
// Checksums: a word-at-a-time mixing hash (8 bytes per multiply, so
// checksumming a section costs a small fraction of writing it). The
// streaming form exists so the writer can hash chunks as it encodes them;
// HashBytes(p, n) == StreamingHash fed the same bytes in any chunking.
// Byte-order independent (words are decoded little-endian).
// ---------------------------------------------------------------------------

class StreamingHash {
 public:
  void Update(const unsigned char* data, std::size_t size);
  std::uint64_t Finish() const;

 private:
  std::uint64_t state_ = 0x2545f4914f6cdd1dULL;
  std::uint64_t total_ = 0;
  unsigned char pending_[8] = {};
  std::size_t num_pending_ = 0;
};

std::uint64_t HashBytes(const void* data, std::size_t size);

// ---------------------------------------------------------------------------
// Layout arithmetic and header codec.
// ---------------------------------------------------------------------------

inline std::uint64_t AlignUp(std::uint64_t x) {
  return (x + (kSectionAlign - 1)) & ~static_cast<std::uint64_t>(
                                         kSectionAlign - 1);
}

// Payload length each section must have for the given counts.
std::uint64_t ExpectedSectionLength(std::int64_t num_vertices,
                                    std::int64_t num_edges, int section);

// Header with the canonical section offsets/lengths for the given counts;
// checksums zeroed (the writer fills them as it streams the sections).
Header CanonicalHeader(std::int64_t num_vertices, std::int64_t num_edges);

// Total file size implied by a canonical header.
std::uint64_t FileSizeBytes(const Header& header);

// Serializes `header` (including its checksum over bytes 0..119) into
// exactly kHeaderBytes bytes.
void EncodeHeader(const Header& header, unsigned char* out);

// Parses and validates kHeaderBytes of header. `available` is how many
// bytes the caller actually has (short reads fail closed as truncation);
// `file_size` is the total file size when known, or 0 for non-seekable
// streams (the bounds checks against it are skipped — truncation then
// surfaces as a short section read).
Result<Header> ParseHeader(const unsigned char* data, std::size_t available,
                           std::uint64_t file_size);

}  // namespace ndpgv2
}  // namespace nodedp

#endif  // NODEDP_GRAPH_NDPG_V2_H_

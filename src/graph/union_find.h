// Disjoint-set forest with union by size and path halving.
//
// Used for connected-component counting, spanning-forest extraction, and
// cycle detection in forest manipulation.

#ifndef NODEDP_GRAPH_UNION_FIND_H_
#define NODEDP_GRAPH_UNION_FIND_H_

#include <numeric>
#include <vector>

#include "util/check.h"

namespace nodedp {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n), size_(n, 1), num_sets_(n) {
    NODEDP_CHECK_GE(n, 0);
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    NODEDP_DCHECK(x >= 0 && x < static_cast<int>(parent_.size()));
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  // Merges the sets containing a and b; returns false if already merged.
  bool Union(int a, int b) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_sets_;
    return true;
  }

  bool Connected(int a, int b) { return Find(a) == Find(b); }

  // Size of the set containing x.
  int SetSize(int x) { return size_[Find(x)]; }

  // Number of disjoint sets remaining.
  int NumSets() const { return num_sets_; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int num_sets_;
};

}  // namespace nodedp

#endif  // NODEDP_GRAPH_UNION_FIND_H_

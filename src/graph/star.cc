#include "graph/star.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace nodedp {

namespace {

// Fixed-capacity dynamic bitset over k = number of neighborhood vertices.
class DynBitset {
 public:
  explicit DynBitset(int bits) : words_((bits + 63) / 64, 0), bits_(bits) {}

  void Set(int i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  bool Test(int i) const { return (words_[i >> 6] >> (i & 63)) & 1ULL; }
  void Clear(int i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  int Popcount() const {
    int total = 0;
    for (uint64_t w : words_) total += __builtin_popcountll(w);
    return total;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w) return true;
    }
    return false;
  }

  // this &= ~other
  void AndNot(const DynBitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  int CountAnd(const DynBitset& other) const {
    int total = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      total += __builtin_popcountll(words_[i] & other.words_[i]);
    }
    return total;
  }

  int FirstSet() const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i]) {
        return static_cast<int>(i * 64 + __builtin_ctzll(words_[i]));
      }
    }
    return -1;
  }

  int bits() const { return bits_; }

 private:
  std::vector<uint64_t> words_;
  int bits_;
};

struct MisSearch {
  const std::vector<DynBitset>* adjacency;
  int best = 0;
  int64_t work_remaining = 0;
  bool exhausted = false;

  void Run(DynBitset candidates, int current) {
    if (work_remaining-- <= 0) {
      exhausted = true;
      return;
    }
    if (current + candidates.Popcount() <= best) return;  // bound
    if (!candidates.Any()) {
      best = std::max(best, current);
      return;
    }
    // Pick the candidate with the most candidate-neighbors: including it
    // shrinks the problem fastest; if it has none, it is free to include.
    int pick = -1;
    int pick_degree = -1;
    for (int i = candidates.FirstSet(); i >= 0 && i < candidates.bits();
         ++i) {
      if (!candidates.Test(i)) continue;
      const int deg = (*adjacency)[i].CountAnd(candidates);
      if (deg > pick_degree) {
        pick_degree = deg;
        pick = i;
      }
    }
    // Include `pick`.
    DynBitset with = candidates;
    with.Clear(pick);
    with.AndNot((*adjacency)[pick]);
    Run(std::move(with), current + 1);
    if (exhausted) return;
    // Exclude `pick` — only a distinct subproblem if it had neighbors.
    if (pick_degree > 0) {
      DynBitset without = candidates;
      without.Clear(pick);
      Run(std::move(without), current);
    }
  }
};

// Maximum independent set inside g[N(center)], with budget accounting.
StarNumberResult StarAtCenter(const Graph& g, int center,
                              int64_t& work_budget) {
  const Span<const int> nbrs = g.Neighbors(center);
  const int k = static_cast<int>(nbrs.size());
  StarNumberResult result;
  result.center = center;
  if (k == 0) {
    result.value = 0;
    return result;
  }
  // Local adjacency among the neighbors.
  std::vector<DynBitset> local(k, DynBitset(k));
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (g.HasEdge(nbrs[i], nbrs[j])) {
        local[i].Set(j);
        local[j].Set(i);
      }
    }
  }
  DynBitset all(k);
  for (int i = 0; i < k; ++i) all.Set(i);

  MisSearch search;
  search.adjacency = &local;
  search.best = GreedyInducedStarAt(g, center);  // warm start
  search.work_remaining = work_budget;
  search.Run(std::move(all), 0);
  work_budget = std::max<int64_t>(0, search.work_remaining);
  result.value = search.best;
  result.exact = !search.exhausted;
  return result;
}

}  // namespace

int GreedyInducedStarAt(const Graph& g, int v) {
  const Span<const int> nbrs = g.Neighbors(v);
  // Repeatedly take the neighbor with the fewest remaining
  // neighbor-neighbors, then discard its adjacent candidates.
  std::vector<int> candidates(nbrs.begin(), nbrs.end());
  int count = 0;
  while (!candidates.empty()) {
    int best_idx = 0;
    int best_deg = g.NumVertices() + 1;
    for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
      int deg = 0;
      for (int other : candidates) {
        if (other != candidates[i] && g.HasEdge(candidates[i], other)) ++deg;
      }
      if (deg < best_deg) {
        best_deg = deg;
        best_idx = i;
      }
    }
    const int chosen = candidates[best_idx];
    ++count;
    std::vector<int> next;
    for (int other : candidates) {
      if (other != chosen && !g.HasEdge(chosen, other)) next.push_back(other);
    }
    candidates = std::move(next);
  }
  return count;
}

StarNumberResult InducedStarNumberAt(const Graph& g, int v,
                                     const StarNumberOptions& options) {
  NODEDP_CHECK_GE(v, 0);
  NODEDP_CHECK_LT(v, g.NumVertices());
  int64_t budget = options.work_limit;
  return StarAtCenter(g, v, budget);
}

StarNumberResult InducedStarNumber(const Graph& g,
                                   const StarNumberOptions& options) {
  StarNumberResult best;
  best.value = 0;
  best.exact = true;
  best.center = -1;
  int64_t budget = options.work_limit;

  // Process centers in decreasing degree order: high-degree centers give the
  // best chance of a large star, improving the bound used for pruning later
  // centers (any center with Degree(v) <= best.value cannot improve).
  std::vector<int> order(g.NumVertices());
  for (int v = 0; v < g.NumVertices(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&g](int a, int b) {
    return g.Degree(a) > g.Degree(b);
  });

  for (int v : order) {
    if (g.Degree(v) <= best.value) break;  // sorted: nothing better remains
    StarNumberResult at = StarAtCenter(g, v, budget);
    if (at.value > best.value) {
      best.value = at.value;
      best.center = v;
    }
    best.exact = best.exact && at.exact;
    if (budget <= 0) {
      best.exact = false;
      break;
    }
  }
  return best;
}

}  // namespace nodedp

#include "graph/graph_io.h"

#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "util/stringutil.h"

namespace nodedp {

void WriteEdgeList(const Graph& g, std::ostream& out) {
  out << g.NumVertices() << ' ' << g.NumEdges() << '\n';
  for (const Edge& e : g.Edges()) out << e.u << ' ' << e.v << '\n';
}

namespace {

bool ParseInt(std::string_view token, long long* value) {
  if (token.empty()) return false;
  long long result = 0;
  size_t i = 0;
  bool negative = false;
  if (token[0] == '-') {
    negative = true;
    i = 1;
    if (token.size() == 1) return false;
  }
  for (; i < token.size(); ++i) {
    if (token[i] < '0' || token[i] > '9') return false;
    result = result * 10 + (token[i] - '0');
    if (result > (1LL << 40)) return false;  // reject absurd sizes early
  }
  *value = negative ? -result : result;
  return true;
}

}  // namespace

Result<Graph> ReadEdgeList(std::istream& in) {
  std::string line;
  bool have_header = false;
  long long num_vertices = -1;
  long long num_edges = -1;
  long long edge_lines = 0;
  GraphBuilder builder(0);
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto tokens = SplitAndTrim(stripped, " \t");
    if (tokens.size() != 2) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": expected two integers");
    }
    long long a = 0;
    long long b = 0;
    if (!ParseInt(tokens[0], &a) || !ParseInt(tokens[1], &b)) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": malformed integer");
    }
    if (!have_header) {
      if (a < 0 || b < 0) {
        return Status::IoError("header: negative counts");
      }
      if (a > std::numeric_limits<int>::max() ||
          b > std::numeric_limits<int>::max()) {
        return Status::IoError("header: counts exceed int range");
      }
      have_header = true;
      num_vertices = a;
      num_edges = b;
      // The header announces the sizes, so million-edge files build without
      // a single rehash or regrow.
      builder = GraphBuilder(static_cast<int>(num_vertices));
      builder.ReserveEdges(static_cast<int>(num_edges));
      continue;
    }
    if (a < 0 || b < 0 || a >= num_vertices || b >= num_vertices) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": endpoint out of range");
    }
    if (a == b) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": self-loop");
    }
    ++edge_lines;
    builder.AddEdge(static_cast<int>(a), static_cast<int>(b));
  }
  if (!have_header) return Status::IoError("missing header line");
  if (edge_lines != num_edges) {
    return Status::IoError("edge count mismatch: header says " +
                           std::to_string(num_edges) + ", found " +
                           std::to_string(edge_lines));
  }
  return std::move(builder).Build();
}

Status WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  WriteEdgeList(g, out);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Graph> ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadEdgeList(in);
}

}  // namespace nodedp

#include "graph/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/stringutil.h"

namespace nodedp {

void WriteEdgeList(const Graph& g, std::ostream& out) {
  out << g.NumVertices() << ' ' << g.NumEdges() << '\n';
  for (const Edge& e : g.Edges()) out << e.u << ' ' << e.v << '\n';
}

namespace {

bool ParseInt(std::string_view token, long long* value) {
  if (token.empty()) return false;
  long long result = 0;
  size_t i = 0;
  bool negative = false;
  if (token[0] == '-') {
    negative = true;
    i = 1;
    if (token.size() == 1) return false;
  }
  for (; i < token.size(); ++i) {
    if (token[i] < '0' || token[i] > '9') return false;
    result = result * 10 + (token[i] - '0');
    if (result > (1LL << 40)) return false;  // reject absurd sizes early
  }
  *value = negative ? -result : result;
  return true;
}

}  // namespace

Result<Graph> ReadEdgeList(std::istream& in) {
  std::string line;
  bool have_header = false;
  long long num_vertices = -1;
  long long num_edges = -1;
  long long edge_lines = 0;
  GraphBuilder builder(0);
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto tokens = SplitAndTrim(stripped, " \t");
    if (tokens.size() != 2) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": expected two integers");
    }
    long long a = 0;
    long long b = 0;
    if (!ParseInt(tokens[0], &a) || !ParseInt(tokens[1], &b)) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": malformed integer");
    }
    if (!have_header) {
      if (a < 0 || b < 0) {
        return Status::IoError("header: negative counts");
      }
      if (a > std::numeric_limits<int>::max() ||
          b > std::numeric_limits<int>::max()) {
        return Status::IoError("header: counts exceed int range");
      }
      have_header = true;
      num_vertices = a;
      num_edges = b;
      // The header announces the sizes, so million-edge files build without
      // a single rehash or regrow.
      builder = GraphBuilder(static_cast<int>(num_vertices));
      builder.ReserveEdges(static_cast<int>(num_edges));
      continue;
    }
    if (a < 0 || b < 0 || a >= num_vertices || b >= num_vertices) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": endpoint out of range");
    }
    if (a == b) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": self-loop");
    }
    ++edge_lines;
    builder.AddEdge(static_cast<int>(a), static_cast<int>(b));
  }
  if (!have_header) return Status::IoError("missing header line");
  if (edge_lines != num_edges) {
    return Status::IoError("edge count mismatch: header says " +
                           std::to_string(num_edges) + ", found " +
                           std::to_string(edge_lines));
  }
  return std::move(builder).Build();
}

Status WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  WriteEdgeList(g, out);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Graph> ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadEdgeList(in);
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

namespace {

constexpr char kGraphBinaryMagic[4] = {'N', 'D', 'P', 'G'};
constexpr std::size_t kBinaryHeaderBytes = 24;
// 8 bytes per edge record; 64K edges per chunk keeps the streaming buffer
// at 512 KiB regardless of graph size.
constexpr std::size_t kEdgesPerChunk = 65536;

// Little-endian encode/decode, independent of host byte order.
void PutU32(unsigned char* p, std::uint32_t x) {
  p[0] = static_cast<unsigned char>(x);
  p[1] = static_cast<unsigned char>(x >> 8);
  p[2] = static_cast<unsigned char>(x >> 16);
  p[3] = static_cast<unsigned char>(x >> 24);
}

void PutU64(unsigned char* p, std::uint64_t x) {
  PutU32(p, static_cast<std::uint32_t>(x));
  PutU32(p + 4, static_cast<std::uint32_t>(x >> 32));
}

std::uint32_t GetU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t GetU64(const unsigned char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

}  // namespace

Status WriteGraphBinary(const Graph& g, std::ostream& out) {
  unsigned char header[kBinaryHeaderBytes];
  std::memcpy(header, kGraphBinaryMagic, 4);
  PutU32(header + 4, kGraphBinaryVersion);
  PutU64(header + 8, static_cast<std::uint64_t>(g.NumVertices()));
  PutU64(header + 16, static_cast<std::uint64_t>(g.NumEdges()));
  out.write(reinterpret_cast<const char*>(header), sizeof(header));

  // Edges() is already sorted with u < v, so the records go out in exactly
  // the order the reader requires.
  std::vector<unsigned char> buffer;
  buffer.reserve(kEdgesPerChunk * 8);
  for (const Edge& e : g.Edges()) {
    unsigned char record[8];
    PutU32(record, static_cast<std::uint32_t>(e.u));
    PutU32(record + 4, static_cast<std::uint32_t>(e.v));
    buffer.insert(buffer.end(), record, record + 8);
    if (buffer.size() >= kEdgesPerChunk * 8) {
      out.write(reinterpret_cast<const char*>(buffer.data()),
                static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    out.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(buffer.size()));
  }
  out.flush();
  if (!out) return Status::IoError("binary write failed");
  return Status::OK();
}

Result<Graph> ReadGraphBinary(std::istream& in) {
  unsigned char header[kBinaryHeaderBytes];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    return Status::IoError("binary graph: truncated header");
  }
  if (std::memcmp(header, kGraphBinaryMagic, 4) != 0) {
    return Status::IoError("binary graph: bad magic (not an NDPG file)");
  }
  const std::uint32_t version = GetU32(header + 4);
  if (version != kGraphBinaryVersion) {
    return Status::IoError("binary graph: unsupported format version " +
                           std::to_string(version) + " (this build reads " +
                           std::to_string(kGraphBinaryVersion) + ")");
  }
  const std::int64_t num_vertices =
      static_cast<std::int64_t>(GetU64(header + 8));
  const std::int64_t num_edges = static_cast<std::int64_t>(GetU64(header + 16));
  if (num_vertices < 0 || num_vertices > Graph::kMaxVertices) {
    return Status::IoError("binary graph: vertex count out of int range: " +
                           std::to_string(num_vertices));
  }
  if (num_edges < 0 || num_edges > Graph::kMaxEdges) {
    return Status::IoError("binary graph: edge count out of int range: " +
                           std::to_string(num_edges));
  }

  // A crafted header must not be able to force a huge allocation before the
  // payload proves it is real: when the stream is seekable, verify the edge
  // section is actually present before reserving for it; otherwise (pipes)
  // cap the up-front reserve and let the vector grow against validated data.
  std::int64_t reserve_edges = num_edges;
  const std::istream::pos_type here = in.tellg();
  if (here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.seekg(here);
    if (end != std::istream::pos_type(-1)) {
      const std::int64_t payload_bytes = static_cast<std::int64_t>(end - here);
      if (payload_bytes < num_edges * 8) {
        return Status::IoError(
            "binary graph: truncated edge section (header says " +
            std::to_string(num_edges) + " edges, payload holds " +
            std::to_string(payload_bytes / 8) + ")");
      }
    }
  } else {
    in.clear();  // tellg on a failed/unseekable stream sets failbit
    reserve_edges =
        std::min<std::int64_t>(num_edges,
                               static_cast<std::int64_t>(kEdgesPerChunk) * 16);
  }

  // Stream the records in chunks, validating and appending directly into the
  // final sorted edge array — this vector is moved into the Graph, so the
  // whole load is one pass with no intermediate representation.
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(reserve_edges));
  std::vector<unsigned char> buffer(kEdgesPerChunk * 8);
  std::int64_t remaining = num_edges;
  Edge previous{-1, -1};
  while (remaining > 0) {
    const std::size_t batch =
        remaining < static_cast<std::int64_t>(kEdgesPerChunk)
            ? static_cast<std::size_t>(remaining)
            : kEdgesPerChunk;
    in.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(batch * 8));
    if (in.gcount() != static_cast<std::streamsize>(batch * 8)) {
      const std::size_t received =
          edges.size() + static_cast<std::size_t>(in.gcount()) / 8;
      return Status::IoError(
          "binary graph: truncated edge section (header says " +
          std::to_string(num_edges) + " edges, got " +
          std::to_string(received) + ")");
    }
    for (std::size_t i = 0; i < batch; ++i) {
      const std::uint32_t raw_u = GetU32(buffer.data() + i * 8);
      const std::uint32_t raw_v = GetU32(buffer.data() + i * 8 + 4);
      const std::int64_t u = raw_u;
      const std::int64_t v = raw_v;
      if (u >= num_vertices || v >= num_vertices) {
        return Status::IoError(
            "binary graph: edge " + std::to_string(edges.size()) +
            ": endpoint out of range (" + std::to_string(u) + ", " +
            std::to_string(v) + ") with " + std::to_string(num_vertices) +
            " vertices");
      }
      if (u >= v) {
        return Status::IoError("binary graph: edge " +
                               std::to_string(edges.size()) +
                               ": endpoints not in u < v order (" +
                               std::to_string(u) + ", " + std::to_string(v) +
                               ")");
      }
      const Edge e{static_cast<int>(u), static_cast<int>(v)};
      if (!(previous < e)) {
        return Status::IoError("binary graph: edge " +
                               std::to_string(edges.size()) +
                               ": records not strictly ascending");
      }
      previous = e;
      edges.push_back(e);
    }
    remaining -= static_cast<std::int64_t>(batch);
  }
  return Graph::TryFromSortedEdges(num_vertices, std::move(edges));
}

Status WriteGraphBinaryFile(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteGraphBinary(g, out);
}

Result<Graph> ReadGraphBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadGraphBinary(in);
}

Result<Graph> ReadGraphAnyFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  const bool binary = in.gcount() == 4 &&
                      std::memcmp(magic, kGraphBinaryMagic, 4) == 0;
  in.clear();
  in.seekg(0);
  if (binary) return ReadGraphBinary(in);
  return ReadEdgeList(in);
}

}  // namespace nodedp

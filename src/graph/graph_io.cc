#include "graph/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/ndpg_v2.h"
#include "util/stringutil.h"

namespace nodedp {

void WriteEdgeList(const Graph& g, std::ostream& out) {
  out << g.NumVertices() << ' ' << g.NumEdges() << '\n';
  for (const Edge& e : g.Edges()) out << e.u << ' ' << e.v << '\n';
}

namespace {

bool ParseInt(std::string_view token, long long* value) {
  if (token.empty()) return false;
  long long result = 0;
  size_t i = 0;
  bool negative = false;
  if (token[0] == '-') {
    negative = true;
    i = 1;
    if (token.size() == 1) return false;
  }
  for (; i < token.size(); ++i) {
    if (token[i] < '0' || token[i] > '9') return false;
    result = result * 10 + (token[i] - '0');
    if (result > (1LL << 40)) return false;  // reject absurd sizes early
  }
  *value = negative ? -result : result;
  return true;
}

}  // namespace

Result<Graph> ReadEdgeList(std::istream& in) {
  std::string line;
  bool have_header = false;
  long long num_vertices = -1;
  long long num_edges = -1;
  long long edge_lines = 0;
  GraphBuilder builder(0);
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto tokens = SplitAndTrim(stripped, " \t");
    if (tokens.size() != 2) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": expected two integers");
    }
    long long a = 0;
    long long b = 0;
    if (!ParseInt(tokens[0], &a) || !ParseInt(tokens[1], &b)) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": malformed integer");
    }
    if (!have_header) {
      if (a < 0 || b < 0) {
        return Status::IoError("header: negative counts");
      }
      if (a > std::numeric_limits<int>::max() ||
          b > std::numeric_limits<int>::max()) {
        return Status::IoError("header: counts exceed int range");
      }
      have_header = true;
      num_vertices = a;
      num_edges = b;
      // The header announces the sizes, so million-edge files build without
      // a single rehash or regrow.
      builder = GraphBuilder(static_cast<int>(num_vertices));
      builder.ReserveEdges(static_cast<int>(num_edges));
      continue;
    }
    if (a < 0 || b < 0 || a >= num_vertices || b >= num_vertices) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": endpoint out of range");
    }
    if (a == b) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": self-loop");
    }
    ++edge_lines;
    builder.AddEdge(static_cast<int>(a), static_cast<int>(b));
  }
  if (!have_header) return Status::IoError("missing header line");
  if (edge_lines != num_edges) {
    return Status::IoError("edge count mismatch: header says " +
                           std::to_string(num_edges) + ", found " +
                           std::to_string(edge_lines));
  }
  return std::move(builder).Build();
}

Status WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  WriteEdgeList(g, out);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Graph> ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadEdgeList(in);
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

namespace {

constexpr char kGraphBinaryMagic[4] = {'N', 'D', 'P', 'G'};
constexpr std::size_t kBinaryHeaderBytes = 24;
// 8 bytes per edge record; 64K edges per chunk keeps the streaming buffer
// at 512 KiB regardless of graph size.
constexpr std::size_t kEdgesPerChunk = 65536;

// Little-endian encode/decode lives with the v2 layout now; both binary
// versions share it.
using ndpgv2::GetU32;
using ndpgv2::GetU64;
using ndpgv2::PutU32;
using ndpgv2::PutU64;

}  // namespace

Status WriteGraphBinary(const Graph& g, std::ostream& out) {
  unsigned char header[kBinaryHeaderBytes];
  std::memcpy(header, kGraphBinaryMagic, 4);
  PutU32(header + 4, kGraphBinaryVersion);
  PutU64(header + 8, static_cast<std::uint64_t>(g.NumVertices()));
  PutU64(header + 16, static_cast<std::uint64_t>(g.NumEdges()));
  out.write(reinterpret_cast<const char*>(header), sizeof(header));

  // Edges() is already sorted with u < v, so the records go out in exactly
  // the order the reader requires.
  std::vector<unsigned char> buffer;
  buffer.reserve(kEdgesPerChunk * 8);
  for (const Edge& e : g.Edges()) {
    unsigned char record[8];
    PutU32(record, static_cast<std::uint32_t>(e.u));
    PutU32(record + 4, static_cast<std::uint32_t>(e.v));
    buffer.insert(buffer.end(), record, record + 8);
    if (buffer.size() >= kEdgesPerChunk * 8) {
      out.write(reinterpret_cast<const char*>(buffer.data()),
                static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    out.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(buffer.size()));
  }
  out.flush();
  if (!out) return Status::IoError("binary write failed");
  return Status::OK();
}

Result<Graph> ReadGraphBinary(std::istream& in) {
  unsigned char header[kBinaryHeaderBytes];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    return Status::IoError("binary graph: truncated header");
  }
  if (std::memcmp(header, kGraphBinaryMagic, 4) != 0) {
    return Status::IoError("binary graph: bad magic (not an NDPG file)");
  }
  const std::uint32_t version = GetU32(header + 4);
  if (version != kGraphBinaryVersion) {
    return Status::IoError("binary graph: unsupported format version " +
                           std::to_string(version) + " (this build reads " +
                           std::to_string(kGraphBinaryVersion) + ")");
  }
  const std::int64_t num_vertices =
      static_cast<std::int64_t>(GetU64(header + 8));
  const std::int64_t num_edges = static_cast<std::int64_t>(GetU64(header + 16));
  if (num_vertices < 0 || num_vertices > Graph::kMaxVertices) {
    return Status::IoError("binary graph: vertex count out of int range: " +
                           std::to_string(num_vertices));
  }
  if (num_edges < 0 || num_edges > Graph::kMaxEdges) {
    return Status::IoError("binary graph: edge count out of int range: " +
                           std::to_string(num_edges));
  }

  // A crafted header must not be able to force a huge allocation before the
  // payload proves it is real: when the stream is seekable, verify the edge
  // section is actually present before reserving for it; otherwise (pipes)
  // cap the up-front reserve and let the vector grow against validated data.
  std::int64_t reserve_edges = num_edges;
  const std::istream::pos_type here = in.tellg();
  if (here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.seekg(here);
    if (end != std::istream::pos_type(-1)) {
      const std::int64_t payload_bytes = static_cast<std::int64_t>(end - here);
      if (payload_bytes < num_edges * 8) {
        return Status::IoError(
            "binary graph: truncated edge section (header says " +
            std::to_string(num_edges) + " edges, payload holds " +
            std::to_string(payload_bytes / 8) + ")");
      }
    }
  } else {
    in.clear();  // tellg on a failed/unseekable stream sets failbit
    reserve_edges =
        std::min<std::int64_t>(num_edges,
                               static_cast<std::int64_t>(kEdgesPerChunk) * 16);
  }

  // Stream the records in chunks, validating and appending directly into the
  // final sorted edge array — this vector is moved into the Graph, so the
  // whole load is one pass with no intermediate representation.
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(reserve_edges));
  std::vector<unsigned char> buffer(kEdgesPerChunk * 8);
  std::int64_t remaining = num_edges;
  Edge previous{-1, -1};
  while (remaining > 0) {
    const std::size_t batch =
        remaining < static_cast<std::int64_t>(kEdgesPerChunk)
            ? static_cast<std::size_t>(remaining)
            : kEdgesPerChunk;
    in.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(batch * 8));
    if (in.gcount() != static_cast<std::streamsize>(batch * 8)) {
      const std::size_t received =
          edges.size() + static_cast<std::size_t>(in.gcount()) / 8;
      return Status::IoError(
          "binary graph: truncated edge section (header says " +
          std::to_string(num_edges) + " edges, got " +
          std::to_string(received) + ")");
    }
    for (std::size_t i = 0; i < batch; ++i) {
      const std::uint32_t raw_u = GetU32(buffer.data() + i * 8);
      const std::uint32_t raw_v = GetU32(buffer.data() + i * 8 + 4);
      const std::int64_t u = raw_u;
      const std::int64_t v = raw_v;
      if (u >= num_vertices || v >= num_vertices) {
        return Status::IoError(
            "binary graph: edge " + std::to_string(edges.size()) +
            ": endpoint out of range (" + std::to_string(u) + ", " +
            std::to_string(v) + ") with " + std::to_string(num_vertices) +
            " vertices");
      }
      if (u >= v) {
        return Status::IoError("binary graph: edge " +
                               std::to_string(edges.size()) +
                               ": endpoints not in u < v order (" +
                               std::to_string(u) + ", " + std::to_string(v) +
                               ")");
      }
      const Edge e{static_cast<int>(u), static_cast<int>(v)};
      if (!(previous < e)) {
        return Status::IoError("binary graph: edge " +
                               std::to_string(edges.size()) +
                               ": records not strictly ascending");
      }
      previous = e;
      edges.push_back(e);
    }
    remaining -= static_cast<std::int64_t>(batch);
  }
  return Graph::TryFromSortedEdges(num_vertices, std::move(edges));
}

Status WriteGraphBinaryFile(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteGraphBinary(g, out);
}

Result<Graph> ReadGraphBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadGraphBinary(in);
}

// ---------------------------------------------------------------------------
// Binary format v2 (mmap-servable CSR layout; see graph/ndpg_v2.h)
// ---------------------------------------------------------------------------

namespace {

// Streams one v2 section: little-endian encodes ints in chunks, hashing
// exactly the bytes written so the checksum matches any later chunking.
class SectionStream {
 public:
  explicit SectionStream(std::ostream& out) : out_(out) {
    buffer_.resize(kEdgesPerChunk * 8);
  }

  void PutInt(int value) {
    PutU32(buffer_.data() + used_, static_cast<std::uint32_t>(value));
    used_ += 4;
    if (used_ == buffer_.size()) Flush();
  }

  std::uint64_t Close() {
    Flush();
    return hash_.Finish();
  }

 private:
  void Flush() {
    if (used_ == 0) return;
    hash_.Update(buffer_.data(), used_);
    out_.write(reinterpret_cast<const char*>(buffer_.data()),
               static_cast<std::streamsize>(used_));
    used_ = 0;
  }

  std::ostream& out_;
  std::vector<unsigned char> buffer_;
  std::size_t used_ = 0;
  ndpgv2::StreamingHash hash_;
};

Status WriteZeroPadding(std::ostream& out, std::uint64_t bytes) {
  static const char zeros[ndpgv2::kSectionAlign] = {};
  while (bytes > 0) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(bytes, sizeof(zeros)));
    out.write(zeros, static_cast<std::streamsize>(chunk));
    bytes -= chunk;
  }
  if (!out) return Status::IoError("binary graph v2: write failed");
  return Status::OK();
}

// Reads exactly `bytes` into `buffer` (sized for it), failing closed on a
// short read with a per-section truncation message.
Status ReadSectionBytes(std::istream& in, unsigned char* buffer,
                        std::size_t bytes, int section) {
  in.read(reinterpret_cast<char*>(buffer),
          static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes)) {
    return Status::IoError(std::string("binary graph v2: section '") +
                           ndpgv2::SectionName(section) +
                           "' truncated (wanted " + std::to_string(bytes) +
                           " bytes, got " + std::to_string(in.gcount()) +
                           ")");
  }
  return Status::OK();
}

}  // namespace

Status WriteGraphV2(const Graph& g, std::ostream& out) {
  const std::ostream::pos_type start = out.tellp();
  if (start == std::ostream::pos_type(-1)) {
    return Status::InvalidArgument(
        "binary graph v2: writer requires a seekable stream (checksums are "
        "patched into the header after the sections stream out)");
  }
  ndpgv2::Header header =
      ndpgv2::CanonicalHeader(g.NumVertices(), g.NumEdges());
  unsigned char encoded[ndpgv2::kHeaderBytes];
  ndpgv2::EncodeHeader(header, encoded);  // checksums still zero
  out.write(reinterpret_cast<const char*>(encoded), sizeof(encoded));

  std::uint64_t pos = ndpgv2::kHeaderBytes;
  for (int s = 0; s < ndpgv2::kNumSections; ++s) {
    Status padded = WriteZeroPadding(out, header.sections[s].offset - pos);
    if (!padded.ok()) return padded;
    SectionStream stream(out);
    switch (s) {
      case ndpgv2::kEdges:
        for (const Edge& e : g.Edges()) {
          stream.PutInt(e.u);
          stream.PutInt(e.v);
        }
        break;
      case ndpgv2::kOffsets:
        for (const int value : g.CsrOffsets()) stream.PutInt(value);
        break;
      case ndpgv2::kNeighbors:
        for (const int value : g.CsrNeighbors()) stream.PutInt(value);
        break;
      case ndpgv2::kIncident:
        for (const int value : g.CsrIncidentEdgeIds()) stream.PutInt(value);
        break;
    }
    header.sections[s].checksum = stream.Close();
    pos = header.sections[s].offset + header.sections[s].length;
  }
  if (!out) return Status::IoError("binary graph v2: write failed");

  // Patch the header now that the section checksums are known.
  ndpgv2::EncodeHeader(header, encoded);
  out.seekp(start);
  out.write(reinterpret_cast<const char*>(encoded), sizeof(encoded));
  out.seekp(0, std::ios::end);
  out.flush();
  if (!out) return Status::IoError("binary graph v2: write failed");
  return Status::OK();
}

Status WriteGraphV2File(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteGraphV2(g, out);
}

Result<Graph> ReadGraphV2(std::istream& in) {
  const std::istream::pos_type start = in.tellg();
  if (start == std::istream::pos_type(-1)) in.clear();

  unsigned char header_bytes[ndpgv2::kHeaderBytes];
  in.read(reinterpret_cast<char*>(header_bytes), sizeof(header_bytes));
  const std::size_t header_got = static_cast<std::size_t>(in.gcount());

  // When the stream is seekable the total size feeds the header's bounds
  // checks; otherwise truncation surfaces as a short section read below.
  std::uint64_t file_size = 0;
  if (start != std::istream::pos_type(-1) &&
      header_got == sizeof(header_bytes)) {
    const std::istream::pos_type here = in.tellg();
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.seekg(here);
    if (end != std::istream::pos_type(-1)) {
      file_size = static_cast<std::uint64_t>(end - start);
    }
  }
  if (header_got < sizeof(header_bytes)) in.clear();

  const Result<ndpgv2::Header> header =
      ndpgv2::ParseHeader(header_bytes, header_got, file_size);
  if (!header.ok()) return header.status();
  const std::int64_t num_vertices = header->num_vertices;
  const std::int64_t num_edges = header->num_edges;

  std::vector<unsigned char> buffer(kEdgesPerChunk * 8);
  std::uint64_t pos = ndpgv2::kHeaderBytes;

  // --- edges section: checksum over the raw bytes first, then the same
  // content validation as the v1 reader. Buffered whole (it becomes the
  // edge vector anyway), so corruption deterministically reports as a
  // checksum mismatch rather than whichever invariant it happens to break.
  std::vector<Edge> edges;
  {
    const ndpgv2::SectionDesc& section = header->sections[ndpgv2::kEdges];
    Status skipped = ReadSectionBytes(
        in, buffer.data(), static_cast<std::size_t>(section.offset - pos),
        ndpgv2::kEdges);
    if (!skipped.ok()) return skipped;
    std::vector<unsigned char> raw(static_cast<std::size_t>(section.length));
    Status read = ReadSectionBytes(in, raw.data(), raw.size(), ndpgv2::kEdges);
    if (!read.ok()) return read;
    if (ndpgv2::HashBytes(raw.data(), raw.size()) != section.checksum) {
      return Status::IoError("binary graph v2: section 'edges' checksum "
                             "mismatch");
    }
    edges.reserve(static_cast<std::size_t>(num_edges));
    Edge previous{-1, -1};
    for (std::int64_t i = 0; i < num_edges; ++i) {
      const std::int64_t u = GetU32(raw.data() + i * 8);
      const std::int64_t v = GetU32(raw.data() + i * 8 + 4);
      if (u >= num_vertices || v >= num_vertices) {
        return Status::IoError(
            "binary graph v2: edge " + std::to_string(i) +
            ": endpoint out of range (" + std::to_string(u) + ", " +
            std::to_string(v) + ") with " + std::to_string(num_vertices) +
            " vertices");
      }
      if (u >= v) {
        return Status::IoError(
            "binary graph v2: edge " + std::to_string(i) +
            ": endpoints not in u < v order (" + std::to_string(u) + ", " +
            std::to_string(v) + ")");
      }
      const Edge e{static_cast<int>(u), static_cast<int>(v)};
      if (!(previous < e)) {
        return Status::IoError("binary graph v2: edge " + std::to_string(i) +
                               ": records not strictly ascending");
      }
      previous = e;
      edges.push_back(e);
    }
    pos = section.offset + section.length;
  }
  Result<Graph> built = Graph::TryFromSortedEdges(num_vertices,
                                                  std::move(edges));
  if (!built.ok()) return built.status();
  const Graph& g = *built;

  // --- CSR sections: must be exactly the CSR of the edge list just built.
  // A file whose stored CSR disagrees with its edge list would serve
  // different answers via mmap than via heap load; refuse it here.
  const Span<const int> expected[ndpgv2::kNumSections] = {
      Span<const int>(), g.CsrOffsets(), g.CsrNeighbors(),
      g.CsrIncidentEdgeIds()};
  for (int s = ndpgv2::kOffsets; s < ndpgv2::kNumSections; ++s) {
    const ndpgv2::SectionDesc& section = header->sections[s];
    Status skipped = ReadSectionBytes(
        in, buffer.data(), static_cast<std::size_t>(section.offset - pos),
        s);
    if (!skipped.ok()) return skipped;
    ndpgv2::StreamingHash hash;
    std::uint64_t remaining = section.length;
    std::size_t index = 0;
    while (remaining > 0) {
      const std::size_t batch = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, buffer.size()));
      Status read = ReadSectionBytes(in, buffer.data(), batch, s);
      if (!read.ok()) return read;
      hash.Update(buffer.data(), batch);
      for (std::size_t b = 0; b < batch; b += 4, ++index) {
        const int value = static_cast<int>(GetU32(buffer.data() + b));
        if (value != expected[s][index]) {
          return Status::IoError(
              std::string("binary graph v2: section '") +
              ndpgv2::SectionName(s) + "' entry " + std::to_string(index) +
              " inconsistent with the edge list (stored " +
              std::to_string(value) + ", rebuilt " +
              std::to_string(expected[s][index]) + ")");
        }
      }
      remaining -= batch;
    }
    if (hash.Finish() != section.checksum) {
      return Status::IoError(std::string("binary graph v2: section '") +
                             ndpgv2::SectionName(s) + "' checksum mismatch");
    }
    pos = section.offset + section.length;
  }
  return built;
}

Result<Graph> ReadGraphV2File(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadGraphV2(in);
}

Status ConvertGraphFileToV2(const std::string& in_path,
                            const std::string& out_path) {
  Result<Graph> g = ReadGraphAnyFile(in_path);
  if (!g.ok()) return g.status();
  return WriteGraphV2File(*g, out_path);
}

Result<Graph> ReadGraphAnyFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  unsigned char prefix[8] = {};
  in.read(reinterpret_cast<char*>(prefix), sizeof(prefix));
  const bool binary = in.gcount() >= 4 &&
                      std::memcmp(prefix, kGraphBinaryMagic, 4) == 0;
  const std::uint32_t version =
      in.gcount() == sizeof(prefix) ? GetU32(prefix + 4) : 0;
  in.clear();
  in.seekg(0);
  if (binary && version == kGraphBinaryVersionV2) return ReadGraphV2(in);
  if (binary) return ReadGraphBinary(in);
  return ReadEdgeList(in);
}

}  // namespace nodedp

// Connectivity statistics: the functions f_cc and f_sf of the paper.
//
//   f_cc(G) = number of connected components           (the released statistic)
//   f_sf(G) = |V(G)| - f_cc(G)                          (Eq. (1))
//           = number of edges in any spanning forest of G.

#ifndef NODEDP_GRAPH_CONNECTIVITY_H_
#define NODEDP_GRAPH_CONNECTIVITY_H_

#include <vector>

#include "graph/graph.h"

namespace nodedp {

// Number of connected components f_cc(G). Isolated vertices each count as a
// component; the empty graph has 0 components.
int CountConnectedComponents(const Graph& g);

// Size of a spanning forest f_sf(G) = |V| - f_cc(G).
int SpanningForestSize(const Graph& g);

// Component label in [0, f_cc(G)) for each vertex; labels are assigned in
// order of the smallest vertex in each component.
std::vector<int> ComponentLabels(const Graph& g);

// Vertex sets of the connected components, each sorted ascending, ordered by
// smallest contained vertex.
std::vector<std::vector<int>> ComponentVertexSets(const Graph& g);

// Whether u and v are in the same component.
bool SameComponent(const Graph& g, int u, int v);

// Whether `v` is a cut vertex: removing it increases the component count of
// its own component. Isolated vertices are not cut vertices.
bool IsCutVertex(const Graph& g, int v);

}  // namespace nodedp

#endif  // NODEDP_GRAPH_CONNECTIVITY_H_

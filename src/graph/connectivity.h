// Connectivity statistics: the functions f_cc and f_sf of the paper.
//
//   f_cc(G) = number of connected components           (the released statistic)
//   f_sf(G) = |V(G)| - f_cc(G)                          (Eq. (1))
//           = number of edges in any spanning forest of G.

#ifndef NODEDP_GRAPH_CONNECTIVITY_H_
#define NODEDP_GRAPH_CONNECTIVITY_H_

#include <vector>

#include "graph/graph.h"

namespace nodedp {

// Number of connected components f_cc(G). Isolated vertices each count as a
// component; the empty graph has 0 components.
int CountConnectedComponents(const Graph& g);

// Size of a spanning forest f_sf(G) = |V| - f_cc(G).
int SpanningForestSize(const Graph& g);

// Component label in [0, f_cc(G)) for each vertex; labels are assigned in
// order of the smallest vertex in each component.
std::vector<int> ComponentLabels(const Graph& g);

// Vertex sets of the connected components, each sorted ascending, ordered by
// smallest contained vertex.
std::vector<std::vector<int>> ComponentVertexSets(const Graph& g);

// Whether u and v are in the same component.
bool SameComponent(const Graph& g, int u, int v);

// Whether `v` is a cut vertex: removing it increases the component count of
// its own component. Isolated vertices are not cut vertices.
bool IsCutVertex(const Graph& g, int v);

// Component-level effect of an insert-only edge delta on a partition.
//
// Inserts can only merge components (or add edges inside one), never split
// them, so the new partition is fully described by which old components the
// batch touches and how they fuse: every component with no endpoint in the
// batch keeps its label, its vertex set, and its induced edge set — the
// invariant the incremental ExtensionFamily maintenance is built on.
struct ComponentDeltaAnalysis {
  // Old labels with at least one endpoint in the batch, sorted ascending.
  // This includes components receiving purely internal edges: their vertex
  // set is unchanged but their induced edge set is not, so any cached
  // structure over them is stale.
  std::vector<int> touched;
  // The fused groups, one per new component formed by the batch: each entry
  // lists the old labels merged into it, sorted ascending. A group of size
  // one is a component that only received internal edges. Groups are
  // ordered by their smallest old label. Every touched label appears in
  // exactly one group and vice versa.
  std::vector<std::vector<int>> groups;
  int num_old_components = 0;
  int num_new_components = 0;
};

// Analyzes `inserts` (normalized u < v edges; endpoints must be labeled)
// against an existing partition `old_labels` (as produced by
// ComponentLabels, labels dense in [0, num_old_components)). Runs in
// O(num_old_components + |inserts| * alpha) over a union-find on the
// labels — the graph itself is never read, so a small delta against a huge
// graph costs component-count work, not edge-count work.
ComponentDeltaAnalysis AnalyzeEdgeDelta(const std::vector<int>& old_labels,
                                        int num_old_components,
                                        const std::vector<Edge>& inserts);

}  // namespace nodedp

#endif  // NODEDP_GRAPH_CONNECTIVITY_H_

// LedgerWal: durable storage for the release server's privacy-budget
// ledgers — a write-ahead append log plus periodic snapshot compaction.
//
// The budget a graph is served under is a promise about the *lifetime* of
// the data, not the lifetime of the process: if a restart reset the ledger,
// an operator (or a crash loop) could re-spend the same ε indefinitely and
// the composition guarantee (Lemma 2.4) would be fiction. The WAL closes
// that hole with one ordering rule, enforced by ReleaseServer::Admit:
//
//     admission decision → WAL append (flushed) → in-memory charge
//       → mechanism runs
//
// so every charge that could have produced a release is on disk before any
// noise is sampled. After a crash, replay restores each graph's ledger —
// total, refusal count, and the admitted charges in admission order — and a
// query that was refused over-budget before the crash is refused forever.
// The failure direction is conservative by construction: a crash between
// append and mechanism wastes budget (charged, never released), it never
// leaks it.
//
// On-disk layout (text, line-oriented, inside the store directory):
//
//   ledger.snap    full state at sequence S:
//                    "ndpw-snap v1 <S>"
//                    "graph <name> <total> <refusals> <k>"   (per graph)
//                    "charge <epsilon> <label...>"            (k lines, in
//                                                             admission order)
//                    "end"
//   ledger.wal     records appended since the snapshot:
//                    "ndpw-wal v1 <since>"
//                    "load <name> <total>"
//                    "charge <name> <epsilon> <label...>"
//                    "refuse <name>"
//                    "evict <name>"
//
// Doubles are written with %.17g so replayed sums are bit-identical to the
// pre-crash ledger. Snapshots are written to a temp file and renamed over
// ledger.snap, then the WAL is truncated; the sequence numbers make the
// crash window between rename and truncate safe — a WAL whose `since` is
// older than the snapshot's sequence is entirely contained in the snapshot
// and is ignored on replay. A final WAL line without a trailing newline is
// a torn append from a crash mid-write and is dropped (its mechanism never
// ran); any other malformed line fails the replay with IoError — serving
// with a partially known ledger is exactly the unsoundness this file
// exists to prevent.
//
// Replay semantics per record: `load` creates the graph's persisted ledger
// if absent and is a no-op if present (a reload never resets charges and
// never raises the original total); `evict` deletes it (eviction is the
// operator action that ends a ledger's lifetime — see docs/SERVING.md).
//
// Thread safety: all methods are safe to call concurrently (one internal
// mutex, taken after any ReleaseServer lock and never holding any other).

#ifndef NODEDP_SERVE_LEDGER_WAL_H_
#define NODEDP_SERVE_LEDGER_WAL_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace nodedp {

// One graph's durable ledger state, as restored by replay.
struct PersistedLedger {
  double total_epsilon = 0.0;
  int num_refusals = 0;
  // Admitted charges in admission order: (label, epsilon) — the same shape
  // as PrivacyAccountant::ledger(), so restore preserves the sum exactly.
  std::vector<std::pair<std::string, double>> charges;
};

struct LedgerWalOptions {
  // Appends between snapshot compactions. Each compaction rewrites the
  // full state and truncates the WAL, bounding replay time.
  int snapshot_every = 256;
  // fdatasync after every append: survives power loss, not just process
  // death (a SIGKILL loses nothing either way — the append is write()n
  // to the kernel before the record is considered made). Turning this
  // off trades power-loss durability for append latency.
  bool sync_every_record = true;
};

class LedgerWal {
 public:
  using Options = LedgerWalOptions;

  // Opens the store rooted at `dir` (created if needed) and replays
  // snapshot + WAL into the live state. Fails with IoError on unreadable
  // or corrupt files (a torn final WAL line is tolerated; see above).
  static Result<std::unique_ptr<LedgerWal>> Open(const std::string& dir,
                                                 const Options& options = {});

  ~LedgerWal();

  LedgerWal(const LedgerWal&) = delete;
  LedgerWal& operator=(const LedgerWal&) = delete;

  // The live persisted state for `name` (replayed at Open and kept current
  // by every Record*), or nullopt if the name has no durable ledger.
  std::optional<PersistedLedger> Restored(const std::string& name) const;

  // Names with live persisted state, in name order.
  std::vector<std::string> RestoredNames() const;

  // Records a graph registration. No-op (returns OK without appending) if
  // the name already has persisted state — the restored ledger wins.
  Status RecordLoad(const std::string& name, double total_epsilon);

  // Records an admitted charge. Must be called *before* the in-memory
  // charge and the mechanism (the write-ahead rule); the caller guarantees
  // the charge fits the graph's budget. Fails with IoError when the append
  // cannot be made durable — the caller must then refuse the query.
  Status RecordCharge(const std::string& name, double epsilon,
                      const std::string& label);

  // Records a refused admission (telemetry: keeps restored refusal counts
  // exact; soundness never depends on it).
  Status RecordRefusal(const std::string& name);

  // Records an eviction: the operator action that ends this name's ledger
  // lifetime. A later load of the same name starts a fresh budget.
  Status RecordEvict(const std::string& name);

  // Forces a snapshot compaction now (also runs automatically every
  // Options::snapshot_every appends).
  Status Snapshot();

  // Records appended since Open (testing/telemetry).
  long long records_appended() const;

 private:
  explicit LedgerWal(std::string dir, const Options& options);

  Status ReplayLocked();
  Status AppendLocked(const std::string& line);
  void MaybeSnapshotLocked();
  Status SnapshotLocked();
  Status OpenWalForAppendLocked(bool truncate);

  const std::string dir_;
  const Options options_;

  mutable std::mutex mu_;
  std::map<std::string, PersistedLedger> state_;
  int wal_fd_ = -1;
  long long seq_ = 0;           // total records ever (snapshot watermark)
  long long appends_ = 0;       // records appended since Open
  int since_last_snapshot_ = 0;
};

}  // namespace nodedp

#endif  // NODEDP_SERVE_LEDGER_WAL_H_

// FamilyCache: name-keyed cache of warmed ExtensionFamily instances.
//
// Building the family — component decomposition plus the LP-grid sweep over
// Δ ∈ {1, 2, ..., Δmax} — is the expensive, ε-independent part of
// Algorithm 1. The cache builds it once per registered graph and warms the
// whole grid eagerly, so every later release (single query, repeated
// queries, whole ε sweeps) is a pure cache hit that pays only for GEM
// scoring and noise sampling.
//
// Entries are handed out as shared_ptr: Evict() drops the cache's
// reference, but queries in flight keep the family alive until they
// finish. ExtensionFamily::Value/Values are internally synchronized, so one
// warmed family safely serves concurrent callers.

#ifndef NODEDP_SERVE_FAMILY_CACHE_H_
#define NODEDP_SERVE_FAMILY_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/extension_family.h"
#include "graph/graph.h"
#include "util/status.h"

namespace nodedp {

class FamilyCache {
 public:
  // Returns the family cached under `key`, or builds one from `g`, warms
  // every Δ in `warm_grid`, and caches it. A warm-up failure (LP resource
  // exhaustion) is returned and nothing is cached, so a later retry starts
  // clean. The expensive build+warm runs under a per-key slot mutex only —
  // concurrent calls for the same key build once (the rest wait and hit),
  // while calls for other keys are never blocked by it.
  Result<std::shared_ptr<ExtensionFamily>> GetOrCreate(
      const std::string& key, const Graph& g,
      const std::vector<double>& warm_grid, const ExtensionOptions& options);

  // Returns the cached family, or nullptr.
  std::shared_ptr<ExtensionFamily> Get(const std::string& key) const;

  // Drops the cache's reference; in-flight holders keep theirs.
  void Evict(const std::string& key);

  struct CacheStats {
    int entries = 0;  // slots holding a built family
    long long hits = 0;
    long long misses = 0;
  };
  CacheStats stats() const;

 private:
  // One slot per key. The slot mutex serializes construction for that key;
  // the map mutex (mu_) only ever guards map lookups and the counters.
  struct Slot {
    std::mutex mu;
    std::shared_ptr<ExtensionFamily> family;  // null until built
  };

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  long long hits_ = 0;
  long long misses_ = 0;
};

}  // namespace nodedp

#endif  // NODEDP_SERVE_FAMILY_CACHE_H_

// FamilyCache: name-keyed cache of warmed ExtensionFamily instances, with
// LRU eviction under a global byte cap.
//
// Building the family — component decomposition plus the LP-grid sweep over
// Δ ∈ {1, 2, ..., Δmax} — is the expensive, ε-independent part of
// Algorithm 1. The cache builds it once per registered graph and warms the
// whole grid eagerly, so every later release (single query, repeated
// queries, whole ε sweeps) is a pure cache hit that pays only for GEM
// scoring and noise sampling.
//
// The build is pipelined, not phased: the family is constructed deferred
// (one O(n+m) partition pass), published to the cache immediately, and then
// warmed — grid cells of already-induced components evaluate while later
// components are still being induced (see ExtensionFamily::Warm). Because
// the warming family is visible in the cache, queries arriving mid-warm get
// the same family and block only on the cells they need, never on the whole
// warm.
//
// Memory: the cache sums ExtensionFamily::MemoryBytes over resident
// entries and evicts least-recently-used READY entries until the total fits
// the byte cap (NODEDP_FAMILY_CACHE_BYTES env var, or SetByteCap; 0 means
// unlimited). The cap is a soft target: warming entries and the entry just
// built are never evicted, so a single oversized family can exceed it.
//
// Entries are handed out as shared_ptr: eviction — explicit or by the cap —
// drops the cache's reference, but queries in flight keep the family alive
// until they finish. ExtensionFamily::Value/Values are internally
// synchronized, so one warmed family safely serves concurrent callers.

#ifndef NODEDP_SERVE_FAMILY_CACHE_H_
#define NODEDP_SERVE_FAMILY_CACHE_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/extension_family.h"
#include "graph/graph.h"
#include "util/status.h"

namespace nodedp {

class FamilyCache {
 public:
  // Reads the byte cap from NODEDP_FAMILY_CACHE_BYTES (unset, empty, or
  // unparsable means unlimited).
  FamilyCache();

  // Returns the family cached under `key`, or builds one from `g`, warms
  // every Δ in `warm_grid`, and caches it. Concurrent calls for the same
  // key build once; a call that arrives while the warm is still running
  // returns the warming family immediately (its queries block only on the
  // cells they touch). A warm-up failure (LP resource exhaustion) is
  // returned and the slot is dropped, so a later retry starts clean.
  Result<std::shared_ptr<ExtensionFamily>> GetOrCreate(
      const std::string& key, const Graph& g,
      const std::vector<double>& warm_grid, const ExtensionOptions& options);

  // Returns the cached family — warmed or still warming — or nullptr.
  // Never blocks behind a build or warm; does not count as an LRU use.
  std::shared_ptr<ExtensionFamily> Get(const std::string& key) const;

  // Update-in-place slot transition for the streaming-update path:
  // atomically installs an externally built `family` as the serving entry
  // under `key`, replacing whatever was resident. The old family is not
  // torn down — in-flight holders keep serving it until they finish; new
  // lookups resolve to `family` immediately. The slot is installed as
  // *warming* (the caller typically still has the incremental re-warm to
  // run, and mid-re-warm queries must block only on invalidated cells):
  // call Promote when the warm completes. A builder that was racing on the
  // same key is neutralized by its slot-identity check — it hands its
  // now-stale family to its own caller (a pre-update query, which the old
  // graph answers correctly) without caching it.
  void Replace(const std::string& key, std::shared_ptr<ExtensionFamily> family);

  // Marks `key`'s slot fully warmed and enforces the byte cap, but only if
  // the slot still holds `family` (a concurrent Replace or Evict wins
  // otherwise). Returns whether it did.
  bool Promote(const std::string& key,
               const std::shared_ptr<ExtensionFamily>& family);

  // Drops the cache's reference; in-flight holders keep theirs.
  void Evict(const std::string& key);

  // 0 means unlimited. Setting a cap enforces it immediately.
  void SetByteCap(std::size_t bytes);
  std::size_t byte_cap() const;

  struct CacheStats {
    int entries = 0;    // fully warmed families resident in the cache
    int warming = 0;    // entries whose build/warm is still in flight
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;   // byte-cap LRU evictions (Evict() not counted)
    long long replacements = 0;  // update-in-place swaps (Replace() calls)
    std::size_t bytes = 0;     // MemoryBytes over resident families
    std::size_t byte_cap = 0;  // 0 = unlimited
  };
  CacheStats stats() const;

 private:
  enum class SlotState {
    kBuilding,  // constructor (partition pass) in flight; family is null
    kWarming,   // family visible and usable; grid warm still running
    kReady,     // built and fully warmed
  };

  // All slot fields are guarded by mu_; the expensive construction and warm
  // run outside it against the shared_ptr'd family.
  struct Slot {
    SlotState state = SlotState::kBuilding;
    std::shared_ptr<ExtensionFamily> family;
    long long last_used = 0;
  };

  // Evicts least-recently-used kReady slots (never `keep`, never warming
  // slots) until the resident families fit byte_cap_. Requires mu_.
  void EnforceByteCapLocked(const std::shared_ptr<Slot>& keep);

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;  // signaled on kBuilding -> visible
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  std::size_t byte_cap_ = 0;
  long long hits_ = 0;
  long long misses_ = 0;
  long long evictions_ = 0;
  long long replacements_ = 0;
  long long use_tick_ = 0;
};

}  // namespace nodedp

#endif  // NODEDP_SERVE_FAMILY_CACHE_H_

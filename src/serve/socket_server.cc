#include "serve/socket_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "serve/protocol.h"

namespace nodedp {

namespace {

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Transport-level telemetry (docs/OBSERVABILITY.md). These mirror the
// in-struct Stats counters so scrapers see the same numbers the `stats`
// API reports, plus wall-time splits the struct cannot carry. read_ns
// covers the recv() wait and therefore *includes client think time* — it
// measures connection idleness, not server work; dispatch_ns is the
// server-side cost of a request line.
Counter* AcceptedCounter() {
  static Counter* counter = MetricsRegistry::Default().GetCounter(
      "nodedp_socket_accepted_total", "Connections accepted");
  return counter;
}

Counter* LinesCounter() {
  static Counter* counter = MetricsRegistry::Default().GetCounter(
      "nodedp_socket_lines_total", "Request lines dispatched over sockets");
  return counter;
}

Counter* DroppedCounter(const char* reason) {
  return MetricsRegistry::Default().GetCounter(
      "nodedp_socket_dropped_total", {{"reason", reason}},
      "Connections dropped by the server, by cause");
}

Histogram* SocketHistogram(const char* name, const char* help) {
  return MetricsRegistry::Default().GetHistogram(
      name, help, MetricsRegistry::LatencyBucketsNs());
}

long long ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Sends all of `data`, retrying short writes. MSG_NOSIGNAL turns a closed
// peer into an error instead of SIGPIPE; the socket's SO_SNDTIMEO bounds
// how long a slow reader can stall us (backpressure).
bool SendAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // timeout (EAGAIN under SO_SNDTIMEO), reset, ...
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool SendLine(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  return SendAll(fd, framed.data(), framed.size());
}

}  // namespace

SocketServer::SocketServer(ReleaseServer* server,
                           const SocketServerOptions& options)
    : server_(server), options_(options) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  if (started_) return Status::InvalidArgument("socket server already started");
  if (options_.max_connections < 1 || options_.listen_backlog < 1) {
    return Status::InvalidArgument(
        "max_connections and listen_backlog must be >= 1");
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IoError(ErrnoMessage("socket"));
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(options_.bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::IoError(
        ErrnoMessage("bind port " + std::to_string(options_.port)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    Status status = Status::IoError(ErrnoMessage("listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status status = Status::IoError(ErrnoMessage("getsockname"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);

  // Self-pipe so Stop() can wake the accept loop out of poll() reliably.
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC) != 0) {
    Status status = Status::IoError(ErrnoMessage("pipe2"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];

  started_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SocketServer::AcceptLoop() {
  long long next_id = 0;
  for (;;) {
    // Bounded admission: hold accepts while every handler slot is busy;
    // excess clients queue in the kernel backlog.
    {
      std::unique_lock<std::mutex> lock(mu_);
      slot_free_.wait(lock, [this] {
        return stopping_ || stats_.active < options_.max_connections;
      });
      if (stopping_) return;
      ReapFinishedLocked();
    }

    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_rd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener closed or broken
    }

    // Request/response over a line protocol: never batch tiny writes.
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    if (options_.write_timeout_ms > 0) {
      timeval timeout{};
      timeout.tv_sec = options_.write_timeout_ms / 1000;
      timeout.tv_usec = (options_.write_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    }

    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    const long long id = next_id++;
    conn_fds_[id] = fd;
    ++stats_.accepted;
    AcceptedCounter()->Increment();
    ++stats_.active;
    handlers_.emplace(id, std::thread([this, id, fd] {
                        HandleConnection(id, fd);
                      }));
  }
}

void SocketServer::HandleConnection(long long id, int fd) {
  static Histogram* read_ns = SocketHistogram(
      "nodedp_socket_read_ns",
      "Wall-ns per recv() wait (includes client think time)");
  static Histogram* dispatch_ns = SocketHistogram(
      "nodedp_socket_dispatch_ns",
      "Wall-ns per request line inside HandleRequestLine");
  static Histogram* write_ns = SocketHistogram(
      "nodedp_socket_write_ns", "Wall-ns sending one reply to the peer");
  std::string pending;
  char buffer[4096];
  bool open = true;
  while (open) {
    const auto read_started = std::chrono::steady_clock::now();
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // reset, or shutdown() from Stop()
    }
    if (n == 0) break;  // peer closed; any partial line is abandoned
    read_ns->Observe(static_cast<double>(ElapsedNs(read_started)));
    pending.append(buffer, static_cast<std::size_t>(n));

    std::size_t newline;
    while (open && (newline = pending.find('\n')) != std::string::npos) {
      const std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (line.size() > options_.max_line_bytes) {
        (void)SendLine(fd, "err line too long");
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.dropped_overflow;
        static Counter* dropped_overflow = DroppedCounter("overflow");
        dropped_overflow->Increment();
        open = false;
        break;
      }
      const auto dispatch_started = std::chrono::steady_clock::now();
      ProtocolReply reply = HandleRequestLine(*server_, line);
      dispatch_ns->Observe(static_cast<double>(ElapsedNs(dispatch_started)));
      LinesCounter()->Increment();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.lines;
      }
      if (!reply.response.empty()) {
        // The payload (today: `metrics` exposition text) follows the
        // response line verbatim; it is already newline-terminated.
        const auto write_started = std::chrono::steady_clock::now();
        const bool sent =
            SendLine(fd, reply.response) &&
            (reply.payload.empty() ||
             SendAll(fd, reply.payload.data(), reply.payload.size()));
        write_ns->Observe(static_cast<double>(ElapsedNs(write_started)));
        if (!sent) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.dropped_write;
          static Counter* dropped_write = DroppedCounter("write");
          dropped_write->Increment();
          open = false;
          break;
        }
      }
      if (reply.quit) open = false;
    }
    // Parse isolation: bytes that never yield a newline cannot grow
    // without bound.
    if (open && pending.size() > options_.max_line_bytes) {
      (void)SendLine(fd, "err line too long");
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.dropped_overflow;
      static Counter* dropped_overflow = DroppedCounter("overflow");
      dropped_overflow->Increment();
      open = false;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  conn_fds_.erase(id);
  --stats_.active;
  finished_.push_back(id);
  slot_free_.notify_all();
}

void SocketServer::ReapFinishedLocked() {
  for (long long id : finished_) {
    auto it = handlers_.find(id);
    if (it == handlers_.end()) continue;  // Stop() already took it
    it->second.join();
    handlers_.erase(it);
  }
  finished_.clear();
}

void SocketServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    slot_free_.notify_all();
  }
  // Wake the accept loop whether it is waiting in poll() or on the slot
  // condvar, then join it before touching the listener.
  const char byte = 'x';
  (void)!::write(wake_wr_, &byte, 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_rd_);
  ::close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;

  // Shut down live connections (wakes their blocked recv), then join every
  // handler. Handlers erase their own conn_fds_ entry on the way out.
  std::map<long long, std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    handlers = std::move(handlers_);
    handlers_.clear();
    finished_.clear();
  }
  for (auto& [id, thread] : handlers) {
    if (thread.joinable()) thread.join();
  }
}

SocketServer::Stats SocketServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace nodedp

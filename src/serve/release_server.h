// ReleaseServer: the long-lived serving layer over Algorithm 1.
//
// The paper frames the mechanism as one-shot; a deployment holds graphs
// resident and answers repeated queries. The server composes three parts:
//
//   * a named graph registry — Load/Evict keep graphs resident in CSR form;
//   * a per-graph privacy-budget ledger (serve/budget_ledger.h) — every
//     query is admitted against a configured total ε and refused with
//     ResourceExhausted once the budget is exhausted (Lemma 2.4: answering
//     queries ε_1..ε_t on the same graph costs Σ ε_i);
//   * a warmed-family cache (serve/family_cache.h) — the ε-independent
//     LP-grid work of Algorithm 1 is done once per graph at load time, so
//     single releases, repeated queries, and whole ε sweeps are all served
//     from one ExtensionFamily. The load-time warm is pipelined (component
//     induction overlaps fast-path probes and LP solves) and the graph is
//     registered before it runs, so queries arriving mid-warm are served by
//     the warming family and block only on the grid cells they need. The
//     cache evicts least-recently-used families under a global byte cap
//     (NODEDP_FAMILY_CACHE_BYTES / SetFamilyCacheByteCap); an evicted
//     graph's next query transparently rebuilds and re-warms.
//
// Concurrency: all entry points are safe to call from multiple threads.
// The registry map and the server Rng sit behind one mutex, each entry's
// ledger/counters behind another (lock order: entry update mutex, then
// entry mutex, then server mutex; never the reverse), and the heavy work —
// family construction, grid evaluation, noise sampling — runs outside
// both, riding the internally synchronized ExtensionFamily on the
// util/parallel.h pool. Eviction during an in-flight query is safe:
// entries, graphs, and families are shared_ptr-held, so the query finishes
// against its own reference. Streaming updates (UpdateGraph) swap the
// graph pointer and the cached family without blocking queries.
//
// Determinism: every admitted query atomically (under its graph's entry
// mutex) charges the ledger and splits a child Rng off the server stream,
// so the k-th admitted charge in a graph's ledger always carries the k-th
// split taken while that entry held the server stream. A single-threaded
// client issuing a fixed command sequence gets bit-identical releases for
// a fixed seed; concurrent clients get streams that depend on admission
// order, never on the worker schedule.

#ifndef NODEDP_SERVE_RELEASE_SERVER_H_
#define NODEDP_SERVE_RELEASE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/private_cc.h"
#include "core/sublinear_cc.h"
#include "serve/budget_ledger.h"
#include "serve/family_cache.h"
#include "serve/ledger_wal.h"
#include "util/random.h"
#include "util/status.h"

namespace nodedp {

struct ServeGraphConfig {
  // Total privacy budget for the lifetime of this graph in the registry.
  // Every admitted query spends from it; once exhausted the graph can only
  // be evicted. Must be > 0.
  double total_epsilon = 10.0;
  // Per-release knobs (Δmax, β, extension options). delta_max should be a
  // data-independent public constant (e.g. a degree cap); <= 0 means the
  // paper's default of n.
  PrivateCcOptions release;
  // Approx-tier knobs (ReleaseCcApprox / `release_cc ... tier=approx`).
  // approx.delta_max <= 0 inherits release.delta_max, so one degree
  // promise governs both tiers unless explicitly overridden.
  PrivateSublinearCcOptions approx;
  // Build and warm the extension family at load time (recommended: makes
  // load the expensive step and every query cheap). When false the first
  // query pays for construction.
  bool prewarm = true;
};

struct BudgetReport {
  double total = 0.0;
  double spent = 0.0;
  double remaining = 0.0;
  int num_charges = 0;
  int num_refusals = 0;
};

// What UpdateGraph did: how much of the insert batch was new, the
// post-update edge count, and how much of the warmed family survived.
struct UpdateReport {
  int edges_added = 0;     // inserts that were actually new edges
  int duplicates = 0;      // already present, or repeated in the batch
  int num_edges = 0;       // edge count after the update
  // Incremental-maintenance telemetry (both 0 when no family was resident:
  // nothing to patch, the next query builds cold from the updated graph).
  int components_adopted = 0;
  int components_invalidated = 0;
  bool family_rewarmed = false;
};

struct ServeGraphStats {
  int num_vertices = 0;
  int num_edges = 0;
  std::size_t graph_memory_bytes = 0;  // resident heap bytes
  // Bytes of the NDPG v2 file mmap-backing the graph; 0 when heap-loaded.
  std::size_t graph_mapped_bytes = 0;
  bool family_warmed = false;  // family resident in the cache (or warming)
  std::size_t family_memory_bytes = 0;  // 0 until the family is resident
  long long queries_answered = 0;
  long long queries_failed = 0;  // admitted but failed internally
  BudgetReport budget;
  ExtensionFamily::Stats family;  // zero-initialized until warmed
};

class ReleaseServer {
 public:
  explicit ReleaseServer(std::uint64_t seed = 1) : rng_(seed) {}

  ReleaseServer(const ReleaseServer&) = delete;
  ReleaseServer& operator=(const ReleaseServer&) = delete;

  // Attaches a durable ledger store (serve/ledger_wal.h) rooted at `dir`,
  // creating it if needed and replaying any existing snapshot + WAL. From
  // then on every admission is appended to the log *before* the in-memory
  // charge is made and the mechanism runs, so a restart from the same
  // store restores every graph's ledger — charges in admission order,
  // totals bit-identical — and a query refused over-budget before a crash
  // stays refused after it. A graph `Load`ed under a name with restored
  // state adopts the restored ledger wholesale: its original
  // total_epsilon (the config's total is ignored — a reload must never
  // mint fresh budget for the same data), its spent charges, and its
  // refusal count. `Evict` is the one operator action that ends a name's
  // durable ledger; a later load of that name starts a fresh budget.
  //
  // Must be called before the first Load (fails with InvalidArgument once
  // graphs are registered); fails with IoError if the store cannot be
  // opened or replayed.
  Status EnableDurableLedgers(const std::string& dir,
                              const LedgerWal::Options& options = {});

  // Registers `g` under `name`. Fails with InvalidArgument if the name is
  // empty, already registered, or the config is invalid; with the family
  // warm-up error if prewarm fails. The graph is registered *before* the
  // prewarm runs, so queries arriving mid-warm are served by the warming
  // family (blocking only on the grid cells they need). If the warm fails
  // and no query has charged the ledger, the registration is rolled back
  // (nothing stays registered); if a mid-warm query *did* spend budget,
  // the graph stays registered with its ledger intact — accounting for
  // emitted releases must survive a failed load — and the error is still
  // returned (evict explicitly to discard it).
  Status Load(const std::string& name, Graph g,
              const ServeGraphConfig& config = {});

  // Load() from a graph file — binary (NDPG v1/v2) or text edge list,
  // sniffed by magic bytes (graph_io.h). Always heap-loads (full
  // validation, one pass over the file); see LoadMmap for zero-copy.
  Status LoadFromFile(const std::string& name, const std::string& path,
                      const ServeGraphConfig& config = {});

  // Zero-copy registration of an NDPG v2 file via Graph::FromMmap: O(1) in
  // the graph size, so a 10M-vertex graph is servable milliseconds after
  // the call. The approx tier (ReleaseCcApprox) touches only the pages its
  // truncated BFS walks; exact-tier queries work too but page in whatever
  // the family build reads (pass config.prewarm = false to keep the load
  // itself O(1)). The file must stay intact while the graph is registered
  // (see Graph::FromMmap).
  Status LoadMmap(const std::string& name, const std::string& path,
                  const ServeGraphConfig& config = {});

  // Writes a registered graph back out — binary NDPG v1 when `binary`,
  // text edge list otherwise. The ops path for converting text corpora to
  // the binary ingestion format. (The graph structure is the private
  // database; saving it is an operator action, not a release.)
  Status Save(const std::string& name, const std::string& path,
              bool binary = true) const;

  // Writes a registered graph in NDPG v2 (the mmap-servable CSR layout) —
  // the ops path for preparing LoadMmap inputs.
  Status SaveV2(const std::string& name, const std::string& path) const;

  // Unregisters the graph and drops its cached family. In-flight queries
  // against it finish normally.
  Status Evict(const std::string& name);

  // Applies an insert-only edge batch to a registered graph — the
  // streaming-update path. This is a *data* operation, not a release: it
  // charges no budget and returns no private value; the graph's ledger,
  // name, and cache key are unchanged.
  //
  // The update is atomic and non-blocking for queries. The patched graph
  // is built beside the old one (Graph::ApplyEdgeDelta; invalid batches —
  // self-loops, out-of-range endpoints — refuse with InvalidArgument and
  // change nothing). If a warmed family is resident, an incremental family
  // is derived from it: components the batch does not touch adopt the old
  // family's solved state, merged components are rebuilt. The patched
  // family is then published (FamilyCache::Replace) and the graph swapped
  // *before* the invalidated cells re-warm — mirroring Load's
  // register-before-warm — so queries arriving mid-re-warm are served by
  // the patched family and block only on the invalidated cells; queries
  // that resolved the old family before the swap finish against it (it
  // stays alive through their shared_ptr). If the re-warm fails, the slot
  // is dropped (the next query rebuilds cold from the patched graph), the
  // graph swap stands, and the error is returned. Concurrent updates to
  // the same graph are serialized. With no resident family only the graph
  // swaps (family_rewarmed = false).
  Result<UpdateReport> UpdateGraph(
      const std::string& name,
      const std::vector<std::pair<int, int>>& inserts);

  std::vector<std::string> GraphNames() const;

  // ε-node-private release of the number of connected components (Eq. (1)).
  // Charges `epsilon` to the graph's ledger at admission; refuses with
  // ResourceExhausted (ledger untouched) when the budget cannot cover it.
  Result<ConnectedComponentsRelease> ReleaseCc(const std::string& name,
                                               double epsilon);

  // Same for the spanning-forest size (Algorithm 1).
  Result<SpanningForestRelease> ReleaseSf(const std::string& name,
                                          double epsilon);

  // Approx-tier release: the sampled truncated-component-count surrogate
  // (core/sublinear_cc.h, PrivateSublinearCc) instead of Algorithm 1.
  // Charges `epsilon` to the same ledger as the exact tier (composition
  // does not care which mechanism spent it) but needs no warmed family and
  // touches O(s * cutoff) vertices — the serving path for mmap-backed
  // graphs too large to warm. The release reports its own sensitivity and
  // public error bounds; config.approx configures it (delta_max inheriting
  // config.release.delta_max when unset).
  Result<SublinearCcRelease> ReleaseCcApprox(const std::string& name,
                                             double epsilon);

  // Releases f_cc at every ε in `epsilons` against the one warmed family.
  // Admission is all-or-nothing: one ledger charge of Σ ε_i, refused
  // entirely if the sum does not fit the remaining budget.
  Result<std::vector<ConnectedComponentsRelease>> SweepCc(
      const std::string& name, const std::vector<double>& epsilons);

  Result<BudgetReport> Budget(const std::string& name) const;

  // Registry + family telemetry for one graph. The family stats are a
  // consistent snapshot (ExtensionFamily::stats() copies under its mutex),
  // safe to read while queries are in flight.
  Result<ServeGraphStats> Stats(const std::string& name) const;

  // Registry-wide aggregate backing the no-name `stats` verb: totals only,
  // independent of registry iteration order, so the wire line is stable as
  // graphs come and go (exact format documented in docs/SERVING.md).
  struct Summary {
    std::size_t graphs = 0;
    std::size_t memory_bytes = 0;  // resident heap bytes across all graphs
    std::size_t mapped_bytes = 0;  // mmap-backed bytes across all graphs
    FamilyCache::CacheStats cache;
    long long refusals = 0;  // Σ ledger refusals across registered graphs
  };
  Summary GetSummary() const;

  FamilyCache::CacheStats family_cache_stats() const {
    return families_.stats();
  }

  // Global cap on resident family bytes; least-recently-used families are
  // evicted to fit (their graphs stay registered; the next query rebuilds).
  // 0 = unlimited. Also settable via NODEDP_FAMILY_CACHE_BYTES.
  void SetFamilyCacheByteCap(std::size_t bytes) {
    families_.SetByteCap(bytes);
  }

 private:
  struct Entry {
    Entry(Graph graph_in, const ServeGraphConfig& config_in,
          std::string cache_key_in)
        : graph(std::make_shared<const Graph>(std::move(graph_in))),
          config(config_in),
          cache_key(std::move(cache_key_in)),
          ledger(config_in.total_epsilon) {}

    // The resident graph. A shared_ptr so UpdateGraph can swap in the
    // patched graph atomically (write under mu) while readers — queries,
    // Save, Stats — keep serving the snapshot they took; the edge-update
    // path is the only writer.
    std::shared_ptr<const Graph> graph;  // guarded by mu; never null
    const ServeGraphConfig config;
    // Family-cache key: unique per load (name + load id), so re-loading a
    // name after eviction can never alias the evicted graph's family. The
    // entry deliberately holds no family pointer of its own: every query
    // resolves through the FamilyCache, so a byte-cap eviction actually
    // frees the memory and the next query rebuilds. Updates keep the key:
    // the patched family replaces the old one in the same slot.
    const std::string cache_key;
    // Serializes UpdateGraph calls on this graph; outermost (taken before
    // mu, held across the incremental build + re-warm). Query paths never
    // touch it.
    std::mutex update_mu;
    std::mutex mu;  // guards graph (the pointer), ledger, counters, retired
    BudgetLedger ledger;
    // Set (under mu) when a failed prewarm rolls this registration back:
    // queries that raced the rollback are refused at admission instead of
    // charging a ledger that is about to be discarded.
    bool retired = false;
    long long queries_answered = 0;
    long long queries_failed = 0;
  };

  // A query that passed admission: its entry, its warmed family, and the
  // child noise stream split at admission.
  struct Admitted {
    std::shared_ptr<Entry> entry;
    std::shared_ptr<ExtensionFamily> family;
    Rng child{0};
  };

  Result<std::shared_ptr<Entry>> Find(const std::string& name) const;

  // The shared front half of every query: find the graph, charge
  // `epsilon_total` under `label` (refusing on budget exhaustion), split
  // the child stream atomically with the charge, then resolve the warmed
  // family (built on first use, outside all server locks). The approx
  // tier passes need_family = false: it runs on the graph alone, so
  // admission never triggers (or waits on) a family build.
  Result<Admitted> Admit(const std::string& name, double epsilon_total,
                         std::string label, bool need_family = true);

  // The Δ grid the family is warmed with (the Algorithm 1 access pattern).
  static std::vector<double> WarmGrid(const Graph& graph,
                                      const ServeGraphConfig& config);

  // Snapshot of the entry's graph pointer (brief entry.mu critical
  // section). Callers hold the snapshot across any use of the graph so an
  // UpdateGraph swap cannot free it from under them.
  static std::shared_ptr<const Graph> GraphSnapshot(Entry& entry);

  // Resolves the entry's family through the cache: a map-lookup hit when
  // resident (warmed or warming), a pipelined build+warm on first use or
  // after a byte-cap eviction. Never takes entry.mu or the server mutex.
  Result<std::shared_ptr<ExtensionFamily>> FamilyFor(Entry& entry);

  // Splits a child stream off the server Rng (serialized by mu_; callers
  // may hold entry.mu, per the lock order above).
  Rng SplitRng();

  void RecordOutcome(Entry& entry, bool ok, long long answered);

  mutable std::mutex mu_;  // guards registry_, rng_, and next_load_id_
  std::map<std::string, std::shared_ptr<Entry>> registry_;
  FamilyCache families_;
  Rng rng_;
  long long next_load_id_ = 0;
  // Durable ledger store; set once by EnableDurableLedgers before any
  // Load, read-only afterwards (LedgerWal is internally synchronized and
  // its mutex is a leaf: taken after entry.mu / mu_, holding neither).
  std::unique_ptr<LedgerWal> wal_;
};

}  // namespace nodedp

#endif  // NODEDP_SERVE_RELEASE_SERVER_H_

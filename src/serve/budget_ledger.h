// BudgetLedger: the refusing privacy accountant of the release server.
//
// dp/composition.h's PrivacyAccountant is a guard rail for pipeline code —
// over-spending is a programmer error and CHECK-fails. A server cannot
// crash because a client asked one query too many: the ledger fronts the
// accountant with an admission check and turns over-spending into a
// recoverable ResourceExhausted Status. Once a charge is admitted it is
// recorded through the underlying PrivacyAccountant, so the composition
// arithmetic (Lemma 2.4: total cost is Σ ε_i) lives in exactly one place.
//
// Semantics:
//   * Charges are admitted iff spent + ε <= total (up to the accountant's
//     numeric slack). A refused charge leaves the ledger untouched.
//   * Charges are made at query admission and never refunded — even if the
//     release later fails internally (LP resource exhaustion). This is the
//     conservative reading: budget accounting must not depend on
//     data-dependent execution paths.
//   * Not thread-safe by itself; the owning ReleaseServer entry serializes
//     access (see release_server.cc).

#ifndef NODEDP_SERVE_BUDGET_LEDGER_H_
#define NODEDP_SERVE_BUDGET_LEDGER_H_

#include <string>
#include <utility>
#include <vector>

#include "dp/composition.h"
#include "util/status.h"

namespace nodedp {

class BudgetLedger {
 public:
  // Requires total_epsilon > 0 (a server graph with no budget cannot be
  // queried, so constructing one is a configuration error).
  explicit BudgetLedger(double total_epsilon);

  // Admits and records a charge of `epsilon` for the named query, or
  // refuses with ResourceExhausted (leaving the ledger untouched) when the
  // charge would exceed the total. epsilon <= 0 is refused with
  // InvalidArgument.
  Status TryCharge(double epsilon, std::string label);

  // Whether TryCharge(epsilon, ...) would be admitted right now. Lets the
  // durable-ledger path (serve/ledger_wal.h) order the admission decision
  // before the write-ahead record before the in-memory charge, all on the
  // accountant's one admission predicate.
  bool CanCharge(double epsilon) const { return accountant_.CanSpend(epsilon); }

  // Re-admits a charge from a durable record during WAL replay. Unlike
  // TryCharge, a failure is Internal (a restored ledger that does not fit
  // its own total is corrupt state, not a client refusal) and the refusal
  // counter is untouched.
  Status RestoreCharge(double epsilon, std::string label);

  // Restores the refusal counter from a durable record (telemetry only;
  // never affects admission).
  void SetRefusals(int num_refusals) { num_refusals_ = num_refusals; }

  double total() const { return accountant_.total(); }
  double spent() const { return accountant_.spent(); }
  double remaining() const { return accountant_.remaining(); }
  int num_charges() const {
    return static_cast<int>(accountant_.ledger().size());
  }
  int num_refusals() const { return num_refusals_; }

  // The admitted charges, in order: (label, epsilon).
  const std::vector<std::pair<std::string, double>>& charges() const {
    return accountant_.ledger();
  }

 private:
  PrivacyAccountant accountant_;
  int num_refusals_ = 0;
};

}  // namespace nodedp

#endif  // NODEDP_SERVE_BUDGET_LEDGER_H_

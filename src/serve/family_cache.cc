#include "serve/family_cache.h"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace nodedp {

namespace {

// Cache outcome counters (docs/OBSERVABILITY.md): `hit` is a ready
// family, `warm_wait` a resident-but-still-warming one (the caller may
// block on the cells it needs), `miss` a cold build.
Counter* CacheEventCounter(const char* event) {
  return MetricsRegistry::Default().GetCounter(
      "nodedp_family_cache_events_total", {{"event", event}},
      "FamilyCache GetOrCreate outcomes by kind");
}

std::size_t ByteCapFromEnv() {
  const char* env = std::getenv("NODEDP_FAMILY_CACHE_BYTES");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<std::size_t>(parsed);
}

}  // namespace

FamilyCache::FamilyCache() : byte_cap_(ByteCapFromEnv()) {}

Result<std::shared_ptr<ExtensionFamily>> FamilyCache::GetOrCreate(
    const std::string& key, const Graph& g,
    const std::vector<double>& warm_grid, const ExtensionOptions& options) {
  std::shared_ptr<Slot> slot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = slots_.find(key);
      if (it == slots_.end()) {
        slot = std::make_shared<Slot>();
        slots_.emplace(key, slot);
        ++misses_;
        static Counter* miss_events = CacheEventCounter("miss");
        miss_events->Increment();
        break;  // we are the builder
      }
      if (it->second->state != SlotState::kBuilding) {
        // Ready, or warming — a warming family is fully usable: callers
        // block only on the cells their queries touch.
        ++hits_;
        if (it->second->state == SlotState::kReady) {
          static Counter* hit_events = CacheEventCounter("hit");
          hit_events->Increment();
        } else {
          static Counter* warm_wait_events = CacheEventCounter("warm_wait");
          warm_wait_events->Increment();
        }
        it->second->last_used = ++use_tick_;
        return it->second->family;
      }
      // Another caller is running the constructor (the short partition
      // pass, not the warm). Wait for the family to become visible, then
      // re-check — the slot may also have been dropped on failure.
      slot_cv_.wait(lock);
    }
  }

  // We own the build. Construct deferred (cheap: one O(n+m) pass), publish
  // as warming so concurrent callers share it mid-warm, then run the
  // pipelined warm outside every cache lock. The warm dispatches its cells
  // cost-ordered (LPT by |C| + m_C) with a demand-first fast lane: a cold
  // query racing this warm needs exactly these grid cells, and the cells
  // it blocks on jump the warm's claim queue and publish individually —
  // so the cells cold queries hit first are solved first, by construction
  // rather than by a precomputed grid order.
  auto family = std::make_shared<ExtensionFamily>(
      g, options, ExtensionFamily::DeferInduction{});
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot->family = family;
    slot->state = SlotState::kWarming;
    slot->last_used = ++use_tick_;
  }
  slot_cv_.notify_all();

  const Status warmed = family->Warm(warm_grid);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  const bool still_ours = it != slots_.end() && it->second == slot;
  if (!warmed.ok()) {
    // Drop the slot so the next caller starts clean. Concurrent callers
    // that picked the family up mid-warm hit the same LP failure on their
    // own cells.
    if (still_ours) slots_.erase(it);
    return warmed;
  }
  if (still_ours) {
    slot->state = SlotState::kReady;
    slot->last_used = ++use_tick_;
    EnforceByteCapLocked(slot);
  }
  return family;
}

std::shared_ptr<ExtensionFamily> FamilyCache::Get(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return nullptr;
  if (it->second->state == SlotState::kBuilding) return nullptr;
  return it->second->family;
}

void FamilyCache::Replace(const std::string& key,
                          std::shared_ptr<ExtensionFamily> family) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A fresh Slot object, never a mutation of the resident one: any
    // builder mid-warm on the old slot must fail its identity check, or it
    // would promote this (possibly still re-warming) family to kReady.
    auto slot = std::make_shared<Slot>();
    slot->family = std::move(family);
    slot->state = SlotState::kWarming;
    slot->last_used = ++use_tick_;
    slots_[key] = std::move(slot);
    ++replacements_;
  }
  // Wake callers parked on a kBuilding slot for this key; they re-check
  // and pick up the replacement.
  slot_cv_.notify_all();
}

bool FamilyCache::Promote(const std::string& key,
                          const std::shared_ptr<ExtensionFamily>& family) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end() || it->second->family != family) return false;
  it->second->state = SlotState::kReady;
  it->second->last_used = ++use_tick_;
  EnforceByteCapLocked(it->second);
  return true;
}

void FamilyCache::Evict(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  // Dropping a kBuilding/kWarming slot is safe: the builder re-checks slot
  // identity before caching and simply hands its family to its caller.
  slots_.erase(key);
}

void FamilyCache::SetByteCap(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_cap_ = bytes;
  EnforceByteCapLocked(nullptr);
}

std::size_t FamilyCache::byte_cap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byte_cap_;
}

void FamilyCache::EnforceByteCapLocked(const std::shared_ptr<Slot>& keep) {
  if (byte_cap_ == 0) return;
  // Size every resident family exactly once (MemoryBytes walks the whole
  // family), then evict in last_used order until the total fits.
  struct Victim {
    std::map<std::string, std::shared_ptr<Slot>>::iterator it;
    std::size_t bytes;
  };
  std::size_t bytes = 0;
  std::vector<Victim> victims;
  for (auto it = slots_.begin(); it != slots_.end(); ++it) {
    const Slot& slot = *it->second;
    if (slot.state == SlotState::kBuilding) continue;
    const std::size_t slot_bytes = slot.family->MemoryBytes();
    bytes += slot_bytes;
    // Warming entries and the just-used entry are pinned, so the cap is a
    // soft target a single oversized family may exceed.
    if (it->second == keep || slot.state != SlotState::kReady) continue;
    victims.push_back(Victim{it, slot_bytes});
  }
  if (bytes <= byte_cap_) return;
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              return a.it->second->last_used < b.it->second->last_used;
            });
  for (const Victim& victim : victims) {
    if (bytes <= byte_cap_) break;
    bytes -= victim.bytes;
    slots_.erase(victim.it);
    ++evictions_;
  }
}

FamilyCache::CacheStats FamilyCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.replacements = replacements_;
  s.byte_cap = byte_cap_;
  for (const auto& [key, slot] : slots_) {
    if (slot->state == SlotState::kBuilding) continue;
    // MemoryBytes takes the family mutex, which warms and served queries
    // (all on the Values path) only hold around planning and merging —
    // never across LP solves — so telemetry cannot stall behind a warm.
    s.bytes += slot->family->MemoryBytes();
    if (slot->state == SlotState::kReady) {
      ++s.entries;
    } else {
      ++s.warming;
    }
  }
  return s;
}

}  // namespace nodedp

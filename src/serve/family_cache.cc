#include "serve/family_cache.h"

#include <utility>

namespace nodedp {

Result<std::shared_ptr<ExtensionFamily>> FamilyCache::GetOrCreate(
    const std::string& key, const Graph& g,
    const std::vector<double>& warm_grid, const ExtensionOptions& options) {
  for (;;) {
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = slots_.find(key);
      if (it == slots_.end()) {
        it = slots_.emplace(key, std::make_shared<Slot>()).first;
      }
      slot = it->second;
    }

    // Build (or find built) under the slot mutex only: same-key callers
    // serialize here and all but the first hit; other keys are unaffected.
    std::lock_guard<std::mutex> slot_lock(slot->mu);
    if (slot->family != nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      ++hits_;
      return slot->family;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = slots_.find(key);
      if (it == slots_.end() || it->second != slot) {
        // The builder we waited behind failed its warm-up and dropped the
        // slot: start over on a fresh one so our build lands in the map
        // (building into the orphan would cache nothing).
        continue;
      }
      ++misses_;
    }
    auto family = std::make_shared<ExtensionFamily>(g, options);
    if (!warm_grid.empty()) {
      const Result<std::vector<double>> warm = family->Values(warm_grid);
      if (!warm.ok()) {
        // Drop the slot so the next caller starts clean.
        std::lock_guard<std::mutex> lock(mu_);
        auto it = slots_.find(key);
        if (it != slots_.end() && it->second == slot) slots_.erase(it);
        return warm.status();
      }
    }
    slot->family = std::move(family);
    return slot->family;
  }
}

std::shared_ptr<ExtensionFamily> FamilyCache::Get(
    const std::string& key) const {
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it == slots_.end()) return nullptr;
    slot = it->second;
  }
  std::lock_guard<std::mutex> slot_lock(slot->mu);
  return slot->family;
}

void FamilyCache::Evict(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.erase(key);
}

FamilyCache::CacheStats FamilyCache::stats() const {
  std::vector<std::shared_ptr<Slot>> slots;
  CacheStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.hits = hits_;
    s.misses = misses_;
    slots.reserve(slots_.size());
    for (const auto& [key, slot] : slots_) slots.push_back(slot);
  }
  // Telemetry must never block behind an in-flight build+warm (its slot
  // mutex is held for the whole thing): a slot we cannot try_lock is
  // mid-build, i.e. not a built entry yet — exactly how it is counted.
  for (const auto& slot : slots) {
    if (!slot->mu.try_lock()) continue;
    if (slot->family != nullptr) ++s.entries;
    slot->mu.unlock();
  }
  return s;
}

}  // namespace nodedp

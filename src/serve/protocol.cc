#include "serve/protocol.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"

namespace nodedp {

namespace {

// Canonical verb names for metric labels and trace contexts. Unknown
// commands fold into "other" so a client typo cannot mint unbounded
// label values (Prometheus cardinality hygiene).
constexpr const char* kVerbs[] = {
    "quit", "load", "load_mmap", "gen", "save", "release_cc", "release_sf",
    "sweep", "add_edges", "budget", "stats", "evict", "metrics"};

const char* CanonicalVerb(const std::string& command) {
  for (const char* verb : kVerbs) {
    if (command == verb) return verb;
  }
  return "other";
}

// Per-verb request accounting. The table is built once, on first
// dispatch, so the hot path is one read-only map lookup plus lock-free
// increments/observes.
struct VerbMetrics {
  Counter* requests;
  Counter* errors;
  Histogram* latency;
};

const VerbMetrics& MetricsForVerb(const char* verb) {
  static const std::map<std::string, VerbMetrics>* table = [] {
    auto* t = new std::map<std::string, VerbMetrics>();
    MetricsRegistry& registry = MetricsRegistry::Default();
    std::vector<const char*> verbs(std::begin(kVerbs), std::end(kVerbs));
    verbs.push_back("other");
    for (const char* verb : verbs) {
      VerbMetrics metrics;
      metrics.requests = registry.GetCounter(
          "nodedp_requests_total", {{"verb", verb}},
          "Requests dispatched through the line protocol");
      metrics.errors = registry.GetCounter(
          "nodedp_request_errors_total", {{"verb", verb}},
          "Requests answered with an err response");
      metrics.latency = registry.GetHistogram(
          "nodedp_request_ns", {{"verb", verb}},
          "End-to-end request latency (parse to response) in wall-ns",
          MetricsRegistry::LatencyBucketsNs());
      t->emplace(verb, metrics);
    }
    return t;
  }();
  return table->at(verb);
}

// printf-style append; responses are built in memory so every transport
// (stdout, socket) sends exactly one write per reply.
void Appendf(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n <= 0) return;
  if (static_cast<std::size_t>(n) < sizeof(buffer)) {
    out->append(buffer, static_cast<std::size_t>(n));
    return;
  }
  std::vector<char> big(static_cast<std::size_t>(n) + 1);
  va_start(args, format);
  std::vsnprintf(big.data(), big.size(), format, args);
  va_end(args);
  out->append(big.data(), static_cast<std::size_t>(n));
}

// Parses a strictly positive double, returning false on garbage.
bool ParsePositiveDouble(const std::string& token, double* out) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || !(value > 0.0)) return false;
  *out = value;
  return true;
}

bool ParseNonNegativeInt(const std::string& token, long long* out) {
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || value < 0) return false;
  *out = value;
  return true;
}

// `load`/`gen` share the trailing [budget] [delta_max] arguments.
bool ParseConfigTail(const std::vector<std::string>& args, std::size_t from,
                     ServeGraphConfig* config, std::string* error) {
  if (args.size() > from) {
    if (!ParsePositiveDouble(args[from], &config->total_epsilon)) {
      *error = "budget must be a positive number";
      return false;
    }
  }
  if (args.size() > from + 1) {
    long long delta_max = 0;
    if (!ParseNonNegativeInt(args[from + 1], &delta_max) || delta_max <= 0 ||
        delta_max > 2147483647LL) {
      *error = "delta_max must be a positive int";
      return false;
    }
    config->release.delta_max = static_cast<int>(delta_max);
  }
  return true;
}

std::string BudgetResponse(const BudgetReport& budget) {
  std::string out;
  Appendf(&out,
          "ok total=%.6g spent=%.6g remaining=%.6g charges=%d refusals=%d",
          budget.total, budget.spent, budget.remaining, budget.num_charges,
          budget.num_refusals);
  return out;
}

// Executes one parsed request. `args` is non-empty; args[0] is the
// command word.
ProtocolReply DispatchCommand(ReleaseServer& server,
                              const std::vector<std::string>& args) {
  ProtocolReply reply;
  const std::string& command = args[0];
  std::string& out = reply.response;

  if (command == "quit") {
    out = "ok bye";
    reply.quit = true;
    return reply;
  }

  if (command == "load") {
    if (args.size() < 3 || args.size() > 5) {
      out = "err usage: load <name> <path> [budget] [delta_max]";
      return reply;
    }
    ServeGraphConfig config;
    std::string error;
    if (!ParseConfigTail(args, 3, &config, &error)) {
      out = "err " + error;
      return reply;
    }
    const Status loaded = server.LoadFromFile(args[1], args[2], config);
    if (!loaded.ok()) {
      out = "err " + loaded.ToString();
      return reply;
    }
    const auto stats = server.Stats(args[1]);
    Appendf(&out, "ok loaded %s n=%d m=%d budget=%.6g warmed=%d",
            args[1].c_str(), stats->num_vertices, stats->num_edges,
            stats->budget.total, stats->family_warmed ? 1 : 0);
  } else if (command == "load_mmap") {
    // Zero-copy registration of an NDPG v2 file: O(1) in the graph size.
    // No prewarm — the point is that the graph is servable immediately
    // (approx tier touches only the pages it walks); the first exact-tier
    // query pays the family build instead.
    if (args.size() < 3 || args.size() > 5) {
      out = "err usage: load_mmap <name> <path> [budget] [delta_max]";
      return reply;
    }
    ServeGraphConfig config;
    config.prewarm = false;
    std::string error;
    if (!ParseConfigTail(args, 3, &config, &error)) {
      out = "err " + error;
      return reply;
    }
    const Status loaded = server.LoadMmap(args[1], args[2], config);
    if (!loaded.ok()) {
      out = "err " + loaded.ToString();
      return reply;
    }
    const auto stats = server.Stats(args[1]);
    Appendf(&out, "ok mapped %s n=%d m=%d budget=%.6g mapped_bytes=%zu",
            args[1].c_str(), stats->num_vertices, stats->num_edges,
            stats->budget.total, stats->graph_mapped_bytes);
  } else if (command == "gen") {
    if (args.size() < 6 || args.size() > 8 || args[2] != "gnp") {
      out =
          "err usage: gen <name> gnp <n> <avg_deg> <seed> [budget] "
          "[delta_max]";
      return reply;
    }
    long long n = 0;
    double avg_deg = 0.0;
    long long gen_seed = 0;
    if (!ParseNonNegativeInt(args[3], &n) || n <= 0 || n > 2147483647LL ||
        !ParsePositiveDouble(args[4], &avg_deg) ||
        !ParseNonNegativeInt(args[5], &gen_seed)) {
      out = "err gen: bad n / avg_deg / seed";
      return reply;
    }
    ServeGraphConfig config;
    std::string error;
    if (!ParseConfigTail(args, 6, &config, &error)) {
      out = "err " + error;
      return reply;
    }
    Rng rng(static_cast<std::uint64_t>(gen_seed));
    Graph g = gen::ErdosRenyi(static_cast<int>(n),
                              avg_deg / static_cast<double>(n), rng);
    const int num_vertices = g.NumVertices();
    const int num_edges = g.NumEdges();
    const Status loaded = server.Load(args[1], std::move(g), config);
    if (!loaded.ok()) {
      out = "err " + loaded.ToString();
      return reply;
    }
    // Report the budget the server actually adopted: with durable ledgers
    // a reload inherits the restored total, not the config's.
    const auto budget = server.Budget(args[1]);
    Appendf(&out, "ok generated %s n=%d m=%d budget=%.6g", args[1].c_str(),
            num_vertices, num_edges,
            budget.ok() ? budget->total : config.total_epsilon);
  } else if (command == "save") {
    if (args.size() < 3 || args.size() > 4) {
      out = "err usage: save <name> <path> [text|binary|v2]";
      return reply;
    }
    const std::string format = args.size() == 4 ? args[3] : "binary";
    if (format != "text" && format != "binary" && format != "v2") {
      out = "err save: format must be text, binary, or v2";
      return reply;
    }
    const Status saved =
        format == "v2" ? server.SaveV2(args[1], args[2])
                       : server.Save(args[1], args[2],
                                     /*binary=*/format == "binary");
    if (!saved.ok()) {
      out = "err " + saved.ToString();
      return reply;
    }
    Appendf(&out, "ok saved %s %s", args[1].c_str(), format.c_str());
  } else if (command == "release_cc" || command == "release_sf") {
    // release_cc takes an optional serving tier: `tier=exact` (default)
    // answers from the warmed Algorithm 1 family; `tier=approx` answers
    // from the sampled sublinear estimator — no family, O(s * cutoff)
    // work, its own (larger) noise, reported with public error bounds.
    const bool is_cc = command == "release_cc";
    std::string tier = "exact";
    if (is_cc && args.size() == 4) {
      if (args[3] == "tier=approx" || args[3] == "tier=exact") {
        tier = args[3].substr(5);
      } else {
        out = "err release_cc: tier must be tier=approx or tier=exact";
        return reply;
      }
    } else if (args.size() != 3) {
      out = is_cc ? "err usage: release_cc <name> <epsilon> "
                    "[tier=approx|tier=exact]"
                  : "err usage: release_sf <name> <epsilon>";
      return reply;
    }
    double epsilon = 0.0;
    if (!ParsePositiveDouble(args[2], &epsilon)) {
      out = "err epsilon must be a positive number";
      return reply;
    }
    if (is_cc && tier == "approx") {
      const auto release = server.ReleaseCcApprox(args[1], epsilon);
      if (!release.ok()) {
        out = "err " + release.status().ToString();
        return reply;
      }
      Appendf(&out,
              "ok cc=%.3f eps=%.6g tier=approx samples=%d cutoff=%d "
              "noise=%.6g bias_le=%.6g",
              release->estimate, epsilon, release->num_samples,
              release->bfs_cutoff, release->laplace_scale,
              release->truncation_bias_bound);
    } else if (is_cc) {
      const auto release = server.ReleaseCc(args[1], epsilon);
      if (!release.ok()) {
        out = "err " + release.status().ToString();
        return reply;
      }
      Appendf(&out, "ok cc=%.3f eps=%.6g delta=%d", release->estimate,
              epsilon, release->forest.selected_delta);
    } else {
      const auto release = server.ReleaseSf(args[1], epsilon);
      if (!release.ok()) {
        out = "err " + release.status().ToString();
        return reply;
      }
      Appendf(&out, "ok sf=%.3f eps=%.6g delta=%d", release->estimate,
              epsilon, release->selected_delta);
    }
  } else if (command == "sweep") {
    if (args.size() < 3) {
      out = "err usage: sweep <name> <eps1> <eps2> ...";
      return reply;
    }
    std::vector<double> epsilons;
    for (std::size_t i = 2; i < args.size(); ++i) {
      double epsilon = 0.0;
      if (!ParsePositiveDouble(args[i], &epsilon)) {
        out = "err sweep: every epsilon must be a positive number";
        return reply;
      }
      epsilons.push_back(epsilon);
    }
    const auto releases = server.SweepCc(args[1], epsilons);
    if (!releases.ok()) {
      out = "err " + releases.status().ToString();
      return reply;
    }
    Appendf(&out, "ok sweep k=%zu", releases->size());
    for (std::size_t i = 0; i < releases->size(); ++i) {
      Appendf(&out, " %.6g:%.3f", epsilons[i], (*releases)[i].estimate);
    }
  } else if (command == "add_edges") {
    // Data operation, not a release: charges no budget. The server applies
    // the batch atomically and incrementally re-warms only the components
    // the batch touched (see ReleaseServer::UpdateGraph).
    if (args.size() < 4 || args.size() % 2 != 0) {
      out = "err usage: add_edges <name> <u1> <v1> [<u2> <v2> ...]";
      return reply;
    }
    std::vector<std::pair<int, int>> inserts;
    inserts.reserve((args.size() - 2) / 2);
    for (std::size_t i = 2; i + 1 < args.size(); i += 2) {
      long long u = 0;
      long long v = 0;
      if (!ParseNonNegativeInt(args[i], &u) ||
          !ParseNonNegativeInt(args[i + 1], &v) || u > 2147483647LL ||
          v > 2147483647LL) {
        out = "err add_edges: endpoints must be non-negative ints";
        return reply;
      }
      inserts.emplace_back(static_cast<int>(u), static_cast<int>(v));
    }
    const auto updated = server.UpdateGraph(args[1], inserts);
    if (!updated.ok()) {
      out = "err " + updated.status().ToString();
      return reply;
    }
    Appendf(&out,
            "ok added=%d dup=%d m=%d invalidated=%d adopted=%d rewarmed=%d",
            updated->edges_added, updated->duplicates, updated->num_edges,
            updated->components_invalidated, updated->components_adopted,
            updated->family_rewarmed ? 1 : 0);
  } else if (command == "budget") {
    if (args.size() != 2) {
      out = "err usage: budget <name>";
      return reply;
    }
    const auto budget = server.Budget(args[1]);
    if (!budget.ok()) {
      out = "err " + budget.status().ToString();
      return reply;
    }
    out = BudgetResponse(*budget);
  } else if (command == "stats") {
    if (args.size() == 1) {
      // Registry-wide summary: totals only, independent of map order, so
      // the line is stable as graphs come and go. Format documented in
      // docs/SERVING.md; per-verb/latency telemetry lives under the
      // `metrics` verb, not here.
      const ReleaseServer::Summary summary = server.GetSummary();
      Appendf(&out,
              "ok graphs=%zu memory_bytes=%zu mapped_bytes=%zu "
              "cache_bytes=%zu cache_cap=%zu cache_evictions=%lld "
              "refusals=%lld",
              summary.graphs, summary.memory_bytes, summary.mapped_bytes,
              summary.cache.bytes, summary.cache.byte_cap,
              summary.cache.evictions, summary.refusals);
    } else if (args.size() == 2) {
      const auto stats = server.Stats(args[1]);
      if (!stats.ok()) {
        out = "err " + stats.status().ToString();
        return reply;
      }
      Appendf(&out,
              "ok n=%d m=%d memory_bytes=%zu warmed=%d family_bytes=%zu "
              "answered=%lld failed=%lld spent=%.6g remaining=%.6g "
              "lp_evals=%d fast_certs=%d cache_hits=%d mapped_bytes=%zu",
              stats->num_vertices, stats->num_edges,
              stats->graph_memory_bytes, stats->family_warmed ? 1 : 0,
              stats->family_memory_bytes, stats->queries_answered,
              stats->queries_failed, stats->budget.spent,
              stats->budget.remaining, stats->family.lp_evaluations,
              stats->family.fast_certificates, stats->family.cache_hits,
              stats->graph_mapped_bytes);
    } else {
      out = "err usage: stats [<name>]";
    }
  } else if (command == "evict") {
    if (args.size() != 2) {
      out = "err usage: evict <name>";
      return reply;
    }
    const Status evicted = server.Evict(args[1]);
    if (!evicted.ok()) {
      out = "err " + evicted.ToString();
      return reply;
    }
    Appendf(&out, "ok evicted %s", args[1].c_str());
  } else if (command == "metrics") {
    // Prometheus text exposition of the process-wide registry
    // (docs/OBSERVABILITY.md). The body rides ProtocolReply::payload; the
    // response line announces its exact line count so request/response
    // clients know how many lines to drain before the next request.
    if (args.size() != 1) {
      out = "err usage: metrics";
      return reply;
    }
    reply.payload = MetricsRegistry::Default().PrometheusText();
    const std::size_t lines = static_cast<std::size_t>(
        std::count(reply.payload.begin(), reply.payload.end(), '\n'));
    Appendf(&out, "ok metrics lines=%zu", lines);
  } else {
    out = "err unknown command '" + command + "'";
  }
  return reply;
}

}  // namespace

ProtocolReply HandleRequestLine(ReleaseServer& server, std::string_view line) {
  // Tolerate CRLF transports.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::istringstream stream{std::string(line)};
  std::vector<std::string> args;
  std::string token;
  while (stream >> token) args.push_back(token);
  if (args.empty() || args[0][0] == '#') return {};

  // Every dispatched request runs under a QueryTrace: deeper layers
  // (admission, family resolution, mechanisms, updates) attach spans to
  // it, and crossing NODEDP_SLOW_QUERY_NS logs the breakdown on the way
  // out. The latency histogram is observed before the trace destructs so
  // its verb label and the slow-query log describe the same request.
  const char* verb = CanonicalVerb(args[0]);
  const VerbMetrics& metrics = MetricsForVerb(verb);
  QueryTrace trace(verb);
  if (args.size() >= 2) trace.set_target(args[1]);
  ProtocolReply reply = DispatchCommand(server, args);
  metrics.latency->Observe(static_cast<double>(trace.TotalNs()));
  metrics.requests->Increment();
  if (reply.response.compare(0, 4, "err ") == 0) metrics.errors->Increment();
  return reply;
}

}  // namespace nodedp

#include "serve/ledger_wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace nodedp {

namespace {

constexpr const char kSnapName[] = "ledger.snap";
constexpr const char kWalName[] = "ledger.wal";

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// %.17g round-trips every finite double, so a replayed ledger's spent sum
// is bit-identical to the pre-crash one.
std::string FormatDoubleExact(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return std::string(buffer);
}

bool ParseDoubleExact(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

bool ParseLongLong(const std::string& token, long long* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || value < 0) return false;
  *out = value;
  return true;
}

// Graph names are single protocol tokens; anything with whitespace would
// corrupt the line format.
bool ValidName(const std::string& name) {
  return !name.empty() && name.find_first_of(" \t\r\n") == std::string::npos;
}

// Reads `path` fully and splits into newline-terminated lines. A final
// line without a trailing '\n' is returned via `torn_tail` so the WAL
// replay can drop it as a torn append; the snapshot parser treats it as
// corruption instead (snapshots are renamed into place atomically).
Status ReadLines(const std::string& path, bool* exists,
                 std::vector<std::string>* lines, bool* torn_tail) {
  *exists = false;
  lines->clear();
  *torn_tail = false;
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    if (errno == ENOENT || errno == 0) return Status::OK();
    return Status::IoError(ErrnoMessage("open " + path));
  }
  *exists = true;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError(ErrnoMessage("read " + path));
  const std::string content = buffer.str();
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t newline = content.find('\n', start);
    if (newline == std::string::npos) {
      *torn_tail = true;
      break;
    }
    lines->push_back(content.substr(start, newline - start));
    start = newline + 1;
  }
  return Status::OK();
}

Status WriteAll(int fd, const std::string& data, const std::string& what) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write " + what));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

// mkdir -p for the store root (each component may already exist).
Status MakeDirs(const std::string& dir) {
  std::size_t start = 0;
  while (start <= dir.size()) {
    std::size_t slash = dir.find('/', start);
    if (slash == std::string::npos) slash = dir.size();
    const std::string partial = dir.substr(0, slash);
    start = slash + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError(ErrnoMessage("mkdir " + partial));
    }
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError(ErrnoMessage("open dir " + dir));
  Status status = Status::OK();
  if (::fsync(fd) != 0) status = Status::IoError(ErrnoMessage("fsync " + dir));
  ::close(fd);
  return status;
}

// Splits the first `count` space-separated tokens of `line`; everything
// after them (minus the separating space) lands in `label` when non-null.
// Returns fewer than `count` tokens if the line is short.
std::vector<std::string> HeadTokens(const std::string& line, int count,
                                    std::string* label) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  for (int i = 0; i < count; ++i) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t begin = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos == begin) break;
    tokens.push_back(line.substr(begin, pos - begin));
  }
  if (label != nullptr) {
    *label = pos < line.size() ? line.substr(pos + 1) : std::string();
  }
  return tokens;
}

}  // namespace

LedgerWal::LedgerWal(std::string dir, const Options& options)
    : dir_(std::move(dir)), options_(options) {}

LedgerWal::~LedgerWal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

Result<std::unique_ptr<LedgerWal>> LedgerWal::Open(const std::string& dir,
                                                   const Options& options) {
  if (dir.empty()) {
    return Status::InvalidArgument("ledger store directory must be non-empty");
  }
  if (options.snapshot_every < 1) {
    return Status::InvalidArgument("snapshot_every must be >= 1");
  }
  Status made = MakeDirs(dir);
  if (!made.ok()) return made;
  std::unique_ptr<LedgerWal> wal(new LedgerWal(dir, options));
  {
    std::lock_guard<std::mutex> lock(wal->mu_);
    Status replayed = wal->ReplayLocked();
    if (!replayed.ok()) return replayed;
  }
  return wal;
}

Status LedgerWal::ReplayLocked() {
  const std::string snap_path = dir_ + "/" + kSnapName;
  const std::string wal_path = dir_ + "/" + kWalName;
  state_.clear();

  // --- snapshot -----------------------------------------------------------
  long long snap_seq = 0;
  {
    bool exists = false;
    bool torn = false;
    std::vector<std::string> lines;
    Status read = ReadLines(snap_path, &exists, &lines, &torn);
    if (!read.ok()) return read;
    if (exists) {
      // Snapshots are tmp-written and renamed into place, so any damage —
      // including a missing trailing newline or "end" — is real corruption.
      if (torn || lines.empty()) {
        return Status::IoError("corrupt snapshot " + snap_path);
      }
      const std::vector<std::string> header =
          HeadTokens(lines[0], 3, nullptr);
      if (header.size() != 3 || header[0] != "ndpw-snap" ||
          header[1] != "v1" || !ParseLongLong(header[2], &snap_seq)) {
        return Status::IoError("bad snapshot header in " + snap_path);
      }
      std::size_t i = 1;
      bool ended = false;
      while (i < lines.size()) {
        if (lines[i] == "end") {
          ended = true;
          break;
        }
        const std::vector<std::string> graph =
            HeadTokens(lines[i], 5, nullptr);
        PersistedLedger ledger;
        long long refusals = 0;
        long long num_charges = 0;
        if (graph.size() != 5 || graph[0] != "graph" || !ValidName(graph[1]) ||
            !ParseDoubleExact(graph[2], &ledger.total_epsilon) ||
            !ParseLongLong(graph[3], &refusals) ||
            !ParseLongLong(graph[4], &num_charges) ||
            state_.count(graph[1]) != 0) {
          return Status::IoError("bad graph record in " + snap_path + ": '" +
                                 lines[i] + "'");
        }
        ledger.num_refusals = static_cast<int>(refusals);
        ++i;
        ledger.charges.reserve(static_cast<std::size_t>(num_charges));
        for (long long c = 0; c < num_charges; ++c, ++i) {
          if (i >= lines.size()) {
            return Status::IoError("truncated charge list in " + snap_path);
          }
          std::string label;
          const std::vector<std::string> charge =
              HeadTokens(lines[i], 2, &label);
          double epsilon = 0.0;
          if (charge.size() != 2 || charge[0] != "charge" ||
              !ParseDoubleExact(charge[1], &epsilon)) {
            return Status::IoError("bad charge record in " + snap_path +
                                   ": '" + lines[i] + "'");
          }
          ledger.charges.emplace_back(std::move(label), epsilon);
        }
        state_.emplace(graph[1], std::move(ledger));
      }
      if (!ended) {
        return Status::IoError("snapshot " + snap_path +
                               " is missing its end marker");
      }
    }
  }
  seq_ = snap_seq;

  // --- write-ahead log ----------------------------------------------------
  bool wal_usable = false;
  {
    bool exists = false;
    bool torn = false;
    std::vector<std::string> lines;
    Status read = ReadLines(wal_path, &exists, &lines, &torn);
    if (!read.ok()) return read;
    // An existing but empty (or torn-header) WAL is a crash inside
    // creation/compaction after the snapshot was already complete: there
    // are no records in it by construction, so the snapshot alone is the
    // full state.
    if (exists && !lines.empty()) {
      long long since = 0;
      const std::vector<std::string> header =
          HeadTokens(lines[0], 3, nullptr);
      if (header.size() != 3 || header[0] != "ndpw-wal" || header[1] != "v1" ||
          !ParseLongLong(header[2], &since)) {
        return Status::IoError("bad WAL header in " + wal_path);
      }
      if (since > snap_seq) {
        // Records between the snapshot and this WAL are missing; serving
        // with a partially known ledger would be unsound.
        return Status::IoError(
            "WAL " + wal_path + " starts at sequence " +
            std::to_string(since) + " but the snapshot ends at " +
            std::to_string(snap_seq) + " — ledger records are missing");
      }
      if (since == snap_seq) {
        wal_usable = true;
        for (std::size_t i = 1; i < lines.size(); ++i) {
          // `torn` only ever affects text after the last parsed line, so
          // every line here was fully appended before any crash.
          const std::string& line = lines[i];
          std::string label;
          const std::vector<std::string> tokens = HeadTokens(line, 3, &label);
          Status bad = Status::IoError("bad WAL record in " + wal_path +
                                       ": '" + line + "'");
          if (tokens.empty()) return bad;
          const std::string& kind = tokens[0];
          if (kind == "load") {
            double total = 0.0;
            if (tokens.size() < 3 || !ValidName(tokens[1]) ||
                !ParseDoubleExact(tokens[2], &total) || !(total > 0.0)) {
              return bad;
            }
            // No-op when the name already has state: a reload never
            // resets charges and never raises the original total.
            if (state_.count(tokens[1]) == 0) {
              PersistedLedger ledger;
              ledger.total_epsilon = total;
              state_.emplace(tokens[1], std::move(ledger));
            }
          } else if (kind == "charge") {
            double epsilon = 0.0;
            if (tokens.size() < 3 || !ValidName(tokens[1]) ||
                !ParseDoubleExact(tokens[2], &epsilon) || !(epsilon > 0.0)) {
              return bad;
            }
            auto it = state_.find(tokens[1]);
            if (it == state_.end()) return bad;  // charge precedes its load
            it->second.charges.emplace_back(std::move(label), epsilon);
          } else if (kind == "refuse") {
            if (tokens.size() < 2 || !ValidName(tokens[1])) return bad;
            auto it = state_.find(tokens[1]);
            if (it == state_.end()) return bad;
            ++it->second.num_refusals;
          } else if (kind == "evict") {
            if (tokens.size() < 2 || !ValidName(tokens[1])) return bad;
            state_.erase(tokens[1]);
          } else {
            return bad;
          }
          ++seq_;
        }
      }
      // since < snap_seq: stale WAL from a crash between the snapshot
      // rename and the truncate — every record in it is already contained
      // in the snapshot, so it is ignored (and truncated below).
    }
  }

  // Reopen the WAL for appending. Unless it is live and continues the
  // snapshot exactly, start a fresh one at the current sequence.
  return OpenWalForAppendLocked(/*truncate=*/!wal_usable);
}

Status LedgerWal::OpenWalForAppendLocked(bool truncate) {
  const std::string wal_path = dir_ + "/" + kWalName;
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  wal_fd_ = ::open(wal_path.c_str(), flags, 0644);
  if (wal_fd_ < 0) return Status::IoError(ErrnoMessage("open " + wal_path));
  if (truncate) {
    const std::string header =
        "ndpw-wal v1 " + std::to_string(seq_) + "\n";
    Status written = WriteAll(wal_fd_, header, wal_path);
    if (!written.ok()) return written;
    if (::fsync(wal_fd_) != 0) {
      return Status::IoError(ErrnoMessage("fsync " + wal_path));
    }
  }
  since_last_snapshot_ = 0;
  return Status::OK();
}

Status LedgerWal::AppendLocked(const std::string& line) {
  if (wal_fd_ < 0) return Status::IoError("ledger WAL is not open");
  Status written = WriteAll(wal_fd_, line + "\n", dir_ + "/" + kWalName);
  if (!written.ok()) return written;
  if (options_.sync_every_record && ::fdatasync(wal_fd_) != 0) {
    return Status::IoError(ErrnoMessage("fdatasync " + dir_ + "/" + kWalName));
  }
  ++seq_;
  ++appends_;
  ++since_last_snapshot_;
  return Status::OK();
}

// Called by each Record* after the in-memory state reflects the append —
// snapshotting from inside AppendLocked would write a snapshot whose
// sequence counts the new record but whose state does not yet contain it.
void LedgerWal::MaybeSnapshotLocked() {
  if (since_last_snapshot_ < options_.snapshot_every) return;
  // Compaction failure is not fatal to the append that triggered it: the
  // record is durable in the WAL; the next append retries the snapshot.
  Status snapped = SnapshotLocked();
  (void)snapped;
}

Status LedgerWal::SnapshotLocked() {
  const std::string snap_path = dir_ + "/" + kSnapName;
  const std::string tmp_path = snap_path + ".tmp";
  std::string content = "ndpw-snap v1 " + std::to_string(seq_) + "\n";
  for (const auto& [name, ledger] : state_) {
    content += "graph " + name + " " +
               FormatDoubleExact(ledger.total_epsilon) + " " +
               std::to_string(ledger.num_refusals) + " " +
               std::to_string(ledger.charges.size()) + "\n";
    for (const auto& [label, epsilon] : ledger.charges) {
      content += "charge " + FormatDoubleExact(epsilon);
      if (!label.empty()) content += " " + label;
      content += "\n";
    }
  }
  content += "end\n";

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open " + tmp_path));
  Status written = WriteAll(fd, content, tmp_path);
  if (written.ok() && ::fsync(fd) != 0) {
    written = Status::IoError(ErrnoMessage("fsync " + tmp_path));
  }
  ::close(fd);
  if (!written.ok()) return written;
  if (::rename(tmp_path.c_str(), snap_path.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("rename " + tmp_path));
  }
  Status synced = SyncDir(dir_);
  if (!synced.ok()) return synced;
  // The WAL's records are now all contained in the snapshot; truncate it.
  // A crash before this point leaves a stale WAL, which replay detects by
  // its `since` header and ignores.
  return OpenWalForAppendLocked(/*truncate=*/true);
}

std::optional<PersistedLedger> LedgerWal::Restored(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.find(name);
  if (it == state_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> LedgerWal::RestoredNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(state_.size());
  for (const auto& [name, ledger] : state_) names.push_back(name);
  return names;
}

Status LedgerWal::RecordLoad(const std::string& name, double total_epsilon) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("bad ledger graph name '" + name + "'");
  }
  if (!(total_epsilon > 0.0) || !std::isfinite(total_epsilon)) {
    return Status::InvalidArgument("total_epsilon must be finite and > 0");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.count(name) != 0) return Status::OK();  // restored ledger wins
  Status appended =
      AppendLocked("load " + name + " " + FormatDoubleExact(total_epsilon));
  if (!appended.ok()) return appended;
  PersistedLedger ledger;
  ledger.total_epsilon = total_epsilon;
  state_.emplace(name, std::move(ledger));
  MaybeSnapshotLocked();
  return Status::OK();
}

Status LedgerWal::RecordCharge(const std::string& name, double epsilon,
                               const std::string& label) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("bad ledger graph name '" + name + "'");
  }
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("charge epsilon must be finite and > 0");
  }
  if (label.find_first_of("\r\n") != std::string::npos) {
    return Status::InvalidArgument("charge label must not contain newlines");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.find(name);
  if (it == state_.end()) {
    return Status::Internal("charge for '" + name +
                            "' precedes its load record");
  }
  std::string line = "charge " + name + " " + FormatDoubleExact(epsilon);
  if (!label.empty()) line += " " + label;
  Status appended = AppendLocked(line);
  if (!appended.ok()) return appended;
  it->second.charges.emplace_back(label, epsilon);
  MaybeSnapshotLocked();
  return Status::OK();
}

Status LedgerWal::RecordRefusal(const std::string& name) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("bad ledger graph name '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.find(name);
  if (it == state_.end()) {
    return Status::Internal("refusal for '" + name +
                            "' precedes its load record");
  }
  Status appended = AppendLocked("refuse " + name);
  if (!appended.ok()) return appended;
  ++it->second.num_refusals;
  MaybeSnapshotLocked();
  return Status::OK();
}

Status LedgerWal::RecordEvict(const std::string& name) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("bad ledger graph name '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.count(name) == 0) return Status::OK();  // nothing durable
  Status appended = AppendLocked("evict " + name);
  if (!appended.ok()) return appended;
  state_.erase(name);
  MaybeSnapshotLocked();
  return Status::OK();
}

Status LedgerWal::Snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

long long LedgerWal::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

}  // namespace nodedp

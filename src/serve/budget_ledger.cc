#include "serve/budget_ledger.h"

#include <string>

namespace nodedp {

BudgetLedger::BudgetLedger(double total_epsilon)
    : accountant_(total_epsilon) {}

Status BudgetLedger::TryCharge(double epsilon, std::string label) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("charge epsilon must be > 0, got " +
                                   std::to_string(epsilon));
  }
  // The accountant's own admission predicate, so the Spend below can never
  // CHECK-fail.
  if (!accountant_.CanSpend(epsilon)) {
    ++num_refusals_;
    return Status::ResourceExhausted(
        "privacy budget exhausted: '" + label + "' needs " +
        std::to_string(epsilon) + " but only " +
        std::to_string(accountant_.remaining()) + " of " +
        std::to_string(accountant_.total()) + " remains");
  }
  accountant_.Spend(epsilon, std::move(label));
  return Status::OK();
}

Status BudgetLedger::RestoreCharge(double epsilon, std::string label) {
  if (!accountant_.CanSpend(epsilon)) {
    return Status::Internal(
        "restored ledger is corrupt: charge '" + label + "' of " +
        std::to_string(epsilon) + " does not fit " +
        std::to_string(accountant_.remaining()) + " of " +
        std::to_string(accountant_.total()));
  }
  accountant_.Spend(epsilon, std::move(label));
  return Status::OK();
}

}  // namespace nodedp

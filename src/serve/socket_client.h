// SocketClient: a small blocking line-protocol client for the socket
// front end — the test/bench/CLI counterpart of serve/socket_server.h.
//
// One request, one response: Request() sends a line and blocks for the
// reply. ReadLine() reassembles responses from however the kernel chunks
// them; SendRaw() writes arbitrary bytes without framing, which the
// protocol-robustness tests use to simulate partial writes, oversized
// lines, and binary garbage.

#ifndef NODEDP_SERVE_SOCKET_CLIENT_H_
#define NODEDP_SERVE_SOCKET_CLIENT_H_

#include <cstddef>
#include <string>
#include <utility>

#include "util/status.h"

namespace nodedp {

class SocketClient {
 public:
  // Connects to host:port (host is a dotted-quad IPv4 address, e.g.
  // "127.0.0.1"). `timeout_ms` bounds reads and writes; <= 0 blocks
  // forever.
  static Result<SocketClient> Connect(const std::string& host, int port,
                                      int timeout_ms = 10000);

  SocketClient() = default;
  ~SocketClient() { Close(); }

  SocketClient(SocketClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
    buffer_ = std::move(other.buffer_);
  }
  SocketClient& operator=(SocketClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
      buffer_ = std::move(other.buffer_);
    }
    return *this;
  }
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  // Sends `line` plus the newline terminator.
  Status SendLine(const std::string& line);

  // Sends exactly `size` bytes, no framing added.
  Status SendRaw(const void* data, std::size_t size);

  // Blocks for the next newline-terminated response (returned without the
  // newline). IoError on timeout, disconnect, or reset.
  Result<std::string> ReadLine();

  // SendLine + ReadLine.
  Result<std::string> Request(const std::string& line);

  void Close();

 private:
  explicit SocketClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned line
};

}  // namespace nodedp

#endif  // NODEDP_SERVE_SOCKET_CLIENT_H_

// SocketServer: the TCP front end of the release server.
//
// serve_cli's stdin loop serves exactly one operator; a deployment needs
// concurrent clients over a real transport. SocketServer listens on a TCP
// port and speaks the docs/SERVING.md line protocol — one request line in,
// one response line out, every line routed through serve/protocol.h's
// HandleRequestLine against one shared ReleaseServer (whose entry points
// are all thread-safe; heavy query work already rides the util/parallel.h
// pool inside it).
//
// Connection lifecycle (the buffered-connection shape of streaming-CC
// worker clusters): one accept thread owns the listener; each accepted
// connection gets a dedicated handler thread that blocks on reads,
// reassembles lines from partial writes, dispatches, and replies. Handler
// threads are deliberately *not* parked on the util/parallel.h pool — that
// pool is a fixed-width loop executor, and a blocking read would starve
// every ParallelFor in the process. The pool still does all the actual
// mechanism work, via ReleaseServer; handler threads only block on I/O.
//
// Bounded admission: at most `max_connections` handlers run at once — the
// accept thread stops accepting at the cap, leaving excess clients in the
// kernel's listen backlog (itself bounded by `listen_backlog`), so a
// connection flood degrades to queueing, never to unbounded threads.
//
// Per-connection parse isolation: a malformed line costs only its own
// connection. Requests that fail to parse produce `err ...` replies and
// touch no server state (protocol.h's contract); a line longer than
// `max_line_bytes` — or bytes that never produce a newline — drop that
// connection after a best-effort `err line too long` reply; a premature
// disconnect abandons any partial line unprocessed. Other connections
// never notice.
//
// Write backpressure: sockets are written with a send timeout of
// `write_timeout_ms`. A reader too slow to drain its own responses
// (sweeps can be wide) stalls only its own connection and is dropped when
// the timeout expires, bounding the memory a slow client can pin.
//
// Stop() (also the destructor) closes the listener, shuts down every live
// connection, and joins all threads; it is safe to call while clients are
// mid-request — in-flight requests finish, their replies may be lost.

#ifndef NODEDP_SERVE_SOCKET_SERVER_H_
#define NODEDP_SERVE_SOCKET_SERVER_H_

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/release_server.h"
#include "util/status.h"

namespace nodedp {

struct SocketServerOptions {
  // Port to bind; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  // Bind loopback only by default; set true to serve external clients.
  bool bind_any = false;
  // Concurrent connection handlers; excess clients wait in the kernel
  // backlog below.
  int max_connections = 64;
  // Kernel listen(2) backlog: the bounded accept queue.
  int listen_backlog = 64;
  // A request line longer than this drops its connection (parse
  // isolation; no legitimate request is remotely this long).
  std::size_t max_line_bytes = 1 << 16;
  // Send timeout per write: the backpressure bound on slow readers.
  // <= 0 means block forever (not recommended outside tests).
  int write_timeout_ms = 10000;
};

class SocketServer {
 public:
  // Counters are cumulative since Start().
  struct Stats {
    long long accepted = 0;         // connections handed to a handler
    long long active = 0;           // handlers currently running
    long long lines = 0;            // request lines dispatched
    long long dropped_overflow = 0;  // connections dropped for line length
    long long dropped_write = 0;     // dropped on write timeout/error
  };

  // `server` must outlive this object.
  SocketServer(ReleaseServer* server, const SocketServerOptions& options = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds, listens, and starts the accept thread. Fails with IoError if
  // the socket cannot be set up; InvalidArgument on a second Start.
  Status Start();

  // Idempotent; see class comment.
  void Stop();

  // The bound port (valid after a successful Start).
  int port() const { return port_; }

  Stats stats() const;

 private:
  void AcceptLoop();
  void HandleConnection(long long id, int fd);
  // Removes finished handler threads (called from the accept loop).
  void ReapFinishedLocked();

  ReleaseServer* const server_;
  const SocketServerOptions options_;

  int listen_fd_ = -1;
  int wake_rd_ = -1;  // self-pipe: Stop() wakes the accept loop's poll()
  int wake_wr_ = -1;
  int port_ = 0;
  bool started_ = false;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;   // signaled when a handler exits
  std::map<long long, std::thread> handlers_;  // live + finished, by id
  std::vector<long long> finished_;     // handler ids ready to join
  std::map<long long, int> conn_fds_;   // live connection fds, by id
  bool stopping_ = false;
  Stats stats_;
};

}  // namespace nodedp

#endif  // NODEDP_SERVE_SOCKET_SERVER_H_

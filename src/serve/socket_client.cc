#include "serve/socket_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

namespace nodedp {

namespace {

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Result<SocketClient> SocketClient::Connect(const std::string& host, int port,
                                           int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket"));
  if (timeout_ms > 0) {
    timeval timeout{};
    timeout.tv_sec = timeout_ms / 1000;
    timeout.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IoError(
        ErrnoMessage("connect " + host + ":" + std::to_string(port)));
    ::close(fd);
    return status;
  }
  return SocketClient(fd);
}

Status SocketClient::SendRaw(const void* data, std::size_t size) {
  if (fd_ < 0) return Status::IoError("client is not connected");
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status SocketClient::SendLine(const std::string& line) {
  const std::string framed = line + "\n";
  return SendRaw(framed.data(), framed.size());
}

Result<std::string> SocketClient::ReadLine() {
  if (fd_ < 0) return Status::IoError("client is not connected");
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("read timed out waiting for a response line");
      }
      return Status::IoError(ErrnoMessage("recv"));
    }
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<std::string> SocketClient::Request(const std::string& line) {
  Status sent = SendLine(line);
  if (!sent.ok()) return sent;
  return ReadLine();
}

void SocketClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace nodedp

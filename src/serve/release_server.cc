#include "serve/release_server.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>

#include "graph/graph_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nodedp {

namespace {

// One decimal-formatted epsilon for ledger labels (std::to_string's six
// digits of noise would make ledgers unreadable).
std::string FormatEpsilon(double epsilon) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", epsilon);
  return std::string(buffer);
}

// Per-tier privacy accounting (docs/OBSERVABILITY.md): admitted queries,
// and ε actually charged, split by serving tier — `exact` is the warmed
// Algorithm 1 family, `approx` the sublinear estimator.
struct TierMetrics {
  Counter* admissions;
  Counter* epsilon_spent;
};

const TierMetrics& MetricsForTier(bool need_family) {
  static const TierMetrics exact = {
      MetricsRegistry::Default().GetCounter(
          "nodedp_ledger_admissions_total", {{"tier", "exact"}},
          "Queries admitted (ledger charged) by serving tier"),
      MetricsRegistry::Default().GetCounter(
          "nodedp_epsilon_spent_total", {{"tier", "exact"}},
          "Privacy budget charged to ledgers by serving tier")};
  static const TierMetrics approx = {
      MetricsRegistry::Default().GetCounter(
          "nodedp_ledger_admissions_total", {{"tier", "approx"}},
          "Queries admitted (ledger charged) by serving tier"),
      MetricsRegistry::Default().GetCounter(
          "nodedp_epsilon_spent_total", {{"tier", "approx"}},
          "Privacy budget charged to ledgers by serving tier")};
  return need_family ? exact : approx;
}

// Unlabeled so the exposition line is a literal `name value` pair CI can
// grep across the scripted over-budget query.
Counter* RefusalCounter() {
  static Counter* counter = MetricsRegistry::Default().GetCounter(
      "nodedp_ledger_refusals_total",
      "Queries refused with ResourceExhausted (budget could not cover)");
  return counter;
}

long long ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Times a block into both the active QueryTrace (as a span stage) and a
// histogram — the update path reports its phases to the slow-query log
// and to scrapers with one clock pair.
class TimedStage {
 public:
  TimedStage(const char* stage, Histogram* histogram)
      : span_(stage),
        histogram_(histogram),
        start_(std::chrono::steady_clock::now()) {}
  ~TimedStage() {
    histogram_->Observe(static_cast<double>(ElapsedNs(start_)));
  }

  TimedStage(const TimedStage&) = delete;
  TimedStage& operator=(const TimedStage&) = delete;

 private:
  ScopedSpan span_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

Histogram* UpdateStageHistogram(const char* name, const char* help) {
  return MetricsRegistry::Default().GetHistogram(
      name, help, MetricsRegistry::LatencyBucketsNs());
}

}  // namespace

Status ReleaseServer::EnableDurableLedgers(const std::string& dir,
                                           const LedgerWal::Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!registry_.empty()) {
    return Status::InvalidArgument(
        "durable ledgers must be enabled before any graph is loaded");
  }
  if (wal_ != nullptr) {
    return Status::InvalidArgument("durable ledgers are already enabled");
  }
  Result<std::unique_ptr<LedgerWal>> wal = LedgerWal::Open(dir, options);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(*wal);
  return Status::OK();
}

Status ReleaseServer::Load(const std::string& name, Graph g,
                           const ServeGraphConfig& config) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  if (!(config.total_epsilon > 0.0)) {
    return Status::InvalidArgument("total_epsilon must be > 0, got " +
                                   std::to_string(config.total_epsilon));
  }
  std::string cache_key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (registry_.count(name) != 0) {
      return Status::InvalidArgument("graph '" + name +
                                     "' is already loaded; evict it first");
    }
    cache_key = name + "#" + std::to_string(next_load_id_++);
  }
  // Durable-ledger adoption: a name with restored state keeps its original
  // budget promise — the restored total (never the config's: a reload must
  // not mint fresh budget for the same data), its spent charges in
  // admission order, and its refusal count. A fresh name's registration is
  // recorded before it can admit any charge.
  std::optional<PersistedLedger> restored;
  ServeGraphConfig effective = config;
  if (wal_ != nullptr) {
    restored = wal_->Restored(name);
    if (restored.has_value()) {
      effective.total_epsilon = restored->total_epsilon;
    } else {
      Status recorded = wal_->RecordLoad(name, config.total_epsilon);
      if (!recorded.ok()) return recorded;
    }
  }
  auto entry =
      std::make_shared<Entry>(std::move(g), effective, std::move(cache_key));
  if (restored.has_value()) {
    for (const auto& [label, epsilon] : restored->charges) {
      Status replayed = entry->ledger.RestoreCharge(epsilon, label);
      if (!replayed.ok()) return replayed;
    }
    entry->ledger.SetRefusals(restored->num_refusals);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool inserted = registry_.emplace(name, entry).second;
    if (!inserted) {
      // Lost a race with a concurrent Load of the same name.
      return Status::InvalidArgument("graph '" + name +
                                     "' is already loaded; evict it first");
    }
  }
  if (config.prewarm) {
    // Registered first, warmed second: queries issued while this pipelined
    // build+warm runs resolve the same warming family through the cache
    // and block only on the cells they need.
    const auto family = FamilyFor(*entry);
    if (!family.ok()) {
      // Roll back the registration — but never a ledger that has admitted
      // charges: releases already emitted mid-warm must stay accounted, or
      // a reload would hand the same data a fresh budget. Retiring under
      // entry.mu closes the race with in-flight admissions (a query either
      // charged before this, keeping the entry, or is refused after).
      bool keep = false;
      {
        std::lock_guard<std::mutex> entry_lock(entry->mu);
        if (entry->ledger.num_charges() > 0) {
          keep = true;
        } else {
          entry->retired = true;
        }
      }
      if (!keep) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = registry_.find(name);
          if (it != registry_.end() && it->second == entry) {
            registry_.erase(it);
          }
          families_.Evict(entry->cache_key);
        }
        // A fresh registration's durable record is rolled back with it
        // (nothing was charged), so a retried load can pick a new budget.
        // A *restored* ledger is never discarded here: the original
        // promise outlives a failed re-load.
        if (wal_ != nullptr && !restored.has_value()) {
          (void)wal_->RecordEvict(name);
        }
      }
      return family.status();
    }
  }
  return Status::OK();
}

Status ReleaseServer::LoadFromFile(const std::string& name,
                                   const std::string& path,
                                   const ServeGraphConfig& config) {
  Result<Graph> graph = ReadGraphAnyFile(path);
  if (!graph.ok()) return graph.status();
  return Load(name, std::move(graph).value(), config);
}

Status ReleaseServer::LoadMmap(const std::string& name,
                               const std::string& path,
                               const ServeGraphConfig& config) {
  Result<Graph> graph = Graph::FromMmap(path);
  if (!graph.ok()) return graph.status();
  return Load(name, std::move(graph).value(), config);
}

Status ReleaseServer::Save(const std::string& name, const std::string& path,
                           bool binary) const {
  Result<std::shared_ptr<Entry>> found = Find(name);
  if (!found.ok()) return found.status();
  // The snapshot keeps the graph alive even if it is evicted or updated
  // mid-write (a save races an update to one or the other full graph,
  // never a torn mix).
  const std::shared_ptr<const Graph> graph = GraphSnapshot(**found);
  if (binary) return WriteGraphBinaryFile(*graph, path);
  return WriteEdgeListFile(*graph, path);
}

Status ReleaseServer::SaveV2(const std::string& name,
                             const std::string& path) const {
  Result<std::shared_ptr<Entry>> found = Find(name);
  if (!found.ok()) return found.status();
  const std::shared_ptr<const Graph> graph = GraphSnapshot(**found);
  return WriteGraphV2File(*graph, path);
}

Status ReleaseServer::Evict(const std::string& name) {
  std::string cache_key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = registry_.find(name);
    if (it == registry_.end()) {
      return Status::NotFound("no graph named '" + name + "'");
    }
    cache_key = it->second->cache_key;
    registry_.erase(it);
  }
  families_.Evict(cache_key);
  if (wal_ != nullptr) {
    // Eviction is the operator action that ends this name's durable
    // ledger; a later load starts a fresh budget. If the record cannot be
    // made durable the in-memory eviction stands and the error surfaces —
    // the stale durable state only re-imposes the *old* budget on a
    // reload, which errs in the conservative direction.
    Status recorded = wal_->RecordEvict(name);
    if (!recorded.ok()) return recorded;
  }
  return Status::OK();
}

Result<UpdateReport> ReleaseServer::UpdateGraph(
    const std::string& name, const std::vector<std::pair<int, int>>& inserts) {
  Result<std::shared_ptr<Entry>> found = Find(name);
  if (!found.ok()) return found.status();
  const std::shared_ptr<Entry> entry = *found;
  // One update at a time per graph, held across the incremental build and
  // re-warm (outermost in the lock order; queries never take it, so they
  // are not blocked).
  std::lock_guard<std::mutex> update_lock(entry->update_mu);
  std::shared_ptr<const Graph> old_graph;
  {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    if (entry->retired) {
      return Status::NotFound("graph '" + name + "' was unloaded");
    }
    old_graph = entry->graph;
  }

  static Counter* updates_total = MetricsRegistry::Default().GetCounter(
      "nodedp_updates_total", "Edge-delta batches applied via UpdateGraph");
  static Histogram* apply_ns = UpdateStageHistogram(
      "nodedp_update_apply_ns",
      "Wall-ns building the patched graph + incremental family");
  static Histogram* publish_ns = UpdateStageHistogram(
      "nodedp_update_publish_ns",
      "Wall-ns publishing the patched family and swapping the graph");
  static Histogram* rewarm_ns = UpdateStageHistogram(
      "nodedp_update_rewarm_ns",
      "Wall-ns re-warming the invalidated cells after an update");
  updates_total->Increment();

  Result<Graph::EdgeDelta> delta = old_graph->ApplyEdgeDelta(inserts);
  if (!delta.ok()) return delta.status();
  UpdateReport report;
  report.duplicates = delta->duplicates;
  report.edges_added = static_cast<int>(delta->added.size());
  report.num_edges = delta->graph.NumEdges();
  if (delta->added.empty()) {
    // Pure-duplicate batch: nothing changed; keep the graph, the family,
    // and every solved cell.
    return report;
  }
  const auto patched = std::make_shared<const Graph>(std::move(delta->graph));

  // Patch the warmed family if one is resident (warmed or warming — a
  // warming base is fine: cells it has not solved yet re-solve here). With
  // no resident family there is nothing to maintain; the next query
  // rebuilds cold from the patched graph.
  const std::shared_ptr<ExtensionFamily> old_family =
      families_.Get(entry->cache_key);
  std::shared_ptr<ExtensionFamily> family;
  if (old_family != nullptr) {
    TimedStage apply_stage("update_apply", apply_ns);
    family = std::make_shared<ExtensionFamily>(*patched, *old_family,
                                               delta->added);
    report.components_adopted = family->components_adopted();
    report.components_invalidated = family->components_invalidated();
  }

  {
    TimedStage publish_stage("update_publish", publish_ns);
    // Publish-then-warm, mirroring Load's register-before-warm: the
    // patched family and graph become visible first, so queries arriving
    // mid-re-warm resolve the patched family and block only on the
    // invalidated cells. Queries that resolved the old family before this
    // point finish against it — their shared_ptr keeps it alive.
    if (family != nullptr) families_.Replace(entry->cache_key, family);
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    entry->graph = patched;
  }

  // Evict race: if the graph was unregistered between Find and the swap,
  // the Replace above may have resurrected a slot Evict already dropped.
  // Drop it again — cache keys are unique per load, so this can never hit
  // a newer registration's family.
  {
    Result<std::shared_ptr<Entry>> current = Find(name);
    if (!current.ok() || *current != entry) {
      families_.Evict(entry->cache_key);
      return Status::NotFound("graph '" + name + "' was unloaded");
    }
  }

  if (family != nullptr) {
    TimedStage rewarm_stage("update_rewarm", rewarm_ns);
    const Status warmed = family->Warm(WarmGrid(*patched, entry->config));
    if (!warmed.ok()) {
      // Drop the half-warmed slot so the next query rebuilds cold from the
      // patched graph. The graph swap stands: the update itself succeeded
      // and callers that saw the new edge count must keep seeing them.
      families_.Evict(entry->cache_key);
      return warmed;
    }
    families_.Promote(entry->cache_key, family);
    report.family_rewarmed = true;
  }
  return report;
}

std::vector<std::string> ReleaseServer::GraphNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(registry_.size());
  for (const auto& [name, entry] : registry_) names.push_back(name);
  return names;
}

Result<std::shared_ptr<ReleaseServer::Entry>> ReleaseServer::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = registry_.find(name);
  if (it == registry_.end()) {
    return Status::NotFound("no graph named '" + name + "'");
  }
  return it->second;
}

std::vector<double> ReleaseServer::WarmGrid(const Graph& graph,
                                            const ServeGraphConfig& config) {
  return AlgorithmOneDeltaGrid(graph.NumVertices(), config.release);
}

std::shared_ptr<const Graph> ReleaseServer::GraphSnapshot(Entry& entry) {
  std::lock_guard<std::mutex> entry_lock(entry.mu);
  return entry.graph;
}

Result<std::shared_ptr<ExtensionFamily>> ReleaseServer::FamilyFor(
    Entry& entry) {
  // Resolved through the cache on every query (a resident family is one
  // map lookup away): the entry never pins the family, so a byte-cap
  // eviction frees real memory and the next query rebuilds and re-warms.
  // The build+warm runs outside every server lock; FamilyCache serializes
  // same-key builders and hands mid-warm callers the warming family —
  // whose cells their queries demand to the front of the warm's claim
  // queue (demand-first warming), so a query racing the prewarm blocks on
  // each needed cell only until that cell publishes, not until the warm
  // ends. The snapshot pins the graph across the build in case an update
  // swaps it.
  const std::shared_ptr<const Graph> graph = GraphSnapshot(entry);
  return families_.GetOrCreate(entry.cache_key, *graph,
                               WarmGrid(*graph, entry.config),
                               entry.config.release.extension);
}

Rng ReleaseServer::SplitRng() {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.Split();
}

Result<ReleaseServer::Admitted> ReleaseServer::Admit(const std::string& name,
                                                     double epsilon_total,
                                                     std::string label,
                                                     bool need_family) {
  Admitted admitted;
  {
    ScopedSpan admit_span("admit");
    Result<std::shared_ptr<Entry>> found = Find(name);
    if (!found.ok()) return found.status();
    admitted.entry = *found;
    Entry& entry = *admitted.entry;
    std::lock_guard<std::mutex> entry_lock(entry.mu);
    if (entry.retired) {
      // A failed prewarm rolled this registration back between our Find
      // and now; refuse before charging the discarded ledger.
      return Status::NotFound("graph '" + name + "' was unloaded");
    }
    if (wal_ == nullptr) {
      Status charged = entry.ledger.TryCharge(epsilon_total, std::move(label));
      if (!charged.ok()) {
        if (charged.code() == StatusCode::kResourceExhausted) {
          RefusalCounter()->Increment();
        }
        return charged;
      }
    } else if (!(epsilon_total > 0.0) ||
               !entry.ledger.CanCharge(epsilon_total)) {
      // Refused (or invalid) admissions never touch the durable charge
      // log; the refusal record is telemetry — keeping restored refusal
      // counts exact — and an I/O failure there must not change the
      // refusal the client sees.
      Status refused = entry.ledger.TryCharge(epsilon_total, std::move(label));
      if (refused.code() == StatusCode::kResourceExhausted) {
        RefusalCounter()->Increment();
        (void)wal_->RecordRefusal(name);
      }
      return refused;
    } else {
      // The write-ahead rule: admission decided above, the durable record
      // lands here, the in-memory charge follows, and only then does any
      // mechanism run. A crash at any point between record and release
      // wastes budget; it never leaks it. An unrecordable charge refuses
      // the query with nothing spent on either side.
      Status recorded = wal_->RecordCharge(name, epsilon_total, label);
      if (!recorded.ok()) return recorded;
      Status charged = entry.ledger.TryCharge(epsilon_total, std::move(label));
      if (!charged.ok()) return charged;  // unreachable: CanCharge held
    }
    const TierMetrics& tier = MetricsForTier(need_family);
    tier.admissions->Increment();
    tier.epsilon_spent->Add(epsilon_total);
    // Split atomically with the charge (entry.mu -> mu_, per the lock
    // order), so the k-th ledger entry always carries the k-th stream.
    admitted.child = SplitRng();
  }
  if (need_family) {
    ScopedSpan family_span("family");
    Result<std::shared_ptr<ExtensionFamily>> family =
        FamilyFor(*admitted.entry);
    if (!family.ok()) {
      RecordOutcome(*admitted.entry, /*ok=*/false, 0);
      return family.status();
    }
    admitted.family = std::move(*family);
  }
  return admitted;
}

void ReleaseServer::RecordOutcome(Entry& entry, bool ok, long long answered) {
  std::lock_guard<std::mutex> entry_lock(entry.mu);
  if (ok) {
    entry.queries_answered += answered;
  } else {
    ++entry.queries_failed;  // budget stays charged (see budget_ledger.h)
  }
}

Result<ConnectedComponentsRelease> ReleaseServer::ReleaseCc(
    const std::string& name, double epsilon) {
  Result<Admitted> admitted =
      Admit(name, epsilon, "release_cc eps=" + FormatEpsilon(epsilon));
  if (!admitted.ok()) return admitted.status();
  ScopedSpan mechanism_span("mechanism");
  Result<ConnectedComponentsRelease> release = PrivateConnectedComponents(
      *admitted->family, epsilon, admitted->child,
      admitted->entry->config.release);
  RecordOutcome(*admitted->entry, release.ok(), 1);
  return release;
}

Result<SublinearCcRelease> ReleaseServer::ReleaseCcApprox(
    const std::string& name, double epsilon) {
  Result<Admitted> admitted =
      Admit(name, epsilon, "release_cc_approx eps=" + FormatEpsilon(epsilon),
            /*need_family=*/false);
  if (!admitted.ok()) return admitted.status();
  // The snapshot pins the graph (possibly its mmap) across the sampling
  // pass even if an update swaps it mid-query.
  const std::shared_ptr<const Graph> graph =
      GraphSnapshot(*admitted->entry);
  PrivateSublinearCcOptions options = admitted->entry->config.approx;
  if (options.delta_max <= 0) {
    options.delta_max = admitted->entry->config.release.delta_max;
  }
  ScopedSpan mechanism_span("mechanism");
  Result<SublinearCcRelease> release =
      PrivateSublinearCc(*graph, epsilon, admitted->child, options);
  RecordOutcome(*admitted->entry, release.ok(), 1);
  return release;
}

Result<SpanningForestRelease> ReleaseServer::ReleaseSf(
    const std::string& name, double epsilon) {
  Result<Admitted> admitted =
      Admit(name, epsilon, "release_sf eps=" + FormatEpsilon(epsilon));
  if (!admitted.ok()) return admitted.status();
  ScopedSpan mechanism_span("mechanism");
  Result<SpanningForestRelease> release = PrivateSpanningForestSize(
      *admitted->family, epsilon, admitted->child,
      admitted->entry->config.release);
  RecordOutcome(*admitted->entry, release.ok(), 1);
  return release;
}

Result<std::vector<ConnectedComponentsRelease>> ReleaseServer::SweepCc(
    const std::string& name, const std::vector<double>& epsilons) {
  if (epsilons.empty()) {
    return Status::InvalidArgument("sweep needs at least one epsilon");
  }
  double sum = 0.0;
  for (double epsilon : epsilons) {
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("sweep epsilon must be > 0, got " +
                                     std::to_string(epsilon));
    }
    sum += epsilon;
  }
  // All-or-nothing admission: one charge of Σ ε_i (Lemma 2.4).
  Result<Admitted> admitted =
      Admit(name, sum,
            "sweep_cc k=" + std::to_string(epsilons.size()) +
                " sum=" + FormatEpsilon(sum));
  if (!admitted.ok()) return admitted.status();

  ScopedSpan mechanism_span("mechanism");
  std::vector<Result<ConnectedComponentsRelease>> slots =
      SweepConnectedComponents(*admitted->family, epsilons, admitted->child,
                               admitted->entry->config.release);
  std::vector<ConnectedComponentsRelease> releases;
  releases.reserve(slots.size());
  Status first_error = Status::OK();
  for (Result<ConnectedComponentsRelease>& slot : slots) {
    if (!slot.ok()) {
      if (first_error.ok()) first_error = slot.status();
      continue;
    }
    releases.push_back(std::move(slot).value());
  }
  RecordOutcome(*admitted->entry, first_error.ok(),
                static_cast<long long>(releases.size()));
  if (!first_error.ok()) return first_error;
  return releases;
}

Result<BudgetReport> ReleaseServer::Budget(const std::string& name) const {
  Result<std::shared_ptr<Entry>> found = Find(name);
  if (!found.ok()) return found.status();
  Entry& entry = **found;
  std::lock_guard<std::mutex> entry_lock(entry.mu);
  BudgetReport report;
  report.total = entry.ledger.total();
  report.spent = entry.ledger.spent();
  report.remaining = entry.ledger.remaining();
  report.num_charges = entry.ledger.num_charges();
  report.num_refusals = entry.ledger.num_refusals();
  return report;
}

Result<ServeGraphStats> ReleaseServer::Stats(const std::string& name) const {
  Result<std::shared_ptr<Entry>> found = Find(name);
  if (!found.ok()) return found.status();
  Entry& entry = **found;
  // Resolve the family outside entry.mu (the cache has its own lock and
  // never takes entry mutexes, so there is no order to violate).
  const std::shared_ptr<ExtensionFamily> family =
      families_.Get(entry.cache_key);
  std::lock_guard<std::mutex> entry_lock(entry.mu);
  ServeGraphStats stats;
  stats.num_vertices = entry.graph->NumVertices();
  stats.num_edges = entry.graph->NumEdges();
  stats.graph_memory_bytes = entry.graph->MemoryBytes();
  stats.graph_mapped_bytes = entry.graph->MappedBytes();
  stats.family_warmed = family != nullptr;
  stats.queries_answered = entry.queries_answered;
  stats.queries_failed = entry.queries_failed;
  stats.budget.total = entry.ledger.total();
  stats.budget.spent = entry.ledger.spent();
  stats.budget.remaining = entry.ledger.remaining();
  stats.budget.num_charges = entry.ledger.num_charges();
  stats.budget.num_refusals = entry.ledger.num_refusals();
  if (family != nullptr) {
    stats.family = family->stats();
    stats.family_memory_bytes = family->MemoryBytes();
  }
  return stats;
}

ReleaseServer::Summary ReleaseServer::GetSummary() const {
  // Snapshot the registry first, then visit entries without holding the
  // server mutex (lock order forbids mu_ -> entry.mu). Graphs evicted
  // between the snapshot and the visit still count — a summary is a
  // point-in-time aggregate, not a transaction.
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(registry_.size());
    for (const auto& [name, entry] : registry_) entries.push_back(entry);
  }
  Summary summary;
  summary.graphs = entries.size();
  for (const std::shared_ptr<Entry>& entry : entries) {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    summary.memory_bytes += entry->graph->MemoryBytes();
    summary.mapped_bytes += entry->graph->MappedBytes();
    summary.refusals += entry->ledger.num_refusals();
  }
  summary.cache = families_.stats();
  return summary;
}

}  // namespace nodedp

// The serve line protocol (docs/SERVING.md): one request line in, one
// response line out — `ok ...` on success, `err <Status>` on failure.
//
// This is the single dispatcher behind every transport: serve_cli's stdin
// loop and every socket_server connection route their lines through
// HandleRequestLine, so the two modes cannot drift and the parser can be
// tested (and fuzzed) without a socket in sight. The handler itself is
// stateless — all state lives in the ReleaseServer — and therefore safe to
// call concurrently from any number of connection threads.
//
// Parse isolation: a malformed request produces an `err ...` response and
// *nothing else* — no registry change, no ledger charge. Only requests
// that parse completely ever reach ReleaseServer::Admit. Transport-level
// defenses (line length caps, partial-line reassembly, disconnect
// handling) live in the transport; by the time a line reaches this
// function it is exactly one complete request.

#ifndef NODEDP_SERVE_PROTOCOL_H_
#define NODEDP_SERVE_PROTOCOL_H_

#include <string>
#include <string_view>

#include "serve/release_server.h"

namespace nodedp {

struct ProtocolReply {
  // The response line, without a trailing newline. Empty for blank and
  // comment (#...) request lines, which produce no response at all.
  std::string response;
  // Multi-line body sent verbatim *after* the response line (today only
  // the `metrics` verb uses it, for Prometheus exposition text). Already
  // newline-terminated; the transport writes it as-is. The response line
  // announces the body's line count (`ok metrics lines=N`) so clients on
  // a request/response loop know exactly how many lines to drain; body
  // lines never start with `ok ` or `err `, so line-oriented scripting
  // (and the CI smoke greps) keep counting responses correctly.
  std::string payload;
  // True when the client asked to end the session (`quit`): the transport
  // should send the response and close this session/connection.
  bool quit = false;
};

// Parses and executes one request line against `server`.
ProtocolReply HandleRequestLine(ReleaseServer& server, std::string_view line);

}  // namespace nodedp

#endif  // NODEDP_SERVE_PROTOCOL_H_

// Exponential Mechanism of McSherry and Talwar (Theorem B.1), in the
// "minimize score" convention used by GEM: selects index i with
//
//   Pr[i] ∝ exp(-epsilon * score_i / (2 * sensitivity)).
//
// Sampling uses the Gumbel-max trick (argmin of score*scale + Gumbel noise),
// which is numerically stable for widely spread scores and avoids computing
// the normalizing constant.

#ifndef NODEDP_DP_EXPONENTIAL_H_
#define NODEDP_DP_EXPONENTIAL_H_

#include <vector>

#include "util/random.h"

namespace nodedp {

// Returns the selected index in [0, scores.size()). Requires a nonempty
// score vector, epsilon > 0, sensitivity > 0.
int ExponentialMechanismMin(const std::vector<double>& scores,
                            double sensitivity, double epsilon, Rng& rng);

// Exact selection probabilities of the mechanism above (for tests and
// diagnostics; computing them is not privatized).
std::vector<double> ExponentialMechanismProbabilities(
    const std::vector<double>& scores, double sensitivity, double epsilon);

}  // namespace nodedp

#endif  // NODEDP_DP_EXPONENTIAL_H_

#include "dp/gem.h"

#include <algorithm>
#include <cmath>

#include "dp/exponential.h"
#include "util/check.h"

namespace nodedp {

GemResult GemSelect(const std::vector<GemCandidate>& candidates,
                    double epsilon, double beta, Rng& rng) {
  NODEDP_CHECK(!candidates.empty());
  NODEDP_CHECK_GT(epsilon, 0.0);
  NODEDP_CHECK_GT(beta, 0.0);
  NODEDP_CHECK_LT(beta, 1.0);
  for (const GemCandidate& c : candidates) {
    NODEDP_CHECK_GT(c.lipschitz, 0.0);
  }

  GemResult result;
  // Step 1: t = 2 log(k / beta) / eps with k = |I| - 1 (= floor(log2 Δmax)
  // for the powers-of-two grid). Guard k >= 1 so a singleton grid works.
  const double k = std::max<double>(1.0, candidates.size() - 1);
  result.shift_t = 2.0 * std::log(k / beta) / epsilon;

  // Steps 5-6: pairwise-normalized scores of sensitivity <= 1.
  const int count = static_cast<int>(candidates.size());
  result.scores.resize(count);
  for (int i = 0; i < count; ++i) {
    const double qi_shifted =
        candidates[i].q + result.shift_t * candidates[i].lipschitz;
    double score = -std::numeric_limits<double>::infinity();
    for (int j = 0; j < count; ++j) {
      const double qj_shifted =
          candidates[j].q + result.shift_t * candidates[j].lipschitz;
      score = std::max(score, (qi_shifted - qj_shifted) /
                                  (candidates[i].lipschitz +
                                   candidates[j].lipschitz));
    }
    result.scores[i] = score;
  }

  // Step 7: exponential mechanism with sensitivity-1 scores at budget eps.
  result.selected_index =
      ExponentialMechanismMin(result.scores, /*sensitivity=*/1.0, epsilon,
                              rng);
  return result;
}

std::vector<int> PowersOfTwoGrid(int delta_max) {
  NODEDP_CHECK_GE(delta_max, 1);
  std::vector<int> grid;
  for (long long value = 1; value <= delta_max; value *= 2) {
    grid.push_back(static_cast<int>(value));
  }
  return grid;
}

}  // namespace nodedp

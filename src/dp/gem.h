// Generalized Exponential Mechanism of Raskhodnikova and Smith (RS16b),
// adapted for threshold selection over a family of Lipschitz extensions
// exactly as in Algorithm 4 / Theorem 3.5 of the paper.
//
// Given candidates i ∈ I (here: Lipschitz parameters, powers of two in
// [1, Δmax]) with approximation errors
//
//     q_i(G) = |h_i(G) − h(G)| + i/ε                      (Eq. (7))
//
// the mechanism computes the relative scores
//
//     s_i(G) = max_j ((q_i + t·i) − (q_j + t·j)) / (i + j),  t = 2·ln(k/β)/ε
//
// each of which has node-sensitivity at most 1 because q_i changes by at
// most i between node-neighbors (h_i is i-Lipschitz; the additive h(G) term
// cancels in the difference, cf. the footnote in Appendix B). It then runs
// the ε-DP exponential mechanism over the s_i and returns the chosen index.
//
// Guarantee (Theorem 3.5): with probability ≥ 1 − β the selected î
// satisfies q_î ≤ q_i · O(ln(ln(Δmax)/β)) for every i.

#ifndef NODEDP_DP_GEM_H_
#define NODEDP_DP_GEM_H_

#include <vector>

#include "util/random.h"

namespace nodedp {

struct GemCandidate {
  double lipschitz = 1.0;  // the sensitivity bound i of this candidate
  double q = 0.0;          // approximation error err_h(i, G), Eq. (7)
};

struct GemResult {
  int selected_index = -1;
  std::vector<double> scores;  // the s_i actually fed to the EM
  double shift_t = 0.0;        // the t used
};

// Runs Algorithm 4 steps 5-8 given precomputed q_i. `epsilon` is the GEM's
// own privacy budget; `beta` its failure probability. Candidates must be
// nonempty with strictly positive Lipschitz parameters.
GemResult GemSelect(const std::vector<GemCandidate>& candidates,
                    double epsilon, double beta, Rng& rng);

// The candidate grid of Algorithm 4 step 1: {2^0, 2^1, ..., 2^k} with
// k = floor(log2(delta_max)); delta_max >= 1.
std::vector<int> PowersOfTwoGrid(int delta_max);

}  // namespace nodedp

#endif  // NODEDP_DP_GEM_H_

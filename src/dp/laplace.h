// Laplace mechanism (Theorem 2.2) and Laplace tail utilities (Lemma 2.3).

#ifndef NODEDP_DP_LAPLACE_H_
#define NODEDP_DP_LAPLACE_H_

#include "util/random.h"

namespace nodedp {

// Releases value + Lap(sensitivity / epsilon). With `sensitivity` an upper
// bound on the global node-sensitivity of the statistic being released, the
// output is epsilon-node-private (Theorem 2.2).
double LaplaceMechanism(double value, double sensitivity, double epsilon,
                        Rng& rng);

// P[|Lap(b)| >= t] = exp(-t / b) (Lemma 2.3).
double LaplaceTailProbability(double b, double t);

// Smallest t with P[|Lap(b)| >= t] <= beta, i.e., t = b * ln(1 / beta).
double LaplaceTailBound(double b, double beta);

}  // namespace nodedp

#endif  // NODEDP_DP_LAPLACE_H_

#include "dp/laplace.h"

#include <cmath>

#include "util/check.h"

namespace nodedp {

double LaplaceMechanism(double value, double sensitivity, double epsilon,
                        Rng& rng) {
  NODEDP_CHECK_GT(epsilon, 0.0);
  NODEDP_CHECK_GE(sensitivity, 0.0);
  if (sensitivity == 0.0) return value;
  return value + rng.NextLaplace(sensitivity / epsilon);
}

double LaplaceTailProbability(double b, double t) {
  NODEDP_CHECK_GT(b, 0.0);
  NODEDP_CHECK_GE(t, 0.0);
  return std::exp(-t / b);
}

double LaplaceTailBound(double b, double beta) {
  NODEDP_CHECK_GT(b, 0.0);
  NODEDP_CHECK_GT(beta, 0.0);
  NODEDP_CHECK_LE(beta, 1.0);
  return b * std::log(1.0 / beta);
}

}  // namespace nodedp

#include "dp/exponential.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace nodedp {

int ExponentialMechanismMin(const std::vector<double>& scores,
                            double sensitivity, double epsilon, Rng& rng) {
  NODEDP_CHECK(!scores.empty());
  NODEDP_CHECK_GT(sensitivity, 0.0);
  NODEDP_CHECK_GT(epsilon, 0.0);
  // Gumbel-max: argmax over (-eps * s_i / (2*sens)) + Gumbel_i is
  // distributed as Pr[i] ∝ exp(-eps*s_i/(2*sens)).
  const double scale = epsilon / (2.0 * sensitivity);
  int best = -1;
  double best_key = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < static_cast<int>(scores.size()); ++i) {
    const double key = -scale * scores[i] + rng.NextGumbel();
    if (key > best_key) {
      best_key = key;
      best = i;
    }
  }
  return best;
}

std::vector<double> ExponentialMechanismProbabilities(
    const std::vector<double>& scores, double sensitivity, double epsilon) {
  NODEDP_CHECK(!scores.empty());
  const double scale = epsilon / (2.0 * sensitivity);
  // Log-sum-exp with max subtraction.
  const double max_exponent =
      -scale * *std::min_element(scores.begin(), scores.end());
  double total = 0.0;
  std::vector<double> probabilities(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    probabilities[i] = std::exp(-scale * scores[i] - max_exponent);
    total += probabilities[i];
  }
  for (double& p : probabilities) p /= total;
  return probabilities;
}

}  // namespace nodedp

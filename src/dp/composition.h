// Sequential-composition budget accounting (Lemma 2.4): an algorithm that
// runs subroutines with budgets ε_1..ε_t is (Σ ε_i)-node-private.
//
// The accountant is a guard rail for pipeline code: each mechanism call
// spends from a fixed total and over-spending CHECK-fails, making budget
// arithmetic mistakes loud instead of silently non-private.

#ifndef NODEDP_DP_COMPOSITION_H_
#define NODEDP_DP_COMPOSITION_H_

#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace nodedp {

class PrivacyAccountant {
 public:
  explicit PrivacyAccountant(double total_epsilon)
      : total_(total_epsilon), spent_(0.0) {
    NODEDP_CHECK_GT(total_epsilon, 0.0);
  }

  // Whether a charge of `epsilon` fits the remaining budget (up to a tiny
  // numeric slack). The single admission predicate: Spend CHECKs it, and
  // refusal-style callers (serve/BudgetLedger) test it first — keeping both
  // on the same arithmetic so an admitted charge can never fail the Spend.
  bool CanSpend(double epsilon) const {
    return epsilon > 0.0 && spent_ + epsilon <= total_ * (1.0 + 1e-12);
  }

  // Reserves `epsilon` of budget for the named mechanism. CHECK-fails if the
  // total would be exceeded.
  double Spend(double epsilon, std::string label) {
    NODEDP_CHECK_GT(epsilon, 0.0);
    NODEDP_CHECK_MSG(CanSpend(epsilon),
                     "privacy budget exceeded by '" << label << "': spent "
                                                    << spent_ << " + "
                                                    << epsilon << " > "
                                                    << total_);
    spent_ += epsilon;
    ledger_.emplace_back(std::move(label), epsilon);
    return epsilon;
  }

  double total() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }
  const std::vector<std::pair<std::string, double>>& ledger() const {
    return ledger_;
  }

 private:
  double total_;
  double spent_;
  std::vector<std::pair<std::string, double>> ledger_;
};

}  // namespace nodedp

#endif  // NODEDP_DP_COMPOSITION_H_

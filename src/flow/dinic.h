// Dinic max-flow with real-valued capacities and min-cut extraction.
//
// Substrate for the separation oracle over the forest polytope
// (Definition 3.1, constraints (5)): each separation query is a
// project-selection min cut. Capacities are doubles; the oracle's networks
// have small integral structure (unit vertex capacities plus LP edge
// weights), and Dinic terminates in O(V^2 E) augmentations regardless, with
// an epsilon floor to ignore numerically empty augmenting paths.
//
// Storage note: arcs live in one flat array with per-node head-inserted
// `next` links. A CSR arc index (permuting arcs into tail-grouped slices at
// Solve time) was implemented and benchmarked during the graph-core CSR
// refactor and measured 5-10% *slower* on BM_SeparationOracle: the oracle's
// networks are small enough to be cache-resident, so the linked-list chase
// is cheap and the per-Solve counting-sort passes are pure overhead. Use
// ReserveArcs when the arc count is known to avoid regrowth.

#ifndef NODEDP_FLOW_DINIC_H_
#define NODEDP_FLOW_DINIC_H_

#include <limits>
#include <vector>

namespace nodedp {

class Dinic {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  explicit Dinic(int num_nodes);

  // Pre-sizes internal storage for `expected_arcs` AddArc calls (a hint,
  // not a cap). Callers that know the network shape — the separation
  // oracle builds one network per root — avoid every regrowth.
  void ReserveArcs(int expected_arcs);

  // Adds a directed arc u -> v with the given capacity (and a zero-capacity
  // reverse arc). Returns the arc id of the forward arc.
  int AddArc(int u, int v, double capacity);

  // Computes the max flow from `source` to `sink`. May be called once per
  // instance. Flow values below `eps` are treated as zero when searching for
  // augmenting paths.
  double Solve(int source, int sink, double eps = 1e-12);

  // After Solve: true iff `v` is reachable from the source in the residual
  // network, i.e., v lies on the source side of a minimum cut.
  bool OnSourceSide(int v) const;

  int num_nodes() const { return static_cast<int>(first_arc_.size()); }

 private:
  struct Arc {
    int to;
    int next;       // next arc id out of the same tail, -1 terminates
    double residual;
  };

  bool BuildLevels(int source, int sink, double eps);
  double Push(int u, int sink, double limit, double eps);

  std::vector<Arc> arcs_;
  std::vector<int> first_arc_;
  std::vector<int> level_;
  std::vector<int> iter_;   // current-arc optimization
  bool solved_ = false;
};

}  // namespace nodedp

#endif  // NODEDP_FLOW_DINIC_H_

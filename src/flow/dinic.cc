#include "flow/dinic.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace nodedp {

Dinic::Dinic(int num_nodes)
    : first_arc_(num_nodes, -1), level_(num_nodes), iter_(num_nodes) {
  NODEDP_CHECK_GE(num_nodes, 0);
}

void Dinic::ReserveArcs(int expected_arcs) {
  NODEDP_CHECK_GE(expected_arcs, 0);
  arcs_.reserve(2 * static_cast<std::size_t>(expected_arcs));
}

int Dinic::AddArc(int u, int v, double capacity) {
  NODEDP_CHECK_GE(capacity, 0.0);
  NODEDP_DCHECK(u >= 0 && u < num_nodes());
  NODEDP_DCHECK(v >= 0 && v < num_nodes());
  const int id = static_cast<int>(arcs_.size());
  arcs_.push_back(Arc{v, first_arc_[u], capacity});
  first_arc_[u] = id;
  arcs_.push_back(Arc{u, first_arc_[v], 0.0});
  first_arc_[v] = id + 1;
  return id;
}

bool Dinic::BuildLevels(int source, int sink, double eps) {
  std::fill(level_.begin(), level_.end(), -1);
  level_[source] = 0;
  std::queue<int> queue;
  queue.push(source);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (int a = first_arc_[u]; a >= 0; a = arcs_[a].next) {
      if (arcs_[a].residual > eps && level_[arcs_[a].to] < 0) {
        level_[arcs_[a].to] = level_[u] + 1;
        queue.push(arcs_[a].to);
      }
    }
  }
  return level_[sink] >= 0;
}

double Dinic::Push(int u, int sink, double limit, double eps) {
  if (u == sink) return limit;
  for (int& a = iter_[u]; a >= 0; a = arcs_[a].next) {
    Arc& arc = arcs_[a];
    if (arc.residual > eps && level_[arc.to] == level_[u] + 1) {
      const double pushed =
          Push(arc.to, sink, std::min(limit, arc.residual), eps);
      if (pushed > eps) {
        arc.residual -= pushed;
        arcs_[a ^ 1].residual += pushed;
        return pushed;
      }
    }
  }
  level_[u] = -1;  // dead end; prune from this phase
  return 0.0;
}

double Dinic::Solve(int source, int sink, double eps) {
  NODEDP_CHECK_MSG(!solved_, "Dinic::Solve may be called only once");
  NODEDP_CHECK_NE(source, sink);
  solved_ = true;
  double total = 0.0;
  while (BuildLevels(source, sink, eps)) {
    iter_ = first_arc_;
    for (;;) {
      const double pushed = Push(source, sink, kInfinity, eps);
      if (pushed <= eps) break;
      total += pushed;
    }
  }
  // Final residual BFS defines the cut; BuildLevels already left level_ with
  // source-side reachability (level >= 0).
  return total;
}

bool Dinic::OnSourceSide(int v) const {
  NODEDP_CHECK_MSG(solved_, "call Solve() first");
  return level_[v] >= 0;
}

}  // namespace nodedp

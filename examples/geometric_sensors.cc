// Counting clusters of a sensor/mobile network under node-DP.
//
// Random geometric graphs model proximity networks (Section 1.1.4 of the
// paper): devices are points in the unit square, linked when within radio
// range r. The number of connected components = the number of isolated
// clusters, a deployment-health statistic one may want to publish without
// revealing any single device's location/links.
//
// Geometric graphs contain no induced 6-star (six points in a unit disk
// cannot be pairwise farther apart than the radius), so s(G) <= 5,
// Δ* <= 6, and Theorem 1.3 promises error Õ(ln ln n / ε) — independent of
// how dense the deployment is. This example sweeps the radio range across
// the connectivity threshold and shows the estimate staying sharp even as
// the structure changes drastically.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/private_cc.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/star.h"
#include "util/random.h"

int main() {
  using namespace nodedp;

  const int n = 200;
  const double epsilon = 1.0;
  const int trials = 9;

  Table table({"radius", "edges", "true cc", "s(G)", "median est",
               "median|err|", "p90|err|"});
  for (double radius : {0.02, 0.04, 0.06, 0.09, 0.13}) {
    Rng workload_rng(static_cast<uint64_t>(radius * 10000));
    const Graph graph = gen::RandomGeometric(n, radius, workload_rng);
    const double truth = CountConnectedComponents(graph);
    const StarNumberResult star = InducedStarNumber(graph);

    std::vector<double> estimates;
    std::vector<double> errors;
    Rng rng(99000 + static_cast<uint64_t>(radius * 10000));
    for (int t = 0; t < trials; ++t) {
      const auto release = PrivateConnectedComponents(graph, epsilon, rng);
      if (!release.ok()) {
        std::fprintf(stderr, "release failed: %s\n",
                     release.status().ToString().c_str());
        return 1;
      }
      estimates.push_back(release->estimate);
      errors.push_back(release->estimate - truth);
    }
    const ErrorSummary s = SummarizeErrors(errors);
    table.Cell(radius, 2)
        .Cell(graph.NumEdges())
        .Cell(truth, 0)
        .Cell(star.value)
        .Cell(Quantile(estimates, 0.5), 1)
        .Cell(s.median_abs, 1)
        .Cell(s.p90_abs, 1);
    table.EndRow();
  }
  table.Print(std::cout);
  std::printf(
      "\ns(G) <= 5 at every density (no induced 6-stars in geometric\n"
      "graphs), so the error column stays flat while the component count\n"
      "swings from ~%d down to a handful.\n", n);
  return 0;
}

// Node-private connectivity of a synthetic social network.
//
// Social graphs are where node-DP matters most: one person's row includes
// every relationship they participate in. This example builds a two-scale
// network (a scale-free core of active users plus a sparse G(n,p) periphery
// of casual users and isolated accounts), then releases the number of
// connected components at several privacy budgets, showing the internals of
// Algorithm 1: the GEM-selected Lipschitz parameter Δ̂, the pre-noise
// extension value f_Δ̂, and the Laplace scale.

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/private_cc.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/star.h"
#include "util/random.h"

int main() {
  using namespace nodedp;

  Rng workload_rng(20230610);
  // Core: 150 active users, preferential attachment (hubs!).
  const Graph core = gen::BarabasiAlbert(150, 2, workload_rng);
  // Periphery: 350 casual users, average degree ~ 1 (many small comps).
  const Graph periphery = gen::ErdosRenyi(350, 1.0 / 350, workload_rng);
  const Graph graph = gen::DisjointUnion({core, periphery});

  const double truth = CountConnectedComponents(graph);
  const StarNumberResult star = InducedStarNumber(graph);
  std::printf("users: %d, friendships: %d\n", graph.NumVertices(),
              graph.NumEdges());
  std::printf("true components: %.0f\n", truth);
  std::printf("induced star number s(G) = DS_fsf(G): %d%s\n", star.value,
              star.exact ? "" : " (lower bound)");
  std::printf("=> Delta* <= s(G)+1 = %d (Lemma 1.6)\n\n", star.value + 1);

  Table table({"epsilon", "estimate", "true", "|err|", "Delta^", "f_Delta^",
               "Lap scale"});
  for (double epsilon : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    Rng rng(7000 + static_cast<uint64_t>(epsilon * 1000));
    const auto release = PrivateConnectedComponents(graph, epsilon, rng);
    if (!release.ok()) {
      std::fprintf(stderr, "release failed: %s\n",
                   release.status().ToString().c_str());
      return 1;
    }
    table.Cell(epsilon, 2)
        .Cell(release->estimate, 1)
        .Cell(truth, 0)
        .Cell(std::abs(release->estimate - truth), 1)
        .Cell(release->forest.selected_delta)
        .Cell(release->forest.extension_value, 1)
        .Cell(release->forest.laplace_scale, 1);
    table.EndRow();
  }
  table.Print(std::cout);
  std::printf(
      "\nNote how Delta^ stays near s(G)+1 even though the hubs have degree\n"
      "10+: accuracy depends on induced stars, not on the max degree.\n");
  return 0;
}

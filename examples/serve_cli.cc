// serve_cli: front end to serve/ReleaseServer speaking the docs/SERVING.md
// line protocol — one request per line, one `ok ...` or `err ...` response
// per request, all dispatch through serve/protocol.h so every mode speaks
// exactly the same protocol.
//
// Modes:
//   serve_cli [--seed S] [--state DIR]
//       stdin/stdout loop (the original mode): requests on stdin, one
//       response line each on stdout; EOF or `quit` exits 0.
//   serve_cli --listen PORT [--seed S] [--state DIR]
//       TCP server (serve/socket_server.h): concurrent clients, per-
//       connection parse isolation, bounded accept queue. PORT 0 picks an
//       ephemeral port. Prints `ok listening port=<p> pid=<p>` on stdout
//       when ready, then runs until SIGINT/SIGTERM.
//   serve_cli --connect HOST:PORT
//       client: pumps stdin request lines to a listening serve_cli and
//       prints each response — the scripting shim for CI and operators
//       (blank/# lines are skipped client-side, as the protocol ignores
//       them server-side).
//
// --state DIR makes privacy-budget ledgers durable (serve/ledger_wal.h):
// every admission is write-ahead logged under DIR before the mechanism
// runs, and a restart with the same DIR restores every graph's ledger —
// spend-to-refusal survives crash and restart. Without --state, ledgers
// are process-lifetime only (suitable for exploration, not deployment).
//
// Requests (see docs/SERVING.md for the full table):
//   load <name> <path> [budget] [delta_max]     register a graph file
//   load_mmap <name> <path> [budget] [delta_max] zero-copy NDPG v2 mmap
//   gen <name> gnp <n> <avg_deg> <seed> [budget] [delta_max]
//   save <name> <path> [text|binary|v2]
//   release_cc <name> <epsilon> [tier=approx|tier=exact]
//   release_sf <name> <epsilon>
//   sweep <name> <eps1> <eps2> ...              Σ εᵢ charged all-or-nothing
//   add_edges <name> <u1> <v1> [<u2> <v2> ...]  insert edges (no ε charge)
//   budget <name>   stats [<name>]   evict <name>   quit
//
// Environment: NODEDP_FAMILY_CACHE_BYTES caps total resident family
// memory (least-recently-used families evicted; graphs stay registered).

#include <pthread.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/protocol.h"
#include "serve/release_server.h"
#include "serve/socket_client.h"
#include "serve/socket_server.h"

namespace {

using namespace nodedp;

int RunStdinLoop(ReleaseServer& server) {
  std::string line;
  while (std::getline(std::cin, line)) {
    const ProtocolReply reply = HandleRequestLine(server, line);
    if (!reply.response.empty()) {
      std::printf("%s\n", reply.response.c_str());
      // Multi-line body (`metrics` exposition text), already
      // newline-terminated.
      if (!reply.payload.empty()) std::fputs(reply.payload.c_str(), stdout);
      std::fflush(stdout);
    }
    if (reply.quit) return 0;
  }
  return 0;
}

int RunListen(ReleaseServer& server, int port) {
  // Block the shutdown signals first so they are delivered to sigwait
  // below, not to the default handler, no matter when they arrive.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  SocketServerOptions options;
  options.port = port;
  SocketServer socket_server(&server, options);
  const Status started = socket_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "err %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("ok listening port=%d pid=%d\n", socket_server.port(),
              static_cast<int>(getpid()));
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::printf("ok shutting down (signal %d)\n", signal_number);
  socket_server.Stop();
  return 0;
}

int RunConnect(const std::string& target) {
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "err --connect needs HOST:PORT\n");
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  Result<SocketClient> client = SocketClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "err %s\n", client.status().ToString().c_str());
    return 1;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    // Mirror the protocol's no-response lines client-side, or we would
    // wait forever for replies that never come.
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const Result<std::string> response = client->Request(line);
    if (!response.ok()) {
      std::fprintf(stderr, "err %s\n", response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", response->c_str());
    // `ok metrics lines=N` announces an N-line body after the response
    // line; drain exactly N lines so the next request/response pair stays
    // aligned.
    long long body_lines = 0;
    if (std::sscanf(response->c_str(), "ok metrics lines=%lld",
                    &body_lines) == 1) {
      for (long long i = 0; i < body_lines; ++i) {
        const Result<std::string> body = client->ReadLine();
        if (!body.ok()) {
          std::fprintf(stderr, "err %s\n", body.status().ToString().c_str());
          return 1;
        }
        std::printf("%s\n", body->c_str());
      }
    }
    std::fflush(stdout);
    if (*response == "ok bye") return 0;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  int listen_port = -1;
  std::string state_dir;
  std::string connect_target;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--listen" && i + 1 < argc) {
      listen_port = std::atoi(argv[++i]);
    } else if (flag == "--state" && i + 1 < argc) {
      state_dir = argv[++i];
    } else if (flag == "--connect" && i + 1 < argc) {
      connect_target = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed S] [--state DIR] [--listen PORT]\n"
                   "       %s --connect HOST:PORT\n",
                   argv[0], argv[0]);
      return 2;
    }
  }

  if (!connect_target.empty()) return RunConnect(connect_target);

  ReleaseServer server(seed);
  if (!state_dir.empty()) {
    const Status durable = server.EnableDurableLedgers(state_dir);
    if (!durable.ok()) {
      std::fprintf(stderr, "err %s\n", durable.ToString().c_str());
      return 1;
    }
  }
  if (listen_port >= 0) return RunListen(server, listen_port);
  return RunStdinLoop(server);
}

// serve_cli: line-oriented front end to serve/ReleaseServer — a release
// server driven over stdin/stdout, one request per line, one `ok ...` or
// `err ...` response per request (protocol spec: docs/SERVING.md).
//
// Usage: serve_cli [--seed S]
//
// Requests:
//   load <name> <path> [budget] [delta_max]
//       Register a graph file (binary NDPG or text edge list, auto-detected)
//       under <name> with total privacy budget [budget] (default 10) and
//       public degree cap [delta_max] (default: n). Builds and warms the
//       extension family, so `load` is the expensive step.
//   gen <name> gnp <n> <avg_deg> <seed> [budget] [delta_max]
//       Generate and register a G(n, avg_deg/n) graph (no file needed).
//   save <name> <path> [text|binary]
//       Write a registered graph back out (default binary).
//   release_cc <name> <epsilon>
//   release_sf <name> <epsilon>
//       One ε-node-private release (Eq. (1) / Algorithm 1). Charges ε.
//   sweep <name> <eps1> <eps2> ...
//       Releases at every listed ε against the one warmed family; charges
//       Σ ε_i all-or-nothing.
//   budget <name>        Ledger state: total / spent / remaining / refusals.
//   stats [<name>]       Per-graph (or registry-wide) telemetry, including
//                        family/cache memory bytes and cap evictions.
//   evict <name>         Unregister and drop the warmed family.
//   quit                 Exit 0 (EOF does the same).
//
// Environment: NODEDP_FAMILY_CACHE_BYTES caps total resident family memory;
// least-recently-used families are evicted to fit (their graphs stay
// registered — the next query rebuilds). Unset or 0 means unlimited.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "serve/release_server.h"
#include "util/random.h"

namespace {

using namespace nodedp;

// Parses a strictly positive double, returning false on garbage.
bool ParsePositiveDouble(const std::string& token, double* out) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || !(value > 0.0)) return false;
  *out = value;
  return true;
}

bool ParseNonNegativeInt(const std::string& token, long long* out) {
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || value < 0) return false;
  *out = value;
  return true;
}

// `load`/`gen` share the trailing [budget] [delta_max] arguments.
bool ParseConfigTail(const std::vector<std::string>& args, std::size_t from,
                     ServeGraphConfig* config, std::string* error) {
  if (args.size() > from) {
    if (!ParsePositiveDouble(args[from], &config->total_epsilon)) {
      *error = "budget must be a positive number";
      return false;
    }
  }
  if (args.size() > from + 1) {
    long long delta_max = 0;
    if (!ParseNonNegativeInt(args[from + 1], &delta_max) || delta_max <= 0 ||
        delta_max > 2147483647LL) {
      *error = "delta_max must be a positive int";
      return false;
    }
    config->release.delta_max = static_cast<int>(delta_max);
  }
  return true;
}

void PrintBudget(const BudgetReport& budget) {
  std::printf(
      "ok total=%.6g spent=%.6g remaining=%.6g charges=%d refusals=%d\n",
      budget.total, budget.spent, budget.remaining, budget.num_charges,
      budget.num_refusals);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--seed S]\n", argv[0]);
      return 2;
    }
  }

  ReleaseServer server(seed);
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream stream(line);
    std::vector<std::string> args;
    std::string token;
    while (stream >> token) args.push_back(token);
    if (args.empty() || args[0][0] == '#') continue;
    const std::string& command = args[0];

    if (command == "quit") {
      std::printf("ok bye\n");
      return 0;
    }

    if (command == "load") {
      if (args.size() < 3 || args.size() > 5) {
        std::printf("err usage: load <name> <path> [budget] [delta_max]\n");
        continue;
      }
      ServeGraphConfig config;
      std::string error;
      if (!ParseConfigTail(args, 3, &config, &error)) {
        std::printf("err %s\n", error.c_str());
        continue;
      }
      const Status loaded = server.LoadFromFile(args[1], args[2], config);
      if (!loaded.ok()) {
        std::printf("err %s\n", loaded.ToString().c_str());
        continue;
      }
      const auto stats = server.Stats(args[1]);
      std::printf("ok loaded %s n=%d m=%d budget=%.6g warmed=%d\n",
                  args[1].c_str(), stats->num_vertices, stats->num_edges,
                  stats->budget.total, stats->family_warmed ? 1 : 0);
    } else if (command == "gen") {
      if (args.size() < 6 || args.size() > 8 || args[2] != "gnp") {
        std::printf(
            "err usage: gen <name> gnp <n> <avg_deg> <seed> [budget] "
            "[delta_max]\n");
        continue;
      }
      long long n = 0;
      double avg_deg = 0.0;
      long long gen_seed = 0;
      if (!ParseNonNegativeInt(args[3], &n) || n <= 0 ||
          n > 2147483647LL ||
          !ParsePositiveDouble(args[4], &avg_deg) ||
          !ParseNonNegativeInt(args[5], &gen_seed)) {
        std::printf("err gen: bad n / avg_deg / seed\n");
        continue;
      }
      ServeGraphConfig config;
      std::string error;
      if (!ParseConfigTail(args, 6, &config, &error)) {
        std::printf("err %s\n", error.c_str());
        continue;
      }
      Rng rng(static_cast<std::uint64_t>(gen_seed));
      Graph g = gen::ErdosRenyi(static_cast<int>(n),
                                avg_deg / static_cast<double>(n), rng);
      const int num_vertices = g.NumVertices();
      const int num_edges = g.NumEdges();
      const Status loaded = server.Load(args[1], std::move(g), config);
      if (!loaded.ok()) {
        std::printf("err %s\n", loaded.ToString().c_str());
        continue;
      }
      std::printf("ok generated %s n=%d m=%d budget=%.6g\n", args[1].c_str(),
                  num_vertices, num_edges, config.total_epsilon);
    } else if (command == "save") {
      if (args.size() < 3 || args.size() > 4) {
        std::printf("err usage: save <name> <path> [text|binary]\n");
        continue;
      }
      const bool text = args.size() == 4 && args[3] == "text";
      if (args.size() == 4 && args[3] != "text" && args[3] != "binary") {
        std::printf("err save: format must be text or binary\n");
        continue;
      }
      const Status saved = server.Save(args[1], args[2], /*binary=*/!text);
      if (!saved.ok()) {
        std::printf("err %s\n", saved.ToString().c_str());
        continue;
      }
      std::printf("ok saved %s %s\n", args[1].c_str(),
                  text ? "text" : "binary");
    } else if (command == "release_cc" || command == "release_sf") {
      if (args.size() != 3) {
        std::printf("err usage: %s <name> <epsilon>\n", command.c_str());
        continue;
      }
      double epsilon = 0.0;
      if (!ParsePositiveDouble(args[2], &epsilon)) {
        std::printf("err epsilon must be a positive number\n");
        continue;
      }
      if (command == "release_cc") {
        const auto release = server.ReleaseCc(args[1], epsilon);
        if (!release.ok()) {
          std::printf("err %s\n", release.status().ToString().c_str());
          continue;
        }
        std::printf("ok cc=%.3f eps=%.6g delta=%d\n", release->estimate,
                    epsilon, release->forest.selected_delta);
      } else {
        const auto release = server.ReleaseSf(args[1], epsilon);
        if (!release.ok()) {
          std::printf("err %s\n", release.status().ToString().c_str());
          continue;
        }
        std::printf("ok sf=%.3f eps=%.6g delta=%d\n", release->estimate,
                    epsilon, release->selected_delta);
      }
    } else if (command == "sweep") {
      if (args.size() < 3) {
        std::printf("err usage: sweep <name> <eps1> <eps2> ...\n");
        continue;
      }
      std::vector<double> epsilons;
      bool bad = false;
      for (std::size_t i = 2; i < args.size(); ++i) {
        double epsilon = 0.0;
        if (!ParsePositiveDouble(args[i], &epsilon)) {
          bad = true;
          break;
        }
        epsilons.push_back(epsilon);
      }
      if (bad) {
        std::printf("err sweep: every epsilon must be a positive number\n");
        continue;
      }
      const auto releases = server.SweepCc(args[1], epsilons);
      if (!releases.ok()) {
        std::printf("err %s\n", releases.status().ToString().c_str());
        continue;
      }
      std::printf("ok sweep k=%zu", releases->size());
      for (std::size_t i = 0; i < releases->size(); ++i) {
        std::printf(" %.6g:%.3f", epsilons[i], (*releases)[i].estimate);
      }
      std::printf("\n");
    } else if (command == "budget") {
      if (args.size() != 2) {
        std::printf("err usage: budget <name>\n");
        continue;
      }
      const auto budget = server.Budget(args[1]);
      if (!budget.ok()) {
        std::printf("err %s\n", budget.status().ToString().c_str());
        continue;
      }
      PrintBudget(*budget);
    } else if (command == "stats") {
      if (args.size() == 1) {
        const auto names = server.GraphNames();
        const auto cache = server.family_cache_stats();
        std::printf("ok graphs=%zu cache_entries=%d cache_warming=%d "
                    "cache_bytes=%zu cache_cap=%zu cache_hits=%lld "
                    "cache_misses=%lld cache_evictions=%lld\n",
                    names.size(), cache.entries, cache.warming, cache.bytes,
                    cache.byte_cap, cache.hits, cache.misses,
                    cache.evictions);
      } else if (args.size() == 2) {
        const auto stats = server.Stats(args[1]);
        if (!stats.ok()) {
          std::printf("err %s\n", stats.status().ToString().c_str());
          continue;
        }
        std::printf(
            "ok n=%d m=%d memory_bytes=%zu warmed=%d family_bytes=%zu "
            "answered=%lld failed=%lld spent=%.6g remaining=%.6g "
            "lp_evals=%d fast_certs=%d cache_hits=%d\n",
            stats->num_vertices, stats->num_edges, stats->graph_memory_bytes,
            stats->family_warmed ? 1 : 0, stats->family_memory_bytes,
            stats->queries_answered, stats->queries_failed,
            stats->budget.spent, stats->budget.remaining,
            stats->family.lp_evaluations, stats->family.fast_certificates,
            stats->family.cache_hits);
      } else {
        std::printf("err usage: stats [<name>]\n");
      }
    } else if (command == "evict") {
      if (args.size() != 2) {
        std::printf("err usage: evict <name>\n");
        continue;
      }
      const Status evicted = server.Evict(args[1]);
      if (!evicted.ok()) {
        std::printf("err %s\n", evicted.ToString().c_str());
        continue;
      }
      std::printf("ok evicted %s\n", args[1].c_str());
    } else {
      std::printf("err unknown command '%s'\n", command.c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}

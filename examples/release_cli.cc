// release_cli: command-line node-DP release of the number of connected
// components from an edge-list file.
//
// Usage:
//   release_cli <edge-list-file> [--epsilon E] [--beta B] [--seed S]
//               [--trials T] [--csv]
//
// Edge-list format (see graph/graph_io.h):
//   <num_vertices> <num_edges>
//   <u> <v>        # one per line; '#' comments allowed
//
// With --trials > 1 the tool prints per-trial releases (each trial is an
// independent ε-DP release; publishing T of them costs T·ε by composition —
// the tool says so rather than pretending otherwise).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/private_cc.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/graph_io.h"
#include "util/random.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <edge-list-file> [--epsilon E] [--beta B]\n"
               "          [--seed S] [--trials T] [--csv]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nodedp;
  if (argc < 2) {
    Usage(argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  double epsilon = 1.0;
  double beta = 0.0;  // auto
  uint64_t seed = 1;
  int trials = 1;
  bool csv = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--epsilon") {
      epsilon = std::atof(next_value());
    } else if (flag == "--beta") {
      beta = std::atof(next_value());
    } else if (flag == "--seed") {
      seed = std::strtoull(next_value(), nullptr, 10);
    } else if (flag == "--trials") {
      trials = std::atoi(next_value());
    } else if (flag == "--csv") {
      csv = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (epsilon <= 0.0 || trials < 1) {
    std::fprintf(stderr, "epsilon must be > 0 and trials >= 1\n");
    return 2;
  }

  const Result<Graph> graph = ReadEdgeListFile(path);
  if (!graph.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(),
                 graph.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %s: n=%d m=%d\n", path.c_str(),
               graph->NumVertices(), graph->NumEdges());
  if (trials > 1) {
    std::fprintf(stderr,
                 "note: %d independent releases cost %.3f total privacy "
                 "budget under composition\n",
                 trials, trials * epsilon);
  }

  PrivateCcOptions options;
  options.beta = beta;
  ExtensionFamily family(*graph, options.extension);
  Rng rng(seed);
  Table table({"trial", "estimate_cc", "epsilon", "selected_delta",
               "laplace_scale"});
  for (int t = 0; t < trials; ++t) {
    const auto release =
        PrivateConnectedComponents(family, epsilon, rng, options);
    if (!release.ok()) {
      std::fprintf(stderr, "release failed: %s\n",
                   release.status().ToString().c_str());
      return 1;
    }
    table.Cell(t)
        .Cell(release->estimate, 3)
        .Cell(epsilon, 3)
        .Cell(release->forest.selected_delta)
        .Cell(release->forest.laplace_scale, 3);
    table.EndRow();
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}

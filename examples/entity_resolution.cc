// Entity resolution under node-DP — the workload motivating the paper's
// introduction (counting unique entities, e.g. documented deaths in the
// Syrian conflict [CSS18], from a database of duplicate records).
//
// Records referring to the same entity are linked by a matching process,
// forming (roughly) a clique per entity. The number of unique entities is
// then the number of connected components of the record-linkage graph.
// Each record row is contributed by a person, so node-DP is the right
// privacy notion: it hides every record AND all its links.
//
// This example compares the node-private release against the edge-private
// one (weaker protection) and the naive node-private one (useless noise)
// across privacy budgets.

#include <cstdio>
#include <vector>

#include "core/baselines.h"
#include "core/private_cc.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

#include <iostream>

int main() {
  using namespace nodedp;

  // 400 entities, each with 1-5 duplicate records (cliques).
  Rng workload_rng(4321);
  const Graph graph = gen::RandomEntityGraph(400, 5, workload_rng);
  const double truth = CountConnectedComponents(graph);
  std::printf("records: %d, links: %d, true unique entities: %.0f\n\n",
              graph.NumVertices(), graph.NumEdges(), truth);

  const int trials = 25;
  Table table({"epsilon", "method", "median|err|", "p90|err|", "rel.err%"});
  for (double epsilon : {0.5, 1.0, 2.0}) {
    std::vector<double> ours;
    std::vector<double> edge_dp;
    std::vector<double> naive;
    Rng rng(1000 + static_cast<uint64_t>(epsilon * 100));
    for (int t = 0; t < trials; ++t) {
      const auto release = PrivateConnectedComponents(graph, epsilon, rng);
      if (!release.ok()) {
        std::fprintf(stderr, "release failed: %s\n",
                     release.status().ToString().c_str());
        return 1;
      }
      ours.push_back(release->estimate - truth);
      edge_dp.push_back(EdgeDpConnectedComponents(graph, epsilon, rng) -
                        truth);
      naive.push_back(NaiveNodeDpConnectedComponents(graph, epsilon, rng) -
                      truth);
    }
    auto add_row = [&](const char* method, const std::vector<double>& errs) {
      const ErrorSummary s = SummarizeErrors(errs);
      table.Cell(epsilon, 2)
          .Cell(method)
          .Cell(s.median_abs, 2)
          .Cell(s.p90_abs, 2)
          .Cell(100.0 * s.median_abs / truth, 2);
      table.EndRow();
    };
    add_row("node-DP (ours)", ours);
    add_row("edge-DP (weaker model)", edge_dp);
    add_row("node-DP naive Lap(n/eps)", naive);
  }
  table.Print(std::cout);
  std::printf(
      "\nTakeaway: duplicate-record cliques have Hamiltonian paths, so\n"
      "Delta* = 2 and the node-private estimate tracks the weaker edge-DP\n"
      "release closely, while the naive node-DP release is unusable.\n");
  return 0;
}

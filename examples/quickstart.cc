// Quickstart: release the number of connected components of a small graph
// under ε-node-differential privacy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/private_cc.h"
#include "graph/connectivity.h"
#include "graph/graph.h"
#include "util/random.h"

int main() {
  using namespace nodedp;

  // A toy "friendship" graph: three social circles and two loners.
  //   circle A: 0-1-2 (triangle), circle B: 3-4, circle C: 5-6-7 (path),
  //   loners: 8, 9.
  const Graph graph(10, {{0, 1}, {1, 2}, {0, 2},   // A
                         {3, 4},                   // B
                         {5, 6}, {6, 7}});         // C

  const int true_cc = CountConnectedComponents(graph);
  std::printf("true number of connected components: %d\n", true_cc);

  // Release under node-DP. Every randomized step draws from the Rng you
  // pass, so runs are reproducible given a seed.
  const double epsilon = 1.0;
  Rng rng(/*seed=*/2023);
  const Result<ConnectedComponentsRelease> release =
      PrivateConnectedComponents(graph, epsilon, rng);
  if (!release.ok()) {
    std::fprintf(stderr, "release failed: %s\n",
                 release.status().ToString().c_str());
    return 1;
  }

  std::printf("private estimate (eps = %.2f):     %.2f\n", epsilon,
              release->estimate);
  std::printf("  |V| estimate:                    %.2f\n",
              release->node_count_estimate);
  std::printf("  f_sf estimate:                   %.2f\n",
              release->forest.estimate);
  std::printf("  GEM selected Lipschitz Delta:    %d\n",
              release->forest.selected_delta);
  std::printf("  Laplace scale of f_sf release:   %.2f\n",
              release->forest.laplace_scale);

  // The accuracy of the release is governed by Delta*, the smallest max
  // degree of a spanning forest — here every component has a Hamiltonian
  // path, so Delta* = 2 and the noise is tiny.
  return 0;
}

// Tests for the serve/ subsystem: budget ledger refusal semantics, the
// warmed-family cache, and the ReleaseServer registry + query surface.

#include "serve/release_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "serve/budget_ledger.h"
#include "serve/family_cache.h"
#include "util/random.h"

namespace nodedp {
namespace {

Graph TestGraph(int n = 200, double avg_deg = 1.5, uint64_t seed = 31) {
  Rng rng(seed);
  return gen::ErdosRenyi(n, avg_deg / n, rng);
}

ServeGraphConfig SmallConfig(double total_epsilon) {
  ServeGraphConfig config;
  config.total_epsilon = total_epsilon;
  config.release.delta_max = 8;  // keeps the warm grid small in Debug
  return config;
}

// ---------------------------------------------------------------------------
// BudgetLedger
// ---------------------------------------------------------------------------

TEST(BudgetLedgerTest, ChargesAccumulate) {
  BudgetLedger ledger(2.0);
  EXPECT_TRUE(ledger.TryCharge(0.5, "a").ok());
  EXPECT_TRUE(ledger.TryCharge(1.0, "b").ok());
  EXPECT_DOUBLE_EQ(ledger.spent(), 1.5);
  EXPECT_DOUBLE_EQ(ledger.remaining(), 0.5);
  EXPECT_EQ(ledger.num_charges(), 2);
  EXPECT_EQ(ledger.charges()[1].first, "b");
}

TEST(BudgetLedgerTest, RefusesOverspendAndLeavesLedgerUntouched) {
  BudgetLedger ledger(1.0);
  EXPECT_TRUE(ledger.TryCharge(0.6, "first").ok());
  const Status refused = ledger.TryCharge(0.6, "second");
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  // The refused charge must not change any accounting.
  EXPECT_DOUBLE_EQ(ledger.spent(), 0.6);
  EXPECT_EQ(ledger.num_charges(), 1);
  EXPECT_EQ(ledger.num_refusals(), 1);
  // A fitting charge is still admitted afterwards.
  EXPECT_TRUE(ledger.TryCharge(0.4, "third").ok());
  EXPECT_DOUBLE_EQ(ledger.spent(), 1.0);
  // And now the budget is exactly exhausted.
  EXPECT_EQ(ledger.TryCharge(1e-6, "fourth").code(),
            StatusCode::kResourceExhausted);
}

TEST(BudgetLedgerTest, ExactTotalIsAdmitted) {
  BudgetLedger ledger(1.0);
  EXPECT_TRUE(ledger.TryCharge(1.0, "all").ok());
  EXPECT_DOUBLE_EQ(ledger.remaining(), 0.0);
}

TEST(BudgetLedgerTest, NonPositiveChargeIsInvalid) {
  BudgetLedger ledger(1.0);
  EXPECT_EQ(ledger.TryCharge(0.0, "zero").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ledger.TryCharge(-1.0, "negative").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ledger.num_charges(), 0);
}

// ---------------------------------------------------------------------------
// FamilyCache
// ---------------------------------------------------------------------------

TEST(FamilyCacheTest, SecondGetIsAHit) {
  FamilyCache cache;
  const Graph g = TestGraph(60);
  const std::vector<double> grid = {1.0, 2.0, 4.0};
  const auto first = cache.GetOrCreate("k", g, grid, {});
  ASSERT_TRUE(first.ok());
  const auto second = cache.GetOrCreate("k", g, grid, {});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

TEST(FamilyCacheTest, EvictedEntrySurvivesForHolders) {
  FamilyCache cache;
  const Graph g = TestGraph(60);
  const auto family = cache.GetOrCreate("k", g, {1.0}, {});
  ASSERT_TRUE(family.ok());
  cache.Evict("k");
  EXPECT_EQ(cache.Get("k"), nullptr);
  // The handed-out shared_ptr still answers queries.
  const Result<double> value = (*family)->Value(1.0);
  EXPECT_TRUE(value.ok());
}

TEST(FamilyCacheTest, ByteCapEvictsLeastRecentlyUsed) {
  FamilyCache cache;
  EXPECT_EQ(cache.byte_cap(), 0u);  // unlimited unless configured
  const std::vector<double> grid = {1.0, 2.0, 4.0};
  const Graph ga = TestGraph(200, 1.5, 1);
  const Graph gb = TestGraph(200, 1.5, 2);
  const auto fa = cache.GetOrCreate("a", ga, grid, {});
  const auto fb = cache.GetOrCreate("b", gb, grid, {});
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_GE(cache.stats().bytes, (*fa)->MemoryBytes());

  // Touch "a" so "b" becomes least recently used, then cap below the pair:
  // exactly "b" must go.
  ASSERT_TRUE(cache.GetOrCreate("a", ga, grid, {}).ok());
  cache.SetByteCap((*fa)->MemoryBytes() + (*fb)->MemoryBytes() / 2);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_LE(stats.bytes, stats.byte_cap);

  // The evicted family survives for in-flight holders, and a rebuild under
  // the same key re-enters the cache (the newest entry is never evicted,
  // even when it alone exceeds the cap).
  EXPECT_TRUE((*fb)->Value(1.0).ok());
  cache.SetByteCap(1);
  const auto rebuilt = cache.GetOrCreate("b", gb, grid, {});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_NE(cache.Get("b"), nullptr);
  EXPECT_GE(cache.stats().evictions, 2);  // "a" went to make room
}

// ---------------------------------------------------------------------------
// ReleaseServer: registry
// ---------------------------------------------------------------------------

TEST(ReleaseServerTest, LoadQueryEvictLifecycle) {
  ReleaseServer server(11);
  ASSERT_TRUE(server.Load("g", TestGraph(), SmallConfig(5.0)).ok());
  EXPECT_EQ(server.GraphNames(), std::vector<std::string>{"g"});

  const auto release = server.ReleaseCc("g", 0.5);
  ASSERT_TRUE(release.ok()) << release.status().ToString();
  EXPECT_TRUE(std::isfinite(release->estimate));

  ASSERT_TRUE(server.Evict("g").ok());
  EXPECT_TRUE(server.GraphNames().empty());
  EXPECT_EQ(server.ReleaseCc("g", 0.5).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server.Evict("g").code(), StatusCode::kNotFound);
}

TEST(ReleaseServerTest, DuplicateAndInvalidLoadsRejected) {
  ReleaseServer server(11);
  ASSERT_TRUE(server.Load("g", TestGraph(), SmallConfig(5.0)).ok());
  EXPECT_EQ(server.Load("g", TestGraph(), SmallConfig(5.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.Load("", TestGraph(), SmallConfig(5.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.Load("h", TestGraph(), SmallConfig(0.0)).code(),
            StatusCode::kInvalidArgument);
  // A name freed by eviction is reusable.
  ASSERT_TRUE(server.Evict("g").ok());
  EXPECT_TRUE(server.Load("g", TestGraph(80), SmallConfig(5.0)).ok());
}

TEST(ReleaseServerTest, PrewarmBuildsFamilyAtLoad) {
  ReleaseServer server(11);
  ASSERT_TRUE(server.Load("g", TestGraph(), SmallConfig(5.0)).ok());
  const auto stats = server.Stats("g");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->family_warmed);
  EXPECT_GT(stats->num_vertices, 0);
  EXPECT_GT(stats->graph_memory_bytes, 0u);

  ServeGraphConfig lazy = SmallConfig(5.0);
  lazy.prewarm = false;
  ASSERT_TRUE(server.Load("h", TestGraph(), lazy).ok());
  EXPECT_FALSE(server.Stats("h")->family_warmed);
  ASSERT_TRUE(server.ReleaseCc("h", 0.5).ok());
  EXPECT_TRUE(server.Stats("h")->family_warmed);
}

// ---------------------------------------------------------------------------
// ReleaseServer: budget enforcement (the acceptance-criterion test)
// ---------------------------------------------------------------------------

TEST(ReleaseServerTest, LedgerRefusesQueryExceedingTotal) {
  ReleaseServer server(11);
  ASSERT_TRUE(server.Load("g", TestGraph(), SmallConfig(1.0)).ok());

  ASSERT_TRUE(server.ReleaseCc("g", 0.6).ok());
  // 0.6 spent of 1.0: a 0.6 query must be refused, not served.
  const auto refused = server.ReleaseCc("g", 0.6);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  // The refusal did not burn budget: 0.4 still fits.
  auto budget = server.Budget("g");
  ASSERT_TRUE(budget.ok());
  EXPECT_DOUBLE_EQ(budget->spent, 0.6);
  EXPECT_EQ(budget->num_refusals, 1);
  ASSERT_TRUE(server.ReleaseCc("g", 0.4).ok());

  // Budget is now exactly exhausted: everything is refused.
  EXPECT_EQ(server.ReleaseCc("g", 0.01).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(server.ReleaseSf("g", 0.01).status().code(),
            StatusCode::kResourceExhausted);
  budget = server.Budget("g");
  EXPECT_DOUBLE_EQ(budget->spent, 1.0);
  EXPECT_EQ(budget->num_charges, 2);
}

TEST(ReleaseServerTest, SweepAdmissionIsAllOrNothing) {
  ReleaseServer server(11);
  ASSERT_TRUE(server.Load("g", TestGraph(), SmallConfig(1.0)).ok());

  // Sum 1.2 > 1.0: the whole sweep is refused and nothing is charged.
  const auto refused = server.SweepCc("g", {0.4, 0.4, 0.4});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(server.Budget("g")->spent, 0.0);

  // Sum 0.9 fits: 3 releases come back, 0.9 is charged as one entry.
  const auto sweep = server.SweepCc("g", {0.3, 0.3, 0.3});
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  EXPECT_EQ(sweep->size(), 3u);
  const auto budget = server.Budget("g");
  EXPECT_DOUBLE_EQ(budget->spent, 0.9);
  EXPECT_EQ(budget->num_charges, 1);

  EXPECT_EQ(server.SweepCc("g", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.SweepCc("g", {0.05, -1.0}).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// ReleaseServer: warmed-family amortization and determinism
// ---------------------------------------------------------------------------

TEST(ReleaseServerTest, WarmQueriesDoNoNewLpWork) {
  ReleaseServer server(11);
  ASSERT_TRUE(server.Load("g", TestGraph(), SmallConfig(100.0)).ok());
  const auto warmed = server.Stats("g");
  ASSERT_TRUE(warmed.ok());
  const int lp_after_warm = warmed->family.lp_evaluations;
  const int fast_after_warm = warmed->family.fast_certificates;

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.ReleaseCc("g", 0.5).ok());
  }
  const auto after = server.Stats("g");
  // Every post-warm query hits the value cache: no LP evaluations, no new
  // certificates — only noise sampling.
  EXPECT_EQ(after->family.lp_evaluations, lp_after_warm);
  EXPECT_EQ(after->family.fast_certificates, fast_after_warm);
  EXPECT_GT(after->family.cache_hits, 0);
  EXPECT_EQ(after->queries_answered, 5);
}

TEST(ReleaseServerTest, SameSeedSameCommandsSameReleases) {
  auto run = [](std::uint64_t seed) {
    ReleaseServer server(seed);
    EXPECT_TRUE(server.Load("g", TestGraph(), SmallConfig(100.0)).ok());
    std::vector<double> estimates;
    estimates.push_back(server.ReleaseCc("g", 0.5)->estimate);
    estimates.push_back(server.ReleaseSf("g", 1.0)->estimate);
    const auto sweep = server.SweepCc("g", {0.25, 0.5, 1.0, 2.0});
    for (const auto& r : *sweep) estimates.push_back(r.estimate);
    return estimates;
  };
  const std::vector<double> a = run(77);
  const std::vector<double> b = run(77);
  const std::vector<double> c = run(78);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ReleaseServerTest, SweepMatchesManualSweepOnSharedFamily) {
  // The server's sweep must be the library SweepConnectedComponents on the
  // warmed family with a child stream split from the server Rng — verify
  // the values line up with a hand-driven replay of the same seed.
  const Graph g = TestGraph();
  ReleaseServer server(5);
  ASSERT_TRUE(server.Load("g", g, SmallConfig(100.0)).ok());
  const std::vector<double> epsilons = {0.5, 1.0, 2.0};
  const auto via_server = server.SweepCc("g", epsilons);
  ASSERT_TRUE(via_server.ok());

  Rng parent(5);
  Rng child = parent.Split();
  ExtensionFamily family(g, {});
  PrivateCcOptions options;
  options.delta_max = 8;
  const auto manual = SweepConnectedComponents(family, epsilons, child,
                                               options);
  ASSERT_EQ(manual.size(), via_server->size());
  for (std::size_t i = 0; i < manual.size(); ++i) {
    ASSERT_TRUE(manual[i].ok());
    EXPECT_DOUBLE_EQ(manual[i]->estimate, (*via_server)[i].estimate);
  }
}

TEST(ReleaseServerTest, ConcurrentQueriesAndStatsAreSafe) {
  // Hammers one warmed graph from several threads — releases, sweeps,
  // budget reads, and stats snapshots interleaved — so TSan actually sees
  // the server's lock discipline (including ExtensionFamily::stats()
  // during in-flight queries). Budget is sized so nothing is refused.
  ReleaseServer server(13);
  ASSERT_TRUE(server.Load("g", TestGraph(), SmallConfig(1e6)).ok());
  constexpr int kThreads = 4;
  constexpr int kIterations = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, t]() {
      for (int i = 0; i < kIterations; ++i) {
        if (t % 2 == 0) {
          EXPECT_TRUE(server.ReleaseCc("g", 0.5).ok());
        } else {
          EXPECT_TRUE(server.SweepCc("g", {0.25, 0.5}).ok());
        }
        EXPECT_TRUE(server.Stats("g").ok());
        EXPECT_TRUE(server.Budget("g").ok());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto stats = server.Stats("g");
  // 2 threads x 8 single releases + 2 threads x 8 two-epsilon sweeps.
  EXPECT_EQ(stats->queries_answered, 2 * 8 + 2 * 8 * 2);
  EXPECT_EQ(stats->queries_failed, 0);
  EXPECT_EQ(stats->budget.num_refusals, 0);
}

TEST(ReleaseServerTest, QueriesDuringPrewarmAreServed) {
  // The graph is registered before the load-time warm runs, so queries
  // racing the load must be either NotFound (not yet registered) or served
  // by the warming family — never wedged behind the whole warm and never
  // wrong. Run under TSan in CI, this is the concurrent
  // load-while-querying proof at the server level.
  ReleaseServer server(21);
  const Graph g = TestGraph(2000, 1.5, 33);
  std::atomic<bool> load_finished{false};
  std::atomic<bool> load_ok{false};
  std::thread loader([&server, &g, &load_finished, &load_ok] {
    load_ok.store(server.Load("g", g, SmallConfig(1e6)).ok());
    load_finished.store(true);
  });

  // Spin until the load settles and (if it succeeded) at least one query
  // was answered; a failed load exits the loop instead of spinning forever.
  long long answered = 0;
  while (!load_finished.load() || (load_ok.load() && answered == 0)) {
    const auto release = server.ReleaseCc("g", 0.25);
    if (release.ok()) {
      ++answered;
      EXPECT_TRUE(std::isfinite(release->estimate));
    } else {
      EXPECT_EQ(release.status().code(), StatusCode::kNotFound);
      std::this_thread::yield();
    }
  }
  loader.join();
  ASSERT_TRUE(load_ok.load());

  const auto stats = server.Stats("g");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->family_warmed);
  EXPECT_EQ(stats->queries_answered, answered);
  EXPECT_EQ(stats->queries_failed, 0);
  EXPECT_DOUBLE_EQ(stats->budget.spent, 0.25 * answered);
}

TEST(ReleaseServerTest, FailedPrewarmRollsBackRegistration) {
  // A warm that dies on LP resource exhaustion must surface the error and
  // (when no query spent budget mid-warm) leave nothing registered, so a
  // corrected reload starts clean.
  ReleaseServer server(11);
  ServeGraphConfig broken = SmallConfig(5.0);
  broken.release.extension.use_repair_fast_path = false;
  broken.release.extension.polytope.max_cut_rounds = 0;  // LP always fails
  const Status loaded = server.Load("g", TestGraph(), broken);
  EXPECT_EQ(loaded.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(server.GraphNames().empty());
  EXPECT_EQ(server.ReleaseCc("g", 0.5).status().code(),
            StatusCode::kNotFound);
  // The name is free for a working reload.
  EXPECT_TRUE(server.Load("g", TestGraph(), SmallConfig(5.0)).ok());
  EXPECT_TRUE(server.ReleaseCc("g", 0.5).ok());
}

TEST(ReleaseServerTest, FamilyByteCapEvictsAndRebuilds) {
  // Under a byte cap the cache evicts least-recently-used families; their
  // graphs stay registered and the next query transparently rebuilds.
  ReleaseServer server(11);
  ASSERT_TRUE(server.Load("g1", TestGraph(200, 1.5, 1),
                          SmallConfig(100.0)).ok());
  ASSERT_TRUE(server.Load("g2", TestGraph(200, 1.5, 2),
                          SmallConfig(100.0)).ok());
  auto cache = server.family_cache_stats();
  EXPECT_EQ(cache.entries, 2);
  EXPECT_GT(cache.bytes, 0u);
  EXPECT_GT(server.Stats("g1")->family_memory_bytes, 0u);

  server.SetFamilyCacheByteCap(1);  // evict everything evictable
  cache = server.family_cache_stats();
  EXPECT_EQ(cache.entries, 0);
  EXPECT_EQ(cache.evictions, 2);
  EXPECT_FALSE(server.Stats("g1")->family_warmed);
  EXPECT_EQ(server.Stats("g1")->family_memory_bytes, 0u);

  // Queries still work: each rebuilds its family on demand (the fresh
  // build is pinned while in use, then evicted to honor the tiny cap).
  const long long misses_before = cache.misses;
  ASSERT_TRUE(server.ReleaseCc("g1", 0.5).ok());
  ASSERT_TRUE(server.ReleaseCc("g2", 0.5).ok());
  cache = server.family_cache_stats();
  EXPECT_EQ(cache.misses, misses_before + 2);

  // With the cap lifted, the next query's rebuild stays resident again.
  server.SetFamilyCacheByteCap(0);
  ASSERT_TRUE(server.ReleaseCc("g2", 0.5).ok());
  EXPECT_TRUE(server.Stats("g2")->family_warmed);
  EXPECT_GT(server.Stats("g2")->family_memory_bytes, 0u);
}

// ---------------------------------------------------------------------------
// ReleaseServer: file round trips
// ---------------------------------------------------------------------------

TEST(ReleaseServerTest, SaveAndLoadFromFileRoundTrip) {
  const std::string binary_path =
      testing::TempDir() + "/nodedp_serve_test.ndpg";
  const std::string text_path = testing::TempDir() + "/nodedp_serve_test.txt";
  const Graph g = TestGraph(120);

  ReleaseServer server(11);
  ASSERT_TRUE(server.Load("g", g, SmallConfig(5.0)).ok());
  ASSERT_TRUE(server.Save("g", binary_path, /*binary=*/true).ok());
  ASSERT_TRUE(server.Save("g", text_path, /*binary=*/false).ok());

  // Both formats load back through the auto-detecting path.
  ASSERT_TRUE(server.LoadFromFile("from_binary", binary_path,
                                  SmallConfig(5.0)).ok());
  ASSERT_TRUE(server.LoadFromFile("from_text", text_path,
                                  SmallConfig(5.0)).ok());
  EXPECT_EQ(server.Stats("from_binary")->num_edges, g.NumEdges());
  EXPECT_EQ(server.Stats("from_text")->num_edges, g.NumEdges());

  EXPECT_EQ(server.Save("missing", binary_path).code(), StatusCode::kNotFound);
  EXPECT_EQ(server.LoadFromFile("x", "/nonexistent/g.ndpg",
                                SmallConfig(5.0)).code(),
            StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Streaming updates (UpdateGraph)
// ---------------------------------------------------------------------------

TEST(ReleaseServerTest, UpdateGraphMatchesFreshLoadOfPatchedGraph) {
  // The incremental path must be invisible in the released values: a server
  // that loads g and applies a delta answers exactly like a same-seed
  // server that loads the patched graph directly (bit-identical family,
  // same Rng split sequence).
  const Graph g = TestGraph(300, 1.2, 9);
  const std::vector<std::pair<int, int>> batch = {
      {0, 1}, {10, 250}, {3, 299}, {42, 43}};
  const Result<Graph::EdgeDelta> delta = g.ApplyEdgeDelta(batch);
  ASSERT_TRUE(delta.ok());

  ReleaseServer updated(77);
  ASSERT_TRUE(updated.Load("g", g, SmallConfig(100.0)).ok());
  const auto report = updated.UpdateGraph("g", batch);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->edges_added, static_cast<int>(delta->added.size()));
  EXPECT_EQ(report->num_edges, delta->graph.NumEdges());
  EXPECT_TRUE(report->family_rewarmed);
  EXPECT_GT(report->components_invalidated, 0);

  ReleaseServer fresh(77);
  ASSERT_TRUE(fresh.Load("g", delta->graph, SmallConfig(100.0)).ok());

  for (double epsilon : {0.5, 1.0, 2.0}) {
    const auto a = updated.ReleaseCc("g", epsilon);
    const auto b = fresh.ReleaseCc("g", epsilon);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(a->estimate, b->estimate);
    EXPECT_EQ(a->forest.selected_delta, b->forest.selected_delta);
  }
}

TEST(ReleaseServerTest, UpdateGraphChargesNoBudget) {
  ReleaseServer server(3);
  ASSERT_TRUE(server.Load("g", TestGraph(), SmallConfig(10.0)).ok());
  ASSERT_TRUE(server.ReleaseCc("g", 1.0).ok());
  const auto before = server.Budget("g");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(server.UpdateGraph("g", {{0, 1}, {5, 7}}).ok());
  const auto after = server.Budget("g");
  ASSERT_TRUE(after.ok());
  // A data operation, not a release: spent/charges are untouched.
  EXPECT_DOUBLE_EQ(after->spent, before->spent);
  EXPECT_EQ(after->num_charges, before->num_charges);
}

TEST(ReleaseServerTest, UpdateGraphRefusesBadBatchAtomically) {
  ReleaseServer server(3);
  ASSERT_TRUE(server.Load("g", TestGraph(50, 1.0, 4), SmallConfig(10.0)).ok());
  const auto stats_before = server.Stats("g");
  ASSERT_TRUE(stats_before.ok());
  // Self-loop and out-of-range endpoints refuse the whole batch.
  EXPECT_EQ(server.UpdateGraph("g", {{0, 1}, {7, 7}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.UpdateGraph("g", {{0, 50}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.UpdateGraph("x", {{0, 1}}).status().code(),
            StatusCode::kNotFound);
  const auto stats_after = server.Stats("g");
  ASSERT_TRUE(stats_after.ok());
  EXPECT_EQ(stats_after->num_edges, stats_before->num_edges);
  EXPECT_TRUE(server.ReleaseCc("g", 0.5).ok());
}

TEST(ReleaseServerTest, UpdateGraphPureDuplicatesKeepFamily) {
  const Graph g = TestGraph(80, 1.5, 6);
  ASSERT_GT(g.NumEdges(), 0);
  ReleaseServer server(3);
  ASSERT_TRUE(server.Load("g", g, SmallConfig(10.0)).ok());
  const Edge e = g.EdgeAt(0);
  const auto report = server.UpdateGraph("g", {{e.v, e.u}, {e.u, e.v}});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->edges_added, 0);
  EXPECT_EQ(report->duplicates, 2);
  EXPECT_FALSE(report->family_rewarmed);  // nothing changed, nothing rebuilt
  EXPECT_EQ(report->num_edges, g.NumEdges());
}

TEST(ReleaseServerTest, UpdateGraphWithoutResidentFamilySwapsGraphOnly) {
  ServeGraphConfig config = SmallConfig(10.0);
  config.prewarm = false;
  ReleaseServer server(3);
  ASSERT_TRUE(server.Load("g", TestGraph(60, 1.0, 8), config).ok());
  const auto report = server.UpdateGraph("g", {{0, 1}, {2, 3}});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->family_rewarmed);
  EXPECT_EQ(report->components_adopted, 0);
  EXPECT_EQ(report->components_invalidated, 0);
  // The next query builds cold from the patched graph.
  EXPECT_TRUE(server.ReleaseCc("g", 0.5).ok());
  const auto stats = server.Stats("g");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->family_warmed);
}

TEST(ReleaseServerTest, UpdateGraphAdoptsUntouchedComponents) {
  // Many well-separated components, a delta confined to two of them: the
  // incremental family must adopt the rest (and say so in the report).
  std::vector<Graph> parts;
  Rng rng(11);
  for (int i = 0; i < 8; ++i) parts.push_back(gen::ErdosRenyi(40, 0.06, rng));
  const Graph g = gen::DisjointUnion(parts);
  ReleaseServer server(3);
  ASSERT_TRUE(server.Load("g", g, SmallConfig(10.0)).ok());
  // An edge inside block 0 and one merging blocks 1 and 2.
  const auto report = server.UpdateGraph("g", {{0, 1}, {45, 90}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->family_rewarmed);
  EXPECT_GT(report->components_adopted, 0);
  EXPECT_GT(report->components_invalidated, 0);
  EXPECT_TRUE(server.ReleaseCc("g", 0.5).ok());
}

// ---------------------------------------------------------------------------
// Library-level sweep entry points
// ---------------------------------------------------------------------------

TEST(SweepTest, SweepIsDeterministicAtAnyWidthAndValidatesEpsilon) {
  const Graph g = TestGraph();
  PrivateCcOptions options;
  options.delta_max = 8;

  ExtensionFamily family_a(g, {});
  Rng rng_a(3);
  const auto a =
      SweepConnectedComponents(family_a, {0.5, -1.0, 1.0}, rng_a, options);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_TRUE(a[0].ok());
  EXPECT_EQ(a[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(a[2].ok());

  ExtensionFamily family_b(g, {});
  Rng rng_b(3);
  const auto b =
      SweepConnectedComponents(family_b, {0.5, -1.0, 1.0}, rng_b, options);
  EXPECT_DOUBLE_EQ(a[0]->estimate, b[0]->estimate);
  EXPECT_DOUBLE_EQ(a[2]->estimate, b[2]->estimate);

  ExtensionFamily family_c(g, {});
  Rng rng_c(3);
  const auto c = SweepSpanningForest(family_c, {0.5, 1.0}, rng_c, options);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_TRUE(c[0].ok());
  EXPECT_TRUE(c[1].ok());
}

}  // namespace
}  // namespace nodedp

// Skew-determinism battery for cost-aware scheduling: on adversarially
// skewed graphs (one giant component plus many tiny ones), Values() tables
// and post-call family state must be bit-identical between index-order and
// cost-order dispatch, at every pool width — LPT claiming and demand-first
// warming change wall-clock, never outcomes. The racing-caller tests run
// queries against a family mid-warm, exercising per-cell publication and
// the demand-first queue jump; they are the TSan targets for the early
// release path.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/extension_family.h"
#include "graph/generators.h"
#include "util/parallel.h"
#include "util/random.h"

namespace nodedp {
namespace {

using DispatchOrder = ExtensionOptions::DispatchOrder;

// One giant component occupying the TOP of the vertex range — component
// order follows the smallest vertex, so index-order dispatch reaches the
// giant last: the exact schedule LPT exists to fix — plus many tiny
// blocks.
Graph SkewedGraph() {
  Rng rng(1234);
  std::vector<Graph> blocks;
  for (int b = 0; b < 40; ++b) {
    blocks.push_back(gen::ErdosRenyi(8, 0.35, rng));
  }
  blocks.push_back(gen::ErdosRenyi(150, 5.0 / 150, rng));
  return gen::DisjointUnion(blocks);
}

const std::vector<double> kGrid = {1.0, 2.0, 4.0, 8.0, 16.0};

ExtensionOptions OptionsWith(DispatchOrder order) {
  ExtensionOptions options;
  options.dispatch_order = order;
  return options;
}

struct SweepResult {
  std::vector<double> values;
  std::vector<double> revalues;  // second call: must come from cache
  ExtensionFamily::Stats stats;
};

SweepResult Sweep(const Graph& g, DispatchOrder order, int width,
                  bool deferred) {
  ThreadPool pool(width);
  ScopedThreadPool scope(&pool);
  SweepResult result;
  if (deferred) {
    ExtensionFamily family(g, OptionsWith(order),
                           ExtensionFamily::DeferInduction{});
    result.values = family.Values(kGrid).value();
    result.revalues = family.Values(kGrid).value();
    result.stats = family.stats();
  } else {
    ExtensionFamily family(g, OptionsWith(order));
    result.values = family.Values(kGrid).value();
    result.revalues = family.Values(kGrid).value();
    result.stats = family.stats();
  }
  return result;
}

TEST(SkewScheduleTest, ValuesBitIdenticalAcrossOrdersAndWidths) {
  const Graph g = SkewedGraph();
  const SweepResult reference =
      Sweep(g, DispatchOrder::kIndexOrdered, /*width=*/1, /*deferred=*/false);
  ASSERT_EQ(reference.values.size(), kGrid.size());
  for (const bool deferred : {false, true}) {
    for (const int width : {1, 3, 8}) {
      for (const DispatchOrder order :
           {DispatchOrder::kIndexOrdered, DispatchOrder::kCostOrdered}) {
        const SweepResult run = Sweep(g, order, width, deferred);
        for (std::size_t i = 0; i < kGrid.size(); ++i) {
          // Bitwise equality, not tolerance: neither the claim permutation
          // nor the pool width may leak into a result.
          EXPECT_EQ(run.values[i], reference.values[i])
              << "delta=" << kGrid[i] << " width=" << width
              << " deferred=" << deferred;
          EXPECT_EQ(run.revalues[i], reference.values[i]);
        }
        // Identical work, not merely identical answers: the same cells
        // settle the same way regardless of dispatch order.
        EXPECT_EQ(run.stats.lp_evaluations, reference.stats.lp_evaluations);
        EXPECT_EQ(run.stats.fast_certificates,
                  reference.stats.fast_certificates);
        EXPECT_EQ(run.stats.cuts_added, reference.stats.cuts_added);
        EXPECT_EQ(run.stats.cache_hits, reference.stats.cache_hits);
      }
    }
  }
}

TEST(SkewScheduleTest, RacingCallersMidWarmSeeIdenticalValues) {
  // Queries racing an async warm must return the same values the warm
  // itself settles — through demand-first queue jumps and per-cell early
  // publication. Repeat a few times: the interesting interleavings (racer
  // plans while the warm's cells are mid-flight) depend on timing.
  const Graph g = SkewedGraph();
  const SweepResult reference =
      Sweep(g, DispatchOrder::kIndexOrdered, /*width=*/1, /*deferred=*/false);
  for (int round = 0; round < 3; ++round) {
    ThreadPool pool(4);
    ScopedThreadPool scope(&pool);
    ExtensionFamily family(g, OptionsWith(DispatchOrder::kCostOrdered),
                           ExtensionFamily::DeferInduction{});
    family.WarmAsync(kGrid);
    std::vector<std::thread> racers;
    std::vector<double> got(kGrid.size(), -1.0);
    for (std::size_t i = 0; i < kGrid.size(); ++i) {
      racers.emplace_back([&family, &got, i] {
        const Result<double> value = family.Value(kGrid[i]);
        ASSERT_TRUE(value.ok());
        got[i] = *value;
      });
    }
    for (std::thread& racer : racers) racer.join();
    ASSERT_TRUE(family.WaitWarm().ok());
    for (std::size_t i = 0; i < kGrid.size(); ++i) {
      EXPECT_EQ(got[i], reference.values[i]) << "delta=" << kGrid[i];
    }
  }
}

TEST(SkewScheduleTest, RacingBatchCallersShareCellsWithoutDuplicateWork) {
  // Several whole-grid batches racing one another: every caller gets the
  // reference table, and the family solves each cell at most once (the
  // in-flight registry's contract, now with per-cell release).
  const Graph g = SkewedGraph();
  const SweepResult reference =
      Sweep(g, DispatchOrder::kIndexOrdered, /*width=*/1, /*deferred=*/false);
  ThreadPool pool(8);
  ScopedThreadPool scope(&pool);
  ExtensionFamily family(g, OptionsWith(DispatchOrder::kCostOrdered),
                         ExtensionFamily::DeferInduction{});
  constexpr int kCallers = 4;
  std::vector<std::vector<double>> tables(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&family, &tables, c] {
      const Result<std::vector<double>> values = family.Values(kGrid);
      ASSERT_TRUE(values.ok());
      tables[c] = *values;
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (int c = 0; c < kCallers; ++c) {
    ASSERT_EQ(tables[c].size(), kGrid.size());
    for (std::size_t i = 0; i < kGrid.size(); ++i) {
      EXPECT_EQ(tables[c][i], reference.values[i])
          << "caller=" << c << " delta=" << kGrid[i];
    }
  }
  EXPECT_EQ(family.stats().lp_evaluations, reference.stats.lp_evaluations);
}

}  // namespace
}  // namespace nodedp

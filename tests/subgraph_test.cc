// Tests for induced subgraphs, vertex insertion/removal, and masks.

#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(SubgraphTest, InduceKeepsInternalEdges) {
  const Graph g = gen::Complete(5);
  const InducedSubgraph sub = Induce(g, {1, 3, 4});
  EXPECT_EQ(sub.graph.NumVertices(), 3);
  EXPECT_EQ(sub.graph.NumEdges(), 3);  // triangle
  EXPECT_EQ(sub.original_vertex, (std::vector<int>{1, 3, 4}));
}

TEST(SubgraphTest, InduceDropsCrossingEdges) {
  const Graph g = gen::Path(5);  // 0-1-2-3-4
  const InducedSubgraph sub = Induce(g, {0, 2, 4});
  EXPECT_EQ(sub.graph.NumEdges(), 0);
}

TEST(SubgraphTest, InduceEmptySet) {
  const Graph g = gen::Path(3);
  const InducedSubgraph sub = Induce(g, {});
  EXPECT_EQ(sub.graph.NumVertices(), 0);
  EXPECT_EQ(sub.graph.NumEdges(), 0);
}

TEST(SubgraphTest, RemoveVertexShiftsLabels) {
  const Graph g = gen::Path(4);  // 0-1-2-3
  const Graph h = RemoveVertex(g, 1);
  EXPECT_EQ(h.NumVertices(), 3);
  // Vertices 2, 3 become 1, 2; remaining edge 2-3 becomes 1-2.
  EXPECT_EQ(h.NumEdges(), 1);
  EXPECT_TRUE(h.HasEdge(1, 2));
  EXPECT_EQ(CountConnectedComponents(h), 2);
}

TEST(SubgraphTest, AddVertexCreatesNodeNeighbor) {
  const Graph g = gen::Empty(3);
  const Graph g_prime = AddVertex(g, {0, 1, 2});
  EXPECT_EQ(g_prime.NumVertices(), 4);
  EXPECT_EQ(g_prime.NumEdges(), 3);
  EXPECT_EQ(CountConnectedComponents(g_prime), 1);
  // Removing the new vertex recovers the original.
  const Graph back = RemoveVertex(g_prime, 3);
  EXPECT_EQ(back.NumVertices(), 3);
  EXPECT_EQ(back.NumEdges(), 0);
}

TEST(SubgraphTest, AddVertexWithNoEdgesIsIsolated) {
  const Graph g = gen::Path(3);
  const Graph g_prime = AddVertex(g, {});
  EXPECT_EQ(CountConnectedComponents(g_prime),
            CountConnectedComponents(g) + 1);
}

TEST(SubgraphTest, InduceByMaskMatchesExplicitList) {
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(10, 0.4, rng);
  const uint64_t mask = 0b1011001101ULL;
  const InducedSubgraph by_mask = InduceByMask(g, mask);
  std::vector<int> vertices;
  for (int v = 0; v < 10; ++v) {
    if ((mask >> v) & 1ULL) vertices.push_back(v);
  }
  const InducedSubgraph by_list = Induce(g, vertices);
  EXPECT_EQ(by_mask.graph.NumVertices(), by_list.graph.NumVertices());
  EXPECT_EQ(by_mask.graph.Edges(), by_list.graph.Edges());
  EXPECT_EQ(by_mask.original_vertex, by_list.original_vertex);
}

TEST(SubgraphTest, MonotonicityOfSpanningForestUnderInsertion) {
  // f_sf is monotone nondecreasing under node insertion (Section 1.1).
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::ErdosRenyi(12, 0.2, rng);
    std::vector<int> neighbors;
    for (int v = 0; v < g.NumVertices(); ++v) {
      if (rng.NextBernoulli(0.4)) neighbors.push_back(v);
    }
    const Graph g_prime = AddVertex(g, neighbors);
    EXPECT_GE(SpanningForestSize(g_prime), SpanningForestSize(g));
    // And it grows by at most... |neighbors| when adding a vertex? It grows
    // by exactly the number of components merged, at most deg of new vertex.
    EXPECT_LE(SpanningForestSize(g_prime),
              SpanningForestSize(g) + std::max<size_t>(1, neighbors.size()));
  }
}

TEST(SubgraphDeathTest, DuplicateVertexRejected) {
  const Graph g = gen::Path(3);
  EXPECT_DEATH(Induce(g, {1, 1}), "duplicate vertex");
}

}  // namespace
}  // namespace nodedp

// Parameterized distributional sweeps for the DP mechanisms: the Laplace
// sampler across scales and the exponential mechanism across score shapes,
// each checked against closed-form properties at every parameter point.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "dp/exponential.h"
#include "dp/laplace.h"
#include "util/random.h"

namespace nodedp {
namespace {

class LaplaceSweepTest
    : public testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LaplaceSweepTest, MeanAbsoluteDeviationMatchesScale) {
  const auto& [sensitivity, epsilon] = GetParam();
  const double b = sensitivity / epsilon;
  Rng rng(static_cast<uint64_t>(sensitivity * 1000 + epsilon * 77));
  const int trials = 60000;
  double sum_abs = 0.0;
  for (int t = 0; t < trials; ++t) {
    sum_abs += std::fabs(LaplaceMechanism(0.0, sensitivity, epsilon, rng));
  }
  EXPECT_NEAR(sum_abs / trials, b, b * 0.04);
}

TEST_P(LaplaceSweepTest, MedianAbsoluteDeviationMatchesTheory) {
  // median(|Lap(b)|) = b ln 2.
  const auto& [sensitivity, epsilon] = GetParam();
  const double b = sensitivity / epsilon;
  Rng rng(static_cast<uint64_t>(sensitivity * 991 + epsilon * 13));
  const int trials = 60001;
  std::vector<double> samples(trials);
  for (double& s : samples) {
    s = std::fabs(LaplaceMechanism(0.0, sensitivity, epsilon, rng));
  }
  std::nth_element(samples.begin(), samples.begin() + trials / 2,
                   samples.end());
  EXPECT_NEAR(samples[trials / 2], b * std::log(2.0), b * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Scales, LaplaceSweepTest,
    testing::Combine(testing::Values(0.5, 1.0, 4.0, 32.0),
                     testing::Values(0.25, 1.0, 4.0)),
    [](const testing::TestParamInfo<LaplaceSweepTest::ParamType>& info) {
      return "s" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_e" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

class ExponentialSweepTest : public testing::TestWithParam<double> {};

TEST_P(ExponentialSweepTest, PairwiseOddsMatchTheory) {
  // For any two candidates, empirical selection odds must match
  // exp(eps * (s_j - s_i) / 2) within sampling error.
  const double epsilon = GetParam();
  const std::vector<double> scores = {0.0, 0.7, 1.9};
  Rng rng(static_cast<uint64_t>(epsilon * 1009));
  std::vector<int> counts(scores.size(), 0);
  const int trials = 120000;
  for (int t = 0; t < trials; ++t) {
    ++counts[ExponentialMechanismMin(scores, 1.0, epsilon, rng)];
  }
  const auto expected =
      ExponentialMechanismProbabilities(scores, 1.0, epsilon);
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / trials, expected[i], 0.012)
        << "candidate " << i << " at eps=" << epsilon;
  }
}

TEST_P(ExponentialSweepTest, ScoreShiftInvariance) {
  // The EM distribution is invariant under shifting every score by a
  // constant — an important property the GEM construction relies on when
  // it drops the h(G) term from the q_i (Appendix B footnote).
  const double epsilon = GetParam();
  const std::vector<double> base = {0.3, 1.1, 2.0, 5.5};
  std::vector<double> shifted;
  for (double s : base) shifted.push_back(s + 123.456);
  const auto p_base = ExponentialMechanismProbabilities(base, 1.0, epsilon);
  const auto p_shifted =
      ExponentialMechanismProbabilities(shifted, 1.0, epsilon);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(p_base[i], p_shifted[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, ExponentialSweepTest,
                         testing::Values(0.25, 1.0, 3.0),
                         [](const testing::TestParamInfo<double>& info) {
                           return "e" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
}  // namespace nodedp

// Mmap-vs-heap equivalence: a Graph opened zero-copy from an NDPG v2 file
// must be indistinguishable from the heap-built original — bit-identical
// edge list, CSR arrays, and accessor results, all the way up through
// ExtensionFamily Values() tables (the serving payload). If this holds,
// `load` and `load_mmap` are interchangeable for every query path.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/extension_family.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/subgraph.h"
#include "util/random.h"

namespace nodedp {
namespace {

std::string TestPath(const std::string& leaf) {
  return testing::TempDir() + "/" + leaf;
}

Graph RandomGraph(int trial, Rng& rng) {
  const int n = 2 + static_cast<int>(rng.NextUint64(120));
  switch (trial % 3) {
    case 0:
      return gen::ErdosRenyi(n, 2.5 / n, rng);
    case 1:
      return gen::RandomEntityGraph(n, 3, rng);
    default:
      return gen::RandomGeometric(n, 0.08, rng);
  }
}

void ExpectStructurallyIdentical(const Graph& heap, const Graph& mapped,
                                 int trial) {
  ASSERT_EQ(heap.NumVertices(), mapped.NumVertices()) << "trial " << trial;
  ASSERT_EQ(heap.NumEdges(), mapped.NumEdges()) << "trial " << trial;
  EXPECT_FALSE(heap.IsMapped());
  EXPECT_TRUE(mapped.IsMapped());
  EXPECT_GT(mapped.MappedBytes(), 0u);

  const auto same_ints = [&](Span<const int> a, Span<const int> b,
                             const char* what) {
    ASSERT_EQ(a.size(), b.size()) << what << " trial " << trial;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << what << "[" << i << "] trial " << trial;
    }
  };
  same_ints(heap.CsrOffsets(), mapped.CsrOffsets(), "offsets");
  same_ints(heap.CsrNeighbors(), mapped.CsrNeighbors(), "neighbors");
  same_ints(heap.CsrIncidentEdgeIds(), mapped.CsrIncidentEdgeIds(),
            "incident");
  for (int e = 0; e < heap.NumEdges(); ++e) {
    ASSERT_EQ(heap.EdgeAt(e), mapped.EdgeAt(e)) << "edge " << e;
  }
  for (int v = 0; v < heap.NumVertices(); ++v) {
    ASSERT_EQ(heap.Degree(v), mapped.Degree(v)) << "vertex " << v;
    same_ints(heap.Neighbors(v), mapped.Neighbors(v), "nbr slice");
    same_ints(heap.IncidentEdgeIds(v), mapped.IncidentEdgeIds(v),
              "inc slice");
  }
}

TEST(MmapEquivalenceTest, RandomizedStructuralEquivalence) {
  const std::string path = TestPath("mmap_equiv_struct.ndpg2");
  Rng rng(7300);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph heap = RandomGraph(trial, rng);
    ASSERT_TRUE(WriteGraphV2File(heap, path).ok()) << "trial " << trial;
    const Result<Graph> mapped =
        Graph::FromMmap(path, /*verify_checksums=*/(trial % 4 == 0));
    ASSERT_TRUE(mapped.ok()) << "trial " << trial << ": "
                             << mapped.status().ToString();
    ExpectStructurallyIdentical(heap, *mapped, trial);

    // Derived structure built from accessor views: induced subgraphs.
    std::vector<int> subset;
    for (int v = 0; v < heap.NumVertices(); v += 2) subset.push_back(v);
    const InducedSubgraph a = Induce(heap, subset);
    const InducedSubgraph b = Induce(*mapped, subset);
    ASSERT_EQ(a.graph.NumEdges(), b.graph.NumEdges()) << "trial " << trial;
    for (int e = 0; e < a.graph.NumEdges(); ++e) {
      ASSERT_EQ(a.graph.EdgeAt(e), b.graph.EdgeAt(e)) << "trial " << trial;
    }
  }
  std::remove(path.c_str());
}

TEST(MmapEquivalenceTest, ExtensionFamilyValuesBitIdentical) {
  // The end-to-end claim behind tiered serving: the whole deterministic
  // pipeline (family construction, LP warm, Values tables) produces
  // bit-identical doubles on a mapped graph and its heap twin.
  const std::string path = TestPath("mmap_equiv_family.ndpg2");
  const std::vector<double> grid = {1.0, 2.0, 4.0, 8.0};
  Rng rng(7301);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph heap = RandomGraph(trial, rng);
    ASSERT_TRUE(WriteGraphV2File(heap, path).ok()) << "trial " << trial;
    const Result<Graph> mapped = Graph::FromMmap(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

    ExtensionFamily heap_family(heap);
    ExtensionFamily mapped_family(*mapped);
    const auto heap_values = heap_family.Values(grid);
    const auto mapped_values = mapped_family.Values(grid);
    ASSERT_TRUE(heap_values.ok()) << heap_values.status().ToString();
    ASSERT_TRUE(mapped_values.ok()) << mapped_values.status().ToString();
    EXPECT_EQ(*heap_values, *mapped_values) << "trial " << trial;
  }
  std::remove(path.c_str());
}

TEST(MmapEquivalenceTest, CopiesShareTheMapping) {
  const std::string path = TestPath("mmap_equiv_copy.ndpg2");
  Rng rng(7302);
  const Graph heap = gen::ErdosRenyi(80, 0.05, rng);
  ASSERT_TRUE(WriteGraphV2File(heap, path).ok());
  Graph copy;
  {
    const Result<Graph> mapped = Graph::FromMmap(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    copy = *mapped;  // shares the mapping; original goes out of scope
  }
  // The mapping must outlive the original Graph object.
  EXPECT_TRUE(copy.IsMapped());
  EXPECT_EQ(copy.NumEdges(), heap.NumEdges());
  int degree_sum = 0;
  for (int v = 0; v < copy.NumVertices(); ++v) {
    degree_sum += static_cast<int>(copy.Neighbors(v).size());
  }
  EXPECT_EQ(degree_sum, 2 * heap.NumEdges());
  std::remove(path.c_str());
}

TEST(MmapEquivalenceTest, MappedGraphReportsNoHeapArrayBytes) {
  const std::string path = TestPath("mmap_equiv_bytes.ndpg2");
  Rng rng(7303);
  const Graph heap = gen::ErdosRenyi(200, 0.03, rng);
  ASSERT_TRUE(WriteGraphV2File(heap, path).ok());
  const Result<Graph> mapped = Graph::FromMmap(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_GT(heap.MemoryBytes(), 0u);
  EXPECT_EQ(heap.MappedBytes(), 0u);
  EXPECT_EQ(mapped->MemoryBytes(), 0u);
  EXPECT_GT(mapped->MappedBytes(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nodedp

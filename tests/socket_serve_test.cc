// The socket-serving test battery: crash/restart durability, concurrent
// clients, and protocol robustness over a real TCP transport.
//
// This binary has its own main(): the kill-and-restart test re-execs
// /proc/self/exe with --serve-child to get a genuinely separate server
// process (fork+exec keeps sanitizer runtimes sound where a bare fork of
// a threaded process would not), points it at a durable state directory,
// SIGKILLs it mid-service, and restarts it to prove the privacy-budget
// promise survives: what was refused over-budget before the crash is
// refused after it, bit for bit.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/release_server.h"
#include "serve/socket_client.h"
#include "serve/socket_server.h"
#include "util/random.h"
#include "util/status.h"

namespace nodedp {
namespace {

constexpr int kClientTimeoutMs = 30000;  // generous: sanitizer builds are slow

class ScratchDir {
 public:
  ScratchDir() {
    char templ[] = "/tmp/nodedp_sock_XXXXXX";
    const char* made = ::mkdtemp(templ);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp/nodedp_sock_fallback";
  }
  ~ScratchDir() {
    const std::string cleanup = "rm -rf '" + path_ + "'";
    (void)!std::system(cleanup.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- serve-child process management (kill-and-restart test) ---

pid_t SpawnServeChild(const std::string& state_dir,
                      const std::string& port_file) {
  ::unlink(port_file.c_str());
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: exec ourselves immediately — no test-framework or sanitizer
    // state crosses the fork beyond what exec wipes.
    ::execl("/proc/self/exe", "socket_serve_test", "--serve-child",
            state_dir.c_str(), port_file.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

// Waits for the child to publish its listening port (written atomically via
// rename, so a non-empty read is a complete read).
int AwaitPort(const std::string& port_file) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(port_file);
    int port = 0;
    if (in >> port && port > 0) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return -1;
}

void KillAndReap(pid_t pid) {
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
}

std::string MustRequest(SocketClient& client, const std::string& line) {
  const Result<std::string> response = client.Request(line);
  EXPECT_TRUE(response.ok()) << line << ": " << response.status().ToString();
  return response.ok() ? *response : std::string();
}

TEST(SocketServeDurabilityTest, RefusalSurvivesSigkillAndRestart) {
  ScratchDir state;
  const std::string port_file = state.path() + "/port";

  // --- Life 1: spend the budget down to refusal. ---
  const pid_t first = SpawnServeChild(state.path(), port_file);
  ASSERT_GT(first, 0);
  const int port1 = AwaitPort(port_file);
  ASSERT_GT(port1, 0) << "server child never published its port";
  auto client1 = SocketClient::Connect("127.0.0.1", port1, kClientTimeoutMs);
  ASSERT_TRUE(client1.ok()) << client1.status().ToString();

  // Budget 1.0 on a small generated graph.
  const std::string gen_cmd = "gen g gnp 80 3 11 1.0 4";
  EXPECT_EQ(MustRequest(*client1, gen_cmd).substr(0, 2), "ok");
  EXPECT_EQ(MustRequest(*client1, "release_cc g 0.4").substr(0, 2), "ok");
  EXPECT_EQ(MustRequest(*client1, "release_cc g 0.4").substr(0, 2), "ok");
  // 0.8 spent: the third 0.4 does not fit the remaining ~0.2.
  const std::string refusal = MustRequest(*client1, "release_cc g 0.4");
  EXPECT_NE(refusal.find("err"), std::string::npos) << refusal;
  EXPECT_NE(refusal.find("ResourceExhausted"), std::string::npos) << refusal;
  const std::string budget_before = MustRequest(*client1, "budget g");
  EXPECT_EQ(budget_before.substr(0, 2), "ok") << budget_before;
  EXPECT_NE(budget_before.find("charges=2"), std::string::npos)
      << budget_before;
  EXPECT_NE(budget_before.find("refusals=1"), std::string::npos)
      << budget_before;

  // --- Crash: SIGKILL, no shutdown hooks, no flush courtesy. ---
  client1->Close();
  KillAndReap(first);

  // --- Life 2: restart over the same state directory. ---
  const pid_t second = SpawnServeChild(state.path(), port_file);
  ASSERT_GT(second, 0);
  const int port2 = AwaitPort(port_file);
  ASSERT_GT(port2, 0) << "restarted child never published its port";
  auto client2 = SocketClient::Connect("127.0.0.1", port2, kClientTimeoutMs);
  ASSERT_TRUE(client2.ok()) << client2.status().ToString();

  // Reload the same graph asking for budget 99 — the restored ledger wins,
  // and the reply reports the adopted total (1), not the requested 99.
  const std::string regen = MustRequest(*client2, "gen g gnp 80 3 11 99 4");
  EXPECT_EQ(regen.substr(0, 2), "ok") << regen;
  EXPECT_NE(regen.find("budget=1"), std::string::npos) << regen;

  // The ledger is exactly what it was at the moment of the kill: same
  // total, same spent sum (bit-identical doubles → identical %.6g text),
  // same charge and refusal counts.
  const std::string budget_after = MustRequest(*client2, "budget g");
  EXPECT_EQ(budget_after, budget_before);

  // What was refused stays refused...
  const std::string still_refused = MustRequest(*client2, "release_cc g 0.4");
  EXPECT_NE(still_refused.find("ResourceExhausted"), std::string::npos)
      << still_refused;
  // ...and the genuinely remaining budget is still spendable.
  EXPECT_EQ(MustRequest(*client2, "release_cc g 0.15").substr(0, 2), "ok");

  client2->Close();
  KillAndReap(second);
}

// --- In-process fixture for the hammer and robustness tests. ---

ServeGraphConfig HammerConfig(double budget) {
  ServeGraphConfig config;
  config.total_epsilon = budget;
  config.release.delta_max = 8;
  config.prewarm = true;
  return config;
}

Graph HammerGraph() {
  Rng rng(17);
  return gen::ErdosRenyi(200, 3.0 / 200.0, rng);
}

TEST(SocketServeHammerTest, ConcurrentMixedClientsMidWarm) {
  ReleaseServer server(5);
  SocketServer socket_server(&server);
  ASSERT_TRUE(socket_server.Start().ok());

  // Load in the background so the first wave of queries lands mid-warm
  // (the server registers the graph before the family warm finishes).
  std::thread loader([&server] {
    const Status loaded = server.Load("g", HammerGraph(), HammerConfig(64.0));
    EXPECT_TRUE(loaded.ok()) << loaded.ToString();
  });
  while (server.GraphNames().empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 8 clients × 4 rounds of mixed queries. Epsilons are powers of two so
  // the final spent sum is exact regardless of admission interleaving:
  // per round 0.25 + 0.5 + (0.25 + 0.25) = 1.25, grand total 40 of 64.
  constexpr int kClients = 8;
  constexpr int kRounds = 4;
  std::atomic<int> malformed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&socket_server, &malformed] {
      auto client = SocketClient::Connect("127.0.0.1", socket_server.port(),
                                          kClientTimeoutMs);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      const std::vector<std::string> round = {
          "release_cc g 0.25", "release_sf g 0.5", "sweep g 0.25 0.25",
          "budget g",          "stats g",
      };
      for (int r = 0; r < kRounds; ++r) {
        for (const std::string& request : round) {
          const Result<std::string> response = client->Request(request);
          ASSERT_TRUE(response.ok())
              << request << ": " << response.status().ToString();
          if (response->rfind("ok ", 0) != 0) {
            ++malformed;
            ADD_FAILURE() << request << " -> " << *response;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  loader.join();
  EXPECT_EQ(malformed.load(), 0);

  // Every admission succeeded (budget 64 > 40), so the concurrent spend
  // must equal the serial sum exactly — powers of two make float addition
  // order-independent here.
  const auto budget = server.Budget("g");
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(budget->spent, kClients * kRounds * 1.25);
  EXPECT_EQ(budget->num_charges, kClients * kRounds * 3);
  EXPECT_EQ(budget->num_refusals, 0);

  const auto stats = socket_server.stats();
  EXPECT_EQ(stats.accepted, kClients);
  EXPECT_EQ(stats.lines, kClients * kRounds * 5);
  socket_server.Stop();
}

// --- Protocol robustness: garbage costs its own connection, nothing else.

class SocketRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<ReleaseServer>(3);
    ASSERT_TRUE(server_->Load("g", HammerGraph(), HammerConfig(8.0)).ok());
    SocketServerOptions options;
    options.max_line_bytes = 1024;
    socket_server_ = std::make_unique<SocketServer>(server_.get(), options);
    ASSERT_TRUE(socket_server_->Start().ok());
  }

  void TearDown() override {
    // Whatever the abuse, the server must end exactly where it started:
    // one graph, nothing spent, nothing charged.
    const auto budget = server_->Budget("g");
    ASSERT_TRUE(budget.ok());
    EXPECT_EQ(budget->spent, 0.0);
    EXPECT_EQ(budget->num_charges, 0);
    EXPECT_EQ(server_->GraphNames(), std::vector<std::string>{"g"});
    socket_server_->Stop();
  }

  Result<SocketClient> Connect() {
    return SocketClient::Connect("127.0.0.1", socket_server_->port(),
                                 kClientTimeoutMs);
  }

  std::unique_ptr<ReleaseServer> server_;
  std::unique_ptr<SocketServer> socket_server_;
};

TEST_F(SocketRobustnessTest, OversizedLineDropsOnlyThatConnection) {
  auto victim = Connect();
  ASSERT_TRUE(victim.ok());
  const std::string huge(4096, 'a');
  ASSERT_TRUE(victim->SendRaw(huge.data(), huge.size()).ok());
  ASSERT_TRUE(victim->SendRaw("\n", 1).ok());
  const auto reply = victim->ReadLine();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "err line too long");
  // The connection is gone...
  EXPECT_FALSE(victim->ReadLine().ok());
  // ...but a well-behaved neighbor is untouched.
  auto neighbor = Connect();
  ASSERT_TRUE(neighbor.ok());
  EXPECT_EQ(MustRequest(*neighbor, "budget g").substr(0, 2), "ok");
}

TEST_F(SocketRobustnessTest, NewlineFreeFloodIsBounded) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  // More than max_line_bytes with no newline at all: the server must not
  // buffer without bound waiting for one.
  const std::string flood(8192, 'x');
  ASSERT_TRUE(client->SendRaw(flood.data(), flood.size()).ok());
  const auto reply = client->ReadLine();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "err line too long");
  EXPECT_FALSE(client->ReadLine().ok());
}

TEST_F(SocketRobustnessTest, BinaryGarbageGetsErrAndKeepsConnection) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  const char garbage[] = "\x01\xff\x7f\x00garbage\x02\n";
  ASSERT_TRUE(client->SendRaw(garbage, sizeof(garbage) - 1).ok());
  const auto reply = client->ReadLine();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->rfind("err ", 0), 0u) << *reply;
  // Parse isolation: the same connection still serves valid requests.
  EXPECT_EQ(MustRequest(*client, "stats g").substr(0, 2), "ok");
}

TEST_F(SocketRobustnessTest, TruncatedCommandThenDisconnectChargesNothing) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  // A partial request with no newline, then a vanishing client: the
  // fragment must be abandoned, not dispatched.
  const std::string partial = "release_cc g 0.2";
  ASSERT_TRUE(client->SendRaw(partial.data(), partial.size()).ok());
  client->Close();
  // Give the server a beat to observe the disconnect.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // TearDown asserts spent == 0.
}

TEST_F(SocketRobustnessTest, InterleavedPartialWritesReassemble) {
  auto slow = Connect();
  auto fast = Connect();
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  // One request dribbled across three writes, with another client's
  // complete requests interleaved between the fragments.
  ASSERT_TRUE(slow->SendRaw("bud", 3).ok());
  EXPECT_EQ(MustRequest(*fast, "stats g").substr(0, 2), "ok");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(slow->SendRaw("get ", 4).ok());
  EXPECT_EQ(MustRequest(*fast, "budget g").substr(0, 2), "ok");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(slow->SendRaw("g\n", 2).ok());
  const auto reply = slow->ReadLine();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->rfind("ok total=", 0), 0u) << *reply;
}

TEST_F(SocketRobustnessTest, NonPositiveEpsilonIsRefusedWithoutCharge) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(MustRequest(*client, "release_cc g 0.0").substr(0, 3), "err");
  EXPECT_EQ(MustRequest(*client, "release_cc g -1").substr(0, 3), "err");
  EXPECT_EQ(MustRequest(*client, "release_cc g banana").substr(0, 3), "err");
  EXPECT_EQ(MustRequest(*client, "sweep g 0.25 nope").substr(0, 3), "err");
}

// --- HandleRequestLine unit coverage (no socket in the way). ---

TEST(ProtocolTest, BlankAndCommentLinesProduceNoResponse) {
  ReleaseServer server(1);
  EXPECT_TRUE(HandleRequestLine(server, "").response.empty());
  EXPECT_TRUE(HandleRequestLine(server, "   \t  ").response.empty());
  EXPECT_TRUE(HandleRequestLine(server, "# a comment").response.empty());
}

TEST(ProtocolTest, UnknownCommandIsErr) {
  ReleaseServer server(1);
  const ProtocolReply reply = HandleRequestLine(server, "frobnicate g");
  EXPECT_EQ(reply.response, "err unknown command 'frobnicate'");
  EXPECT_FALSE(reply.quit);
}

TEST(ProtocolTest, AddEdgesParsesAppliesAndRefuses) {
  ReleaseServer server(1);
  ASSERT_EQ(HandleRequestLine(server, "gen g gnp 60 1.2 5 10 8")
                .response.substr(0, 2),
            "ok");
  // Usage errors: missing pair, odd operand count, garbage endpoints.
  EXPECT_EQ(HandleRequestLine(server, "add_edges g").response.substr(0, 3),
            "err");
  EXPECT_EQ(HandleRequestLine(server, "add_edges g 1").response.substr(0, 3),
            "err");
  EXPECT_EQ(HandleRequestLine(server, "add_edges g 1 2 3").response
                .substr(0, 3),
            "err");
  EXPECT_EQ(HandleRequestLine(server, "add_edges g one 2").response
                .substr(0, 3),
            "err");
  // A bad batch (self-loop) is refused server-side with nothing applied.
  EXPECT_EQ(HandleRequestLine(server, "add_edges g 4 4").response.substr(0, 3),
            "err");
  // A valid batch applies, reports the delta, and charges no budget.
  const std::string before =
      HandleRequestLine(server, "budget g").response;
  const ProtocolReply applied =
      HandleRequestLine(server, "add_edges g 0 1 0 1 58 59");
  EXPECT_EQ(applied.response.substr(0, 2), "ok");
  EXPECT_NE(applied.response.find("rewarmed=1"), std::string::npos);
  EXPECT_EQ(HandleRequestLine(server, "budget g").response, before);
  // The update is visible to stats and later releases.
  EXPECT_EQ(HandleRequestLine(server, "release_cc g 0.5").response
                .substr(0, 2),
            "ok");
}

TEST(ProtocolTest, QuitSetsTheQuitFlag) {
  ReleaseServer server(1);
  const ProtocolReply reply = HandleRequestLine(server, "quit");
  EXPECT_EQ(reply.response, "ok bye");
  EXPECT_TRUE(reply.quit);
}

TEST(ProtocolTest, CarriageReturnIsTolerated) {
  ReleaseServer server(1);
  const ProtocolReply reply = HandleRequestLine(server, "quit\r");
  EXPECT_EQ(reply.response, "ok bye");
}

// --- Observability: metrics verb, stats summary, counter movement. ---
//
// The metrics registry is process-global, so every assertion on counter
// or histogram movement is delta-based: snapshot, act, snapshot again.
// Absolute values would couple these tests to whatever ran before them
// in this binary.

double CounterValue(const std::string& name,
                    const MetricsRegistry::Labels& labels) {
  return MetricsRegistry::Default().GetCounter(name, labels, "")->Value();
}

long long RequestCount(const char* verb) {
  return MetricsRegistry::Default()
      .GetHistogram("nodedp_request_ns", {{"verb", verb}}, "",
                    MetricsRegistry::LatencyBucketsNs())
      ->TakeSnapshot()
      .count;
}

TEST(ObservabilityTest, MetricsVerbReturnsPrometheusPayload) {
  ReleaseServer server(1);
  ASSERT_EQ(HandleRequestLine(server, "gen g gnp 60 1.5 5 2.0 8")
                .response.substr(0, 2),
            "ok");
  ASSERT_EQ(HandleRequestLine(server, "release_cc g 0.5").response
                .substr(0, 2),
            "ok");
  ASSERT_EQ(HandleRequestLine(server, "release_cc g 0.5 tier=approx")
                .response.substr(0, 2),
            "ok");

  const ProtocolReply reply = HandleRequestLine(server, "metrics");
  long long announced = 0;
  ASSERT_EQ(std::sscanf(reply.response.c_str(), "ok metrics lines=%lld",
                        &announced),
            1);
  ASSERT_FALSE(reply.payload.empty());
  EXPECT_EQ(reply.payload.back(), '\n');
  // The announced line count is the framing contract: clients drain
  // exactly that many payload lines after the response line.
  long long lines = 0;
  for (const char c : reply.payload) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, announced);
  // Payload lines can never be mistaken for response lines.
  std::istringstream body(reply.payload);
  std::string line;
  while (std::getline(body, line)) {
    EXPECT_NE(line.substr(0, 3), "ok ") << line;
    EXPECT_NE(line.substr(0, 4), "err ") << line;
  }
  EXPECT_NE(reply.payload.find("# TYPE nodedp_request_ns histogram"),
            std::string::npos);
  EXPECT_NE(reply.payload.find("# TYPE nodedp_requests_total counter"),
            std::string::npos);
  EXPECT_NE(
      reply.payload.find("nodedp_ledger_admissions_total{tier=\"approx\"}"),
      std::string::npos);
}

TEST(ObservabilityTest, MetricsVerbRejectsOperands) {
  ReleaseServer server(1);
  EXPECT_EQ(HandleRequestLine(server, "metrics verbose").response,
            "err usage: metrics");
}

TEST(ObservabilityTest, ReleaseCcMovesHistogramAndTierCounters) {
  ReleaseServer server(1);
  ASSERT_EQ(HandleRequestLine(server, "gen g gnp 60 1.5 5 4.0 8")
                .response.substr(0, 2),
            "ok");

  const long long requests_before = RequestCount("release_cc");
  const double exact_before =
      CounterValue("nodedp_ledger_admissions_total", {{"tier", "exact"}});
  const double approx_before =
      CounterValue("nodedp_ledger_admissions_total", {{"tier", "approx"}});
  const double epsilon_before =
      CounterValue("nodedp_epsilon_spent_total", {{"tier", "exact"}});

  ASSERT_EQ(HandleRequestLine(server, "release_cc g 0.5").response
                .substr(0, 2),
            "ok");
  ASSERT_EQ(HandleRequestLine(server, "release_cc g 0.25 tier=approx")
                .response.substr(0, 2),
            "ok");

  EXPECT_EQ(RequestCount("release_cc"), requests_before + 2);
  EXPECT_DOUBLE_EQ(
      CounterValue("nodedp_ledger_admissions_total", {{"tier", "exact"}}),
      exact_before + 1.0);
  EXPECT_DOUBLE_EQ(
      CounterValue("nodedp_ledger_admissions_total", {{"tier", "approx"}}),
      approx_before + 1.0);
  EXPECT_DOUBLE_EQ(
      CounterValue("nodedp_epsilon_spent_total", {{"tier", "exact"}}),
      epsilon_before + 0.5);
}

TEST(ObservabilityTest, RefusalMovesTheRefusalCounter) {
  ReleaseServer server(1);
  ASSERT_EQ(HandleRequestLine(server, "gen g gnp 60 1.5 5 1.0 8")
                .response.substr(0, 2),
            "ok");
  const double refusals_before =
      CounterValue("nodedp_ledger_refusals_total", {});
  const double errors_before = CounterValue("nodedp_request_errors_total",
                                            {{"verb", "release_cc"}});
  // Budget is 1.0: the second 0.75 query must be refused.
  ASSERT_EQ(HandleRequestLine(server, "release_cc g 0.75").response
                .substr(0, 2),
            "ok");
  const std::string refused =
      HandleRequestLine(server, "release_cc g 0.75").response;
  ASSERT_EQ(refused.substr(0, 3), "err");
  EXPECT_DOUBLE_EQ(CounterValue("nodedp_ledger_refusals_total", {}),
                   refusals_before + 1.0);
  EXPECT_DOUBLE_EQ(CounterValue("nodedp_request_errors_total",
                                {{"verb", "release_cc"}}),
                   errors_before + 1.0);
}

TEST(ObservabilityTest, BareStatsPrintsRegistrySummary) {
  ReleaseServer server(1);
  ASSERT_EQ(HandleRequestLine(server, "gen a gnp 60 1.5 5 2.0 8")
                .response.substr(0, 2),
            "ok");
  ASSERT_EQ(HandleRequestLine(server, "gen b gnp 40 1.5 6 2.0 8")
                .response.substr(0, 2),
            "ok");
  const std::string summary = HandleRequestLine(server, "stats").response;
  // One stable line: docs/SERVING.md documents this exact shape.
  EXPECT_TRUE(std::regex_match(
      summary,
      std::regex("ok graphs=2 memory_bytes=[0-9]+ mapped_bytes=[0-9]+ "
                 "cache_bytes=[0-9]+ cache_cap=[0-9]+ cache_evictions=[0-9]+ "
                 "refusals=0")))
      << summary;
}

TEST(ObservabilityTest, MetricsPayloadStreamsOverTheSocket) {
  ReleaseServer server(1);
  SocketServer socket_server(&server);
  ASSERT_TRUE(socket_server.Start().ok());
  auto client = SocketClient::Connect("127.0.0.1", socket_server.port(),
                                      kClientTimeoutMs);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  ASSERT_EQ(MustRequest(*client, "gen g gnp 60 1.5 5 2.0 8").substr(0, 2),
            "ok");
  ASSERT_EQ(MustRequest(*client, "release_cc g 0.5").substr(0, 2), "ok");
  const std::string response = MustRequest(*client, "metrics");
  long long announced = 0;
  ASSERT_EQ(
      std::sscanf(response.c_str(), "ok metrics lines=%lld", &announced), 1);
  ASSERT_GT(announced, 0);
  bool saw_request_histogram = false;
  for (long long i = 0; i < announced; ++i) {
    const Result<std::string> line = client->ReadLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    if (line->find("# TYPE nodedp_request_ns histogram") !=
        std::string::npos) {
      saw_request_histogram = true;
    }
  }
  EXPECT_TRUE(saw_request_histogram);
  // The connection is still usable: framing consumed exactly the payload.
  EXPECT_EQ(MustRequest(*client, "budget g").substr(0, 2), "ok");
  socket_server.Stop();
}

// --- Lifecycle. ---

TEST(SocketServerLifecycleTest, StartStopIsCleanAndIdempotent) {
  ReleaseServer server(1);
  SocketServer socket_server(&server);
  ASSERT_TRUE(socket_server.Start().ok());
  EXPECT_GT(socket_server.port(), 0);  // ephemeral port was assigned
  EXPECT_FALSE(socket_server.Start().ok());  // double start refused
  socket_server.Stop();
  socket_server.Stop();  // idempotent
}

TEST(SocketServerLifecycleTest, StopWithLiveClientsDoesNotHang) {
  ReleaseServer server(1);
  SocketServer socket_server(&server);
  ASSERT_TRUE(socket_server.Start().ok());
  auto client = SocketClient::Connect("127.0.0.1", socket_server.port(),
                                      kClientTimeoutMs);
  ASSERT_TRUE(client.ok());
  // The client is idle (its handler blocked in recv); Stop must shut the
  // connection down and join, not wait for the client to speak.
  socket_server.Stop();
  EXPECT_FALSE(client->ReadLine().ok());
}

// --- The serve child re-exec'd by the durability test. ---

int RunServeChild(const char* state_dir, const char* port_file) {
  ReleaseServer server(7);
  const Status durable = server.EnableDurableLedgers(state_dir);
  if (!durable.ok()) {
    std::fprintf(stderr, "serve-child: %s\n", durable.ToString().c_str());
    return 1;
  }
  SocketServer socket_server(&server);
  const Status started = socket_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve-child: %s\n", started.ToString().c_str());
    return 1;
  }
  // Publish the port atomically so the parent never reads a partial write.
  const std::string tmp = std::string(port_file) + ".tmp";
  std::ofstream out(tmp, std::ios::trunc);
  out << socket_server.port() << "\n";
  out.close();
  if (!out.good() || std::rename(tmp.c_str(), port_file) != 0) {
    std::fprintf(stderr, "serve-child: cannot publish port file\n");
    return 1;
  }
  // Serve until killed (the test SIGKILLs us — that is the point).
  for (;;) ::pause();
}

}  // namespace
}  // namespace nodedp

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "--serve-child") == 0) {
    return nodedp::RunServeChild(argv[2], argv[3]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

// LP optimality certificates: for every solved instance, the returned
// primal/dual pair must satisfy primal feasibility, dual feasibility, and
// strong duality. This validates the simplex independently of any
// particular optimum value, across randomized instances (TEST_P seeds).

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "lp/lp_problem.h"
#include "lp/simplex.h"
#include "util/random.h"

namespace nodedp {
namespace {

constexpr double kTol = 1e-6;

struct DenseLp {
  LpProblem problem;
  std::vector<std::vector<double>> rows;  // dense copy
  std::vector<double> rhs;
};

DenseLp RandomFeasibleLp(Rng& rng, int num_vars, int num_rows) {
  DenseLp lp{LpProblem(num_vars), {}, {}};
  for (int j = 0; j < num_vars; ++j) {
    lp.problem.SetObjective(j, rng.NextDouble() * 4.0 - 1.0);
  }
  for (int i = 0; i < num_rows; ++i) {
    std::vector<double> dense(num_vars, 0.0);
    std::vector<std::pair<int, double>> sparse;
    for (int j = 0; j < num_vars; ++j) {
      if (rng.NextBernoulli(0.5)) {
        dense[j] = rng.NextDouble() * 2.0;
        sparse.emplace_back(j, dense[j]);
      }
    }
    // Nonnegative rows with positive rhs keep the origin feasible; adding
    // per-variable bounds below keeps everything bounded.
    const double rhs = 0.5 + 4.0 * rng.NextDouble();
    lp.problem.AddConstraint(std::move(sparse), rhs);
    lp.rows.push_back(std::move(dense));
    lp.rhs.push_back(rhs);
  }
  for (int j = 0; j < num_vars; ++j) {
    std::vector<double> dense(num_vars, 0.0);
    dense[j] = 1.0;
    const double bound = 0.5 + 2.0 * rng.NextDouble();
    lp.problem.AddConstraint({{j, 1.0}}, bound);
    lp.rows.push_back(std::move(dense));
    lp.rhs.push_back(bound);
  }
  return lp;
}

class LpDualityTest : public testing::TestWithParam<uint64_t> {};

TEST_P(LpDualityTest, CertificatesHold) {
  Rng rng(GetParam() * 6151 + 11);
  for (int draw = 0; draw < 4; ++draw) {
    const int num_vars = 2 + static_cast<int>(rng.NextUint64(6));
    const int num_rows = 1 + static_cast<int>(rng.NextUint64(6));
    DenseLp lp = RandomFeasibleLp(rng, num_vars, num_rows);
    const LpSolution solution = SolveLp(lp.problem);
    ASSERT_EQ(solution.status, LpStatus::kOptimal)
        << "seed=" << GetParam() << " draw=" << draw;

    // Primal feasibility.
    for (double xj : solution.x) EXPECT_GE(xj, -kTol);
    for (size_t i = 0; i < lp.rows.size(); ++i) {
      double lhs = 0.0;
      for (int j = 0; j < num_vars; ++j) lhs += lp.rows[i][j] * solution.x[j];
      EXPECT_LE(lhs, lp.rhs[i] + kTol) << "row " << i;
    }
    // Dual feasibility: y >= 0 and A^T y >= c.
    for (double yi : solution.duals) EXPECT_GE(yi, -kTol);
    for (int j = 0; j < num_vars; ++j) {
      double reduced = 0.0;
      for (size_t i = 0; i < lp.rows.size(); ++i) {
        reduced += lp.rows[i][j] * solution.duals[i];
      }
      EXPECT_GE(reduced, lp.problem.objective()[j] - kTol) << "col " << j;
    }
    // Strong duality: y^T b == c^T x == reported objective.
    double dual_objective = 0.0;
    for (size_t i = 0; i < lp.rhs.size(); ++i) {
      dual_objective += solution.duals[i] * lp.rhs[i];
    }
    double primal_objective = 0.0;
    for (int j = 0; j < num_vars; ++j) {
      primal_objective += lp.problem.objective()[j] * solution.x[j];
    }
    EXPECT_NEAR(primal_objective, solution.objective, kTol);
    EXPECT_NEAR(dual_objective, solution.objective, 1e-5);
  }
}

TEST_P(LpDualityTest, ForestPolytopeDualsCertifyUpperBound) {
  // Weak duality applied to the forest-polytope runs: any dual-feasible y
  // gives an upper bound on f_Δ; the simplex duals at optimality must
  // reproduce the optimum. (Exercised through the public extension API via
  // a direct small LP here.)
  Rng rng(GetParam() * 8081 + 5);
  const int num_vars = 3;
  DenseLp lp = RandomFeasibleLp(rng, num_vars, 3);
  const LpSolution solution = SolveLp(lp.problem);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  double dual_objective = 0.0;
  for (size_t i = 0; i < lp.rhs.size(); ++i) {
    dual_objective += solution.duals[i] * lp.rhs[i];
  }
  EXPECT_GE(dual_objective, solution.objective - 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpDualityTest,
                         testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace nodedp

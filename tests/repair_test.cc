// Tests for the Algorithm 3 local-repair construction (Lemma 1.8).

#include "core/repair.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/star.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(RepairTest, PathNeedsDegreeTwo) {
  const Graph g = gen::Path(12);
  const auto forest = RepairSpanningForest(g, 2);
  ASSERT_TRUE(forest.has_value());
  EXPECT_TRUE(forest->IsSpanningForestOf(g));
  EXPECT_LE(forest->MaxDegree(), 2);
}

TEST(RepairTest, StarCannotBeRepairedBelowItsSize) {
  const Graph g = gen::Star(5);
  // s(G) = 5: Δ = 5 works, Δ = 4 must fail (any spanning tree is the star).
  EXPECT_TRUE(RepairSpanningForest(g, 5).has_value());
  EXPECT_FALSE(RepairSpanningForest(g, 4).has_value());
}

TEST(RepairTest, CliqueRepairsToDegreeTwo) {
  // K_n has a Hamiltonian path; s(K_n) = 1 so repair must succeed for
  // Δ >= 2 (Lemma 1.8) — and it cannot succeed at Δ = 1 for n >= 3.
  for (int n : {3, 5, 8}) {
    const Graph g = gen::Complete(n);
    const auto forest = RepairSpanningForest(g, 2);
    ASSERT_TRUE(forest.has_value()) << n;
    EXPECT_TRUE(forest->IsSpanningForestOf(g));
    EXPECT_LE(forest->MaxDegree(), 2);
    EXPECT_FALSE(RepairSpanningForest(g, 1).has_value());
  }
}

TEST(RepairTest, Lemma18GuaranteeOnRandomGraphs) {
  // Whenever Δ > s(G), the repair must succeed and produce a spanning
  // Δ-forest. This is the constructive content of Lemma 1.8.
  Rng rng(5150);
  int nontrivial = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 6 + static_cast<int>(rng.NextUint64(15));
    const double p = 0.1 + 0.1 * static_cast<double>(rng.NextUint64(7));
    const Graph g = gen::ErdosRenyi(n, p, rng);
    const StarNumberResult s = InducedStarNumber(g);
    ASSERT_TRUE(s.exact);
    if (g.NumEdges() == 0) continue;
    const int delta = s.value + 1;
    RepairStats stats;
    const auto forest = RepairSpanningForest(g, delta, &stats);
    ASSERT_TRUE(forest.has_value())
        << "trial=" << trial << " n=" << n << " s=" << s.value;
    EXPECT_TRUE(forest->IsSpanningForestOf(g));
    EXPECT_LE(forest->MaxDegree(), delta);
    if (stats.local_repairs > 0) ++nontrivial;
  }
  // The sweep must actually exercise the repair loop, not just BFS attach.
  EXPECT_GT(nontrivial, 0);
}

TEST(RepairTest, FailureCertifiesLargeInducedStar) {
  // When repair fails at Δ, the graph must contain an induced Δ-star
  // (contrapositive of Lemma 1.8).
  Rng rng(6001);
  int failures = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = gen::ErdosRenyi(12, 0.25, rng);
    for (int delta = 1; delta <= 3; ++delta) {
      if (!RepairSpanningForest(g, delta).has_value()) {
        ++failures;
        const StarNumberResult s = InducedStarNumber(g);
        ASSERT_TRUE(s.exact);
        EXPECT_GE(s.value, delta)
            << "repair failed but no induced " << delta << "-star";
      }
    }
  }
  EXPECT_GT(failures, 0);  // the sweep must exercise the failure path
}

TEST(RepairTest, DisconnectedGraphs) {
  const Graph g = gen::DisjointUnion(
      {gen::Star(3), gen::Path(5), gen::Empty(2), gen::Complete(4)});
  const auto forest = RepairSpanningForest(g, 3);
  ASSERT_TRUE(forest.has_value());
  EXPECT_TRUE(forest->IsSpanningForestOf(g));
  EXPECT_LE(forest->MaxDegree(), 3);
}

TEST(RepairTest, EdgelessGraphSucceedsTrivially) {
  const auto forest = RepairSpanningForest(gen::Empty(4), 1);
  ASSERT_TRUE(forest.has_value());
  EXPECT_EQ(forest->NumEdges(), 0);
}

TEST(RepairTest, GridAtDegreeTwoOrThree) {
  // Grids have spanning trees of max degree 3 (boustrophedon gives 2-3);
  // s(grid) = 4 so Lemma 1.8 only guarantees Δ = 5, but repair often does
  // better. At minimum it must succeed at Δ = 5.
  const Graph g = gen::Grid(5, 6);
  const auto forest = RepairSpanningForest(g, 5);
  ASSERT_TRUE(forest.has_value());
  EXPECT_TRUE(forest->IsSpanningForestOf(g));
}

TEST(RepairTest, GeometricGraphsRepairAtSix) {
  // Section 1.1.4: geometric graphs have no induced 6-star, so Δ = 6 always
  // succeeds.
  Rng rng(424242);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = gen::RandomGeometric(200, 0.12, rng);
    const auto forest = RepairSpanningForest(g, 6);
    ASSERT_TRUE(forest.has_value()) << trial;
    EXPECT_TRUE(forest->IsSpanningForestOf(g));
    EXPECT_LE(forest->MaxDegree(), 6);
  }
}

TEST(RepairDeathTest, DeltaZeroRejected) {
  EXPECT_DEATH(RepairSpanningForest(gen::Path(3), 0), "CHECK failed");
}

}  // namespace
}  // namespace nodedp

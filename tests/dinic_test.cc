// Tests for the Dinic max-flow substrate.

#include "flow/dinic.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "util/random.h"

namespace nodedp {
namespace {

TEST(DinicTest, SingleArc) {
  Dinic dinic(2);
  dinic.AddArc(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(dinic.Solve(0, 1), 3.5);
  EXPECT_TRUE(dinic.OnSourceSide(0));
  EXPECT_FALSE(dinic.OnSourceSide(1));
}

TEST(DinicTest, NoPathMeansZero) {
  Dinic dinic(3);
  dinic.AddArc(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(dinic.Solve(0, 2), 0.0);
  EXPECT_TRUE(dinic.OnSourceSide(1));
  EXPECT_FALSE(dinic.OnSourceSide(2));
}

TEST(DinicTest, SeriesBottleneck) {
  Dinic dinic(3);
  dinic.AddArc(0, 1, 5.0);
  dinic.AddArc(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(dinic.Solve(0, 2), 2.0);
}

TEST(DinicTest, ParallelPathsSum) {
  Dinic dinic(4);
  dinic.AddArc(0, 1, 1.0);
  dinic.AddArc(1, 3, 1.0);
  dinic.AddArc(0, 2, 2.5);
  dinic.AddArc(2, 3, 2.5);
  EXPECT_DOUBLE_EQ(dinic.Solve(0, 3), 3.5);
}

TEST(DinicTest, ClassicTextbookNetwork) {
  // CLRS-style example with a known max flow of 23.
  Dinic dinic(6);
  dinic.AddArc(0, 1, 16);
  dinic.AddArc(0, 2, 13);
  dinic.AddArc(1, 2, 10);
  dinic.AddArc(2, 1, 4);
  dinic.AddArc(1, 3, 12);
  dinic.AddArc(3, 2, 9);
  dinic.AddArc(2, 4, 14);
  dinic.AddArc(4, 3, 7);
  dinic.AddArc(3, 5, 20);
  dinic.AddArc(4, 5, 4);
  EXPECT_DOUBLE_EQ(dinic.Solve(0, 5), 23.0);
}

TEST(DinicTest, InfiniteCapacityArcsNeverCut) {
  // Project selection shape: s->p (profit), p->q (inf), q->t (cost).
  Dinic dinic(4);
  dinic.AddArc(0, 1, 10.0);
  dinic.AddArc(1, 2, Dinic::kInfinity);
  dinic.AddArc(2, 3, 4.0);
  EXPECT_DOUBLE_EQ(dinic.Solve(0, 3), 4.0);
  // Min cut takes the q->t arc; p and q are on the source side.
  EXPECT_TRUE(dinic.OnSourceSide(1));
  EXPECT_TRUE(dinic.OnSourceSide(2));
}

TEST(DinicTest, MinCutSeparatesCorrectly) {
  // Two saturated arcs out of the source: source side is just {s}.
  Dinic dinic(4);
  dinic.AddArc(0, 1, 1.0);
  dinic.AddArc(0, 2, 1.0);
  dinic.AddArc(1, 3, 9.0);
  dinic.AddArc(2, 3, 9.0);
  EXPECT_DOUBLE_EQ(dinic.Solve(0, 3), 2.0);
  EXPECT_FALSE(dinic.OnSourceSide(1));
  EXPECT_FALSE(dinic.OnSourceSide(2));
}

TEST(DinicTest, FractionalCapacities) {
  Dinic dinic(4);
  dinic.AddArc(0, 1, 0.25);
  dinic.AddArc(0, 2, 0.5);
  dinic.AddArc(1, 3, 1.0);
  dinic.AddArc(2, 3, 0.125);
  EXPECT_NEAR(dinic.Solve(0, 3), 0.375, 1e-12);
}

TEST(DinicTest, RandomFlowConservationAndCutDuality) {
  // On random DAG-ish networks, verify max-flow equals the capacity of the
  // extracted cut (strong duality check).
  Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 8;
    std::vector<std::tuple<int, int, double>> arcs;
    Dinic dinic(n);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u == v) continue;
        if (rng.NextBernoulli(0.3)) {
          const double cap = 0.5 + rng.NextDouble() * 4.0;
          dinic.AddArc(u, v, cap);
          arcs.emplace_back(u, v, cap);
        }
      }
    }
    const double flow = dinic.Solve(0, n - 1);
    double cut = 0.0;
    for (const auto& [u, v, cap] : arcs) {
      if (dinic.OnSourceSide(u) && !dinic.OnSourceSide(v)) cut += cap;
    }
    EXPECT_NEAR(flow, cut, 1e-9) << "trial=" << trial;
  }
}

TEST(DinicDeathTest, DoubleSolveRejected) {
  Dinic dinic(2);
  dinic.AddArc(0, 1, 1.0);
  dinic.Solve(0, 1);
  EXPECT_DEATH(dinic.Solve(0, 1), "only once");
}

TEST(DinicDeathTest, NegativeCapacityRejected) {
  Dinic dinic(2);
  EXPECT_DEATH(dinic.AddArc(0, 1, -1.0), "CHECK failed");
}

}  // namespace
}  // namespace nodedp

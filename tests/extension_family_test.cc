// Tests for ExtensionFamily: every amortization must be value-preserving,
// and the caches must actually engage.

#include "core/extension_family.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/lipschitz_extension.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

constexpr double kTol = 1e-6;

TEST(ExtensionFamilyTest, MatchesOneShotEvaluator) {
  Rng rng(1200);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::ErdosRenyi(16, 0.2, rng);
    ExtensionFamily family(g);
    for (double delta : {1.0, 2.0, 3.0, 5.0, 8.0, 16.0}) {
      ASSERT_TRUE(family.Value(delta).ok());
      EXPECT_NEAR(family.Value(delta).value(),
                  LipschitzExtensionValue(g, delta), kTol)
          << "trial=" << trial << " delta=" << delta;
    }
  }
}

TEST(ExtensionFamilyTest, CacheHitsOnRepeatedQueries) {
  const Graph g = gen::Grid(5, 5);
  ExtensionFamily family(g);
  ASSERT_TRUE(family.Value(2.0).ok());
  const auto before = family.stats();
  ASSERT_TRUE(family.Value(2.0).ok());
  const auto after = family.stats();
  EXPECT_EQ(after.lp_evaluations, before.lp_evaluations);
  EXPECT_GT(after.cache_hits + after.watermark_hits,
            before.cache_hits + before.watermark_hits);
}

TEST(ExtensionFamilyTest, WatermarkPropagatesUpward) {
  // Once f_Δ0 = f_sf is certified, larger Δ must not pay for LP or
  // certificates again.
  const Graph g = gen::Path(30);
  ExtensionFamily family(g);
  ASSERT_TRUE(family.Value(2.0).ok());  // certificate at Δ = 2
  const auto before = family.stats();
  ASSERT_TRUE(family.Value(4.0).ok());
  ASSERT_TRUE(family.Value(16.0).ok());
  const auto after = family.stats();
  EXPECT_EQ(after.lp_evaluations, before.lp_evaluations);
  EXPECT_EQ(after.fast_certificates, before.fast_certificates);
  EXPECT_EQ(after.watermark_hits, before.watermark_hits + 2);
}

TEST(ExtensionFamilyTest, DescendingQueriesStillCorrect) {
  // Querying large Δ first then small must give the same answers (the
  // watermark must not contaminate smaller Δ).
  Rng rng(1201);
  const Graph g = gen::ErdosRenyi(14, 0.3, rng);
  ExtensionFamily descending(g);
  ExtensionFamily ascending(g);
  const std::vector<double> deltas = {1.0, 2.0, 4.0, 8.0};
  std::vector<double> down;
  for (auto it = deltas.rbegin(); it != deltas.rend(); ++it) {
    down.push_back(descending.Value(*it).value());
  }
  for (size_t i = 0; i < deltas.size(); ++i) {
    EXPECT_NEAR(ascending.Value(deltas[i]).value(),
                down[deltas.size() - 1 - i], kTol);
  }
}

TEST(ExtensionFamilyTest, CutPoolSharedAcrossDeltas) {
  // Pooled subtour cuts from one Δ pre-tighten the LP at the next Δ:
  // evaluating Δ = 6 after Δ = 8 must take no more cutting-plane rounds
  // than evaluating Δ = 6 from scratch — and the values must agree.
  ExtensionOptions no_fast;
  no_fast.use_repair_fast_path = false;
  no_fast.polytope.use_support_heuristic = false;
  no_fast.polytope.seed_structural_cuts = false;
  const Graph g = gen::Complete(9);

  ExtensionFamily warm(g, no_fast);
  ASSERT_TRUE(warm.Value(8.0).ok());
  const int rounds_before = warm.stats().cut_rounds;
  const double warm_value = warm.Value(6.0).value();
  const int rounds_warm = warm.stats().cut_rounds - rounds_before;

  ExtensionFamily cold(g, no_fast);
  const double cold_value = cold.Value(6.0).value();
  const int rounds_cold = cold.stats().cut_rounds;

  EXPECT_NEAR(warm_value, cold_value, kTol);
  EXPECT_LE(rounds_warm, rounds_cold);
  EXPECT_GT(warm.stats().cuts_added, 0);  // the pool is actually exercised
}

TEST(ExtensionFamilyTest, SpanningForestSizeValue) {
  const Graph g = gen::DisjointUnion({gen::Path(5), gen::Empty(3)});
  ExtensionFamily family(g);
  EXPECT_EQ(family.SpanningForestSizeValue(), SpanningForestSize(g));
  EXPECT_EQ(family.num_vertices(), 8);
}

TEST(ExtensionFamilyTest, InvalidDeltaRejected) {
  ExtensionFamily family(gen::Path(4));
  EXPECT_FALSE(family.Value(0.5).ok());
}

TEST(ExtensionFamilyTest, ConcurrentValuesCallsAgreeWithSequential) {
  // Hammer one shared family with concurrent Values()/Value() callers —
  // cold, so cells are actually evaluated and merged under contention —
  // and require every result to equal an independent sequential family's.
  // Run under TSan in CI, this is the proof of the documented thread
  // safety contract.
  Rng rng(555);
  const Graph g = gen::DisjointUnion(
      {gen::ErdosRenyi(24, 0.15, rng), gen::Caterpillar(8, 2),
       gen::Complete(6)});
  const std::vector<double> grid = {1.0, 2.0, 4.0, 8.0};

  ExtensionFamily sequential(g);
  const std::vector<double> expected = sequential.Values(grid).value();

  ExtensionFamily shared(g);
  constexpr int kCallers = 8;
  std::vector<std::vector<double>> got(kCallers);
  std::vector<std::thread> threads;
  threads.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    threads.emplace_back([&shared, &got, &grid, i] {
      if (i % 2 == 0) {
        got[i] = shared.Values(grid).value();
      } else {
        got[i].reserve(grid.size());
        for (double delta : grid) {
          got[i].push_back(shared.Value(delta).value());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kCallers; ++i) {
    ASSERT_EQ(got[i].size(), expected.size()) << "caller " << i;
    for (std::size_t d = 0; d < expected.size(); ++d) {
      EXPECT_NEAR(got[i][d], expected[d], kTol)
          << "caller " << i << " delta " << grid[d];
    }
  }
}

TEST(ExtensionFamilyTest, NoDecompositionOptionStillCorrect) {
  Rng rng(1202);
  const Graph g = gen::DisjointUnion(
      {gen::ErdosRenyi(8, 0.4, rng), gen::Complete(5)});
  ExtensionOptions whole;
  whole.decompose_components = false;
  ExtensionFamily one_piece(g, whole);
  ExtensionFamily decomposed(g);
  for (double delta : {1.0, 2.0, 4.0}) {
    EXPECT_NEAR(one_piece.Value(delta).value(),
                decomposed.Value(delta).value(), kTol);
  }
}

}  // namespace
}  // namespace nodedp

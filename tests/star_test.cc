// Tests for the induced star number s(G) (graph/star.h).

#include "graph/star.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/random.h"

namespace nodedp {
namespace {

// Exhaustive s(G) for tiny graphs: try every center and every subset of its
// neighborhood.
int StarNumberExhaustive(const Graph& g) {
  int best = 0;
  for (int center = 0; center < g.NumVertices(); ++center) {
    const auto& nbrs = g.Neighbors(center);
    const int k = static_cast<int>(nbrs.size());
    for (uint64_t mask = 1; mask < (1ULL << k); ++mask) {
      bool independent = true;
      for (int i = 0; i < k && independent; ++i) {
        if (!((mask >> i) & 1ULL)) continue;
        for (int j = i + 1; j < k && independent; ++j) {
          if (!((mask >> j) & 1ULL)) continue;
          if (g.HasEdge(nbrs[i], nbrs[j])) independent = false;
        }
      }
      if (independent) {
        best = std::max(best, __builtin_popcountll(mask));
      }
    }
  }
  return best;
}

TEST(StarTest, EdgelessGraphHasStarNumberZero) {
  const StarNumberResult result = InducedStarNumber(gen::Empty(5));
  EXPECT_EQ(result.value, 0);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.center, -1);
}

TEST(StarTest, SingleEdge) {
  const Graph g(2, {{0, 1}});
  EXPECT_EQ(InducedStarNumber(g).value, 1);
}

TEST(StarTest, StarGraphValue) {
  for (int leaves : {1, 3, 7}) {
    const Graph g = gen::Star(leaves);
    const StarNumberResult result = InducedStarNumber(g);
    EXPECT_EQ(result.value, leaves);
    EXPECT_EQ(result.center, 0);
    EXPECT_TRUE(result.exact);
  }
}

TEST(StarTest, CliqueHasNoInducedTwoStar) {
  // In K_n every two neighbors are adjacent: s = 1.
  for (int n : {2, 4, 6}) {
    EXPECT_EQ(InducedStarNumber(gen::Complete(n)).value, 1) << n;
  }
}

TEST(StarTest, PathAndCycle) {
  // Interior path vertices have two non-adjacent neighbors: s = 2.
  EXPECT_EQ(InducedStarNumber(gen::Path(5)).value, 2);
  EXPECT_EQ(InducedStarNumber(gen::Cycle(6)).value, 2);
  // Triangle = K3: s = 1.
  EXPECT_EQ(InducedStarNumber(gen::Cycle(3)).value, 1);
}

TEST(StarTest, GridHasStarNumberFour) {
  // Interior grid vertices have 4 pairwise non-adjacent neighbors.
  EXPECT_EQ(InducedStarNumber(gen::Grid(4, 4)).value, 4);
}

TEST(StarTest, CaterpillarStarNumber) {
  // Spine vertex: legs + up to 2 spine neighbors, all pairwise non-adjacent.
  EXPECT_EQ(InducedStarNumber(gen::Caterpillar(5, 3)).value, 5);
}

TEST(StarTest, MatchesExhaustiveOnRandomGraphs) {
  Rng rng(314);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextUint64(5));
    const double p = 0.1 + 0.15 * static_cast<double>(rng.NextUint64(5));
    const Graph g = gen::ErdosRenyi(n, p, rng);
    const StarNumberResult result = InducedStarNumber(g);
    ASSERT_TRUE(result.exact);
    EXPECT_EQ(result.value, StarNumberExhaustive(g))
        << "trial=" << trial << " n=" << n << " p=" << p;
  }
}

TEST(StarTest, PerCenterValue) {
  const Graph g = gen::Star(4);
  EXPECT_EQ(InducedStarNumberAt(g, 0).value, 4);
  EXPECT_EQ(InducedStarNumberAt(g, 1).value, 1);
}

TEST(StarTest, GreedyIsValidLowerBound) {
  Rng rng(1717);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = gen::ErdosRenyi(12, 0.3, rng);
    for (int v = 0; v < g.NumVertices(); ++v) {
      EXPECT_LE(GreedyInducedStarAt(g, v), InducedStarNumberAt(g, v).value);
    }
  }
}

TEST(StarTest, WorkLimitYieldsLowerBound) {
  // With an absurdly small budget the result must be marked inexact but
  // still be a valid lower bound.
  Rng rng(99);
  const Graph g = gen::ErdosRenyi(20, 0.4, rng);
  StarNumberOptions tiny;
  tiny.work_limit = 1;
  const StarNumberResult limited = InducedStarNumber(g, tiny);
  const StarNumberResult full = InducedStarNumber(g);
  ASSERT_TRUE(full.exact);
  EXPECT_FALSE(limited.exact);
  EXPECT_LE(limited.value, full.value);
}

TEST(StarTest, GeometricGraphsHaveNoSixStars) {
  // Section 1.1.4: six points in the unit disk cannot be pairwise more than
  // the radius apart, so random geometric graphs have s(G) <= 5.
  Rng rng(2023);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::RandomGeometric(150, 0.15, rng);
    const StarNumberResult result = InducedStarNumber(g);
    ASSERT_TRUE(result.exact);
    EXPECT_LE(result.value, 5) << "trial=" << trial;
  }
}

}  // namespace
}  // namespace nodedp

// Statistical tests (fixed seeds) for the Laplace mechanism.

#include "dp/laplace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"

namespace nodedp {
namespace {

TEST(LaplaceTest, ZeroSensitivityIsNoiseless) {
  Rng rng(1);
  EXPECT_EQ(LaplaceMechanism(42.0, 0.0, 1.0, rng), 42.0);
}

TEST(LaplaceTest, EmpiricalMeanAndScale) {
  Rng rng(777);
  const double sensitivity = 2.0;
  const double epsilon = 0.5;
  const double b = sensitivity / epsilon;  // 4
  const int trials = 200000;
  double sum = 0.0;
  double sum_abs = 0.0;
  for (int t = 0; t < trials; ++t) {
    const double noise = LaplaceMechanism(0.0, sensitivity, epsilon, rng);
    sum += noise;
    sum_abs += std::fabs(noise);
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.1);          // mean 0
  EXPECT_NEAR(sum_abs / trials, b, b * 0.02);   // E|Lap(b)| = b
}

TEST(LaplaceTest, TailMatchesLemma23) {
  // Pr[|X| >= t*b] = e^{-t} (Lemma 2.3); check t = 1, 2 empirically.
  Rng rng(888);
  const double b = 3.0;
  const int trials = 200000;
  int beyond_1 = 0;
  int beyond_2 = 0;
  for (int t = 0; t < trials; ++t) {
    const double x = rng.NextLaplace(b);
    if (std::fabs(x) >= b) ++beyond_1;
    if (std::fabs(x) >= 2 * b) ++beyond_2;
  }
  EXPECT_NEAR(static_cast<double>(beyond_1) / trials, std::exp(-1.0), 0.01);
  EXPECT_NEAR(static_cast<double>(beyond_2) / trials, std::exp(-2.0), 0.01);
}

TEST(LaplaceTest, TailBoundFormulas) {
  EXPECT_NEAR(LaplaceTailProbability(2.0, 4.0), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(LaplaceTailBound(2.0, std::exp(-2.0)), 4.0, 1e-9);
  // Round trip: P[|X| >= TailBound(b, beta)] == beta.
  const double b = 5.0;
  const double beta = 0.03;
  EXPECT_NEAR(LaplaceTailProbability(b, LaplaceTailBound(b, beta)), beta,
              1e-12);
}

TEST(LaplaceTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(LaplaceMechanism(1.0, 2.0, 1.0, a),
              LaplaceMechanism(1.0, 2.0, 1.0, b));
  }
}

TEST(LaplaceTest, LikelihoodRatioBoundedByEpsilon) {
  // Core DP property of the density: for outputs z and neighboring values
  // differing by the sensitivity, the density ratio is <= e^eps. Verified
  // via histogram on a coarse grid.
  Rng rng(999);
  const double eps = 1.0;
  const double sensitivity = 1.0;
  const int trials = 400000;
  const double lo = -6.0;
  const double hi = 6.0;
  const int bins = 24;
  std::vector<double> h0(bins, 0.0);
  std::vector<double> h1(bins, 0.0);
  for (int t = 0; t < trials; ++t) {
    const double z0 = LaplaceMechanism(0.0, sensitivity, eps, rng);
    const double z1 = LaplaceMechanism(1.0, sensitivity, eps, rng);
    const int b0 = static_cast<int>((z0 - lo) / (hi - lo) * bins);
    const int b1 = static_cast<int>((z1 - lo) / (hi - lo) * bins);
    if (b0 >= 0 && b0 < bins) h0[b0] += 1;
    if (b1 >= 0 && b1 < bins) h1[b1] += 1;
  }
  for (int b = 0; b < bins; ++b) {
    if (h0[b] < 500 || h1[b] < 500) continue;  // skip noisy tails
    const double ratio = h0[b] / h1[b];
    EXPECT_LE(ratio, std::exp(eps) * 1.15) << "bin " << b;
    EXPECT_GE(ratio, std::exp(-eps) / 1.15) << "bin " << b;
  }
}

TEST(LaplaceDeathTest, InvalidParameters) {
  Rng rng(1);
  EXPECT_DEATH(LaplaceMechanism(0.0, 1.0, 0.0, rng), "CHECK failed");
  EXPECT_DEATH(LaplaceMechanism(0.0, -1.0, 1.0, rng), "CHECK failed");
}

}  // namespace
}  // namespace nodedp

// Tests for the workload generators.

#include "graph/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(GeneratorsTest, StructuredFamilies) {
  EXPECT_EQ(gen::Empty(6).NumEdges(), 0);
  EXPECT_EQ(gen::Complete(6).NumEdges(), 15);
  EXPECT_EQ(gen::Path(6).NumEdges(), 5);
  EXPECT_EQ(gen::Cycle(6).NumEdges(), 6);
  EXPECT_EQ(gen::Star(6).NumEdges(), 6);
  EXPECT_EQ(gen::Star(6).Degree(0), 6);
  EXPECT_EQ(gen::Grid(3, 4).NumVertices(), 12);
  EXPECT_EQ(gen::Grid(3, 4).NumEdges(), 3 * 3 + 2 * 4);
  EXPECT_EQ(gen::Caterpillar(4, 2).NumVertices(), 4 + 8);
  EXPECT_EQ(gen::Caterpillar(4, 2).NumEdges(), 3 + 8);
}

TEST(GeneratorsTest, PathAndGridAreConnected) {
  EXPECT_EQ(CountConnectedComponents(gen::Path(17)), 1);
  EXPECT_EQ(CountConnectedComponents(gen::Grid(5, 7)), 1);
  EXPECT_EQ(CountConnectedComponents(gen::Caterpillar(5, 3)), 1);
}

TEST(GeneratorsTest, ErdosRenyiExtremes) {
  Rng rng(1);
  EXPECT_EQ(gen::ErdosRenyi(10, 0.0, rng).NumEdges(), 0);
  EXPECT_EQ(gen::ErdosRenyi(10, 1.0, rng).NumEdges(), 45);
}

TEST(GeneratorsTest, ErdosRenyiEdgeCountConcentrates) {
  // Mean edge count over trials should be close to p * C(n,2).
  Rng rng(1234);
  const int n = 60;
  const double p = 0.1;
  double total = 0.0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    total += gen::ErdosRenyi(n, p, rng).NumEdges();
  }
  const double expected = p * n * (n - 1) / 2.0;  // 177
  EXPECT_NEAR(total / trials, expected, expected * 0.15);
}

TEST(GeneratorsTest, ErdosRenyiDeterministicGivenSeed) {
  Rng rng_a(777);
  Rng rng_b(777);
  const Graph a = gen::ErdosRenyi(40, 0.1, rng_a);
  const Graph b = gen::ErdosRenyi(40, 0.1, rng_b);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(GeneratorsTest, RandomGeometricMatchesBruteForce) {
  Rng rng(55);
  std::vector<std::pair<double, double>> points;
  const Graph g = gen::RandomGeometricWithPositions(80, 0.2, rng, &points);
  ASSERT_EQ(points.size(), 80u);
  int expected_edges = 0;
  for (int i = 0; i < 80; ++i) {
    for (int j = i + 1; j < 80; ++j) {
      const double dx = points[i].first - points[j].first;
      const double dy = points[i].second - points[j].second;
      if (std::sqrt(dx * dx + dy * dy) <= 0.2) {
        ++expected_edges;
        EXPECT_TRUE(g.HasEdge(i, j)) << i << "," << j;
      }
    }
  }
  EXPECT_EQ(g.NumEdges(), expected_edges);
}

TEST(GeneratorsTest, BarabasiAlbertShape) {
  Rng rng(9);
  const Graph g = gen::BarabasiAlbert(100, 2, rng);
  EXPECT_EQ(g.NumVertices(), 100);
  // Each of the 98 later vertices adds (up to) 2 edges on top of the seed.
  EXPECT_GE(g.NumEdges(), 150);
  EXPECT_LE(g.NumEdges(), 1 + 2 * 98);
  EXPECT_EQ(CountConnectedComponents(g), 1);
}

TEST(GeneratorsTest, CliqueUnionAndEntityGraph) {
  const Graph g = gen::CliqueUnion({2, 3, 1});
  EXPECT_EQ(g.NumVertices(), 6);
  EXPECT_EQ(g.NumEdges(), 1 + 3 + 0);
  EXPECT_EQ(CountConnectedComponents(g), 3);

  Rng rng(31);
  const Graph entities = gen::RandomEntityGraph(50, 4, rng);
  EXPECT_EQ(CountConnectedComponents(entities), 50);
  EXPECT_LE(entities.NumVertices(), 200);
  EXPECT_GE(entities.NumVertices(), 50);
}

TEST(GeneratorsTest, RandomTreeLikeRespectsDegreeInTree) {
  Rng rng(66);
  for (int max_degree : {2, 3, 5}) {
    const Graph g = gen::RandomTreeLike(60, max_degree, 0.0, rng);
    EXPECT_EQ(CountConnectedComponents(g), 1);
    EXPECT_EQ(g.NumEdges(), 59);  // a tree
    EXPECT_LE(g.MaxDegree(), max_degree);
  }
}

TEST(GeneratorsTest, RandomTreeLikeExtraEdges) {
  Rng rng(67);
  const Graph g = gen::RandomTreeLike(80, 3, 0.5, rng);
  EXPECT_EQ(CountConnectedComponents(g), 1);
  EXPECT_GE(g.NumEdges(), 79);
}

TEST(GeneratorsTest, DisjointUnionOffsets) {
  const Graph g = gen::DisjointUnion({gen::Path(3), gen::Cycle(3)});
  EXPECT_EQ(g.NumVertices(), 6);
  EXPECT_EQ(g.NumEdges(), 2 + 3);
  EXPECT_TRUE(g.HasEdge(3, 4));
  EXPECT_FALSE(g.HasEdge(2, 3));
}

}  // namespace
}  // namespace nodedp

// NDPG v2 format tests: writer/reader round trips, the any-file dispatcher
// and converter, and — the bulk of this file — the fail-closed error
// paths: truncation at every level, bad magic, version confusion in both
// directions, payload corruption against the section checksums, and
// header tampering against the layout validation and header checksum.

#include "graph/ndpg_v2.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "util/random.h"

namespace nodedp {
namespace {

std::string TestPath(const std::string& leaf) {
  return testing::TempDir() + "/" + leaf;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Re-stamps the header checksum (bytes 120..127) after a deliberate header
// edit, so tests can distinguish "layout validation rejected the tampered
// header" from "the checksum caught the edit".
void RestampHeaderChecksum(std::string& bytes) {
  ASSERT_GE(bytes.size(), ndpgv2::kHeaderBytes);
  unsigned char* data = reinterpret_cast<unsigned char*>(&bytes[0]);
  ndpgv2::PutU64(data + 120, ndpgv2::HashBytes(data, 120));
}

Graph TestGraph() {
  Rng rng(4202);
  return gen::ErdosRenyi(60, 0.08, rng);
}

void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (int e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.EdgeAt(e), b.EdgeAt(e)) << "edge " << e;
  }
}

TEST(StreamingHashTest, ChunkingIndependent) {
  const std::string payload =
      "a moderately sized payload, long enough to cross word boundaries";
  const auto* data = reinterpret_cast<const unsigned char*>(payload.data());
  const std::uint64_t whole = ndpgv2::HashBytes(data, payload.size());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, std::size_t{8},
                                  std::size_t{13}}) {
    ndpgv2::StreamingHash hash;
    for (std::size_t i = 0; i < payload.size(); i += chunk) {
      hash.Update(data + i, std::min(chunk, payload.size() - i));
    }
    EXPECT_EQ(hash.Finish(), whole) << "chunk " << chunk;
  }
}

TEST(StreamingHashTest, LengthAndContentSensitive) {
  const unsigned char a[4] = {1, 2, 3, 4};
  const unsigned char b[4] = {1, 2, 3, 5};
  EXPECT_NE(ndpgv2::HashBytes(a, 4), ndpgv2::HashBytes(b, 4));
  EXPECT_NE(ndpgv2::HashBytes(a, 3), ndpgv2::HashBytes(a, 4));
  EXPECT_NE(ndpgv2::HashBytes(a, 0), ndpgv2::HashBytes(b, 1));
}

TEST(NdpgV2Test, RoundTripStream) {
  const Graph g = TestGraph();
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphV2(g, stream).ok());
  const Result<Graph> back = ReadGraphV2(stream);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameGraph(g, *back);
}

TEST(NdpgV2Test, RoundTripFile) {
  const Graph g = TestGraph();
  const std::string path = TestPath("ndpg_v2_roundtrip.ndpg2");
  ASSERT_TRUE(WriteGraphV2File(g, path).ok());
  const Result<Graph> back = ReadGraphV2File(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameGraph(g, *back);
  std::remove(path.c_str());
}

TEST(NdpgV2Test, RoundTripEdgeless) {
  const Graph g(5, {});
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphV2(g, stream).ok());
  const Result<Graph> back = ReadGraphV2(stream);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumVertices(), 5);
  EXPECT_EQ(back->NumEdges(), 0);
}

TEST(NdpgV2Test, FileSizeMatchesHeaderArithmetic) {
  const Graph g = TestGraph();
  const std::string path = TestPath("ndpg_v2_size.ndpg2");
  ASSERT_TRUE(WriteGraphV2File(g, path).ok());
  const std::string bytes = ReadFileBytes(path);
  const ndpgv2::Header header =
      ndpgv2::CanonicalHeader(g.NumVertices(), g.NumEdges());
  EXPECT_EQ(bytes.size(), ndpgv2::FileSizeBytes(header));
  // Every section starts 64-byte aligned.
  const Result<ndpgv2::Header> parsed = ndpgv2::ParseHeader(
      reinterpret_cast<const unsigned char*>(bytes.data()),
      bytes.size(), bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (int s = 0; s < ndpgv2::kNumSections; ++s) {
    EXPECT_EQ(parsed->sections[s].offset % ndpgv2::kSectionAlign, 0u);
    EXPECT_EQ(parsed->sections[s].length,
              ndpgv2::ExpectedSectionLength(g.NumVertices(), g.NumEdges(), s));
  }
  std::remove(path.c_str());
}

TEST(NdpgV2Test, ConvertFromV1AndText) {
  const Graph g = TestGraph();
  const std::string v1_path = TestPath("ndpg_v2_convert_in.ndpg");
  const std::string text_path = TestPath("ndpg_v2_convert_in.txt");
  const std::string out_path = TestPath("ndpg_v2_convert_out.ndpg2");
  ASSERT_TRUE(WriteGraphBinaryFile(g, v1_path).ok());
  ASSERT_TRUE(WriteEdgeListFile(g, text_path).ok());
  for (const std::string& in_path : {v1_path, text_path}) {
    ASSERT_TRUE(ConvertGraphFileToV2(in_path, out_path).ok()) << in_path;
    const Result<Graph> back = ReadGraphV2File(out_path);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ExpectSameGraph(g, *back);
  }
  std::remove(v1_path.c_str());
  std::remove(text_path.c_str());
  std::remove(out_path.c_str());
}

TEST(NdpgV2Test, AnyFileDispatchesAllThreeFormats) {
  const Graph g = TestGraph();
  const std::string text_path = TestPath("ndpg_v2_any.txt");
  const std::string v1_path = TestPath("ndpg_v2_any.ndpg");
  const std::string v2_path = TestPath("ndpg_v2_any.ndpg2");
  ASSERT_TRUE(WriteEdgeListFile(g, text_path).ok());
  ASSERT_TRUE(WriteGraphBinaryFile(g, v1_path).ok());
  ASSERT_TRUE(WriteGraphV2File(g, v2_path).ok());
  for (const std::string& path : {text_path, v1_path, v2_path}) {
    const Result<Graph> back = ReadGraphAnyFile(path);
    ASSERT_TRUE(back.ok()) << path << ": " << back.status().ToString();
    ExpectSameGraph(g, *back);
    std::remove(path.c_str());
  }
}

// --- error paths -----------------------------------------------------------

class NdpgV2ErrorTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("ndpg_v2_error.ndpg2");
    graph_ = TestGraph();
    ASSERT_TRUE(WriteGraphV2File(graph_, path_).ok());
    bytes_ = ReadFileBytes(path_);
    const Result<ndpgv2::Header> header = ndpgv2::ParseHeader(
        reinterpret_cast<const unsigned char*>(bytes_.data()),
        bytes_.size(), bytes_.size());
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    header_ = *header;
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Overwrites the file with `bytes` and expects the heap reader to reject
  // it with `expect_substring` somewhere in the error message.
  void ExpectReadFails(const std::string& bytes,
                       const std::string& expect_substring) {
    WriteFileBytes(path_, bytes);
    const Result<Graph> read = ReadGraphV2File(path_);
    ASSERT_FALSE(read.ok()) << "expected failure: " << expect_substring;
    EXPECT_NE(read.status().message().find(expect_substring),
              std::string::npos)
        << "wanted \"" << expect_substring << "\" in \""
        << read.status().message() << "\"";
    // FromMmap with full verification must reject the same file — the
    // zero-copy path may not be more permissive than the heap reader.
    EXPECT_FALSE(Graph::FromMmap(path_, /*verify_checksums=*/true).ok());
  }

  std::string path_;
  Graph graph_;
  std::string bytes_;
  ndpgv2::Header header_;
};

TEST_F(NdpgV2ErrorTest, TruncatedHeader) {
  ExpectReadFails(bytes_.substr(0, 64), "truncated");
}

TEST_F(NdpgV2ErrorTest, TruncatedSection) {
  // Cut mid-way through the last section (incident edge ids). With a
  // seekable file the O(1) bounds check reports the overrun up front; a
  // non-seekable stream discovers it as a short section read. Both are
  // fail-closed.
  const std::size_t cut =
      static_cast<std::size_t>(header_.sections[ndpgv2::kIncident].offset) +
      static_cast<std::size_t>(
          header_.sections[ndpgv2::kIncident].length / 2);
  ExpectReadFails(bytes_.substr(0, cut), "overruns the file");

  std::stringstream stream(bytes_.substr(0, cut),
                           std::ios::in | std::ios::out | std::ios::binary);
  const Result<Graph> read = ReadGraphV2(stream);
  ASSERT_FALSE(read.ok());
}

TEST_F(NdpgV2ErrorTest, BadMagic) {
  std::string bad = bytes_;
  bad[0] = 'X';
  ExpectReadFails(bad, "magic");
}

TEST_F(NdpgV2ErrorTest, V1FileRejectedByV2Reader) {
  ASSERT_TRUE(WriteGraphBinaryFile(graph_, path_).ok());
  const Result<Graph> read = ReadGraphV2File(path_);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("version"), std::string::npos)
      << read.status().message();
}

TEST_F(NdpgV2ErrorTest, V2FileRejectedByV1Reader) {
  const Result<Graph> read = ReadGraphBinaryFile(path_);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("version"), std::string::npos)
      << read.status().message();
}

TEST_F(NdpgV2ErrorTest, HeaderChecksumCatchesCountTampering) {
  // Bump num_edges without restamping: the header checksum must catch it
  // before the counts are interpreted at all.
  std::string bad = bytes_;
  unsigned char* data = reinterpret_cast<unsigned char*>(&bad[0]);
  ndpgv2::PutU64(data + 16,
                 static_cast<std::uint64_t>(header_.num_edges + 1));
  ExpectReadFails(bad, "checksum");
}

TEST_F(NdpgV2ErrorTest, EdgesPayloadCorruptionCaughtByChecksum) {
  // Flip one byte inside the edges payload. The reader hashes the section
  // before decoding it, so this deterministically reports a checksum
  // mismatch rather than whatever the decoded garbage would trip over.
  std::string bad = bytes_;
  const std::size_t target =
      static_cast<std::size_t>(header_.sections[ndpgv2::kEdges].offset) + 2;
  bad[target] = static_cast<char>(bad[target] ^ 0x40);
  ExpectReadFails(bad, "checksum mismatch");
}

TEST_F(NdpgV2ErrorTest, CsrPayloadCorruptionFailsClosed) {
  // Corrupt a neighbors entry: the stored CSR no longer matches the CSR
  // rebuilt from the edge list (and its checksum no longer matches either
  // — whichever fires first, the file must be rejected).
  std::string bad = bytes_;
  const std::size_t target = static_cast<std::size_t>(
      header_.sections[ndpgv2::kNeighbors].offset);
  bad[target] = static_cast<char>(bad[target] ^ 0x01);
  WriteFileBytes(path_, bad);
  EXPECT_FALSE(ReadGraphV2File(path_).ok());
  EXPECT_FALSE(Graph::FromMmap(path_, /*verify_checksums=*/true).ok());
}

TEST_F(NdpgV2ErrorTest, MisalignedSectionOffsetRejected) {
  // Shift the neighbors section descriptor off 64-byte alignment and
  // restamp the header checksum — layout validation itself must refuse.
  std::string bad = bytes_;
  unsigned char* data = reinterpret_cast<unsigned char*>(&bad[0]);
  const std::size_t desc = 24 + 24 * static_cast<std::size_t>(
                                         ndpgv2::kNeighbors);
  ndpgv2::PutU64(data + desc,
                 header_.sections[ndpgv2::kNeighbors].offset + 4);
  RestampHeaderChecksum(bad);
  ExpectReadFails(bad, "aligned");
}

TEST_F(NdpgV2ErrorTest, NonCanonicalSectionOrderRejected) {
  // Swap the offsets of two section descriptors (both stay aligned) and
  // restamp: the canonical-layout check must refuse.
  std::string bad = bytes_;
  unsigned char* data = reinterpret_cast<unsigned char*>(&bad[0]);
  const std::size_t desc_a = 24 + 24 * static_cast<std::size_t>(
                                          ndpgv2::kOffsets);
  const std::size_t desc_b = 24 + 24 * static_cast<std::size_t>(
                                          ndpgv2::kNeighbors);
  ndpgv2::PutU64(data + desc_a,
                 header_.sections[ndpgv2::kNeighbors].offset);
  ndpgv2::PutU64(data + desc_b,
                 header_.sections[ndpgv2::kOffsets].offset);
  RestampHeaderChecksum(bad);
  WriteFileBytes(path_, bad);
  EXPECT_FALSE(ReadGraphV2File(path_).ok());
  EXPECT_FALSE(Graph::FromMmap(path_).ok());
}

TEST_F(NdpgV2ErrorTest, SectionOverrunningFileRejected) {
  // Inflate the incident section length past end-of-file and restamp.
  std::string bad = bytes_;
  unsigned char* data = reinterpret_cast<unsigned char*>(&bad[0]);
  const std::size_t desc = 24 + 24 * static_cast<std::size_t>(
                                         ndpgv2::kIncident);
  ndpgv2::PutU64(data + desc + 8,
                 header_.sections[ndpgv2::kIncident].length + 4096);
  RestampHeaderChecksum(bad);
  WriteFileBytes(path_, bad);
  // The length is also non-canonical for the counts, so the heap reader
  // and the O(1) mmap validation both refuse.
  EXPECT_FALSE(ReadGraphV2File(path_).ok());
  EXPECT_FALSE(Graph::FromMmap(path_).ok());
}

TEST_F(NdpgV2ErrorTest, MmapMissingFileFails) {
  EXPECT_FALSE(Graph::FromMmap(TestPath("ndpg_v2_does_not_exist")).ok());
}

}  // namespace
}  // namespace nodedp

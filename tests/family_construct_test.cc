// Tests for the sharded / pipelined ExtensionFamily construction path:
// the one-pass partition must reproduce the old sequential
// decompose-induce-measure loop exactly, the deferred (lazy-induction)
// constructor plus Warm must be indistinguishable from the eager
// constructor plus Values, and an async warm must serve concurrent
// queries safely (this file runs under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/extension_family.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/parallel.h"
#include "util/random.h"

namespace nodedp {
namespace {

constexpr double kTol = 1e-6;

// A varied multi-component graph: G(n, p) blocks, cliques, paths, and
// isolated vertices, sized for Debug-friendly LP work.
Graph RandomMultiComponentGraph(Rng& rng) {
  std::vector<Graph> parts;
  const int num_parts = 1 + static_cast<int>(rng.NextUint64(4));
  for (int p = 0; p < num_parts; ++p) {
    switch (rng.NextUint64(4)) {
      case 0:
        parts.push_back(gen::ErdosRenyi(
            2 + static_cast<int>(rng.NextUint64(14)), 0.25, rng));
        break;
      case 1:
        parts.push_back(
            gen::Complete(2 + static_cast<int>(rng.NextUint64(5))));
        break;
      case 2:
        parts.push_back(gen::Path(1 + static_cast<int>(rng.NextUint64(10))));
        break;
      default:
        parts.push_back(gen::Empty(1 + static_cast<int>(rng.NextUint64(4))));
        break;
    }
  }
  return gen::DisjointUnion(parts);
}

TEST(FamilyConstructTest, ShardedConstructionMatchesSequentialOn200Graphs) {
  // The sharded constructor (parallel per-component induction, f_sf from
  // the |C| - 1 invariant) against a width-1 pool — i.e. the sequential
  // construction schedule — and against the pre-shard recipe
  // (ComponentVertexSets + Induce + SpanningForestSize) recomputed here.
  // Components, f_sf, and the Values() tables must be identical.
  Rng rng(4100);
  const std::vector<double> grid = {1.0, 2.0, 4.0, 8.0};
  ThreadPool sequential_pool(1);
  ThreadPool sharded_pool(4);
  for (int trial = 0; trial < 200; ++trial) {
    const Graph g = RandomMultiComponentGraph(rng);

    // The old sequential recipe, as the ground truth for the partition:
    // every surviving component must be connected with f_sf = |C| - 1.
    int reference_f_sf = 0;
    for (const std::vector<int>& component : ComponentVertexSets(g)) {
      if (component.size() < 2) continue;
      const Graph induced = Induce(g, component).graph;
      const int f_sf = SpanningForestSize(induced);
      ASSERT_EQ(f_sf, static_cast<int>(component.size()) - 1)
          << "trial " << trial;
      reference_f_sf += f_sf;
    }
    ASSERT_EQ(reference_f_sf, SpanningForestSize(g)) << "trial " << trial;

    std::vector<double> sequential_values;
    {
      ScopedThreadPool scoped(&sequential_pool);
      ExtensionFamily family(g);
      EXPECT_EQ(family.SpanningForestSizeValue(), reference_f_sf)
          << "trial " << trial;
      const auto values = family.Values(grid);
      ASSERT_TRUE(values.ok()) << "trial " << trial;
      sequential_values = *values;
    }
    {
      ScopedThreadPool scoped(&sharded_pool);
      ExtensionFamily family(g);
      EXPECT_EQ(family.SpanningForestSizeValue(), reference_f_sf)
          << "trial " << trial;
      const auto values = family.Values(grid);
      ASSERT_TRUE(values.ok()) << "trial " << trial;
      // Bit-identical across thread widths, not merely close.
      EXPECT_EQ(*values, sequential_values) << "trial " << trial;
    }
  }
}

TEST(FamilyConstructTest, DeferredWarmMatchesEagerValues) {
  Rng rng(4200);
  const std::vector<double> grid = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = RandomMultiComponentGraph(rng);

    ExtensionFamily eager(g);
    const auto eager_values = eager.Values(grid);
    ASSERT_TRUE(eager_values.ok());

    ExtensionFamily deferred(g, {}, ExtensionFamily::DeferInduction{});
    ASSERT_TRUE(deferred.Warm(grid).ok());
    const auto warmed_values = deferred.Values(grid);
    ASSERT_TRUE(warmed_values.ok());

    EXPECT_EQ(*warmed_values, *eager_values) << "trial " << trial;

    // Same cells, same merge order, same caches: the post-warm state is
    // indistinguishable, down to the work stats and the byte accounting.
    const auto eager_stats = eager.stats();
    const auto deferred_stats = deferred.stats();
    EXPECT_EQ(deferred_stats.lp_evaluations, eager_stats.lp_evaluations);
    EXPECT_EQ(deferred_stats.fast_certificates,
              eager_stats.fast_certificates);
    EXPECT_EQ(deferred_stats.cuts_added, eager_stats.cuts_added);
    EXPECT_EQ(deferred.MemoryBytes(), eager.MemoryBytes())
        << "trial " << trial;
  }
}

TEST(FamilyConstructTest, DeferredFamilyReleasesHostGraphAfterFullWarm) {
  // Until every component is induced, the deferred family retains a host
  // copy of the graph; a full-grid warm induces everything and drops it.
  Rng rng(4300);
  const Graph g = gen::DisjointUnion(
      {gen::ErdosRenyi(60, 0.05, rng), gen::Complete(8), gen::Path(40)});
  ExtensionFamily deferred(g, {}, ExtensionFamily::DeferInduction{});
  const std::size_t before = deferred.MemoryBytes();
  EXPECT_GE(before, g.MemoryBytes());  // host copy is accounted

  ASSERT_TRUE(deferred.Warm({1.0, 2.0, 4.0}).ok());
  ExtensionFamily eager(g);
  ASSERT_TRUE(eager.Values({1.0, 2.0, 4.0}).ok());
  EXPECT_EQ(deferred.MemoryBytes(), eager.MemoryBytes());
}

TEST(FamilyConstructTest, WarmAsyncServesConcurrentQueries) {
  // Queries racing an async warm must return correct values and block only
  // on the cells they need — never on the whole warm. Run under TSan in
  // CI, this is the load-while-querying proof at the family level.
  Rng rng(4400);
  const Graph g = gen::DisjointUnion(
      {gen::ErdosRenyi(24, 0.15, rng), gen::Caterpillar(8, 2),
       gen::Complete(6), gen::ErdosRenyi(16, 0.2, rng)});
  const std::vector<double> grid = {1.0, 2.0, 4.0, 8.0};

  ExtensionFamily reference(g);
  const std::vector<double> expected = reference.Values(grid).value();

  ExtensionFamily shared(g, {}, ExtensionFamily::DeferInduction{});
  shared.WarmAsync(grid);

  constexpr int kCallers = 4;
  std::vector<std::vector<double>> got(kCallers);
  std::vector<std::thread> threads;
  threads.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    threads.emplace_back([&shared, &got, &grid, i] {
      if (i % 2 == 0) {
        got[i] = shared.Values(grid).value();
      } else {
        got[i].reserve(grid.size());
        for (double delta : grid) {
          got[i].push_back(shared.Value(delta).value());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(shared.WaitWarm().ok());

  for (int i = 0; i < kCallers; ++i) {
    ASSERT_EQ(got[i].size(), expected.size()) << "caller " << i;
    for (std::size_t d = 0; d < expected.size(); ++d) {
      EXPECT_NEAR(got[i][d], expected[d], kTol)
          << "caller " << i << " delta " << grid[d];
    }
  }

  // The in-flight cell registry deduplicates work across the warm and all
  // callers: no (component, Δ) cell is ever solved twice, so the total
  // work cannot exceed one cold batch's (it can be less, when one batch's
  // merged watermark settles cells before another batch plans them).
  ExtensionFamily::Stats cold_stats;
  {
    ExtensionFamily cold(g);
    ASSERT_TRUE(cold.Values(grid).ok());
    cold_stats = cold.stats();
  }
  const auto stats = shared.stats();
  EXPECT_LE(stats.lp_evaluations, cold_stats.lp_evaluations);
  EXPECT_LE(stats.fast_certificates, cold_stats.fast_certificates);
}

TEST(FamilyConstructTest, MemoryBytesGrowsWithWarmState) {
  Rng rng(4500);
  const Graph g = gen::ErdosRenyi(40, 0.15, rng);
  ExtensionFamily family(g);
  const std::size_t cold = family.MemoryBytes();
  EXPECT_GT(cold, 0u);
  ASSERT_TRUE(family.Values({1.0, 2.0, 4.0}).ok());
  // Warm state (value cache, cut pools) is accounted.
  EXPECT_GE(family.MemoryBytes(), cold);
}

}  // namespace
}  // namespace nodedp

// Parameterized property sweeps over graph families, exercising the paper's
// lemmas as invariants on every family × seed combination:
//
//   P1 (Lemma 3.3): f_Δ underestimates f_sf and is monotone in Δ.
//   P2 (Lemma 3.3, Item 1): spanning Δ-forest (certified by repair) implies
//       f_Δ = f_sf.
//   P3 (Δ-Lipschitzness): adding one arbitrary vertex changes f_Δ by <= Δ,
//       and never decreases it.
//   P4 (Lemma 1.8): repair succeeds for every Δ > s(G).
//   P5 (Lemma 1.9): DS_fsf(G) <= Δ-1 implies f_Δ(G) = f_sf(G).
//   P6 (Eq. (1)): f_cc + f_sf = |V|.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/down_sensitivity.h"
#include "core/lipschitz_extension.h"
#include "core/repair.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/star.h"
#include "graph/subgraph.h"
#include "util/random.h"

namespace nodedp {
namespace {

constexpr double kTol = 1e-5;

struct FamilyCase {
  std::string name;
  // Generates an instance of the family for the given seed.
  Graph (*make)(uint64_t seed);
};

Graph MakeGnpSparse(uint64_t seed) {
  Rng rng(seed);
  return gen::ErdosRenyi(14, 1.0 / 14, rng);
}
Graph MakeGnpCritical(uint64_t seed) {
  Rng rng(seed);
  return gen::ErdosRenyi(13, 2.0 / 13, rng);
}
Graph MakeGnpDense(uint64_t seed) {
  Rng rng(seed);
  return gen::ErdosRenyi(11, 0.5, rng);
}
Graph MakeGeometric(uint64_t seed) {
  Rng rng(seed);
  return gen::RandomGeometric(16, 0.3, rng);
}
Graph MakeTreeLike(uint64_t seed) {
  Rng rng(seed);
  return gen::RandomTreeLike(15, 3, 0.3, rng);
}
Graph MakeEntities(uint64_t seed) {
  Rng rng(seed);
  return gen::RandomEntityGraph(5, 3, rng);
}
Graph MakeBarabasi(uint64_t seed) {
  Rng rng(seed);
  return gen::BarabasiAlbert(14, 2, rng);
}
Graph MakeStructured(uint64_t seed) {
  switch (seed % 5) {
    case 0:
      return gen::Path(12);
    case 1:
      return gen::Cycle(9);
    case 2:
      return gen::Star(8);
    case 3:
      return gen::Grid(3, 4);
    default:
      return gen::Caterpillar(4, 2);
  }
}

class ExtensionPropertyTest
    : public testing::TestWithParam<std::tuple<FamilyCase, uint64_t>> {
 protected:
  Graph MakeGraph() const {
    const auto& [family, seed] = GetParam();
    return family.make(seed);
  }
};

TEST_P(ExtensionPropertyTest, P1UnderestimationAndMonotonicity) {
  const Graph g = MakeGraph();
  const double f_sf = SpanningForestSize(g);
  double previous = -1.0;
  for (double delta : {1.0, 2.0, 3.0, 5.0, 9.0}) {
    const double value = LipschitzExtensionValue(g, delta);
    EXPECT_LE(value, f_sf + kTol);
    EXPECT_GE(value, previous - kTol);
    previous = value;
  }
}

TEST_P(ExtensionPropertyTest, P2RepairCertificateImpliesExactness) {
  const Graph g = MakeGraph();
  for (int delta : {1, 2, 4, 8}) {
    const auto forest = RepairSpanningForest(g, delta);
    if (forest.has_value()) {
      EXPECT_NEAR(LipschitzExtensionValue(g, delta),
                  SpanningForestSize(g), kTol)
          << "delta=" << delta;
    }
  }
}

TEST_P(ExtensionPropertyTest, P3LipschitzUnderNodeInsertion) {
  const Graph g = MakeGraph();
  const auto& [family, seed] = GetParam();
  (void)family;
  Rng rng(seed ^ 0xABCDEF);
  std::vector<int> neighbors;
  for (int v = 0; v < g.NumVertices(); ++v) {
    if (rng.NextBernoulli(0.4)) neighbors.push_back(v);
  }
  const Graph g_prime = AddVertex(g, neighbors);
  for (double delta : {1.0, 2.0, 4.0}) {
    const double lo = LipschitzExtensionValue(g, delta);
    const double hi = LipschitzExtensionValue(g_prime, delta);
    EXPECT_GE(hi, lo - kTol) << "delta=" << delta;
    EXPECT_LE(hi - lo, delta + kTol) << "delta=" << delta;
  }
}

TEST_P(ExtensionPropertyTest, P4RepairSucceedsAboveStarNumber) {
  const Graph g = MakeGraph();
  if (g.NumEdges() == 0) return;
  const StarNumberResult s = InducedStarNumber(g);
  ASSERT_TRUE(s.exact);
  for (int delta = s.value + 1; delta <= s.value + 2; ++delta) {
    const auto forest = RepairSpanningForest(g, delta);
    ASSERT_TRUE(forest.has_value()) << "delta=" << delta << " s=" << s.value;
    EXPECT_TRUE(forest->IsSpanningForestOf(g));
    EXPECT_LE(forest->MaxDegree(), delta);
  }
}

TEST_P(ExtensionPropertyTest, P5AnchorSetViaDownSensitivity) {
  const Graph g = MakeGraph();
  const StarNumberResult s = InducedStarNumber(g);  // = DS_fsf (Lemma 1.7)
  ASSERT_TRUE(s.exact);
  const double delta = s.value + 1.0;
  EXPECT_NEAR(LipschitzExtensionValue(g, delta), SpanningForestSize(g), kTol);
}

TEST_P(ExtensionPropertyTest, P6EquationOne) {
  const Graph g = MakeGraph();
  EXPECT_EQ(CountConnectedComponents(g) + SpanningForestSize(g),
            g.NumVertices());
}

const FamilyCase kFamilies[] = {
    {"GnpSparse", &MakeGnpSparse},     {"GnpCritical", &MakeGnpCritical},
    {"GnpDense", &MakeGnpDense},       {"Geometric", &MakeGeometric},
    {"TreeLike", &MakeTreeLike},       {"Entities", &MakeEntities},
    {"Barabasi", &MakeBarabasi},       {"Structured", &MakeStructured},
};

INSTANTIATE_TEST_SUITE_P(
    Families, ExtensionPropertyTest,
    testing::Combine(testing::ValuesIn(kFamilies),
                     testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const testing::TestParamInfo<ExtensionPropertyTest::ParamType>& info) {
      return std::get<0>(info.param).name + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace nodedp

// Tests for src/obs: metrics registry exactness and concurrency, the
// Prometheus exposition format, trace spans, and the slow-query log.
//
// Most tests use a local MetricsRegistry instance for isolation; the few
// that exercise MetricsRegistry::Default() or the global enabled switch
// use test-unique metric names, because the default registry is
// process-wide and shared with every other test in this binary.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nodedp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Counter

TEST(CounterTest, IncrementAndAdd) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c_total", "help");
  EXPECT_EQ(counter->Value(), 0.0);
  counter->Increment();
  counter->Add(2.5);
  EXPECT_DOUBLE_EQ(counter->Value(), 3.5);
}

TEST(CounterTest, NegativeAndZeroDeltasAreDropped) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c_total", "help");
  counter->Add(-5.0);
  counter->Add(0.0);
  counter->Add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(counter->Value(), 0.0);
}

TEST(CounterTest, SameNameAndLabelsReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("c_total", {{"verb", "load"}}, "help");
  Counter* b = registry.GetCounter("c_total", {{"verb", "load"}}, "help");
  Counter* other = registry.GetCounter("c_total", {{"verb", "gen"}}, "help");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  // The sharded-atomic design claim: increments from many threads are
  // never lost. Run under TSan (NODEDP_SANITIZE=THREAD) this also proves
  // the implementation is race-free.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c_total", "help");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(counter->Value(),
                   static_cast<double>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Gauge

TEST(GaugeTest, LastWriteWins) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("g_bytes", "help");
  EXPECT_EQ(gauge->Value(), 0.0);
  gauge->Set(42.0);
  gauge->Set(7.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 7.0);
}

// ---------------------------------------------------------------------------
// Histogram percentiles — exact at bucket resolution

TEST(HistogramTest, EmptyHistogramReportsZero) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("h_ns", "help", {10.0, 20.0, 30.0});
  EXPECT_EQ(histogram->Percentile(0.5), 0.0);
  EXPECT_EQ(histogram->Percentile(0.999), 0.0);
}

TEST(HistogramTest, BoundaryObservationsReportTheBoundaryExactly) {
  // An observation at a bucket bound lands in that bucket (le
  // semantics), so a percentile landing on it reports the bound itself —
  // no interpolation, no off-by-one-bucket.
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("h_ns", "help", {10.0, 20.0, 30.0});
  histogram->Observe(10.0);
  histogram->Observe(20.0);
  histogram->Observe(30.0);
  // N = 3: rank(q) = ceil(q*3) -> p50 at rank 2 = the second observation.
  EXPECT_DOUBLE_EQ(histogram->Percentile(0.50), 20.0);
  EXPECT_DOUBLE_EQ(histogram->Percentile(1.0 / 3.0), 10.0);
  EXPECT_DOUBLE_EQ(histogram->Percentile(0.99), 30.0);
  EXPECT_DOUBLE_EQ(histogram->Percentile(0.999), 30.0);
}

TEST(HistogramTest, SingleObservationDefinesEveryQuantile) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("h_ns", "help", {10.0, 20.0, 30.0});
  histogram->Observe(15.0);  // rounds up to the 20 bucket
  EXPECT_DOUBLE_EQ(histogram->Percentile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(histogram->Percentile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(histogram->Percentile(0.999), 20.0);
}

TEST(HistogramTest, OverflowBucketReportsInfinity) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("h_ns", "help", {10.0, 20.0, 30.0});
  histogram->Observe(31.0);
  EXPECT_EQ(histogram->Percentile(0.5), kInf);
}

TEST(HistogramTest, SnapshotCountsAndSum) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("h_ns", "help", {10.0, 20.0, 30.0});
  histogram->Observe(5.0);
  histogram->Observe(10.0);
  histogram->Observe(25.0);
  histogram->Observe(100.0);
  const Histogram::Snapshot snapshot = histogram->TakeSnapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snapshot.counts[0], 2);       // 5 and 10
  EXPECT_EQ(snapshot.counts[1], 0);
  EXPECT_EQ(snapshot.counts[2], 1);  // 25
  EXPECT_EQ(snapshot.counts[3], 1);  // 100 -> +Inf
  EXPECT_EQ(snapshot.count, 4);
  EXPECT_DOUBLE_EQ(snapshot.sum, 140.0);
}

TEST(HistogramTest, PercentileOfSummedSnapshots) {
  // bench_traffic sums per-verb snapshots bucket-by-bucket; the static
  // PercentileOf must give the same answer as a single histogram would.
  MetricsRegistry registry;
  Histogram* a = registry.GetHistogram("a_ns", "help", {10.0, 20.0, 30.0});
  Histogram* b = registry.GetHistogram("b_ns", "help", {10.0, 20.0, 30.0});
  for (int i = 0; i < 9; ++i) a->Observe(10.0);
  b->Observe(30.0);
  Histogram::Snapshot total = a->TakeSnapshot();
  const Histogram::Snapshot other = b->TakeSnapshot();
  for (std::size_t i = 0; i < total.counts.size(); ++i) {
    total.counts[i] += other.counts[i];
  }
  total.count += other.count;
  total.sum += other.sum;
  const std::vector<double> bounds = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(Histogram::PercentileOf(total, bounds, 0.50), 10.0);
  EXPECT_DOUBLE_EQ(Histogram::PercentileOf(total, bounds, 0.90), 10.0);
  EXPECT_DOUBLE_EQ(Histogram::PercentileOf(total, bounds, 0.91), 30.0);
}

TEST(HistogramTest, ConcurrentObservationsAllLand) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("h_ns", "help", {1.0, 2.0, 4.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Observe(static_cast<double>(t % 3));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const Histogram::Snapshot snapshot = histogram->TakeSnapshot();
  EXPECT_EQ(snapshot.count,
            static_cast<long long>(kThreads) * kPerThread);
}

TEST(HistogramTest, LatencyBucketLayout) {
  const std::vector<double>& bounds = MetricsRegistry::LatencyBucketsNs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1e3);  // 1 us
  EXPECT_DOUBLE_EQ(bounds.back(), 3e10);  // 30 s
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(PrometheusTextTest, ParsesAsExpositionFormat) {
  MetricsRegistry registry;
  registry.GetCounter("req_total", {{"verb", "load"}}, "Requests")->Add(3);
  registry.GetCounter("req_total", {{"verb", "gen"}}, "Requests")->Add(1);
  registry.GetGauge("mem_bytes", "Resident bytes")->Set(512.0);
  Histogram* histogram =
      registry.GetHistogram("lat_ns", "Latency", {10.0, 20.0});
  histogram->Observe(5.0);
  histogram->Observe(100.0);

  const std::string text = registry.PrometheusText();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // Every line must be a comment or `name[{labels}] value`.
  const std::regex sample_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")"
      R"((,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? [^ ]+$)");
  const std::regex comment_re(R"(^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$)");
  std::istringstream lines(text);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("#", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, comment_re)) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_re)) << line;
      ++samples;
    }
  }
  // 2 counter series + 1 gauge + (3 buckets + sum + count) = 8.
  EXPECT_EQ(samples, 8);

  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mem_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("req_total{verb=\"load\"} 3"), std::string::npos);
  // Histogram buckets are cumulative and include +Inf; count matches.
  EXPECT_NE(text.find("lat_ns_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"20\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 2"), std::string::npos);
}

TEST(PrometheusTextTest, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", {{"path", "a\\b\"c\nd"}}, "help")
      ->Increment();
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find(R"(c_total{path="a\\b\"c\nd"} 1)"), std::string::npos);
}

TEST(PrometheusTextTest, IntegersExposeWithoutExponent) {
  // CI greps for literal `name 1`; exact integers must not print as
  // 1e+00 or 1.0000000000000000.
  MetricsRegistry registry;
  registry.GetCounter("c_total", "help")->Add(1.0);
  registry.GetCounter("big_total", "help")->Add(1048576.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("c_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("big_total 1048576\n"), std::string::npos);
}

TEST(SamplesTest, FlattensCountersGaugesAndHistogramPercentiles) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", {{"verb", "x"}}, "help")->Add(2.0);
  registry.GetGauge("g_bytes", "help")->Set(9.0);
  Histogram* histogram = registry.GetHistogram("h_ns", "help", {10.0, 20.0});
  histogram->Observe(10.0);

  const std::vector<MetricsRegistry::Sample> samples = registry.Samples();
  const auto find = [&samples](const std::string& name) -> const double* {
    for (const auto& sample : samples) {
      if (sample.name == name) return &sample.value;
    }
    return nullptr;
  };
  ASSERT_NE(find("c_total{verb=\"x\"}"), nullptr);
  EXPECT_DOUBLE_EQ(*find("c_total{verb=\"x\"}"), 2.0);
  ASSERT_NE(find("g_bytes"), nullptr);
  EXPECT_DOUBLE_EQ(*find("g_bytes"), 9.0);
  ASSERT_NE(find("h_ns_count"), nullptr);
  EXPECT_DOUBLE_EQ(*find("h_ns_count"), 1.0);
  ASSERT_NE(find("h_ns_p50"), nullptr);
  EXPECT_DOUBLE_EQ(*find("h_ns_p50"), 10.0);
}

// ---------------------------------------------------------------------------
// Enabled switch

TEST(MetricsEnabledTest, DisabledWritesAreDropped) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c_total", "help");
  Histogram* histogram = registry.GetHistogram("h_ns", "help", {10.0});
  ASSERT_TRUE(MetricsEnabled());
  SetMetricsEnabled(false);
  counter->Increment();
  histogram->Observe(1.0);
  SetMetricsEnabled(true);
  EXPECT_EQ(counter->Value(), 0.0);
  EXPECT_EQ(histogram->TakeSnapshot().count, 0);
  counter->Increment();
  EXPECT_EQ(counter->Value(), 1.0);
}

// ---------------------------------------------------------------------------
// Trace spans

TEST(TraceTest, SpansAccumulateByStageName) {
  QueryTrace trace("release_cc");
  trace.set_target("g1");
  trace.AddSpan("admit", 100);
  trace.AddSpan("family", 200);
  trace.AddSpan("family", 50);
  const std::string line = trace.Describe();
  EXPECT_NE(line.find("slow_query verb=release_cc target=g1"),
            std::string::npos);
  EXPECT_NE(line.find("admit:100"), std::string::npos);
  EXPECT_NE(line.find("family:250"), std::string::npos);
}

TEST(TraceTest, CurrentInstallsAndRestoresAcrossNesting) {
  EXPECT_EQ(QueryTrace::Current(), nullptr);
  {
    QueryTrace outer("stats");
    EXPECT_EQ(QueryTrace::Current(), &outer);
    {
      QueryTrace inner("budget");
      EXPECT_EQ(QueryTrace::Current(), &inner);
    }
    EXPECT_EQ(QueryTrace::Current(), &outer);
  }
  EXPECT_EQ(QueryTrace::Current(), nullptr);
}

TEST(TraceTest, ScopedSpanWithoutTraceIsANoOp) {
  ASSERT_EQ(QueryTrace::Current(), nullptr);
  ScopedSpan span("orphan");  // must not crash or install anything
  EXPECT_EQ(QueryTrace::Current(), nullptr);
}

TEST(TraceTest, ScopedSpanRecordsIntoTheActiveTrace) {
  QueryTrace trace("release_cc");
  { ScopedSpan span("mechanism"); }
  EXPECT_NE(trace.Describe().find("mechanism:"), std::string::npos);
}

TEST(TraceTest, OverflowStagesFoldIntoOther) {
  QueryTrace trace("stats");
  for (int i = 0; i < 32; ++i) {
    // 32 distinct literal names would be unwieldy; reuse a handful and
    // add distinct ones past the cap via indexed statics.
    static const char* names[] = {
        "s00", "s01", "s02", "s03", "s04", "s05", "s06", "s07",
        "s08", "s09", "s10", "s11", "s12", "s13", "s14", "s15",
        "s16", "s17", "s18", "s19", "s20", "s21", "s22", "s23",
        "s24", "s25", "s26", "s27", "s28", "s29", "s30", "s31"};
    trace.AddSpan(names[i], 10);
  }
  const std::string line = trace.Describe();
  EXPECT_NE(line.find("s15:10"), std::string::npos);
  EXPECT_EQ(line.find("s16:"), std::string::npos);
  EXPECT_NE(line.find("other:160"), std::string::npos);  // 16 * 10
}

// ---------------------------------------------------------------------------
// Slow-query log

std::mutex g_slow_lines_mu;
std::vector<std::string>* g_slow_lines = nullptr;

void CaptureSlowLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_slow_lines_mu);
  if (g_slow_lines != nullptr) g_slow_lines->push_back(line);
}

class SlowQueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    {
      std::lock_guard<std::mutex> lock(g_slow_lines_mu);
      g_slow_lines = &lines_;
    }
    SetSlowQueryLogSink(&CaptureSlowLine);
  }
  void TearDown() override {
    SetSlowQueryLogSink(nullptr);
    SetSlowQueryThresholdNs(0);
    std::lock_guard<std::mutex> lock(g_slow_lines_mu);
    g_slow_lines = nullptr;
  }
  std::vector<std::string> lines_;
};

TEST_F(SlowQueryLogTest, FiresAtThreshold) {
  SetSlowQueryThresholdNs(1);  // every query is slow
  {
    QueryTrace trace("release_cc");
    trace.set_target("g0");
    trace.AddSpan("admit", 5);
  }
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("slow_query verb=release_cc target=g0"),
            std::string::npos);
  EXPECT_NE(lines_[0].find("total_ns="), std::string::npos);
  EXPECT_NE(lines_[0].find("spans=admit:5"), std::string::npos);
}

TEST_F(SlowQueryLogTest, NeverFiresOnFastQueries) {
  SetSlowQueryThresholdNs(1000000000000LL);  // 1000 s: nothing qualifies
  {
    QueryTrace trace("release_cc");
    trace.AddSpan("admit", 5);
  }
  EXPECT_TRUE(lines_.empty());
}

TEST_F(SlowQueryLogTest, DisabledByNonPositiveThreshold) {
  SetSlowQueryThresholdNs(0);
  { QueryTrace trace("release_cc"); }
  SetSlowQueryThresholdNs(-7);
  { QueryTrace trace("release_cc"); }
  EXPECT_TRUE(lines_.empty());
}

}  // namespace
}  // namespace nodedp

// Tests for the local-search degree-bounded spanning forest certificate.

#include "core/degree_improve.h"

#include <gtest/gtest.h>

#include "core/min_degree_forest.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/star.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(DegreeImproveTest, ReducesBfsStarToHamiltonianish) {
  // BFS from the hub of a wheel-like graph produces a high-degree star;
  // local search must bring K_n down to degree 2 (Hamiltonian path).
  for (int n : {5, 8, 12}) {
    const Graph g = gen::Complete(n);
    Forest forest = BfsSpanningForest(g);
    EXPECT_GT(forest.MaxDegree(), 2);
    EXPECT_TRUE(ImproveForestDegree(g, 2, forest));
    EXPECT_LE(forest.MaxDegree(), 2);
    EXPECT_TRUE(forest.IsSpanningForestOf(g));
  }
}

TEST(DegreeImproveTest, CannotBeatDeltaStar) {
  // The star's only spanning tree is itself: improvement below its degree
  // must fail, and the forest must remain a valid spanning forest.
  const Graph g = gen::Star(6);
  Forest forest = BfsSpanningForest(g);
  EXPECT_FALSE(ImproveForestDegree(g, 5, forest));
  EXPECT_TRUE(forest.IsSpanningForestOf(g));
}

TEST(DegreeImproveTest, FindSucceedsWheneverExactSaysYes) {
  // On small graphs, compare the heuristic against the exact decision:
  // the heuristic may only fail where the exact answer is "no spanning
  // Δ-forest" OR (rarely) where local search gets stuck — count the
  // latter and require it to be rare. (Completeness is heuristic; soundness
  // is exact and asserted unconditionally.)
  Rng rng(1100);
  int exact_yes = 0;
  int heuristic_yes = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 6 + static_cast<int>(rng.NextUint64(4));
    const Graph g = gen::ErdosRenyi(n, 0.35, rng);
    if (g.NumEdges() == 0) continue;
    for (int delta = 1; delta <= 4; ++delta) {
      const auto exact = HasSpanningForestOfDegree(g, delta);
      ASSERT_TRUE(exact.has_value());
      const auto found = FindSpanningForestOfDegree(g, delta);
      if (found.has_value()) {
        // Soundness: must be a genuine spanning Δ-forest.
        EXPECT_TRUE(found->IsSpanningForestOf(g));
        EXPECT_LE(found->MaxDegree(), delta);
        EXPECT_TRUE(*exact);
        ++heuristic_yes;
      }
      if (*exact) ++exact_yes;
    }
  }
  ASSERT_GT(exact_yes, 0);
  // Heuristic completeness: at least 90% of feasible instances certified.
  EXPECT_GE(heuristic_yes * 10, exact_yes * 9)
      << heuristic_yes << "/" << exact_yes;
}

TEST(DegreeImproveTest, TreeLikeGraphsCertifyAtGeneratorDegree) {
  // The regression that motivated this module: RandomTreeLike(n, 3, p)
  // contains a spanning 3-forest by construction; the certificate must
  // find a spanning forest at Δ = 4 (and usually at 3) without the LP.
  Rng rng(1101);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::RandomTreeLike(128, 3, 0.2, rng);
    const auto found = FindSpanningForestOfDegree(g, 4);
    ASSERT_TRUE(found.has_value()) << "trial=" << trial;
    EXPECT_LE(found->MaxDegree(), 4);
    EXPECT_TRUE(found->IsSpanningForestOf(g));
  }
}

TEST(DegreeImproveTest, SwapBudgetRespected) {
  const Graph g = gen::Complete(10);
  Forest forest = BfsSpanningForest(g);
  DegreeImproveOptions miserly;
  miserly.max_swaps = 1;
  // One swap cannot fix a 9-degree star down to 2; must report failure but
  // keep the forest valid.
  EXPECT_FALSE(ImproveForestDegree(g, 2, forest, miserly));
  EXPECT_TRUE(forest.IsSpanningForestOf(g));
}

TEST(DegreeImproveTest, DisconnectedInputs) {
  const Graph g = gen::DisjointUnion({gen::Complete(5), gen::Complete(4)});
  const auto found = FindSpanningForestOfDegree(g, 2);
  ASSERT_TRUE(found.has_value());
  EXPECT_LE(found->MaxDegree(), 2);
  EXPECT_TRUE(found->IsSpanningForestOf(g));
}

}  // namespace
}  // namespace nodedp

// Tests for the empirical sensitivity audit — and, through it, the
// Lipschitz facts the privacy proof of Algorithm 1 rests on.

#include "core/privacy_audit.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(PrivacyAuditTest, ExtensionRatioNeverExceedsOne) {
  Rng rng(1300);
  const std::vector<double> deltas = {1.0, 2.0, 4.0};
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = gen::ErdosRenyi(12, 0.3, rng);
    const AuditReport report = AuditExtensionLipschitz(g, deltas, rng);
    EXPECT_GT(report.pairs_audited, 0);
    EXPECT_LE(report.worst_extension_ratio, 1.0 + 1e-6)
        << "trial=" << trial;
    EXPECT_LE(report.worst_monotonicity_violation, 1e-6);
  }
}

TEST(PrivacyAuditTest, RatioIsTightOnRemark34Family) {
  // The Δ isolated vertices + apex family attains ratio exactly 1; dense
  // insertions (edge_p = 1) against the empty graph reproduce it.
  Rng rng(1301);
  AuditOptions options;
  options.edge_p = 1.0;
  options.neighbor_samples = 4;
  const AuditReport report =
      AuditExtensionLipschitz(gen::Empty(4), {4.0}, rng, options);
  EXPECT_NEAR(report.worst_extension_ratio, 1.0, 1e-6);
}

TEST(PrivacyAuditTest, GemScoreSensitivityAtMostOne) {
  Rng rng(1302);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = gen::ErdosRenyi(14, 0.25, rng);
    AuditOptions options;
    options.neighbor_samples = 8;
    const AuditReport report =
        AuditGemScoreSensitivity(g, /*epsilon=*/1.0, /*beta=*/0.1, rng,
                                 options);
    EXPECT_GT(report.pairs_audited, 0);
    EXPECT_LE(report.worst_score_sensitivity, 1.0 + 1e-6)
        << "trial=" << trial;
  }
}

TEST(PrivacyAuditTest, StructuredWorkloads) {
  Rng rng(1303);
  for (const Graph& g : {gen::Star(8), gen::Grid(4, 4), gen::Path(12),
                         gen::CliqueUnion({3, 4, 2})}) {
    const AuditReport ext =
        AuditExtensionLipschitz(g, {1.0, 2.0, 8.0}, rng);
    EXPECT_LE(ext.worst_extension_ratio, 1.0 + 1e-6);
    const AuditReport gem =
        AuditGemScoreSensitivity(g, 2.0, 0.1, rng);
    EXPECT_LE(gem.worst_score_sensitivity, 1.0 + 1e-6);
  }
}

TEST(PrivacyAuditTest, EmptyGraphEdgeCase) {
  Rng rng(1304);
  const AuditReport report =
      AuditExtensionLipschitz(gen::Empty(0), {1.0}, rng);
  // Only insertions are possible; audit must not crash and ratio stays 0/1.
  EXPECT_LE(report.worst_extension_ratio, 1.0 + 1e-6);
}

}  // namespace
}  // namespace nodedp

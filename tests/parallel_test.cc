// Tests for the parallel execution substrate — and for its central promise:
// algorithm results are bit-identical at 1 thread and at N threads.

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/extension_family.h"
#include "core/private_cc.h"
#include "dp/gem.h"
#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(ThreadPoolTest, StartShutdownRepeatedly) {
  // Pools must come up and go down cleanly, including degenerate widths.
  for (int width : {1, 2, 4, 7}) {
    ThreadPool pool(width);
    EXPECT_EQ(pool.num_threads(), width >= 1 ? width : 1);
    std::atomic<int> touched{0};
    pool.For(100, [&](std::int64_t) { ++touched; });
    EXPECT_EQ(touched.load(), 100);
  }
  // Destruction with no work ever submitted.
  { ThreadPool idle(4); }
  // Width is clamped to >= 1.
  ThreadPool clamped(0);
  EXPECT_EQ(clamped.num_threads(), 1);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.For(1000, [&](std::int64_t i) { ++counts[i]; });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesLowestIndex) {
  ThreadPool pool(4);
  for (int trial = 0; trial < 20; ++trial) {
    try {
      pool.For(64, [](std::int64_t i) {
        if (i == 7 || i == 50) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      // Deterministic choice among concurrent failures: the lowest index.
      EXPECT_STREQ(e.what(), "boom 7");
    }
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesFromInlinePath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.For(8, [](std::int64_t i) {
    if (i == 3) throw std::logic_error("inline");
  }),
               std::logic_error);
}

TEST(ThreadPoolTest, DispatchOrderRunsEveryIndexExactlyOnce) {
  // The claim permutation reorders dispatch, never coverage: every index
  // still runs exactly once, at any width (including the inline path).
  std::vector<std::int64_t> reversed(512);
  for (std::int64_t i = 0; i < 512; ++i) reversed[i] = 511 - i;
  for (int width : {1, 4}) {
    ThreadPool pool(width);
    std::vector<std::atomic<int>> counts(512);
    pool.For(512, [&](std::int64_t i) { ++counts[i]; }, reversed);
    for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
  }
}

TEST(ThreadPoolTest, DispatchOrderWritesIndexAddressedSlots) {
  // Results land by item index regardless of the claim permutation — the
  // determinism contract's slot rule, under an adversarial order.
  std::vector<std::int64_t> order(100);
  for (std::int64_t i = 0; i < 100; ++i) order[i] = (i * 37) % 100;  // coprime
  ThreadPool pool(4);
  ScopedThreadPool scope(&pool);
  std::vector<std::int64_t> slots(100, -1);
  ParallelFor(100, [&](std::int64_t i) { slots[i] = i * i; }, order);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(slots[i], i * i);
}

TEST(ThreadPoolTest, DispatchOrderExceptionStillLowestIndex) {
  // A permutation that claims item 50 before item 7 must still rethrow
  // item 7's exception — the deterministic choice is by item index, not
  // claim order, on both the pooled and the inline path.
  std::vector<std::int64_t> reversed(64);
  for (std::int64_t i = 0; i < 64; ++i) reversed[i] = 63 - i;
  for (int width : {1, 4}) {
    ThreadPool pool(width);
    for (int trial = 0; trial < 10; ++trial) {
      try {
        pool.For(64,
                 [](std::int64_t i) {
                   if (i == 7 || i == 50) {
                     throw std::runtime_error("boom " + std::to_string(i));
                   }
                 },
                 reversed);
        FAIL() << "expected an exception";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom 7") << "width=" << width;
      }
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  ScopedThreadPool scope(&pool);
  std::atomic<int> total{0};
  // Each outer item issues its own ParallelFor; nested loops must complete
  // (inline on the worker) without deadlocking the pool.
  ParallelFor(8, [&](std::int64_t) {
    ParallelFor(8, [&](std::int64_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

// Saves NODEDP_THREADS on construction and restores it (rather than
// unsetting) on destruction, so env tests cannot leak state into tests that
// run after them — e.g. CI's NODEDP_THREADS=1 ctest re-run.
class ScopedThreadsEnv {
 public:
  ScopedThreadsEnv() {
    const char* current = std::getenv("NODEDP_THREADS");
    had_value_ = current != nullptr;
    if (had_value_) saved_ = current;
  }
  ~ScopedThreadsEnv() {
    if (had_value_) {
      setenv("NODEDP_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("NODEDP_THREADS");
    }
  }

 private:
  bool had_value_ = false;
  std::string saved_;
};

TEST(ThreadPoolTest, EnvThreadsOneMeansSequentialFallback) {
  ScopedThreadsEnv restore;
  // NODEDP_THREADS=1 must yield width-1 (inline) execution.
  ASSERT_EQ(setenv("NODEDP_THREADS", "1", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadCountFromEnv(), 1);
  ThreadPool pool(ThreadCountFromEnv());
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, EnvParsingRejectsGarbage) {
  ScopedThreadsEnv restore;
  for (const char* bad : {"", "0", "-3", "abc", "4x"}) {
    ASSERT_EQ(setenv("NODEDP_THREADS", bad, 1), 0);
    EXPECT_GE(ThreadCountFromEnv(), 1) << "env=" << bad;
  }
  ASSERT_EQ(setenv("NODEDP_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadCountFromEnv(), 3);
}

TEST(ThreadPoolTest, EnvParsingWarnsNamingTheRejectedValue) {
  // A rejected NODEDP_THREADS must not be silent: the parsing core hands
  // back the one-line warning the env path prints (once) to stderr, and
  // the message names the exact rejected value so the typo is findable.
  std::string warning;
  for (const char* bad : {"", "0", "-3", "abc", "4x", "9999999"}) {
    const int count = ThreadCountFromEnv(bad, &warning);
    EXPECT_GE(count, 1) << "value=" << bad;
    ASSERT_FALSE(warning.empty()) << "value=" << bad;
    EXPECT_NE(warning.find("NODEDP_THREADS"), std::string::npos);
    EXPECT_NE(warning.find(std::string("\"") + bad + "\""),
              std::string::npos)
        << "warning must name the rejected value: " << warning;
  }
  // Valid values and an unset variable stay warning-free.
  EXPECT_EQ(ThreadCountFromEnv("3", &warning), 3);
  EXPECT_TRUE(warning.empty());
  EXPECT_GE(ThreadCountFromEnv(nullptr, &warning), 1);
  EXPECT_TRUE(warning.empty());
}

TEST(ThreadPoolTest, ScopedOverrideAndRestore) {
  ThreadPool pool(3);
  const int default_width = ParallelThreadCount();
  {
    ScopedThreadPool scope(&pool);
    EXPECT_EQ(ParallelThreadCount(), 3);
  }
  EXPECT_EQ(ParallelThreadCount(), default_width);
}

TEST(ParallelMapTest, ResultsInIndexOrder) {
  ThreadPool pool(4);
  ScopedThreadPool scope(&pool);
  const std::vector<std::int64_t> squares =
      ParallelMap(100, [](std::int64_t i) { return i * i; });
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMapSeededTest, ChildStreamsIndependentOfThreadCount) {
  // The stream item i sees must depend only on i and the parent seed.
  auto draw = [](int width) {
    ThreadPool pool(width);
    ScopedThreadPool scope(&pool);
    Rng parent(42);
    return ParallelMapSeeded(
        parent, 64, [](std::int64_t, Rng& rng) { return rng.NextUint64(); });
  };
  const std::vector<uint64_t> at_one = draw(1);
  const std::vector<uint64_t> at_four = draw(4);
  EXPECT_EQ(at_one, at_four);
}

// ---------------------------------------------------------------------------
// The determinism contract on the real algorithms.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, ExtensionFamilyGridBitIdentical) {
  Rng wrng(77);
  const Graph g = gen::ErdosRenyi(40, 3.0 / 40, wrng);
  const std::vector<int> grid = PowersOfTwoGrid(40);
  const std::vector<double> deltas(grid.begin(), grid.end());

  auto sweep = [&](int width) {
    ThreadPool pool(width);
    ScopedThreadPool scope(&pool);
    ExtensionFamily family(g);
    Result<std::vector<double>> values = family.Values(deltas);
    EXPECT_TRUE(values.ok());
    return *values;
  };
  const std::vector<double> at_one = sweep(1);
  const std::vector<double> at_four = sweep(4);
  ASSERT_EQ(at_one.size(), at_four.size());
  for (std::size_t i = 0; i < at_one.size(); ++i) {
    // Bitwise equality, not tolerance: the schedule must not leak in.
    EXPECT_EQ(at_one[i], at_four[i]) << "delta=" << deltas[i];
  }
}

TEST(ParallelDeterminismTest, ValuesMatchesSequentialValueQueries) {
  Rng wrng(78);
  const Graph g = gen::ErdosRenyi(30, 0.15, wrng);
  const std::vector<double> deltas = {1.0, 2.0, 4.0, 8.0, 16.0};
  ThreadPool pool(4);
  ScopedThreadPool scope(&pool);
  ExtensionFamily batched(g);
  ExtensionFamily sequential(g);
  Result<std::vector<double>> values = batched.Values(deltas);
  ASSERT_TRUE(values.ok());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    EXPECT_NEAR((*values)[i], sequential.Value(deltas[i]).value(), 1e-6);
  }
  // And the batch must land in the caches: re-querying pays nothing.
  const auto before = batched.stats();
  for (double delta : deltas) ASSERT_TRUE(batched.Value(delta).ok());
  EXPECT_EQ(batched.stats().lp_evaluations, before.lp_evaluations);
}

TEST(ParallelDeterminismTest, PrivateSpanningForestSizeBitIdentical) {
  Rng wrng(79);
  const Graph g = gen::ErdosRenyi(36, 2.5 / 36, wrng);
  auto release = [&](int width) {
    ThreadPool pool(width);
    ScopedThreadPool scope(&pool);
    Rng rng(123);
    Result<SpanningForestRelease> result =
        PrivateSpanningForestSize(g, 1.0, rng);
    EXPECT_TRUE(result.ok());
    return *result;
  };
  const SpanningForestRelease at_one = release(1);
  const SpanningForestRelease at_four = release(4);
  EXPECT_EQ(at_one.estimate, at_four.estimate);
  EXPECT_EQ(at_one.selected_delta, at_four.selected_delta);
  EXPECT_EQ(at_one.extension_value, at_four.extension_value);
  EXPECT_EQ(at_one.laplace_scale, at_four.laplace_scale);
}

TEST(ParallelDeterminismTest, ReleaseBatchBitIdenticalAcrossWidths) {
  Rng wrng(80);
  std::vector<Graph> graphs;
  for (int i = 0; i < 6; ++i) {
    graphs.push_back(gen::ErdosRenyi(24, 2.0 / 24, wrng));
  }
  std::vector<ReleaseQuery> queries;
  for (const Graph& g : graphs) queries.push_back(ReleaseQuery{&g, 1.0});

  auto run = [&](int width) {
    ThreadPool pool(width);
    ScopedThreadPool scope(&pool);
    Rng rng(321);
    return ReleaseBatch(queries, rng);
  };
  const auto at_one = run(1);
  const auto at_four = run(4);
  ASSERT_EQ(at_one.size(), queries.size());
  ASSERT_EQ(at_four.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(at_one[i].ok());
    ASSERT_TRUE(at_four[i].ok());
    EXPECT_EQ(at_one[i]->estimate, at_four[i]->estimate) << "query " << i;
    EXPECT_EQ(at_one[i]->node_count_estimate,
              at_four[i]->node_count_estimate);
    EXPECT_EQ(at_one[i]->forest.estimate, at_four[i]->forest.estimate);
    EXPECT_EQ(at_one[i]->forest.selected_delta,
              at_four[i]->forest.selected_delta);
  }
}

TEST(ReleaseBatchTest, PerQueryFailuresAreIsolated) {
  Rng wrng(81);
  const Graph g = gen::ErdosRenyi(20, 0.2, wrng);
  std::vector<ReleaseQuery> queries = {
      ReleaseQuery{&g, 1.0},
      ReleaseQuery{nullptr, 1.0},  // null graph
      ReleaseQuery{&g, 0.0},       // invalid epsilon
      ReleaseQuery{&g, 0.5},
  };
  Rng rng(11);
  const auto releases = ReleaseBatch(queries, rng);
  ASSERT_EQ(releases.size(), 4u);
  EXPECT_TRUE(releases[0].ok());
  EXPECT_FALSE(releases[1].ok());
  EXPECT_FALSE(releases[2].ok());
  EXPECT_TRUE(releases[3].ok());
}

}  // namespace
}  // namespace nodedp

// Tests for exact Δ* computation and its bounds.

#include "core/min_degree_forest.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/star.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(MinDegreeForestTest, StructuredValues) {
  EXPECT_EQ(MinMaxDegreeSpanningForestExact(gen::Empty(4)).value(), 0);
  EXPECT_EQ(MinMaxDegreeSpanningForestExact(Graph(2, {{0, 1}})).value(), 1);
  EXPECT_EQ(MinMaxDegreeSpanningForestExact(gen::Path(7)).value(), 2);
  EXPECT_EQ(MinMaxDegreeSpanningForestExact(gen::Cycle(5)).value(), 2);
  EXPECT_EQ(MinMaxDegreeSpanningForestExact(gen::Star(6)).value(), 6);
  // K_n has a Hamiltonian path.
  EXPECT_EQ(MinMaxDegreeSpanningForestExact(gen::Complete(6)).value(), 2);
  // Grid has a boustrophedon Hamiltonian path.
  EXPECT_EQ(MinMaxDegreeSpanningForestExact(gen::Grid(3, 4)).value(), 2);
}

TEST(MinDegreeForestTest, CaterpillarNeedsLegsPlusSpine) {
  // Each spine vertex of Caterpillar(s, l) must host its l pendant leaves;
  // interior spine vertices then have degree l + 2 in any spanning tree
  // (pendants have no alternative attachment), except the spine can be
  // entered via a leaf... Pendant edges are forced; the spine path is also
  // forced (unique edges), so Δ* = l + 2 for s >= 3.
  const Graph g = gen::Caterpillar(4, 2);
  EXPECT_EQ(MinMaxDegreeSpanningForestExact(g).value(), 4);
}

TEST(MinDegreeForestTest, DecisionMatchesExact) {
  Rng rng(330);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextUint64(4));
    const Graph g = gen::ErdosRenyi(n, 0.35, rng);
    if (g.NumEdges() == 0) continue;
    const auto exact = MinMaxDegreeSpanningForestExact(g);
    ASSERT_TRUE(exact.has_value());
    for (int delta = 1; delta <= *exact + 1; ++delta) {
      const auto decision = HasSpanningForestOfDegree(g, delta);
      ASSERT_TRUE(decision.has_value());
      EXPECT_EQ(*decision, delta >= *exact) << "delta=" << delta;
    }
  }
}

TEST(MinDegreeForestTest, UpperBoundIsValidAndWithinLemma16) {
  Rng rng(331);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextUint64(4));
    const Graph g = gen::ErdosRenyi(n, 0.3, rng);
    if (g.NumEdges() == 0) continue;
    const int upper = MinDegreeForestUpperBound(g);
    const auto exact = MinMaxDegreeSpanningForestExact(g);
    ASSERT_TRUE(exact.has_value());
    const StarNumberResult s = InducedStarNumber(g);
    ASSERT_TRUE(s.exact);
    EXPECT_GE(upper, *exact);
    EXPECT_LE(upper, s.value + 1);  // Lemma 1.6 via Lemma 1.8
  }
}

TEST(MinDegreeForestTest, WorkLimitReturnsUnknown) {
  Rng rng(332);
  const Graph g = gen::ErdosRenyi(14, 0.5, rng);
  MinDegreeForestOptions tiny;
  tiny.work_limit = 1;
  // Δ=1 on a dense graph: repair fails, search immediately exhausts.
  const auto decision = HasSpanningForestOfDegree(g, 1, tiny);
  EXPECT_FALSE(decision.has_value());
}

TEST(MinDegreeForestTest, DisconnectedGraphsUseForests) {
  const Graph g = gen::DisjointUnion({gen::Star(3), gen::Path(4)});
  EXPECT_EQ(MinMaxDegreeSpanningForestExact(g).value(), 3);
  EXPECT_TRUE(HasSpanningForestOfDegree(g, 3).value());
  EXPECT_FALSE(HasSpanningForestOfDegree(g, 2).value());
}

TEST(MinDegreeForestTest, DeltaZeroOnlyForEdgeless) {
  EXPECT_TRUE(HasSpanningForestOfDegree(gen::Empty(3), 0).value());
  EXPECT_FALSE(HasSpanningForestOfDegree(gen::Path(3), 0).value());
  EXPECT_EQ(MinDegreeForestUpperBound(gen::Empty(3)), 0);
}

}  // namespace
}  // namespace nodedp

// Randomized cross-validation at higher volume than the per-module tests:
// every independent implementation pair in the repo is checked against each
// other across hundreds of seeded draws. These tests are the safety net for
// refactors of the LP/separation/repair machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "core/down_sensitivity.h"
#include "core/forest_polytope.h"
#include "core/lipschitz_extension.h"
#include "core/min_degree_forest.h"
#include "core/repair.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/star.h"
#include "graph/subgraph.h"
#include "util/random.h"

namespace nodedp {
namespace {

class StressTest : public testing::TestWithParam<uint64_t> {};

TEST_P(StressTest, CuttingPlaneVsExhaustiveLp) {
  Rng rng(GetParam() * 7919 + 13);
  for (int draw = 0; draw < 6; ++draw) {
    const int n = 4 + static_cast<int>(rng.NextUint64(6));  // 4..9
    const double p = 0.1 + 0.08 * static_cast<double>(rng.NextUint64(8));
    const Graph g = gen::ErdosRenyi(n, p, rng);
    const double delta = 1.0 + static_cast<double>(rng.NextUint64(3));
    const ForestPolytopeResult exhaustive =
        MaximizeOverForestPolytopeExhaustive(g, delta);
    ASSERT_EQ(exhaustive.status, LpStatus::kOptimal);
    ExtensionOptions lp_only;
    lp_only.use_repair_fast_path = false;
    EXPECT_NEAR(LipschitzExtensionValue(g, delta, lp_only),
                exhaustive.value, 1e-5)
        << "seed=" << GetParam() << " draw=" << draw << " n=" << n
        << " delta=" << delta;
  }
}

TEST_P(StressTest, RepairAgreesWithExactDecision) {
  Rng rng(GetParam() * 104729 + 7);
  for (int draw = 0; draw < 6; ++draw) {
    const int n = 5 + static_cast<int>(rng.NextUint64(5));
    const Graph g = gen::ErdosRenyi(n, 0.3, rng);
    if (g.NumEdges() == 0) continue;
    for (int delta = 1; delta <= 4; ++delta) {
      const auto repaired = RepairSpanningForest(g, delta);
      if (repaired.has_value()) {
        // Soundness against the exact decision procedure.
        EXPECT_TRUE(HasSpanningForestOfDegree(g, delta).value());
        EXPECT_TRUE(repaired->IsSpanningForestOf(g));
        EXPECT_LE(repaired->MaxDegree(), delta);
      } else {
        // Failure certifies an induced delta-star (Lemma 1.8).
        EXPECT_GE(InducedStarNumber(g).value, delta);
      }
    }
  }
}

TEST_P(StressTest, StarNumberMonotoneUnderSubgraphs) {
  Rng rng(GetParam() * 31337 + 3);
  const Graph g = gen::ErdosRenyi(11, 0.35, rng);
  const int s_whole = InducedStarNumber(g).value;
  for (int v = 0; v < g.NumVertices(); ++v) {
    const Graph h = RemoveVertex(g, v);
    EXPECT_LE(InducedStarNumber(h).value, s_whole) << "v=" << v;
  }
}

TEST_P(StressTest, ExtensionDeletionLipschitz) {
  // The Lipschitz property in the deletion direction: removing any single
  // vertex changes f_Δ by at most Δ (and never increases it).
  Rng rng(GetParam() * 271 + 5);
  const Graph g = gen::ErdosRenyi(9, 0.35, rng);
  for (double delta : {1.0, 2.0}) {
    const double whole = LipschitzExtensionValue(g, delta);
    for (int v = 0; v < g.NumVertices(); ++v) {
      const double sub = LipschitzExtensionValue(RemoveVertex(g, v), delta);
      EXPECT_LE(sub, whole + 1e-6);
      EXPECT_GE(sub, whole - delta - 1e-6);
    }
  }
}

TEST_P(StressTest, DownSensitivityTriangleOfIdentities) {
  // DS_fsf = s(G) (Lemma 1.7), |DS_fsf - DS_fcc| <= 1, Δ* <= s + 1
  // (Lemma 1.6) — all three on one draw.
  Rng rng(GetParam() * 17 + 1);
  const int n = 5 + static_cast<int>(rng.NextUint64(4));
  const Graph g = gen::ErdosRenyi(n, 0.35, rng);
  const double ds_sf = DownSensitivityBruteForce(g, [](const Graph& h) {
    return static_cast<double>(SpanningForestSize(h));
  });
  const double ds_cc = DownSensitivityBruteForce(g, [](const Graph& h) {
    return static_cast<double>(CountConnectedComponents(h));
  });
  const StarNumberResult s = InducedStarNumber(g);
  ASSERT_TRUE(s.exact);
  EXPECT_EQ(ds_sf, static_cast<double>(s.value));
  EXPECT_LE(std::fabs(ds_sf - ds_cc), 1.0);
  if (g.NumEdges() > 0) {
    const auto delta_star = MinMaxDegreeSpanningForestExact(g);
    ASSERT_TRUE(delta_star.has_value());
    EXPECT_LE(*delta_star, s.value + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace nodedp

// Tests for serve/ledger_wal.h — durable privacy-budget ledgers.
//
// The property under test is the serving-layer soundness promise: a charge
// recorded before a crash is still charged after replay, with the exact
// same floating-point sum, and corrupt or half-written files fail closed
// (refuse to serve) rather than open (serve with a smaller ledger).

#include "serve/ledger_wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "serve/release_server.h"
#include "util/random.h"
#include "util/status.h"

namespace nodedp {
namespace {

// A fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    char templ[] = "/tmp/nodedp_wal_XXXXXX";
    const char* made = ::mkdtemp(templ);
    EXPECT_NE(made, nullptr) << tag;
    path_ = made != nullptr ? made : "/tmp/nodedp_wal_fallback";
  }
  ~ScratchDir() {
    const std::string cleanup = "rm -rf '" + path_ + "'";
    (void)!std::system(cleanup.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

TEST(LedgerWalTest, RoundTripRestoresChargesInOrder) {
  ScratchDir dir("round_trip");
  {
    auto wal = LedgerWal::Open(dir.path());
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE((*wal)->RecordLoad("g", 2.0).ok());
    ASSERT_TRUE((*wal)->RecordCharge("g", 0.5, "release_cc").ok());
    ASSERT_TRUE((*wal)->RecordCharge("g", 0.25, "sweep eps=0.25").ok());
    ASSERT_TRUE((*wal)->RecordRefusal("g").ok());
    EXPECT_EQ((*wal)->records_appended(), 4);
  }
  auto wal = LedgerWal::Open(dir.path());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const auto restored = (*wal)->Restored("g");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->total_epsilon, 2.0);
  EXPECT_EQ(restored->num_refusals, 1);
  ASSERT_EQ(restored->charges.size(), 2u);
  EXPECT_EQ(restored->charges[0].first, "release_cc");
  EXPECT_EQ(restored->charges[0].second, 0.5);
  EXPECT_EQ(restored->charges[1].first, "sweep eps=0.25");
  EXPECT_EQ(restored->charges[1].second, 0.25);
}

TEST(LedgerWalTest, RestoredSumIsBitIdentical) {
  // 0.1 is not representable in binary; the %.17g round trip must still
  // reproduce the exact same doubles, so the replayed sum is bit-identical.
  ScratchDir dir("bit_identical");
  double spent = 0.0;
  {
    auto wal = LedgerWal::Open(dir.path());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->RecordLoad("g", 1.0).ok());
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE((*wal)->RecordCharge("g", 0.1, "q").ok());
      spent += 0.1;
    }
  }
  auto wal = LedgerWal::Open(dir.path());
  ASSERT_TRUE(wal.ok());
  const auto restored = (*wal)->Restored("g");
  ASSERT_TRUE(restored.has_value());
  double replayed = 0.0;
  for (const auto& [label, epsilon] : restored->charges) {
    replayed += epsilon;
  }
  EXPECT_EQ(replayed, spent);  // exact equality, not near
}

TEST(LedgerWalTest, EvictEndsTheLedgerLifetime) {
  ScratchDir dir("evict");
  {
    auto wal = LedgerWal::Open(dir.path());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->RecordLoad("g", 1.0).ok());
    ASSERT_TRUE((*wal)->RecordCharge("g", 0.5, "q").ok());
    ASSERT_TRUE((*wal)->RecordEvict("g").ok());
    // A later load of the same name starts a fresh budget.
    ASSERT_TRUE((*wal)->RecordLoad("g", 3.0).ok());
  }
  auto wal = LedgerWal::Open(dir.path());
  ASSERT_TRUE(wal.ok());
  const auto restored = (*wal)->Restored("g");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->total_epsilon, 3.0);
  EXPECT_TRUE(restored->charges.empty());
}

TEST(LedgerWalTest, ReloadNeverResetsCharges) {
  ScratchDir dir("reload");
  auto wal = LedgerWal::Open(dir.path());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->RecordLoad("g", 1.0).ok());
  ASSERT_TRUE((*wal)->RecordCharge("g", 0.75, "q").ok());
  // Restored ledger wins: a second load is a durable no-op.
  ASSERT_TRUE((*wal)->RecordLoad("g", 99.0).ok());
  const auto state = (*wal)->Restored("g");
  EXPECT_EQ(state->total_epsilon, 1.0);
  ASSERT_EQ(state->charges.size(), 1u);
}

TEST(LedgerWalTest, SnapshotCompactionPreservesState) {
  ScratchDir dir("snapshot");
  LedgerWal::Options options;
  options.snapshot_every = 4;  // force several compactions
  {
    auto wal = LedgerWal::Open(dir.path(), options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->RecordLoad("a", 8.0).ok());
    ASSERT_TRUE((*wal)->RecordLoad("b", 2.0).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*wal)->RecordCharge("a", 0.5, "q" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*wal)->RecordRefusal("b").ok());
  }
  // The WAL was compacted, so it holds only the tail of the history.
  const std::string wal_text = ReadFile(dir.path() + "/ledger.wal");
  EXPECT_LT(wal_text.size(), 200u) << wal_text;
  EXPECT_NE(ReadFile(dir.path() + "/ledger.snap").find("ndpw-snap v1"),
            std::string::npos);

  auto wal = LedgerWal::Open(dir.path(), options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const auto a = (*wal)->Restored("a");
  ASSERT_TRUE(a.has_value());
  ASSERT_EQ(a->charges.size(), 10u);
  EXPECT_EQ(a->charges[9].first, "q9");
  const auto b = (*wal)->Restored("b");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->num_refusals, 1);
  const std::vector<std::string> names = (*wal)->RestoredNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(LedgerWalTest, TornFinalLineIsDropped) {
  ScratchDir dir("torn");
  {
    auto wal = LedgerWal::Open(dir.path());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->RecordLoad("g", 1.0).ok());
    ASSERT_TRUE((*wal)->RecordCharge("g", 0.5, "q").ok());
  }
  // Simulate a crash mid-append: a final record with no trailing newline.
  std::string wal_text = ReadFile(dir.path() + "/ledger.wal");
  wal_text += "charge g 0.25 half-writ";  // no '\n'
  WriteFile(dir.path() + "/ledger.wal", wal_text);

  auto wal = LedgerWal::Open(dir.path());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const auto restored = (*wal)->Restored("g");
  ASSERT_TRUE(restored.has_value());
  // The torn charge never ran its mechanism; dropping it is sound.
  ASSERT_EQ(restored->charges.size(), 1u);
  EXPECT_EQ(restored->charges[0].second, 0.5);
}

TEST(LedgerWalTest, MidFileCorruptionFailsClosed) {
  ScratchDir dir("corrupt");
  {
    auto wal = LedgerWal::Open(dir.path());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->RecordLoad("g", 1.0).ok());
    ASSERT_TRUE((*wal)->RecordCharge("g", 0.5, "q").ok());
    ASSERT_TRUE((*wal)->RecordCharge("g", 0.25, "r").ok());
  }
  // Corrupt a *middle* line: this cannot be a torn tail, so replay must
  // refuse to serve rather than proceed with a partial ledger.
  std::string wal_text = ReadFile(dir.path() + "/ledger.wal");
  const std::size_t at = wal_text.find("charge g 0.5");
  ASSERT_NE(at, std::string::npos);
  wal_text.replace(at, 6, "chargX");
  WriteFile(dir.path() + "/ledger.wal", wal_text);

  auto wal = LedgerWal::Open(dir.path());
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kIoError);
}

TEST(LedgerWalTest, StaleWalAfterSnapshotIsIgnored) {
  // Crash window between snapshot rename and WAL truncate: the WAL's
  // `since` predates the snapshot's sequence, so every record in it is
  // already inside the snapshot and replaying it would double-charge.
  ScratchDir dir("stale");
  WriteFile(dir.path() + "/ledger.snap",
            "ndpw-snap v1 3\n"
            "graph g 1 0 1\n"
            "charge 0.5 q\n"
            "end\n");
  WriteFile(dir.path() + "/ledger.wal",
            "ndpw-wal v1 0\n"
            "load g 1\n"
            "charge g 0.5 q\n");
  auto wal = LedgerWal::Open(dir.path());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const auto restored = (*wal)->Restored("g");
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->charges.size(), 1u);  // not doubled
  EXPECT_EQ(restored->charges[0].second, 0.5);
}

TEST(LedgerWalTest, WalGapAfterSnapshotFailsClosed) {
  // A WAL that starts *after* the snapshot's sequence means records were
  // lost between them; serving would under-count spent budget.
  ScratchDir dir("gap");
  WriteFile(dir.path() + "/ledger.snap",
            "ndpw-snap v1 2\n"
            "graph g 1 0 0\n"
            "end\n");
  WriteFile(dir.path() + "/ledger.wal", "ndpw-wal v1 7\n");
  auto wal = LedgerWal::Open(dir.path());
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kIoError);
}

TEST(LedgerWalTest, TornSnapshotFailsClosed) {
  ScratchDir dir("torn_snap");
  WriteFile(dir.path() + "/ledger.snap",
            "ndpw-snap v1 2\n"
            "graph g 1 0 1\n");  // no charge line, no "end"
  auto wal = LedgerWal::Open(dir.path());
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kIoError);
}

TEST(LedgerWalTest, EmptyDirectoryOpensEmpty) {
  ScratchDir dir("empty");
  auto wal = LedgerWal::Open(dir.path());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE((*wal)->RestoredNames().empty());
  EXPECT_FALSE((*wal)->Restored("anything").has_value());
}

// --- ReleaseServer integration: restart adopts the restored ledger. ---

ServeGraphConfig SmallConfig(double budget) {
  ServeGraphConfig config;
  config.total_epsilon = budget;
  config.release.delta_max = 4;
  config.prewarm = false;
  return config;
}

Graph TestGnp(std::uint64_t seed) {
  Rng rng(seed);
  return gen::ErdosRenyi(60, 3.0 / 60.0, rng);
}

TEST(LedgerWalServerTest, RestartAdoptsRestoredTotalAndSpend) {
  ScratchDir dir("server_restart");
  ScratchDir graph_dir("server_graph");
  const std::string graph_path = graph_dir.path() + "/g.ndpg";

  {
    ReleaseServer server(7);
    ASSERT_TRUE(server.EnableDurableLedgers(dir.path()).ok());
    ASSERT_TRUE(server.Load("g", TestGnp(11), SmallConfig(1.0)).ok());
    ASSERT_TRUE(server.Save("g", graph_path, /*binary=*/true).ok());
    ASSERT_TRUE(server.ReleaseCc("g", 0.5).ok());
    ASSERT_TRUE(server.ReleaseCc("g", 0.25).ok());
    const auto budget = server.Budget("g");
    ASSERT_TRUE(budget.ok());
    EXPECT_EQ(budget->spent, 0.75);
  }

  // "Restart": a fresh server over the same state dir. The config passed to
  // Load asks for budget 99, but the durable ledger wins — a reload cannot
  // mint budget.
  ReleaseServer server(8);
  ASSERT_TRUE(server.EnableDurableLedgers(dir.path()).ok());
  ASSERT_TRUE(server.LoadFromFile("g", graph_path, SmallConfig(99.0)).ok());
  const auto budget = server.Budget("g");
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(budget->total, 1.0);
  EXPECT_EQ(budget->spent, 0.75);
  EXPECT_EQ(budget->num_charges, 2);
  // 0.5 over the remaining 0.25 must still be refused.
  const auto refused = server.ReleaseCc("g", 0.5);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // ...and the remaining 0.25 is still admissible.
  EXPECT_TRUE(server.ReleaseCc("g", 0.25).ok());
}

}  // namespace
}  // namespace nodedp

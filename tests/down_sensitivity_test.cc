// Tests for down-sensitivity (Definition 1.4) and the paper's combinatorial
// characterizations: Lemma 1.7 (DS_fsf = s(G)) and Lemma 1.6
// (Δ* <= DS_fsf + 1), verified against brute force on small graphs.

#include "core/down_sensitivity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/min_degree_forest.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/random.h"

namespace nodedp {
namespace {

double FsfStatistic(const Graph& g) { return SpanningForestSize(g); }
double FccStatistic(const Graph& g) { return CountConnectedComponents(g); }

TEST(DownSensitivityTest, Lemma17OnStructuredGraphs) {
  // DS_fsf(G) = s(G) exactly.
  EXPECT_EQ(DownSensitivityBruteForce(gen::Star(4), FsfStatistic), 4.0);
  EXPECT_EQ(DownSensitivityBruteForce(gen::Path(6), FsfStatistic), 2.0);
  EXPECT_EQ(DownSensitivityBruteForce(gen::Complete(5), FsfStatistic), 1.0);
  EXPECT_EQ(DownSensitivityBruteForce(gen::Empty(4), FsfStatistic), 0.0);
}

TEST(DownSensitivityTest, Lemma17OnRandomGraphs) {
  Rng rng(160);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 4 + static_cast<int>(rng.NextUint64(6));  // 4..9
    const double p = 0.1 + 0.15 * static_cast<double>(rng.NextUint64(5));
    const Graph g = gen::ErdosRenyi(n, p, rng);
    const double brute = DownSensitivityBruteForce(g, FsfStatistic);
    const StarNumberResult star = DownSensitivitySpanningForest(g);
    ASSERT_TRUE(star.exact);
    EXPECT_EQ(brute, static_cast<double>(star.value))
        << "trial=" << trial << " n=" << n << " p=" << p;
  }
}

TEST(DownSensitivityTest, FccAndFsfDifferByAtMostOne) {
  // Section 1.1.2: DS_fcc and DS_fsf differ by at most 1.
  Rng rng(161);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = gen::ErdosRenyi(8, 0.3, rng);
    const double ds_sf = DownSensitivityBruteForce(g, FsfStatistic);
    const double ds_cc = DownSensitivityBruteForce(g, FccStatistic);
    EXPECT_LE(std::fabs(ds_sf - ds_cc), 1.0) << "trial=" << trial;
  }
}

TEST(DownSensitivityTest, Lemma16DeltaStarBound) {
  // Δ* <= DS_fsf(G) + 1 = s(G) + 1, with Δ* computed exactly.
  Rng rng(162);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextUint64(5));
    const Graph g = gen::ErdosRenyi(n, 0.3, rng);
    if (g.NumEdges() == 0) continue;
    const auto delta_star = MinMaxDegreeSpanningForestExact(g);
    ASSERT_TRUE(delta_star.has_value());
    const StarNumberResult s = InducedStarNumber(g);
    ASSERT_TRUE(s.exact);
    EXPECT_LE(*delta_star, s.value + 1)
        << "trial=" << trial << " n=" << n;
  }
}

TEST(DownSensitivityTest, Lemma16CanBeTight) {
  // For stars, Δ* = s (not s+1): the only spanning tree is the star itself.
  // For an example where Δ* = s + 1... cycles: s(C_n) = 2 (n >= 4) and
  // Δ* = 2 = s? Hamilton path has degree 2, s = 2, so Δ* <= s here. The
  // bound's slack varies; verify both sides stay within [1, s+1].
  const Graph star = gen::Star(5);
  EXPECT_EQ(MinMaxDegreeSpanningForestExact(star).value(), 5);
  EXPECT_EQ(InducedStarNumber(star).value, 5);

  const Graph cycle = gen::Cycle(6);
  EXPECT_EQ(MinMaxDegreeSpanningForestExact(cycle).value(), 2);
  EXPECT_EQ(InducedStarNumber(cycle).value, 2);
}

TEST(DownSensitivityTest, MonotoneUnderInducedSubgraphs) {
  // DS is a max over induced subgraphs, so it is monotone.
  Rng rng(163);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::ErdosRenyi(8, 0.35, rng);
    const double whole = DownSensitivityBruteForce(g, FsfStatistic);
    const Graph h = RemoveVertex(g, static_cast<int>(rng.NextUint64(8)));
    const double sub = DownSensitivityBruteForce(h, FsfStatistic);
    EXPECT_LE(sub, whole);
  }
}

TEST(DownSensitivityTest, BruteForceHandlesSingletons) {
  EXPECT_EQ(DownSensitivityBruteForce(gen::Empty(1), FsfStatistic), 0.0);
  // f_cc changes by 1 when removing an isolated vertex.
  EXPECT_EQ(DownSensitivityBruteForce(gen::Empty(1), FccStatistic), 1.0);
}

}  // namespace
}  // namespace nodedp

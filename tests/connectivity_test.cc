// Tests for f_cc, f_sf, component labeling, and cut-vertex detection.

#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(ConnectivityTest, EmptyGraph) {
  EXPECT_EQ(CountConnectedComponents(Graph()), 0);
  EXPECT_EQ(SpanningForestSize(Graph()), 0);
}

TEST(ConnectivityTest, IsolatedVertices) {
  const Graph g = gen::Empty(4);
  EXPECT_EQ(CountConnectedComponents(g), 4);
  EXPECT_EQ(SpanningForestSize(g), 0);
}

TEST(ConnectivityTest, PathIsConnected) {
  const Graph g = gen::Path(9);
  EXPECT_EQ(CountConnectedComponents(g), 1);
  EXPECT_EQ(SpanningForestSize(g), 8);
}

TEST(ConnectivityTest, EquationOneIdentity) {
  // f_cc + f_sf = |V| always (Eq. (1)).
  Rng rng(42);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = gen::ErdosRenyi(30, 0.05, rng);
    EXPECT_EQ(CountConnectedComponents(g) + SpanningForestSize(g),
              g.NumVertices());
  }
}

TEST(ConnectivityTest, CliqueUnionCounts) {
  const Graph g = gen::CliqueUnion({3, 1, 5, 2});
  EXPECT_EQ(CountConnectedComponents(g), 4);
  EXPECT_EQ(SpanningForestSize(g), 11 - 4);
}

TEST(ConnectivityTest, ComponentLabelsPartition) {
  const Graph g = gen::DisjointUnion({gen::Path(3), gen::Complete(4),
                                      gen::Empty(2)});
  const std::vector<int> labels = ComponentLabels(g);
  ASSERT_EQ(static_cast<int>(labels.size()), 9);
  // Path vertices 0..2 share a label, clique 3..6 share another, isolated
  // vertices 7, 8 each have their own.
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[6]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[7], labels[8]);
  EXPECT_EQ(CountConnectedComponents(g), 4);
}

TEST(ConnectivityTest, ComponentVertexSetsSortedAndComplete) {
  const Graph g = gen::DisjointUnion({gen::Path(3), gen::Path(2)});
  const auto sets = ComponentVertexSets(g);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sets[1], (std::vector<int>{3, 4}));
}

TEST(ConnectivityTest, SameComponent) {
  const Graph g = gen::DisjointUnion({gen::Path(3), gen::Path(3)});
  EXPECT_TRUE(SameComponent(g, 0, 2));
  EXPECT_FALSE(SameComponent(g, 0, 3));
}

TEST(ConnectivityTest, CutVertexDetection) {
  // Path: interior vertices are cut vertices, endpoints are not.
  const Graph path = gen::Path(5);
  EXPECT_FALSE(IsCutVertex(path, 0));
  EXPECT_TRUE(IsCutVertex(path, 1));
  EXPECT_TRUE(IsCutVertex(path, 2));
  EXPECT_FALSE(IsCutVertex(path, 4));
  // Cycle: no cut vertices.
  const Graph cycle = gen::Cycle(6);
  for (int v = 0; v < 6; ++v) EXPECT_FALSE(IsCutVertex(cycle, v));
  // Star center is a cut vertex, leaves are not.
  const Graph star = gen::Star(4);
  EXPECT_TRUE(IsCutVertex(star, 0));
  for (int leaf = 1; leaf <= 4; ++leaf) EXPECT_FALSE(IsCutVertex(star, leaf));
  // Isolated vertex is not a cut vertex.
  EXPECT_FALSE(IsCutVertex(gen::Empty(3), 1));
}

}  // namespace
}  // namespace nodedp

// Tests for f_cc, f_sf, component labeling, and cut-vertex detection.

#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(ConnectivityTest, EmptyGraph) {
  EXPECT_EQ(CountConnectedComponents(Graph()), 0);
  EXPECT_EQ(SpanningForestSize(Graph()), 0);
}

TEST(ConnectivityTest, IsolatedVertices) {
  const Graph g = gen::Empty(4);
  EXPECT_EQ(CountConnectedComponents(g), 4);
  EXPECT_EQ(SpanningForestSize(g), 0);
}

TEST(ConnectivityTest, PathIsConnected) {
  const Graph g = gen::Path(9);
  EXPECT_EQ(CountConnectedComponents(g), 1);
  EXPECT_EQ(SpanningForestSize(g), 8);
}

TEST(ConnectivityTest, EquationOneIdentity) {
  // f_cc + f_sf = |V| always (Eq. (1)).
  Rng rng(42);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = gen::ErdosRenyi(30, 0.05, rng);
    EXPECT_EQ(CountConnectedComponents(g) + SpanningForestSize(g),
              g.NumVertices());
  }
}

TEST(ConnectivityTest, CliqueUnionCounts) {
  const Graph g = gen::CliqueUnion({3, 1, 5, 2});
  EXPECT_EQ(CountConnectedComponents(g), 4);
  EXPECT_EQ(SpanningForestSize(g), 11 - 4);
}

TEST(ConnectivityTest, ComponentLabelsPartition) {
  const Graph g = gen::DisjointUnion({gen::Path(3), gen::Complete(4),
                                      gen::Empty(2)});
  const std::vector<int> labels = ComponentLabels(g);
  ASSERT_EQ(static_cast<int>(labels.size()), 9);
  // Path vertices 0..2 share a label, clique 3..6 share another, isolated
  // vertices 7, 8 each have their own.
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[6]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[7], labels[8]);
  EXPECT_EQ(CountConnectedComponents(g), 4);
}

TEST(ConnectivityTest, ComponentVertexSetsSortedAndComplete) {
  const Graph g = gen::DisjointUnion({gen::Path(3), gen::Path(2)});
  const auto sets = ComponentVertexSets(g);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sets[1], (std::vector<int>{3, 4}));
}

TEST(ConnectivityTest, SameComponent) {
  const Graph g = gen::DisjointUnion({gen::Path(3), gen::Path(3)});
  EXPECT_TRUE(SameComponent(g, 0, 2));
  EXPECT_FALSE(SameComponent(g, 0, 3));
}

TEST(ConnectivityTest, CutVertexDetection) {
  // Path: interior vertices are cut vertices, endpoints are not.
  const Graph path = gen::Path(5);
  EXPECT_FALSE(IsCutVertex(path, 0));
  EXPECT_TRUE(IsCutVertex(path, 1));
  EXPECT_TRUE(IsCutVertex(path, 2));
  EXPECT_FALSE(IsCutVertex(path, 4));
  // Cycle: no cut vertices.
  const Graph cycle = gen::Cycle(6);
  for (int v = 0; v < 6; ++v) EXPECT_FALSE(IsCutVertex(cycle, v));
  // Star center is a cut vertex, leaves are not.
  const Graph star = gen::Star(4);
  EXPECT_TRUE(IsCutVertex(star, 0));
  for (int leaf = 1; leaf <= 4; ++leaf) EXPECT_FALSE(IsCutVertex(star, leaf));
  // Isolated vertex is not a cut vertex.
  EXPECT_FALSE(IsCutVertex(gen::Empty(3), 1));
}

TEST(ConnectivityTest, AnalyzeEdgeDeltaMergesAndInternalEdges) {
  // Components: {0,1} = 0, {2,3} = 1, {4} = 2, {5} = 3.
  const Graph g(6, {{0, 1}, {2, 3}});
  const std::vector<int> labels = ComponentLabels(g);
  // Edge 1-2 merges components 0 and 1; edge 3-4 pulls singleton 2 into
  // the same group; singleton 3 (vertex 5) is untouched.
  const ComponentDeltaAnalysis analysis =
      AnalyzeEdgeDelta(labels, 4, {Edge{1, 2}, Edge{3, 4}});
  EXPECT_EQ(analysis.num_old_components, 4);
  EXPECT_EQ(analysis.num_new_components, 2);  // {0..4} fused, {5} untouched
  EXPECT_EQ(analysis.touched, (std::vector<int>{0, 1, 2}));
  ASSERT_EQ(analysis.groups.size(), 1u);
  EXPECT_EQ(analysis.groups[0], (std::vector<int>{0, 1, 2}));
}

TEST(ConnectivityTest, AnalyzeEdgeDeltaInternalEdgeIsSizeOneGroup) {
  // A path 0-1-2 receiving chord 0-2: the component's vertex set is
  // unchanged but its edge set is not, so it must come back as a
  // single-member group (stale structure, no merge).
  const Graph g(4, {{0, 1}, {1, 2}});
  const std::vector<int> labels = ComponentLabels(g);
  const ComponentDeltaAnalysis analysis =
      AnalyzeEdgeDelta(labels, 2, {Edge{0, 2}});
  EXPECT_EQ(analysis.num_new_components, 2);
  EXPECT_EQ(analysis.touched, (std::vector<int>{0}));
  ASSERT_EQ(analysis.groups.size(), 1u);
  EXPECT_EQ(analysis.groups[0], (std::vector<int>{0}));
}

TEST(ConnectivityTest, AnalyzeEdgeDeltaEmptyBatchTouchesNothing) {
  const Graph g(5, {{0, 1}, {2, 3}});
  const ComponentDeltaAnalysis analysis =
      AnalyzeEdgeDelta(ComponentLabels(g), 3, {});
  EXPECT_TRUE(analysis.touched.empty());
  EXPECT_TRUE(analysis.groups.empty());
  EXPECT_EQ(analysis.num_new_components, 3);
}

TEST(ConnectivityTest, AnalyzeEdgeDeltaMatchesRebuiltLabels) {
  // Randomized cross-check: the label-level analysis must predict exactly
  // the component count ComponentLabels finds on the patched graph, and
  // untouched components must keep their vertex sets.
  Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 20 + static_cast<int>(rng.NextUint64() % 30);
    const Graph g = gen::ErdosRenyi(n, 1.0 / n, rng);
    const std::vector<int> labels = ComponentLabels(g);
    const int num_old = CountConnectedComponents(g);
    std::vector<std::pair<int, int>> inserts;
    std::vector<Edge> added;
    for (int k = 0; k < 4; ++k) {
      const int u = static_cast<int>(rng.NextUint64() % n);
      const int v = static_cast<int>(rng.NextUint64() % n);
      if (u == v) continue;
      const Edge e{std::min(u, v), std::max(u, v)};
      if (g.HasEdge(e.u, e.v)) continue;
      inserts.emplace_back(e.u, e.v);
    }
    const Result<Graph::EdgeDelta> delta = g.ApplyEdgeDelta(inserts);
    ASSERT_TRUE(delta.ok());
    const ComponentDeltaAnalysis analysis =
        AnalyzeEdgeDelta(labels, num_old, delta->added);
    EXPECT_EQ(analysis.num_new_components,
              CountConnectedComponents(delta->graph));
    // Untouched old components keep their vertex sets in the new labeling.
    std::vector<bool> touched(num_old, false);
    for (int label : analysis.touched) touched[label] = true;
    const std::vector<int> new_labels = ComponentLabels(delta->graph);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (touched[labels[u]] || touched[labels[v]]) continue;
        EXPECT_EQ(labels[u] == labels[v], new_labels[u] == new_labels[v]);
      }
    }
  }
}

}  // namespace
}  // namespace nodedp

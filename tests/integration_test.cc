// Cross-module integration tests: the full pipeline from graph I/O through
// Algorithm 1, and end-to-end accuracy against the Theorem 1.3 bound shape.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/baselines.h"
#include "core/min_degree_forest.h"
#include "core/private_cc.h"
#include "eval/stats.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(IntegrationTest, SerializeThenReleasePipeline) {
  // Generate -> serialize -> parse -> privately release: the estimate from
  // the parsed graph matches the original graph's (same seed).
  Rng gen_rng(71);
  const Graph g = gen::RandomEntityGraph(25, 3, gen_rng);
  std::stringstream stream;
  WriteEdgeList(g, stream);
  const Result<Graph> parsed = ReadEdgeList(stream);
  ASSERT_TRUE(parsed.ok());

  Rng rng_a(72);
  Rng rng_b(72);
  const auto release_a = PrivateConnectedComponents(g, 1.0, rng_a);
  const auto release_b = PrivateConnectedComponents(*parsed, 1.0, rng_b);
  ASSERT_TRUE(release_a.ok());
  ASSERT_TRUE(release_b.ok());
  EXPECT_EQ(release_a->estimate, release_b->estimate);
}

TEST(IntegrationTest, ErrorWithinTheoremBoundOnBoundedDegreeFamilies) {
  // Theorem 1.3 gives error Δ*·Õ(ln ln n/ε) w.h.p. We check a concrete,
  // generous instantiation of the bound on families with known small Δ*:
  // |error| <= Δ*·C·ln(ln n + e)·ln(1/β)... Use C = 24 and β = 0.05 to make
  // flakiness negligible while still rejecting trivial failures (error ~ n).
  struct Case {
    Graph graph;
    int delta_star_upper;
  };
  Rng workload_rng(73);
  std::vector<Case> cases;
  cases.push_back({gen::Path(128), 2});
  cases.push_back({gen::Grid(8, 16), 3});
  cases.push_back({gen::RandomTreeLike(128, 3, 0.2, workload_rng), 3});
  cases.push_back({gen::RandomEntityGraph(40, 4, workload_rng), 2});

  Rng rng(74);
  for (const Case& c : cases) {
    const double n = c.graph.NumVertices();
    const double epsilon = 1.0;
    const double bound = c.delta_star_upper * 24.0 *
                         std::log(std::log(n) + M_E) *
                         std::log(1.0 / 0.05) / epsilon;
    const double truth = SpanningForestSize(c.graph);
    std::vector<double> errors;
    for (int t = 0; t < 20; ++t) {
      const auto release = PrivateSpanningForestSize(c.graph, epsilon, rng);
      ASSERT_TRUE(release.ok());
      errors.push_back(release->estimate - truth);
    }
    // Median error comfortably within the bound; individual trials may
    // exceed it with small probability.
    EXPECT_LT(SummarizeErrors(errors).median_abs, bound)
        << "n=" << n << " bound=" << bound;
  }
}

TEST(IntegrationTest, OursBeatsNaiveNodeDpOnSparseGraphs) {
  // The headline qualitative claim: on graphs with many components and
  // small Δ*, Algorithm 1's error is far below the naive Lap(n/ε) release.
  Rng rng(75);
  const Graph g = gen::RandomEntityGraph(50, 3, rng);
  const double truth = CountConnectedComponents(g);
  std::vector<double> ours;
  std::vector<double> naive;
  for (int t = 0; t < 30; ++t) {
    const auto release = PrivateConnectedComponents(g, 1.0, rng);
    ASSERT_TRUE(release.ok());
    ours.push_back(release->estimate - truth);
    naive.push_back(NaiveNodeDpConnectedComponents(g, 1.0, rng) - truth);
  }
  EXPECT_LT(SummarizeErrors(ours).median_abs * 3.0,
            SummarizeErrors(naive).median_abs);
}

TEST(IntegrationTest, DeltaStarUpperBoundConsistentWithSelection) {
  // On a geometric graph, Δ* <= 6; the constructive upper bound must agree,
  // and f_Δ must be exact from that Δ on.
  Rng rng(76);
  const Graph g = gen::RandomGeometric(100, 0.15, rng);
  if (g.NumEdges() == 0) GTEST_SKIP();
  const int upper = MinDegreeForestUpperBound(g);
  EXPECT_LE(upper, 6);
  EXPECT_NEAR(LipschitzExtensionValue(g, upper), SpanningForestSize(g),
              1e-5);
}

TEST(IntegrationTest, WorstCaseInputStillPrivateShapedNoise) {
  // The complete graph is the hard instance (Δ* = 2 though! K_n has a
  // Hamiltonian path) — the algorithm should do well. The hard instance for
  // accuracy is the star, where Δ* = n - 1; there the algorithm must pay
  // ~n noise but remains well-defined.
  Rng rng(77);
  const Graph star = gen::Star(63);
  const auto release = PrivateSpanningForestSize(star, 1.0, rng);
  ASSERT_TRUE(release.ok());
  EXPECT_GE(release->selected_delta, 1);
  // Pre-noise value is f_Δ̂ = min(Δ̂, 63).
  EXPECT_NEAR(release->extension_value,
              std::min<double>(release->selected_delta, 63.0), 1e-5);
}

TEST(IntegrationTest, ComponentCountAdditivityUnderDisjointUnion) {
  Rng rng(78);
  const Graph a = gen::Path(20);
  const Graph b = gen::CliqueUnion({3, 3});
  const Graph whole = gen::DisjointUnion({a, b});
  EXPECT_EQ(CountConnectedComponents(whole),
            CountConnectedComponents(a) + CountConnectedComponents(b));
  const auto release = PrivateConnectedComponents(whole, 2.0, rng);
  ASSERT_TRUE(release.ok());
  EXPECT_NEAR(release->estimate, 3.0, 40.0);  // sanity: finite, same scale
}

}  // namespace
}  // namespace nodedp

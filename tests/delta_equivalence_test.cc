// Tests for the streaming-update path at the family level: the incremental
// ExtensionFamily constructor (adopt untouched components, rebuild merged
// ones) must be indistinguishable from a cold rebuild on the patched graph
// — bit-identical Values() tables at any pool width, with queries racing
// the incremental re-warm served exactly (this file runs under TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "core/extension_family.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/parallel.h"
#include "util/random.h"

namespace nodedp {
namespace {

constexpr double kTol = 1e-6;

// A varied multi-component graph: G(n, p) blocks, cliques, paths, and
// isolated vertices, sized for Debug-friendly LP work (the same shape the
// construction-equivalence suite uses).
Graph RandomMultiComponentGraph(Rng& rng) {
  std::vector<Graph> parts;
  const int num_parts = 1 + static_cast<int>(rng.NextUint64(4));
  for (int p = 0; p < num_parts; ++p) {
    switch (rng.NextUint64(4)) {
      case 0:
        parts.push_back(gen::ErdosRenyi(
            2 + static_cast<int>(rng.NextUint64(14)), 0.25, rng));
        break;
      case 1:
        parts.push_back(
            gen::Complete(2 + static_cast<int>(rng.NextUint64(5))));
        break;
      case 2:
        parts.push_back(gen::Path(1 + static_cast<int>(rng.NextUint64(10))));
        break;
      default:
        parts.push_back(gen::Empty(1 + static_cast<int>(rng.NextUint64(4))));
        break;
    }
  }
  return gen::DisjointUnion(parts);
}

// A random insert batch: a few uniformly random pairs (crossing or internal
// to components, sometimes resident or repeated — ApplyEdgeDelta must
// filter those) over the whole vertex range.
std::vector<std::pair<int, int>> RandomBatch(const Graph& g, Rng& rng) {
  std::vector<std::pair<int, int>> batch;
  const int n = g.NumVertices();
  if (n < 2) return batch;
  const int size = static_cast<int>(rng.NextUint64(6));
  for (int k = 0; k < size; ++k) {
    const int u = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n)));
    if (u == v) continue;
    batch.emplace_back(u, v);
  }
  return batch;
}

TEST(DeltaEquivalenceTest, IncrementalMatchesColdRebuildOn200Graphs) {
  // The core equivalence sweep: for 200 random multi-component graphs and
  // random insert batches, ApplyEdgeDelta + incremental family + re-warm
  // must produce bit-identical Values() tables to a cold rebuild on the
  // patched graph, at pool widths 1 and 4 alike.
  Rng rng(8100);
  const std::vector<double> grid = {1.0, 2.0, 4.0, 8.0};
  ThreadPool sequential_pool(1);
  ThreadPool sharded_pool(4);
  for (int trial = 0; trial < 200; ++trial) {
    const Graph g = RandomMultiComponentGraph(rng);
    const std::vector<std::pair<int, int>> batch = RandomBatch(g, rng);
    const Result<Graph::EdgeDelta> delta = g.ApplyEdgeDelta(batch);
    ASSERT_TRUE(delta.ok()) << "trial " << trial;

    std::vector<double> cold_values;
    {
      ScopedThreadPool scoped(&sequential_pool);
      ExtensionFamily cold(delta->graph);
      const auto values = cold.Values(grid);
      ASSERT_TRUE(values.ok()) << "trial " << trial;
      cold_values = *values;
    }

    for (ThreadPool* pool : {&sequential_pool, &sharded_pool}) {
      ScopedThreadPool scoped(pool);
      ExtensionFamily base(g);
      ASSERT_TRUE(base.Warm(grid).ok()) << "trial " << trial;
      ExtensionFamily incremental(delta->graph, base, delta->added);
      // Every component is either adopted or rebuilt, never both/neither.
      EXPECT_EQ(incremental.components_adopted() +
                    incremental.components_invalidated(),
                incremental.num_components())
          << "trial " << trial;
      EXPECT_EQ(static_cast<int>(incremental.SpanningForestSizeValue()),
                SpanningForestSize(delta->graph))
          << "trial " << trial;
      const auto values = incremental.Values(grid);
      ASSERT_TRUE(values.ok()) << "trial " << trial;
      // Bit-identical across the update path and thread widths, not merely
      // close: untouched components reuse their solved cells verbatim and
      // merged ones re-solve an LP whose optimum is seed-independent.
      EXPECT_EQ(*values, cold_values) << "trial " << trial;
    }
  }
}

TEST(DeltaEquivalenceTest, AdoptionSkipsSolvedCells) {
  // A delta confined to one block of a many-block graph: the incremental
  // warm must re-solve only the merged component's cells — strictly less
  // settle work than the cold rebuild pays — and still match it.
  Rng rng(8200);
  std::vector<Graph> parts;
  for (int i = 0; i < 6; ++i) {
    parts.push_back(gen::ErdosRenyi(30, 0.08, rng));
  }
  const Graph g = gen::DisjointUnion(parts);
  // Merge the first two blocks; leave the rest untouched.
  const Result<Graph::EdgeDelta> delta = g.ApplyEdgeDelta({{5, 35}});
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->added.size(), 1u);
  const std::vector<double> grid = {1.0, 2.0, 4.0, 8.0};

  ExtensionFamily base(g);
  ASSERT_TRUE(base.Warm(grid).ok());
  ExtensionFamily incremental(delta->graph, base, delta->added);
  EXPECT_GT(incremental.components_adopted(), 0);
  ASSERT_TRUE(incremental.Warm(grid).ok());

  ExtensionFamily cold(delta->graph);
  ASSERT_TRUE(cold.Warm(grid).ok());

  const auto incremental_stats = incremental.stats();
  const auto cold_stats = cold.stats();
  EXPECT_LT(incremental_stats.lp_evaluations + incremental_stats.fast_certificates,
            cold_stats.lp_evaluations + cold_stats.fast_certificates);
  EXPECT_EQ(incremental.Values(grid).value(), cold.Values(grid).value());
}

TEST(DeltaEquivalenceTest, MidWarmBaseAdoptionIsExact) {
  // The base may still be warming when the delta arrives (its components
  // not yet induced, its cells unsolved): adoption must leave those cells
  // lazy and re-solve them to the same values.
  Rng rng(8300);
  const std::vector<double> grid = {1.0, 2.0, 4.0, 8.0};
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = RandomMultiComponentGraph(rng);
    const std::vector<std::pair<int, int>> batch = RandomBatch(g, rng);
    const Result<Graph::EdgeDelta> delta = g.ApplyEdgeDelta(batch);
    ASSERT_TRUE(delta.ok());

    // Deferred, un-warmed base: nothing induced, nothing solved.
    ExtensionFamily base(g, {}, ExtensionFamily::DeferInduction{});
    ExtensionFamily incremental(delta->graph, base, delta->added);
    ASSERT_TRUE(incremental.Warm(grid).ok()) << "trial " << trial;

    ExtensionFamily cold(delta->graph);
    EXPECT_EQ(incremental.Values(grid).value(), cold.Values(grid).value())
        << "trial " << trial;
  }
}

TEST(DeltaEquivalenceTest, ChainedDeltasStayExact) {
  // Updates compose: apply three batches in sequence, each family derived
  // incrementally from the previous one, and compare the end state to a
  // cold build of the final graph.
  Rng rng(8400);
  const std::vector<double> grid = {1.0, 2.0, 4.0};
  Graph current = RandomMultiComponentGraph(rng);
  auto family = std::make_unique<ExtensionFamily>(current);
  ASSERT_TRUE(family->Warm(grid).ok());
  for (int step = 0; step < 3; ++step) {
    const std::vector<std::pair<int, int>> batch = RandomBatch(current, rng);
    const Result<Graph::EdgeDelta> delta = current.ApplyEdgeDelta(batch);
    ASSERT_TRUE(delta.ok()) << "step " << step;
    auto next = std::make_unique<ExtensionFamily>(delta->graph, *family,
                                                  delta->added);
    ASSERT_TRUE(next->Warm(grid).ok()) << "step " << step;
    family = std::move(next);
    current = delta->graph;
  }
  ExtensionFamily cold(current);
  EXPECT_EQ(family->Values(grid).value(), cold.Values(grid).value());
}

TEST(DeltaEquivalenceTest, QueriesDuringIncrementalRewarmAreExact) {
  // The serving guarantee behind publish-then-warm: queries racing the
  // incremental re-warm block only on invalidated cells and return exactly
  // the patched graph's values. Run under TSan in CI, this is the
  // update-while-querying proof at the family level.
  Rng rng(8500);
  std::vector<Graph> parts;
  for (int i = 0; i < 5; ++i) {
    parts.push_back(gen::ErdosRenyi(24, 0.12, rng));
  }
  const Graph g = gen::DisjointUnion(parts);
  const Result<Graph::EdgeDelta> delta =
      g.ApplyEdgeDelta({{0, 30}, {50, 75}, {2, 3}});
  ASSERT_TRUE(delta.ok());
  const std::vector<double> grid = {1.0, 2.0, 4.0, 8.0};

  ExtensionFamily reference(delta->graph);
  const std::vector<double> expected = reference.Values(grid).value();

  ExtensionFamily base(g);
  ASSERT_TRUE(base.Warm(grid).ok());
  ExtensionFamily incremental(delta->graph, base, delta->added);
  incremental.WarmAsync(grid);

  constexpr int kCallers = 4;
  std::vector<std::vector<double>> got(kCallers);
  std::vector<std::thread> threads;
  threads.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    threads.emplace_back([&incremental, &got, &grid, i] {
      if (i % 2 == 0) {
        got[i] = incremental.Values(grid).value();
      } else {
        got[i].reserve(grid.size());
        for (double delta_value : grid) {
          got[i].push_back(incremental.Value(delta_value).value());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(incremental.WaitWarm().ok());

  for (int i = 0; i < kCallers; ++i) {
    ASSERT_EQ(got[i].size(), expected.size()) << "caller " << i;
    for (std::size_t d = 0; d < expected.size(); ++d) {
      EXPECT_NEAR(got[i][d], expected[d], kTol)
          << "caller " << i << " delta " << grid[d];
    }
  }
}

TEST(DeltaEquivalenceTest, WholeGraphModeRebuildsCold) {
  // decompose_components = false has no per-component state to adopt: the
  // incremental constructor must fall back to a cold build and still match.
  Rng rng(8600);
  const Graph g = gen::ErdosRenyi(30, 0.1, rng);
  const Result<Graph::EdgeDelta> delta = g.ApplyEdgeDelta({{0, 1}, {2, 9}});
  ASSERT_TRUE(delta.ok());
  ExtensionOptions options;
  options.decompose_components = false;
  const std::vector<double> grid = {1.0, 2.0, 4.0};

  ExtensionFamily base(g, options);
  ASSERT_TRUE(base.Warm(grid).ok());
  ExtensionFamily incremental(delta->graph, base, delta->added);
  EXPECT_EQ(incremental.components_adopted(), 0);

  ExtensionFamily cold(delta->graph, options);
  EXPECT_EQ(incremental.Values(grid).value(), cold.Values(grid).value());
}

}  // namespace
}  // namespace nodedp

// Tests for the experiment-harness helpers (stats, table printing).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "eval/stats.h"
#include "eval/table.h"

namespace nodedp {
namespace {

TEST(StatsTest, SummaryOnKnownSample) {
  const std::vector<double> errors = {-2.0, -1.0, 0.0, 1.0, 2.0};
  const ErrorSummary s = SummarizeErrors(errors);
  EXPECT_EQ(s.count, 5);
  EXPECT_NEAR(s.mean, 0.0, 1e-12);
  EXPECT_NEAR(s.mean_abs, 1.2, 1e-12);
  EXPECT_NEAR(s.median_abs, 1.0, 1e-12);
  EXPECT_NEAR(s.max_abs, 2.0, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, EmptySample) {
  const ErrorSummary s = SummarizeErrors({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.mean_abs, 0.0);
}

TEST(StatsTest, QuantileNearestRank) {
  const std::vector<double> values = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_EQ(Quantile(values, 0.5), 3.0);
  EXPECT_EQ(Quantile(values, 0.9), 5.0);
  EXPECT_EQ(Quantile(values, 1.0), 5.0);
}

TEST(StatsTest, SingleElement) {
  EXPECT_EQ(Quantile({7.0}, 0.5), 7.0);
  const ErrorSummary s = SummarizeErrors({-3.0});
  EXPECT_EQ(s.median_abs, 3.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(TableTest, AlignedOutput) {
  Table table({"n", "error"});
  table.Cell(10).Cell(1.5, 2);
  table.EndRow();
  table.Cell(1000).Cell(0.25, 2);
  table.EndRow();
  std::stringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("n"), std::string::npos);
  EXPECT_NE(text.find("1000"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.Cell(1).Cell("x");
  table.EndRow();
  std::stringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,x\n");
}

TEST(TableDeathTest, RowArityEnforced) {
  Table table({"a", "b"});
  table.Cell(1);
  EXPECT_DEATH(table.EndRow(), "CHECK failed");
}

}  // namespace
}  // namespace nodedp

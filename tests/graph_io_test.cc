// Tests for edge-list serialization, including malformed-input handling.

#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(GraphIoTest, RoundTrip) {
  Rng rng(808);
  const Graph g = gen::ErdosRenyi(25, 0.2, rng);
  std::stringstream stream;
  WriteEdgeList(g, stream);
  const Result<Graph> back = ReadEdgeList(stream);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumVertices(), g.NumVertices());
  EXPECT_EQ(back->Edges(), g.Edges());
}

TEST(GraphIoTest, CommentsAndBlankLines) {
  std::stringstream stream("# a graph\n\n3 2\n0 1\n\n# middle comment\n1 2\n");
  const Result<Graph> g = ReadEdgeList(stream);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3);
  EXPECT_EQ(g->NumEdges(), 2);
}

TEST(GraphIoTest, MissingHeader) {
  std::stringstream stream("# nothing\n");
  const Result<Graph> g = ReadEdgeList(stream);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, MalformedToken) {
  std::stringstream stream("3 1\n0 x\n");
  EXPECT_FALSE(ReadEdgeList(stream).ok());
}

TEST(GraphIoTest, WrongArity) {
  std::stringstream stream("3 1\n0 1 2\n");
  EXPECT_FALSE(ReadEdgeList(stream).ok());
}

TEST(GraphIoTest, OutOfRangeEndpoint) {
  std::stringstream stream("3 1\n0 5\n");
  const Result<Graph> g = ReadEdgeList(stream);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("out of range"), std::string::npos);
}

TEST(GraphIoTest, SelfLoopRejected) {
  std::stringstream stream("3 1\n1 1\n");
  ASSERT_FALSE(ReadEdgeList(stream).ok());
}

TEST(GraphIoTest, EdgeCountMismatch) {
  std::stringstream stream("3 2\n0 1\n");
  const Result<Graph> g = ReadEdgeList(stream);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("mismatch"), std::string::npos);
}

TEST(GraphIoTest, NegativeHeaderRejected) {
  std::stringstream stream("-3 0\n");
  EXPECT_FALSE(ReadEdgeList(stream).ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  const Graph g = gen::Grid(3, 3);
  const std::string path = testing::TempDir() + "/nodedp_graph_io_test.txt";
  ASSERT_TRUE(WriteEdgeListFile(g, path).ok());
  const Result<Graph> back = ReadEdgeListFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Edges(), g.Edges());
}

TEST(GraphIoTest, MissingFile) {
  const Result<Graph> g = ReadEdgeListFile("/nonexistent/path/graph.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace nodedp

// Tests for graph serialization — the text edge list and the NDPG binary
// format — including malformed-input and error-path handling.

#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(GraphIoTest, RoundTrip) {
  Rng rng(808);
  const Graph g = gen::ErdosRenyi(25, 0.2, rng);
  std::stringstream stream;
  WriteEdgeList(g, stream);
  const Result<Graph> back = ReadEdgeList(stream);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumVertices(), g.NumVertices());
  EXPECT_EQ(back->Edges(), g.Edges());
}

TEST(GraphIoTest, CommentsAndBlankLines) {
  std::stringstream stream("# a graph\n\n3 2\n0 1\n\n# middle comment\n1 2\n");
  const Result<Graph> g = ReadEdgeList(stream);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3);
  EXPECT_EQ(g->NumEdges(), 2);
}

TEST(GraphIoTest, MissingHeader) {
  std::stringstream stream("# nothing\n");
  const Result<Graph> g = ReadEdgeList(stream);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, MalformedToken) {
  std::stringstream stream("3 1\n0 x\n");
  EXPECT_FALSE(ReadEdgeList(stream).ok());
}

TEST(GraphIoTest, WrongArity) {
  std::stringstream stream("3 1\n0 1 2\n");
  EXPECT_FALSE(ReadEdgeList(stream).ok());
}

TEST(GraphIoTest, OutOfRangeEndpoint) {
  std::stringstream stream("3 1\n0 5\n");
  const Result<Graph> g = ReadEdgeList(stream);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("out of range"), std::string::npos);
}

TEST(GraphIoTest, SelfLoopRejected) {
  std::stringstream stream("3 1\n1 1\n");
  ASSERT_FALSE(ReadEdgeList(stream).ok());
}

TEST(GraphIoTest, EdgeCountMismatch) {
  std::stringstream stream("3 2\n0 1\n");
  const Result<Graph> g = ReadEdgeList(stream);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("mismatch"), std::string::npos);
}

TEST(GraphIoTest, NegativeHeaderRejected) {
  std::stringstream stream("-3 0\n");
  EXPECT_FALSE(ReadEdgeList(stream).ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  const Graph g = gen::Grid(3, 3);
  const std::string path = testing::TempDir() + "/nodedp_graph_io_test.txt";
  ASSERT_TRUE(WriteEdgeListFile(g, path).ok());
  const Result<Graph> back = ReadEdgeListFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Edges(), g.Edges());
}

TEST(GraphIoTest, MissingFile) {
  const Result<Graph> g = ReadEdgeListFile("/nonexistent/path/graph.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, HeaderCountsBeyondIntRejected) {
  std::stringstream stream("5000000000 0\n");
  const Result<Graph> g = ReadEdgeList(stream);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("exceed int range"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

namespace {

void AppendU32(std::string* s, std::uint32_t x) {
  s->push_back(static_cast<char>(x));
  s->push_back(static_cast<char>(x >> 8));
  s->push_back(static_cast<char>(x >> 16));
  s->push_back(static_cast<char>(x >> 24));
}

void AppendU64(std::string* s, std::uint64_t x) {
  AppendU32(s, static_cast<std::uint32_t>(x));
  AppendU32(s, static_cast<std::uint32_t>(x >> 32));
}

// Hand-built NDPG document for error-path tests.
std::string BinaryDocument(const std::string& magic, std::uint32_t version,
                           std::int64_t num_vertices, std::int64_t num_edges,
                           const std::vector<std::pair<int, int>>& edges) {
  std::string doc = magic;
  AppendU32(&doc, version);
  AppendU64(&doc, static_cast<std::uint64_t>(num_vertices));
  AppendU64(&doc, static_cast<std::uint64_t>(num_edges));
  for (const auto& [u, v] : edges) {
    AppendU32(&doc, static_cast<std::uint32_t>(u));
    AppendU32(&doc, static_cast<std::uint32_t>(v));
  }
  return doc;
}

Result<Graph> ReadBinaryString(const std::string& doc) {
  std::istringstream in(doc, std::ios::binary);
  return ReadGraphBinary(in);
}

}  // namespace

TEST(GraphBinaryIoTest, RoundTrip) {
  Rng rng(909);
  const Graph g = gen::ErdosRenyi(300, 0.02, rng);
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, stream).ok());
  const Result<Graph> back = ReadGraphBinary(stream);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumVertices(), g.NumVertices());
  EXPECT_EQ(back->Edges(), g.Edges());
}

TEST(GraphBinaryIoTest, EmptyAndEdgelessGraphsRoundTrip) {
  for (const Graph& g : {Graph(), Graph(5, {})}) {
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(WriteGraphBinary(g, stream).ok());
    const Result<Graph> back = ReadGraphBinary(stream);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->NumVertices(), g.NumVertices());
    EXPECT_EQ(back->NumEdges(), 0);
  }
}

TEST(GraphBinaryIoTest, FileRoundTripAndAutoDetect) {
  Rng rng(910);
  const Graph g = gen::ErdosRenyi(200, 0.03, rng);
  const std::string binary_path = testing::TempDir() + "/nodedp_io_test.ndpg";
  const std::string text_path = testing::TempDir() + "/nodedp_io_test.txt";
  ASSERT_TRUE(WriteGraphBinaryFile(g, binary_path).ok());
  ASSERT_TRUE(WriteEdgeListFile(g, text_path).ok());

  const Result<Graph> from_binary = ReadGraphBinaryFile(binary_path);
  ASSERT_TRUE(from_binary.ok());
  EXPECT_EQ(from_binary->Edges(), g.Edges());

  // ReadGraphAnyFile dispatches on the magic bytes.
  const Result<Graph> any_binary = ReadGraphAnyFile(binary_path);
  const Result<Graph> any_text = ReadGraphAnyFile(text_path);
  ASSERT_TRUE(any_binary.ok());
  ASSERT_TRUE(any_text.ok());
  EXPECT_EQ(any_binary->Edges(), g.Edges());
  EXPECT_EQ(any_text->Edges(), g.Edges());
}

TEST(GraphBinaryIoTest, TruncatedHeaderRejected) {
  const Result<Graph> g = ReadBinaryString("NDPG\x01");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
  EXPECT_NE(g.status().message().find("truncated header"), std::string::npos);
}

TEST(GraphBinaryIoTest, BadMagicRejected) {
  const Result<Graph> g =
      ReadBinaryString(BinaryDocument("XXXX", 1, 3, 1, {{0, 1}}));
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("bad magic"), std::string::npos);
}

TEST(GraphBinaryIoTest, VersionMismatchRejected) {
  const Result<Graph> g =
      ReadBinaryString(BinaryDocument("NDPG", 2, 3, 1, {{0, 1}}));
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("unsupported format version 2"),
            std::string::npos);
}

TEST(GraphBinaryIoTest, TruncatedEdgeSectionRejected) {
  // Header promises 3 edges, payload carries 1.
  const Result<Graph> g =
      ReadBinaryString(BinaryDocument("NDPG", 1, 4, 3, {{0, 1}}));
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("truncated edge section"),
            std::string::npos);
}

TEST(GraphBinaryIoTest, OutOfRangeEndpointRejected) {
  const Result<Graph> g =
      ReadBinaryString(BinaryDocument("NDPG", 1, 3, 1, {{0, 7}}));
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("endpoint out of range"),
            std::string::npos);
}

TEST(GraphBinaryIoTest, UnnormalizedAndUnsortedRecordsRejected) {
  // v <= u (self-loop / swapped) is rejected...
  EXPECT_FALSE(
      ReadBinaryString(BinaryDocument("NDPG", 1, 3, 1, {{1, 1}})).ok());
  EXPECT_FALSE(
      ReadBinaryString(BinaryDocument("NDPG", 1, 3, 1, {{2, 1}})).ok());
  // ...as are out-of-order and duplicate records.
  const Result<Graph> unsorted =
      ReadBinaryString(BinaryDocument("NDPG", 1, 4, 2, {{1, 2}, {0, 1}}));
  ASSERT_FALSE(unsorted.ok());
  EXPECT_NE(unsorted.status().message().find("not strictly ascending"),
            std::string::npos);
  EXPECT_FALSE(
      ReadBinaryString(BinaryDocument("NDPG", 1, 4, 2, {{0, 1}, {0, 1}}))
          .ok());
}

TEST(GraphBinaryIoTest, CountsBeyondIntRangeRejected) {
  // The int64 header guard: counts that would overflow int32 are refused
  // before any allocation, not truncated into UB.
  const Result<Graph> vertices =
      ReadBinaryString(BinaryDocument("NDPG", 1, 5000000000LL, 0, {}));
  ASSERT_FALSE(vertices.ok());
  EXPECT_NE(vertices.status().message().find("vertex count out of int range"),
            std::string::npos);
  const Result<Graph> edges =
      ReadBinaryString(BinaryDocument("NDPG", 1, 3, 5000000000LL, {}));
  ASSERT_FALSE(edges.ok());
  EXPECT_NE(edges.status().message().find("edge count out of int range"),
            std::string::npos);
}

TEST(GraphBinaryIoTest, MissingFile) {
  EXPECT_EQ(ReadGraphBinaryFile("/nonexistent/g.ndpg").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(ReadGraphAnyFile("/nonexistent/g.ndpg").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace nodedp

// Tests for the sublinear (non-private) component-count estimator.

#include "core/sublinear_cc.h"

#include <gtest/gtest.h>

#include <vector>

#include "eval/stats.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(SublinearCcTest, ExactOnSmallComponentsWithFullSampling) {
  // With cutoff above every component size the estimator is unbiased; with
  // many samples it concentrates near the truth.
  Rng rng(1600);
  const Graph g = gen::CliqueUnion({3, 3, 3, 2, 1});
  const double truth = CountConnectedComponents(g);
  SublinearCcOptions options;
  options.num_samples = 20000;
  options.bfs_cutoff = 10;
  const auto estimate = SublinearConnectedComponents(g, rng, options);
  EXPECT_NEAR(estimate.estimate, truth, truth * 0.1);
}

TEST(SublinearCcTest, EmptyAndEdgelessGraphs) {
  Rng rng(1601);
  EXPECT_EQ(SublinearConnectedComponents(Graph(), rng).estimate, 0.0);
  // Edgeless: every component has size 1 -> exact regardless of sampling.
  const auto estimate = SublinearConnectedComponents(gen::Empty(50), rng);
  EXPECT_NEAR(estimate.estimate, 50.0, 1e-9);
}

TEST(SublinearCcTest, TruncationBiasIsDownwardAndBounded) {
  // One giant component + many singletons: truncation drops the giant's
  // contribution (bias at most ~n/cutoff), never overestimates on average.
  Rng rng(1602);
  const Graph g = gen::DisjointUnion({gen::Path(200), gen::Empty(100)});
  const double truth = CountConnectedComponents(g);  // 101
  SublinearCcOptions options;
  options.num_samples = 5000;
  options.bfs_cutoff = 16;
  const auto estimate = SublinearConnectedComponents(g, rng, options);
  EXPECT_LE(estimate.estimate, truth + 8.0);
  EXPECT_GE(estimate.estimate, truth - 300.0 / options.bfs_cutoff - 8.0);
}

TEST(SublinearCcTest, ErrorShrinksWithSamples) {
  Rng rng(1603);
  const Graph g = gen::RandomEntityGraph(150, 4, rng);
  const double truth = CountConnectedComponents(g);
  auto mean_abs = [&](int samples) {
    SublinearCcOptions options;
    options.num_samples = samples;
    options.bfs_cutoff = 8;
    std::vector<double> errors;
    for (int t = 0; t < 40; ++t) {
      errors.push_back(
          SublinearConnectedComponents(g, rng, options).estimate - truth);
    }
    return SummarizeErrors(errors).mean_abs;
  };
  EXPECT_LT(mean_abs(2048), mean_abs(32));
}

TEST(SublinearCcTest, ReportsWorkDone) {
  Rng rng(1604);
  const Graph g = gen::Path(100);
  SublinearCcOptions options;
  options.num_samples = 10;
  options.bfs_cutoff = 5;
  const auto estimate = SublinearConnectedComponents(g, rng, options);
  EXPECT_GT(estimate.vertices_visited, 0);
  // Truncation caps per-sample BFS work near the cutoff.
  EXPECT_LE(estimate.vertices_visited, options.num_samples *
                                           (options.bfs_cutoff + 1));
}

TEST(SublinearCcDeathTest, InvalidOptions) {
  Rng rng(1);
  SublinearCcOptions bad;
  bad.num_samples = 0;
  EXPECT_DEATH(SublinearConnectedComponents(gen::Path(3), rng, bad),
               "CHECK failed");
}

}  // namespace
}  // namespace nodedp

// Tests for the sublinear (non-private) component-count estimator.

#include "core/sublinear_cc.h"

#include <gtest/gtest.h>

#include <vector>

#include "eval/stats.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(SublinearCcTest, ExactOnSmallComponentsWithFullSampling) {
  // With cutoff above every component size the estimator is unbiased; with
  // many samples it concentrates near the truth.
  Rng rng(1600);
  const Graph g = gen::CliqueUnion({3, 3, 3, 2, 1});
  const double truth = CountConnectedComponents(g);
  SublinearCcOptions options;
  options.num_samples = 20000;
  options.bfs_cutoff = 10;
  const auto estimate = SublinearConnectedComponents(g, rng, options);
  EXPECT_NEAR(estimate.estimate, truth, truth * 0.1);
}

TEST(SublinearCcTest, EmptyAndEdgelessGraphs) {
  Rng rng(1601);
  EXPECT_EQ(SublinearConnectedComponents(Graph(), rng).estimate, 0.0);
  // Edgeless: every component has size 1 -> exact regardless of sampling.
  const auto estimate = SublinearConnectedComponents(gen::Empty(50), rng);
  EXPECT_NEAR(estimate.estimate, 50.0, 1e-9);
}

TEST(SublinearCcTest, TruncationBiasIsDownwardAndBounded) {
  // One giant component + many singletons: truncation drops the giant's
  // contribution (bias at most ~n/cutoff), never overestimates on average.
  Rng rng(1602);
  const Graph g = gen::DisjointUnion({gen::Path(200), gen::Empty(100)});
  const double truth = CountConnectedComponents(g);  // 101
  SublinearCcOptions options;
  options.num_samples = 5000;
  options.bfs_cutoff = 16;
  const auto estimate = SublinearConnectedComponents(g, rng, options);
  EXPECT_LE(estimate.estimate, truth + 8.0);
  EXPECT_GE(estimate.estimate, truth - 300.0 / options.bfs_cutoff - 8.0);
}

TEST(SublinearCcTest, ErrorShrinksWithSamples) {
  Rng rng(1603);
  const Graph g = gen::RandomEntityGraph(150, 4, rng);
  const double truth = CountConnectedComponents(g);
  auto mean_abs = [&](int samples) {
    SublinearCcOptions options;
    options.num_samples = samples;
    options.bfs_cutoff = 8;
    std::vector<double> errors;
    for (int t = 0; t < 40; ++t) {
      errors.push_back(
          SublinearConnectedComponents(g, rng, options).estimate - truth);
    }
    return SummarizeErrors(errors).mean_abs;
  };
  EXPECT_LT(mean_abs(2048), mean_abs(32));
}

TEST(SublinearCcTest, ReportsWorkDone) {
  Rng rng(1604);
  const Graph g = gen::Path(100);
  SublinearCcOptions options;
  options.num_samples = 10;
  options.bfs_cutoff = 5;
  const auto estimate = SublinearConnectedComponents(g, rng, options);
  EXPECT_GT(estimate.vertices_visited, 0);
  // Truncation caps per-sample BFS work near the cutoff.
  EXPECT_LE(estimate.vertices_visited, options.num_samples *
                                           (options.bfs_cutoff + 1));
}

TEST(SublinearCcDeathTest, InvalidOptions) {
  Rng rng(1);
  SublinearCcOptions bad;
  bad.num_samples = 0;
  EXPECT_DEATH(SublinearConnectedComponents(gen::Path(3), rng, bad),
               "CHECK failed");
}

// --- the private approx tier (PrivateSublinearCc) --------------------------

TEST(PrivateSublinearCcTest, RejectsBadArguments) {
  Rng rng(1700);
  const Graph g = gen::Path(10);
  EXPECT_FALSE(PrivateSublinearCc(g, 0.0, rng).ok());
  EXPECT_FALSE(PrivateSublinearCc(g, -1.0, rng).ok());
  PrivateSublinearCcOptions bad;
  bad.bfs_cutoff = 0;
  EXPECT_FALSE(PrivateSublinearCc(g, 1.0, rng, bad).ok());
  bad = {};
  bad.num_samples = -1;
  EXPECT_FALSE(PrivateSublinearCc(g, 1.0, rng, bad).ok());
}

TEST(PrivateSublinearCcTest, EmptyGraph) {
  Rng rng(1701);
  const auto release = PrivateSublinearCc(Graph(), 1.0, rng);
  ASSERT_TRUE(release.ok()) << release.status().ToString();
  EXPECT_EQ(release->raw_estimate, 0.0);
}

TEST(PrivateSublinearCcTest, ExactPassWhenSampleBudgetCoversGraph) {
  // Small n and a public degree cap: the auto sample budget s = T(Δ*+2)
  // exceeds n/2, so the implementation takes the exact F_T pass — zero
  // sampling error and a deterministic raw estimate equal to the number of
  // components of size <= T (here: all of them).
  Rng rng(1702);
  const Graph g = gen::CliqueUnion({3, 3, 3, 2, 1});
  const double truth = CountConnectedComponents(g);
  PrivateSublinearCcOptions options;
  options.delta_max = 4;
  options.bfs_cutoff = 16;
  const auto release = PrivateSublinearCc(g, 1.0, rng, options);
  ASSERT_TRUE(release.ok()) << release.status().ToString();
  EXPECT_TRUE(release->exact_ft);
  EXPECT_DOUBLE_EQ(release->raw_estimate, truth);
  EXPECT_EQ(release->sampling_error_bound, 0.0);
  // Exact pass: s = n in the sensitivity formula 1 + (n/s)(Δ* + 2).
  EXPECT_DOUBLE_EQ(release->sensitivity, 1.0 + (4.0 + 2.0));
  EXPECT_DOUBLE_EQ(release->laplace_scale, release->sensitivity / 1.0);
}

TEST(PrivateSublinearCcTest, SensitivityFormulaUnderSampling) {
  // Large n, tight cutoff and degree cap: the sampling path. The Laplace
  // scale must be exactly (1 + (n/s)(Δ* + 2)) / ε — the without-replacement
  // sensitivity bound the docs derive.
  Rng rng(1703);
  const Graph g = gen::Path(2000);
  PrivateSublinearCcOptions options;
  options.delta_max = 2;
  options.bfs_cutoff = 4;
  const double eps = 0.5;
  const auto release = PrivateSublinearCc(g, eps, rng, options);
  ASSERT_TRUE(release.ok()) << release.status().ToString();
  EXPECT_FALSE(release->exact_ft);
  const double n = 2000.0;
  const double s = release->num_samples;
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, (n + 1) / 2);
  EXPECT_DOUBLE_EQ(release->sensitivity, 1.0 + (n / s) * (2.0 + 2.0));
  EXPECT_DOUBLE_EQ(release->laplace_scale, release->sensitivity / eps);
  EXPECT_DOUBLE_EQ(release->truncation_bias_bound, n / 4.0);
}

TEST(PrivateSublinearCcTest, EmpiricalErrorWithinCalibratedScale) {
  // Empirical audit of the calibration: on the exact path the error is pure
  // Laplace noise at the reported scale, so the median absolute error over
  // many trials concentrates near scale * ln 2.
  Rng rng(1704);
  const Graph g = gen::CliqueUnion({4, 4, 4, 4, 3, 3, 2, 1});
  const double truth = CountConnectedComponents(g);
  PrivateSublinearCcOptions options;
  options.delta_max = 4;
  options.bfs_cutoff = 8;
  std::vector<double> errors;
  double scale = 0.0;
  for (int t = 0; t < 200; ++t) {
    const auto release = PrivateSublinearCc(g, 1.0, rng, options);
    ASSERT_TRUE(release.ok());
    ASSERT_TRUE(release->exact_ft);
    scale = release->laplace_scale;
    errors.push_back(release->estimate - truth);
  }
  const double median_abs = SummarizeErrors(errors).median_abs;
  EXPECT_GT(median_abs, 0.0);
  EXPECT_LT(median_abs, 4.0 * scale);
}

TEST(PrivateSublinearCcTest, RawEstimateRespectsTruncationBiasBound) {
  // Giant component beyond the cutoff: F_T undercounts by at most n/T.
  Rng rng(1705);
  const Graph g = gen::DisjointUnion({gen::Path(300), gen::Empty(50)});
  const double truth = CountConnectedComponents(g);  // 51
  PrivateSublinearCcOptions options;
  options.delta_max = 2;
  options.bfs_cutoff = 16;
  options.num_samples = 400;  // >= (n+1)/2 -> exact pass
  const auto release = PrivateSublinearCc(g, 1.0, rng, options);
  ASSERT_TRUE(release.ok());
  ASSERT_TRUE(release->exact_ft);
  EXPECT_LE(release->raw_estimate, truth);
  EXPECT_GE(release->raw_estimate,
            truth - release->truncation_bias_bound);
}

}  // namespace
}  // namespace nodedp

// Tests for the Padberg–Wolsey-style separation oracle over constraints (5)
// of Definition 3.1 and the cutting-plane driver.

#include "core/forest_polytope.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/forest.h"
#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

// Exhaustive violation check for small graphs.
bool HasViolatedSubsetExhaustive(const Graph& g, const std::vector<double>& x,
                                 double tol) {
  const int n = g.NumVertices();
  for (uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    const int size = __builtin_popcountll(mask);
    if (size < 2) continue;
    double weight = 0.0;
    for (int e = 0; e < g.NumEdges(); ++e) {
      const Edge& edge = g.EdgeAt(e);
      if (((mask >> edge.u) & 1ULL) && ((mask >> edge.v) & 1ULL)) {
        weight += x[e];
      }
    }
    if (weight > size - 1.0 + tol) return true;
  }
  return false;
}

TEST(SeparationTest, DetectsOverloadedTriangle) {
  const Graph g = gen::Cycle(3);
  // x = 1 on every edge: x(E[S]) = 3 > |S| - 1 = 2 for the full set.
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const auto violations = FindViolatedSubtourSets(g, x, 1e-7, 0);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].vertices.size(), 3u);
  EXPECT_NEAR(violations[0].violation, 1.0, 1e-9);
}

TEST(SeparationTest, AcceptsFeasibleTriangle) {
  const Graph g = gen::Cycle(3);
  const std::vector<double> x = {0.6, 0.7, 0.7};  // sums to 2 = |S|-1
  EXPECT_TRUE(FindViolatedSubtourSets(g, x, 1e-7, 0).empty());
}

TEST(SeparationTest, SpanningForestIndicatorIsFeasible) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::ErdosRenyi(15, 0.25, rng);
    // Indicator of a BFS forest satisfies every subtour constraint.
    std::vector<double> x(g.NumEdges(), 0.0);
    const auto forest_edges = BfsSpanningForest(g).EdgeList();
    for (const Edge& e : forest_edges) x[g.EdgeId(e.u, e.v)] = 1.0;
    EXPECT_TRUE(FindViolatedSubtourSets(g, x, 1e-7, 0).empty())
        << "trial=" << trial;
  }
}

TEST(SeparationTest, FindsHiddenDenseSubset) {
  // A K4 hidden inside a sparse graph, with uniform weight 0.55 on K4 edges:
  // x(E[K4]) = 3.3 > 3.
  Graph g(8, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
              {4, 5}, {5, 6}, {6, 7}});
  std::vector<double> x(g.NumEdges(), 0.0);
  for (int e = 0; e < 6; ++e) x[e] = 0.55;
  const auto violations = FindViolatedSubtourSets(g, x, 1e-7, 0);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].vertices, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_NEAR(violations[0].violation, 0.3, 1e-9);
}

TEST(SeparationTest, AgreesWithExhaustiveOnRandomWeights) {
  Rng rng(565);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = gen::ErdosRenyi(9, 0.35, rng);
    std::vector<double> x(g.NumEdges());
    for (double& w : x) w = rng.NextDouble();
    const bool oracle =
        !FindViolatedSubtourSets(g, x, 1e-7, 0).empty();
    const bool exhaustive = HasViolatedSubsetExhaustive(g, x, 1e-7);
    EXPECT_EQ(oracle, exhaustive) << "trial=" << trial;
  }
}

TEST(SeparationTest, ReportedViolationsAreReal) {
  Rng rng(566);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::ErdosRenyi(10, 0.4, rng);
    std::vector<double> x(g.NumEdges());
    for (double& w : x) w = rng.NextDouble() * 1.2;
    for (const SubtourViolation& violation :
         FindViolatedSubtourSets(g, x, 1e-7, 0)) {
      double weight = 0.0;
      std::vector<bool> in_s(g.NumVertices(), false);
      for (int v : violation.vertices) in_s[v] = true;
      for (int e = 0; e < g.NumEdges(); ++e) {
        if (in_s[g.EdgeAt(e).u] && in_s[g.EdgeAt(e).v]) weight += x[e];
      }
      EXPECT_NEAR(weight - (violation.vertices.size() - 1.0),
                  violation.violation, 1e-9);
      EXPECT_GT(violation.violation, 1e-7);
    }
  }
}

TEST(SeparationTest, MaxSetsLimitsOutput) {
  const Graph g = gen::Complete(6);
  std::vector<double> x(g.NumEdges(), 1.0);
  const auto limited = FindViolatedSubtourSets(g, x, 1e-7, 2);
  EXPECT_LE(limited.size(), 2u);
  ASSERT_FALSE(limited.empty());
}

TEST(CuttingPlaneTest, ConvergesOnDenseGraphs) {
  // K8 at large Δ: f_Δ = f_sf = 7. With all shortcuts on this resolves in
  // round one (structural component cut + primal rounding certificate).
  const Graph g = gen::Complete(8);
  const ForestPolytopeResult result = MaximizeOverForestPolytope(g, 7.0);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.value, 7.0, 1e-5);
  EXPECT_EQ(result.cuts_added, 0);  // shortcuts prevent any oracle rounds

  // With the shortcuts disabled the oracle must genuinely cut its way to
  // the same optimum.
  ForestPolytopeOptions bare;
  bare.use_support_heuristic = false;
  bare.seed_structural_cuts = false;
  const ForestPolytopeResult hard = MaximizeOverForestPolytope(g, 7.0, bare);
  ASSERT_EQ(hard.status, LpStatus::kOptimal);
  EXPECT_NEAR(hard.value, 7.0, 1e-5);
  EXPECT_GT(hard.cuts_added, 0);
}

TEST(CuttingPlaneTest, SolutionIsFeasibleForFullPolytope) {
  Rng rng(909);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::ErdosRenyi(10, 0.35, rng);
    const ForestPolytopeResult result = MaximizeOverForestPolytope(g, 2.0);
    ASSERT_EQ(result.status, LpStatus::kOptimal);
    // The returned x satisfies every subset constraint (exhaustive check)
    // and the degree constraints.
    EXPECT_FALSE(HasViolatedSubsetExhaustive(g, result.x, 1e-5));
    for (int v = 0; v < g.NumVertices(); ++v) {
      double incident = 0.0;
      for (int e : g.IncidentEdgeIds(v)) incident += result.x[e];
      EXPECT_LE(incident, 2.0 + 1e-5);
    }
    for (double w : result.x) EXPECT_GE(w, -1e-7);
  }
}

TEST(CuttingPlaneTest, RoundLimitReportsResourceExhaustion) {
  const Graph g = gen::Complete(9);
  ForestPolytopeOptions options;
  options.max_cut_rounds = 1;  // cannot converge in one round on bare K9
  options.max_cuts_per_round = 1;
  options.use_support_heuristic = false;
  options.seed_structural_cuts = false;
  const ForestPolytopeResult result =
      MaximizeOverForestPolytope(g, 8.0, options);
  EXPECT_EQ(result.status, LpStatus::kIterationLimit);
}

TEST(CuttingPlaneTest, EdgelessGraphTrivial) {
  const ForestPolytopeResult result =
      MaximizeOverForestPolytope(gen::Empty(5), 3.0);
  EXPECT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_EQ(result.value, 0.0);
}

}  // namespace
}  // namespace nodedp

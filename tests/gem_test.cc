// Tests for the Generalized Exponential Mechanism (Algorithm 4).

#include "dp/gem.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace nodedp {
namespace {

TEST(GemTest, PowersOfTwoGrid) {
  EXPECT_EQ(PowersOfTwoGrid(1), (std::vector<int>{1}));
  EXPECT_EQ(PowersOfTwoGrid(2), (std::vector<int>{1, 2}));
  EXPECT_EQ(PowersOfTwoGrid(9), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(PowersOfTwoGrid(16), (std::vector<int>{1, 2, 4, 8, 16}));
  EXPECT_EQ(PowersOfTwoGrid(1000),
            (std::vector<int>{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}));
}

TEST(GemTest, ScoresHaveZeroMinimum) {
  // s_i = max_j ((q_i + t i) - (q_j + t j))/(i + j); the argmin of
  // q_i + t·i has score... >= 0 always? s_i >= (own - own)/(2i) = 0, and the
  // minimizer's score is exactly 0 only if it dominates all j; in general
  // min_i s_i >= 0 with equality for the shifted-q minimizer.
  std::vector<GemCandidate> candidates = {
      {1.0, 10.0}, {2.0, 4.0}, {4.0, 6.0}, {8.0, 9.0}};
  Rng rng(1);
  const GemResult result = GemSelect(candidates, 1.0, 0.1, rng);
  double min_score = 1e18;
  for (double s : result.scores) min_score = std::min(min_score, s);
  EXPECT_GE(min_score, 0.0);
  // The best shifted candidate has score 0.
  int best = 0;
  double best_value = 1e18;
  for (int i = 0; i < 4; ++i) {
    const double v = candidates[i].q + result.shift_t *
                                           candidates[i].lipschitz;
    if (v < best_value) {
      best_value = v;
      best = i;
    }
  }
  EXPECT_NEAR(result.scores[best], 0.0, 1e-12);
}

TEST(GemTest, PrefersLowErrorCandidateOverwhelmingly) {
  // One candidate has dramatically lower q; with large epsilon GEM picks it
  // nearly always.
  std::vector<GemCandidate> candidates;
  for (int delta : PowersOfTwoGrid(64)) {
    GemCandidate c;
    c.lipschitz = delta;
    c.q = (delta == 8) ? 1.0 : 500.0;
    candidates.push_back(c);
  }
  Rng rng(2);
  int picked_8 = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    const GemResult result = GemSelect(candidates, 5.0, 0.1, rng);
    if (candidates[result.selected_index].lipschitz == 8.0) ++picked_8;
  }
  EXPECT_GT(picked_8, trials * 95 / 100);
}

TEST(GemTest, Theorem35UtilityBound) {
  // With probability >= 1 - beta, q_selected <= min_i q_i * O(ln(k/beta)).
  // Empirically verify a concrete version: q_selected <= q_best + 2t·i_best
  // style bound... We check the weaker, implementation-level property that
  // the selected candidate's shifted score is within 2t·(i+j) of optimal in
  // at least (1-beta) fraction of trials, via the score bound s_î <= ... .
  // Practical check: q_î <= 10 * ln(k/β)/ε * q_best over many trials.
  std::vector<GemCandidate> candidates;
  Rng workload_rng(33);
  for (int delta : PowersOfTwoGrid(256)) {
    GemCandidate c;
    c.lipschitz = delta;
    c.q = delta / 0.5 + workload_rng.NextDouble() * 30.0;
    candidates.push_back(c);
  }
  double q_best = 1e18;
  for (const auto& c : candidates) q_best = std::min(q_best, c.q);

  Rng rng(34);
  const double epsilon = 1.0;
  const double beta = 0.1;
  const double k = static_cast<double>(candidates.size() - 1);
  const double blowup = 10.0 * std::log(k / beta) / epsilon;
  int violations = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const GemResult result = GemSelect(candidates, epsilon, beta, rng);
    if (candidates[result.selected_index].q > q_best * blowup) ++violations;
  }
  EXPECT_LT(static_cast<double>(violations) / trials, beta);
}

TEST(GemTest, SingletonGridWorks) {
  std::vector<GemCandidate> candidates = {{1.0, 3.0}};
  Rng rng(4);
  const GemResult result = GemSelect(candidates, 1.0, 0.1, rng);
  EXPECT_EQ(result.selected_index, 0);
}

TEST(GemTest, DeterministicGivenSeed) {
  std::vector<GemCandidate> candidates = {
      {1.0, 5.0}, {2.0, 3.0}, {4.0, 8.0}};
  Rng a(99);
  Rng b(99);
  for (int t = 0; t < 50; ++t) {
    EXPECT_EQ(GemSelect(candidates, 1.0, 0.1, a).selected_index,
              GemSelect(candidates, 1.0, 0.1, b).selected_index);
  }
}

TEST(GemDeathTest, InvalidInputs) {
  Rng rng(1);
  EXPECT_DEATH(GemSelect({}, 1.0, 0.1, rng), "CHECK failed");
  std::vector<GemCandidate> bad = {{0.0, 1.0}};
  EXPECT_DEATH(GemSelect(bad, 1.0, 0.1, rng), "CHECK failed");
  std::vector<GemCandidate> good = {{1.0, 1.0}};
  EXPECT_DEATH(GemSelect(good, -1.0, 0.1, rng), "CHECK failed");
  EXPECT_DEATH(GemSelect(good, 1.0, 1.5, rng), "CHECK failed");
}

}  // namespace
}  // namespace nodedp

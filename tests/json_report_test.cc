// Tests for the BENCH_*.json perf-telemetry writer.

#include "eval/json_report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace nodedp {
namespace {

TEST(JsonEscapeTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonReportTest, SchemaFieldsPresent) {
  JsonReport report("unit_suite");
  report.SetContext("build", "test");
  BenchRecord record;
  record.name = "BM_Something/8";
  record.real_ns = 123.5;
  record.cpu_ns = 120.25;
  record.iterations = 10;
  record.counters.emplace_back("threads", 4.0);
  report.Add(record);

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\": \"nodedp-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"suite\": \"unit_suite\""), std::string::npos);
  EXPECT_NE(json.find("\"git_rev\": \""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": "), std::string::npos);
  EXPECT_NE(json.find("\"build\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"BM_Something/8\""), std::string::npos);
  EXPECT_NE(json.find("\"real_ns\": 123.5"), std::string::npos);
  EXPECT_NE(json.find("\"iterations\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
}

TEST(JsonReportTest, EmptyReportIsWellFormed) {
  JsonReport report("empty");
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"benchmarks\": []"), std::string::npos);
  EXPECT_NE(json.find("\"context\": {}"), std::string::npos);
  EXPECT_EQ(report.num_records(), 0);
}

TEST(JsonReportTest, NonFiniteNumbersBecomeNull) {
  JsonReport report("nonfinite");
  BenchRecord record;
  record.name = "BM_NaN";
  record.real_ns = std::numeric_limits<double>::quiet_NaN();
  record.cpu_ns = std::numeric_limits<double>::infinity();
  record.iterations = 1;
  report.Add(record);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"real_ns\": null"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_ns\": null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(JsonReportTest, WriteFileRoundTrips) {
  JsonReport report("roundtrip");
  BenchRecord record;
  record.name = "BM_X";
  record.real_ns = 1.0;
  record.iterations = 2;
  report.Add(record);

  const std::string path = ::testing::TempDir() + "nodedp_report_test.json";
  ASSERT_TRUE(report.WriteFile(path).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), report.ToJson());
  std::remove(path.c_str());
}

TEST(JsonReportTest, WriteFileReportsIoError) {
  JsonReport report("io_error");
  EXPECT_FALSE(report.WriteFile("/nonexistent-dir/x/y.json").ok());
}

TEST(GitRevisionTest, PrefersNodedpVarThenGithubSha) {
  ASSERT_EQ(setenv("NODEDP_GIT_REV", "rev-a", 1), 0);
  ASSERT_EQ(setenv("GITHUB_SHA", "rev-b", 1), 0);
  EXPECT_EQ(GitRevisionFromEnv(), "rev-a");
  ASSERT_EQ(unsetenv("NODEDP_GIT_REV"), 0);
  EXPECT_EQ(GitRevisionFromEnv(), "rev-b");
  ASSERT_EQ(unsetenv("GITHUB_SHA"), 0);
  EXPECT_EQ(GitRevisionFromEnv(), "unknown");
}

TEST(BenchJsonPathTest, EnvOverrideWins) {
  ASSERT_EQ(unsetenv("NODEDP_BENCH_JSON"), 0);
  EXPECT_EQ(BenchJsonPath("suite"), "BENCH_suite.json");
  ASSERT_EQ(setenv("NODEDP_BENCH_JSON", "/tmp/custom.json", 1), 0);
  EXPECT_EQ(BenchJsonPath("suite"), "/tmp/custom.json");
  ASSERT_EQ(unsetenv("NODEDP_BENCH_JSON"), 0);
}

}  // namespace
}  // namespace nodedp

// Tests for Win's decomposition (Lemma 5.1).

#include "core/win_decomposition.h"

#include <gtest/gtest.h>

#include "core/min_degree_forest.h"
#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(WinDecompositionTest, StarBaseCase) {
  // (Δ+1)-star: S = the whole star (has a spanning (Δ+1 >= Δ)-tree? No —
  // the star's only spanning tree has degree Δ+1 > Δ). The decomposition
  // here must pick a sub-star: S = center + Δ leaves? That S has spanning
  // tree of degree Δ (it IS a Δ-star). X = {center}: S \ X = Δ isolated
  // leaves, f_cc = Δ >= 1·(Δ-2) + 2 = Δ. Condition (2): edges from outside
  // S (the remaining leaf) must only touch X — true, leaves touch only the
  // center. So a decomposition exists; the search must find one.
  for (int delta : {2, 3, 4}) {
    const Graph g = gen::Star(delta + 1);
    const auto decomposition = FindWinDecomposition(g, delta);
    ASSERT_TRUE(decomposition.has_value()) << "delta=" << delta;
    EXPECT_TRUE(IsWinDecomposition(g, delta, decomposition->s_vertices,
                                   decomposition->x_vertices));
  }
}

TEST(WinDecompositionTest, ValidatorRejectsBadCandidates) {
  const Graph g = gen::Star(4);  // center 0, leaves 1..4
  // X not inside S.
  EXPECT_FALSE(IsWinDecomposition(g, 3, {0, 1, 2}, {4}));
  // X = V(S) (not a proper subset).
  EXPECT_FALSE(IsWinDecomposition(g, 3, {0, 1}, {0, 1}));
  // S disconnected (two leaves): no spanning tree.
  EXPECT_FALSE(IsWinDecomposition(g, 3, {1, 2}, {}));
  // Correct candidate: S = {0,1,2,3} (3-star), X = {0}.
  EXPECT_TRUE(IsWinDecomposition(g, 3, {0, 1, 2, 3}, {0}));
}

TEST(WinDecompositionTest, Lemma51OnRandomGraphsWithoutDeltaForest) {
  // Whenever G has no spanning Δ-forest (Δ >= 2), a decomposition exists.
  Rng rng(909);
  int exercised = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextUint64(4));  // 5..8
    const Graph g = gen::ErdosRenyi(n, 0.4, rng);
    if (g.NumEdges() == 0) continue;
    for (int delta : {2, 3}) {
      const auto has = HasSpanningForestOfDegree(g, delta);
      ASSERT_TRUE(has.has_value());
      if (*has) continue;  // lemma precondition not met
      ++exercised;
      const auto decomposition = FindWinDecomposition(g, delta);
      ASSERT_TRUE(decomposition.has_value())
          << "trial=" << trial << " delta=" << delta;
      EXPECT_TRUE(IsWinDecomposition(g, delta, decomposition->s_vertices,
                                     decomposition->x_vertices));
    }
  }
  EXPECT_GT(exercised, 3);
}

TEST(WinDecompositionTest, NoFalsePositivesRequired) {
  // Lemma 5.1 is one-directional; graphs WITH spanning Δ-forests may or may
  // not admit the decomposition. We only assert the validator agrees with
  // itself: anything the finder returns must validate.
  Rng rng(910);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::ErdosRenyi(7, 0.3, rng);
    const auto decomposition = FindWinDecomposition(g, 2);
    if (decomposition.has_value()) {
      EXPECT_TRUE(IsWinDecomposition(g, 2, decomposition->s_vertices,
                                     decomposition->x_vertices));
    }
  }
}

TEST(WinDecompositionDeathTest, RequiresDeltaAtLeastTwo) {
  EXPECT_DEATH(FindWinDecomposition(gen::Path(3), 1), "CHECK failed");
}

}  // namespace
}  // namespace nodedp

// Failure injection: resource caps and invalid inputs must surface as
// non-OK Status at every pipeline layer — never as wrong values.

#include <gtest/gtest.h>

#include "core/extension_family.h"
#include "core/lipschitz_extension.h"
#include "core/private_cc.h"
#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

ExtensionOptions Strangled() {
  // Options under which any nontrivial LP must fail: a single cutting-plane
  // round with a one-pivot simplex budget, no shortcuts.
  ExtensionOptions options;
  options.use_repair_fast_path = false;
  options.polytope.use_support_heuristic = false;
  options.polytope.max_cut_rounds = 1;
  options.polytope.max_cuts_per_round = 1;
  options.polytope.simplex.max_iterations = 1;
  return options;
}

TEST(FailureInjectionTest, ExtensionEvaluatorPropagatesLpExhaustion) {
  const Graph g = gen::Complete(8);
  const Result<ExtensionValue> value =
      EvalLipschitzExtension(g, 2.0, Strangled());
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjectionTest, FamilyPropagatesLpExhaustion) {
  ExtensionFamily family(gen::Complete(8), Strangled());
  const Result<double> value = family.Value(2.0);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjectionTest, Algorithm1PropagatesLpExhaustion) {
  Rng rng(1);
  PrivateCcOptions options;
  options.extension = Strangled();
  const auto release =
      PrivateSpanningForestSize(gen::Complete(8), 1.0, rng, options);
  ASSERT_FALSE(release.ok());
  EXPECT_EQ(release.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjectionTest, CcReleasePropagatesLpExhaustion) {
  Rng rng(2);
  PrivateCcOptions options;
  options.extension = Strangled();
  const auto release =
      PrivateConnectedComponents(gen::Complete(8), 1.0, rng, options);
  ASSERT_FALSE(release.ok());
}

TEST(FailureInjectionTest, EdgelessGraphsNeverTouchTheLp) {
  // Strangled caps must not matter when there is nothing to solve.
  Rng rng(3);
  PrivateCcOptions options;
  options.extension = Strangled();
  const auto release =
      PrivateConnectedComponents(gen::Empty(30), 1.0, rng, options);
  ASSERT_TRUE(release.ok());
}

TEST(FailureInjectionTest, FastPathRescuesStrangledLpWhereApplicable) {
  // With the certificate enabled, anchored Δ never reach the LP, so the
  // release succeeds even under hostile LP caps — for every Δ in the grid
  // that admits a spanning forest certificate. K8 has Δ* = 2, so only
  // Δ = 1 needs the LP; delta_max = 8 grid = {1,2,4,8}. Restrict the grid
  // to start at 2 via delta_max... the grid always starts at 1, so instead
  // use a path (Δ* = 2) where Δ=1's LP is trivial (converges in one round:
  // matching LP needs no subtour cuts on trees... it does converge with the
  // seed constraints only).
  Rng rng(4);
  PrivateCcOptions options;
  options.extension = Strangled();
  options.extension.use_repair_fast_path = true;
  options.extension.polytope.max_cut_rounds = 2;
  options.extension.polytope.simplex.max_iterations = 10000;
  const auto release =
      PrivateSpanningForestSize(gen::Path(24), 1.0, rng, options);
  EXPECT_TRUE(release.ok());
}

TEST(FailureInjectionTest, ResultMessagesNameTheFailure) {
  ExtensionFamily family(gen::Complete(8), Strangled());
  const Result<double> value = family.Value(2.0);
  ASSERT_FALSE(value.ok());
  EXPECT_NE(value.status().message().find("did not converge"),
            std::string::npos);
}

}  // namespace
}  // namespace nodedp

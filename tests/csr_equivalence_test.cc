// Property tests for the CSR graph core: on random graphs, every accessor
// must agree with a naive reference built independently from the same edge
// set (adjacency sets + a (u,v)->id map), and the large-graph smoke test
// pins the O(n + m) construction/induction paths at a million vertices.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "util/random.h"

namespace nodedp {
namespace {

// Naive reference model: ordered adjacency sets and an explicit edge-id
// map, built straight from the pair list with none of the Graph machinery.
struct ReferenceGraph {
  int n = 0;
  std::vector<std::set<int>> adjacency;
  std::map<std::pair<int, int>, int> edge_id;

  explicit ReferenceGraph(int num_vertices,
                          const std::vector<std::pair<int, int>>& pairs)
      : n(num_vertices), adjacency(num_vertices) {
    std::set<std::pair<int, int>> normalized;
    for (auto [a, b] : pairs) {
      if (a > b) std::swap(a, b);
      normalized.emplace(a, b);
    }
    int id = 0;
    for (const auto& [u, v] : normalized) {
      adjacency[u].insert(v);
      adjacency[v].insert(u);
      edge_id[{u, v}] = id++;
    }
  }
};

void ExpectEquivalent(const Graph& g, const ReferenceGraph& ref) {
  ASSERT_EQ(g.NumVertices(), ref.n);
  ASSERT_EQ(g.NumEdges(), static_cast<int>(ref.edge_id.size()));
  int max_degree = 0;
  for (int v = 0; v < ref.n; ++v) {
    const std::vector<int> expected(ref.adjacency[v].begin(),
                                    ref.adjacency[v].end());
    max_degree = std::max(max_degree, static_cast<int>(expected.size()));
    ASSERT_EQ(g.Degree(v), static_cast<int>(expected.size())) << "v=" << v;
    const Span<const int> nbrs = g.Neighbors(v);
    ASSERT_EQ(nbrs, Span<const int>(expected)) << "v=" << v;
    // IncidentEdgeIds is parallel to Neighbors and must name the edge
    // {v, neighbor} exactly.
    const Span<const int> incident = g.IncidentEdgeIds(v);
    ASSERT_EQ(incident.size(), nbrs.size()) << "v=" << v;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const int u = std::min(v, nbrs[i]);
      const int w = std::max(v, nbrs[i]);
      ASSERT_EQ(incident[i], ref.edge_id.at({u, w}))
          << "v=" << v << " i=" << i;
      const Edge& e = g.EdgeAt(incident[i]);
      ASSERT_EQ(e.u, u);
      ASSERT_EQ(e.v, w);
    }
  }
  ASSERT_EQ(g.MaxDegree(), max_degree);
  // HasEdge/EdgeId over every vertex pair (graphs are small).
  for (int u = 0; u < ref.n; ++u) {
    for (int v = 0; v < ref.n; ++v) {
      const auto key = std::make_pair(std::min(u, v), std::max(u, v));
      const auto it = ref.edge_id.find(key);
      if (u != v && it != ref.edge_id.end()) {
        ASSERT_TRUE(g.HasEdge(u, v)) << u << "," << v;
        ASSERT_EQ(g.EdgeId(u, v), it->second) << u << "," << v;
      } else {
        ASSERT_FALSE(g.HasEdge(u, v)) << u << "," << v;
        ASSERT_EQ(g.EdgeId(u, v), -1) << u << "," << v;
      }
    }
  }
}

TEST(CsrEquivalenceTest, RandomGraphsMatchNaiveReference) {
  Rng rng(20260728);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextUint64(40));
    // Densities from empty through near-complete, plus duplicate and
    // reversed pairs to exercise normalization.
    const double p = rng.NextDouble();
    std::vector<std::pair<int, int>> pairs;
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.NextBernoulli(p)) {
          if (rng.NextBernoulli(0.5)) {
            pairs.emplace_back(v, u);  // reversed orientation
          } else {
            pairs.emplace_back(u, v);
          }
          if (rng.NextBernoulli(0.1)) pairs.emplace_back(u, v);  // duplicate
        }
      }
    }
    const ReferenceGraph ref(n, pairs);
    const Graph g(n, pairs);
    ExpectEquivalent(g, ref);
  }
}

TEST(CsrEquivalenceTest, InducedSubgraphsMatchNaiveReference) {
  Rng rng(977);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextUint64(30));
    const Graph g = gen::ErdosRenyi(n, 3.0 / n, rng);
    std::vector<int> keep;
    for (int v = 0; v < n; ++v) {
      if (rng.NextBernoulli(0.6)) keep.push_back(v);
    }
    const InducedSubgraph sub = Induce(g, keep);
    ASSERT_EQ(sub.graph.NumVertices(), static_cast<int>(keep.size()));
    // Reference: relabel the naive way through a full map.
    std::vector<int> new_id(n, -1);
    for (int i = 0; i < static_cast<int>(keep.size()); ++i) {
      new_id[keep[i]] = i;
    }
    std::vector<std::pair<int, int>> pairs;
    for (const Edge& e : g.Edges()) {
      if (new_id[e.u] >= 0 && new_id[e.v] >= 0) {
        pairs.emplace_back(new_id[e.u], new_id[e.v]);
      }
    }
    const ReferenceGraph ref(static_cast<int>(keep.size()), pairs);
    ExpectEquivalent(sub.graph, ref);
  }
}

TEST(CsrEquivalenceTest, FromSortedEdgesMatchesPairConstructor) {
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextUint64(30));
    const Graph g = gen::ErdosRenyi(n, 2.0 / std::max(1, n - 1), rng);
    std::vector<Edge> edges(g.Edges().begin(), g.Edges().end());
    const Graph h = Graph::FromSortedEdges(n, std::move(edges));
    ASSERT_EQ(h.NumEdges(), g.NumEdges());
    for (int v = 0; v < n; ++v) {
      ASSERT_EQ(h.Neighbors(v), g.Neighbors(v));
      ASSERT_EQ(h.IncidentEdgeIds(v), g.IncidentEdgeIds(v));
    }
  }
}

// Million-vertex smoke: construction, induction of every component, and
// spot accessor checks stay O(n + m) — fast enough for Debug builds.
TEST(CsrLargeGraphSmokeTest, MillionVertexSparseGraph) {
  constexpr int kVertices = 1000000;
  Rng rng(7);
  const Graph g = gen::ErdosRenyi(kVertices, 0.5 / kVertices, rng);
  EXPECT_EQ(g.NumVertices(), kVertices);
  EXPECT_GT(g.NumEdges(), kVertices / 8);
  EXPECT_GT(g.MemoryBytes(), static_cast<std::size_t>(g.NumEdges()) *
                                 (sizeof(Edge) + 2 * sizeof(int)));

  // Every edge id is recoverable through the binary-search path.
  Rng probe(8);
  for (int i = 0; i < 1000; ++i) {
    const int e = static_cast<int>(probe.NextUint64(g.NumEdges()));
    const Edge& edge = g.EdgeAt(e);
    ASSERT_EQ(g.EdgeId(edge.u, edge.v), e);
    ASSERT_TRUE(g.HasEdge(edge.v, edge.u));
  }

  // Decompose-and-induce across the whole graph: O(n + m) total with the
  // scratch-map Induce, previously O(n * #components).
  const std::vector<std::vector<int>> components = ComponentVertexSets(g);
  EXPECT_GT(components.size(), 100u);
  long long induced_vertices = 0;
  long long induced_edges = 0;
  for (const std::vector<int>& component : components) {
    if (component.size() < 2) {
      induced_vertices += static_cast<long long>(component.size());
      continue;
    }
    const InducedSubgraph sub = Induce(g, component);
    induced_vertices += sub.graph.NumVertices();
    induced_edges += sub.graph.NumEdges();
  }
  EXPECT_EQ(induced_vertices, kVertices);
  EXPECT_EQ(induced_edges, g.NumEdges());
}

}  // namespace
}  // namespace nodedp

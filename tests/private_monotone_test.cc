// Tests for the generic monotone-statistic mechanism (Theorem A.2).

#include "core/private_monotone.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/down_sensitivity.h"
#include "eval/stats.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

double FsfStatistic(const Graph& g) {
  return static_cast<double>(SpanningForestSize(g));
}
double EdgeCountStatistic(const Graph& g) {
  return static_cast<double>(g.NumEdges());
}

TEST(PrivateMonotoneTest, ReleaseShape) {
  Rng rng(1400);
  const Graph g = gen::Path(12);
  const MonotoneRelease release =
      PrivateMonotoneStatistic(g, FsfStatistic, 1.0, rng);
  EXPECT_GE(release.selected_delta, 1);
  EXPECT_LE(release.selected_delta, 16);
  EXPECT_EQ(release.candidates.size(), PowersOfTwoGrid(12).size());
}

TEST(PrivateMonotoneTest, AccurateOnLowDownSensitivityInputs) {
  // Paths have DS_fsf = 2: the error should concentrate near ~Δ̂/ε with
  // Δ̂ small, far below n.
  Rng rng(1401);
  const Graph g = gen::Path(14);
  const double truth = FsfStatistic(g);
  std::vector<double> errors;
  for (int t = 0; t < 60; ++t) {
    errors.push_back(
        PrivateMonotoneStatistic(g, FsfStatistic, 2.0, rng).estimate -
        truth);
  }
  EXPECT_LT(SummarizeErrors(errors).median_abs, 7.0);
}

TEST(PrivateMonotoneTest, WorksForEdgeCount) {
  // Edge count is monotone with DS = max degree over induced subgraphs.
  Rng rng(1402);
  const Graph g = gen::Cycle(10);  // DS_edges = 2
  const double truth = EdgeCountStatistic(g);
  std::vector<double> errors;
  for (int t = 0; t < 60; ++t) {
    errors.push_back(
        PrivateMonotoneStatistic(g, EdgeCountStatistic, 2.0, rng).estimate -
        truth);
  }
  EXPECT_LT(SummarizeErrors(errors).median_abs, 8.0);
}

TEST(PrivateMonotoneTest, ExtensionValueAnchoredWhenDeltaAboveDs) {
  // Whenever GEM picks Δ̂ >= DS_f(G), the pre-noise value equals f(G).
  Rng rng(1403);
  const Graph g = gen::CliqueUnion({3, 3, 2});
  const double ds = DownSensitivityBruteForce(g, FsfStatistic);
  for (int t = 0; t < 20; ++t) {
    const MonotoneRelease release =
        PrivateMonotoneStatistic(g, FsfStatistic, 4.0, rng);
    if (release.selected_delta >= ds) {
      EXPECT_NEAR(release.extension_value, FsfStatistic(g), 1e-9);
    }
  }
}

TEST(PrivateMonotoneTest, DeterministicGivenSeed) {
  Rng a(77);
  Rng b(77);
  const Graph g = gen::Grid(3, 3);
  EXPECT_EQ(PrivateMonotoneStatistic(g, FsfStatistic, 1.0, a).estimate,
            PrivateMonotoneStatistic(g, FsfStatistic, 1.0, b).estimate);
}

TEST(PrivateMonotoneDeathTest, LargeGraphRejected) {
  Rng rng(1);
  const Graph g = gen::Path(20);
  EXPECT_DEATH(PrivateMonotoneStatistic(g, FsfStatistic, 1.0, rng),
               "CHECK failed");
}

}  // namespace
}  // namespace nodedp

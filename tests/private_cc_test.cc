// End-to-end tests for Algorithm 1 (PrivateSpanningForestSize) and the
// connected-components release.

#include "core/private_cc.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "eval/stats.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/star.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(PrivateCcTest, DefaultBetaSane) {
  EXPECT_GE(DefaultBeta(1), 0.01);
  EXPECT_LE(DefaultBeta(1), 0.25);
  EXPECT_LE(DefaultBeta(1000000), 0.25);
  EXPECT_GE(DefaultBeta(1000000), 0.01);
  // Decreasing in n (more vertices, smaller failure probability).
  EXPECT_GE(DefaultBeta(100), DefaultBeta(100000));
}

TEST(PrivateCcTest, ReleaseShapeAndDiagnostics) {
  Rng rng(11);
  const Graph g = gen::Path(32);
  const Result<SpanningForestRelease> release =
      PrivateSpanningForestSize(g, /*epsilon=*/1.0, rng);
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->grid, PowersOfTwoGrid(32));
  EXPECT_EQ(release->candidates.size(), release->grid.size());
  EXPECT_GE(release->selected_delta, 1);
  EXPECT_LE(release->selected_delta, 32);
  EXPECT_GT(release->laplace_scale, 0.0);
  // Extension value underestimates f_sf.
  EXPECT_LE(release->extension_value, SpanningForestSize(g) + 1e-6);
}

TEST(PrivateCcTest, PathErrorConcentratesNearDeltaStar) {
  // Paths have Δ* = 2; with ε = 2 the selected Δ̂ should usually be small
  // and the absolute error far below n.
  Rng rng(12);
  const Graph g = gen::Path(64);
  const double truth = SpanningForestSize(g);
  std::vector<double> errors;
  std::vector<double> selected;
  for (int t = 0; t < 60; ++t) {
    const auto release = PrivateSpanningForestSize(g, 2.0, rng);
    ASSERT_TRUE(release.ok());
    errors.push_back(release->estimate - truth);
    selected.push_back(release->selected_delta);
  }
  const ErrorSummary summary = SummarizeErrors(errors);
  EXPECT_LT(summary.median_abs, 16.0);  // n/4, loose but meaningful
  // Δ̂ should be 2/4-ish most of the time, far from n = 64.
  EXPECT_LT(Quantile(selected, 0.5), 9.0);
}

TEST(PrivateCcTest, EntityGraphAccuracy) {
  // Union of small cliques: s(G) = 1 (cliques), so Δ* <= 2 and the
  // estimate should be sharp.
  Rng rng(13);
  const Graph g = gen::RandomEntityGraph(60, 4, rng);
  const double truth = CountConnectedComponents(g);
  std::vector<double> errors;
  for (int t = 0; t < 40; ++t) {
    const auto release = PrivateConnectedComponents(g, 2.0, rng);
    ASSERT_TRUE(release.ok());
    errors.push_back(release->estimate - truth);
  }
  EXPECT_LT(SummarizeErrors(errors).median_abs, 12.0);
}

TEST(PrivateCcTest, EquationOneConsistency) {
  // estimate_cc = estimate_n - estimate_sf by construction.
  Rng rng(14);
  const Graph g = gen::Grid(6, 6);
  const auto release = PrivateConnectedComponents(g, 1.0, rng);
  ASSERT_TRUE(release.ok());
  EXPECT_NEAR(release->estimate,
              release->node_count_estimate - release->forest.estimate,
              1e-9);
}

TEST(PrivateCcTest, ExtensionValuesMatchSelectedDelta) {
  // The released pre-noise value must equal f_Δ̂(G) for the Δ̂ that GEM
  // selected (internal consistency of Algorithm 1 steps 1-2).
  Rng rng(15);
  const Graph g = gen::Caterpillar(8, 3);
  for (int t = 0; t < 10; ++t) {
    const auto release = PrivateSpanningForestSize(g, 1.0, rng);
    ASSERT_TRUE(release.ok());
    int index = -1;
    for (size_t i = 0; i < release->grid.size(); ++i) {
      if (release->grid[i] == release->selected_delta) {
        index = static_cast<int>(i);
      }
    }
    ASSERT_GE(index, 0);
    // q = (f_sf - f_Δ) + Δ/(ε/2); recover f_Δ and compare.
    const double gem_epsilon = 0.5;
    const double q = release->candidates[index].q;
    const double f_delta = SpanningForestSize(g) -
                           (q - release->selected_delta / gem_epsilon);
    EXPECT_NEAR(f_delta, release->extension_value, 1e-6);
  }
}

TEST(PrivateCcTest, DeltaMaxOverrideShrinksGrid) {
  Rng rng(16);
  const Graph g = gen::Path(100);
  PrivateCcOptions options;
  options.delta_max = 8;
  const auto release = PrivateSpanningForestSize(g, 1.0, rng, options);
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->grid, (std::vector<int>{1, 2, 4, 8}));
}

TEST(PrivateCcTest, NoiseScalesInverselyWithEpsilon) {
  // Mean abs error at eps = 8 should be well below eps = 0.25 on the same
  // workload.
  Rng rng(17);
  const Graph g = gen::Path(48);
  const double truth = SpanningForestSize(g);
  auto mean_abs_error = [&](double epsilon) {
    std::vector<double> errors;
    for (int t = 0; t < 50; ++t) {
      const auto release = PrivateSpanningForestSize(g, epsilon, rng);
      errors.push_back(release.value().estimate - truth);
    }
    return SummarizeErrors(errors).mean_abs;
  };
  EXPECT_LT(mean_abs_error(8.0) * 3.0, mean_abs_error(0.25));
}

TEST(PrivateCcTest, GeometricGraphSelectsSmallDelta) {
  // s(G) <= 5 for geometric graphs: the anchor set is reached by Δ = 8 at
  // the latest, so GEM should rarely pick larger Δ.
  Rng rng(18);
  const Graph g = gen::RandomGeometric(120, 0.12, rng);
  std::vector<double> selected;
  for (int t = 0; t < 30; ++t) {
    const auto release = PrivateSpanningForestSize(g, 2.0, rng);
    ASSERT_TRUE(release.ok());
    selected.push_back(release->selected_delta);
  }
  EXPECT_LE(Quantile(selected, 0.5), 8.0);
}

TEST(PrivateCcTest, BudgetSplitHonored) {
  Rng rng(19);
  const Graph g = gen::Path(16);
  PrivateCcOptions options;
  options.node_count_budget_fraction = 0.2;
  const auto release = PrivateConnectedComponents(g, 1.0, rng, options);
  ASSERT_TRUE(release.ok());
  // Forest release ran at 0.8; its Laplace scale is Δ̂ / (0.8/2).
  EXPECT_NEAR(release->forest.laplace_scale,
              release->forest.selected_delta / 0.4, 1e-9);
}

TEST(PrivateCcDeathTest, InvalidEpsilon) {
  Rng rng(1);
  const Graph g = gen::Path(4);
  EXPECT_DEATH(PrivateSpanningForestSize(g, 0.0, rng).ok(), "CHECK failed");
}

}  // namespace
}  // namespace nodedp

#include "graph/union_find.h"

#include <gtest/gtest.h>

namespace nodedp {
namespace {

TEST(UnionFindTest, StartsAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1);
  }
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_EQ(uf.NumSets(), 4);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SetSize(3), 4);
  EXPECT_EQ(uf.NumSets(), 3);  // {0,1,2,3}, {4}, {5}
}

TEST(UnionFindTest, NumSetsExactAfterChain) {
  UnionFind uf(10);
  for (int i = 0; i + 1 < 10; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.NumSets(), 1);
  EXPECT_EQ(uf.SetSize(0), 10);
}

TEST(UnionFindTest, ZeroElements) {
  UnionFind uf(0);
  EXPECT_EQ(uf.NumSets(), 0);
}

TEST(UnionFindTest, TransitivityRandomized) {
  // Union in star pattern; all connected to 0.
  UnionFind uf(50);
  for (int i = 1; i < 50; ++i) uf.Union(0, i);
  for (int i = 1; i < 50; ++i) {
    EXPECT_TRUE(uf.Connected(i, (i * 7) % 50));
  }
  EXPECT_EQ(uf.NumSets(), 1);
}

}  // namespace
}  // namespace nodedp

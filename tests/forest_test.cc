// Tests for the mutable Forest structure and BFS spanning forests.

#include "graph/forest.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(ForestTest, AddRemoveEdges) {
  Forest f(5);
  f.AddEdge(0, 1);
  f.AddEdge(1, 2);
  EXPECT_TRUE(f.HasEdge(0, 1));
  EXPECT_TRUE(f.HasEdge(2, 1));
  EXPECT_EQ(f.NumEdges(), 2);
  EXPECT_EQ(f.Degree(1), 2);
  f.RemoveEdge(1, 0);
  EXPECT_FALSE(f.HasEdge(0, 1));
  EXPECT_EQ(f.NumEdges(), 1);
  EXPECT_EQ(f.Degree(1), 1);
}

TEST(ForestTest, MaxDegreeAndSearch) {
  Forest f(6);
  f.AddEdge(0, 1);
  f.AddEdge(0, 2);
  f.AddEdge(0, 3);
  EXPECT_EQ(f.MaxDegree(), 3);
  EXPECT_EQ(f.FindVertexWithDegreeAtLeast(3), 0);
  EXPECT_EQ(f.FindVertexWithDegreeAtLeast(4), -1);
}

TEST(ForestTest, IsForestDetectsCycles) {
  Forest f(4);
  f.AddEdge(0, 1);
  f.AddEdge(1, 2);
  EXPECT_TRUE(f.IsForest());
  f.AddEdge(2, 0);
  EXPECT_FALSE(f.IsForest());
}

TEST(ForestTest, ConnectedQueries) {
  Forest f(5);
  f.AddEdge(0, 1);
  f.AddEdge(3, 4);
  EXPECT_TRUE(f.Connected(0, 1));
  EXPECT_FALSE(f.Connected(1, 3));
  EXPECT_TRUE(f.Connected(2, 2));
}

TEST(ForestTest, EdgeListNormalized) {
  Forest f(4);
  f.AddEdge(3, 1);
  f.AddEdge(2, 0);
  const auto edges = f.EdgeList();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_LT(edges[0].u, edges[0].v);
  EXPECT_LT(edges[1].u, edges[1].v);
}

TEST(ForestTest, IsSpanningForestOfValidation) {
  const Graph g = gen::Path(4);
  Forest good(4);
  good.AddEdge(0, 1);
  good.AddEdge(1, 2);
  good.AddEdge(2, 3);
  EXPECT_TRUE(good.IsSpanningForestOf(g));

  Forest too_few(4);
  too_few.AddEdge(0, 1);
  EXPECT_FALSE(too_few.IsSpanningForestOf(g));

  Forest not_subgraph(4);
  not_subgraph.AddEdge(0, 1);
  not_subgraph.AddEdge(1, 2);
  not_subgraph.AddEdge(0, 3);  // not an edge of the path
  EXPECT_FALSE(not_subgraph.IsSpanningForestOf(g));
}

TEST(ForestTest, BfsSpanningForestIsSpanning) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::ErdosRenyi(25, 0.08, rng);
    const Forest forest = BfsSpanningForest(g);
    EXPECT_TRUE(forest.IsSpanningForestOf(g));
    EXPECT_EQ(forest.NumEdges(), SpanningForestSize(g));
  }
}

TEST(ForestDeathTest, DoubleAddFails) {
  Forest f(3);
  f.AddEdge(0, 1);
  EXPECT_DEATH(f.AddEdge(1, 0), "already in forest");
}

TEST(ForestDeathTest, RemoveMissingFails) {
  Forest f(3);
  EXPECT_DEATH(f.RemoveEdge(0, 1), "not in forest");
}

}  // namespace
}  // namespace nodedp

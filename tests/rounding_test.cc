// Tests for the primal rounding utility and the structural cut seeding of
// the cutting-plane driver.

#include <gtest/gtest.h>

#include <vector>

#include "core/forest_polytope.h"
#include "graph/connectivity.h"
#include "graph/forest.h"
#include "graph/generators.h"
#include "graph/union_find.h"
#include "util/random.h"

namespace nodedp {
namespace {

// Validates the forest property + degree cap of a rounded edge set.
void ExpectValidDegreeBoundedForest(const Graph& g, int delta,
                                    const std::vector<int>& edge_ids) {
  UnionFind uf(g.NumVertices());
  std::vector<int> degree(g.NumVertices(), 0);
  for (int e : edge_ids) {
    const Edge& edge = g.EdgeAt(e);
    EXPECT_TRUE(uf.Union(edge.u, edge.v)) << "cycle at edge " << e;
    ++degree[edge.u];
    ++degree[edge.v];
  }
  for (int v = 0; v < g.NumVertices(); ++v) {
    EXPECT_LE(degree[v], delta);
  }
}

TEST(RoundingTest, ProducesValidForests) {
  Rng rng(1500);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::ErdosRenyi(20, 0.2, rng);
    std::vector<double> weights(g.NumEdges());
    for (double& w : weights) w = rng.NextDouble();
    for (int delta : {1, 2, 3}) {
      ExpectValidDegreeBoundedForest(
          g, delta, GreedyDegreeBoundedForest(g, delta, weights));
    }
  }
}

TEST(RoundingTest, RecoversSpanningForestWhenDegreeAllows) {
  // On a path with uniform weights, greedy with delta >= 2 must take every
  // edge (the path itself is the unique spanning forest).
  const Graph g = gen::Path(15);
  const std::vector<double> weights(g.NumEdges(), 1.0);
  EXPECT_EQ(static_cast<int>(
                GreedyDegreeBoundedForest(g, 2, weights).size()),
            14);
}

TEST(RoundingTest, PrefersHeavyEdges) {
  // Star with 3 leaves at delta = 1: only one edge can be taken; it must be
  // the heaviest.
  const Graph g = gen::Star(3);
  std::vector<double> weights = {0.1, 0.9, 0.5};
  const std::vector<int> chosen = GreedyDegreeBoundedForest(g, 1, weights);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0], 1);
}

TEST(RoundingTest, FractionalDeltaUsesFloor) {
  const Graph g = gen::Star(5);
  const std::vector<double> weights(g.NumEdges(), 1.0);
  EXPECT_EQ(GreedyDegreeBoundedForest(g, 2.9, weights).size(), 2u);
}

TEST(RoundingTest, IsMaximal) {
  // No skipped edge can be added back: either it closes a cycle or hits a
  // saturated endpoint.
  Rng rng(1501);
  const Graph g = gen::ErdosRenyi(15, 0.3, rng);
  std::vector<double> weights(g.NumEdges());
  for (double& w : weights) w = rng.NextDouble();
  const int delta = 2;
  const std::vector<int> chosen = GreedyDegreeBoundedForest(g, delta,
                                                            weights);
  std::vector<bool> in_forest(g.NumEdges(), false);
  for (int e : chosen) in_forest[e] = true;
  UnionFind uf(g.NumVertices());
  std::vector<int> degree(g.NumVertices(), 0);
  for (int e : chosen) {
    uf.Union(g.EdgeAt(e).u, g.EdgeAt(e).v);
    ++degree[g.EdgeAt(e).u];
    ++degree[g.EdgeAt(e).v];
  }
  for (int e = 0; e < g.NumEdges(); ++e) {
    if (in_forest[e]) continue;
    const Edge& edge = g.EdgeAt(e);
    const bool addable = degree[edge.u] < delta && degree[edge.v] < delta &&
                         !uf.Connected(edge.u, edge.v);
    EXPECT_FALSE(addable) << "edge " << e << " was skippable";
  }
}

TEST(StructuralSeedingTest, ValueUnchangedEitherWay) {
  Rng rng(1502);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::ErdosRenyi(12, 0.3, rng);
    for (double delta : {1.0, 2.0, 3.0}) {
      ForestPolytopeOptions with_seed;
      ForestPolytopeOptions without_seed;
      without_seed.seed_structural_cuts = false;
      const ForestPolytopeResult a =
          MaximizeOverForestPolytope(g, delta, with_seed);
      const ForestPolytopeResult b =
          MaximizeOverForestPolytope(g, delta, without_seed);
      ASSERT_EQ(a.status, LpStatus::kOptimal);
      ASSERT_EQ(b.status, LpStatus::kOptimal);
      EXPECT_NEAR(a.value, b.value, 1e-6)
          << "trial=" << trial << " delta=" << delta;
    }
  }
}

TEST(StructuralSeedingTest, SeededRunsNeedNoMoreRounds) {
  Rng rng(1503);
  const Graph g = gen::ErdosRenyi(40, 0.1, rng);
  ForestPolytopeOptions with_seed;
  ForestPolytopeOptions without_seed;
  without_seed.seed_structural_cuts = false;
  const ForestPolytopeResult seeded =
      MaximizeOverForestPolytope(g, 2.0, with_seed);
  const ForestPolytopeResult bare =
      MaximizeOverForestPolytope(g, 2.0, without_seed);
  ASSERT_EQ(seeded.status, LpStatus::kOptimal);
  ASSERT_EQ(bare.status, LpStatus::kOptimal);
  EXPECT_LE(seeded.cut_rounds, bare.cut_rounds);
}

TEST(RoundingDeathTest, InvalidInputs) {
  const Graph g = gen::Path(4);
  const std::vector<double> short_weights(1, 0.5);
  EXPECT_DEATH(GreedyDegreeBoundedForest(g, 2, short_weights),
               "CHECK failed");
  const std::vector<double> weights(g.NumEdges(), 0.5);
  EXPECT_DEATH(GreedyDegreeBoundedForest(g, 0.5, weights), "CHECK failed");
}

}  // namespace
}  // namespace nodedp

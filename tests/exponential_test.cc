// Tests for the exponential mechanism (Gumbel-max implementation).

#include "dp/exponential.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"

namespace nodedp {
namespace {

TEST(ExponentialTest, ProbabilitiesNormalizeAndOrder) {
  const std::vector<double> scores = {0.0, 1.0, 5.0};
  const auto probabilities =
      ExponentialMechanismProbabilities(scores, 1.0, 2.0);
  double total = 0.0;
  for (double p : probabilities) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Lower score => higher probability.
  EXPECT_GT(probabilities[0], probabilities[1]);
  EXPECT_GT(probabilities[1], probabilities[2]);
  // Exact ratio: p0/p1 = exp(eps*(s1-s0)/(2*sens)) = e^1.
  EXPECT_NEAR(probabilities[0] / probabilities[1], std::exp(1.0), 1e-9);
}

TEST(ExponentialTest, ExtremeScoresAreNumericallyStable) {
  const std::vector<double> scores = {1e6, 1e6 + 1.0, 2e6};
  const auto probabilities =
      ExponentialMechanismProbabilities(scores, 1.0, 1.0);
  EXPECT_FALSE(std::isnan(probabilities[0]));
  EXPECT_NEAR(probabilities[0] / probabilities[1], std::exp(0.5), 1e-9);
  EXPECT_NEAR(probabilities[2], 0.0, 1e-12);
}

TEST(ExponentialTest, SamplingMatchesAnalyticDistribution) {
  Rng rng(2024);
  const std::vector<double> scores = {0.0, 0.5, 1.0, 3.0};
  const double sensitivity = 1.0;
  const double epsilon = 2.0;
  const auto expected =
      ExponentialMechanismProbabilities(scores, sensitivity, epsilon);
  const int trials = 200000;
  std::vector<int> counts(scores.size(), 0);
  for (int t = 0; t < trials; ++t) {
    ++counts[ExponentialMechanismMin(scores, sensitivity, epsilon, rng)];
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / trials, expected[i], 0.01)
        << "index " << i;
  }
}

TEST(ExponentialTest, HigherEpsilonConcentratesOnMinimum) {
  Rng rng(2025);
  const std::vector<double> scores = {0.0, 1.0};
  int low_eps_best = 0;
  int high_eps_best = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    if (ExponentialMechanismMin(scores, 1.0, 0.1, rng) == 0) ++low_eps_best;
    if (ExponentialMechanismMin(scores, 1.0, 10.0, rng) == 0) ++high_eps_best;
  }
  EXPECT_GT(high_eps_best, low_eps_best);
  EXPECT_GT(static_cast<double>(high_eps_best) / trials, 0.98);
  EXPECT_LT(static_cast<double>(low_eps_best) / trials, 0.60);
}

TEST(ExponentialTest, SingleCandidateAlwaysSelected) {
  Rng rng(3);
  EXPECT_EQ(ExponentialMechanismMin({7.0}, 1.0, 1.0, rng), 0);
}

TEST(ExponentialDeathTest, EmptyScoresRejected) {
  Rng rng(1);
  EXPECT_DEATH(ExponentialMechanismMin({}, 1.0, 1.0, rng), "CHECK failed");
}

}  // namespace
}  // namespace nodedp

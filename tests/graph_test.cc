// Unit tests for the core Graph type and GraphBuilder.

#include "graph/graph.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace nodedp {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_EQ(g.MaxDegree(), 0);
}

TEST(GraphTest, VerticesWithoutEdges) {
  Graph g(5, {});
  EXPECT_EQ(g.NumVertices(), 5);
  EXPECT_EQ(g.NumEdges(), 0);
  for (int v = 0; v < 5; ++v) {
    EXPECT_EQ(g.Degree(v), 0);
    EXPECT_TRUE(g.Neighbors(v).empty());
  }
}

TEST(GraphTest, NormalizesAndDeduplicatesEdges) {
  Graph g(4, {{2, 1}, {1, 2}, {0, 3}, {3, 0}});
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.EdgeAt(0).u, 0);
  EXPECT_EQ(g.EdgeAt(0).v, 3);
}

TEST(GraphTest, AdjacencySorted) {
  Graph g(5, {{0, 4}, {0, 2}, {0, 1}, {0, 3}});
  const std::vector<int> expected = {1, 2, 3, 4};
  EXPECT_EQ(g.Neighbors(0), Span<const int>(expected));
  EXPECT_EQ(g.Degree(0), 4);
  EXPECT_EQ(g.MaxDegree(), 4);
}

TEST(GraphTest, EdgeIds) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  for (int e = 0; e < g.NumEdges(); ++e) {
    const Edge& edge = g.EdgeAt(e);
    EXPECT_EQ(g.EdgeId(edge.u, edge.v), e);
    EXPECT_EQ(g.EdgeId(edge.v, edge.u), e);
  }
  EXPECT_EQ(g.EdgeId(0, 3), -1);
  EXPECT_EQ(g.EdgeId(0, 0), -1);
}

TEST(GraphTest, IncidentEdgeIdsCoverDegree) {
  Graph g(5, {{0, 1}, {0, 2}, {1, 2}, {3, 4}});
  for (int v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(static_cast<int>(g.IncidentEdgeIds(v).size()), g.Degree(v));
    for (int e : g.IncidentEdgeIds(v)) {
      const Edge& edge = g.EdgeAt(e);
      EXPECT_TRUE(edge.u == v || edge.v == v);
    }
  }
}

TEST(GraphBuilderTest, AddEdgeRejectsDuplicatesAndLoops) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddEdge(0, 1));
  EXPECT_FALSE(builder.AddEdge(1, 0));  // duplicate, reversed
  EXPECT_FALSE(builder.AddEdge(2, 2));  // self-loop
  EXPECT_TRUE(builder.AddEdge(1, 2));
  Graph g = std::move(builder).Build();
  EXPECT_EQ(g.NumEdges(), 2);
}

TEST(GraphBuilderTest, AddEdgeRejectsSameOrientationDuplicate) {
  GraphBuilder builder(2);
  EXPECT_TRUE(builder.AddEdge(0, 1));
  EXPECT_FALSE(builder.AddEdge(0, 1));  // duplicate, same orientation
  Graph g = std::move(builder).Build();
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(GraphBuilderTest, SelfLoopRejectionDoesNotConsumeEdge) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.AddEdge(1, 1));
  // The rejected self-loop must not block the later legitimate edge {1, 2}
  // or leak into the built graph.
  EXPECT_TRUE(builder.AddEdge(1, 2));
  Graph g = std::move(builder).Build();
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphBuilderTest, AddVertexGrowsGraph) {
  GraphBuilder builder(1);
  const int v = builder.AddVertex();
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(builder.AddEdge(0, v));
  Graph g = std::move(builder).Build();
  EXPECT_EQ(g.NumVertices(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(GraphBuilderTest, AddVertexFromEmptyBuilder) {
  GraphBuilder builder(0);
  EXPECT_EQ(builder.AddVertex(), 0);
  EXPECT_EQ(builder.AddVertex(), 1);
  EXPECT_EQ(builder.num_vertices(), 2);
  Graph g = std::move(builder).Build();
  EXPECT_EQ(g.NumVertices(), 2);
  EXPECT_EQ(g.NumEdges(), 0);
}

TEST(GraphBuilderTest, IsolatedAddedVertexSurvivesBuild) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const int isolated = builder.AddVertex();
  Graph g = std::move(builder).Build();
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.Degree(isolated), 0);
  EXPECT_TRUE(g.Neighbors(isolated).empty());
  EXPECT_TRUE(g.IncidentEdgeIds(isolated).empty());
}

TEST(GraphTest, MemoryBytesTracksSize) {
  Graph empty(100, {});
  Graph path(100, [] {
    std::vector<std::pair<int, int>> edges;
    for (int v = 0; v + 1 < 100; ++v) edges.emplace_back(v, v + 1);
    return edges;
  }());
  EXPECT_GT(empty.MemoryBytes(), 0u);  // offsets array is always there
  EXPECT_GT(path.MemoryBytes(), empty.MemoryBytes());
  // CSR floor: edge list + two flat arrays of 2m ints + n+1 offsets.
  EXPECT_GE(path.MemoryBytes(),
            99 * sizeof(Edge) + 4 * 99 * sizeof(int) + 101 * sizeof(int));
}

TEST(GraphTest, FromSortedEdgesBuildsIdenticalGraph) {
  const std::vector<Edge> sorted = {{0, 1}, {0, 3}, {1, 2}, {2, 3}};
  Graph g = Graph::FromSortedEdges(4, sorted);
  EXPECT_EQ(g.NumEdges(), 4);
  EXPECT_EQ(g.EdgeId(3, 2), 3);
  EXPECT_EQ(g.Degree(0), 2);
  const std::vector<int> expected = {1, 3};
  EXPECT_EQ(g.Neighbors(0), Span<const int>(expected));
}

TEST(GraphBuilderTest, ReserveEdgesPreventsRegrowth) {
  GraphBuilder builder(1000);
  builder.ReserveEdges(999);
  for (int v = 0; v + 1 < 1000; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, v + 1));
  }
  EXPECT_EQ(builder.num_edges(), 999);
  Graph g = std::move(builder).Build();
  EXPECT_EQ(g.NumEdges(), 999);
  EXPECT_EQ(g.MaxDegree(), 2);
}

TEST(GraphTest, EdgeIdOutOfRangeIsAbsent) {
  Graph g(3, {{0, 1}});
  EXPECT_EQ(g.EdgeId(-1, 1), -1);
  EXPECT_EQ(g.EdgeId(0, 99), -1);
  EXPECT_FALSE(g.HasEdge(-1, 0));
  EXPECT_FALSE(g.HasEdge(2, 99));
}

TEST(GraphDeathTest, RejectsSelfLoop) {
  EXPECT_DEATH(Graph(3, {{1, 1}}), "self-loop");
}

TEST(GraphDeathTest, RejectsOutOfRangeEndpoint) {
  EXPECT_DEATH(Graph(3, {{0, 3}}), "CHECK failed");
}

TEST(GraphBuilderDeathTest, AddEdgeRejectsOutOfRangeEndpoint) {
  GraphBuilder builder(2);
  EXPECT_DEATH(builder.AddEdge(0, 2), "CHECK failed");
  EXPECT_DEATH(builder.AddEdge(-1, 0), "CHECK failed");
}

TEST(GraphTest, TryFromSortedEdgesAcceptsValidInput) {
  const Result<Graph> g =
      Graph::TryFromSortedEdges(4, {Edge{0, 1}, Edge{1, 2}, Edge{1, 3}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 4);
  EXPECT_EQ(g->NumEdges(), 3);
  EXPECT_EQ(g->Degree(1), 3);
}

TEST(GraphTest, TryFromSortedEdgesGuardsIntOverflow) {
  // Counts wider than int32 are refused with a Status before any CSR
  // allocation happens (the ingestion-path overflow guard).
  const Result<Graph> too_many_vertices =
      Graph::TryFromSortedEdges(Graph::kMaxVertices + 1, {});
  ASSERT_FALSE(too_many_vertices.ok());
  EXPECT_EQ(too_many_vertices.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(too_many_vertices.status().message().find("vertex count"),
            std::string::npos);

  const Result<Graph> negative = Graph::TryFromSortedEdges(-1, {});
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);

  // At the boundary the count is accepted (an empty edge list keeps the
  // allocation at offsets-only scale; ~8 GiB, too big for a unit test, so
  // boundary acceptance is checked at a realistic size instead).
  EXPECT_TRUE(Graph::TryFromSortedEdges(1000, {}).ok());
}

TEST(GraphTest, ApplyEdgeDeltaMergesAndNormalizes) {
  const Graph g(5, {{0, 1}, {2, 3}});
  // Reversed endpoints, an in-batch repeat, and a resident duplicate.
  const Result<Graph::EdgeDelta> delta =
      g.ApplyEdgeDelta({{4, 1}, {1, 4}, {3, 2}, {0, 4}});
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->duplicates, 2);
  ASSERT_EQ(delta->added.size(), 2u);
  EXPECT_EQ(delta->added[0], (Edge{0, 4}));
  EXPECT_EQ(delta->added[1], (Edge{1, 4}));
  EXPECT_EQ(delta->graph.NumEdges(), 4);
  EXPECT_TRUE(delta->graph.HasEdge(1, 4));
  EXPECT_TRUE(delta->graph.HasEdge(0, 4));
  // The original graph is untouched — readers keep serving it.
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_FALSE(g.HasEdge(1, 4));
}

TEST(GraphTest, ApplyEdgeDeltaMatchesFromScratchBuild) {
  const Graph g(6, {{0, 1}, {1, 2}, {3, 4}});
  const Result<Graph::EdgeDelta> delta =
      g.ApplyEdgeDelta({{2, 0}, {4, 5}, {0, 5}});
  ASSERT_TRUE(delta.ok());
  const Graph rebuilt(6, {{0, 1}, {1, 2}, {3, 4}, {0, 2}, {4, 5}, {0, 5}});
  ASSERT_EQ(delta->graph.NumEdges(), rebuilt.NumEdges());
  for (int e = 0; e < rebuilt.NumEdges(); ++e) {
    EXPECT_EQ(delta->graph.EdgeAt(e), rebuilt.EdgeAt(e));
  }
}

TEST(GraphTest, ApplyEdgeDeltaPureDuplicatesKeepsGraph) {
  const Graph g(4, {{0, 1}, {2, 3}});
  const Result<Graph::EdgeDelta> delta = g.ApplyEdgeDelta({{1, 0}, {2, 3}});
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->added.empty());
  EXPECT_EQ(delta->duplicates, 2);
  EXPECT_EQ(delta->graph.NumEdges(), 2);
}

TEST(GraphTest, ApplyEdgeDeltaRefusesBadBatchesWholesale) {
  const Graph g(4, {{0, 1}});
  // A self-loop or an out-of-range endpoint anywhere in the batch refuses
  // everything: this is the data-plane entry point, so bad input must
  // produce a Status, not a CHECK, and must change nothing.
  const Result<Graph::EdgeDelta> self_loop = g.ApplyEdgeDelta({{2, 3}, {1, 1}});
  ASSERT_FALSE(self_loop.ok());
  EXPECT_EQ(self_loop.status().code(), StatusCode::kInvalidArgument);
  const Result<Graph::EdgeDelta> out_of_range =
      g.ApplyEdgeDelta({{2, 3}, {0, 4}});
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);
  const Result<Graph::EdgeDelta> negative = g.ApplyEdgeDelta({{-1, 2}});
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(GraphTest, ApplyEdgeDeltaEmptyBatch) {
  const Graph g(3, {{0, 1}});
  const Result<Graph::EdgeDelta> delta = g.ApplyEdgeDelta({});
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->added.empty());
  EXPECT_EQ(delta->duplicates, 0);
  EXPECT_EQ(delta->graph.NumEdges(), 1);
}

}  // namespace
}  // namespace nodedp

// Tests for the dense two-phase simplex solver.

#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "lp/lp_problem.h"
#include "util/random.h"

namespace nodedp {
namespace {

constexpr double kTol = 1e-7;

TEST(SimplexTest, TrivialSingleVariable) {
  // max x s.t. x <= 4.
  LpProblem lp(1);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{0, 1.0}}, 4.0);
  const LpSolution solution = SolveLp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 4.0, kTol);
  EXPECT_NEAR(solution.x[0], 4.0, kTol);
}

TEST(SimplexTest, TwoVariableTextbook) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> optimum 36 at (2,6).
  LpProblem lp(2);
  lp.SetObjective(0, 3.0);
  lp.SetObjective(1, 5.0);
  lp.AddConstraint({{0, 1.0}}, 4.0);
  lp.AddConstraint({{1, 2.0}}, 12.0);
  lp.AddConstraint({{0, 3.0}, {1, 2.0}}, 18.0);
  const LpSolution solution = SolveLp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 36.0, kTol);
  EXPECT_NEAR(solution.x[0], 2.0, kTol);
  EXPECT_NEAR(solution.x[1], 6.0, kTol);
}

TEST(SimplexTest, UnboundedDetected) {
  // max x + y with only x <= 1: y grows without bound.
  LpProblem lp(2);
  lp.SetObjective(0, 1.0);
  lp.SetObjective(1, 1.0);
  lp.AddConstraint({{0, 1.0}}, 1.0);
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= -1 with x >= 0 is infeasible.
  LpProblem lp(1);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{0, 1.0}}, -1.0);
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, NegativeRhsFeasibleViaPhaseOne) {
  // max x subject to -x <= -2 (i.e. x >= 2) and x <= 5 -> optimum 5.
  LpProblem lp(1);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{0, -1.0}}, -2.0);
  lp.AddConstraint({{0, 1.0}}, 5.0);
  const LpSolution solution = SolveLp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 5.0, kTol);
}

TEST(SimplexTest, GreaterEqualBindingAtOptimum) {
  // min-like shape: max -x s.t. x >= 3 (as -x <= -3) -> x = 3.
  LpProblem lp(1);
  lp.SetObjective(0, -1.0);
  lp.AddConstraint({{0, -1.0}}, -3.0);
  const LpSolution solution = SolveLp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[0], 3.0, kTol);
  EXPECT_NEAR(solution.objective, -3.0, kTol);
}

TEST(SimplexTest, DegenerateDoesNotCycle) {
  // Classic Beale-type degeneracy; the solver must terminate (Bland
  // fallback) with the correct optimum 0.05 at x4 = 1... Beale's example:
  // max 0.75x1 - 150x2 + 0.02x3 - 6x4
  //  s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
  //       0.5x1 - 90x2 - 0.02x3 + 3x4 <= 0
  //       x3 <= 1
  // Optimum value 0.05.
  LpProblem lp(4);
  lp.SetObjective(0, 0.75);
  lp.SetObjective(1, -150.0);
  lp.SetObjective(2, 0.02);
  lp.SetObjective(3, -6.0);
  lp.AddConstraint({{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, 0.0);
  lp.AddConstraint({{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, 0.0);
  lp.AddConstraint({{2, 1.0}}, 1.0);
  const LpSolution solution = SolveLp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.05, 1e-6);
}

TEST(SimplexTest, DuplicateRowEntriesAreSummed) {
  // x + x <= 4 means 2x <= 4.
  LpProblem lp(1);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{0, 1.0}, {0, 1.0}}, 4.0);
  const LpSolution solution = SolveLp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[0], 2.0, kTol);
}

TEST(SimplexTest, DualValuesSatisfyStrongDuality) {
  LpProblem lp(2);
  lp.SetObjective(0, 3.0);
  lp.SetObjective(1, 5.0);
  lp.AddConstraint({{0, 1.0}}, 4.0);
  lp.AddConstraint({{1, 2.0}}, 12.0);
  lp.AddConstraint({{0, 3.0}, {1, 2.0}}, 18.0);
  const LpSolution solution = SolveLp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  double dual_objective = 0.0;
  const double rhs[] = {4.0, 12.0, 18.0};
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(solution.duals[i], -kTol);
    dual_objective += solution.duals[i] * rhs[i];
  }
  EXPECT_NEAR(dual_objective, solution.objective, 1e-6);
}

TEST(SimplexTest, IterationLimitReported) {
  LpProblem lp(2);
  lp.SetObjective(0, 1.0);
  lp.SetObjective(1, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, 10.0);
  SimplexOptions options;
  options.max_iterations = 0;  // auto is plenty
  EXPECT_EQ(SolveLp(lp, options).status, LpStatus::kOptimal);
  // Note: a hard limit of 1 below cannot even complete the first pivot
  // sequence on a problem that needs 1+ pivots... it may still succeed in
  // one pivot; use a problem needing two.
  LpProblem lp2(2);
  lp2.SetObjective(0, 3.0);
  lp2.SetObjective(1, 5.0);
  lp2.AddConstraint({{0, 1.0}}, 4.0);
  lp2.AddConstraint({{1, 2.0}}, 12.0);
  lp2.AddConstraint({{0, 3.0}, {1, 2.0}}, 18.0);
  SimplexOptions tight;
  tight.max_iterations = 1;
  EXPECT_EQ(SolveLp(lp2, tight).status, LpStatus::kIterationLimit);
}

TEST(SimplexTest, RandomLpsAgainstBruteForceVertexEnumeration) {
  // For random 2-variable LPs, compare against brute-force over constraint
  // intersections (vertices of the feasible polygon).
  Rng rng(31337);
  for (int trial = 0; trial < 40; ++trial) {
    LpProblem lp(2);
    const double c0 = rng.NextDouble() * 4 - 2;
    const double c1 = rng.NextDouble() * 4 - 2;
    lp.SetObjective(0, c0);
    lp.SetObjective(1, c1);
    std::vector<std::array<double, 3>> rows;
    rows.push_back({1.0, 0.0, 1.0 + 3.0 * rng.NextDouble()});  // x <= b
    rows.push_back({0.0, 1.0, 1.0 + 3.0 * rng.NextDouble()});  // y <= b
    for (int extra = 0; extra < 3; ++extra) {
      rows.push_back({rng.NextDouble() * 2, rng.NextDouble() * 2,
                      1.0 + 4.0 * rng.NextDouble()});
    }
    for (const auto& row : rows) {
      lp.AddConstraint({{0, row[0]}, {1, row[1]}}, row[2]);
    }
    const LpSolution solution = SolveLp(lp);
    ASSERT_EQ(solution.status, LpStatus::kOptimal) << trial;

    // Brute force: candidate vertices = axis intersections + pairwise
    // constraint intersections, filtered for feasibility.
    std::vector<std::pair<double, double>> candidates = {{0.0, 0.0}};
    auto add_axis = [&](const std::array<double, 3>& row) {
      if (row[0] > 1e-9) candidates.push_back({row[2] / row[0], 0.0});
      if (row[1] > 1e-9) candidates.push_back({0.0, row[2] / row[1]});
    };
    for (const auto& row : rows) add_axis(row);
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t j = i + 1; j < rows.size(); ++j) {
        const double det = rows[i][0] * rows[j][1] - rows[i][1] * rows[j][0];
        if (std::fabs(det) < 1e-9) continue;
        const double x =
            (rows[i][2] * rows[j][1] - rows[i][1] * rows[j][2]) / det;
        const double y =
            (rows[i][0] * rows[j][2] - rows[i][2] * rows[j][0]) / det;
        candidates.push_back({x, y});
      }
    }
    double best = 0.0;  // origin is always feasible here (rhs > 0)
    for (const auto& [x, y] : candidates) {
      if (x < -1e-9 || y < -1e-9) continue;
      bool feasible = true;
      for (const auto& row : rows) {
        if (row[0] * x + row[1] * y > row[2] + 1e-9) {
          feasible = false;
          break;
        }
      }
      if (feasible) best = std::max(best, c0 * x + c1 * y);
    }
    EXPECT_NEAR(solution.objective, best, 1e-6) << "trial=" << trial;
  }
}

}  // namespace
}  // namespace nodedp

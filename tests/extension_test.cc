// Tests for the Lipschitz extension f_Δ (Definition 3.1 / Lemma 3.3):
// exact values on structured graphs, cross-validation of the cutting-plane
// evaluator against the exhaustive-constraint LP, and the paper's claimed
// properties (underestimation, monotonicity in Δ, anchor sets,
// Δ-Lipschitzness, additivity over components, Remark 3.4 tightness).

#include "core/lipschitz_extension.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/forest_polytope.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/random.h"

namespace nodedp {
namespace {

constexpr double kTol = 1e-5;

double Eval(const Graph& g, double delta, bool fast_path = true) {
  ExtensionOptions options;
  options.use_repair_fast_path = fast_path;
  return LipschitzExtensionValue(g, delta, options);
}

TEST(ExtensionTest, EmptyAndEdgelessGraphs) {
  EXPECT_NEAR(Eval(Graph(), 1.0), 0.0, kTol);
  EXPECT_NEAR(Eval(gen::Empty(7), 1.0), 0.0, kTol);
  EXPECT_NEAR(Eval(gen::Empty(7), 5.0), 0.0, kTol);
}

TEST(ExtensionTest, SingleEdge) {
  Graph g(2, {{0, 1}});
  EXPECT_NEAR(Eval(g, 1.0), 1.0, kTol);
  EXPECT_NEAR(Eval(g, 2.0), 1.0, kTol);
}

TEST(ExtensionTest, PathHasSpanning2Forest) {
  const Graph g = gen::Path(10);
  // Anchor set: f_Δ = f_sf = 9 for all Δ >= 2.
  for (double delta : {2.0, 3.0, 8.0}) {
    EXPECT_NEAR(Eval(g, delta), 9.0, kTol) << "delta=" << delta;
  }
}

TEST(ExtensionTest, PathAtDeltaOneIsFractionalMatchingValue) {
  // Path v0-v1-...-v4 with Δ=1: LP relaxation of max matching with subtour
  // constraints. For P5 (4 edges) the optimum is 2 (take edges 0-1, 2-3).
  const Graph g = gen::Path(5);
  EXPECT_NEAR(Eval(g, 1.0, /*fast_path=*/false), 2.0, kTol);
}

TEST(ExtensionTest, TriangleAtDeltaOneIsFractional) {
  // K3 with Δ=1: x_e = 1/2 each gives 1.5; subtour caps x(E) <= 2 and
  // degrees cap each vertex at 1. Optimum is exactly 1.5 — witnesses that
  // the Δ-bounded forest polytope is not integral.
  const Graph g = gen::Complete(3);
  EXPECT_NEAR(Eval(g, 1.0), 1.5, kTol);
}

TEST(ExtensionTest, CompleteGraphFullDelta) {
  // K5 has a spanning star: f_Δ = f_sf = 4 for Δ >= 4; for Δ = 1 the
  // fractional matching value 5/2 = 2.5 (odd clique).
  const Graph g = gen::Complete(5);
  EXPECT_NEAR(Eval(g, 4.0), 4.0, kTol);
  EXPECT_NEAR(Eval(g, 1.0), 2.5, kTol);
}

TEST(ExtensionTest, StarExactValues) {
  // Star with k leaves: f_Δ = min(Δ, k) — degree constraint at the center
  // binds; this is the Remark 3.4 family.
  const Graph g = gen::Star(6);
  for (int delta = 1; delta <= 7; ++delta) {
    EXPECT_NEAR(Eval(g, delta), std::min(delta, 6), kTol) << delta;
  }
}

TEST(ExtensionTest, Remark34TightLipschitzConstant) {
  // G = Δ isolated vertices, G' = G plus an apex adjacent to everything.
  // f_Δ(G) = 0 and f_Δ(G') = Δ: the Lipschitz constant Δ is attained.
  for (int delta : {1, 2, 4, 8}) {
    const Graph g = gen::Empty(delta);
    std::vector<int> all;
    for (int v = 0; v < delta; ++v) all.push_back(v);
    const Graph g_prime = AddVertex(g, all);
    EXPECT_NEAR(Eval(g, delta), 0.0, kTol);
    EXPECT_NEAR(Eval(g_prime, delta), delta, kTol);
  }
}

TEST(ExtensionTest, MatchesExhaustiveLpOnSmallGraphs) {
  Rng rng(20230413);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 4 + static_cast<int>(rng.NextUint64(5));  // 4..8
    const double p = 0.15 + 0.1 * static_cast<double>(rng.NextUint64(6));
    const Graph g = gen::ErdosRenyi(n, p, rng);
    for (double delta : {1.0, 2.0, 3.0}) {
      const ForestPolytopeResult exhaustive =
          MaximizeOverForestPolytopeExhaustive(g, delta);
      ASSERT_EQ(exhaustive.status, LpStatus::kOptimal);
      EXPECT_NEAR(Eval(g, delta, /*fast_path=*/false), exhaustive.value, kTol)
          << "n=" << n << " p=" << p << " delta=" << delta
          << " trial=" << trial;
    }
  }
}

TEST(ExtensionTest, FastPathAgreesWithLp) {
  Rng rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::ErdosRenyi(12, 0.25, rng);
    for (double delta : {1.0, 2.0, 4.0, 8.0}) {
      EXPECT_NEAR(Eval(g, delta, /*fast_path=*/true),
                  Eval(g, delta, /*fast_path=*/false), kTol)
          << "trial=" << trial << " delta=" << delta;
    }
  }
}

TEST(ExtensionTest, UnderestimatesSpanningForestSize) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::ErdosRenyi(14, 0.2, rng);
    const double f_sf = SpanningForestSize(g);
    for (double delta : {1.0, 2.0, 4.0, 16.0}) {
      EXPECT_LE(Eval(g, delta), f_sf + kTol);
    }
  }
}

TEST(ExtensionTest, MonotoneInDelta) {
  Rng rng(456);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::ErdosRenyi(12, 0.3, rng);
    double previous = -1.0;
    for (double delta : {1.0, 2.0, 3.0, 4.0, 6.0, 11.0}) {
      const double value = Eval(g, delta);
      EXPECT_GE(value, previous - kTol) << "delta=" << delta;
      previous = value;
    }
  }
}

TEST(ExtensionTest, AnchorSetContainsBoundedDegreeForests) {
  // Lemma 3.3 Item 1: a spanning Δ-forest forces f_Δ = f_sf.
  const Graph grid = gen::Grid(4, 5);
  EXPECT_NEAR(Eval(grid, 4.0), SpanningForestSize(grid), kTol);
  const Graph caterpillar = gen::Caterpillar(6, 3);
  EXPECT_NEAR(Eval(caterpillar, 5.0), SpanningForestSize(caterpillar), kTol);
}

TEST(ExtensionTest, LipschitzOnRandomNodeNeighbors) {
  // |f_Δ(G') - f_Δ(G)| <= Δ where G' = G + one vertex with arbitrary edges.
  Rng rng(789);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph g = gen::ErdosRenyi(10, 0.3, rng);
    std::vector<int> neighbors;
    for (int v = 0; v < g.NumVertices(); ++v) {
      if (rng.NextBernoulli(0.5)) neighbors.push_back(v);
    }
    const Graph g_prime = AddVertex(g, neighbors);
    for (double delta : {1.0, 2.0, 4.0}) {
      const double lo = Eval(g, delta);
      const double hi = Eval(g_prime, delta);
      EXPECT_GE(hi, lo - kTol);           // monotone under node insertion
      EXPECT_LE(hi - lo, delta + kTol);   // Δ-Lipschitz
    }
  }
}

TEST(ExtensionTest, AdditiveOverComponents) {
  Rng rng(1001);
  const Graph a = gen::ErdosRenyi(8, 0.4, rng);
  const Graph b = gen::Path(6);
  const Graph c = gen::Complete(4);
  const Graph whole = gen::DisjointUnion({a, b, c});
  for (double delta : {1.0, 2.0, 3.0}) {
    EXPECT_NEAR(Eval(whole, delta),
                Eval(a, delta) + Eval(b, delta) + Eval(c, delta), kTol);
  }
}

TEST(ExtensionTest, RejectsDeltaBelowOne) {
  const Graph g = gen::Path(4);
  Result<ExtensionValue> result = EvalLipschitzExtension(g, 0.5);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExtensionTest, ReportsFastPathUsage) {
  const Graph g = gen::Path(20);
  Result<ExtensionValue> with_fast = EvalLipschitzExtension(g, 2.0);
  ASSERT_TRUE(with_fast.ok());
  EXPECT_EQ(with_fast->components_fast, 1);
  EXPECT_EQ(with_fast->components_lp, 0);

  ExtensionOptions no_fast;
  no_fast.use_repair_fast_path = false;
  Result<ExtensionValue> with_lp = EvalLipschitzExtension(g, 2.0, no_fast);
  ASSERT_TRUE(with_lp.ok());
  EXPECT_EQ(with_lp->components_lp, 1);
  EXPECT_NEAR(with_lp->value, with_fast->value, kTol);
}

}  // namespace
}  // namespace nodedp

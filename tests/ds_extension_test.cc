// Tests for the down-sensitivity-based extension of Lemma A.1 and the
// anchor-set optimality results (Lemma 1.9, Lemma A.3).

#include "core/ds_extension.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/down_sensitivity.h"
#include "core/lipschitz_extension.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/random.h"

namespace nodedp {
namespace {

constexpr double kTol = 1e-5;

double FsfStatistic(const Graph& g) { return SpanningForestSize(g); }

TEST(DsExtensionTest, EqualsStatisticOnAnchorSet) {
  // Lemma A.1: DS_f(G) <= Δ  =>  f̂_Δ(G) = f(G).
  Rng rng(210);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = gen::ErdosRenyi(7, 0.3, rng);
    const double ds = DownSensitivityBruteForce(g, FsfStatistic);
    const double fsf = SpanningForestSize(g);
    EXPECT_NEAR(DownSensitivityExtension(g, ds, FsfStatistic), fsf, kTol);
    EXPECT_NEAR(DownSensitivityExtension(g, ds + 2.0, FsfStatistic), fsf,
                kTol);
  }
}

TEST(DsExtensionTest, UnderestimatesOnAnchoredGraphs) {
  // Lemma A.1 claims f̂_Δ <= f everywhere; the one-line proof implicitly
  // assumes G itself is feasible in the min, which requires DS_f(G) <= Δ.
  // We verify underestimation in that (provable) regime; see the
  // counterexample test below for the unanchored regime.
  Rng rng(211);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = gen::ErdosRenyi(7, 0.35, rng);
    const double ds = DownSensitivityBruteForce(g, FsfStatistic);
    for (double delta : {ds, ds + 1.0}) {
      EXPECT_LE(DownSensitivityExtension(g, delta, FsfStatistic),
                SpanningForestSize(g) + kTol);
    }
  }
}

TEST(DsExtensionTest, PaperLemmaA1PropertiesCanFailBelowDownSensitivity) {
  // DEVIATION NOTE (documented in docs/DESIGN_NOTES.md §2): for
  // Δ < DS_f(G), the literal
  // Lemma A.1 formula can overshoot f(G) and can decrease as Δ grows. This
  // deterministic 7-vertex Erdős–Rényi instance (the third draw at seed
  // 211) exhibits both: f_sf(G) = 6 yet f̂_2(G) = 7 > 6, while
  // f̂_3(G) = 6 < f̂_2(G). The main-text results (Lemma 1.9, Lemma A.3) are
  // unaffected — they only use anchored graphs — and are tested elsewhere.
  Rng rng(211);
  Graph counterexample;
  bool found = false;
  for (int trial = 0; trial < 25 && !found; ++trial) {
    const Graph g = gen::ErdosRenyi(7, 0.35, rng);
    const double v2 = DownSensitivityExtension(g, 2.0, FsfStatistic);
    if (v2 > SpanningForestSize(g) + kTol) {
      counterexample = g;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  const double fsf = SpanningForestSize(counterexample);
  const double v2 = DownSensitivityExtension(counterexample, 2.0,
                                             FsfStatistic);
  const double v3 = DownSensitivityExtension(counterexample, 3.0,
                                             FsfStatistic);
  EXPECT_GT(v2, fsf + kTol);                // not an underestimate
  EXPECT_LT(v3, v2 - kTol);                 // not monotone in Δ
  EXPECT_GT(DownSensitivityBruteForce(counterexample, FsfStatistic), 2.0);
}

TEST(DsExtensionTest, LipschitzOnNodeNeighbors) {
  Rng rng(213);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::ErdosRenyi(7, 0.3, rng);
    std::vector<int> neighbors;
    for (int v = 0; v < g.NumVertices(); ++v) {
      if (rng.NextBernoulli(0.5)) neighbors.push_back(v);
    }
    const Graph g_prime = AddVertex(g, neighbors);
    for (double delta : {1.0, 2.0}) {
      const double lo = DownSensitivityExtension(g, delta, FsfStatistic);
      const double hi = DownSensitivityExtension(g_prime, delta,
                                                 FsfStatistic);
      EXPECT_GE(hi, lo - kTol);
      EXPECT_LE(hi - lo, delta + kTol);
    }
  }
}

TEST(DsExtensionTest, StarValues) {
  // Star with k leaves: DS = k. For Δ < k the best anchored subgraph
  // trades leaves for Δ-per-vertex credit.
  const Graph g = gen::Star(4);
  EXPECT_NEAR(DownSensitivityExtension(g, 4.0, FsfStatistic), 4.0, kTol);
  // Δ=1: anchored subgraphs have DS <= 1 (no induced 2-star). Candidates:
  // remove 3 leaves -> f=1, d=3 => 1+3 = 4; remove center -> f=0, d=1 => 1.
  EXPECT_NEAR(DownSensitivityExtension(g, 1.0, FsfStatistic), 1.0, kTol);
}

TEST(DsExtensionTest, Lemma19AnchorSetInclusion) {
  // Lemma 1.9: DS_fsf(G) <= Δ - 1  =>  f_Δ(G) = f_sf(G) for the paper's
  // polytope extension. Cross-validated with brute-force DS.
  Rng rng(214);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = gen::ErdosRenyi(8, 0.3, rng);
    const double ds = DownSensitivityBruteForce(g, FsfStatistic);
    const double delta = ds + 1.0;
    const double extension = LipschitzExtensionValue(g, delta);
    EXPECT_NEAR(extension, SpanningForestSize(g), kTol)
        << "trial=" << trial << " ds=" << ds;
  }
}

TEST(DsExtensionTest, PolytopeExtensionDominatesDsExtensionOnAnchors) {
  // Both extensions are underestimates of f_sf and both equal f_sf on
  // their anchor sets; verify consistency on random inputs: whenever the
  // DS-extension is exact at Δ, the polytope extension is exact at Δ+1.
  Rng rng(215);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::ErdosRenyi(7, 0.35, rng);
    const double fsf = SpanningForestSize(g);
    for (double delta : {1.0, 2.0, 3.0}) {
      const double ds_ext = DownSensitivityExtension(g, delta, FsfStatistic);
      if (std::fabs(ds_ext - fsf) < kTol) {
        EXPECT_NEAR(LipschitzExtensionValue(g, delta + 1.0), fsf, kTol);
      }
    }
  }
}

}  // namespace
}  // namespace nodedp

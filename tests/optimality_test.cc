// Empirical verification of the optimality results of Section 5:
// Lemma 5.2 (error-attribution witness) and the Err_G comparison of
// Theorem 1.11 against the down-sensitivity extension.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "core/ds_extension.h"
#include "core/lipschitz_extension.h"
#include "core/repair.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/random.h"

namespace nodedp {
namespace {

constexpr double kTol = 1e-5;

// Checks the Lemma 5.2 witness: if G has no spanning Δ-forest then some
// proper induced subgraph H satisfies
//   f_Δ(G) >= f_sf(H) + (Δ-1)·d(G,H) + 1.
bool HasLemma52Witness(const Graph& g, int delta, double f_delta) {
  const int n = g.NumVertices();
  for (uint64_t mask = 0; mask < (1ULL << n) - 1; ++mask) {  // proper only
    const InducedSubgraph h = InduceByMask(g, mask);
    const int removed = n - h.graph.NumVertices();
    const double rhs =
        SpanningForestSize(h.graph) + (delta - 1.0) * removed + 1.0;
    if (f_delta >= rhs - kTol) return true;
  }
  return false;
}

TEST(OptimalityTest, Lemma52OnStars) {
  // The base case of the paper's induction: a (Δ+1)-star with H = leaves.
  for (int delta : {1, 2, 3}) {
    const Graph g = gen::Star(delta + 1);
    ASSERT_FALSE(RepairSpanningForest(g, delta).has_value());
    const double f_delta = LipschitzExtensionValue(g, delta);
    EXPECT_NEAR(f_delta, delta, kTol);  // degree cap binds
    EXPECT_TRUE(HasLemma52Witness(g, delta, f_delta));
  }
}

TEST(OptimalityTest, Lemma52OnRandomGraphsWithoutSpanningDeltaForest) {
  Rng rng(512);
  int exercised = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextUint64(4));  // 5..8
    const Graph g = gen::ErdosRenyi(n, 0.4, rng);
    if (g.NumEdges() == 0) continue;
    for (int delta = 1; delta <= 3; ++delta) {
      // Only applicable when G has no spanning Δ-forest; detect via the
      // exact decision (small n).
      const double f_delta = LipschitzExtensionValue(g, delta);
      const double f_sf = SpanningForestSize(g);
      if (std::fabs(f_delta - f_sf) < kTol) continue;  // anchored; skip
      ++exercised;
      EXPECT_TRUE(HasLemma52Witness(g, delta, f_delta))
          << "trial=" << trial << " delta=" << delta;
    }
  }
  EXPECT_GT(exercised, 10);
}

// Err_G(f, f_sf) = max over induced subgraphs H of |f(H) - f_sf(H)|.
double ErrAgainstFsf(const Graph& g,
                     const std::function<double(const Graph&)>& f) {
  const int n = g.NumVertices();
  double worst = 0.0;
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    const InducedSubgraph h = InduceByMask(g, mask);
    worst = std::max(worst, std::fabs(f(h.graph) -
                                      SpanningForestSize(h.graph)));
  }
  return worst;
}

TEST(OptimalityTest, PolytopeExtensionIsTwoCompetitiveWithDsExtension) {
  // Theorem 1.11 compares against ALL (Δ-1)-Lipschitz functions; the
  // down-sensitivity extension f̂_{Δ-1} is one of them, so
  //   Err_G(f_Δ) <= 2·Err_G(f̂_{Δ-1}) - 1   whenever Err_G(f_Δ) > 0.
  Rng rng(513);
  int exercised = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = gen::ErdosRenyi(6, 0.5, rng);
    for (int delta : {1, 2, 3}) {
      const double err_poly = ErrAgainstFsf(g, [&](const Graph& h) {
        return LipschitzExtensionValue(h, delta);
      });
      if (err_poly <= kTol) continue;
      const double err_ds = ErrAgainstFsf(g, [&](const Graph& h) {
        return DownSensitivityExtension(h, delta - 1.0, [](const Graph& x) {
          return static_cast<double>(SpanningForestSize(x));
        });
      });
      ++exercised;
      EXPECT_LE(err_poly, 2.0 * err_ds - 1.0 + kTol)
          << "trial=" << trial << " delta=" << delta;
    }
  }
  EXPECT_GT(exercised, 5);
}

TEST(OptimalityTest, ErrIsZeroExactlyOnHereditaryAnchoredGraphs) {
  // For Δ >= s(G) + 1 every induced subgraph is anchored (s is monotone),
  // so Err_G(f_Δ, f_sf) = 0.
  Rng rng(514);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::ErdosRenyi(6, 0.4, rng);
    const int delta = 6;  // > s(G) for n = 6 always (s <= 5)
    const double err = ErrAgainstFsf(g, [&](const Graph& h) {
      return LipschitzExtensionValue(h, delta);
    });
    EXPECT_NEAR(err, 0.0, kTol);
  }
}

}  // namespace
}  // namespace nodedp

// Tests for util: Status/Result, Rng, string helpers, privacy accountant.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "dp/composition.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stringutil.h"

namespace nodedp {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCategoriesAndMessages) {
  const Status s = Status::InvalidArgument("bad delta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad delta");
  EXPECT_NE(s.ToString().find("InvalidArgument"), std::string::npos);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_TRUE(ok.status().ok());

  Result<int> bad(Status::NotFound("missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> bad(Status::Internal("boom"));
  EXPECT_DEATH(bad.value(), "boom");
}

TEST(RngTest, DeterministicAndSplit) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
  Rng child_a = a.Split();
  Rng child_b = b.Split();
  EXPECT_EQ(child_a.NextUint64(), child_b.NextUint64());
  // Child stream differs from parent continuation.
  EXPECT_NE(a.NextUint64(), child_a.NextUint64());
}

TEST(RngTest, BoundedUniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(13), 13u);
  }
}

TEST(RngTest, BoundedUniformIsUnbiasedRoughly) {
  Rng rng(2);
  std::vector<int> counts(5, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.NextUint64(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.2, 0.01);
  }
}

TEST(RngTest, DoubleRanges) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.NextDoubleOpen();
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / trials, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(6);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-3.0));
  EXPECT_TRUE(rng.NextBernoulli(7.0));
}

TEST(StringUtilTest, SplitAndTrim) {
  const auto pieces = SplitAndTrim("a  b\tc ", " \t");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
  EXPECT_TRUE(SplitAndTrim("", " ").empty());
  EXPECT_TRUE(SplitAndTrim("   ", " ").empty());
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \r\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(AccountantTest, LedgerTracksSpending) {
  PrivacyAccountant accountant(1.0);
  accountant.Spend(0.5, "gem");
  accountant.Spend(0.5, "laplace");
  EXPECT_NEAR(accountant.spent(), 1.0, 1e-12);
  EXPECT_NEAR(accountant.remaining(), 0.0, 1e-12);
  ASSERT_EQ(accountant.ledger().size(), 2u);
  EXPECT_EQ(accountant.ledger()[0].first, "gem");
}

TEST(AccountantDeathTest, OverspendAborts) {
  PrivacyAccountant accountant(1.0);
  accountant.Spend(0.8, "a");
  EXPECT_DEATH(accountant.Spend(0.3, "b"), "privacy budget exceeded");
}

}  // namespace
}  // namespace nodedp

// Tests for the comparison baselines.

#include "core/baselines.h"

#include <gtest/gtest.h>

#include <vector>

#include "eval/stats.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

namespace nodedp {
namespace {

TEST(BaselinesTest, EdgeDpIsSharp) {
  Rng rng(21);
  const Graph g = gen::CliqueUnion({3, 3, 3, 3});
  const double truth = CountConnectedComponents(g);
  std::vector<double> errors;
  for (int t = 0; t < 2000; ++t) {
    errors.push_back(EdgeDpConnectedComponents(g, 1.0, rng) - truth);
  }
  const ErrorSummary summary = SummarizeErrors(errors);
  EXPECT_NEAR(summary.mean_abs, 1.0, 0.15);  // E|Lap(1/1)| = 1
  EXPECT_NEAR(summary.mean, 0.0, 0.2);
}

TEST(BaselinesTest, NaiveNodeDpScalesWithN) {
  Rng rng(22);
  const Graph g = gen::Empty(200);
  const double truth = 200.0;
  std::vector<double> errors;
  for (int t = 0; t < 2000; ++t) {
    errors.push_back(NaiveNodeDpConnectedComponents(g, 1.0, rng) - truth);
  }
  // E|Lap((n-1)/eps)| = 199: unusable, which is the point.
  EXPECT_NEAR(SummarizeErrors(errors).mean_abs, 199.0, 25.0);
}

TEST(BaselinesTest, FixedDeltaMatchesTruthOnAnchoredGraphs) {
  // Path with Δ = 2: f_2 = f_sf, so the only error is Laplace noise with
  // scale 2/(ε/2) + 1/(ε/2).
  Rng rng(23);
  const Graph g = gen::Path(50);
  const double truth = CountConnectedComponents(g);
  std::vector<double> errors;
  for (int t = 0; t < 500; ++t) {
    const Result<double> estimate =
        FixedDeltaNodeDpConnectedComponents(g, 2, 2.0, rng);
    ASSERT_TRUE(estimate.ok());
    errors.push_back(*estimate - truth);
  }
  // E|err| <= E|Lap(1)| + E|Lap(2)| = 3.
  EXPECT_LT(SummarizeErrors(errors).mean_abs, 4.5);
}

TEST(BaselinesTest, FixedDeltaUnderestimatesWhenDeltaTooSmall) {
  // Star with 30 leaves at Δ = 1: f_1 = 1 but f_sf = 30, so the cc estimate
  // is biased upward by ~29.
  Rng rng(24);
  const Graph g = gen::Star(30);
  std::vector<double> estimates;
  for (int t = 0; t < 400; ++t) {
    estimates.push_back(
        FixedDeltaNodeDpConnectedComponents(g, 1, 2.0, rng).value());
  }
  const double mean =
      SummarizeErrors(estimates).mean;  // signed mean of estimates
  // Truth is 1; the biased release is near 31 - 1 = 30.
  EXPECT_GT(mean, 20.0);
}

TEST(BaselinesTest, DeterministicGivenSeed) {
  Rng a(25);
  Rng b(25);
  const Graph g = gen::Path(10);
  EXPECT_EQ(EdgeDpConnectedComponents(g, 1.0, a),
            EdgeDpConnectedComponents(g, 1.0, b));
  EXPECT_EQ(NaiveNodeDpConnectedComponents(g, 1.0, a),
            NaiveNodeDpConnectedComponents(g, 1.0, b));
}

TEST(BaselinesTest, SingleVertexGraphs) {
  Rng rng(26);
  const Graph g = gen::Empty(1);
  // Sensitivity floor of 1 for the naive baseline (n-1 = 0 would be wrong
  // because inserting a vertex changes f_cc by 1).
  const double estimate = NaiveNodeDpConnectedComponents(g, 1000.0, rng);
  EXPECT_NEAR(estimate, 1.0, 0.1);
}

}  // namespace
}  // namespace nodedp

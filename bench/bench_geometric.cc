// E3 — Section 1.1.4, random geometric graphs: no induced 6-stars, hence
// s(G) <= 5, Δ* <= 6, and the f_cc error is Õ(ln ln n / ε) — independent
// of density. The sweep verifies s(G) <= 5 on every instance and reports
// the error across n at radii tracking the connectivity threshold.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_trials.h"
#include "core/extension_family.h"
#include "core/private_cc.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/star.h"
#include "util/random.h"

int main() {
  using namespace nodedp;
  std::printf(
      "E3: random geometric graphs (Section 1.1.4): s(G) <= 5 always,\n"
      "error Õ(ln ln n / eps). epsilon = 1, trials per row: 200.\n\n");

  const double epsilon = 1.0;
  const int trials = 200;

  Table table({"n", "radius", "edges", "true cc", "s(G)", "med|err|",
               "p90|err|", "med/(lnln n)"});
  for (int n : {64, 128, 256, 512}) {
    // Radius at half the connectivity threshold sqrt(ln n / (pi n)): many
    // components, nontrivial structure.
    const double radius = 0.5 * std::sqrt(std::log(n) / (M_PI * n));
    Rng workload_rng(42000 + n);
    const Graph g = gen::RandomGeometric(n, radius, workload_rng);
    const double truth = CountConnectedComponents(g);
    const StarNumberResult star = InducedStarNumber(g);
    if (!star.exact || star.value > 5) {
      std::fprintf(stderr, "UNEXPECTED: s(G)=%d exact=%d at n=%d\n",
                   star.value, star.exact, n);
    }
    ExtensionFamily family(g);
    Rng rng(43000 + n);
    const auto results = bench::RunWarmedTrials(rng, trials, [&](Rng& child) {
      return PrivateConnectedComponents(family, epsilon, child);
    });
    std::vector<double> errors;
    bool failed = false;
    for (const auto& release : results) {
      if (!release.ok()) {
        std::fprintf(stderr, "n=%d: %s\n", n,
                     release.status().ToString().c_str());
        failed = true;
        break;
      }
      errors.push_back(release->estimate - truth);
    }
    if (failed) continue;
    const ErrorSummary s = SummarizeErrors(errors);
    table.Cell(n)
        .Cell(radius, 4)
        .Cell(g.NumEdges())
        .Cell(truth, 0)
        .Cell(star.value)
        .Cell(s.median_abs, 2)
        .Cell(s.p90_abs, 2)
        .Cell(s.median_abs / (std::log(std::log(n)) / epsilon), 2);
    table.EndRow();
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): s(G) column never exceeds 5; the error is\n"
      "essentially flat in n (the ln ln n normalizer barely moves).\n");
  return 0;
}

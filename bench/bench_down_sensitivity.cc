// E4 — Lemma 1.7 (DS_fsf(G) = s(G)) and Lemma 1.6 (Δ* <= s(G) + 1).
//
// Small-n block: exhaustive down-sensitivity (Definition 1.4) vs the
// induced star number, plus exact Δ* by branch-and-bound — every row must
// show DS = s and Δ* <= s + 1.
// Large-n block: s(G) with the constructive upper bound on Δ* from the
// Algorithm 3 repair (exactness of the identity no longer checkable by
// brute force; the bound chain lower <= upper <= s+1 must hold).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/down_sensitivity.h"
#include "core/min_degree_forest.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/star.h"
#include "util/random.h"

int main() {
  using namespace nodedp;
  std::printf("E4: down-sensitivity identities (Lemmas 1.6 and 1.7)\n\n");

  auto fsf = [](const Graph& g) {
    return static_cast<double>(SpanningForestSize(g));
  };

  std::printf("Small graphs (exhaustive DS + exact Delta*):\n");
  Table small({"family", "n", "m", "DS_fsf", "s(G)", "DS==s", "Delta*",
               "D*<=s+1"});
  Rng rng(616);
  int checked = 0;
  int identity_holds = 0;
  int bound_holds = 0;
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<std::pair<std::string, Graph>> cases;
    cases.emplace_back("gnp-sparse", gen::ErdosRenyi(9, 0.18, rng));
    cases.emplace_back("gnp-dense", gen::ErdosRenyi(8, 0.5, rng));
    if (trial < 1) {
      cases.emplace_back("star", gen::Star(6));
      cases.emplace_back("grid", gen::Grid(3, 3));
      cases.emplace_back("clique", gen::Complete(7));
    }
    for (auto& [name, g] : cases) {
      const double ds = DownSensitivityBruteForce(g, fsf);
      const StarNumberResult s = InducedStarNumber(g);
      const auto delta_star = MinMaxDegreeSpanningForestExact(g);
      ++checked;
      const bool id_ok = s.exact && ds == s.value;
      const bool bd_ok = delta_star.has_value() &&
                         *delta_star <= s.value + 1;
      identity_holds += id_ok;
      bound_holds += bd_ok;
      if (trial < 2) {
        small.Cell(name)
            .Cell(g.NumVertices())
            .Cell(g.NumEdges())
            .Cell(ds, 0)
            .Cell(s.value)
            .Cell(id_ok ? "yes" : "NO")
            .Cell(delta_star.has_value() ? std::to_string(*delta_star)
                                         : "?")
            .Cell(bd_ok ? "yes" : "NO");
        small.EndRow();
      }
    }
  }
  small.Print(std::cout);
  std::printf("identity DS=s held on %d/%d instances; "
              "Delta*<=s+1 held on %d/%d.\n\n",
              identity_holds, checked, bound_holds, checked);

  std::printf("Large graphs (s(G) + constructive repair bound):\n");
  Table large({"family", "n", "m", "s(G)", "repair UB", "UB<=s+1"});
  Rng lrng(617);
  struct Big {
    std::string name;
    Graph graph;
  };
  std::vector<Big> bigs;
  bigs.push_back({"gnp c=1 n=1000", gen::ErdosRenyi(1000, 0.001, lrng)});
  bigs.push_back({"geometric n=800", gen::RandomGeometric(800, 0.04, lrng)});
  bigs.push_back({"barabasi n=600", gen::BarabasiAlbert(600, 2, lrng)});
  bigs.push_back({"entity n~1000", gen::RandomEntityGraph(400, 4, lrng)});
  for (const Big& big : bigs) {
    const StarNumberResult s = InducedStarNumber(big.graph);
    const int upper = MinDegreeForestUpperBound(big.graph);
    large.Cell(big.name)
        .Cell(big.graph.NumVertices())
        .Cell(big.graph.NumEdges())
        .Cell(s.value)
        .Cell(upper)
        .Cell(upper <= s.value + 1 ? "yes" : "NO");
    large.EndRow();
  }
  large.Print(std::cout);
  std::printf("\nExpected: every DS==s and UB<=s+1 column reads yes.\n");
  return 0;
}

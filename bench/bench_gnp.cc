// E2 — Section 1.1.4, Erdős–Rényi G(n, p) with np = c:
// the paper predicts additive error Õ(log n / ε) and relative error
// Õ(log² n / (ε n)) → 0 for the number of connected components.
//
// This experiment sweeps n with c ∈ {0.5, 1, 2} and reports the additive
// and relative error of the full node-private f_cc release, plus the
// log-normalized error additive/(log n / ε), which the paper predicts stays
// bounded.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_trials.h"
#include "core/extension_family.h"
#include "core/private_cc.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

int main() {
  using namespace nodedp;
  std::printf(
      "E2: G(n, c/n) sweep (Section 1.1.4): additive error Õ(log n/eps),\n"
      "relative error -> 0. epsilon = 1, trials per row: 200.\n\n");

  const double epsilon = 1.0;
  const int trials = 200;

  Table table({"c", "n", "true cc", "med|err|", "rel.err%",
               "err/(ln n)", "Delta^ med"});
  for (double c : {0.5, 1.0, 2.0}) {
    for (int n : {64, 128, 256, 512}) {
      Rng workload_rng(static_cast<uint64_t>(c * 1000) + n);
      const Graph g = gen::ErdosRenyi(n, c / n, workload_rng);
      const double truth = CountConnectedComponents(g);
      ExtensionFamily family(g);
      Rng rng(31000 + n + static_cast<uint64_t>(100 * c));
      const auto results =
          bench::RunWarmedTrials(rng, trials, [&](Rng& child) {
            return PrivateConnectedComponents(family, epsilon, child);
          });
      std::vector<double> errors;
      std::vector<double> deltas;
      bool failed = false;
      for (const auto& release : results) {
        if (!release.ok()) {
          std::fprintf(stderr, "c=%.1f n=%d: %s\n", c, n,
                       release.status().ToString().c_str());
          failed = true;
          break;
        }
        errors.push_back(release->estimate - truth);
        deltas.push_back(release->forest.selected_delta);
      }
      if (failed) continue;
      const ErrorSummary s = SummarizeErrors(errors);
      table.Cell(c, 1)
          .Cell(n)
          .Cell(truth, 0)
          .Cell(s.median_abs, 2)
          .Cell(100.0 * s.median_abs / truth, 2)
          .Cell(s.median_abs / (std::log(n) / epsilon), 2)
          .Cell(Quantile(deltas, 0.5), 0);
      table.EndRow();
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): relative error falls as n grows at every\n"
      "c; the ln-n-normalized column stays bounded.\n");
  return 0;
}

// S4 — open-loop traffic bench: the serving-tail numbers behind
// docs/OBSERVABILITY.md, measured the way a deployment would measure them
// — from the server's own latency histograms.
//
// bench_serve's socket_hammer is *closed-loop*: each connection waits for
// its reply before sending the next request, so a slow server slows the
// offered load and the tail hides (coordinated omission). This bench is
// *open-loop*: arrivals follow a Poisson process at a fixed target rate,
// scheduled in advance and dispatched on time whether or not earlier
// requests have finished, so queueing delay lands in the measurement
// instead of vanishing from it.
//
// Workload: kGraphs resident graphs with Zipf-skewed popularity (rank-r
// graph drawn with weight 1/r — a few hot graphs, a long cold tail), and
// a mixed verb stream: 70% release_cc tier=exact, 15% release_cc
// tier=approx, 10% sweep (3 epsilons), 5% add_edges. Requests flow
// through a real SocketServer over kConns connections.
//
// Reported latencies:
//   * client sojourn  — completion minus *scheduled arrival* (includes
//     any wait for a free connection: the open-loop queueing number);
//   * server-side     — p50/p99/p999 extracted from the in-process
//     `nodedp_request_ns` histograms, exactly what the `metrics` verb
//     would serve; the bench diffs snapshots so only its own traffic
//     counts.
//
// Also measures obs_overhead: per-query cost of a warmed ReleaseCc with
// the metrics layer enabled vs SetMetricsEnabled(false) — the <2%
// hot-path contract from docs/OBSERVABILITY.md. On a noisy shared box
// the delta drowns in run-to-run variance, so the 2% bar is only
// *enforced* under NODEDP_TRAFFIC_STRICT (nightly / local acceptance);
// the counter is always reported.
//
// Emits BENCH_traffic.json (schema nodedp-bench-v1, see bench/README.md).
// Env knobs: NODEDP_TRAFFIC_VERTICES (total across graphs, default
// 80,000), NODEDP_TRAFFIC_REQUESTS (default 1,000), NODEDP_TRAFFIC_RPS
// (target arrival rate, default 200), NODEDP_TRAFFIC_CONNS (default 8).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eval/json_report.h"
#include "eval/table.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "serve/release_server.h"
#include "serve/socket_client.h"
#include "serve/socket_server.h"
#include "util/random.h"

namespace {

using namespace nodedp;
using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

long long EnvLong(const char* name, long long fallback, long long min_value) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed >= min_value) return parsed;
  }
  return fallback;
}

constexpr int kGraphs = 8;
constexpr int kDeltaMax = 8;

// One scheduled request of the open-loop arrival process.
struct Arrival {
  double at_ns = 0.0;  // offset from the run start
  std::string request;
  const char* verb = nullptr;
};

// The verbs this bench drives, in the mix stated atop the file. Shared
// by the request generator and the server-side histogram aggregation.
constexpr const char* kTrafficVerbs[] = {"release_cc", "sweep", "add_edges"};

Histogram* RequestNsFor(const char* verb) {
  // Same (name, labels, bounds) as the protocol layer registers, so this
  // returns the very histogram the dispatch path observes into.
  return MetricsRegistry::Default().GetHistogram(
      "nodedp_request_ns", {{"verb", verb}},
      "End-to-end request latency (parse to response) in wall-ns",
      MetricsRegistry::LatencyBucketsNs());
}

Histogram::Snapshot DiffSnapshot(const Histogram::Snapshot& before,
                                 const Histogram::Snapshot& after) {
  Histogram::Snapshot diff;
  diff.counts.resize(after.counts.size());
  for (std::size_t i = 0; i < after.counts.size(); ++i) {
    diff.counts[i] = after.counts[i] - before.counts[i];
    diff.count += diff.counts[i];
  }
  diff.sum = after.sum - before.sum;
  return diff;
}

void Accumulate(Histogram::Snapshot* total, const Histogram::Snapshot& part) {
  if (total->counts.empty()) total->counts.resize(part.counts.size());
  for (std::size_t i = 0; i < part.counts.size(); ++i) {
    total->counts[i] += part.counts[i];
  }
  total->count += part.count;
  total->sum += part.sum;
}

}  // namespace

int main() {
  const long long target_vertices =
      EnvLong("NODEDP_TRAFFIC_VERTICES", 80000, 1000);
  const long long num_requests = EnvLong("NODEDP_TRAFFIC_REQUESTS", 1000, 50);
  const long long target_rps = EnvLong("NODEDP_TRAFFIC_RPS", 200, 1);
  const int num_conns =
      static_cast<int>(EnvLong("NODEDP_TRAFFIC_CONNS", 8, 1));
  const bool strict = std::getenv("NODEDP_TRAFFIC_STRICT") != nullptr;

  std::printf(
      "S4: open-loop traffic bench: %lld vertices across %d graphs, "
      "%lld requests at %lld rps over %d conns\n\n",
      target_vertices, kGraphs, num_requests, target_rps, num_conns);

  JsonReport report("traffic");
  report.SetContext("target_vertices", std::to_string(target_vertices));
  report.SetContext("requests", std::to_string(num_requests));
  report.SetContext("target_rps", std::to_string(target_rps));
  report.SetContext("connections", std::to_string(num_conns));

  Table table({"stage", "value", "notes"});
  bool all_ok = true;

  // --- resident graphs ------------------------------------------------------
  ReleaseServer server(11);
  std::vector<int> graph_sizes(kGraphs);
  {
    Rng gen_rng(1234);
    const int per_graph = static_cast<int>(target_vertices / kGraphs);
    for (int g = 0; g < kGraphs; ++g) {
      graph_sizes[g] = per_graph;
      ServeGraphConfig config;
      config.total_epsilon = 1e9;  // the bench measures latency, not refusals
      config.release.delta_max = kDeltaMax;
      const auto load_start = Clock::now();
      Graph graph = gen::ErdosRenyi(per_graph, 3.0 / per_graph, gen_rng);
      const Status loaded =
          server.Load("g" + std::to_string(g), std::move(graph), config);
      if (!loaded.ok()) {
        std::fprintf(stderr, "load g%d failed: %s\n", g,
                     loaded.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "loaded g%d (%d vertices) in %.0f ms\n", g,
                   per_graph, ElapsedNs(load_start) * 1e-6);
    }
  }

  // Zipf-skewed popularity: graph at rank r drawn with weight 1/(r+1).
  std::vector<double> popularity_cdf(kGraphs);
  {
    double total = 0.0;
    for (int g = 0; g < kGraphs; ++g) {
      total += 1.0 / static_cast<double>(g + 1);
      popularity_cdf[g] = total;
    }
    for (int g = 0; g < kGraphs; ++g) popularity_cdf[g] /= total;
  }

  // --- precomputed Poisson arrival schedule ---------------------------------
  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<std::size_t>(num_requests));
  {
    Rng rng(99);
    double at_ns = 0.0;
    for (long long i = 0; i < num_requests; ++i) {
      at_ns += rng.NextExponential(static_cast<double>(target_rps)) * 1e9;
      const int graph = std::min(
          kGraphs - 1,
          static_cast<int>(std::upper_bound(popularity_cdf.begin(),
                                            popularity_cdf.end(),
                                            rng.NextDouble()) -
                           popularity_cdf.begin()));
      const std::string name = "g" + std::to_string(graph);
      Arrival arrival;
      arrival.at_ns = at_ns;
      const double mix = rng.NextDouble();
      if (mix < 0.70) {
        arrival.verb = "release_cc";
        arrival.request = "release_cc " + name + " 0.1";
      } else if (mix < 0.85) {
        arrival.verb = "release_cc";
        arrival.request = "release_cc " + name + " 0.1 tier=approx";
      } else if (mix < 0.95) {
        arrival.verb = "sweep";
        arrival.request = "sweep " + name + " 0.1 0.2 0.4";
      } else {
        // Kept rare (5%): every insert pays incremental family
        // maintenance plus a full grid rewarm — realistic for a serving
        // mix, and by far the heaviest verb in the stream.
        arrival.verb = "add_edges";
        const int n = graph_sizes[graph];
        const int u = static_cast<int>(rng.NextUint64(n));
        int v = static_cast<int>(rng.NextUint64(n));
        if (v == u) v = (v + 1) % n;
        arrival.request = "add_edges " + name + " " + std::to_string(u) +
                          " " + std::to_string(v);
      }
      arrivals.push_back(std::move(arrival));
    }
  }

  // --- server-side histogram baseline (the loads above already ran) ---------
  std::vector<Histogram*> verb_histograms;
  std::vector<Histogram::Snapshot> before;
  for (const char* verb : kTrafficVerbs) {
    verb_histograms.push_back(RequestNsFor(verb));
    before.push_back(verb_histograms.back()->TakeSnapshot());
  }

  // --- open-loop run --------------------------------------------------------
  SocketServer socket_server(&server);
  {
    const Status started = socket_server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "socket server failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
  }

  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<const Arrival*> queue;
  bool closed = false;
  std::atomic<long long> errors{0};
  std::vector<double> sojourn_ns;
  sojourn_ns.reserve(arrivals.size());
  std::mutex sojourn_mu;

  const auto run_start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(num_conns));
  for (int c = 0; c < num_conns; ++c) {
    workers.emplace_back([&] {
      auto client = SocketClient::Connect("127.0.0.1", socket_server.port());
      if (!client.ok()) {
        errors.fetch_add(1);
        return;
      }
      std::vector<double> mine;
      for (;;) {
        const Arrival* arrival = nullptr;
        {
          std::unique_lock<std::mutex> lock(queue_mu);
          queue_cv.wait(lock, [&] { return closed || !queue.empty(); });
          if (queue.empty()) break;  // closed and drained
          arrival = queue.front();
          queue.pop_front();
        }
        const auto response = client->Request(arrival->request);
        if (!response.ok() || response->rfind("ok ", 0) != 0) {
          errors.fetch_add(1);
        }
        // Sojourn: completion minus *scheduled* arrival, so time spent
        // queued behind busy connections counts (the open-loop point).
        mine.push_back(ElapsedNs(run_start) - arrival->at_ns);
      }
      std::lock_guard<std::mutex> lock(sojourn_mu);
      sojourn_ns.insert(sojourn_ns.end(), mine.begin(), mine.end());
    });
  }

  // Dispatcher: release each arrival at its scheduled time, on time, no
  // matter how far behind the workers are.
  for (const Arrival& arrival : arrivals) {
    const double now_ns = ElapsedNs(run_start);
    if (arrival.at_ns > now_ns) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          static_cast<long long>(arrival.at_ns - now_ns)));
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      queue.push_back(&arrival);
    }
    queue_cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu);
    closed = true;
  }
  queue_cv.notify_all();
  for (std::thread& worker : workers) worker.join();
  const double run_ns = ElapsedNs(run_start);
  socket_server.Stop();

  if (sojourn_ns.size() != arrivals.size() || errors.load() != 0) {
    std::fprintf(stderr, "traffic run failed: %zu/%zu answered, %lld errors\n",
                 sojourn_ns.size(), arrivals.size(), errors.load());
    return 1;
  }

  // --- client-side (sojourn) percentiles ------------------------------------
  std::sort(sojourn_ns.begin(), sojourn_ns.end());
  const auto client_percentile = [&sojourn_ns](double p) {
    const std::size_t at = std::min(
        sojourn_ns.size() - 1,
        static_cast<std::size_t>(p * (sojourn_ns.size() - 1) + 0.5));
    return sojourn_ns[at];
  };
  const double client_p50 = client_percentile(0.50);
  const double client_p99 = client_percentile(0.99);
  const double client_p999 = client_percentile(0.999);

  // --- server-side percentiles from the registry histograms -----------------
  const std::vector<double>& bounds = MetricsRegistry::LatencyBucketsNs();
  Histogram::Snapshot server_all;
  std::vector<Histogram::Snapshot> per_verb;
  for (std::size_t i = 0; i < verb_histograms.size(); ++i) {
    per_verb.push_back(
        DiffSnapshot(before[i], verb_histograms[i]->TakeSnapshot()));
    Accumulate(&server_all, per_verb.back());
  }
  if (server_all.count != static_cast<long long>(arrivals.size())) {
    std::fprintf(stderr,
                 "server histograms saw %lld requests, expected %zu\n",
                 server_all.count, arrivals.size());
    return 1;
  }
  const double server_p50 = Histogram::PercentileOf(server_all, bounds, 0.50);
  const double server_p99 = Histogram::PercentileOf(server_all, bounds, 0.99);
  const double server_p999 =
      Histogram::PercentileOf(server_all, bounds, 0.999);

  const double achieved_rps =
      static_cast<double>(arrivals.size()) / (run_ns * 1e-9);
  table.Cell("open_loop").Cell(run_ns * 1e-6, 1).Cell("total wall ms");
  table.EndRow();
  table.Cell("achieved_rps")
      .Cell(achieved_rps, 1)
      .Cell("target " + std::to_string(target_rps));
  table.EndRow();
  table.Cell("client_p50/p99/p999")
      .Cell(client_p50 * 1e-6, 3)
      .Cell("p99 = " + std::to_string(client_p99 * 1e-6) + " ms, p999 = " +
            std::to_string(client_p999 * 1e-6) + " ms (sojourn)");
  table.EndRow();
  table.Cell("server_p50/p99/p999")
      .Cell(server_p50 * 1e-6, 3)
      .Cell("p99 = " + std::to_string(server_p99 * 1e-6) + " ms, p999 = " +
            std::to_string(server_p999 * 1e-6) + " ms (histograms)");
  table.EndRow();

  {
    BenchRecord record;
    record.name = "Traffic/open_loop";
    record.real_ns = run_ns;
    record.cpu_ns = run_ns;
    record.iterations = 1;
    record.counters = {{"requests", static_cast<double>(arrivals.size())},
                       {"target_rps", static_cast<double>(target_rps)},
                       {"achieved_rps", achieved_rps},
                       {"connections", static_cast<double>(num_conns)},
                       {"client_p50_ns", client_p50},
                       {"client_p99_ns", client_p99},
                       {"client_p999_ns", client_p999},
                       {"server_p50_ns", server_p50},
                       {"server_p99_ns", server_p99},
                       {"server_p999_ns", server_p999}};
    report.Add(std::move(record));
  }
  for (std::size_t i = 0; i < per_verb.size(); ++i) {
    BenchRecord record;
    record.name = std::string("Traffic/serve_") + kTrafficVerbs[i];
    // real_ns is the verb's server-side p50 — a latency, so the shared
    // lower-is-better regression gate applies directly.
    record.real_ns = Histogram::PercentileOf(per_verb[i], bounds, 0.50);
    record.cpu_ns = record.real_ns;
    record.iterations = per_verb[i].count;
    record.counters = {
        {"count", static_cast<double>(per_verb[i].count)},
        {"p99_ns", Histogram::PercentileOf(per_verb[i], bounds, 0.99)},
        {"p999_ns", Histogram::PercentileOf(per_verb[i], bounds, 0.999)}};
    report.Add(std::move(record));
  }

  // --- instrumentation overhead on the warmed query path --------------------
  {
    // A warmed ReleaseCc is ~10 us, so a single enabled/disabled pair
    // drowns in scheduler noise. Alternate the two modes across several
    // rounds and take each mode's best round: drift hits both modes
    // equally, and the min is the least-disturbed observation of each.
    constexpr int kOverheadQueries = 256;
    constexpr int kOverheadRounds = 5;
    const auto timed_queries = [&server](int count) {
      const auto start = Clock::now();
      for (int i = 0; i < count; ++i) {
        const auto release = server.ReleaseCc("g0", 1e-3);
        if (!release.ok()) return -1.0;
      }
      return ElapsedNs(start) / count;
    };
    timed_queries(kOverheadQueries);  // warm the path once, untimed
    double enabled_ns = -1.0;
    double disabled_ns = -1.0;
    bool measured_ok = true;
    for (int round = 0; round < kOverheadRounds; ++round) {
      const double on = timed_queries(kOverheadQueries);
      SetMetricsEnabled(false);
      const double off = timed_queries(kOverheadQueries);
      SetMetricsEnabled(true);
      if (on < 0 || off < 0) {
        measured_ok = false;
        break;
      }
      if (enabled_ns < 0 || on < enabled_ns) enabled_ns = on;
      if (disabled_ns < 0 || off < disabled_ns) disabled_ns = off;
    }
    if (!measured_ok) {
      std::fprintf(stderr, "overhead measurement failed\n");
      return 1;
    }
    const double overhead_pct =
        (enabled_ns - disabled_ns) / disabled_ns * 100.0;
    table.Cell("obs_overhead")
        .Cell(overhead_pct, 2)
        .Cell("% on warm release_cc (target < 2)");
    table.EndRow();
    BenchRecord record;
    record.name = "Traffic/obs_overhead";
    record.real_ns = enabled_ns;
    record.cpu_ns = enabled_ns;
    record.iterations = kOverheadQueries;
    record.counters = {{"disabled_ns", disabled_ns},
                       {"obs_overhead_pct", overhead_pct}};
    report.Add(std::move(record));
    if (overhead_pct >= 2.0) {
      std::fprintf(stderr,
                   "WARNING: metrics overhead %.2f%% above the 2%% target "
                   "(meaningful only on a quiet machine)\n",
                   overhead_pct);
      all_ok = all_ok && !strict;
    }
  }

  table.Print(std::cout);

  const std::string path = BenchJsonPath("traffic");
  const Status written = report.WriteFile(path);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%d records)\n", path.c_str(), report.num_records());
  return all_ok ? 0 : 1;
}

// B1 — context experiment: node-private release (Algorithm 1) vs the
// classical NON-private sublinear sampling estimator ([CRT05]/[BKM14]-style)
// the paper's introduction cites, plus the private approx serving tier
// (PrivateSublinearCc) built on the same estimator. All trade accuracy for
// a resource — privacy budget vs queries; the table shows the privacy cost
// of Algorithm 1 is comparable to the sampling cost practitioners already
// accept on workloads with small Δ*, and what the approx tier's extra
// noise costs on top.
//
// Emits BENCH_sublinear.json (schema nodedp-bench-v1): one record per
// workload, error quantiles as counters — CI tracks them like any other
// perf counter.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/extension_family.h"
#include "core/private_cc.h"
#include "core/sublinear_cc.h"
#include "eval/json_report.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

int main() {
  using namespace nodedp;
  using Clock = std::chrono::steady_clock;
  std::printf(
      "B1: node-DP (eps = 1) vs non-private sublinear sampling, "
      "trials = 100\n\n");

  const int trials = 100;
  JsonReport report("sublinear");
  report.SetContext("trials", std::to_string(trials));

  Rng wrng(990);
  struct Workload {
    const char* name;
    Graph graph;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"entity(400,4)", gen::RandomEntityGraph(400, 4, wrng)});
  workloads.push_back({"gnp(500,c=0.8)",
                       gen::ErdosRenyi(500, 0.8 / 500, wrng)});
  workloads.push_back({"geometric(400)",
                       gen::RandomGeometric(400, 0.045, wrng)});

  Table table({"workload", "true cc", "method", "median|err|", "p90|err|"});
  for (Workload& w : workloads) {
    const double truth = CountConnectedComponents(w.graph);
    ExtensionFamily family(w.graph);
    Rng rng(991);
    std::vector<double> private_errors;
    std::vector<double> approx_errors;
    std::vector<double> sample_small;
    std::vector<double> sample_large;
    const auto start = Clock::now();
    for (int t = 0; t < trials; ++t) {
      const auto release = PrivateConnectedComponents(family, 1.0, rng);
      if (!release.ok()) {
        std::fprintf(stderr, "%s: %s\n", w.name,
                     release.status().ToString().c_str());
        return 1;
      }
      private_errors.push_back(release->estimate - truth);
      // The private approx tier at the same epsilon: sampling bias plus its
      // own (sensitivity-calibrated) Laplace noise. delta_max = 8 plays
      // the public degree promise these small workloads justify.
      PrivateSublinearCcOptions approx;
      approx.delta_max = 8;
      const auto tiered = PrivateSublinearCc(w.graph, 1.0, rng, approx);
      if (!tiered.ok()) {
        std::fprintf(stderr, "%s: %s\n", w.name,
                     tiered.status().ToString().c_str());
        return 1;
      }
      approx_errors.push_back(tiered->estimate - truth);
      SublinearCcOptions small;
      small.num_samples = 64;
      small.bfs_cutoff = 16;
      sample_small.push_back(
          SublinearConnectedComponents(w.graph, rng, small).estimate -
          truth);
      SublinearCcOptions large;
      large.num_samples = 1024;
      large.bfs_cutoff = 64;
      sample_large.push_back(
          SublinearConnectedComponents(w.graph, rng, large).estimate -
          truth);
    }
    const double trials_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count();
    auto row = [&](const char* method, const std::vector<double>& errs) {
      const ErrorSummary s = SummarizeErrors(errs);
      table.Cell(w.name)
          .Cell(truth, 0)
          .Cell(method)
          .Cell(s.median_abs, 2)
          .Cell(s.p90_abs, 2);
      table.EndRow();
    };
    row("node-DP eps=1 (Alg.1)", private_errors);
    row("approx tier eps=1", approx_errors);
    row("sampling s=64,W=16", sample_small);
    row("sampling s=1024,W=64", sample_large);

    const ErrorSummary dp = SummarizeErrors(private_errors);
    const ErrorSummary approx = SummarizeErrors(approx_errors);
    const ErrorSummary small = SummarizeErrors(sample_small);
    const ErrorSummary large = SummarizeErrors(sample_large);
    BenchRecord record;
    record.name = std::string("Sublinear/") + w.name;
    record.real_ns = trials_ns;
    record.cpu_ns = trials_ns;
    record.iterations = trials;
    record.counters.emplace_back("true_cc", truth);
    record.counters.emplace_back("dp_median_abs_err", dp.median_abs);
    record.counters.emplace_back("dp_p90_abs_err", dp.p90_abs);
    record.counters.emplace_back("approx_median_abs_err", approx.median_abs);
    record.counters.emplace_back("approx_p90_abs_err", approx.p90_abs);
    record.counters.emplace_back("sample_small_median_abs_err",
                                 small.median_abs);
    record.counters.emplace_back("sample_large_median_abs_err",
                                 large.median_abs);
    report.Add(std::move(record));
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: the node-DP error at eps=1 lands between the\n"
      "coarse and fine sampling configurations — privacy costs roughly as\n"
      "much accuracy as aggressive subsampling, on low-Delta* inputs.\n");

  const std::string path = BenchJsonPath("sublinear");
  const Status written = report.WriteFile(path);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%d records)\n", path.c_str(), report.num_records());
  return 0;
}

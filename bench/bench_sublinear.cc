// B1 — context experiment: node-private release (Algorithm 1) vs the
// classical NON-private sublinear sampling estimator ([CRT05]/[BKM14]-style)
// the paper's introduction cites. Both trade accuracy for a resource —
// privacy budget vs queries; the table shows the privacy cost of Algorithm 1
// is comparable to the sampling cost practitioners already accept, on
// workloads with small Δ*.

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/extension_family.h"
#include "core/private_cc.h"
#include "core/sublinear_cc.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

int main() {
  using namespace nodedp;
  std::printf(
      "B1: node-DP (eps = 1) vs non-private sublinear sampling, "
      "trials = 100\n\n");

  const int trials = 100;
  Rng wrng(990);
  struct Workload {
    const char* name;
    Graph graph;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"entity(400,4)", gen::RandomEntityGraph(400, 4, wrng)});
  workloads.push_back({"gnp(500,c=0.8)",
                       gen::ErdosRenyi(500, 0.8 / 500, wrng)});
  workloads.push_back({"geometric(400)",
                       gen::RandomGeometric(400, 0.045, wrng)});

  Table table({"workload", "true cc", "method", "median|err|", "p90|err|"});
  for (Workload& w : workloads) {
    const double truth = CountConnectedComponents(w.graph);
    ExtensionFamily family(w.graph);
    Rng rng(991);
    std::vector<double> private_errors;
    std::vector<double> sample_small;
    std::vector<double> sample_large;
    for (int t = 0; t < trials; ++t) {
      const auto release = PrivateConnectedComponents(family, 1.0, rng);
      if (!release.ok()) {
        std::fprintf(stderr, "%s: %s\n", w.name,
                     release.status().ToString().c_str());
        return 1;
      }
      private_errors.push_back(release->estimate - truth);
      SublinearCcOptions small;
      small.num_samples = 64;
      small.bfs_cutoff = 16;
      sample_small.push_back(
          SublinearConnectedComponents(w.graph, rng, small).estimate -
          truth);
      SublinearCcOptions large;
      large.num_samples = 1024;
      large.bfs_cutoff = 64;
      sample_large.push_back(
          SublinearConnectedComponents(w.graph, rng, large).estimate -
          truth);
    }
    auto row = [&](const char* method, const std::vector<double>& errs) {
      const ErrorSummary s = SummarizeErrors(errs);
      table.Cell(w.name)
          .Cell(truth, 0)
          .Cell(method)
          .Cell(s.median_abs, 2)
          .Cell(s.p90_abs, 2);
      table.EndRow();
    };
    row("node-DP eps=1 (Alg.1)", private_errors);
    row("sampling s=64,W=16", sample_small);
    row("sampling s=1024,W=64", sample_large);
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: the node-DP error at eps=1 lands between the\n"
      "coarse and fine sampling configurations — privacy costs roughly as\n"
      "much accuracy as aggressive subsampling, on low-Delta* inputs.\n");
  return 0;
}

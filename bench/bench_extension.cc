// E5 — Lemma 3.3 + Remark 3.4: the extension family's claimed properties,
// measured rather than proved.
//
//   (a) Remark 3.4 family: G = Δ isolated vertices vs G' = G + apex.
//       f_Δ(G') - f_Δ(G) must equal exactly Δ (Lipschitz constant tight).
//   (b) f_Δ vs Δ profile on a star (degree cap binds: f_Δ = min(Δ, k)) and
//       on an odd clique at Δ = 1 (fractional optimum n/2).
//   (c) Underestimation/monotonicity margins across random inputs.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/lipschitz_extension.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/random.h"

int main() {
  using namespace nodedp;
  std::printf("E5: Lipschitz extension properties (Lemma 3.3, Remark 3.4)\n\n");

  std::printf("(a) Remark 3.4 tightness: f_D(G')-f_D(G) == D exactly\n");
  Table tight({"Delta", "f_D(empty)", "f_D(apex)", "gap", "==Delta"});
  for (int delta : {1, 2, 4, 8, 16}) {
    const Graph g = gen::Empty(delta);
    std::vector<int> all;
    for (int v = 0; v < delta; ++v) all.push_back(v);
    const Graph g_prime = AddVertex(g, all);
    const double lo = LipschitzExtensionValue(g, delta);
    const double hi = LipschitzExtensionValue(g_prime, delta);
    tight.Cell(delta)
        .Cell(lo, 3)
        .Cell(hi, 3)
        .Cell(hi - lo, 3)
        .Cell(std::fabs(hi - lo - delta) < 1e-6 ? "yes" : "NO");
    tight.EndRow();
  }
  tight.Print(std::cout);

  std::printf("\n(b) exact profiles: star K_{1,12} and odd cliques at D=1\n");
  Table profile({"graph", "Delta", "f_Delta", "expected"});
  const Graph star = gen::Star(12);
  for (int delta : {1, 2, 4, 8, 12, 16}) {
    profile.Cell("star-12")
        .Cell(delta)
        .Cell(LipschitzExtensionValue(star, delta), 3)
        .Cell(std::min(delta, 12));
    profile.EndRow();
  }
  for (int n : {3, 5, 7, 9}) {
    profile.Cell("K" + std::to_string(n))
        .Cell(1)
        .Cell(LipschitzExtensionValue(gen::Complete(n), 1.0), 3)
        .Cell(n / 2.0, 1);
    profile.EndRow();
  }
  profile.Print(std::cout);

  std::printf("\n(c) margins over 25 random G(12, 0.3) draws\n");
  Rng rng(555);
  int monotone_violations = 0;
  int overestimates = 0;
  double max_gap_at_1 = 0.0;
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = gen::ErdosRenyi(12, 0.3, rng);
    const double f_sf = SpanningForestSize(g);
    double previous = -1.0;
    for (double delta : {1.0, 2.0, 3.0, 4.0, 6.0, 11.0}) {
      const double value = LipschitzExtensionValue(g, delta);
      if (value > f_sf + 1e-6) ++overestimates;
      if (value < previous - 1e-6) ++monotone_violations;
      if (delta == 1.0) {
        max_gap_at_1 = std::max(max_gap_at_1, f_sf - value);
      }
      previous = value;
    }
  }
  std::printf("overestimation violations: %d (expect 0)\n", overestimates);
  std::printf("monotonicity violations:   %d (expect 0)\n",
              monotone_violations);
  std::printf("max (f_sf - f_1) gap:      %.3f (the Delta=1 price)\n",
              max_gap_at_1);
  return 0;
}

// E1 — Theorem 1.3 / Theorem 1.5: the error of Algorithm 1 scales like
// Δ* · Õ(ln ln n / ε) on families with bounded Δ*.
//
// The paper is a theory paper with no empirical section; this experiment
// regenerates the *shape* of the headline guarantee: for paths (Δ* = 2),
// grids (Δ* <= 3), caterpillars (Δ* = legs + 2) and random bounded-degree
// tree-like graphs (Δ* <= 3), the measured error should grow (at most) like
// ln ln n as n doubles — i.e., stay nearly flat — and stay proportional to
// Δ*. The last column reports error / (Δ*·ln ln n / ε): the paper predicts
// it stays bounded as n grows.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_trials.h"
#include "core/extension_family.h"
#include "core/private_cc.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

namespace {

using namespace nodedp;

struct Workload {
  std::string name;
  Graph graph;
  int delta_star_upper;
};

}  // namespace

int main() {
  std::printf(
      "E1: error scaling of Algorithm 1 (Theorem 1.3): "
      "|err| ~ Delta* * ln ln n / eps\n"
      "seeds fixed; trials per row: 200; epsilon = 1\n\n");

  const double epsilon = 1.0;
  const int trials = 200;
  Rng workload_rng(101);

  Table table({"family", "n", "Delta*<=", "true f_sf", "med|err|",
               "p90|err|", "med/(D*lnln n)"});
  for (int n : {32, 64, 128, 256, 512}) {
    std::vector<Workload> workloads;
    workloads.push_back({"path", gen::Path(n), 2});
    workloads.push_back({"grid", gen::Grid(n / 8, 8), 3});
    workloads.push_back(
        {"caterpillar", gen::Caterpillar(n / 4, 3), 5});
    workloads.push_back(
        {"tree-like", gen::RandomTreeLike(n, 3, 0.2, workload_rng), 4});
    int family_index = 0;
    for (Workload& w : workloads) {
      const double truth = SpanningForestSize(w.graph);
      ExtensionFamily family(w.graph);
      // Seed depends on (n, family) so rows draw independent noise.
      Rng rng(5000 + n + 1000003ULL * static_cast<uint64_t>(++family_index));
      const auto results =
          bench::RunWarmedTrials(rng, trials, [&](Rng& child) {
            return PrivateSpanningForestSize(family, epsilon, child);
          });
      std::vector<double> errors;
      bool failed = false;
      for (const auto& release : results) {
        if (!release.ok()) {
          std::fprintf(stderr, "%s n=%d: %s\n", w.name.c_str(), n,
                       release.status().ToString().c_str());
          failed = true;
          break;
        }
        errors.push_back(release->estimate - truth);
      }
      if (failed) continue;
      const ErrorSummary s = SummarizeErrors(errors);
      const double normalizer =
          w.delta_star_upper * std::log(std::log(n)) / epsilon;
      table.Cell(w.name)
          .Cell(w.graph.NumVertices())
          .Cell(w.delta_star_upper)
          .Cell(truth, 0)
          .Cell(s.median_abs, 2)
          .Cell(s.p90_abs, 2)
          .Cell(s.median_abs / normalizer, 2);
      table.EndRow();
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): the last column stays O(1) as n grows\n"
      "16x, and error tracks Delta* across families at fixed n.\n");
  return 0;
}

// Shared scaffold for the experiment benches' noise-trial loops.
//
// Every E1-E8 bench has the same shape per table row: evaluate one release
// function many times against a shared (expensive-to-warm) ExtensionFamily
// and summarize the error distribution. RunWarmedTrials standardizes the
// concurrency protocol:
//
//   1. one warm call on a fixed throwaway stream populates the family's
//      grid caches, so the concurrent trials below are pure noise
//      sampling (ExtensionFamily is safe for concurrent callers either
//      way; warming just avoids duplicated cold LP work);
//   2. the trials run on the pool via ParallelMapSeeded — child streams
//      are split from `rng` in trial order, so every bench table is
//      identical at any NODEDP_THREADS width.
//
// If the warm call fails, its failure is returned as the single result so
// callers report it through their normal per-trial error path.

#ifndef NODEDP_BENCH_BENCH_TRIALS_H_
#define NODEDP_BENCH_BENCH_TRIALS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/parallel.h"
#include "util/random.h"

namespace nodedp {
namespace bench {

// fn: (Rng&) -> Result<T>. Returns `trials` results in trial order (or the
// warm call's failure alone).
template <typename Fn>
auto RunWarmedTrials(Rng& rng, int trials, Fn&& fn)
    -> std::vector<decltype(fn(std::declval<Rng&>()))> {
  using ResultT = decltype(fn(std::declval<Rng&>()));
  {
    Rng warm_rng(1);
    ResultT warm = fn(warm_rng);
    if (!warm.ok()) {
      std::vector<ResultT> failed;
      failed.push_back(std::move(warm));
      return failed;
    }
  }
  return ParallelMapSeeded(
      rng, trials, [&fn](std::int64_t, Rng& child) { return fn(child); });
}

}  // namespace bench
}  // namespace nodedp

#endif  // NODEDP_BENCH_BENCH_TRIALS_H_

// A1 — ablation of the Δ selection step of Algorithm 1:
//   * GEM (the paper's choice, Theorem 3.5),
//   * plain exponential mechanism over the same scores with worst-case
//     sensitivity (what GEM improves upon),
//   * non-private oracle Δ (argmin of err; the unattainable target),
//   * fixed Δ = 2 and fixed Δ = Δmax.
// The paper's point: GEM tracks the oracle within O(ln ln Δmax), while
// plain EM must scale all scores by the worst-case sensitivity Δmax and
// loses the instance-adaptivity.

#include <cstdio>
#include <iostream>
#include <limits>
#include <vector>

#include "core/extension_family.h"
#include "core/private_cc.h"
#include "dp/exponential.h"
#include "dp/laplace.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

int main() {
  using namespace nodedp;
  std::printf("A1: GEM vs plain EM vs oracle vs fixed Delta, eps=1, "
              "trials=40\n\n");

  const double epsilon = 1.0;
  const int trials = 40;
  Rng wrng(810);

  struct Workload {
    const char* name;
    Graph graph;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"path(256)", gen::Path(256)});
  workloads.push_back({"caterpillar", gen::Caterpillar(50, 4)});
  workloads.push_back({"gnp(300,c=1.5)",
                       gen::ErdosRenyi(300, 1.5 / 300, wrng)});

  Table table({"workload", "selector", "mean|err|", "p90|err|",
               "med Delta"});
  for (Workload& w : workloads) {
    const double truth = SpanningForestSize(w.graph);
    ExtensionFamily family(w.graph);
    const std::vector<int> grid = PowersOfTwoGrid(w.graph.NumVertices());
    // Precompute extension values and q-scores once (deterministic).
    const double gem_eps = epsilon / 2.0;
    std::vector<double> values;
    std::vector<GemCandidate> candidates;
    for (int delta : grid) {
      const double v = family.Value(delta).value();
      values.push_back(v);
      candidates.push_back(GemCandidate{static_cast<double>(delta),
                                        (truth - v) + delta / gem_eps});
    }
    // Oracle index: argmin q.
    int oracle = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].q < candidates[oracle].q) {
        oracle = static_cast<int>(i);
      }
    }

    auto run = [&](const char* name, auto select_index, bool spend_half) {
      // spend_half: selector consumed eps/2, release gets eps/2 (as in
      // Algorithm 1); the oracle/fixed variants give the full eps to the
      // release (they spend nothing on selection — not private for the
      // oracle, which is the point of the comparison).
      std::vector<double> errors;
      std::vector<double> chosen;
      Rng rng(811);
      for (int t = 0; t < trials; ++t) {
        const int index = select_index(rng);
        const double release_eps = spend_half ? epsilon / 2.0 : epsilon;
        const double estimate = LaplaceMechanism(
            values[index], grid[index], release_eps, rng);
        errors.push_back(estimate - truth);
        chosen.push_back(grid[index]);
      }
      const ErrorSummary s = SummarizeErrors(errors);
      table.Cell(w.name)
          .Cell(name)
          .Cell(s.mean_abs, 2)
          .Cell(s.p90_abs, 2)
          .Cell(Quantile(chosen, 0.5), 0);
      table.EndRow();
    };

    run("GEM (Alg.4)",
        [&](Rng& rng) {
          return GemSelect(candidates, gem_eps, 0.1, rng).selected_index;
        },
        /*spend_half=*/true);
    run("plain EM",
        [&](Rng& rng) {
          // Plain EM must bound all scores' sensitivity by the worst
          // candidate's Lipschitz constant, Δmax = grid.back().
          std::vector<double> scores;
          for (const GemCandidate& c : candidates) scores.push_back(c.q);
          return ExponentialMechanismMin(
              scores, /*sensitivity=*/static_cast<double>(grid.back()),
              gem_eps, rng);
        },
        /*spend_half=*/true);
    run("oracle (non-private)", [&](Rng&) { return oracle; },
        /*spend_half=*/false);
    run("fixed D=2", [&](Rng&) { return 1; }, /*spend_half=*/false);
    run("fixed D=max",
        [&](Rng&) { return static_cast<int>(grid.size()) - 1; },
        /*spend_half=*/false);
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: GEM within a small factor of the oracle; plain EM\n"
      "picks near-uniformly (sensitivity Delta_max washes out the scores)\n"
      "and lands far from the oracle; fixed D=max pays ~Delta_max noise.\n");
  return 0;
}

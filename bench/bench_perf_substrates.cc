// P1 — google-benchmark timings of the substrates: simplex pivots, Dinic
// max-flow, the exact separation oracle, full cutting-plane solves, the
// repair/local-search certificate, s(G), and end-to-end Algorithm 1.
// These are the cost drivers behind every experiment table; regressions
// here would silently blow up E1-E8 runtimes.
//
// Besides the console table, every run writes machine-readable JSON (the
// BENCH_perf_substrates.json CI artifact; see src/eval/json_report.h) via a
// custom reporter in main() below. The *Threads benchmarks sweep explicit
// pool widths, so one run measures the parallel substrate's scaling.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/degree_improve.h"
#include "core/extension_family.h"
#include "core/forest_polytope.h"
#include "core/private_cc.h"
#include "dp/gem.h"
#include "eval/json_report.h"
#include "flow/dinic.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/star.h"
#include "lp/simplex.h"
#include "util/parallel.h"
#include "util/random.h"

namespace {

using namespace nodedp;

void BM_SimplexDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  LpProblem lp(n);
  for (int j = 0; j < n; ++j) lp.SetObjective(j, 1.0 + rng.NextDouble());
  for (int i = 0; i < n; ++i) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBernoulli(0.3)) row.emplace_back(j, rng.NextDouble());
    }
    if (row.empty()) row.emplace_back(i, 1.0);
    lp.AddConstraint(std::move(row), 1.0 + 4.0 * rng.NextDouble());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLp(lp));
  }
}
BENCHMARK(BM_SimplexDense)->Arg(16)->Arg(64)->Arg(128);

void BM_DinicGrid(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Dinic dinic(side * side + 2);
    Rng rng(2);
    const int source = side * side;
    const int sink = side * side + 1;
    for (int r = 0; r < side; ++r) {
      dinic.AddArc(source, r * side, 1.0 + rng.NextDouble());
      dinic.AddArc(r * side + side - 1, sink, 1.0 + rng.NextDouble());
      for (int c = 0; c + 1 < side; ++c) {
        dinic.AddArc(r * side + c, r * side + c + 1, rng.NextDouble() * 2);
        if (r + 1 < side) {
          dinic.AddArc(r * side + c, (r + 1) * side + c, rng.NextDouble());
        }
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(dinic.Solve(source, sink));
  }
}
BENCHMARK(BM_DinicGrid)->Arg(8)->Arg(16)->Arg(32);

void BM_SeparationOracle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Graph g = gen::ErdosRenyi(n, 3.0 / n, rng);
  std::vector<double> x(g.NumEdges());
  for (double& w : x) w = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindViolatedSubtourSets(g, x, 1e-7, 0));
  }
}
BENCHMARK(BM_SeparationOracle)->Arg(32)->Arg(64)->Arg(128);

void BM_CuttingPlaneSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Graph g = gen::ErdosRenyi(n, 2.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximizeOverForestPolytope(g, 2.0));
  }
}
BENCHMARK(BM_CuttingPlaneSolve)->Arg(32)->Arg(64)->Arg(128);

void BM_RepairCertificate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  const Graph g = gen::RandomGeometric(n, 0.08, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindSpanningForestOfDegree(g, 6));
  }
}
BENCHMARK(BM_RepairCertificate)->Arg(128)->Arg(512)->Arg(2048);

void BM_InducedStarNumber(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  const Graph g = gen::ErdosRenyi(n, 3.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InducedStarNumber(g));
  }
}
BENCHMARK(BM_InducedStarNumber)->Arg(128)->Arg(512)->Arg(2048);

void BM_Algorithm1EndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng wrng(7);
  const Graph g = gen::ErdosRenyi(n, 1.0 / n, wrng);
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrivateSpanningForestSize(g, 1.0, rng));
  }
}
BENCHMARK(BM_Algorithm1EndToEnd)->Arg(64)->Arg(128)->Arg(256);

void BM_Algorithm1CachedFamily(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng wrng(7);
  const Graph g = gen::ErdosRenyi(n, 1.0 / n, wrng);
  ExtensionFamily family(g);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrivateSpanningForestSize(family, 1.0, rng));
  }
}
BENCHMARK(BM_Algorithm1CachedFamily)->Arg(64)->Arg(128)->Arg(256);

// --------------------------------------------------------------------------
// Thread sweeps: the same work at explicit pool widths. Speedup at width t
// is real_ns(X/n/1) / real_ns(X/n/t) for the same n.
// --------------------------------------------------------------------------

// The exact separation oracle — one min-cut per root, parallelized across
// roots (the inner loop of every cutting-plane round).
void BM_SeparationOracleThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Rng rng(3);
  const Graph g = gen::ErdosRenyi(n, 3.0 / n, rng);
  std::vector<double> x(g.NumEdges());
  for (double& w : x) w = rng.NextDouble();
  ThreadPool pool(threads);
  ScopedThreadPool scope(&pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindViolatedSubtourSets(g, x, 1e-7, 0));
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_SeparationOracleThreads)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4});

// The Algorithm 4 grid sweep on a cold family — every unsettled Δ cell is an
// independent cutting-plane solve (the tentpole's widest loop).
void BM_GridSweepThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Rng wrng(7);
  const Graph g = gen::ErdosRenyi(n, 2.0 / n, wrng);
  const std::vector<int> grid = PowersOfTwoGrid(n);
  const std::vector<double> deltas(grid.begin(), grid.end());
  ThreadPool pool(threads);
  ScopedThreadPool scope(&pool);
  for (auto _ : state) {
    ExtensionFamily family(g);
    benchmark::DoNotOptimize(family.Values(deltas));
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_GridSweepThreads)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4});

// Batched serving: many independent (graph, ε) releases per call.
void BM_ReleaseBatchThreads(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Rng wrng(11);
  std::vector<Graph> graphs;
  graphs.reserve(batch);
  for (int i = 0; i < batch; ++i) {
    graphs.push_back(gen::ErdosRenyi(48, 2.0 / 48, wrng));
  }
  std::vector<ReleaseQuery> queries;
  queries.reserve(batch);
  for (const Graph& g : graphs) queries.push_back(ReleaseQuery{&g, 1.0});
  ThreadPool pool(threads);
  ScopedThreadPool scope(&pool);
  Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReleaseBatch(queries, rng));
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_ReleaseBatchThreads)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4});

// A console reporter that also feeds every finished run into the JSON
// report. Subclassing the display reporter (rather than using the
// file-reporter slot) sidesteps Google Benchmark's insistence on
// --benchmark_out for custom file reporters. Only raw iteration runs are
// recorded (no aggregates), and the fields used here exist in every Google
// Benchmark release the distros ship, so the reporter builds against old
// and new APIs alike.
class JsonRunCollector : public benchmark::ConsoleReporter {
 public:
  explicit JsonRunCollector(JsonReport* report) : report_(report) {}

  bool ReportContext(const Context& context) override {
    report_->SetContext("benchmark_cpus",
                        std::to_string(context.cpu_info.num_cpus));
    return benchmark::ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.iterations <= 0) continue;
      BenchRecord record;
      record.name = run.benchmark_name();
      record.iterations = static_cast<long long>(run.iterations);
      // Accumulated times are seconds; normalize to ns per iteration.
      const double iterations = static_cast<double>(run.iterations);
      record.real_ns = run.real_accumulated_time * 1e9 / iterations;
      record.cpu_ns = run.cpu_accumulated_time * 1e9 / iterations;
      for (const auto& counter : run.counters) {
        record.counters.emplace_back(
            counter.first, static_cast<double>(counter.second.value));
      }
      report_->Add(std::move(record));
    }
  }

 private:
  JsonReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  nodedp::JsonReport report("perf_substrates");
#ifdef NDEBUG
  report.SetContext("build", "release");
#else
  report.SetContext("build", "debug");
#endif

  JsonRunCollector collector(&report);
  benchmark::RunSpecifiedBenchmarks(&collector);
  benchmark::Shutdown();

  const std::string path = nodedp::BenchJsonPath("perf_substrates");
  const nodedp::Status written = report.WriteFile(path);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %d benchmark records to %s\n",
               report.num_records(), path.c_str());
  return 0;
}

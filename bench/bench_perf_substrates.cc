// P1 — google-benchmark timings of the substrates: simplex pivots, Dinic
// max-flow, the exact separation oracle, full cutting-plane solves, the
// repair/local-search certificate, s(G), and end-to-end Algorithm 1.
// These are the cost drivers behind every experiment table; regressions
// here would silently blow up E1-E8 runtimes.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/degree_improve.h"
#include "core/extension_family.h"
#include "core/forest_polytope.h"
#include "core/private_cc.h"
#include "flow/dinic.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/star.h"
#include "lp/simplex.h"
#include "util/random.h"

namespace {

using namespace nodedp;

void BM_SimplexDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  LpProblem lp(n);
  for (int j = 0; j < n; ++j) lp.SetObjective(j, 1.0 + rng.NextDouble());
  for (int i = 0; i < n; ++i) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBernoulli(0.3)) row.emplace_back(j, rng.NextDouble());
    }
    if (row.empty()) row.emplace_back(i, 1.0);
    lp.AddConstraint(std::move(row), 1.0 + 4.0 * rng.NextDouble());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLp(lp));
  }
}
BENCHMARK(BM_SimplexDense)->Arg(16)->Arg(64)->Arg(128);

void BM_DinicGrid(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Dinic dinic(side * side + 2);
    Rng rng(2);
    const int source = side * side;
    const int sink = side * side + 1;
    for (int r = 0; r < side; ++r) {
      dinic.AddArc(source, r * side, 1.0 + rng.NextDouble());
      dinic.AddArc(r * side + side - 1, sink, 1.0 + rng.NextDouble());
      for (int c = 0; c + 1 < side; ++c) {
        dinic.AddArc(r * side + c, r * side + c + 1, rng.NextDouble() * 2);
        if (r + 1 < side) {
          dinic.AddArc(r * side + c, (r + 1) * side + c, rng.NextDouble());
        }
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(dinic.Solve(source, sink));
  }
}
BENCHMARK(BM_DinicGrid)->Arg(8)->Arg(16)->Arg(32);

void BM_SeparationOracle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Graph g = gen::ErdosRenyi(n, 3.0 / n, rng);
  std::vector<double> x(g.NumEdges());
  for (double& w : x) w = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindViolatedSubtourSets(g, x, 1e-7, 0));
  }
}
BENCHMARK(BM_SeparationOracle)->Arg(32)->Arg(64)->Arg(128);

void BM_CuttingPlaneSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Graph g = gen::ErdosRenyi(n, 2.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximizeOverForestPolytope(g, 2.0));
  }
}
BENCHMARK(BM_CuttingPlaneSolve)->Arg(32)->Arg(64)->Arg(128);

void BM_RepairCertificate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  const Graph g = gen::RandomGeometric(n, 0.08, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindSpanningForestOfDegree(g, 6));
  }
}
BENCHMARK(BM_RepairCertificate)->Arg(128)->Arg(512)->Arg(2048);

void BM_InducedStarNumber(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  const Graph g = gen::ErdosRenyi(n, 3.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InducedStarNumber(g));
  }
}
BENCHMARK(BM_InducedStarNumber)->Arg(128)->Arg(512)->Arg(2048);

void BM_Algorithm1EndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng wrng(7);
  const Graph g = gen::ErdosRenyi(n, 1.0 / n, wrng);
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrivateSpanningForestSize(g, 1.0, rng));
  }
}
BENCHMARK(BM_Algorithm1EndToEnd)->Arg(64)->Arg(128)->Arg(256);

void BM_Algorithm1CachedFamily(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng wrng(7);
  const Graph g = gen::ErdosRenyi(n, 1.0 / n, wrng);
  ExtensionFamily family(g);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrivateSpanningForestSize(family, 1.0, rng));
  }
}
BENCHMARK(BM_Algorithm1CachedFamily)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
